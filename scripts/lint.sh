#!/usr/bin/env bash
# Lint entry point shared by contributors (`make lint`) and CI.
#
# Always runs the repo's own analyzer suite (cmd/roar-lint) through
# `go vet -vettool`, which is the supported way to feed vet-style
# analyzers correct type information with build-cache incrementality.
# staticcheck and govulncheck run when the pinned binaries are
# available (CI installs them; offline checkouts skip with a notice).
set -euo pipefail
cd "$(dirname "$0")/.."

# Keep these pins in sync with .github/workflows/ci.yml.
STATICCHECK_VERSION="${STATICCHECK_VERSION:-2025.1.1}"
GOVULNCHECK_VERSION="${GOVULNCHECK_VERSION:-v1.1.4}"

echo "== roar-lint (invariant suite) =="
mkdir -p bin
go build -o bin/roar-lint ./cmd/roar-lint
go vet -vettool="$(pwd)/bin/roar-lint" ./...

if command -v staticcheck >/dev/null 2>&1; then
  echo "== staticcheck ($(staticcheck -version 2>/dev/null | head -n1)) =="
  staticcheck ./...
else
  echo "== staticcheck not installed; skipping (CI pins ${STATICCHECK_VERSION}) =="
fi

if command -v govulncheck >/dev/null 2>&1; then
  echo "== govulncheck =="
  govulncheck ./...
else
  echo "== govulncheck not installed; skipping (CI pins ${GOVULNCHECK_VERSION}) =="
fi

echo "lint OK"
