// Package roar's top-level benchmarks: one testing.B target per table
// and figure of the paper's evaluation. Each benchmark regenerates its
// artifact in quick (laptop-scale) mode; `cmd/roar-bench -run <id>
// [-full]` prints the same rows at either scale.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The absolute times reported by testing.B measure the harness, not the
// paper's hardware; EXPERIMENTS.md records the shape comparisons.
package roar

import (
	"testing"

	"roar/internal/bench"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.Get(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	for i := 0; i < b.N; i++ {
		tab, err := e.Run(true)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// Chapter 5 — Privacy Preserving Search (single machine).

func BenchmarkFig5_1_BandwidthModel(b *testing.B)    { benchExperiment(b, "fig5.1") }
func BenchmarkFig5_4_PipelineStages(b *testing.B)    { benchExperiment(b, "fig5.4") }
func BenchmarkFig5_5_MatchThreads(b *testing.B)      { benchExperiment(b, "fig5.5") }
func BenchmarkFig5_6_CollectionScaling(b *testing.B) { benchExperiment(b, "fig5.6") }
func BenchmarkFig5_7_LMvsLC(b *testing.B)            { benchExperiment(b, "fig5.7") }

// Chapter 6 — analytic comparison (simulator over the real scheduler).

func BenchmarkFig6_1_DelayVsP(b *testing.B)             { benchExperiment(b, "fig6.1") }
func BenchmarkFig6_2_DelayVsN(b *testing.B)             { benchExperiment(b, "fig6.2") }
func BenchmarkFig6_3_DelayVsLoad(b *testing.B)          { benchExperiment(b, "fig6.3") }
func BenchmarkFig6_4_DelayVsHeterogeneity(b *testing.B) { benchExperiment(b, "fig6.4") }
func BenchmarkFig6_5_EstimationError(b *testing.B)      { benchExperiment(b, "fig6.5") }
func BenchmarkFig6_6_RaisingPQ(b *testing.B)            { benchExperiment(b, "fig6.6") }
func BenchmarkFig6_7_MechanismAblation(b *testing.B)    { benchExperiment(b, "fig6.7") }
func BenchmarkFig6_8_Unavailability(b *testing.B)       { benchExperiment(b, "fig6.8") }
func BenchmarkTab6_2_MessageCosts(b *testing.B)         { benchExperiment(b, "tab6.2") }

// Chapter 7 — experimental evaluation (real TCP cluster).

func BenchmarkFig7_1_DelayThroughputVsP_LM(b *testing.B) { benchExperiment(b, "fig7.1") }
func BenchmarkFig7_2_DelayThroughputVsP_LC(b *testing.B) { benchExperiment(b, "fig7.2") }
func BenchmarkFig7_3_NodeCPULoad(b *testing.B)           { benchExperiment(b, "fig7.3") }
func BenchmarkFig7_4_UpdateOverhead(b *testing.B)        { benchExperiment(b, "fig7.4") }
func BenchmarkTab7_2_EnergySavings(b *testing.B)         { benchExperiment(b, "tab7.2") }
func BenchmarkFig7_5_DynamicP(b *testing.B)              { benchExperiment(b, "fig7.5") }
func BenchmarkFig7_6_NodeFailures(b *testing.B)          { benchExperiment(b, "fig7.6") }
func BenchmarkFig7_7_FastLoadBalancing(b *testing.B)     { benchExperiment(b, "fig7.7") }
func BenchmarkFig7_9_RangeLoadBalancing(b *testing.B)    { benchExperiment(b, "fig7.9") }
func BenchmarkFig7_11_DelayBreakdown(b *testing.B)       { benchExperiment(b, "fig7.11") }
func BenchmarkTab7_3_LargeScale(b *testing.B)            { benchExperiment(b, "tab7.3") }
func BenchmarkFig7_12_SchedulingDelay(b *testing.B)      { benchExperiment(b, "fig7.12") }
func BenchmarkFig7_13_ObservedSpeeds(b *testing.B)       { benchExperiment(b, "fig7.13") }
func BenchmarkFig7_14_ROARvsPTN(b *testing.B)            { benchExperiment(b, "fig7.14") }
