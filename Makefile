# Developer entry points. CI calls the same scripts, so `make lint`
# reproduces the Lint job exactly (minus the pinned external tools when
# they are not installed locally).

.PHONY: build test race lint bench

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

lint:
	./scripts/lint.sh

bench:
	go test ./internal/bench -run '^$$' -bench . -benchtime 1x
