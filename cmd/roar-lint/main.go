// Command roar-lint runs the repo's invariant analyzer suite
// (roar/internal/analysis/registry) over Go packages.
//
// It speaks go vet's -vettool protocol, so the canonical invocation —
// used by make lint and CI — is:
//
//	go build -o bin/roar-lint ./cmd/roar-lint
//	go vet -vettool=$(pwd)/bin/roar-lint ./...
//
// Run directly with package patterns (or no arguments, meaning ./...)
// it re-executes itself through `go vet -vettool`, which provides
// correct gc type information and build-cache-driven incrementality
// for free:
//
//	roar-lint ./...
//
// Findings print as file:line:col: message [analyzer]; the exit status
// is non-zero when any finding is reported. Suppressions use
// //lint:allow <key> directives on or directly above the offending
// line; see docs/INVARIANTS.md.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"

	"roar/internal/analysis"
	"roar/internal/analysis/registry"
)

func main() {
	args := os.Args[1:]

	// go vet handshake: `-flags` asks for our flag schema (we have
	// none), `-V=full` asks for a fingerprint that keys vet's result
	// cache — hash our own executable so rebuilding the tool
	// invalidates cached results.
	if len(args) == 1 {
		switch {
		case args[0] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasPrefix(args[0], "-V"):
			// cmd/go parses this line for its result cache: a "devel"
			// version must carry a buildID= field.
			fmt.Printf("roar-lint version devel buildID=%s\n", selfHash())
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(runUnit(args[0]))
		}
	}

	// Direct invocation: delegate to go vet against ourselves.
	os.Exit(runSelfVet(args))
}

func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

func runSelfVet(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "roar-lint:", err)
		return 1
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintln(os.Stderr, "roar-lint:", err)
		return 1
	}
	return 0
}

// vetConfig is the JSON payload go vet hands each -vettool invocation,
// one per package in the build graph.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ModulePath                string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "roar-lint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "roar-lint: parsing vet config:", err)
		return 1
	}

	// go vet requires the vetx (fact) output file to exist even though
	// this suite exports no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "roar-lint:", err)
			return 1
		}
	}
	// Dependencies are visited fact-only; with no facts there is
	// nothing to do. Likewise skip non-module packages and the
	// generated .test mains.
	if cfg.VetxOnly || cfg.ModulePath != "roar" || cfg.Standard[cfg.ImportPath] ||
		strings.HasSuffix(cfg.ImportPath, ".test") {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "roar-lint:", err)
			return 1
		}
		files = append(files, f)
	}

	// Type-check against the gc export data go vet already compiled
	// for every dependency (cfg.PackageFile), honoring vendor/test
	// import remappings (cfg.ImportMap).
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	tcfg := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(error) {}, // collect via the returned error
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "roar-lint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	// The test-augmented variant's import path looks like
	// "roar/internal/foo [roar/internal/foo.test]"; path-scoped
	// analyzers want the plain path.
	path := cfg.ImportPath
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}

	diags, err := analysis.Run(fset, path, files, pkg, info, registry.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "roar-lint:", err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", pos, d.Message, d.Analyzer)
	}
	return 2 // go vet's "diagnostics reported" status
}
