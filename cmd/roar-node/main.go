// Command roar-node runs one ROAR data server and registers it with the
// membership server. It stores encrypted metadata replicas for its ring
// range and answers sub-queries.
//
//	roar-node -listen 127.0.0.1:0 -member 127.0.0.1:7000 -speed 0
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"roar/internal/coordclient"
	"roar/internal/index"
	"roar/internal/node"
	"roar/internal/pps"
	"roar/internal/proto"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:0", "address to serve on")
		member   = flag.String("member", "", "membership server address(es), comma-separated for a replicated control plane (optional)")
		mbits    = flag.Int("mbits", 0, "PPS filter size in bits (0 = full default encoding)")
		threads  = flag.Int("threads", 1, "matching threads")
		speed    = flag.Float64("speed", 0, "throttle to N objects/s (0 = unthrottled)")
		hint     = flag.Float64("hint", 1, "speed hint reported at join")
		idxFiles = flag.String("index", "", "comma-separated roaring segment files to serve plaintext queries from")
		idxMem   = flag.Int64("index-budget", 0, "posting-cache memory budget in bytes (0 = 32 MiB default)")
	)
	flag.Parse()

	params := pps.ServerParams{MBits: *mbits}
	if *mbits == 0 {
		params = pps.NewEncoder(pps.MasterKey{}, pps.EncoderConfig{}).ServerParams()
	}
	cfg := node.Config{
		Params:        params,
		MatchThreads:  *threads,
		ObjectsPerSec: *speed,
	}
	if *idxFiles != "" {
		ix := index.New(*idxMem)
		for _, path := range strings.Split(*idxFiles, ",") {
			if path = strings.TrimSpace(path); path == "" {
				continue
			}
			if err := ix.AddFile(path); err != nil {
				fatal(err)
			}
		}
		cfg.Index = ix
		fmt.Printf("loaded plaintext index: %d docs across %d segments (budget %d B)\n",
			ix.Docs(), len(ix.Segments()), ix.Cache().Budget())
	}
	n, err := node.New(cfg)
	if err != nil {
		fatal(err)
	}
	srv, err := n.Serve(*listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("roar-node serving on %s (mbits=%d threads=%d)\n", srv.Addr(), params.MBits, *threads)

	if *member != "" {
		// -member accepts one coordinator or a comma-separated replica
		// list; the failover client follows leader redirects, so the
		// join lands wherever the lease currently lives.
		var peers []string
		for _, p := range strings.Split(*member, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
		cl, err := coordclient.New(peers, coordclient.Config{})
		if err != nil {
			fatal(err)
		}
		defer cl.Close()
		var resp proto.JoinResp
		if err := cl.Call(context.Background(), proto.MMemberJoin,
			proto.JoinReq{Addr: srv.Addr(), SpeedHint: *hint}, &resp); err != nil {
			fatal(fmt.Errorf("joining %s: %w", *member, err))
		}
		fmt.Printf("joined as node %d on ring %d at %.6f\n", resp.ID, resp.Ring, resp.Start)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	srv.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "roar-node:", err)
	os.Exit(1)
}
