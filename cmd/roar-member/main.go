// Command roar-member runs the membership server (§4.9): it owns the
// ring topology, loads the corpus onto joining nodes, drives p changes,
// and publishes views to frontends.
//
// Standalone (single coordinator, the original deployment):
//
//	roar-member -listen 127.0.0.1:7000 -p 4 -rings 1
//
// Replicated (HA control plane; run one process per peer, each naming
// the full peer list — see docs/HA.md):
//
//	roar-member -listen 127.0.0.1:7001 -peers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"roar/internal/ingest"
	"roar/internal/membership"
	"roar/internal/proto"
	"roar/internal/ring"
	"roar/internal/store"
	"roar/internal/wire"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:7000", "address to serve on")
		p        = flag.Int("p", 4, "initial partitioning level")
		rings    = flag.Int("rings", 1, "number of rings")
		qThresh  = flag.Float64("quarantine-threshold", 0, "failure-evidence score that quarantines a node (0 = default 3)")
		qRecover = flag.Float64("quarantine-recover", 0, "score at which a quarantined node is re-admitted (default 0)")
		qMaxFrac = flag.Float64("quarantine-max-fraction", 0, "refuse to quarantine beyond this fraction of nodes (0 = default 0.5)")

		walDir = flag.String("wal", "", "durable ingest WAL directory — enables member.ingest (async writes); replicas must share it")

		peers     = flag.String("peers", "", "comma-separated replica addresses (including this one) — enables the replicated control plane")
		self      = flag.String("self", "", "this replica's advertised address (default: -listen)")
		lease     = flag.Duration("lease", 0, "leadership lease duration (0 = default 2s)")
		heartbeat = flag.Duration("heartbeat", 0, "leader replication cadence (0 = lease/4)")

		autoscale  = flag.Bool("autoscale", false, "run the elasticity controller (auto ChangeP / ring power / decommission)")
		asDryRun   = flag.Bool("autoscale-dry-run", false, "log autoscale decisions without acting on them")
		asInterval = flag.Duration("autoscale-interval", 0, "controller evaluation cadence (0 = default 5s)")
		asHigh     = flag.Float64("autoscale-high", 0, "fleet pressure that triggers scale-up (0 = default 1.0)")
		asLow      = flag.Float64("autoscale-low", 0, "fleet pressure that triggers scale-down (0 = default 0.25)")
		asSustain  = flag.Int("autoscale-sustain", 0, "consecutive ticks over/under threshold before acting (0 = default 3)")
		asCooldown = flag.Duration("autoscale-cooldown", 0, "minimum time between reconfigurations (0 = default 1m)")
		asMinP     = flag.Int("autoscale-min-p", 0, "floor for emergency p-down steps (0 = default 1)")
		asCostGate = flag.Float64("autoscale-cost-gate", 0, "refuse a p step moving more than this many corpus copies (0 = default 1.0)")
		qDeadline  = flag.Duration("quarantine-deadline", 0, "auto-decommission a node quarantined longer than this (0 = off)")
	)
	flag.Parse()

	coordCfg := membership.Config{
		P: *p, Rings: *rings,
		Health: membership.HealthConfig{
			QuarantineThreshold:   *qThresh,
			RecoverThreshold:      *qRecover,
			MaxQuarantineFraction: *qMaxFrac,
		},
	}
	// Replica sets open the shared WAL directory lazily on winning an
	// election (ReplicaConfig.OpenWAL below): opening here would race
	// the peer processes on segment creation, and a follower's handle
	// would go stale the moment the leader appends. Standalone has no
	// peers to race, so it opens eagerly.
	if *walDir != "" && *peers == "" {
		wal, err := ingest.Open(*walDir, ingest.Options{})
		if err != nil {
			fatal(err)
		}
		defer wal.Close()
		coordCfg.WAL = wal
	}
	asCfg := membership.AutoscaleConfig{
		DryRun:             *asDryRun,
		Interval:           *asInterval,
		HighPressure:       *asHigh,
		LowPressure:        *asLow,
		SustainTicks:       *asSustain,
		Cooldown:           *asCooldown,
		MinP:               *asMinP,
		CostGateFraction:   *asCostGate,
		QuarantineDeadline: *qDeadline,
		Logf:               log.Printf,
	}
	logAutoscale := func() {
		mode := "active"
		if *asDryRun {
			mode = "dry-run"
		}
		iv := *asInterval
		if iv <= 0 {
			iv = 5 * time.Second
		}
		log.Printf("autoscale controller started (%s, interval %v)", mode, iv)
	}

	if *peers != "" {
		runReplica(*listen, *self, *peers, *lease, *heartbeat, *walDir, coordCfg, asCfg, *autoscale || *asDryRun, logAutoscale)
		return
	}

	coord, err := membership.New(coordCfg)
	if err != nil {
		fatal(err)
	}
	defer coord.Close()
	if coordCfg.WAL != nil {
		// Standalone coordinator: recover the backend from the WAL and
		// start the drain immediately (no election to wait for).
		if err := coord.StartIngest(membership.IngestConfig{Logf: log.Printf}); err != nil {
			fatal(err)
		}
	}

	if *autoscale || *asDryRun {
		as := coord.NewAutoscaler(asCfg)
		as.Start(context.Background())
		defer as.Stop()
		logAutoscale()
	}

	d := wire.NewDispatcher()
	d.Register(proto.MMemberJoin, func(ctx context.Context, _ string, body wire.Body) (interface{}, error) {
		var req proto.JoinReq
		if err := body.Decode(&req); err != nil {
			return nil, err
		}
		return coord.Join(ctx, req.Addr, req.SpeedHint)
	})
	d.Register(proto.MMemberLeave, func(ctx context.Context, _ string, body wire.Body) (interface{}, error) {
		var req proto.LeaveReq
		if err := body.Decode(&req); err != nil {
			return nil, err
		}
		return struct{}{}, coord.Leave(ctx, ring.NodeID(req.ID))
	})
	d.Register(proto.MMemberView, func(_ context.Context, _ string, _ wire.Body) (interface{}, error) {
		return coord.View(), nil
	})
	d.Register(proto.MMemberSetP, func(ctx context.Context, _ string, body wire.Body) (interface{}, error) {
		var req proto.SetPReq
		if err := body.Decode(&req); err != nil {
			return nil, err
		}
		return struct{}{}, coord.ChangeP(ctx, req.P)
	})
	d.Register(proto.MMemberLoad, func(ctx context.Context, _ string, body wire.Body) (interface{}, error) {
		var req proto.LoadReq
		if err := body.Decode(&req); err != nil {
			return nil, err
		}
		recs, err := store.LoadFile(ctx, req.Path)
		if err != nil {
			return nil, err
		}
		if err := coord.LoadCorpus(ctx, recs); err != nil {
			return nil, err
		}
		return proto.LoadResp{Records: len(recs)}, nil
	})
	d.Register(proto.MMemberReport, func(_ context.Context, _ string, body wire.Body) (interface{}, error) {
		// Legacy statistics push from pre-health-loop frontends. Failed
		// entries feed the health aggregator as suspicion evidence
		// instead of triggering an immediate range redistribution.
		var req proto.ReportReq
		if err := body.Decode(&req); err != nil {
			return nil, err
		}
		speeds := map[ring.NodeID]float64{}
		for id, s := range req.Speeds {
			speeds[ring.NodeID(id)] = s
		}
		coord.ReportSpeeds(speeds)
		for _, id := range req.Failed {
			coord.HandleFailure(ring.NodeID(id))
		}
		return struct{}{}, nil
	})
	d.Register(proto.MMemberHealth, func(_ context.Context, _ string, body wire.Body) (interface{}, error) {
		var req proto.HealthReport
		if err := body.Decode(&req); err != nil {
			return nil, err
		}
		return coord.ReportHealth(req), nil
	})
	d.Register(proto.MMemberIngest, func(ctx context.Context, _ string, body wire.Body) (interface{}, error) {
		var req proto.IngestReq
		if err := body.Decode(&req); err != nil {
			return nil, err
		}
		seq, err := coord.IngestAppend(ctx, req.Records)
		if err != nil {
			return nil, err
		}
		return proto.IngestResp{Seq: seq, Drained: coord.IngestDrained()}, nil
	})

	srv, err := wire.Serve(*listen, d.Handle)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("roar-member serving on %s (p=%d rings=%d)\n", srv.Addr(), *p, *rings)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	srv.Close()
}

// runReplica serves one member of the replicated control plane.
func runReplica(listen, self, peerList string, lease, heartbeat time.Duration, walDir string,
	coordCfg membership.Config, asCfg membership.AutoscaleConfig, runAutoscale bool, logAutoscale func()) {
	if self == "" {
		self = listen
	}
	var peers []string
	for _, p := range strings.Split(peerList, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	var openWAL func() (*ingest.WAL, error)
	if walDir != "" {
		openWAL = func() (*ingest.WAL, error) { return ingest.Open(walDir, ingest.Options{}) }
	}
	rep, err := membership.NewReplica(membership.ReplicaConfig{
		Self:        self,
		Peers:       peers,
		Lease:       lease,
		Heartbeat:   heartbeat,
		Coordinator: coordCfg,
		Ingest:      membership.IngestConfig{Logf: log.Printf},
		OpenWAL:     openWAL,
		Logf:        log.Printf,
	})
	if err != nil {
		fatal(err)
	}
	defer rep.Stop()

	d := wire.NewDispatcher()
	rep.RegisterHandlers(d)
	d.Register(proto.MMemberLoad, func(ctx context.Context, _ string, body wire.Body) (interface{}, error) {
		var req proto.LoadReq
		if err := body.Decode(&req); err != nil {
			return nil, err
		}
		recs, err := store.LoadFile(ctx, req.Path)
		if err != nil {
			return nil, err
		}
		if err := rep.LoadCorpus(ctx, recs); err != nil {
			return nil, err
		}
		return proto.LoadResp{Records: len(recs)}, nil
	})

	srv, err := wire.Serve(listen, d.Handle)
	if err != nil {
		fatal(err)
	}
	rep.Start()
	if runAutoscale {
		as := rep.NewAutoscaler(asCfg)
		as.Start(context.Background())
		defer as.Stop()
		logAutoscale()
	}
	fmt.Printf("roar-member replica %s serving on %s (%d peers)\n", self, srv.Addr(), len(peers))
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	srv.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "roar-member:", err)
	os.Exit(1)
}
