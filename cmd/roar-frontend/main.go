// Command roar-frontend runs a ROAR front-end server: it polls the
// membership server for cluster views, schedules client queries with
// Algorithm 1, and reports node speed observations and failures back to
// the membership server (§4.8, §4.9).
//
//	roar-frontend -listen 127.0.0.1:8000 -member 127.0.0.1:7000
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"roar/internal/frontend"
	"roar/internal/proto"
	"roar/internal/wire"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:8000", "address to serve on")
		member   = flag.String("member", "127.0.0.1:7000", "membership server address")
		pq       = flag.Int("pq", 0, "query partitioning level override (0 = view p)")
		adjust   = flag.Bool("adjust", true, "enable range adjustment (§4.8.2)")
		splits   = flag.Int("splits", 0, "max slow-sub-query splits per query")
		poll     = flag.Duration("poll", time.Second, "view poll interval")
		pool     = flag.Int("pool", 2, "wire connections per node (view tuning overrides)")
		inflight = flag.Int("max-inflight", 0, "max concurrently executing queries (0 = unlimited)")
		workers  = flag.Int("dispatch-workers", 0, "max concurrent sub-query RPCs (0 = unlimited)")
		queueTO  = flag.Duration("queue-timeout", 0, "admission queue wait limit (0 = caller context)")
		nodeOut  = flag.Int("node-outstanding", 0, "max in-flight sub-queries per node (per-node backpressure, 0 = unlimited)")
		hedge    = flag.Duration("hedge-delay", 0, "re-dispatch a slow sub-query onto replicas after this delay (0 = off)")
		hedgeQ   = flag.Float64("hedge-quantile", 0, "derive the hedge delay from this quantile of observed sub-query latency, e.g. 0.95 (0 = fixed -hedge-delay)")
		probe    = flag.Duration("probe-interval", 0, "suspected-node recovery probe cadence (0 = 500ms default, <0 = off)")
		hedgeB   = flag.Float64("hedge-budget", 0, "hedged legs per primary sub-query, the Kraus-style rate limit (0 = default 0.05, <0 = unlimited)")
		hedgeBB  = flag.Float64("hedge-burst", 0, "hedge token-bucket capacity (0 = default 4)")
		hedgePQ  = flag.Int("hedge-per-query", 0, "max hedged legs per query (0 = unlimited)")
		shedHW   = flag.Int("shed-highwater", 0, "mean reported node queue depth that triggers overload shedding (0 = off)")
		healthIv = flag.Duration("health-interval", time.Second, "health report push cadence")
	)
	flag.Parse()

	fe := frontend.New(frontend.Config{
		Name: *listen,
		PQ:   *pq, RangeAdjust: *adjust, MaxSplits: *splits,
		PoolSize: *pool, MaxInFlight: *inflight,
		DispatchWorkers: *workers, QueueTimeout: *queueTO,
		NodeMaxOutstanding: *nodeOut,
		HedgeDelay:         *hedge, HedgeQuantile: *hedgeQ,
		ProbeInterval:       *probe,
		HedgeBudgetFraction: *hedgeB, HedgeBudgetBurst: *hedgeBB,
		HedgeMaxPerQuery: *hedgePQ, ShedHighWater: *shedHW,
	})
	defer fe.Close()
	mcl := wire.NewClient(*member)
	defer mcl.Close()

	syncView := func() error {
		var v proto.View
		if err := mcl.Call(context.Background(), proto.MMemberView, nil, &v); err != nil {
			return err
		}
		if len(v.Nodes) == 0 {
			return fmt.Errorf("membership has no nodes yet")
		}
		return fe.ApplyView(v)
	}
	for i := 0; ; i++ {
		if err := syncView(); err == nil {
			break
		} else if i > 60 {
			fatal(fmt.Errorf("no usable view from %s: %w", *member, err))
		}
		time.Sleep(time.Second)
	}

	// Background: refresh the view on the poll cadence (§4.9).
	syncIfStale := func() {
		var v proto.View
		if err := mcl.Call(context.Background(), proto.MMemberView, nil, &v); err != nil {
			return
		}
		if v.Epoch != fe.View().Epoch && len(v.Nodes) > 0 {
			_ = fe.ApplyView(v)
		}
	}
	go func() {
		for range time.Tick(*poll) {
			syncIfStale()
		}
	}()

	// Background: push health reports — the frontend's half of the
	// failure/overload control loop. When the coordinator's reply names
	// an epoch ahead of the installed view (a quarantine or recovery
	// just published), the view is re-pulled immediately rather than
	// waiting out the poll timer. Two mixed-version downgrades, each
	// selected only by its specific rejection: a coordinator that
	// predates member.health answers "unknown method" (legacy
	// speeds/failed reports), and one that predates the autoscale
	// telemetry extension rejects the trailing extension block as
	// trailing bytes (subsequent reports are stripped to the base
	// format it decodes). Transient transport errors re-credit the
	// report's deltas and retry on the next tick.
	go func() {
		legacy, stripExt := false, false
		for range time.Tick(*healthIv) {
			if legacy {
				report := proto.ReportReq{Speeds: fe.SpeedEstimates(), Failed: fe.FailedNodes()}
				_ = mcl.Call(context.Background(), proto.MMemberReport, report, nil)
				continue
			}
			rep := fe.HealthReport()
			send := rep
			if stripExt {
				send = rep.StripExt()
			}
			var hr proto.HealthResp
			if err := mcl.Call(context.Background(), proto.MMemberHealth, send, &hr); err != nil {
				switch {
				case strings.Contains(err.Error(), "unknown method"):
					legacy = true
				case !stripExt && strings.Contains(err.Error(), "trailing bytes after HealthReport"):
					stripExt = true
					fe.RestoreHealthReport(rep)
				default:
					fe.RestoreHealthReport(rep)
				}
				continue
			}
			if hr.Epoch != fe.View().Epoch {
				syncIfStale()
			}
		}
	}()

	d := wire.NewDispatcher()
	d.Register(proto.MFEQuery, func(ctx context.Context, _ string, body wire.Body) (interface{}, error) {
		var req proto.FEQueryReq
		if err := body.Decode(&req); err != nil {
			return nil, err
		}
		// Plain selects the nodes' roaring-bitmap index data plane; the
		// scheduling/hedging/merge pipeline is shared with encrypted
		// queries (see frontend.QuerySpec).
		res, err := fe.ExecuteSpec(ctx, frontend.QuerySpec{Enc: req.Q, Plain: req.Plain},
			frontend.ExecOptions{Priority: frontend.Priority(req.Priority)})
		if err != nil {
			return nil, err
		}
		return proto.FEQueryResp{
			IDs: res.IDs, DelayNanos: int64(res.Delay), QueueNanos: int64(res.Queue),
			SubQueries: res.SubQueries, Failures: res.Failures, Hedges: res.Hedges,
		}, nil
	})
	srv, err := wire.Serve(*listen, d.Handle)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("roar-frontend serving on %s (member %s)\n", srv.Addr(), *member)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	srv.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "roar-frontend:", err)
	os.Exit(1)
}
