// Command roar-frontend runs a ROAR front-end server: it polls the
// membership server for cluster views, schedules client queries with
// Algorithm 1, and reports node speed observations and failures back to
// the membership server (§4.8, §4.9).
//
// -member accepts either one coordinator or a comma-separated replica
// list; with a list the frontend sticks to the current leader and fails
// its view pulls and health pushes over on coordinator loss.
//
//	roar-frontend -listen 127.0.0.1:8000 -member 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"roar/internal/coordclient"
	"roar/internal/frontend"
	"roar/internal/proto"
	"roar/internal/wire"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:8000", "address to serve on")
		member   = flag.String("member", "127.0.0.1:7000", "membership server address(es), comma-separated for a replicated control plane")
		pq       = flag.Int("pq", 0, "query partitioning level override (0 = view p)")
		adjust   = flag.Bool("adjust", true, "enable range adjustment (§4.8.2)")
		splits   = flag.Int("splits", 0, "max slow-sub-query splits per query")
		poll     = flag.Duration("poll", time.Second, "view poll interval")
		pool     = flag.Int("pool", 2, "wire connections per node (view tuning overrides)")
		inflight = flag.Int("max-inflight", 0, "max concurrently executing queries (0 = unlimited)")
		workers  = flag.Int("dispatch-workers", 0, "max concurrent sub-query RPCs (0 = unlimited)")
		queueTO  = flag.Duration("queue-timeout", 0, "admission queue wait limit (0 = caller context)")
		nodeOut  = flag.Int("node-outstanding", 0, "max in-flight sub-queries per node (per-node backpressure, 0 = unlimited)")
		hedge    = flag.Duration("hedge-delay", 0, "re-dispatch a slow sub-query onto replicas after this delay (0 = off)")
		hedgeQ   = flag.Float64("hedge-quantile", 0, "derive the hedge delay from this quantile of observed sub-query latency, e.g. 0.95 (0 = fixed -hedge-delay)")
		probe    = flag.Duration("probe-interval", 0, "suspected-node recovery probe cadence (0 = 500ms default, <0 = off)")
		hedgeB   = flag.Float64("hedge-budget", 0, "hedged legs per primary sub-query, the Kraus-style rate limit (0 = default 0.05, <0 = unlimited)")
		hedgeBB  = flag.Float64("hedge-burst", 0, "hedge token-bucket capacity (0 = default 4)")
		hedgePQ  = flag.Int("hedge-per-query", 0, "max hedged legs per query (0 = unlimited)")
		shedHW   = flag.Int("shed-highwater", 0, "mean reported node queue depth that triggers overload shedding (0 = off)")
		healthIv = flag.Duration("health-interval", time.Second, "health report push cadence")
		cacheB   = flag.Int64("cache-budget", 0, "result cache memory budget in bytes (0 = cache off)")
		cacheSh  = flag.Int("cache-shards", 0, "result cache shard count (0 = default 16)")
		tenRate  = flag.Float64("tenant-rate", 0, "per-tenant admission tokens per second (0 = quotas off, counters only)")
		tenBurst = flag.Float64("tenant-burst", 0, "per-tenant admission token bucket capacity (0 = max(rate, 8))")
	)
	flag.Parse()

	fe := frontend.New(frontend.Config{
		Name: *listen,
		PQ:   *pq, RangeAdjust: *adjust, MaxSplits: *splits,
		PoolSize: *pool, MaxInFlight: *inflight,
		DispatchWorkers: *workers, QueueTimeout: *queueTO,
		NodeMaxOutstanding: *nodeOut,
		HedgeDelay:         *hedge, HedgeQuantile: *hedgeQ,
		ProbeInterval:       *probe,
		HedgeBudgetFraction: *hedgeB, HedgeBudgetBurst: *hedgeBB,
		HedgeMaxPerQuery: *hedgePQ, ShedHighWater: *shedHW,
		CacheBudget: *cacheB, CacheShards: *cacheSh,
		TenantRate: *tenRate, TenantBurst: *tenBurst,
	})
	defer fe.Close()

	var peers []string
	for _, p := range strings.Split(*member, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	mcl, err := coordclient.New(peers, coordclient.Config{})
	if err != nil {
		fatal(err)
	}
	defer mcl.Close()

	sy := frontend.NewSyncer(fe, mcl, frontend.SyncConfig{
		Poll:           *poll,
		HealthInterval: *healthIv,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "roar-frontend: "+format+"\n", args...)
		},
	})
	defer sy.Stop()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := sy.WaitFirstView(ctx, 60); err != nil {
		fatal(fmt.Errorf("no usable view from %s: %w", *member, err))
	}
	sy.Start(ctx)

	d := wire.NewDispatcher()
	d.Register(proto.MFEQuery, func(ctx context.Context, _ string, body wire.Body) (interface{}, error) {
		var req proto.FEQueryReq
		if err := body.Decode(&req); err != nil {
			return nil, err
		}
		// Plain selects the nodes' roaring-bitmap index data plane; the
		// scheduling/hedging/merge pipeline is shared with encrypted
		// queries (see frontend.QuerySpec).
		res, err := fe.Query(ctx, frontend.QuerySpec{
			Enc: req.Q, Plain: req.Plain,
			Tenant:   req.Tenant,
			Priority: frontend.Priority(req.Priority),
			CacheControl: req.CacheControl,
		})
		if err != nil {
			return nil, err
		}
		return proto.FEQueryResp{
			IDs: res.IDs, DelayNanos: int64(res.Delay), QueueNanos: int64(res.Queue),
			SubQueries: res.SubQueries, Failures: res.Failures, Hedges: res.Hedges,
			Source: res.Source,
		}, nil
	})
	d.Register(proto.MFEPut, func(ctx context.Context, _ string, body wire.Body) (interface{}, error) {
		// Async put: forward the batch to the coordinator's durable
		// ingest WAL. The reply means the records are fsynced there;
		// delivery to the owning nodes happens behind the WAL.
		var req proto.FEPutReq
		if err := body.Decode(&req); err != nil {
			return nil, err
		}
		resp, err := sy.Ingest(ctx, req.Records)
		if err != nil {
			return nil, err
		}
		return proto.FEPutResp{Seq: resp.Seq, Drained: resp.Drained}, nil
	})
	srv, err := wire.Serve(*listen, d.Handle)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("roar-frontend serving on %s (member %s)\n", srv.Addr(), *member)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	srv.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "roar-frontend:", err)
	os.Exit(1)
}
