// Command pps-client is the user side of Privacy Preserving Search: it
// owns the key, encrypts corpora and queries, and talks to a ROAR
// frontend. The servers never see plaintext or key material.
//
// Generate an encrypted corpus file (for roar-member to load):
//
//	pps-client -keyseed 1 -gen 10000 -out corpus.dat
//
// Ask the membership server to load it:
//
//	pps-client -member 127.0.0.1:7000 -load corpus.dat
//
// Search through a frontend:
//
//	pps-client -keyseed 1 -frontend 127.0.0.1:8000 -keyword w00012
//
// Drive load (64 concurrent clients, 1000 queries, 4 pooled conns):
//
//	pps-client -keyseed 1 -frontend 127.0.0.1:8000 -keyword w00012 \
//	    -count 1000 -concurrency 64 -pool 4
//
// Write a corpus through the async ingest path (docs/INGEST.md; the
// member must run with -wal):
//
//	pps-client -frontend 127.0.0.1:8000 -put corpus.dat
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"roar/internal/feclient"
	"roar/internal/index"
	"roar/internal/pps"
	"roar/internal/proto"
	"roar/internal/store"
	"roar/internal/wire"
	"roar/internal/workload"
)

func main() {
	var (
		keyseed  = flag.Int64("keyseed", 1, "deterministic key seed (demo only)")
		gen      = flag.Int("gen", 0, "generate N encrypted documents")
		out      = flag.String("out", "corpus.dat", "output file for -gen")
		member   = flag.String("member", "", "membership address for -load")
		load     = flag.String("load", "", "corpus file for the membership server to load")
		put      = flag.String("put", "", "corpus file to write through the frontend's async ingest (fe.put); requires -frontend and a WAL-enabled member")
		wait     = flag.Bool("wait", true, "with -put: poll until the delivery watermark covers the batch")
		fe       = flag.String("frontend", "", "frontend address for queries")
		keyword  = flag.String("keyword", "", "content keyword to search")
		path     = flag.String("path", "", "path component to search")
		sizeOver = flag.Float64("size-over", 0, "match files larger than this")
		idxOut   = flag.String("index-out", "", "with -gen: also write a plaintext index segment (for roar-node -index)")
		terms    = flag.String("terms", "", "comma-separated plaintext terms (queries the index data plane)")
		mode     = flag.String("mode", "and", "plaintext query mode: and, or, threshold")
		minMatch = flag.Int("min-match", 0, "terms that must match in threshold mode")
		limit    = flag.Int("limit", 0, "top-k cut for plaintext queries (0 = all)")
		count    = flag.Int("count", 1, "number of queries to issue")
		conc     = flag.Int("concurrency", 1, "concurrent in-flight queries")
		pool     = flag.Int("pool", 1, "TCP connections to the frontend")
		timeout  = flag.Duration("timeout", 0, "per-query deadline (0 = none)")
		tenant   = flag.String("tenant", "", "tenant id for per-tenant admission quotas and telemetry (empty = anonymous)")
		cacheCtl = flag.String("cache", "default", "result cache control: default, bypass, refresh")
	)
	flag.Parse()

	enc := pps.NewEncoder(pps.TestKey(*keyseed), pps.EncoderConfig{})

	switch {
	case *gen > 0:
		if err := generate(enc, *gen, *out, *idxOut); err != nil {
			fatal(err)
		}
	case *load != "":
		if *member == "" {
			fatal(fmt.Errorf("-load requires -member"))
		}
		cl := wire.NewClient(*member)
		defer cl.Close()
		var resp proto.LoadResp
		if err := cl.Call(context.Background(), proto.MMemberLoad, proto.LoadReq{Path: *load}, &resp); err != nil {
			fatal(err)
		}
		fmt.Printf("membership loaded %d records\n", resp.Records)
	case *put != "":
		if *fe == "" {
			fatal(fmt.Errorf("-put requires -frontend"))
		}
		if err := asyncPut(*fe, *put, *wait); err != nil {
			fatal(err)
		}
	case *fe != "":
		var req proto.FEQueryReq
		req.Tenant = *tenant
		switch *cacheCtl {
		case "", "default":
			req.CacheControl = proto.CacheDefault
		case "bypass":
			req.CacheControl = proto.CacheBypass
		case "refresh":
			req.CacheControl = proto.CacheRefresh
		default:
			fatal(fmt.Errorf("unknown -cache %q (default, bypass, refresh)", *cacheCtl))
		}
		if *terms != "" {
			pq, err := plainQuery(*terms, *mode, *minMatch, *limit)
			if err != nil {
				fatal(err)
			}
			req.Plain = pq
		} else {
			var preds []pps.Predicate
			if *keyword != "" {
				preds = append(preds, pps.Predicate{Kind: pps.Keyword, Word: *keyword})
			}
			if *path != "" {
				preds = append(preds, pps.Predicate{Kind: pps.PathComponent, Word: *path})
			}
			if *sizeOver > 0 {
				preds = append(preds, pps.Predicate{Kind: pps.SizeGreater, Value: *sizeOver})
			}
			if len(preds) == 0 {
				fatal(fmt.Errorf("no predicates; use -keyword/-path/-size-over or -terms"))
			}
			q, err := enc.EncryptQuery(pps.And, preds...)
			if err != nil {
				fatal(err)
			}
			req.Q = q
		}
		if *count > 1 || *conc > 1 {
			if err := loadTest(*fe, req, *count, *conc, *pool, *timeout); err != nil {
				fatal(err)
			}
		} else if err := search(*fe, req, *timeout); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
	}
}

// plainQuery parses the -terms/-mode/-min-match/-limit flags into the
// plaintext query the index data plane serves.
func plainQuery(terms, mode string, minMatch, limit int) (*proto.PlainQuery, error) {
	pq := &proto.PlainQuery{MinMatch: minMatch, Limit: limit}
	for _, t := range strings.Split(terms, ",") {
		if t = strings.TrimSpace(t); t != "" {
			pq.Terms = append(pq.Terms, t)
		}
	}
	if len(pq.Terms) == 0 {
		return nil, fmt.Errorf("-terms is empty")
	}
	switch mode {
	case "and":
		pq.Mode = uint8(index.ModeAnd)
	case "or":
		pq.Mode = uint8(index.ModeOr)
	case "threshold":
		pq.Mode = uint8(index.ModeThreshold)
		if minMatch <= 0 {
			return nil, fmt.Errorf("threshold mode needs -min-match")
		}
	default:
		return nil, fmt.Errorf("unknown -mode %q (and, or, threshold)", mode)
	}
	return pq, nil
}

func generate(enc *pps.Encoder, n int, out, idxOut string) error {
	gen := workload.NewCorpus(5000, 7)
	files := gen.Generate(n)
	rng := rand.New(rand.NewSource(99))
	recs := make([]pps.Encoded, 0, n)
	b := index.NewBuilder()
	for _, f := range files {
		kws := f.Keywords
		if len(kws) > 50 {
			kws = kws[:50]
		}
		d := pps.Document{ID: rng.Uint64(), Path: f.Path, Size: f.Size,
			Modified: f.Modified, Keywords: kws}
		r, err := enc.EncryptDocument(d)
		if err != nil {
			return err
		}
		recs = append(recs, r)
		if idxOut != "" {
			b.Add(d.ID, kws...)
		}
	}
	if err := store.SaveFile(out, recs); err != nil {
		return err
	}
	fmt.Printf("wrote %d encrypted records to %s (%d bytes each)\n", n, out, enc.MetadataBytes())
	if idxOut != "" {
		// The segment carries the SAME ids as the encrypted corpus, so a
		// plaintext -terms query and an encrypted -keyword query for the
		// same word must return identical id sets.
		if err := index.SaveFile(idxOut, b.Build("corpus")); err != nil {
			return err
		}
		fmt.Printf("wrote matching index segment to %s\n", idxOut)
	}
	return nil
}

// asyncPut streams a corpus file through the frontend's async ingest
// (fe.put). Each batch's reply means the records are fsynced into the
// coordinator's WAL — acceptance, not delivery; with wait, the delivery
// watermark is polled until the owning nodes have the whole file.
func asyncPut(addr, path string, wait bool) error {
	recs, err := store.LoadFile(context.Background(), path)
	if err != nil {
		return err
	}
	cl := wire.NewClient(addr)
	defer cl.Close()
	fcl := feclient.New(cl, feclient.Options{})
	const batch = 256
	var last proto.FEPutResp
	start := time.Now()
	for at := 0; at < len(recs); at += batch {
		end := min(at+batch, len(recs))
		resp, err := fcl.Put(context.Background(), recs[at:end])
		if err != nil {
			return fmt.Errorf("fe.put batch at %d: %w", at, err)
		}
		last = resp
	}
	fmt.Printf("accepted %d records (WAL seq %d, drained %d) in %v\n",
		len(recs), last.Seq, last.Drained, time.Since(start).Round(time.Millisecond))
	if !wait {
		return nil
	}
	for last.Drained < last.Seq {
		time.Sleep(100 * time.Millisecond)
		poll, err := fcl.Put(context.Background(), nil)
		if err != nil {
			return err
		}
		last.Drained = poll.Drained
	}
	fmt.Printf("drained through seq %d in %v\n", last.Seq, time.Since(start).Round(time.Millisecond))
	return nil
}

func search(addr string, req proto.FEQueryReq, timeout time.Duration) error {
	cl := wire.NewClient(addr)
	defer cl.Close()
	fcl := feclient.New(cl, feclient.Options{
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "pps-client: "+format+"\n", args...)
		},
	})
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	start := time.Now()
	resp, err := fcl.Query(ctx, req)
	if err != nil {
		return err
	}
	source := ""
	if resp.Source != "" {
		source = ", via " + resp.Source
	}
	fmt.Printf("%d matches in %v (server-side %v, %d sub-queries, %d failures, %d hedges%s)\n",
		len(resp.IDs), time.Since(start).Round(time.Millisecond),
		time.Duration(resp.DelayNanos).Round(time.Millisecond),
		resp.SubQueries, resp.Failures, resp.Hedges, source)
	for i, id := range resp.IDs {
		if i >= 10 {
			fmt.Printf("  ... and %d more\n", len(resp.IDs)-10)
			break
		}
		fmt.Printf("  %d\n", id)
	}
	return nil
}

// loadTest issues count queries with conc concurrent workers over a
// pooled connection and reports throughput and the delay distribution —
// the client-side view of the frontend's execution pipeline.
func loadTest(addr string, req proto.FEQueryReq, count, conc, pool int, timeout time.Duration) error {
	if conc < 1 {
		conc = 1
	}
	cl := wire.NewClientWithConfig(addr, wire.ClientConfig{PoolSize: pool})
	defer cl.Close()
	fcl := feclient.New(cl, feclient.Options{})
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		delays   []float64
		failures int
		hedges   int
		hits     int
		firstErr error
		failed   atomic.Bool
		next     = make(chan struct{}, count)
	)
	for i := 0; i < count; i++ {
		next <- struct{}{}
	}
	close(next)
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range next {
				if failed.Load() {
					return // abandon the backlog after the first error
				}
				ctx := context.Background()
				var cancel context.CancelFunc
				if timeout > 0 {
					ctx, cancel = context.WithTimeout(ctx, timeout)
				}
				t0 := time.Now()
				resp, err := fcl.Query(ctx, req)
				if cancel != nil {
					cancel()
				}
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					failed.Store(true)
					return
				}
				delays = append(delays, time.Since(t0).Seconds())
				failures += resp.Failures
				hedges += resp.Hedges
				if resp.Source == "cache" {
					hits++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	wall := time.Since(start).Seconds()
	if len(delays) == 0 {
		return fmt.Errorf("no queries issued; -count must be positive")
	}
	sort.Float64s(delays)
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(delays)-1))
		return time.Duration(delays[i] * float64(time.Second))
	}
	fmt.Printf("%d queries, %d workers, pool %d: %.1f q/s (%d failures recovered, %d hedges, %d cache hits)\n",
		len(delays), conc, pool, float64(len(delays))/wall, failures, hedges, hits)
	fmt.Printf("delay p50 %v  p90 %v  p99 %v\n",
		pct(0.50).Round(time.Millisecond), pct(0.90).Round(time.Millisecond),
		pct(0.99).Round(time.Millisecond))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pps-client:", err)
	os.Exit(1)
}
