// Command roar-bench regenerates the paper's tables and figures, and
// doubles as CI's bench regression gate.
//
// Usage:
//
//	roar-bench -list
//	roar-bench -run fig6.1
//	roar-bench -run all [-full]
//	roar-bench -check -baseline BENCH_baseline.json BENCH_*.json
//	roar-bench -check -write-baseline -baseline BENCH_baseline.json BENCH_*.json
//
// Quick mode (default) uses laptop-scale parameters; -full runs the
// paper-scale sweeps. Output is one aligned text table per experiment;
// EXPERIMENTS.md records how each maps onto the paper's artifact.
//
// -check parses the named `go test -bench` outputs (raw text or the
// -json event stream CI tees into BENCH_*.json) and exits non-zero when
// any metric tracked in the baseline regresses beyond its budget
// (default 25%). -write-baseline instead measures the tracked metric
// list against those files and rewrites the baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"roar/internal/bench"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiments and exit")
		run      = flag.String("run", "", "experiment id to run, or 'all'")
		full     = flag.Bool("full", false, "paper-scale parameters (slow)")
		check    = flag.Bool("check", false, "bench regression gate: compare result files against -baseline")
		baseline = flag.String("baseline", "BENCH_baseline.json", "baseline file for -check")
		write    = flag.Bool("write-baseline", false, "with -check: rewrite the baseline from the result files")
		thresh   = flag.Float64("check-threshold", 0.25, "default relative regression budget for -check")
	)
	flag.Parse()

	if *check {
		os.Exit(checkGate(*baseline, *write, *thresh, flag.Args()))
	}

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		if *run == "" && !*list {
			fmt.Println("\nrun one with: roar-bench -run <id>   (or -run all)")
		}
		return
	}

	exps := bench.All()
	if *run != "all" {
		e, ok := bench.Get(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *run)
			os.Exit(2)
		}
		exps = []bench.Experiment{e}
	}
	quick := !*full
	for _, e := range exps {
		start := time.Now()
		tab, err := e.Run(quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(tab)
		fmt.Printf("(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

// checkGate runs the bench regression gate (or rewrites the baseline)
// over the named result files and returns the process exit code.
func checkGate(baselinePath string, write bool, threshold float64, files []string) int {
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "roar-bench -check: no result files named")
		return 2
	}
	results := bench.BenchResults{}
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "roar-bench -check: %v\n", err)
			return 2
		}
		res, err := bench.ParseBenchOutput(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "roar-bench -check: %s: %v\n", path, err)
			return 2
		}
		for name, ms := range res {
			if results[name] == nil {
				results[name] = map[string]float64{}
			}
			for unit, v := range ms {
				results[name][unit] = v
			}
		}
	}

	if write {
		base, err := bench.BuildBaseline(bench.DefaultTracked(), results, threshold)
		if err != nil {
			fmt.Fprintf(os.Stderr, "roar-bench -check -write-baseline: %v\n", err)
			return 2
		}
		data, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "roar-bench -check -write-baseline: %v\n", err)
			return 2
		}
		if err := os.WriteFile(baselinePath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "roar-bench -check -write-baseline: %v\n", err)
			return 2
		}
		fmt.Printf("wrote %s (%d tracked metrics)\n", baselinePath, len(base.Metrics))
		return 0
	}

	data, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "roar-bench -check: %v\n", err)
		return 2
	}
	var base bench.GateBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "roar-bench -check: parsing %s: %v\n", baselinePath, err)
		return 2
	}
	if base.Threshold <= 0 {
		base.Threshold = threshold
	}
	failures := bench.CheckRegressions(base, results)
	for _, m := range base.Metrics {
		cur, ok := results[m.Bench][m.Unit]
		status := "MISSING"
		if ok {
			status = fmt.Sprintf("%.4g (baseline %.4g)", cur, m.Value)
		}
		fmt.Printf("  %-55s %-10s %s\n", m.Bench, m.Unit, status)
	}
	if len(failures) > 0 {
		fmt.Fprintln(os.Stderr, "bench regression gate FAILED:")
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		return 1
	}
	fmt.Printf("bench regression gate passed: %d metrics within budget\n", len(base.Metrics))
	return 0
}
