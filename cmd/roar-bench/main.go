// Command roar-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	roar-bench -list
//	roar-bench -run fig6.1
//	roar-bench -run all [-full]
//
// Quick mode (default) uses laptop-scale parameters; -full runs the
// paper-scale sweeps. Output is one aligned text table per experiment;
// EXPERIMENTS.md records how each maps onto the paper's artifact.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"roar/internal/bench"
)

func main() {
	var (
		list = flag.Bool("list", false, "list experiments and exit")
		run  = flag.String("run", "", "experiment id to run, or 'all'")
		full = flag.Bool("full", false, "paper-scale parameters (slow)")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		if *run == "" && !*list {
			fmt.Println("\nrun one with: roar-bench -run <id>   (or -run all)")
		}
		return
	}

	exps := bench.All()
	if *run != "all" {
		e, ok := bench.Get(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *run)
			os.Exit(2)
		}
		exps = []bench.Experiment{e}
	}
	quick := !*full
	for _, e := range exps {
		start := time.Now()
		tab, err := e.Run(quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(tab)
		fmt.Printf("(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
