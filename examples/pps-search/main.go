// PPS search: a single-machine tour of Privacy Preserving Search —
// every §5.5 scheme (equality, keyword, numeric inequality/range,
// ranked results) plus the dynamic predicate ordering of §5.6.5 —
// showing that the server-side matcher never holds key material.
package main

import (
	"fmt"
	"log"
	"time"

	"roar/internal/pps"
)

func main() {
	key, err := pps.NewMasterKey()
	if err != nil {
		log.Fatal(err)
	}

	// --- Keyword + numeric + ranked, through the combined encoder ----
	enc := pps.NewEncoder(key, pps.EncoderConfig{})
	fmt.Printf("combined encoding: %dB per metadata, %dB per predicate\n",
		enc.MetadataBytes(), enc.QueryBytes())

	docs := []pps.Document{
		{ID: 1, Path: "/papers/roar.pdf", Size: 2 << 20,
			Modified: time.Date(2009, 8, 1, 0, 0, 0, 0, time.UTC),
			Keywords: []string{"rendezvous", "ring", "search"}},
		{ID: 2, Path: "/papers/chord.pdf", Size: 500 << 10,
			Modified: time.Date(2007, 3, 1, 0, 0, 0, 0, time.UTC),
			Keywords: []string{"dht", "ring", "lookup"}},
		{ID: 3, Path: "/photos/summer.jpg", Size: 4 << 20,
			Modified: time.Date(2010, 7, 1, 0, 0, 0, 0, time.UTC),
			Keywords: []string{"beach", "holiday"}},
	}
	var encoded []pps.Encoded
	for _, d := range docs {
		e, err := enc.EncryptDocument(d)
		if err != nil {
			log.Fatal(err)
		}
		encoded = append(encoded, e)
	}

	// The server side: public parameters only, no key.
	matcher, err := pps.NewMatcher(enc.ServerParams())
	if err != nil {
		log.Fatal(err)
	}
	show := func(desc string, op pps.BoolOp, preds ...pps.Predicate) {
		q, err := enc.EncryptQuery(op, preds...)
		if err != nil {
			log.Fatal(err)
		}
		ids := matcher.MatchAll(q, encoded)
		fmt.Printf("  %-40s -> %v\n", desc, ids)
	}
	fmt.Println("queries (server sees only trapdoors):")
	show(`keyword "ring"`, pps.And, pps.Predicate{Kind: pps.Keyword, Word: "ring"})
	show(`"ring" AND size > 1MB`, pps.And,
		pps.Predicate{Kind: pps.Keyword, Word: "ring"},
		pps.Predicate{Kind: pps.SizeGreater, Value: 1 << 20})
	show(`"ring" ranked in top-1 keywords`, pps.And,
		pps.Predicate{Kind: pps.KeywordRanked, Word: "dht", Rank: 1})
	show(`path component "photos"`, pps.And,
		pps.Predicate{Kind: pps.PathComponent, Word: "photos"})
	show(`modified after mid-2009 (days since 2005)`, pps.And,
		pps.Predicate{Kind: pps.DateAfter, Value: 1600})

	// --- The standalone numeric schemes (§5.5.3) ----------------------
	ineq, err := pps.NewInequality(key, pps.ExponentialPoints(1e9))
	if err != nil {
		log.Fatal(err)
	}
	md, err := ineq.EncryptMetadata(123456)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("inequality scheme on the value 123456:")
	for _, v := range []float64{1000, 100000, 200000, 1e6} {
		q := ineq.EncryptQuery(pps.Greater, v)
		fmt.Printf("  123456 > %-8g ? %v (approximated to reference point %g)\n",
			v, ineq.Match(q, md), q.ApproxPoint)
	}

	rng, err := pps.NewRange(key, pps.DefaultRangePartitions(0, 1<<30, 8))
	if err != nil {
		log.Fatal(err)
	}
	rmd, err := rng.EncryptMetadata(300e6)
	if err != nil {
		log.Fatal(err)
	}
	q := rng.EncryptQuery(250e6, 500e6)
	fmt.Printf("range scheme: 300M in [250M,500M)? %v (query approximated to [%g,%g))\n",
		rng.Match(q, rmd), q.Approx.Lo, q.Approx.Hi)

	// --- Dynamic predicate ordering (§5.6.5) --------------------------
	var corpus []pps.Encoded
	for i := 0; i < 1000; i++ {
		d := pps.Document{ID: uint64(i + 10), Path: "/d/f", Size: 10,
			Modified: time.Unix(1.3e9, 0),
			Keywords: []string{"the", fmt.Sprintf("unique%04d", i)}}
		e, err := enc.EncryptDocument(d)
		if err != nil {
			log.Fatal(err)
		}
		corpus = append(corpus, e)
	}
	wide, _ := enc.EncryptQuery(pps.And,
		pps.Predicate{Kind: pps.Keyword, Word: "the"},   // matches everything
		pps.Predicate{Kind: pps.Keyword, Word: "doors"}) // matches nothing
	run := matcher.NewRun(wide)
	matches := 0
	for _, e := range corpus {
		if run.Match(e.BloomMetadata) {
			matches++
		}
	}
	fmt.Printf("dynamic ordering: \"the doors\" over %d docs -> %d matches; after %d samples the engine settled on order %v (selective predicate first)\n",
		len(corpus), matches, pps.SelectivitySamples, run.Order())
}
