// Durable ingest walkthrough (docs/INGEST.md): writes are accepted
// into a fsynced write-ahead log on the coordinator and delivered to
// the p owning nodes asynchronously — acceptance means durability, not
// delivery. The walkthrough shows the contract surviving its worst
// case:
//
//  1. a batch is ingested and drained while everything is healthy — the
//     reference behaviour;
//  2. a second batch is accepted into the WAL and a node is killed while
//     the drain is in flight: delivery to the dead node stalls, but the
//     acceptance receipts stand;
//  3. the dead node is decommissioned. No special replay path runs —
//     the consumer's next delivery attempt re-routes to the arc's new
//     owners and the WAL's records land there. The query result is
//     exactly the id set of a run with no failure at all;
//  4. the ENTIRE corpus is re-delivered: at-least-once duplicates never
//     change a node's record count (store.Insert dedups by id).
//
// The same pipeline runs as real processes with:
//
//	roar-member -listen :7001 -wal /var/roar/wal ...
//	roar-frontend -member :7001 ...   (fe.put = async ingest)
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"roar/internal/cluster"
	"roar/internal/pps"
)

func main() {
	const (
		nodes   = 8
		p       = 4
		corpus  = 60
		killIdx = 3
	)
	walDir, err := os.MkdirTemp("", "roar-ingest-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(walDir)

	c, err := cluster.Start(cluster.Options{
		Nodes: nodes, P: p, Seed: 7,
		IngestDir:   walDir,
		IngestBatch: 4, // small batches so the kill below lands mid-drain
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	fmt.Printf("== cluster up: %d nodes, p=%d, WAL at %s\n", nodes, p, walDir)

	// Encrypt a corpus where every third document carries the demo
	// keyword — but do NOT load it; it goes through the async path.
	recs := make([]pps.Encoded, corpus)
	want := 0
	for i := range recs {
		kw := "filler"
		if i%3 == 0 {
			kw, want = "target", want+1
		}
		recs[i], err = c.Enc.EncryptDocument(pps.Document{
			ID: uint64(i + 1), Path: fmt.Sprintf("/corpus/%d", i), Size: int64(i),
			Modified: time.Unix(1.2e9, 0), Keywords: []string{kw},
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	query := func() int {
		res, err := c.Query(context.Background(), pps.And,
			pps.Predicate{Kind: pps.Keyword, Word: "target"})
		if err != nil {
			log.Fatal(err)
		}
		return len(res.IDs)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Healthy half: accept, drain, query.
	seq, err := c.IngestPut(ctx, recs[:corpus/2]...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== accepted %d records (WAL seq %d) — durable before any node saw them\n", corpus/2, seq)
	if err := c.WaitIngestDrained(ctx, seq); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== drained: %d matches queryable\n", query())

	// Crash half: accept into the WAL, then kill a node mid-drain.
	seq, err = c.IngestPut(ctx, recs[corpus/2:]...)
	if err != nil {
		log.Fatal(err)
	}
	if err := c.KillNode(killIdx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== node %d killed with the drain in flight; acceptance receipts stand\n", killIdx)

	// Decommission re-routes the arc; the retry loop IS the replay.
	if err := c.RecoverFailure(ctx, killIdx); err != nil {
		log.Fatal(err)
	}
	if err := c.WaitIngestDrained(ctx, seq); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== node %d decommissioned, WAL replayed into the new owners: %d/%d matches\n",
		killIdx, query(), want)

	// Idempotency: re-deliver everything; record counts must not move.
	before := storeLens(c, killIdx)
	seq, err = c.IngestPut(ctx, recs...)
	if err != nil {
		log.Fatal(err)
	}
	if err := c.WaitIngestDrained(ctx, seq); err != nil {
		log.Fatal(err)
	}
	for i, n := range before {
		if after := c.Nodes()[i].Store().Len(); after != n {
			log.Fatalf("duplicate delivery changed node %d record count %d→%d", i, n, after)
		}
	}
	fmt.Printf("== full corpus re-delivered: node record counts unchanged, still %d matches\n", query())
}

// storeLens snapshots every live node's record count.
func storeLens(c *cluster.Cluster, skip int) map[int]int {
	out := map[int]int{}
	for i, n := range c.Nodes() {
		if i != skip {
			out[i] = n.Store().Len()
		}
	}
	return out
}
