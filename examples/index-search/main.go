// Index search: the plaintext roaring-bitmap data plane end to end.
// Builds an inverted index over a small document corpus, saves it as a
// disk segment, serves it from every node of an in-process cluster
// under a posting-cache memory budget, and runs AND / OR / threshold /
// top-k queries through the regular frontend pipeline — scheduling,
// hedging, and merge are shared with the encrypted PPS plane; only the
// per-node matcher differs.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"roar/internal/cluster"
	"roar/internal/frontend"
	"roar/internal/index"
	"roar/internal/proto"
)

func main() {
	// A tiny synthetic corpus: random 64-bit ids (their ring position is
	// id / 2^64) tagged with a few terms each.
	vocab := []string{"go", "paper", "search", "ring", "bitmap", "roar", "index", "node"}
	rng := rand.New(rand.NewSource(42))
	b := index.NewBuilder()
	docs := 0
	for docs < 2000 {
		id := rng.Uint64()
		if id == 0 {
			continue
		}
		terms := make([]string, 0, 3)
		for len(terms) < 1+rng.Intn(3) {
			terms = append(terms, vocab[rng.Intn(len(vocab))])
		}
		b.Add(id, terms...)
		docs++
	}

	// Persist the segment — the SaveFile format is what roar-node's
	// -index flag loads at startup.
	dir, err := os.MkdirTemp("", "roar-index")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	segPath := filepath.Join(dir, "corpus.seg")
	if err := index.SaveFile(segPath, b.Build("corpus")); err != nil {
		log.Fatal(err)
	}
	fi, _ := os.Stat(segPath)
	fmt.Printf("built segment: %d docs, %d B on disk\n", docs, fi.Size())

	// A 6-node cluster at p=2. Every node opens the same segment file
	// with a deliberately small 64 KiB posting-cache budget: postings
	// load from disk on demand and the LRU keeps residency under budget.
	c, err := cluster.Start(cluster.Options{Nodes: 6, P: 2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	for _, nd := range c.Nodes() {
		ix := index.New(64 << 10)
		if err := ix.AddFile(segPath); err != nil {
			log.Fatal(err)
		}
		nd.SetIndex(ix)
	}

	ctx := context.Background()
	show := func(label string, pq proto.PlainQuery) {
		res, err := c.FE.Query(ctx, frontend.QuerySpec{Plain: &pq})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %4d matches, %d sub-queries, %d postings scanned\n",
			label, len(res.IDs), res.SubQueries, res.Scanned)
	}

	show(`"ring" AND "bitmap"`, proto.PlainQuery{
		Terms: []string{"ring", "bitmap"}, Mode: uint8(index.ModeAnd)})
	show(`"go" OR "paper"`, proto.PlainQuery{
		Terms: []string{"go", "paper"}, Mode: uint8(index.ModeOr)})
	show(`2 of {go, search, node}`, proto.PlainQuery{
		Terms: []string{"go", "search", "node"}, Mode: uint8(index.ModeThreshold), MinMatch: 2})

	// Top-k: each node returns its arc's k smallest ids and the frontend
	// cuts the merged result to the same global k, so the answer equals
	// a single-index evaluation.
	topk := proto.PlainQuery{
		Terms: []string{"roar"}, Mode: uint8(index.ModeAnd), Limit: 5}
	res, err := c.FE.Query(ctx, frontend.QuerySpec{Plain: &topk})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-5 for \"roar\": %d ids, first %#x\n", len(res.IDs), res.IDs[0])

	// The cache honoured its budget while serving all of the above.
	st := c.Nodes()[0].Index().Cache().Stats()
	fmt.Printf("node 0 posting cache: %d/%d B resident, %d hits, %d misses, %d evictions\n",
		st.Bytes, st.Budget, st.Hits, st.Misses, st.Evictions)
}
