// Quickstart: spin up a complete in-process ROAR cluster (12 TCP data
// nodes, a membership coordinator, a frontend), load an encrypted
// corpus, and run a few searches — the minimal end-to-end tour of the
// public API.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"roar/internal/cluster"
	"roar/internal/pps"
)

func main() {
	// 12 servers, partitioning level 4 => replication level r = 12/4 = 3.
	c, err := cluster.Start(cluster.Options{Nodes: 12, P: 4, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Encrypt and load a synthetic 5000-file corpus. In a real
	// deployment the client does this; servers only ever see ciphertext.
	docs, err := c.GenerateCorpus(5000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster up: %d nodes, p=%d, %d encrypted documents loaded\n",
		12, c.Coord.P(), len(docs))

	// A keyword that actually occurs in the corpus.
	word := docs[0].Keywords[0]
	res, err := c.Query(context.Background(), pps.And,
		pps.Predicate{Kind: pps.Keyword, Word: word})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("keyword %q: %d matches in %v (%d sub-queries, %d objects scanned)\n",
		word, len(res.IDs), res.Delay.Round(time.Millisecond), res.SubQueries, res.Scanned)

	// A compound query: keyword AND file size.
	res, err = c.Query(context.Background(), pps.And,
		pps.Predicate{Kind: pps.Keyword, Word: word},
		pps.Predicate{Kind: pps.SizeGreater, Value: 1024})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%q AND size>1KB: %d matches\n", word, len(res.IDs))

	// Repartition on the fly: p 4 -> 6 drops replicas and is instant.
	if err := c.Coord.ChangeP(context.Background(), 6); err != nil {
		log.Fatal(err)
	}
	if err := c.SyncView(); err != nil {
		log.Fatal(err)
	}
	res, err = c.Query(context.Background(), pps.And,
		pps.Predicate{Kind: pps.Keyword, Word: word})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after repartition to p=6: %d matches via %d sub-queries — same answer, new layout\n",
		len(res.IDs), res.SubQueries)
}
