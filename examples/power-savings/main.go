// Power savings with multiple rings (§4.7, §4.9.1): nodes live on two
// rings, each holding a full copy of the data. At night (low load) one
// ring is powered down entirely — queries keep working off the other —
// and brought back in the morning with only a delta refresh, because
// returning nodes keep their ranges.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"roar/internal/cluster"
	"roar/internal/pps"
	"roar/internal/workload"
)

func main() {
	const nodes = 12
	c, err := cluster.Start(cluster.Options{
		Nodes: nodes,
		Rings: 2, // §4.7: r/2 replicas per ring, full coverage each
		P:     3,
		Seed:  1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	docs, err := c.GenerateCorpus(4000)
	if err != nil {
		log.Fatal(err)
	}
	word := docs[0].Keywords[0]
	query := func(phase string) int {
		res, err := c.Query(context.Background(), pps.And,
			pps.Predicate{Kind: pps.Keyword, Word: word})
		if err != nil {
			log.Fatalf("%s: %v", phase, err)
		}
		fmt.Printf("%-28s %d matches, %v, %d sub-queries\n",
			phase, len(res.IDs), res.Delay.Round(time.Millisecond), res.SubQueries)
		return len(res.IDs)
	}

	day := query("daytime, both rings:")

	// Night falls: power down ring 1. Half the fleet sleeps.
	if err := c.Coord.SetRingEnabled(context.Background(), 1, false); err != nil {
		log.Fatal(err)
	}
	if err := c.SyncView(); err != nil {
		log.Fatal(err)
	}
	night := query("night, ring 1 off:")
	if night != day {
		log.Fatalf("answers changed when the ring went down: %d vs %d", night, day)
	}
	m := workload.Dell1950
	sleeping := nodes / 2
	fmt.Printf("  -> %d nodes asleep: saving ≈ %.0f W (idle draw alone)\n",
		sleeping, float64(sleeping)*m.IdleWatts)

	// Morning: ring 1 returns; nodes kept their ranges so only the
	// overnight delta is re-pushed (here: everything is idempotent).
	before := c.Coord.ObjectsPushed()
	if err := c.Coord.SetRingEnabled(context.Background(), 1, true); err != nil {
		log.Fatal(err)
	}
	if err := c.SyncView(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  -> ring 1 back: %d records refreshed\n", c.Coord.ObjectsPushed()-before)
	morning := query("morning, both rings:")
	if morning != day {
		log.Fatalf("answers changed after the ring returned: %d vs %d", morning, day)
	}
	fmt.Println("all phases returned identical results — 100% harvest throughout")
}
