// Elastic repartition: the headline ROAR capability (§4.5, §7.4) —
// track a query-delay target through load swings by changing the
// partitioning level p at runtime, without restarting or losing answers.
// Raising p is instant (replicas are dropped lazily); lowering it waits
// for replication to complete before the frontend switches.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"roar/internal/cluster"
	"roar/internal/frontend"
	"roar/internal/pps"
	"roar/internal/stats"
	"roar/internal/workload"
)

const (
	nodes    = 12
	target   = 30 * time.Millisecond
	perPhase = 30
)

func main() {
	c, err := cluster.Start(cluster.Options{
		Nodes:      nodes,
		P:          2, // start heavily replicated: r = 6
		NodeSpeeds: workload.UniformSpeeds(nodes, 120000),
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	if _, err := c.GenerateCorpus(6000); err != nil {
		log.Fatal(err)
	}
	q, err := c.Enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "no-such"})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("delay target: %v; starting at p=%d (r=%d)\n\n", target, c.Coord.P(), nodes/c.Coord.P())
	phases := []struct {
		name    string
		workers int
	}{
		{"low load   (1 client) ", 1},
		{"flash crowd (4 clients)", 4},
		{"load drops  (1 client) ", 1},
	}
	for _, ph := range phases {
		mean := measure(c, q, ph.workers)
		fmt.Printf("%s p=%-2d mean delay %8v", ph.name, c.Coord.P(), mean.Round(time.Millisecond))
		switch {
		case mean > target && c.Coord.P() < nodes/2:
			newP := c.Coord.P() * 2
			t0 := time.Now()
			if err := c.Coord.ChangeP(context.Background(), newP); err != nil {
				log.Fatal(err)
			}
			if err := c.SyncView(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  -> over target: raised p to %d in %v (replica drop, no data moved)", newP, time.Since(t0).Round(time.Millisecond))
		case mean < target/4 && c.Coord.P() > 2:
			newP := c.Coord.P() / 2
			before := c.Coord.ObjectsPushed()
			t0 := time.Now()
			if err := c.Coord.ChangeP(context.Background(), newP); err != nil {
				log.Fatal(err)
			}
			if err := c.SyncView(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  -> far under target: lowered p to %d in %v (%d replicas shipped first)",
				newP, time.Since(t0).Round(time.Millisecond), c.Coord.ObjectsPushed()-before)
		default:
			fmt.Printf("  -> within band: hold")
		}
		mean = measure(c, q, ph.workers)
		fmt.Printf("; now %v\n", mean.Round(time.Millisecond))
	}
}

func measure(c *cluster.Cluster, q pps.Query, workers int) time.Duration {
	var (
		wg sync.WaitGroup
		mu sync.Mutex
		s  = stats.NewSample(perPhase)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perPhase/workers; i++ {
				res, err := c.FE.Query(context.Background(), frontend.QuerySpec{Enc: q})
				if err != nil {
					log.Fatal(err)
				}
				mu.Lock()
				s.Add(res.Delay.Seconds())
				mu.Unlock()
				if workers == 1 {
					time.Sleep(10 * time.Millisecond)
				}
			}
		}()
	}
	wg.Wait()
	return time.Duration(s.Mean() * float64(time.Second))
}
