// Control-plane failover walkthrough: the membership coordinator — the
// one process every other ROAR component leans on — runs as a
// three-replica set with leader leases and a log-replicated view, and
// this example kills the leader at the worst possible moment to show
// what the replication buys:
//
//  1. three replicas elect a lease holder; nodes join and a frontend
//     syncs its view through the failover client, never caring which
//     replica answers;
//  2. a repartitioning (ChangeP 4→2) starts, and the leader is killed
//     right after the intent commits — before any data moves;
//  3. a follower takes over within the lease timeout, finds the durable
//     intent in its inherited state, and finishes the reconfiguration
//     on its own;
//  4. queries flow uninterrupted the whole time (the data plane never
//     touches the coordinator), and the deposed leader's final view is
//     rejected by the frontend's (Term, Epoch) fence.
//
// The same topology runs as real processes with:
//
//	roar-member -listen :7001 -peers :7001,:7002,:7003 ...
//	roar-frontend -member :7001,:7002,:7003 ...
//
// See docs/HA.md for the protocol.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"roar/internal/cluster"
	"roar/internal/frontend"
	"roar/internal/pps"
)

func main() {
	const (
		nodes   = 8
		p       = 4
		pTarget = 2
		workers = 8
	)

	// The crash-point hook: freeze the leader the instant the ChangeP
	// intent is durable, so the kill below lands mid-reconfiguration.
	var once sync.Once
	intentHit := make(chan struct{})
	release := make(chan struct{})
	hc, err := cluster.StartHA(cluster.HAOptions{
		Replicas: 3, Nodes: nodes, P: p, Seed: 42,
		Lease:     300 * time.Millisecond,
		Heartbeat: 75 * time.Millisecond,
		Frontend:  frontend.Config{Name: "fe-0", PQ: nodes},
		OnIntentCommitted: func(int) {
			fired := false
			once.Do(func() { fired = true })
			if fired {
				close(intentHit)
				<-release
			}
		},
		Logf: log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer hc.Close()

	// A small corpus where every document matches the demo query.
	recs := make([]pps.Encoded, 120)
	for i := range recs {
		recs[i], err = hc.Enc.EncryptDocument(pps.Document{
			ID: uint64(i + 1), Path: fmt.Sprintf("/corpus/%d", i), Size: int64(i),
			Modified: time.Unix(1.2e9, 0), Keywords: []string{"report"},
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	if err := hc.LoadEncoded(recs); err != nil {
		log.Fatal(err)
	}
	q, err := hc.Enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "report"})
	if err != nil {
		log.Fatal(err)
	}

	leader, err := hc.WaitLeader(10 * time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== leader elected: %s (term %d)\n", leader.Self(), leader.Term())
	staleView, err := leader.View()
	if err != nil {
		log.Fatal(err)
	}

	// Query load that never stops across the kill.
	var ok, failed atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				res, err := hc.FE.Query(ctx, frontend.QuerySpec{Enc: q})
				cancel()
				if err != nil || len(res.IDs) != len(recs) {
					failed.Add(1)
				} else {
					ok.Add(1)
				}
			}
		}()
	}

	fmt.Printf("== starting ChangeP %d→%d and killing the leader mid-way\n", p, pTarget)
	go func() {
		if err := leader.ChangeP(context.Background(), pTarget); err != nil {
			log.Printf("killed leader's ChangeP (expected to fail): %v", err)
		}
	}()
	<-intentHit
	killedAt := time.Now()
	hc.KillReplica(hc.ReplicaIndex(leader))
	close(release)
	fmt.Println("== leader killed: intent committed, no data moved")

	next, err := hc.WaitLeader(10 * time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== %s took over in %v (term %d)\n",
		next.Self(), time.Since(killedAt).Round(time.Millisecond), next.Term())

	// The successor finishes the inherited reconfiguration on its own.
	for {
		v, verr := next.View()
		st, okSt := next.CommittedState()
		if verr == nil && okSt && v.P == pTarget && st.PendingP == 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("== inherited ChangeP finished: cluster at p=%d\n", pTarget)

	// The frontend fails over and installs the new view; the deposed
	// leader's last view is fenced out.
	if err := hc.Syncer.PullViewOnce(context.Background()); err != nil {
		log.Fatal(err)
	}
	if err := hc.FE.ApplyView(staleView); errors.Is(err, frontend.ErrStaleView) {
		fmt.Printf("== deposed leader's view (term %d) rejected: %v\n", staleView.Term, err)
	} else {
		log.Fatalf("stale view was not fenced: %v", err)
	}

	close(stop)
	wg.Wait()
	fmt.Printf("== %d queries served across the failover, %d failed\n", ok.Load(), failed.Load())
}
