// Autonomic elasticity (§4.5 + §4.9.1 + §6.3 as one closed loop): the
// controller consumes the telemetry frontends already push in their
// health reports — shed counts per priority, admission-queue waits,
// hedge-budget denials, per-node latency digests — and issues the
// reconfiguration calls an operator would otherwise type by hand.
//
// The walkthrough stages a day in the cluster's life:
//
//  1. a load surge sheds low-priority queries until the controller
//     powers the standby ring up (watch the shed rate collapse);
//  2. the surge passes and the controller powers the ring back down;
//  3. a node dies, the health loop quarantines it, and once it has been
//     dark past the deadline the controller decommissions it outright.
//
// A dry-run controller runs alongside the active one to show the
// operator-facing mode: identical decisions, no mutations.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"roar/internal/cluster"
	"roar/internal/frontend"
	"roar/internal/membership"
	"roar/internal/pps"
)

func main() {
	const (
		nodes   = 8
		workers = 20
	)
	c, err := cluster.Start(cluster.Options{
		Nodes:          nodes,
		Rings:          2, // the second ring is the elastic standby
		P:              2,
		Seed:           7,
		FixedQueryCost: 4 * time.Millisecond,
		Frontend: frontend.Config{
			Name:            "fe-0",
			SubQueryTimeout: 150 * time.Millisecond,
			ProbeInterval:   25 * time.Millisecond,
			ShedHighWater:   5, // mean reported queue depth → overload
		},
		Health: membership.HealthConfig{QuarantineThreshold: 2},
		Autoscale: &membership.AutoscaleConfig{
			ShedRef:            1, // a single shed per tick is full pressure
			DepthRef:           1000,
			SustainTicks:       2,
			Cooldown:           time.Second,
			QuarantineDeadline: 2 * time.Second,
			Logf:               log.Printf,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	docs, err := c.GenerateCorpus(2000)
	if err != nil {
		log.Fatal(err)
	}
	q, err := c.Enc.EncryptQuery(pps.And,
		pps.Predicate{Kind: pps.Keyword, Word: docs[0].Keywords[0]})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// The dry-run twin: same telemetry, no authority. Its log lines are
	// what an operator would review before enabling -autoscale for real.
	shadow := c.Coord.NewAutoscaler(membership.AutoscaleConfig{
		DryRun: true, ShedRef: 1, DepthRef: 1000, SustainTicks: 2,
		Cooldown: time.Second, QuarantineDeadline: 2 * time.Second,
		Logf: log.Printf,
	})

	// Night configuration: standby ring dark.
	if err := c.SetRingEnabled(ctx, 1, false); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("standby ring powered down: %d of %d nodes serving\n\n",
		len(c.FE.View().Nodes), nodes)

	// Morning surge: closed-loop load, PriorityLow probes measuring the
	// shed rate each control tick.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					if _, err := c.FE.Query(ctx, frontend.QuerySpec{Enc: q}); err != nil {
						return
					}
				}
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)

	tick := func(phase string) []membership.AutoscaleDecision {
		shed := 0
		for i := 0; i < 4; i++ {
			if _, err := c.FE.Query(ctx, frontend.QuerySpec{Enc: q, Priority: frontend.PriorityLow}); errors.Is(err, frontend.ErrShed) {
				shed++
			}
			time.Sleep(5 * time.Millisecond)
		}
		c.PumpHealth()
		shadow.Step(ctx)
		ds, err := c.StepAutoscale(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s sheds %d/4, %d nodes serving\n", phase, shed, len(c.FE.View().Nodes))
		return ds
	}

	fmt.Println("-- surge: controller under sustained shed pressure --")
	for i := 0; i < 8; i++ {
		ds := tick(fmt.Sprintf("surge tick %d:", i))
		if len(ds) > 0 && ds[0].Action == membership.ActionRingUp {
			break
		}
	}
	fmt.Println()
	time.Sleep(150 * time.Millisecond)
	shedAfter := 0
	for i := 0; i < 8; i++ {
		if _, err := c.FE.Query(ctx, frontend.QuerySpec{Enc: q, Priority: frontend.PriorityLow}); errors.Is(err, frontend.ErrShed) {
			shedAfter++
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("after ring-up: sheds %d/8 at the same offered load\n\n", shedAfter)

	// The surge passes.
	close(stop)
	wg.Wait()
	fmt.Println("-- load gone: controller gives the capacity back --")
	for i := 0; i < 4; i++ {
		time.Sleep(300 * time.Millisecond) // clear the 1s cooldown
		ds := tick(fmt.Sprintf("quiet tick %d:", i))
		if len(ds) > 0 && ds[0].Action == membership.ActionRingDown {
			break
		}
	}
	fmt.Println()

	// A node dies; the health loop quarantines it, and past the
	// deadline the controller retires it for good.
	fmt.Println("-- node death: quarantine, then deadline decommission --")
	if err := c.KillNode(0); err != nil {
		log.Fatal(err)
	}
	for len(c.Coord.Quarantined()) == 0 {
		if _, err := c.FE.Query(ctx, frontend.QuerySpec{Enc: q}); err != nil {
			log.Fatalf("query during failure: %v", err)
		}
		c.PumpHealth()
	}
	fmt.Printf("quarantined: nodes %v (data retained, scheduling demoted)\n", c.Coord.Quarantined())
	time.Sleep(2500 * time.Millisecond) // sit out the 2s deadline
	c.PumpHealth()
	shadow.Step(ctx)
	if _, err := c.StepAutoscale(ctx); err != nil {
		log.Fatal(err)
	}
	res, err := c.FE.Query(ctx, frontend.QuerySpec{Enc: q})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after decommission: %d nodes serving, query still returns %d matches\n",
		len(c.FE.View().Nodes), len(res.IDs))
}
