module roar

go 1.24
