// Consumer: the drain half of the ingest pipeline. One loop reads
// durable batches out of the WAL and pushes each record to the nodes
// that own it, with at-least-once delivery:
//
//   - Routes are re-resolved on every attempt, so a batch that stalls
//     on a dead node is re-routed the moment the coordinator publishes
//     a view without it — this is what makes decommission replay work
//     without any special casing.
//   - Acked offsets are tracked per target key; a retry skips targets
//     that already took the batch, so a partial failure re-delivers
//     only to the nodes that missed it.
//   - Failures back off exponentially with jitter, bounded by
//     MaxBackoff, and never advance the drained watermark — the WAL
//     keeps the records until delivery succeeds.
//
// Duplicates are the price of at-least-once, and the node side absorbs
// them: store.Insert dedups by record ID (last write wins), so
// re-delivery is a no-op. See docs/INGEST.md for the full contract.
package ingest

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"sync"
	"time"

	"roar/internal/pps"
)

// Target is one delivery destination for a record: Key identifies the
// node across attempts (acked offsets latch on it) and Push performs
// the delivery RPC.
type Target struct {
	Key  string
	Push func(ctx context.Context, recs []pps.Encoded) error
}

// Route resolves the current owners of a record. Called fresh on every
// delivery attempt so topology and epoch changes take effect
// immediately. An error (e.g. no live nodes) fails the whole attempt
// and the batch is retried after backoff.
type Route func(rec pps.Encoded) ([]Target, error)

// ConsumerConfig tunes a Consumer. Zero values take the documented
// defaults.
type ConsumerConfig struct {
	// Route resolves delivery targets. Required.
	Route Route
	// BatchSize caps the records drained per delivery round. Default 256.
	BatchSize int
	// MinBackoff is the first retry delay. Default 10ms.
	MinBackoff time.Duration
	// MaxBackoff caps the exponential retry delay. Default 2s.
	MaxBackoff time.Duration
	// OnAdvance, when set, observes every drained-watermark advance.
	// Called from the drain goroutine; must not block on the consumer
	// stopping (in particular it must NOT synchronously drive anything
	// that might call Stop).
	OnAdvance func(drained uint64)
	// Logf, when set, receives one line per delivery failure.
	Logf func(format string, args ...any)
	// After injects the backoff timer (tests). Nil means real time.
	After func(time.Duration) <-chan time.Time
}

func (cc ConsumerConfig) withDefaults() ConsumerConfig {
	if cc.BatchSize <= 0 {
		cc.BatchSize = 256
	}
	if cc.MinBackoff <= 0 {
		cc.MinBackoff = 10 * time.Millisecond
	}
	if cc.MaxBackoff <= 0 {
		cc.MaxBackoff = 2 * time.Second
	}
	if cc.After == nil {
		cc.After = time.After
	}
	return cc
}

// Consumer drains a WAL to its routed targets.
type Consumer struct {
	wal *WAL
	cfg ConsumerConfig

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	drained uint64
	acked   map[string]uint64 // per-target-key delivered-through sequence
	waitCh  chan struct{}     // closed and replaced on every advance
	started bool
}

// NewConsumer binds a consumer to its WAL. Start begins the drain.
func NewConsumer(w *WAL, cfg ConsumerConfig) *Consumer {
	ctx, cancel := context.WithCancel(context.Background()) //lint:allow background — consumer lifetime root; Stop cancels it
	return &Consumer{
		wal:    w,
		cfg:    cfg.withDefaults(),
		ctx:    ctx,
		cancel: cancel,
		acked:  make(map[string]uint64),
		waitCh: make(chan struct{}),
	}
}

func (c *Consumer) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Start launches the drain loop, resuming after sequence `from` (0
// drains everything). Idempotent: a second Start is a no-op.
func (c *Consumer) Start(from uint64) {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return
	}
	c.started = true
	c.drained = from
	c.mu.Unlock()
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.run()
	}()
}

// Stop halts the drain loop and waits for it to exit. Idempotent.
func (c *Consumer) Stop() {
	c.cancel()
	c.wg.Wait()
}

// Drained returns the watermark: every record with sequence <= Drained
// has been delivered to all of its routed targets at least once.
func (c *Consumer) Drained() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.drained
}

// WaitDrained blocks until the drained watermark reaches seq or ctx
// ends.
func (c *Consumer) WaitDrained(ctx context.Context, seq uint64) error {
	for {
		c.mu.Lock()
		d, ch := c.drained, c.waitCh
		c.mu.Unlock()
		if d >= seq {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-c.ctx.Done():
			return errors.New("ingest: consumer stopped")
		case <-ch:
		}
	}
}

func (c *Consumer) run() {
	for {
		batch, last, err := c.readBatch()
		if err != nil {
			if c.ctx.Err() != nil {
				return
			}
			c.logf("ingest: reading wal batch: %v", err)
			if !c.sleep(c.cfg.MinBackoff) {
				return
			}
			continue
		}
		if len(batch) == 0 {
			// Caught up: wait for an append (or stop).
			select {
			case <-c.ctx.Done():
				return
			case <-c.wal.Notify():
			}
			continue
		}
		if !c.deliver(batch, last) {
			return
		}
		c.advance(last)
	}
}

// readBatch collects up to BatchSize records after the drained
// watermark.
func (c *Consumer) readBatch() (recs []pps.Encoded, last uint64, err error) {
	c.mu.Lock()
	from := c.drained
	c.mu.Unlock()
	err = c.wal.Replay(from, func(seq uint64, rec pps.Encoded) bool {
		recs = append(recs, rec)
		last = seq
		return len(recs) < c.cfg.BatchSize
	})
	return recs, last, err
}

// deliver pushes one batch to every routed target, retrying with
// backoff until all succeed or the consumer stops. Returns false only
// on stop.
func (c *Consumer) deliver(batch []pps.Encoded, last uint64) bool {
	backoff := c.cfg.MinBackoff
	for attempt := 0; ; attempt++ {
		if c.ctx.Err() != nil {
			return false
		}
		if c.attempt(batch, last) {
			return true
		}
		// Jittered exponential backoff: a uniformly random slice of the
		// current window avoids retry synchronisation across consumers.
		d := c.cfg.MinBackoff + time.Duration(rand.Int63n(int64(backoff)+1))
		if !c.sleep(d) {
			return false
		}
		if backoff *= 2; backoff > c.cfg.MaxBackoff {
			backoff = c.cfg.MaxBackoff
		}
	}
}

// attempt makes one delivery pass: re-resolve routes, group records by
// target, push groups in parallel, latch per-target acks. True when
// every target took its records.
func (c *Consumer) attempt(batch []pps.Encoded, last uint64) bool {
	type group struct {
		push func(context.Context, []pps.Encoded) error
		recs []pps.Encoded
	}
	groups := make(map[string]*group)
	for _, rec := range batch {
		targets, err := c.cfg.Route(rec)
		if err != nil {
			c.logf("ingest: routing record %d: %v", rec.ID, err)
			return false
		}
		for _, t := range targets {
			g := groups[t.Key]
			if g == nil {
				g = &group{push: t.Push}
				groups[t.Key] = g
			}
			g.recs = append(g.recs, rec)
		}
	}
	// Skip targets that already took this batch on an earlier attempt.
	c.mu.Lock()
	keys := make([]string, 0, len(groups))
	for k := range groups {
		if c.acked[k] < last {
			keys = append(keys, k)
		}
	}
	c.mu.Unlock()
	sort.Strings(keys)
	ok := make([]bool, len(keys))
	var wg sync.WaitGroup
	for i, k := range keys {
		g := groups[k]
		wg.Add(1)
		go func(i int, key string, g *group) {
			defer wg.Done()
			if err := g.push(c.ctx, g.recs); err != nil {
				c.logf("ingest: pushing %d records to %s: %v", len(g.recs), key, err)
				return
			}
			ok[i] = true
		}(i, k, g)
	}
	wg.Wait()
	all := true
	c.mu.Lock()
	for i, k := range keys {
		if ok[i] {
			if c.acked[k] < last {
				c.acked[k] = last
			}
		} else {
			all = false
		}
	}
	c.mu.Unlock()
	return all
}

// advance publishes a new drained watermark and wakes waiters.
func (c *Consumer) advance(seq uint64) {
	c.mu.Lock()
	if seq > c.drained {
		c.drained = seq
	}
	ch := c.waitCh
	c.waitCh = make(chan struct{})
	c.mu.Unlock()
	close(ch)
	if c.cfg.OnAdvance != nil {
		c.cfg.OnAdvance(seq)
	}
}

// sleep waits for d or the consumer stopping; false means stopped.
func (c *Consumer) sleep(d time.Duration) bool {
	select {
	case <-c.ctx.Done():
		return false
	case <-c.cfg.After(d):
		return true
	}
}
