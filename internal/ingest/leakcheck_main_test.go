package ingest

import (
	"testing"

	"roar/internal/testutil/leakcheck"
)

// TestMain gates the whole package's test binary on goroutine
// hygiene: any test that leaves a goroutine running fails the run.
func TestMain(m *testing.M) { leakcheck.Main(m) }
