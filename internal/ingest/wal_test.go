package ingest

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"roar/internal/pps"
)

func testRec(rng *rand.Rand, id uint64) pps.Encoded {
	r := pps.Encoded{ID: id}
	r.Nonce = make([]byte, 16)
	r.Filter = make([]byte, 64)
	rng.Read(r.Nonce)
	rng.Read(r.Filter)
	return r
}

func testRecs(seed int64, n int) []pps.Encoded {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]pps.Encoded, n)
	for i := range recs {
		recs[i] = testRec(rng, rng.Uint64())
	}
	return recs
}

func replayAll(t *testing.T, w *WAL, after uint64) (seqs []uint64, recs []pps.Encoded) {
	t.Helper()
	err := w.Replay(after, func(seq uint64, rec pps.Encoded) bool {
		seqs = append(seqs, seq)
		recs = append(recs, rec)
		return true
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return seqs, recs
}

func sameRec(a, b pps.Encoded) bool {
	return a.ID == b.ID && bytes.Equal(a.Nonce, b.Nonce) && bytes.Equal(a.Filter, b.Filter)
}

func TestWALAppendReplayReopen(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecs(1, 10)
	seq, err := w.Append(recs...)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 10 {
		t.Fatalf("last seq %d, want 10", seq)
	}
	if d := w.DurableSeq(); d != 10 {
		t.Fatalf("durable %d after Append returned, want 10", d)
	}
	seqs, got := replayAll(t, w, 0)
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if seqs[i] != uint64(i+1) {
			t.Fatalf("seq[%d] = %d, want %d", i, seqs[i], i+1)
		}
		if !sameRec(got[i], recs[i]) {
			t.Fatalf("record %d does not round-trip", i)
		}
	}
	// Partial replay resumes mid-log.
	seqs, _ = replayAll(t, w, 7)
	if len(seqs) != 3 || seqs[0] != 8 {
		t.Fatalf("replay after 7 returned seqs %v", seqs)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: recovery restores the sequence space and the contents.
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := w2.LastSeq(); got != 10 {
		t.Fatalf("recovered LastSeq %d, want 10", got)
	}
	_, got = replayAll(t, w2, 0)
	if len(got) != 10 || !sameRec(got[9], recs[9]) {
		t.Fatalf("recovered replay lost records (%d of 10)", len(got))
	}
	// And appends continue the sequence.
	seq, err = w2.Append(testRecs(2, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 11 {
		t.Fatalf("post-recovery append got seq %d, want 11", seq)
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecs(3, 5)
	if _, err := w.Append(recs...); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-write: a complete extra frame followed by a
	// torn one at the tail of the last segment.
	names, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(names) != 1 {
		t.Fatalf("expected 1 segment, found %v", names)
	}
	extra := AppendFrame(nil, 6, testRecs(4, 1)[0])
	torn := AppendFrame(nil, 7, testRecs(5, 1)[0])
	torn = torn[:len(torn)-3]
	f, err := os.OpenFile(names[0], os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(append(extra, torn...)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery rejected a torn tail: %v", err)
	}
	defer w2.Close()
	// The complete frame survives, the torn one is gone, and the next
	// append takes the torn frame's sequence.
	if got := w2.LastSeq(); got != 6 {
		t.Fatalf("recovered LastSeq %d, want 6", got)
	}
	seq, err := w2.Append(testRecs(6, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 7 {
		t.Fatalf("post-truncation append got seq %d, want 7", seq)
	}
	seqs, _ := replayAll(t, w2, 0)
	if len(seqs) != 7 {
		t.Fatalf("replay after torn-tail recovery returned %d records, want 7", len(seqs))
	}
}

func TestWALCorruptionMidLogRejected(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation so corruption lands in a NON-last
	// segment, where truncation would silently lose fsynced data.
	w, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range testRecs(7, 12) {
		if _, err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(names) < 2 {
		t.Fatalf("rotation never happened: %v", names)
	}
	data, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-5] ^= 0xff
	if err := os.WriteFile(names[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{SegmentBytes: 256}); err == nil {
		t.Fatal("recovery accepted corruption in the middle of the log")
	}
}

func TestWALRotationAndTruncateThrough(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	recs := testRecs(9, 20)
	for _, r := range recs {
		if _, err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	w.mu.Lock()
	nsegs := len(w.segs)
	cut := w.segs[nsegs-1].first - 1 // everything before the active segment
	w.mu.Unlock()
	if nsegs < 3 {
		t.Fatalf("expected >= 3 segments, got %d", nsegs)
	}
	removed, err := w.TruncateThrough(cut)
	if err != nil {
		t.Fatal(err)
	}
	if removed != nsegs-1 {
		t.Fatalf("removed %d segments, want %d", removed, nsegs-1)
	}
	// The tail is intact and the sequence space is unbroken.
	seqs, got := replayAll(t, w, cut)
	if len(seqs) == 0 || seqs[0] != cut+1 || seqs[len(seqs)-1] != 20 {
		t.Fatalf("post-truncation replay seqs %v", seqs)
	}
	for i, s := range seqs {
		if !sameRec(got[i], recs[s-1]) {
			t.Fatalf("record at seq %d corrupted by truncation", s)
		}
	}
	// TruncateThrough never deletes the active segment.
	if removed, _ := w.TruncateThrough(100); removed != 0 {
		t.Fatalf("active segment was deleted (%d removed)", removed)
	}
}

func TestWALGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	const producers, each = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + p)))
			for i := 0; i < each; i++ {
				seq, err := w.Append(testRec(rng, uint64(p)<<32|uint64(i)))
				if err != nil {
					errs <- err
					return
				}
				if d := w.DurableSeq(); d < seq {
					t.Errorf("Append returned seq %d but durable is %d", seq, d)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	seqs, recs := replayAll(t, w, 0)
	if len(seqs) != producers*each {
		t.Fatalf("replayed %d records, want %d", len(seqs), producers*each)
	}
	seen := map[uint64]bool{}
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("sequence hole at %d (got %d)", i+1, s)
		}
		if seen[recs[i].ID] {
			t.Fatalf("record %d appended twice", recs[i].ID)
		}
		seen[recs[i].ID] = true
	}
}

// FuzzDecodeWAL is the codec round-trip property for the frame format:
// any input DecodeFrame accepts must re-encode (AppendFrame) and
// re-decode to the identical record, and decoding must never panic on
// arbitrary bytes.
func FuzzDecodeWAL(f *testing.F) {
	rng := rand.New(rand.NewSource(11))
	f.Add(AppendFrame(nil, 1, testRec(rng, 42)))
	f.Add(AppendFrame(nil, 1<<40, pps.Encoded{ID: 7}))
	var multi []byte
	for i, r := range testRecs(12, 3) {
		multi = AppendFrame(multi, uint64(i+1), r)
	}
	f.Add(multi)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 4, 0, 0, 0, 0, 1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		seq, rec, n, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		reenc := AppendFrame(nil, seq, rec)
		seq2, rec2, n2, err := DecodeFrame(reenc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if n2 != len(reenc) {
			t.Fatalf("re-decode consumed %d of %d bytes", n2, len(reenc))
		}
		if seq2 != seq || !sameRec(rec, rec2) {
			t.Fatalf("round-trip mismatch: seq %d→%d", seq, seq2)
		}
	})
}
