// Package ingest implements the durable asynchronous write path: a
// segment-file write-ahead log that producers append records to, and a
// consumer loop (consumer.go) that drains the log to the owning data
// nodes with at-least-once delivery.
//
// The update path of §7.4 assumes every object reliably reaches its r
// replicas, but a synchronous push pipeline loses everything in flight
// when a node crashes or a coordinator fails over. The WAL decouples
// acceptance from delivery: an append is acknowledged once the record
// is fsynced here, and delivery — however many retries, replays and
// reconfigurations it takes — happens behind the durable buffer.
//
// On-disk layout (house codec style, see store.SaveFile and the index
// segment format): each segment file starts with an 8-byte magic and
// carries length-prefixed frames,
//
//	frame   := u32 payload-length | u32 crc32(payload) | payload
//	payload := uvarint seq | uvarint id | uvarint nonce-len | nonce |
//	           uvarint filter-len | filter
//
// Sequence numbers are global across segments, contiguous, and start
// at 1; a segment's file name carries the sequence its first frame
// holds. Recovery scans every segment with a bounds-checked cursor:
// torn bytes at the tail of the LAST segment are truncated (the crash
// left a partial write; everything before it was fsynced), while
// corruption anywhere else is an error — silent data loss is never an
// option for the middle of the log.
package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"roar/internal/pps"
)

const (
	segMagic = "ROARWAL1"
	// segHeaderBytes is the fixed segment prefix: just the magic; the
	// first frame's sequence is in the file name and inside the frame.
	segHeaderBytes = len(segMagic)
	// frameHeaderBytes prefixes every frame: payload length + CRC.
	frameHeaderBytes = 8
	// maxFramePayload bounds a declared payload length so a corrupt
	// header cannot provoke a giant allocation.
	maxFramePayload = 64 << 20
)

// ErrShortFrame reports that the input ends before the frame does —
// recovery treats it as a torn tail, not corruption.
var ErrShortFrame = errors.New("ingest: truncated frame")

// ErrClosed reports an operation on a closed WAL.
var ErrClosed = errors.New("ingest: wal closed")

// AppendFrame appends one length-prefixed, CRC-guarded frame for
// (seq, rec) to b. Pure function, shared by the writer and the fuzz
// round-trip target.
func AppendFrame(b []byte, seq uint64, rec pps.Encoded) []byte {
	hdrAt := len(b)
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0)
	payloadAt := len(b)
	b = binary.AppendUvarint(b, seq)
	b = binary.AppendUvarint(b, rec.ID)
	b = binary.AppendUvarint(b, uint64(len(rec.Nonce)))
	b = append(b, rec.Nonce...)
	b = binary.AppendUvarint(b, uint64(len(rec.Filter)))
	b = append(b, rec.Filter...)
	payload := b[payloadAt:]
	binary.BigEndian.PutUint32(b[hdrAt:], uint32(len(payload)))
	binary.BigEndian.PutUint32(b[hdrAt+4:], crc32.ChecksumIEEE(payload))
	return b
}

// DecodeFrame decodes one frame from the head of data, returning the
// bytes consumed. Byte slices in the returned record are copies (the
// input may alias a reused read buffer). ErrShortFrame means data ends
// mid-frame; any other error means the bytes are corrupt.
func DecodeFrame(data []byte) (seq uint64, rec pps.Encoded, n int, err error) {
	if len(data) < frameHeaderBytes {
		return 0, pps.Encoded{}, 0, ErrShortFrame
	}
	plen := binary.BigEndian.Uint32(data)
	if plen > maxFramePayload {
		return 0, pps.Encoded{}, 0, fmt.Errorf("ingest: frame payload length %d exceeds limit", plen)
	}
	if uint64(len(data)-frameHeaderBytes) < uint64(plen) {
		return 0, pps.Encoded{}, 0, ErrShortFrame
	}
	payload := data[frameHeaderBytes : frameHeaderBytes+int(plen)]
	if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(data[4:]); got != want {
		return 0, pps.Encoded{}, 0, fmt.Errorf("ingest: frame crc mismatch (got %08x want %08x)", got, want)
	}
	r := &frameReader{data: payload}
	seq = r.uvarint("frame seq")
	rec.ID = r.uvarint("record id")
	rec.Nonce = r.bytes("record nonce")
	rec.Filter = r.bytes("record filter")
	if r.err == nil && r.off != len(r.data) {
		r.err = fmt.Errorf("ingest: %d trailing bytes in frame payload", len(r.data)-r.off)
	}
	if r.err != nil {
		return 0, pps.Encoded{}, 0, r.err
	}
	return seq, rec, frameHeaderBytes + int(plen), nil
}

// frameReader is the bounds-checked payload cursor (the same shape as
// the proto package's strict decoders; duplicated here because that
// cursor is unexported and ingest must not depend on proto).
type frameReader struct {
	data []byte
	off  int
	err  error
}

func (r *frameReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("ingest: truncated or corrupt %s", what)
	}
}

func (r *frameReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.off += n
	return v
}

func (r *frameReader) bytes(what string) []byte {
	l := r.uvarint(what)
	if r.err != nil {
		return nil
	}
	if uint64(len(r.data)-r.off) < l {
		r.fail(what)
		return nil
	}
	if l == 0 {
		return nil
	}
	out := make([]byte, l)
	copy(out, r.data[r.off:])
	r.off += int(l)
	return out
}

// Options tunes a WAL.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this many
	// bytes. Default 8 MiB.
	SegmentBytes int64
	// NoSync skips fsync on flush (benchmarks measuring raw encode and
	// write throughput; never durable deployments).
	NoSync bool
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	return o
}

// segment is one on-disk log file. first is the sequence of its first
// frame; a segment with no frames yet has first = the next sequence to
// be written.
type segment struct {
	path  string
	first uint64
}

// WAL is a durable, crash-recoverable record log. Appends are
// group-committed: concurrent Append calls batch their frames into one
// write+fsync, so fsync cost amortises across producers.
type WAL struct {
	dir  string
	opts Options

	mu   sync.Mutex
	cond *sync.Cond
	// f is the active segment; only the current flusher (the Append
	// call that observed flushing == false) touches it, so file I/O
	// happens outside mu.
	f        *os.File
	fsize    int64
	segs     []segment
	nextSeq  uint64 // last assigned sequence
	pending  []byte // encoded frames awaiting flush
	durable  uint64 // highest fsynced sequence
	flushing bool
	closed   bool
	err      error // sticky write/fsync failure

	notify chan struct{} // capacity 1; a token means "durable advanced"
}

// Open opens (or creates) the WAL in dir, recovering existing segments.
// A torn frame at the tail of the last segment is truncated away; any
// other decode failure is returned as corruption.
func Open(dir string, opts Options) (*WAL, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ingest: creating wal dir: %w", err)
	}
	w := &WAL{dir: dir, opts: opts, notify: make(chan struct{}, 1)}
	w.cond = sync.NewCond(&w.mu)
	if err := w.recover(); err != nil {
		return nil, err
	}
	return w, nil
}

func segPath(dir string, first uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.seg", first))
}

// recover scans the segment files in sequence order, validating frame
// continuity, and leaves the WAL positioned to append after the last
// durable record.
func (w *WAL) recover() error {
	names, err := filepath.Glob(filepath.Join(w.dir, "wal-*.seg"))
	if err != nil {
		return err
	}
	sort.Strings(names) // %016x names sort in sequence order
	next := uint64(1)
	for i, path := range names {
		last := i == len(names)-1
		first, n, err := w.recoverSegment(path, next, last)
		if err != nil {
			return err
		}
		w.segs = append(w.segs, segment{path: path, first: first})
		next += n
	}
	w.nextSeq = next - 1
	w.durable = w.nextSeq
	if len(w.segs) == 0 {
		if err := w.openSegment(1); err != nil {
			return err
		}
		return nil
	}
	// Reopen the last segment for appending.
	active := w.segs[len(w.segs)-1]
	f, err := os.OpenFile(active.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return err
	}
	w.f, w.fsize = f, size
	return nil
}

// recoverSegment validates one segment: magic, the file-name sequence
// matching the expected next sequence, and contiguous frames. On the
// last segment a torn tail is truncated in place; returns the first
// sequence and the number of valid frames.
func (w *WAL) recoverSegment(path string, expectFirst uint64, tolerateTail bool) (first uint64, frames uint64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	if len(data) < segHeaderBytes || string(data[:segHeaderBytes]) != segMagic {
		return 0, 0, fmt.Errorf("ingest: %s: bad segment magic", path)
	}
	off := segHeaderBytes
	seq := expectFirst - 1
	for off < len(data) {
		fseq, _, n, err := DecodeFrame(data[off:])
		if err != nil {
			if tolerateTail {
				// Crash mid-write: everything before off was fsynced in a
				// batch that completed; drop the torn tail.
				if terr := os.Truncate(path, int64(off)); terr != nil {
					return 0, 0, fmt.Errorf("ingest: truncating torn tail of %s: %w", path, terr)
				}
				return expectFirst, seq - (expectFirst - 1), nil
			}
			return 0, 0, fmt.Errorf("ingest: %s at offset %d: %w", path, off, err)
		}
		if fseq != seq+1 {
			return 0, 0, fmt.Errorf("ingest: %s: sequence gap (frame %d after %d)", path, fseq, seq)
		}
		seq = fseq
		off += n
	}
	return expectFirst, seq - (expectFirst - 1), nil
}

// openSegment creates and syncs a fresh segment whose first frame will
// carry sequence first. Caller must be the flusher (or Open).
func (w *WAL) openSegment(first uint64) error {
	path := segPath(w.dir, first)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return err
	}
	if !w.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := syncDir(w.dir); err != nil {
			f.Close()
			return err
		}
	}
	if w.f != nil {
		w.f.Close()
	}
	w.f, w.fsize = f, int64(segHeaderBytes)
	w.segs = append(w.segs, segment{path: path, first: first})
	return nil
}

// syncDir fsyncs a directory so a freshly created segment's name is
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	cerr := d.Close()
	if err != nil {
		return err
	}
	return cerr
}

// Append encodes recs as contiguous frames and returns the sequence of
// the LAST one, blocking until every appended frame is fsynced (group
// commit: whichever Append observes no flush in progress drains the
// shared pending buffer for everyone).
func (w *WAL) Append(recs ...pps.Encoded) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	if w.err != nil {
		return 0, w.err
	}
	for i := range recs {
		w.nextSeq++
		w.pending = AppendFrame(w.pending, w.nextSeq, recs[i])
	}
	myLast := w.nextSeq
	for w.durable < myLast {
		if w.err != nil {
			return 0, w.err
		}
		if w.closed {
			return 0, ErrClosed
		}
		if w.flushing {
			w.cond.Wait()
			continue
		}
		w.flushLocked()
	}
	return myLast, nil
}

// flushLocked drains the pending buffer to disk and fsyncs. Called with
// mu held; releases it around the file I/O (the flushing flag keeps the
// flusher exclusive).
func (w *WAL) flushLocked() {
	w.flushing = true
	buf := w.pending
	w.pending = nil
	last := w.nextSeq
	first := w.durable + 1
	w.mu.Unlock() //lint:allow lock — group commit: the flushing flag keeps the flusher exclusive while the fsync runs unlocked
	err := w.writeAndSync(buf, first)
	w.mu.Lock() //lint:allow lock — re-acquired for the caller, who entered holding it
	if err != nil && w.err == nil {
		w.err = err
	}
	if err == nil && last > w.durable {
		w.durable = last
	}
	w.flushing = false
	w.cond.Broadcast()
	select {
	case w.notify <- struct{}{}:
	default:
	}
}

// writeAndSync rotates if the active segment is over budget, writes one
// batch of frames, and fsyncs. Only the flusher calls it, so w.f and
// w.fsize need no lock.
func (w *WAL) writeAndSync(buf []byte, firstSeq uint64) error {
	if len(buf) == 0 {
		return nil
	}
	if w.fsize >= w.opts.SegmentBytes {
		if err := w.rotate(firstSeq); err != nil {
			return err
		}
	}
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("ingest: wal write: %w", err)
	}
	w.fsize += int64(len(buf))
	if !w.opts.NoSync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("ingest: wal fsync: %w", err)
		}
	}
	return nil
}

// rotate closes the active segment and opens a fresh one. The segs
// slice append needs mu (Replay snapshots it).
func (w *WAL) rotate(firstSeq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.openSegment(firstSeq)
}

// LastSeq returns the last assigned sequence (0 before any append).
// Records up to the sequence returned by a completed Append are
// durable; LastSeq may briefly run ahead of durability while another
// producer's flush is in flight.
func (w *WAL) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextSeq
}

// DurableSeq returns the highest fsynced sequence.
func (w *WAL) DurableSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.durable
}

// Notify returns a channel carrying a token whenever the durable
// watermark advances — the consumer's wake-up signal. Capacity one;
// a reader must re-check state after draining it.
func (w *WAL) Notify() <-chan struct{} { return w.notify }

// Replay streams records with sequence > after to fn in order,
// stopping early when fn returns false. It reads the durable prefix as
// of the call; records appended afterwards are not included. Segments
// wholly before `after` are skipped without reading.
func (w *WAL) Replay(after uint64, fn func(seq uint64, rec pps.Encoded) bool) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	segs := append([]segment(nil), w.segs...)
	limit := w.durable
	w.mu.Unlock()
	if limit <= after {
		return nil
	}
	for i, s := range segs {
		// Skip segments that end before the resume point.
		if i+1 < len(segs) && segs[i+1].first <= after+1 {
			continue
		}
		stop, err := replaySegment(s.path, after, limit, fn)
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

// replaySegment streams one segment's frames in (after, limit] to fn.
// Returns stop = true when fn ended the replay (or limit was reached).
func replaySegment(path string, after, limit uint64, fn func(uint64, pps.Encoded) bool) (stop bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	if len(data) < segHeaderBytes || string(data[:segHeaderBytes]) != segMagic {
		return false, fmt.Errorf("ingest: %s: bad segment magic", path)
	}
	off := segHeaderBytes
	for off < len(data) {
		seq, rec, n, err := DecodeFrame(data[off:])
		if err != nil {
			// The active segment can carry a partially written batch past
			// the durable watermark; anything inside it is invisible to
			// this replay anyway.
			return false, nil
		}
		off += n
		if seq > limit {
			return true, nil
		}
		if seq <= after {
			continue
		}
		if !fn(seq, rec) {
			return true, nil
		}
	}
	return false, nil
}

// TruncateThrough deletes whole segments whose every record has
// sequence <= seq. The active segment is never deleted. Returns the
// number of segments removed.
func (w *WAL) TruncateThrough(seq uint64) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	removed := 0
	for len(w.segs) > 1 && w.segs[1].first <= seq+1 {
		if err := os.Remove(w.segs[0].path); err != nil {
			return removed, err
		}
		w.segs = w.segs[1:]
		removed++
	}
	return removed, nil
}

// Close flushes pending frames and closes the active segment. Further
// operations fail with ErrClosed.
func (w *WAL) Close() error {
	w.mu.Lock()
	for w.flushing {
		w.cond.Wait()
	}
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	if len(w.pending) > 0 && w.err == nil {
		w.flushLocked()
	}
	w.closed = true
	err := w.err
	f := w.f
	w.f = nil
	w.cond.Broadcast()
	w.mu.Unlock()
	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
