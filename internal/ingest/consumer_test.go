package ingest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"roar/internal/pps"
)

// fastAfter collapses backoff sleeps so retry loops spin instead of
// waiting out real time.
func fastAfter(time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	ch <- time.Time{}
	return ch
}

// sink is one delivery target that records what it received and can be
// told to fail.
type sink struct {
	mu    sync.Mutex
	recs  []pps.Encoded
	calls int
	fail  bool
}

func (s *sink) push(_ context.Context, recs []pps.Encoded) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	if s.fail {
		return errors.New("sink down")
	}
	s.recs = append(s.recs, recs...)
	return nil
}

func (s *sink) setFail(v bool) {
	s.mu.Lock()
	s.fail = v
	s.mu.Unlock()
}

// ids returns the set of delivered record IDs and the total delivery
// count (>= set size under retries — at-least-once).
func (s *sink) ids() (map[uint64]int, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := map[uint64]int{}
	for _, r := range s.recs {
		m[r.ID]++
	}
	return m, len(s.recs)
}

func openTestWAL(t *testing.T) *WAL {
	t.Helper()
	w, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

func staticRoute(targets ...Target) Route {
	return func(pps.Encoded) ([]Target, error) { return targets, nil }
}

func waitDrained(t *testing.T, c *Consumer, seq uint64) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.WaitDrained(ctx, seq); err != nil {
		t.Fatalf("drain never reached %d (at %d): %v", seq, c.Drained(), err)
	}
}

func TestConsumerDrainsToAllTargets(t *testing.T) {
	w := openTestWAL(t)
	a, b := &sink{}, &sink{}
	c := NewConsumer(w, ConsumerConfig{
		Route: staticRoute(Target{Key: "a", Push: a.push}, Target{Key: "b", Push: b.push}),
		After: fastAfter,
	})
	recs := testRecs(21, 30)
	seq, err := w.Append(recs...)
	if err != nil {
		t.Fatal(err)
	}
	c.Start(0)
	defer c.Stop()
	waitDrained(t, c, seq)
	for name, s := range map[string]*sink{"a": a, "b": b} {
		got, _ := s.ids()
		if len(got) != len(recs) {
			t.Fatalf("target %s got %d distinct records, want %d", name, len(got), len(recs))
		}
	}
	// Records appended AFTER the drain caught up are picked up via the
	// notify channel, not just the initial backlog.
	seq, err = w.Append(testRecs(22, 5)...)
	if err != nil {
		t.Fatal(err)
	}
	waitDrained(t, c, seq)
	got, _ := a.ids()
	if len(got) != 35 {
		t.Fatalf("post-catch-up append not drained: %d distinct records", len(got))
	}
}

// TestConsumerPartialFailureSkipsAckedTargets: with one target down,
// the watermark must hold and the healthy target must NOT be re-pushed
// on every retry (acked offsets latch). When the sick target recovers,
// the batch completes and the watermark advances.
func TestConsumerPartialFailureSkipsAckedTargets(t *testing.T) {
	w := openTestWAL(t)
	healthy, sick := &sink{}, &sink{}
	sick.setFail(true)
	c := NewConsumer(w, ConsumerConfig{
		Route: staticRoute(Target{Key: "h", Push: healthy.push}, Target{Key: "s", Push: sick.push}),
		After: fastAfter,
	})
	seq, err := w.Append(testRecs(23, 4)...)
	if err != nil {
		t.Fatal(err)
	}
	c.Start(0)
	defer c.Stop()

	// Let retries accumulate against the sick target.
	deadline := time.Now().Add(10 * time.Second)
	for {
		sick.mu.Lock()
		calls := sick.calls
		sick.mu.Unlock()
		if calls >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sick target never saw retries")
		}
		time.Sleep(time.Millisecond)
	}
	if got := c.Drained(); got != 0 {
		t.Fatalf("watermark advanced to %d with a target down", got)
	}
	healthy.mu.Lock()
	healthyCalls := healthy.calls
	healthy.mu.Unlock()
	if healthyCalls != 1 {
		t.Fatalf("healthy target pushed %d times during retries, want exactly 1 (acked skip)", healthyCalls)
	}

	sick.setFail(false)
	waitDrained(t, c, seq)
	got, total := sick.ids()
	if len(got) != 4 {
		t.Fatalf("recovered target got %d distinct records, want 4", len(got))
	}
	if total < 4 {
		t.Fatalf("recovered target total deliveries %d < 4", total)
	}
}

// TestConsumerReroutesToReplacement is the decommission-replay property
// in miniature: a batch stalled on a dead target drains completely the
// moment the route stops naming it — no special replay path.
func TestConsumerReroutesToReplacement(t *testing.T) {
	w := openTestWAL(t)
	dead, repl := &sink{}, &sink{}
	dead.setFail(true)
	var mu sync.Mutex
	target := Target{Key: "old", Push: dead.push}
	route := func(pps.Encoded) ([]Target, error) {
		mu.Lock()
		defer mu.Unlock()
		return []Target{target}, nil
	}
	c := NewConsumer(w, ConsumerConfig{Route: route, After: fastAfter})
	recs := testRecs(24, 6)
	seq, err := w.Append(recs...)
	if err != nil {
		t.Fatal(err)
	}
	c.Start(0)
	defer c.Stop()
	deadline := time.Now().Add(10 * time.Second)
	for {
		dead.mu.Lock()
		calls := dead.calls
		dead.mu.Unlock()
		if calls >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("dead target never attempted")
		}
		time.Sleep(time.Millisecond)
	}
	// "Decommission": the next route resolution names the replacement.
	mu.Lock()
	target = Target{Key: "new", Push: repl.push}
	mu.Unlock()
	waitDrained(t, c, seq)
	got, _ := repl.ids()
	if len(got) != len(recs) {
		t.Fatalf("replacement got %d distinct records, want %d", len(got), len(recs))
	}
}

func TestConsumerResumeSkipsDrainedPrefix(t *testing.T) {
	w := openTestWAL(t)
	s := &sink{}
	if _, err := w.Append(testRecs(25, 10)...); err != nil {
		t.Fatal(err)
	}
	c := NewConsumer(w, ConsumerConfig{Route: staticRoute(Target{Key: "s", Push: s.push}), After: fastAfter})
	c.Start(7) // watermark restored from replicated state
	defer c.Stop()
	waitDrained(t, c, 10)
	got, _ := s.ids()
	if len(got) != 3 {
		t.Fatalf("resume from 7 delivered %d records, want 3", len(got))
	}
}

func TestConsumerStopWhileRetrying(t *testing.T) {
	w := openTestWAL(t)
	s := &sink{}
	s.setFail(true)
	c := NewConsumer(w, ConsumerConfig{Route: staticRoute(Target{Key: "s", Push: s.push}), After: fastAfter})
	if _, err := w.Append(testRecs(26, 2)...); err != nil {
		t.Fatal(err)
	}
	c.Start(0)
	done := make(chan struct{})
	go func() {
		c.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop hung while the consumer was retrying")
	}
	// And waiters are released, not stranded.
	if err := c.WaitDrained(context.Background(), 99); err == nil {
		t.Fatal("WaitDrained returned nil after Stop")
	}
}

func TestConsumerOnAdvanceObservesWatermark(t *testing.T) {
	w := openTestWAL(t)
	s := &sink{}
	var mu sync.Mutex
	var advances []uint64
	c := NewConsumer(w, ConsumerConfig{
		Route:     staticRoute(Target{Key: "s", Push: s.push}),
		BatchSize: 2,
		After:     fastAfter,
		OnAdvance: func(d uint64) {
			mu.Lock()
			advances = append(advances, d)
			mu.Unlock()
		},
	})
	seq, err := w.Append(testRecs(27, 6)...)
	if err != nil {
		t.Fatal(err)
	}
	c.Start(0)
	defer c.Stop()
	waitDrained(t, c, seq)
	mu.Lock()
	defer mu.Unlock()
	if len(advances) == 0 || advances[len(advances)-1] != seq {
		t.Fatalf("OnAdvance saw %v, want final %d", advances, seq)
	}
	for i := 1; i < len(advances); i++ {
		if advances[i] <= advances[i-1] {
			t.Fatalf("OnAdvance not monotonic: %v", advances)
		}
	}
}

// TestConsumerRouteErrorRetries: a routing failure (no live owners yet)
// holds the batch rather than dropping it.
func TestConsumerRouteErrorRetries(t *testing.T) {
	w := openTestWAL(t)
	s := &sink{}
	var mu sync.Mutex
	ready := false
	route := func(pps.Encoded) ([]Target, error) {
		mu.Lock()
		defer mu.Unlock()
		if !ready {
			return nil, fmt.Errorf("no owners yet")
		}
		return []Target{{Key: "s", Push: s.push}}, nil
	}
	c := NewConsumer(w, ConsumerConfig{Route: route, After: fastAfter})
	seq, err := w.Append(testRecs(28, 3)...)
	if err != nil {
		t.Fatal(err)
	}
	c.Start(0)
	defer c.Stop()
	time.Sleep(5 * time.Millisecond)
	if got := c.Drained(); got != 0 {
		t.Fatalf("watermark advanced to %d while routing failed", got)
	}
	mu.Lock()
	ready = true
	mu.Unlock()
	waitDrained(t, c, seq)
	got, _ := s.ids()
	if len(got) != 3 {
		t.Fatalf("delivered %d records after routing recovered, want 3", len(got))
	}
}
