package ring

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a server on the ring. IDs are assigned by the
// membership layer and are stable across range changes.
type NodeID int

// InvalidNode is returned by lookups on an empty ring.
const InvalidNode NodeID = -1

// NodeRange is one server's contiguous ownership arc. Ranges of all live
// nodes partition the ring: node i owns [Start_i, Start_{i+1}).
type NodeRange struct {
	ID    NodeID
	Start Point
}

// Ring is an ordered set of node ranges partitioning [0, 1). The zero
// value is an empty ring. Ring is not safe for concurrent mutation;
// callers that share a Ring across goroutines must synchronise or use
// Clone to produce immutable snapshots.
type Ring struct {
	// nodes is sorted by Start. Node i owns [nodes[i].Start,
	// nodes[(i+1)%len].Start).
	nodes []NodeRange
	byID  map[NodeID]int // index into nodes
}

// ErrDuplicateNode is returned when inserting an ID already present.
var ErrDuplicateNode = errors.New("ring: duplicate node id")

// ErrNodeNotFound is returned when an operation names an absent node.
var ErrNodeNotFound = errors.New("ring: node not found")

// New returns an empty ring.
func New() *Ring {
	return &Ring{byID: make(map[NodeID]int)}
}

// NewEqual builds a ring of n nodes with ids 0..n-1 and equal ranges.
// It is the common starting configuration for experiments.
func NewEqual(n int) *Ring {
	r := New()
	for i := 0; i < n; i++ {
		// Insertion at exact i/n positions; ignore error (ids unique).
		_ = r.Insert(NodeID(i), Norm(float64(i)/float64(n)))
	}
	return r
}

// Len returns the number of nodes on the ring.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns a copy of the node ranges in ring order.
func (r *Ring) Nodes() []NodeRange {
	out := make([]NodeRange, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// IDs returns all node ids in ring order.
func (r *Ring) IDs() []NodeID {
	out := make([]NodeID, len(r.nodes))
	for i, n := range r.nodes {
		out[i] = n.ID
	}
	return out
}

// Contains reports whether id is on the ring.
func (r *Ring) Contains(id NodeID) bool {
	_, ok := r.byID[id]
	return ok
}

// Clone returns a deep copy of the ring.
func (r *Ring) Clone() *Ring {
	c := &Ring{nodes: make([]NodeRange, len(r.nodes)), byID: make(map[NodeID]int, len(r.byID))}
	copy(c.nodes, r.nodes)
	for k, v := range r.byID {
		c.byID[k] = v
	}
	return c
}

// Insert adds a node whose range starts at start. The previous owner of
// that point keeps the portion before start; the new node owns from
// start to the next node's start.
func (r *Ring) Insert(id NodeID, start Point) error {
	if _, ok := r.byID[id]; ok {
		return fmt.Errorf("%w: %d", ErrDuplicateNode, id)
	}
	i := sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i].Start >= start })
	if i < len(r.nodes) && r.nodes[i].Start == start {
		return fmt.Errorf("ring: node %d already starts at %v", r.nodes[i].ID, start)
	}
	r.nodes = append(r.nodes, NodeRange{})
	copy(r.nodes[i+1:], r.nodes[i:])
	r.nodes[i] = NodeRange{ID: id, Start: start}
	r.reindex(i)
	return nil
}

// Remove deletes a node; its range is absorbed by its predecessor
// (the predecessor's range now extends to the removed node's end).
func (r *Ring) Remove(id NodeID) error {
	i, ok := r.byID[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNodeNotFound, id)
	}
	r.nodes = append(r.nodes[:i], r.nodes[i+1:]...)
	delete(r.byID, id)
	r.reindex(i)
	return nil
}

// SetStart moves a node's range start (the boundary with its
// predecessor). Moving the boundary clockwise shrinks the node; moving
// it counter-clockwise grows it into the predecessor. The new start must
// remain strictly between the predecessor's start and the node's end.
func (r *Ring) SetStart(id NodeID, start Point) error {
	i, ok := r.byID[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNodeNotFound, id)
	}
	if len(r.nodes) == 1 {
		r.nodes[i].Start = start
		return nil
	}
	prev := r.nodes[(i-1+len(r.nodes))%len(r.nodes)]
	next := r.nodes[(i+1)%len(r.nodes)]
	// start must lie in (prev.Start, next.Start) going clockwise.
	span := prev.Start.DistCW(next.Start)
	off := prev.Start.DistCW(start)
	if off <= 0 || off >= span {
		return fmt.Errorf("ring: new start %v for node %d outside (%v,%v)", start, id, prev.Start, next.Start)
	}
	r.nodes[i].Start = start
	// Order may be perturbed if the slice wraps at 0; resort to be safe.
	sort.Slice(r.nodes, func(a, b int) bool { return r.nodes[a].Start < r.nodes[b].Start })
	r.reindex(0)
	return nil
}

func (r *Ring) reindex(from int) {
	for i := from; i < len(r.nodes); i++ {
		r.byID[r.nodes[i].ID] = i
	}
	// Entries before 'from' are still valid only if from>0 shifts didn't
	// touch them; Insert/Remove shift indices at>=i, so refresh all when
	// from==0 was requested or be conservative for small rings.
	if from == 0 {
		for i := range r.nodes {
			r.byID[r.nodes[i].ID] = i
		}
	}
}

// Owner returns the node owning point q, or InvalidNode on an empty ring.
func (r *Ring) Owner(q Point) NodeID {
	i := r.ownerIndex(q)
	if i < 0 {
		return InvalidNode
	}
	return r.nodes[i].ID
}

func (r *Ring) ownerIndex(q Point) int {
	n := len(r.nodes)
	if n == 0 {
		return -1
	}
	// Find the last node with Start <= q; wrap to the last node if q is
	// before the first start.
	i := sort.Search(n, func(i int) bool { return r.nodes[i].Start > q }) - 1
	if i < 0 {
		i = n - 1
	}
	return i
}

// Range returns the ownership arc of node id.
func (r *Ring) Range(id NodeID) (Arc, error) {
	i, ok := r.byID[id]
	if !ok {
		return Arc{}, fmt.Errorf("%w: %d", ErrNodeNotFound, id)
	}
	return r.rangeAt(i), nil
}

func (r *Ring) rangeAt(i int) Arc {
	n := len(r.nodes)
	if n == 1 {
		return FullArc()
	}
	start := r.nodes[i].Start
	end := r.nodes[(i+1)%n].Start
	return ArcBetween(start, end)
}

// Successor returns the node clockwise after id.
func (r *Ring) Successor(id NodeID) (NodeID, error) {
	i, ok := r.byID[id]
	if !ok {
		return InvalidNode, fmt.Errorf("%w: %d", ErrNodeNotFound, id)
	}
	return r.nodes[(i+1)%len(r.nodes)].ID, nil
}

// Predecessor returns the node counter-clockwise before id.
func (r *Ring) Predecessor(id NodeID) (NodeID, error) {
	i, ok := r.byID[id]
	if !ok {
		return InvalidNode, fmt.Errorf("%w: %d", ErrNodeNotFound, id)
	}
	return r.nodes[(i-1+len(r.nodes))%len(r.nodes)].ID, nil
}

// Holders returns the ids of all nodes whose range intersects arc a, in
// ring order starting from the owner of a.Start. This is the replica set
// for an object whose replication arc is a.
func (r *Ring) Holders(a Arc) []NodeID {
	n := len(r.nodes)
	if n == 0 || a.IsEmpty() {
		return nil
	}
	if a.IsFull() {
		return r.IDs()
	}
	var out []NodeID
	i := r.ownerIndex(a.Start)
	for k := 0; k < n; k++ {
		j := (i + k) % n
		if !r.rangeAt(j).Intersects(a) {
			break
		}
		out = append(out, r.nodes[j].ID)
	}
	return out
}

// Validate checks the internal invariants: sorted starts, unique ids,
// index map consistency, and full coverage of [0,1). It is used by
// property tests and returns a descriptive error on the first violation.
func (r *Ring) Validate() error {
	if len(r.nodes) != len(r.byID) {
		return fmt.Errorf("ring: %d nodes but %d index entries", len(r.nodes), len(r.byID))
	}
	for i, nr := range r.nodes {
		if j, ok := r.byID[nr.ID]; !ok || j != i {
			return fmt.Errorf("ring: index for node %d is %d, want %d", nr.ID, j, i)
		}
		if i > 0 && r.nodes[i-1].Start >= nr.Start {
			return fmt.Errorf("ring: starts not strictly increasing at %d", i)
		}
		if nr.Start < 0 || nr.Start >= 1 {
			return fmt.Errorf("ring: start %v out of [0,1)", nr.Start)
		}
	}
	// Coverage: sum of range lengths must be 1.
	if len(r.nodes) > 0 {
		total := 0.0
		for i := range r.nodes {
			total += r.rangeAt(i).Length
		}
		if total < 0.9999 || total > 1.0001 {
			return fmt.Errorf("ring: ranges cover %v of the ring, want 1", total)
		}
	}
	return nil
}
