// Package ring implements the continuous circular identifier space that
// underlies ROAR (Rendezvous On A Ring).
//
// The identifier space is the half-open unit interval [0, 1) with
// wrap-around arithmetic. Three geometric notions are provided:
//
//   - Point: a position on the ring.
//   - Arc: a half-open, possibly wrapping interval [Start, Start+Length).
//   - Ring: an ordered set of node ranges that partition [0, 1).
//
// Objects are placed at uniformly random points; an object at id x with
// partitioning level p is replicated over the arc [x, x+1/p). A node owns
// a contiguous arc, and stores every object whose replication arc
// intersects the node's arc. Queries probe p equally spaced points; the
// arc geometry guarantees each probe point lands inside every replication
// arc that "covers" it, which is what makes rendezvous work.
package ring

import (
	"fmt"
	"math"
)

// Point is a position on the unit ring. Valid points lie in [0, 1);
// constructors normalise arbitrary float64 values into that range.
type Point float64

// Norm maps an arbitrary float onto [0, 1) with wrap-around.
func Norm(x float64) Point {
	f := math.Mod(x, 1)
	if f < 0 {
		f += 1
	}
	// math.Mod can return exactly 1 - eps rounding to 1 after +=; clamp.
	if f >= 1 {
		f = 0
	}
	return Point(f)
}

// Add returns the point d further clockwise (d may be negative).
func (p Point) Add(d float64) Point { return Norm(float64(p) + d) }

// DistCW returns the clockwise distance from p to q, in [0, 1).
func (p Point) DistCW(q Point) float64 {
	d := float64(q) - float64(p)
	if d < 0 {
		d += 1
	}
	return d
}

// Arc is a half-open interval [Start, Start+Length) on the ring.
// Length must be in [0, 1]. Length == 1 denotes the full ring.
type Arc struct {
	Start  Point
	Length float64
}

// FullArc covers the entire ring.
func FullArc() Arc { return Arc{Start: 0, Length: 1} }

// NewArc builds an arc from a start point and length, clamping length
// into [0, 1].
func NewArc(start Point, length float64) Arc {
	if length < 0 {
		length = 0
	}
	if length > 1 {
		length = 1
	}
	return Arc{Start: start, Length: length}
}

// ArcBetween returns the arc that starts at a and extends clockwise to b.
// If a == b the arc is empty (use FullArc for the whole ring).
func ArcBetween(a, b Point) Arc {
	return Arc{Start: a, Length: a.DistCW(b)}
}

// End returns the point just past the arc (exclusive bound).
func (a Arc) End() Point { return a.Start.Add(a.Length) }

// IsEmpty reports whether the arc has zero length.
func (a Arc) IsEmpty() bool { return a.Length == 0 }

// IsFull reports whether the arc covers the whole ring.
func (a Arc) IsFull() bool { return a.Length >= 1 }

// Contains reports whether point q lies inside the half-open arc.
func (a Arc) Contains(q Point) bool {
	if a.IsFull() {
		return true
	}
	return a.Start.DistCW(q) < a.Length
}

// Intersects reports whether two arcs share at least one point.
func (a Arc) Intersects(b Arc) bool {
	if a.IsEmpty() || b.IsEmpty() {
		return false
	}
	if a.IsFull() || b.IsFull() {
		return true
	}
	return a.Contains(b.Start) || b.Contains(a.Start)
}

// ContainsArc reports whether b lies entirely within a.
func (a Arc) ContainsArc(b Arc) bool {
	if b.IsEmpty() {
		return true
	}
	if a.IsFull() {
		return true
	}
	if b.IsFull() {
		return false
	}
	return a.Contains(b.Start) && a.Start.DistCW(b.Start)+b.Length <= a.Length
}

func (a Arc) String() string {
	return fmt.Sprintf("[%.6f,%.6f)", float64(a.Start), float64(a.End()))
}

// ReplicationArc returns the replication arc for an object at id x under
// partitioning level p: [x, x+1/p).
func ReplicationArc(x Point, p int) Arc {
	if p <= 0 {
		return FullArc()
	}
	return NewArc(x, 1/float64(p))
}

// ProbePoints returns the pq equally spaced query probe points starting
// at q: q, q+1/pq, ..., q+(pq-1)/pq.
func ProbePoints(q Point, pq int) []Point {
	pts := make([]Point, pq)
	for i := 0; i < pq; i++ {
		pts[i] = q.Add(float64(i) / float64(pq))
	}
	return pts
}

// SubQueryMatches implements the duplicate-avoidance rule of §4.2
// (conditions 4.1 and 4.2): the sub-query probing point idQuery, run with
// partitioning level pq, matches exactly the objects with
//
//	idObject < idQuery  &&  idObject + 1/pq >= idQuery
//
// i.e. the objects in the half-open arc [idQuery-1/pq, idQuery). Across
// the pq equally spaced probe points these arcs tile the ring, so every
// object is matched by exactly one sub-query.
func SubQueryMatches(idObject, idQuery Point, pq int) bool {
	d := idObject.DistCW(idQuery) // clockwise distance object -> query
	return d > 0 && d <= 1/float64(pq)
}

// MatchArc returns the arc of object ids that the sub-query at idQuery
// with level pq is responsible for: (idQuery - 1/pq, idQuery]. Because
// arcs here are half-open at the end and the matching rule is half-open
// at the start, we represent it as [idQuery-1/pq+ε ... ) only
// conceptually; callers should use SubQueryMatches for exact tests and
// MatchArc for sizing/visualisation.
func MatchArc(idQuery Point, pq int) Arc {
	l := 1 / float64(pq)
	return NewArc(idQuery.Add(-l), l)
}

// MatchSpan returns the length of the half-open match arc (lo, hi].
// By convention lo == hi denotes the FULL circle (the pq = 1 case, where
// one sub-query covers everything), not the empty arc: match arcs arise
// only from partitioning the ring, and a zero-length partition does not
// occur.
func MatchSpan(lo, hi Point) float64 {
	if lo == hi {
		return 1
	}
	return lo.DistCW(hi)
}

// InMatchArc reports whether obj lies in the half-open match arc
// (lo, hi], under the MatchSpan convention that lo == hi is the full
// circle.
func InMatchArc(obj, lo, hi Point) bool {
	span := MatchSpan(lo, hi)
	if span >= 1 {
		return true
	}
	d := lo.DistCW(obj)
	return d > 0 && d <= span
}
