package ring

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNorm(t *testing.T) {
	cases := []struct {
		in   float64
		want Point
	}{
		{0, 0}, {0.5, 0.5}, {1, 0}, {1.25, 0.25}, {-0.25, 0.75}, {2.5, 0.5}, {-1, 0},
	}
	for _, c := range cases {
		if got := Norm(c.in); math.Abs(float64(got-c.want)) > 1e-12 {
			t.Errorf("Norm(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNormAlwaysInRange(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		p := Norm(x)
		return p >= 0 && p < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistCW(t *testing.T) {
	if d := Point(0.2).DistCW(0.7); math.Abs(d-0.5) > 1e-12 {
		t.Errorf("DistCW(0.2,0.7) = %v, want 0.5", d)
	}
	if d := Point(0.7).DistCW(0.2); math.Abs(d-0.5) > 1e-12 {
		t.Errorf("DistCW(0.7,0.2) = %v, want 0.5", d)
	}
	if d := Point(0.3).DistCW(0.3); d != 0 {
		t.Errorf("DistCW(x,x) = %v, want 0", d)
	}
}

func TestArcContains(t *testing.T) {
	// Binary-representable bounds so half-open boundary checks are exact.
	a := NewArc(0.875, 0.25) // [0.875, 0.125) wrapping
	for _, p := range []Point{0.875, 0.9375, 0, 0.0625} {
		if !a.Contains(p) {
			t.Errorf("%v should contain %v", a, p)
		}
	}
	for _, p := range []Point{0.125, 0.5, 0.874} {
		if a.Contains(p) {
			t.Errorf("%v should not contain %v", a, p)
		}
	}
	if !FullArc().Contains(0.123) {
		t.Error("full arc must contain everything")
	}
	if NewArc(0.5, 0).Contains(0.5) {
		t.Error("empty arc contains nothing")
	}
}

func TestArcIntersects(t *testing.T) {
	cases := []struct {
		a, b Arc
		want bool
	}{
		{NewArc(0.125, 0.25), NewArc(0.25, 0.25), true},
		{NewArc(0.125, 0.25), NewArc(0.375, 0.25), false},   // touch at 0.375, half-open
		{NewArc(0.875, 0.25), NewArc(0.0625, 0.0625), true}, // wrap
		{NewArc(0.875, 0.25), NewArc(0.1875, 0.0625), false},
		{FullArc(), NewArc(0.4, 0.001), true},
		{NewArc(0.4, 0), NewArc(0.4, 0.1), false}, // empty
	}
	for _, c := range cases {
		if got := c.a.Intersects(c.b); got != c.want {
			t.Errorf("%v.Intersects(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Intersects(c.a); got != c.want {
			t.Errorf("%v.Intersects(%v) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestArcContainsArc(t *testing.T) {
	outer := NewArc(0.8, 0.4) // [0.8, 0.2)
	if !outer.ContainsArc(NewArc(0.9, 0.2)) {
		t.Error("wrap containment failed")
	}
	if outer.ContainsArc(NewArc(0.9, 0.35)) {
		t.Error("should not contain arc overhanging the end")
	}
	if !FullArc().ContainsArc(outer) {
		t.Error("full contains all")
	}
}

// TestSubQueryTiling is the core rendezvous invariant: for any pq and any
// object/query placement, exactly one of the pq probe points matches the
// object.
func TestSubQueryTiling(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		pq := 1 + rng.Intn(64)
		obj := Norm(rng.Float64())
		q := Norm(rng.Float64())
		matches := 0
		for _, pt := range ProbePoints(q, pq) {
			if SubQueryMatches(obj, pt, pq) {
				matches++
			}
		}
		if matches != 1 {
			t.Fatalf("pq=%d obj=%v q=%v: %d probe points matched, want exactly 1", pq, obj, q, matches)
		}
	}
}

// TestReplicationCoversProbe verifies that when pq >= p, the object's
// replication arc always contains the probe point that is responsible
// for matching it (so the responsible server actually stores the object).
func TestReplicationCoversProbe(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		p := 1 + rng.Intn(32)
		pq := p + rng.Intn(32)
		obj := Norm(rng.Float64())
		q := Norm(rng.Float64())
		rep := ReplicationArc(obj, p)
		for _, pt := range ProbePoints(q, pq) {
			if SubQueryMatches(obj, pt, pq) {
				// Probe point pt must lie within [obj, obj+1/p).
				// Boundary case d == 1/pq <= 1/p is within the closed
				// extent of the replication arc; allow equality.
				d := obj.DistCW(pt)
				if d > rep.Length+1e-12 {
					t.Fatalf("p=%d pq=%d obj=%v probe=%v: probe outside replication arc (d=%v > %v)",
						p, pq, obj, pt, d, rep.Length)
				}
			}
		}
	}
}

func TestMatchSpanConvention(t *testing.T) {
	if MatchSpan(0.3, 0.3) != 1 {
		t.Error("lo == hi must denote the full circle")
	}
	if d := MatchSpan(0.25, 0.75); d != 0.5 {
		t.Errorf("MatchSpan(0.25,0.75) = %v", d)
	}
	// Full-arc matching includes every point, even lo itself.
	for _, obj := range []Point{0, 0.3, 0.99} {
		if !InMatchArc(obj, 0.3, 0.3) {
			t.Errorf("full arc must match %v", obj)
		}
	}
	if !InMatchArc(0.5, 0.25, 0.75) {
		t.Error("interior point should match")
	}
	if InMatchArc(0.25, 0.25, 0.75) {
		t.Error("lo itself is excluded from a partial arc")
	}
	if !InMatchArc(0.75, 0.25, 0.75) {
		t.Error("hi itself is included")
	}
	if InMatchArc(0.1, 0.25, 0.75) {
		t.Error("outside point must not match")
	}
}

func TestRingInsertRemove(t *testing.T) {
	r := New()
	if r.Owner(0.5) != InvalidNode {
		t.Error("empty ring should have no owner")
	}
	if err := r.Insert(1, 0.0); err != nil {
		t.Fatal(err)
	}
	if got := r.Owner(0.99); got != 1 {
		t.Errorf("single node owns everything, got %v", got)
	}
	if err := r.Insert(2, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := r.Insert(1, 0.25); err == nil {
		t.Error("duplicate insert should fail")
	}
	if got := r.Owner(0.3); got != 1 {
		t.Errorf("Owner(0.3) = %v, want 1", got)
	}
	if got := r.Owner(0.7); got != 2 {
		t.Errorf("Owner(0.7) = %v, want 2", got)
	}
	a, err := r.Range(2)
	if err != nil || math.Abs(a.Length-0.5) > 1e-12 {
		t.Errorf("Range(2) = %v, %v", a, err)
	}
	if err := r.Remove(2); err != nil {
		t.Fatal(err)
	}
	if got := r.Owner(0.7); got != 1 {
		t.Errorf("after removal Owner(0.7) = %v, want 1", got)
	}
	if err := r.Remove(2); err == nil {
		t.Error("removing absent node should fail")
	}
	if err := r.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRingNeighbours(t *testing.T) {
	r := NewEqual(4) // nodes 0..3 at 0, .25, .5, .75
	succ, err := r.Successor(3)
	if err != nil || succ != 0 {
		t.Errorf("Successor(3) = %v, %v; want 0", succ, err)
	}
	pred, err := r.Predecessor(0)
	if err != nil || pred != 3 {
		t.Errorf("Predecessor(0) = %v, %v; want 3", pred, err)
	}
}

func TestRingHolders(t *testing.T) {
	r := NewEqual(8)
	// Arc [0.1, 0.35) intersects node 0 [0,.125), 1 [.125,.25), 2 [.25,.375).
	got := r.Holders(NewArc(0.1, 0.25))
	want := []NodeID{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("Holders = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Holders = %v, want %v", got, want)
		}
	}
	if got := r.Holders(FullArc()); len(got) != 8 {
		t.Errorf("full arc holders = %d nodes, want 8", len(got))
	}
}

func TestRingSetStart(t *testing.T) {
	r := NewEqual(4)
	// Grow node 1 into node 0 by moving its start from 0.25 to 0.2.
	if err := r.SetStart(1, 0.2); err != nil {
		t.Fatal(err)
	}
	if got := r.Owner(0.22); got != 1 {
		t.Errorf("Owner(0.22) = %v, want 1", got)
	}
	a, _ := r.Range(0)
	if math.Abs(a.Length-0.2) > 1e-12 {
		t.Errorf("node 0 range = %v, want length 0.2", a)
	}
	// Moving past the predecessor must fail.
	if err := r.SetStart(1, 0.9); err == nil {
		t.Error("SetStart beyond predecessor should fail")
	}
	if err := r.Validate(); err != nil {
		t.Error(err)
	}
}

// TestRingRandomOps is a property test: after arbitrary interleavings of
// insert/remove/move, the ring still satisfies its invariants and every
// point has exactly one owner.
func TestRingRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	r := New()
	next := NodeID(0)
	for op := 0; op < 3000; op++ {
		switch {
		case r.Len() == 0 || rng.Float64() < 0.4:
			if err := r.Insert(next, Norm(rng.Float64())); err == nil {
				next++
			}
		case rng.Float64() < 0.5 && r.Len() > 1:
			ids := r.IDs()
			_ = r.Remove(ids[rng.Intn(len(ids))])
		default:
			ids := r.IDs()
			id := ids[rng.Intn(len(ids))]
			_ = r.SetStart(id, Norm(rng.Float64())) // may legitimately fail
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
	}
	// Ownership is total and consistent with Range.
	for i := 0; i < 200; i++ {
		q := Norm(rng.Float64())
		id := r.Owner(q)
		if id == InvalidNode {
			t.Fatalf("no owner for %v", q)
		}
		a, err := r.Range(id)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Contains(q) && !a.IsFull() {
			t.Fatalf("owner %d of %v has range %v not containing it", id, q, a)
		}
	}
}

// TestHoldersMatchReplication: for random rings and objects, the holder
// set computed from the replication arc must include the owner of every
// probe point that is responsible for the object.
func TestHoldersMatchReplication(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(30)
		r := NewEqual(n)
		p := 1 + rng.Intn(n)
		obj := Norm(rng.Float64())
		holders := r.Holders(ReplicationArc(obj, p))
		holderSet := map[NodeID]bool{}
		for _, h := range holders {
			holderSet[h] = true
		}
		q := Norm(rng.Float64())
		for _, pt := range ProbePoints(q, p) {
			if SubQueryMatches(obj, pt, p) {
				owner := r.Owner(pt)
				if !holderSet[owner] {
					t.Fatalf("n=%d p=%d obj=%v probe=%v owner=%d not in holders %v",
						n, p, obj, pt, owner, holders)
				}
			}
		}
	}
}

func BenchmarkOwner(b *testing.B) {
	r := NewEqual(1000)
	rng := rand.New(rand.NewSource(1))
	pts := make([]Point, 1024)
	for i := range pts {
		pts[i] = Norm(rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Owner(pts[i%len(pts)])
	}
}

func BenchmarkHolders(b *testing.B) {
	r := NewEqual(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Holders(NewArc(Norm(float64(i)*0.001), 0.02))
	}
}
