package bench

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"roar/internal/cluster"
	"roar/internal/frontend"
	"roar/internal/pps"
)

// Control-plane failover benchmark: kill the lease holder under query
// load and report (a) milliseconds until a follower leads and (b) how
// many data-plane queries the outage shed. The second number is the
// headline robustness claim as a gate-tracked metric — queries flow
// frontend→nodes and never touch the coordinator, so a control-plane
// death must shed exactly zero of them (the baseline pins 0, and like
// the kernel's allocs/op, any growth fails the gate).

const (
	failoverNodes   = 4
	failoverP       = 2
	failoverCorpus  = 80
	failoverClients = 16
)

// failoverRun measures one leader kill, returning the time from kill to
// elected successor and the count of failed queries across the run.
func failoverRun() (time.Duration, int64, error) {
	hc, err := cluster.StartHA(cluster.HAOptions{
		Replicas: 3, Nodes: failoverNodes, P: failoverP, Seed: 5,
		Lease:     200 * time.Millisecond,
		Heartbeat: 50 * time.Millisecond,
		Frontend:  frontend.Config{PQ: failoverNodes, PoolSize: 2},
	})
	if err != nil {
		return 0, 0, err
	}
	defer hc.Close()
	recs := make([]pps.Encoded, failoverCorpus)
	for i := range recs {
		if recs[i], err = hc.Enc.EncryptDocument(pps.Document{
			ID: uint64(i + 1), Path: fmt.Sprintf("/b/%d", i), Size: int64(i),
			Modified: time.Unix(1.2e9, 0), Keywords: []string{"hot"},
		}); err != nil {
			return 0, 0, err
		}
	}
	if err := hc.LoadEncoded(recs); err != nil {
		return 0, 0, err
	}
	q, err := hc.Enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "hot"})
	if err != nil {
		return 0, 0, err
	}
	if _, err := hc.FE.Execute(context.Background(), q); err != nil {
		return 0, 0, err
	}

	var shed, done atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < failoverClients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				_, err := hc.FE.Execute(ctx, q)
				cancel()
				if err != nil {
					shed.Add(1)
				} else {
					done.Add(1)
				}
			}
		}()
	}

	leader, err := hc.WaitLeader(10 * time.Second)
	if err != nil {
		close(stop)
		wg.Wait()
		return 0, 0, err
	}
	killedAt := time.Now()
	hc.KillReplica(hc.ReplicaIndex(leader))
	if _, err := hc.WaitLeader(10 * time.Second); err != nil {
		close(stop)
		wg.Wait()
		return 0, 0, err
	}
	toLeader := time.Since(killedAt)

	// Let load run past the takeover so sheds during the leaderless
	// window (there must be none) are inside the measured span.
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	if done.Load() == 0 {
		return 0, 0, fmt.Errorf("bench: no queries completed during failover run")
	}
	return toLeader, shed.Load(), nil
}

// BenchmarkFailover reports mean time-to-new-leader and total queries
// shed across leader kills. CI runs -benchtime 1x; the three inner
// kills per iteration damp election-jitter variance (a split vote costs
// a full extra round) without rebuilding more clusters than needed.
func BenchmarkFailover(b *testing.B) {
	const kills = 3
	var ms float64
	var shed int64
	for i := 0; i < b.N; i++ {
		for k := 0; k < kills; k++ {
			d, s, err := failoverRun()
			if err != nil {
				b.Fatal(err)
			}
			ms += float64(d.Milliseconds())
			shed += s
		}
	}
	b.ReportMetric(ms/float64(b.N*kills), "ms-to-leader")
	b.ReportMetric(float64(shed)/float64(b.N*kills), "queries-shed")
}

// TestFailoverShedsNothing is the correctness side at test scale: a
// control-plane kill must not fail a single data-plane query.
func TestFailoverShedsNothing(t *testing.T) {
	if testing.Short() {
		t.Skip("failover e2e is not short")
	}
	d, shed, err := failoverRun()
	if err != nil {
		t.Fatal(err)
	}
	if shed != 0 {
		t.Fatalf("control-plane failover shed %d data-plane queries", shed)
	}
	t.Logf("failover took %v, 0 queries shed", d)
}
