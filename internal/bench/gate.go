// Bench regression gate: parses `go test -bench` output (the -json
// stream CI tees into BENCH_*.json artifacts, or raw text), compares
// the tracked metrics against a committed baseline, and fails when any
// of them regresses beyond its budget. cmd/roar-bench -check is the CLI
// over this; CI runs it right after the bench-smoke steps so a PR that
// quietly costs 25% of frontend throughput or doubles tail latency
// turns the job red instead of landing.
package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// BenchResults maps benchmark name (GOMAXPROCS suffix stripped) to
// unit ("ns/op", "queries/s", ...) to the mean observed value.
type BenchResults map[string]map[string]float64

// testEvent is the `go test -json` line shape. Test carries the
// benchmark name for result lines (in -json mode the name and the
// measurements arrive in separate output events).
type testEvent struct {
	Action string `json:"Action"`
	Test   string `json:"Test"`
	Output string `json:"Output"`
}

// gomaxprocsSuffix strips the trailing "-N" go test appends to
// benchmark names (BenchmarkFoo/sub-case-8 → BenchmarkFoo/sub-case).
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// ParseBenchOutput reads benchmark result lines from r — either raw
// `go test -bench` text or the `-json` event stream — and returns the
// per-benchmark metric means (averaged when a benchmark reports more
// than one line).
func ParseBenchOutput(r io.Reader) (BenchResults, error) {
	res := BenchResults{}
	counts := map[string]map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		eventTest := ""
		if strings.HasPrefix(strings.TrimSpace(line), "{") {
			var ev testEvent
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				continue // interleaved non-JSON noise
			}
			if ev.Action != "output" {
				continue
			}
			line = strings.TrimSuffix(ev.Output, "\n")
			eventTest = ev.Test
		}
		name, metrics, ok := parseBenchLine(line, eventTest)
		if !ok {
			continue
		}
		if res[name] == nil {
			res[name] = map[string]float64{}
			counts[name] = map[string]int{}
		}
		for unit, v := range metrics {
			res[name][unit] += v
			counts[name][unit]++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench: reading results: %w", err)
	}
	for name, ms := range res {
		for unit := range ms {
			ms[unit] /= float64(counts[name][unit])
		}
	}
	return res, nil
}

// parseBenchLine parses one benchmark result line into its metric
// pairs. Raw `go test -bench` output carries the name inline
// ("BenchmarkName-8  10  123 ns/op  45 u/s"); the -json event stream
// splits them, with the name in the event's Test field and the line
// holding only "  10  123 ns/op  45 u/s" — eventTest covers that case.
func parseBenchLine(line, eventTest string) (string, map[string]float64, bool) {
	fields := strings.Fields(line)
	var name string
	switch {
	case len(fields) >= 4 && strings.HasPrefix(fields[0], "Benchmark"):
		name = gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		fields = fields[1:]
	case strings.HasPrefix(eventTest, "Benchmark"):
		name = eventTest
	default:
		return "", nil, false
	}
	if len(fields) < 3 {
		return "", nil, false
	}
	if _, err := strconv.Atoi(fields[0]); err != nil {
		return "", nil, false // not an iteration count: a header or log line
	}
	metrics := map[string]float64{}
	for i := 1; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			break
		}
		metrics[fields[i+1]] = v
	}
	if len(metrics) == 0 {
		return "", nil, false
	}
	return name, metrics, true
}

// GateMetric is one tracked baseline entry.
type GateMetric struct {
	// Bench is the benchmark name with the GOMAXPROCS suffix stripped,
	// e.g. "BenchmarkFrontendThroughput/pipelined-pool4".
	Bench string `json:"bench"`
	// Unit selects which reported metric to compare ("queries/s",
	// "ns/op", "p99-ms", ...).
	Unit string `json:"unit"`
	// HigherBetter orients the comparison.
	HigherBetter bool `json:"higher_better"`
	// Value is the baseline measurement.
	Value float64 `json:"value"`
	// Threshold overrides the baseline-wide regression budget for this
	// metric (fraction, e.g. 0.25 = 25%). 0 uses the default.
	Threshold float64 `json:"threshold,omitempty"`
}

// GateBaseline is the committed BENCH_baseline.json shape.
type GateBaseline struct {
	// Threshold is the default relative regression budget. 0 = 0.25.
	Threshold float64      `json:"threshold"`
	Metrics   []GateMetric `json:"metrics"`
}

// DefaultTracked names the metrics the gate follows. Wall-clock
// metrics carry budgets wider than the 25% default because shared CI
// runners vary machine-to-machine and run-to-run; allocs/op is exact on
// any machine, so the zero-alloc kernel invariant stays strict (any
// growth from a zero baseline fails whatever the threshold).
func DefaultTracked() []GateMetric {
	return []GateMetric{
		{Bench: "BenchmarkFrontendThroughput/pipelined-pool4", Unit: "queries/s", HigherBetter: true, Threshold: 0.5},
		{Bench: "BenchmarkMatchKernel/kernel", Unit: "ns/op", Threshold: 1.0},
		{Bench: "BenchmarkMatchKernel/kernel", Unit: "allocs/op"}, // zero-alloc: hard invariant
		{Bench: "BenchmarkCodecQueryReq/binary", Unit: "ns/op", Threshold: 1.0},
		{Bench: "BenchmarkTailLatency/hedged-budget-5pct", Unit: "p99-ms", Threshold: 1.0},
		{Bench: "BenchmarkReconfigUnderLoad", Unit: "queries/s", HigherBetter: true, Threshold: 0.5},
		{Bench: "BenchmarkReconfigUnderLoad", Unit: "p99-ms", Threshold: 1.0},
		{Bench: "BenchmarkIndexMatch/warm", Unit: "ns/op", Threshold: 1.0},
		// The index's reason to exist: warm-cache queries must stay an
		// order of magnitude ahead of the emulated scan. The baseline is
		// measured in the hundreds; the 0.5 budget keeps the gate well
		// above the ≥10× acceptance floor without tripping on runner
		// variance.
		{Bench: "BenchmarkIndexMatch/warm", Unit: "speedup-x", HigherBetter: true, Threshold: 0.5},
		{Bench: "BenchmarkIndexMatch/cold", Unit: "ns/op", Threshold: 1.0},
		// Control-plane failover: elections are jitter-timed, so the
		// time-to-leader budget is wide; queries-shed is exact — the
		// data plane never touches the coordinator, so a leader kill
		// shedding even one query is a wiring regression, not noise.
		{Bench: "BenchmarkFailover", Unit: "ms-to-leader", Threshold: 1.5},
		{Bench: "BenchmarkFailover", Unit: "queries-shed"}, // zero-shed: hard invariant
		// Durable ingest: WAL append (fsync-bound, so group commit is
		// what keeps it fast), consumer drain rate, and the cold
		// recovery + replay scan of the 10k-record acceptance arc. All
		// wall-clock and disk-bound — budgets sized for runner variance.
		{Bench: "BenchmarkIngest/append", Unit: "append-recs/s", HigherBetter: true, Threshold: 0.5},
		{Bench: "BenchmarkIngest/drain", Unit: "drain-batches/s", HigherBetter: true, Threshold: 0.5},
		{Bench: "BenchmarkIngest/replay", Unit: "replay-ms-10k", Threshold: 1.5},
		// Query economics: the warm Zipf hit ratio prices the result
		// cache (acceptance floor is 0.30; the budget keeps the gate
		// above it from a ~0.88 baseline), and tenant quota isolation is
		// an exact invariant — a victim tenant under its quota being shed
		// at all is a fairness regression, not noise.
		{Bench: "BenchmarkResultCache/zipf-hit-ratio", Unit: "hit-ratio", HigherBetter: true, Threshold: 0.5},
		{Bench: "BenchmarkResultCache/tenant-isolation", Unit: "hot-shed-frac", HigherBetter: true, Threshold: 0.5},
		{Bench: "BenchmarkResultCache/tenant-isolation", Unit: "victim-shed-pct"}, // zero-shed: hard invariant
	}
}

// CheckRegressions compares results against the baseline and returns
// one failure line per regressed or missing metric (empty = gate
// passes). A missing metric is a failure: silently dropping a tracked
// benchmark is exactly the regression-shaped hole the gate exists to
// close.
func CheckRegressions(base GateBaseline, res BenchResults) []string {
	def := base.Threshold
	if def <= 0 {
		def = 0.25
	}
	var failures []string
	for _, m := range base.Metrics {
		thr := m.Threshold
		if thr <= 0 {
			thr = def
		}
		cur, ok := res[m.Bench][m.Unit]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s %s: metric missing from results (baseline %.4g)", m.Bench, m.Unit, m.Value))
			continue
		}
		if m.HigherBetter {
			floor := m.Value * (1 - thr)
			if cur < floor {
				failures = append(failures, fmt.Sprintf("%s %s: %.4g below baseline %.4g by more than %.0f%% (floor %.4g)",
					m.Bench, m.Unit, cur, m.Value, thr*100, floor))
			}
		} else {
			// A zero baseline (e.g. 0 allocs/op) regresses on ANY growth.
			ceil := m.Value * (1 + thr)
			if cur > ceil {
				failures = append(failures, fmt.Sprintf("%s %s: %.4g above baseline %.4g by more than %.0f%% (ceiling %.4g)",
					m.Bench, m.Unit, cur, m.Value, thr*100, ceil))
			}
		}
	}
	return failures
}

// BuildBaseline fills the tracked metric list with values measured in
// res, erroring on any tracked metric the results do not contain (a
// baseline with holes would silently untrack them).
func BuildBaseline(tracked []GateMetric, res BenchResults, threshold float64) (GateBaseline, error) {
	base := GateBaseline{Threshold: threshold}
	var missing []string
	for _, m := range tracked {
		v, ok := res[m.Bench][m.Unit]
		if !ok {
			missing = append(missing, m.Bench+" "+m.Unit)
			continue
		}
		m.Value = v
		base.Metrics = append(base.Metrics, m)
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return base, fmt.Errorf("bench: results missing tracked metrics: %s", strings.Join(missing, ", "))
	}
	return base, nil
}
