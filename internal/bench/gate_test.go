package bench

import (
	"strings"
	"testing"
)

const rawBenchOutput = `goos: linux
goarch: amd64
pkg: roar/internal/bench
BenchmarkFrontendThroughput/serial-1conn-8         	       1	1846023145 ns/op	       539.0 queries/s
BenchmarkFrontendThroughput/pipelined-pool4-8      	       1	 432164193 ns/op	      2315 queries/s
BenchmarkReconfigUnderLoad-8                       	       1	 957660390 ns/op	        34.21 p99-ms	      1166 queries/s
PASS
`

// jsonBenchOutput mirrors the real `go test -json -bench` stream: the
// benchmark name arrives in the event's Test field while the Output
// line holds only the measurements (plus one raw-style line for the
// inline-name variant).
const jsonBenchOutput = `{"Action":"start","Package":"roar/internal/pps"}
{"Action":"output","Package":"roar/internal/pps","Test":"BenchmarkMatchKernel/kernel","Output":"=== RUN   BenchmarkMatchKernel/kernel\n"}
{"Action":"output","Package":"roar/internal/pps","Test":"BenchmarkMatchKernel/kernel","Output":"     100\t      1556 ns/op\t       0 B/op\t       0 allocs/op\n"}
{"Action":"output","Package":"roar/internal/pps","Test":"BenchmarkMatchKernel/kernel","Output":"     100\t      1444 ns/op\t       0 B/op\t       0 allocs/op\n"}
{"Action":"output","Package":"roar/internal/pps","Output":"BenchmarkMatchKernel/legacy-8 \t     100\t      3707 ns/op\t    2534 B/op\t      29 allocs/op\n"}
{"Action":"output","Package":"roar/internal/pps","Output":"ok  \troar/internal/pps\t1.2s\n"}
{"Action":"pass","Package":"roar/internal/pps"}
`

func TestParseBenchOutputRawAndJSON(t *testing.T) {
	res, err := ParseBenchOutput(strings.NewReader(rawBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if got := res["BenchmarkFrontendThroughput/pipelined-pool4"]["queries/s"]; got != 2315 {
		t.Fatalf("pipelined queries/s = %v, want 2315 (results %v)", got, res)
	}
	if got := res["BenchmarkReconfigUnderLoad"]["p99-ms"]; got != 34.21 {
		t.Fatalf("reconfig p99-ms = %v", got)
	}

	res, err = ParseBenchOutput(strings.NewReader(jsonBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	// Two result lines for the same benchmark average.
	if got := res["BenchmarkMatchKernel/kernel"]["ns/op"]; got != 1500 {
		t.Fatalf("kernel ns/op mean = %v, want 1500", got)
	}
	if got := res["BenchmarkMatchKernel/kernel"]["allocs/op"]; got != 0 {
		t.Fatalf("kernel allocs/op = %v, want 0", got)
	}
	if got := res["BenchmarkMatchKernel/legacy"]["allocs/op"]; got != 29 {
		t.Fatalf("legacy (inline-name) allocs/op = %v, want 29", got)
	}
}

func TestCheckRegressions(t *testing.T) {
	base := GateBaseline{
		Threshold: 0.25,
		Metrics: []GateMetric{
			{Bench: "BenchQPS", Unit: "queries/s", HigherBetter: true, Value: 1000},
			{Bench: "BenchLat", Unit: "p99-ms", Value: 40},
			{Bench: "BenchAllocs", Unit: "allocs/op", Value: 0},
		},
	}
	ok := BenchResults{
		"BenchQPS":    {"queries/s": 800}, // -20%: inside the budget
		"BenchLat":    {"p99-ms": 49},     // +22.5%: inside
		"BenchAllocs": {"allocs/op": 0},
	}
	if fails := CheckRegressions(base, ok); len(fails) != 0 {
		t.Fatalf("within-budget results failed the gate: %v", fails)
	}

	bad := BenchResults{
		"BenchQPS":    {"queries/s": 700}, // -30%: regression
		"BenchLat":    {"p99-ms": 55},     // +37.5%: regression
		"BenchAllocs": {"allocs/op": 2},   // any alloc growth from zero fails
	}
	fails := CheckRegressions(base, bad)
	if len(fails) != 3 {
		t.Fatalf("got %d failures, want 3: %v", len(fails), fails)
	}

	// A tracked metric vanishing from the results is itself a failure.
	fails = CheckRegressions(base, BenchResults{"BenchQPS": {"queries/s": 1000}})
	if len(fails) != 2 {
		t.Fatalf("missing metrics: got %v", fails)
	}
}

func TestBuildBaselineRejectsHoles(t *testing.T) {
	tracked := []GateMetric{
		{Bench: "BenchQPS", Unit: "queries/s", HigherBetter: true},
		{Bench: "BenchGone", Unit: "ns/op"},
	}
	_, err := BuildBaseline(tracked, BenchResults{"BenchQPS": {"queries/s": 1234}}, 0.25)
	if err == nil || !strings.Contains(err.Error(), "BenchGone") {
		t.Fatalf("baseline built over a hole: %v", err)
	}
	base, err := BuildBaseline(tracked[:1], BenchResults{"BenchQPS": {"queries/s": 1234}}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if base.Metrics[0].Value != 1234 {
		t.Fatalf("baseline value = %v", base.Metrics[0].Value)
	}
}
