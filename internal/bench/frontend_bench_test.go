package bench

import (
	"context"
	"testing"
	"time"

	"roar/internal/cluster"
	"roar/internal/frontend"
	"roar/internal/proto"
	"roar/internal/workload"
)

// Frontend execution-pipeline benchmarks: the serial single-connection
// baseline (one query at a time, one TCP conn per node) against the
// pipelined executor (pooled connections, unbounded admission) at 64
// concurrent closed-loop clients. The interesting number is the
// queries/s metric, not ns/op.

const throughputClients = 64

var throughputConfigs = []struct {
	name string
	fe   frontend.Config
}{
	// The pre-pipeline frontend: one query in flight at a time over one
	// connection per node.
	{"serial-1conn", frontend.Config{MaxInFlight: 1, PoolSize: 1}},
	// The pipelined executor with a 4-wide connection pool per node.
	{"pipelined-pool4", frontend.Config{PoolSize: 4}},
}

// throughputQPS measures closed-loop queries/sec for one frontend
// configuration on a fresh cluster. The per-sub-query fixed cost (5ms,
// the §2 fixed overhead) dominates the small corpus scan, so the
// measurement rewards overlapping remote waits — the thing the pipeline
// exists for — rather than this machine's core count.
func throughputQPS(fe frontend.Config, clients int, dur time.Duration) (float64, error) {
	c, _, err := benchCluster(8, 4, 400, workload.UniformSpeeds(8, 150000), fe, 5*time.Millisecond)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	q, err := missQuery()
	if err != nil {
		return 0, err
	}
	// Warm the connection pools and speed EWMAs out of band.
	if _, err := c.FE.Execute(context.Background(), q); err != nil {
		return 0, err
	}
	qps, _, err := throughput(c, q, clients, dur)
	return qps, err
}

func BenchmarkFrontendThroughput(b *testing.B) {
	for _, bc := range throughputConfigs {
		b.Run(bc.name, func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				qps, err := throughputQPS(bc.fe, throughputClients, 400*time.Millisecond)
				if err != nil {
					b.Fatal(err)
				}
				total += qps
			}
			b.ReportMetric(total/float64(b.N), "queries/s")
		})
	}
}

// TestFrontendThroughputSpeedup pins the acceptance bar: the pipelined
// pooled frontend must beat the serial single-connection baseline by at
// least 2x at 64 concurrent clients.
func TestFrontendThroughputSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput comparison is not short")
	}
	serial, err := throughputQPS(throughputConfigs[0].fe, throughputClients, 600*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := throughputQPS(throughputConfigs[1].fe, throughputClients, 600*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("serial %.1f q/s, pipelined %.1f q/s (%.1fx)", serial, pooled, pooled/serial)
	if pooled < 2*serial {
		t.Errorf("pipelined frontend %.1f q/s is under 2x the serial baseline %.1f q/s", pooled, serial)
	}
}

// TestTuningFlowsThroughView checks the full distribution path: cluster
// options -> membership view -> frontend pipeline, over real RPC.
func TestTuningFlowsThroughView(t *testing.T) {
	tun := &proto.Tuning{PoolSize: 2, MaxInFlight: 16, DispatchWorkers: 32}
	c, err := cluster.Start(cluster.Options{
		Nodes: 4, P: 2, Tuning: tun, Seed: 1, Encoder: &benchEncoderConfig,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.Coord.View().Tuning; got == nil || *got != *tun {
		t.Fatalf("view tuning = %+v, want %+v", got, tun)
	}
	_, recs, err := sharedCorpus(500)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.LoadEncoded(recs); err != nil {
		t.Fatal(err)
	}
	q, err := missQuery()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.FE.Execute(context.Background(), q); err != nil {
		t.Fatal(err)
	}
}
