package bench

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"roar/internal/ingest"
	"roar/internal/pps"
)

// Durable ingest pipeline benchmarks: WAL append throughput under
// concurrent producers (group commit is what's being priced), drain
// rate through the consumer against in-memory replica sinks, and
// recovery + replay time for the 10k-record arc from the write path's
// acceptance bar. All three are gate-tracked.

const (
	ingestArc       = 10000 // arc size in the acceptance bar
	ingestAppenders = 8     // concurrent producers sharing group commit
	ingestTargets   = 4     // replica fan-out per record (p)
	ingestAppendMax = 32    // records per producer Append call
)

// ingestRecs builds synthetic encoded records shaped like real output
// of the encryptor (12B nonce + 96B filter). The WAL and consumer
// never look inside the ciphertext, so skipping the crypto keeps setup
// cost out of the harness.
func ingestRecs(n int) []pps.Encoded {
	recs := make([]pps.Encoded, n)
	for i := range recs {
		r := pps.Encoded{ID: uint64(i+1) << 20}
		r.Nonce = make([]byte, 12)
		r.Filter = make([]byte, 96)
		for j := range r.Filter {
			r.Filter[j] = byte(i + j)
		}
		recs[i] = r
	}
	return recs
}

func BenchmarkIngest(b *testing.B) {
	recs := ingestRecs(ingestArc)

	// append: ingestAppenders producers push the whole arc through one
	// WAL with real fsyncs — the group commit merges their flushes.
	b.Run("append", func(b *testing.B) {
		var secs float64
		for i := 0; i < b.N; i++ {
			w, err := ingest.Open(b.TempDir(), ingest.Options{})
			if err != nil {
				b.Fatal(err)
			}
			errs := make(chan error, ingestAppenders)
			per := ingestArc / ingestAppenders
			start := time.Now()
			var wg sync.WaitGroup
			for a := 0; a < ingestAppenders; a++ {
				wg.Add(1)
				go func(part []pps.Encoded) {
					defer wg.Done()
					for at := 0; at < len(part); at += ingestAppendMax {
						end := min(at+ingestAppendMax, len(part))
						if _, err := w.Append(part[at:end]...); err != nil {
							errs <- err
							return
						}
					}
				}(recs[a*per : (a+1)*per])
			}
			wg.Wait()
			secs += time.Since(start).Seconds()
			close(errs)
			for err := range errs {
				b.Fatal(err)
			}
			w.Close()
		}
		b.ReportMetric(float64(b.N*ingestArc)/secs, "append-recs/s")
	})

	// drain: the consumer reads the arc back in batches and delivers
	// each to ingestTargets sinks; measured from Start to the watermark
	// reaching the last sequence.
	b.Run("drain", func(b *testing.B) {
		var secs float64
		var batches int64
		for i := 0; i < b.N; i++ {
			w, err := ingest.Open(b.TempDir(), ingest.Options{})
			if err != nil {
				b.Fatal(err)
			}
			last, err := w.Append(recs...)
			if err != nil {
				b.Fatal(err)
			}
			var pushes atomic.Int64
			targets := make([]ingest.Target, ingestTargets)
			for t := range targets {
				targets[t] = ingest.Target{
					Key: fmt.Sprintf("sink-%d", t),
					Push: func(ctx context.Context, recs []pps.Encoded) error {
						pushes.Add(1)
						return nil
					},
				}
			}
			cons := ingest.NewConsumer(w, ingest.ConsumerConfig{
				Route: func(pps.Encoded) ([]ingest.Target, error) { return targets, nil },
			})
			start := time.Now()
			cons.Start(0)
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			err = cons.WaitDrained(ctx, last)
			cancel()
			secs += time.Since(start).Seconds()
			cons.Stop()
			w.Close()
			if err != nil {
				b.Fatal(err)
			}
			batches += pushes.Load() / ingestTargets
		}
		b.ReportMetric(float64(batches)/secs, "drain-batches/s")
		b.ReportMetric(float64(b.N*ingestArc)/secs, "drain-recs/s")
	})

	// replay: cold reopen of a 10k-record WAL (the crash-recovery scan)
	// plus a full replay pass — what a decommission repair pays before
	// re-delivery starts.
	b.Run("replay", func(b *testing.B) {
		dir := b.TempDir()
		w, err := ingest.Open(dir, ingest.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := w.Append(recs...); err != nil {
			b.Fatal(err)
		}
		w.Close()
		b.ResetTimer()
		var ms float64
		for i := 0; i < b.N; i++ {
			start := time.Now()
			r, err := ingest.Open(dir, ingest.Options{})
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			if err := r.Replay(0, func(uint64, pps.Encoded) bool { n++; return true }); err != nil {
				b.Fatal(err)
			}
			ms += float64(time.Since(start).Microseconds()) / 1000
			r.Close()
			if n != ingestArc {
				b.Fatalf("replayed %d of %d records", n, ingestArc)
			}
		}
		b.ReportMetric(ms/float64(b.N), "replay-ms-10k")
	})
}
