package bench

import (
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs every registered experiment in quick mode
// and sanity-checks the table shapes. This is the integration test of
// the entire reproduction pipeline.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are not short")
	}
	exps := All()
	if len(exps) < 20 {
		t.Fatalf("only %d experiments registered, expected the full evaluation suite", len(exps))
	}
	for _, e := range exps {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tab, err := e.Run(true)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			if len(tab.Columns) == 0 {
				t.Fatalf("%s has no columns", e.ID)
			}
			for i, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Fatalf("%s row %d has %d cells, want %d", e.ID, i, len(row), len(tab.Columns))
				}
			}
			if tab.String() == "" {
				t.Fatalf("%s renders empty", e.ID)
			}
			t.Logf("\n%s", tab)
		})
	}
}

func TestRegistryIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
}

func TestGet(t *testing.T) {
	if _, ok := Get("fig6.1"); !ok {
		t.Error("fig6.1 should exist")
	}
	if _, ok := Get("nope"); ok {
		t.Error("unknown id should not resolve")
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{ID: "x", Title: "demo", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.Notes = "n"
	s := tab.String()
	for _, want := range []string{"demo", "a", "bb", "note: n"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

// TestFig61Shape pins the paper's headline ordering: delay decreases
// with p and SW is never better than ROAR at the largest p.
func TestFig61Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator sweep is not short")
	}
	tab, err := fig61(true)
	if err != nil {
		t.Fatal(err)
	}
	var firstROAR, lastROAR float64
	for i, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("row %d ROAR cell %q", i, row[3])
		}
		if i == 0 {
			firstROAR = v
		}
		lastROAR = v
	}
	if lastROAR >= firstROAR {
		t.Errorf("ROAR delay should fall with p: first %v last %v", firstROAR, lastROAR)
	}
}
