package bench

import (
	"fmt"
	"math"
	"math/rand"

	"roar/internal/sim"
	"roar/internal/workload"
)

// Chapter 6 experiments: the analytic/simulation comparison of SW, PTN,
// ROAR and the optimal bound. All run on internal/sim, which drives the
// production Algorithm 1 scheduler.

func init() {
	register(Experiment{ID: "fig6.1", Title: "Basic delay comparison SW/PTN/ROAR/OPT vs p", Run: fig61})
	register(Experiment{ID: "fig6.2", Title: "Query delay vs number of servers N", Run: fig62})
	register(Experiment{ID: "fig6.3", Title: "Query delay vs load", Run: fig63})
	register(Experiment{ID: "fig6.4", Title: "Query delay vs server heterogeneity", Run: fig64})
	register(Experiment{ID: "fig6.5", Title: "Sensitivity to server-speed estimation error", Run: fig65})
	register(Experiment{ID: "fig6.6", Title: "Effect of raising pQ above p", Run: fig66})
	register(Experiment{ID: "fig6.7", Title: "Ablation of ROAR mechanisms", Run: fig67})
	register(Experiment{ID: "fig6.8", Title: "Unavailability for strict queries vs failures", Run: fig68})
	register(Experiment{ID: "tab6.2", Title: "Messages per operation (bandwidth comparison)", Run: tab62})
}

// simBase is the common Table-6.1-style parameterisation.
func simBase(quick bool) (n, queries int) {
	if quick {
		return 24, 600
	}
	return 48, 4000
}

func heteroSpeeds(n int, sigma float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	return workload.LogNormalSpeeds(n, 1, sigma, rng)
}

func runAlgos(cfg sim.Config, algos []sim.Algo) ([]sim.Result, error) {
	out := make([]sim.Result, 0, len(algos))
	for _, a := range algos {
		c := cfg
		c.Algo = a
		r, err := sim.Run(c)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", a, err)
		}
		out = append(out, r)
	}
	return out, nil
}

func delayCell(r sim.Result) string {
	if r.Overloaded {
		return "overload"
	}
	return f3(r.MeanDelay)
}

func fig61(quick bool) (Table, error) {
	n, queries := simBase(quick)
	t := Table{ID: "fig6.1", Title: "Mean query delay (s) vs p; heterogeneous servers (σ=0.5)",
		Columns: []string{"p", "SW", "PTN", "ROAR", "OPT"}}
	speeds := heteroSpeeds(n, 0.5, 1)
	for _, p := range divisorsOf(n) {
		if p < 2 || p > n/2 {
			continue
		}
		cfg := sim.Config{N: n, P: p, Speeds: speeds, Rate: 1, NumQueries: queries,
			Seed: 2, ProportionalRanges: true}
		rs, err := runAlgos(cfg, []sim.Algo{sim.SW, sim.PTN, sim.ROAR, sim.OPT})
		if err != nil {
			return t, err
		}
		t.AddRow(fi(p), delayCell(rs[0]), delayCell(rs[1]), delayCell(rs[2]), delayCell(rs[3]))
	}
	t.Notes = "expected shape: delay falls with p for all; PTN ≤ ROAR ≤ SW; OPT lowest"
	return t, nil
}

func divisorsOf(n int) []int {
	var out []int
	for d := 1; d <= n; d++ {
		if n%d == 0 {
			out = append(out, d)
		}
	}
	return out
}

func fig62(quick bool) (Table, error) {
	_, queries := simBase(quick)
	t := Table{ID: "fig6.2", Title: "Mean query delay (s) vs N at fixed r=4",
		Columns: []string{"N", "SW", "PTN", "ROAR", "OPT"}}
	ns := []int{16, 32, 64}
	if !quick {
		ns = []int{16, 32, 64, 128, 256}
	}
	for _, n := range ns {
		speeds := heteroSpeeds(n, 0.5, 3)
		// Load scales with capacity so utilisation is constant.
		cfg := sim.Config{N: n, P: n / 4, Speeds: speeds, Rate: 0.05 * float64(n),
			NumQueries: queries, Seed: 4, ProportionalRanges: true}
		rs, err := runAlgos(cfg, []sim.Algo{sim.SW, sim.PTN, sim.ROAR, sim.OPT})
		if err != nil {
			return t, err
		}
		t.AddRow(fi(n), delayCell(rs[0]), delayCell(rs[1]), delayCell(rs[2]), delayCell(rs[3]))
	}
	t.Notes = "delay falls with N (sub-queries shrink as p=N/4 grows)"
	return t, nil
}

func fig63(quick bool) (Table, error) {
	n, queries := simBase(quick)
	t := Table{ID: "fig6.3", Title: "Mean query delay (s) vs offered load",
		Columns: []string{"load (frac of capacity)", "SW", "PTN", "ROAR", "OPT"}}
	speeds := heteroSpeeds(n, 0.5, 5)
	var capacity float64
	for _, s := range speeds {
		capacity += s
	}
	for _, load := range []float64{0.1, 0.3, 0.5, 0.7, 0.85, 0.95} {
		rate := load * capacity // each query = 1 dataset of work
		cfg := sim.Config{N: n, P: n / 4, Speeds: speeds, Rate: rate,
			NumQueries: queries, Seed: 6, ProportionalRanges: true}
		rs, err := runAlgos(cfg, []sim.Algo{sim.SW, sim.PTN, sim.ROAR, sim.OPT})
		if err != nil {
			return t, err
		}
		t.AddRow(f3(load), delayCell(rs[0]), delayCell(rs[1]), delayCell(rs[2]), delayCell(rs[3]))
	}
	t.Notes = "delays grow toward saturation; SW saturates earliest (fewest choices)"
	return t, nil
}

func fig64(quick bool) (Table, error) {
	n, queries := simBase(quick)
	t := Table{ID: "fig6.4", Title: "Mean query delay (s) vs heterogeneity σ (log-normal speeds)",
		Columns: []string{"sigma", "SW", "PTN", "ROAR", "ROAR-2ring", "OPT"}}
	for _, sigma := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		speeds := heteroSpeeds(n, sigma, 7)
		cfg := sim.Config{N: n, P: n / 4, Speeds: speeds, Rate: 1,
			NumQueries: queries, Seed: 8, ProportionalRanges: true}
		rs, err := runAlgos(cfg, []sim.Algo{sim.SW, sim.PTN, sim.ROAR, sim.ROAR2, sim.OPT})
		if err != nil {
			return t, err
		}
		t.AddRow(f3(sigma), delayCell(rs[0]), delayCell(rs[1]), delayCell(rs[2]),
			delayCell(rs[3]), delayCell(rs[4]))
	}
	t.Notes = "gap between SW and PTN/ROAR widens with heterogeneity; 2 rings closes most of ROAR's gap to PTN"
	return t, nil
}

func fig65(quick bool) (Table, error) {
	n, queries := simBase(quick)
	t := Table{ID: "fig6.5", Title: "Mean query delay (s) vs speed-estimation error",
		Columns: []string{"err frac", "PTN", "ROAR"}}
	speeds := heteroSpeeds(n, 0.5, 9)
	for _, e := range []float64{0, 0.1, 0.2, 0.4, 0.8} {
		cfg := sim.Config{N: n, P: n / 4, Speeds: speeds, Rate: 2, EstErrFrac: e,
			NumQueries: queries, Seed: 10, ProportionalRanges: true}
		rs, err := runAlgos(cfg, []sim.Algo{sim.PTN, sim.ROAR})
		if err != nil {
			return t, err
		}
		t.AddRow(f3(e), delayCell(rs[0]), delayCell(rs[1]))
	}
	t.Notes = "both degrade gracefully with estimation error"
	return t, nil
}

func fig66(quick bool) (Table, error) {
	n, queries := simBase(quick)
	t := Table{ID: "fig6.6", Title: "Effect of pQ > p on ROAR (p=n/8)",
		Columns: []string{"pQ", "delay@low load", "delay@high load", "subqueries"}}
	speeds := heteroSpeeds(n, 0.5, 11)
	var capacity float64
	for _, s := range speeds {
		capacity += s
	}
	p := n / 8
	for _, mult := range []int{1, 2, 4} {
		pq := p * mult
		lo := sim.Config{N: n, P: p, PQ: pq, Speeds: speeds, Rate: 0.1 * capacity,
			NumQueries: queries, Seed: 12, ProportionalRanges: true,
			FixedOverhead: 0.002, Algo: sim.ROAR}
		rlo, err := sim.Run(lo)
		if err != nil {
			return t, err
		}
		hi := lo
		hi.Rate = 0.7 * capacity
		rhi, err := sim.Run(hi)
		if err != nil {
			return t, err
		}
		t.AddRow(fi(pq), delayCell(rlo), delayCell(rhi), f1(rlo.SubQueries))
	}
	t.Notes = "raising pQ cuts delay at low load; at high load the per-sub-query overhead erodes the gain"
	return t, nil
}

func fig67(quick bool) (Table, error) {
	n, queries := simBase(quick)
	t := Table{ID: "fig6.7", Title: "Ablation: ROAR mechanisms (σ=0.8, p=n/4)",
		Columns: []string{"variant", "mean delay", "p99", "subqueries"}}
	speeds := heteroSpeeds(n, 0.8, 13)
	base := sim.Config{N: n, P: n / 4, Speeds: speeds, Rate: 1,
		NumQueries: queries, Seed: 14, ProportionalRanges: true, Algo: sim.ROAR}
	variants := []struct {
		name string
		mod  func(c sim.Config) sim.Config
	}{
		{"ROAR (plain)", func(c sim.Config) sim.Config { return c }},
		{"+range adjust", func(c sim.Config) sim.Config { c.RangeAdjust = true; return c }},
		{"+split slowest", func(c sim.Config) sim.Config { c.MaxSplits = 2; return c }},
		{"+adjust+split", func(c sim.Config) sim.Config { c.RangeAdjust = true; c.MaxSplits = 2; return c }},
		{"2 rings", func(c sim.Config) sim.Config { c.Algo = sim.ROAR2; return c }},
		{"random starts (4)", func(c sim.Config) sim.Config { c.RandTries = 4; return c }},
	}
	for _, v := range variants {
		r, err := sim.Run(v.mod(base))
		if err != nil {
			return t, err
		}
		t.AddRow(v.name, delayCell(r), f3(r.P99), f1(r.SubQueries))
	}
	t.Notes = "each mechanism trims delay; splitting also raises sub-query count (fixed overheads)"
	return t, nil
}

func fig68(quick bool) (Table, error) {
	n := 24
	trials := 4000
	if !quick {
		n = 48
		trials = 20000
	}
	p := n / 4 // r = 4
	t := Table{ID: "fig6.8", Title: fmt.Sprintf("P(data loss) vs failed nodes (n=%d, r=4)", n),
		Columns: []string{"failures", "SW", "ROAR", "ROAR-2ring", "PTN"}}
	for _, k := range []int{2, 4, 6, 8, 10, 12} {
		row := []string{fi(k)}
		for _, a := range []sim.Algo{sim.SW, sim.ROAR, sim.ROAR2, sim.PTN} {
			u, err := sim.Unavailability(sim.AvailabilityConfig{
				Algo: a, N: n, P: p, Trials: trials, Seed: 15}, k)
			if err != nil {
				return t, err
			}
			row = append(row, fmt.Sprintf("%.4f", u))
		}
		t.AddRow(row...)
	}
	t.Notes = "SW loses data first (any r-run of failures); ROAR needs a strictly longer run; multiple rings and PTN are most robust"
	return t, nil
}

func tab62(quick bool) (Table, error) {
	n, p, d := 40, 8, 100000
	if !quick {
		n, p, d = 1000, 100, 5000000
	}
	rows, err := sim.MessageCosts(n, p, d)
	if err != nil {
		return Table{}, err
	}
	t := Table{ID: "tab6.2", Title: fmt.Sprintf("Messages per operation (n=%d, p=%d, r=%d, D=%d)", n, p, n/p, d),
		Columns: []string{"operation", "ROAR", "PTN", "SW", "RAND"}}
	for _, r := range rows {
		t.AddRow(r.Op, f0(r.ROAR), f0(r.PTN), f0(r.SW), f0(r.RAND))
	}
	roarF, ptnF, err := sim.ReconfigurationCost(n, p, p/2)
	if err != nil {
		return t, err
	}
	t.Notes = fmt.Sprintf("reconfiguring p=%d→%d transfers %.1f object-copies/object for ROAR vs %.2f dataset fractions for PTN (%.0fx more data moved by PTN per §6.3)",
		p, p/2, roarF, ptnF, math.Max(1, ptnF*float64(d)/(roarF*float64(d))))
	return t, nil
}
