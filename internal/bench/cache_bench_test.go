package bench

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"roar/internal/frontend"
	"roar/internal/pps"
	"roar/internal/workload"
)

// Query-economics benchmarks, both gate-tracked:
//
//   - zipf-hit-ratio: the warm result-cache hit ratio under a
//     Zipf(s=1.0) query stream — the fleet-scale economics claim is
//     that repeat traffic stops costing fan-outs, so the ratio is the
//     number that prices the cache.
//   - tenant-isolation: a hot tenant at 4x its admission quota beside
//     a victim at well under quota. The victim's shed percentage is an
//     exact-zero invariant (quota isolation is the contract, not a
//     statistical tendency); the hot tenant's shed fraction proves the
//     quota actually bites.

const (
	cacheZipfWords = 48
	cacheZipfDraws = 400
)

// distinctCorpusWords collects up to n distinct keywords from docs.
func distinctCorpusWords(docs []pps.Document, n int) []string {
	seen := map[string]bool{}
	var words []string
	for _, d := range docs {
		for _, k := range d.Keywords {
			if !seen[k] {
				seen[k] = true
				words = append(words, k)
				if len(words) == n {
					return words
				}
			}
		}
	}
	return words
}

func BenchmarkResultCache(b *testing.B) {
	b.Run("zipf-hit-ratio", func(b *testing.B) {
		var ratio float64
		for i := 0; i < b.N; i++ {
			c, docs, err := benchCluster(8, 2, 400, workload.UniformSpeeds(8, 150000),
				frontend.Config{CacheBudget: 8 << 20}, time.Millisecond)
			if err != nil {
				b.Fatal(err)
			}
			words := distinctCorpusWords(docs, cacheZipfWords)
			qs := make([]pps.Query, len(words))
			for j, w := range words {
				if qs[j], err = slimEncoder.EncryptQuery(pps.And,
					pps.Predicate{Kind: pps.Keyword, Word: w}); err != nil {
					c.Close()
					b.Fatal(err)
				}
			}
			stream := workload.NewQueryStream(uint64(len(words)), 1.0,
				rand.New(rand.NewSource(17)))
			for d := 0; d < cacheZipfDraws; d++ {
				q := qs[stream.Next()]
				if _, err := c.FE.Query(context.Background(), frontend.QuerySpec{Enc: q}); err != nil {
					c.Close()
					b.Fatal(err)
				}
			}
			st := c.FE.CacheStats()
			ratio += float64(st.Hits) / float64(st.Hits+st.Misses)
			c.Close()
		}
		b.ReportMetric(ratio/float64(b.N), "hit-ratio")
	})

	b.Run("tenant-isolation", func(b *testing.B) {
		var hotFrac, vicPct float64
		for i := 0; i < b.N; i++ {
			// No cache: hits bypass admission and would mask the quota.
			// The 5/s rate keeps the refill interval (200ms) far above a
			// single query's latency, so the hot flood stays over quota
			// on any runner; the victim's pace (1 per 300ms) against the
			// per-tenant bucket is exact arithmetic — it never drains.
			c, docs, err := benchCluster(4, 1, 200, workload.UniformSpeeds(4, 150000),
				frontend.Config{TenantRate: 5, TenantBurst: 2}, 0)
			if err != nil {
				b.Fatal(err)
			}
			q, err := slimEncoder.EncryptQuery(pps.And,
				pps.Predicate{Kind: pps.Keyword, Word: popularWord(docs)})
			if err != nil {
				c.Close()
				b.Fatal(err)
			}
			run := func(tenant string) (shed bool) {
				_, err := c.FE.Query(context.Background(), frontend.QuerySpec{
					Enc: q, Tenant: tenant, Priority: frontend.PriorityBulk,
				})
				if errors.Is(err, frontend.ErrTenantShed) {
					return true
				}
				if err != nil {
					c.Close()
					b.Fatal(err)
				}
				return false
			}
			var hotSent, hotShed, vicSent, vicShed int
			start := time.Now()
			nextVictim := time.Duration(0)
			for elapsed := time.Duration(0); elapsed < 2*time.Second; elapsed = time.Since(start) {
				hotSent++
				if run("hot") {
					hotShed++
				}
				if elapsed >= nextVictim {
					nextVictim = elapsed + 300*time.Millisecond
					vicSent++
					if run("victim") {
						vicShed++
					}
				}
				time.Sleep(time.Millisecond)
			}
			hotFrac += float64(hotShed) / float64(hotSent)
			vicPct += 100 * float64(vicShed) / float64(vicSent)
			c.Close()
		}
		b.ReportMetric(hotFrac/float64(b.N), "hot-shed-frac")
		b.ReportMetric(vicPct/float64(b.N), "victim-shed-pct")
	})
}
