package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"roar/internal/pps"
	"roar/internal/store"
)

// Chapter 5 experiments: single-machine PPS performance. The paper's
// absolute numbers came from 2007-era Dell/Sun hardware with SHA-1 in
// Java; ours come from this machine with HMAC-SHA-256 in Go. The shapes
// — disk-bound vs CPU-bound crossover, thread scaling plateau, linear
// growth with collection size, fixed costs dominating small collections
// — are the reproduction targets (see EXPERIMENTS.md).

func init() {
	register(Experiment{ID: "fig5.1", Title: "Index-based vs PPS bandwidth ratio", Run: fig51})
	register(Experiment{ID: "fig5.4", Title: "Query execution: disk-bound vs warm pipeline stages", Run: fig54})
	register(Experiment{ID: "fig5.5", Title: "In-memory query delay vs matching threads", Run: fig55})
	register(Experiment{ID: "fig5.6", Title: "PPS scaling with collection size (disk vs memory)", Run: fig56})
	register(Experiment{ID: "fig5.7", Title: "PPS_LM vs PPS_LC on a slow-CPU profile", Run: fig57})
}

func fig51(quick bool) (Table, error) {
	t := Table{ID: "fig5.1", Title: "Bandwidth ratio index-based/PPS over (f_u, f_q)",
		Columns: []string{"local", "f_u", "f_q=1", "f_q=10", "f_q=100", "f_q=1000"}}
	fus := []float64{1, 10, 100, 1000}
	fqs := []float64{1, 10, 100, 1000}
	for _, local := range []float64{0, 0.5, 0.9} {
		for _, fu := range fus {
			row := []string{fmt.Sprintf("%.0f%%", local*100), f0(fu)}
			for _, fq := range fqs {
				row = append(row, fmt.Sprintf("%.2f", pps.BandwidthRatio(fu, fq, local)))
			}
			t.AddRow(row...)
		}
	}
	t.Notes = "paper: ~8x at high rates with remote updates, ~2x with 90% local updates"
	return t, nil
}

// corpusOnDisk materialises n records into a temp file, returning its
// path and a cleanup func.
func corpusOnDisk(n int) (string, func(), error) {
	_, recs, err := sharedCorpus(n)
	if err != nil {
		return "", nil, err
	}
	dir, err := os.MkdirTemp("", "roar-bench")
	if err != nil {
		return "", nil, err
	}
	path := filepath.Join(dir, "meta.dat")
	if err := store.SaveFile(path, recs); err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	return path, func() { os.RemoveAll(dir) }, nil
}

func fig54(quick bool) (Table, error) {
	n := 10000
	if !quick {
		n = 400000
	}
	t := Table{ID: "fig5.4", Title: fmt.Sprintf("Pipeline stage timing, %d metadata", n),
		Columns: []string{"configuration", "time", "metadata/s", "bottleneck"}}
	path, cleanup, err := corpusOnDisk(n)
	if err != nil {
		return t, err
	}
	defer cleanup()
	_, recs, err := sharedCorpus(n)
	if err != nil {
		return t, err
	}
	m, err := pps.NewMatcher(slimEncoder.ServerParams())
	if err != nil {
		return t, err
	}
	q, err := missQuery()
	if err != nil {
		return t, err
	}

	// Stage 1: I/O only (stream the file, no matching).
	t0 := time.Now()
	read, err := store.StreamFile(context.Background(), path, 512, func([]pps.Encoded) bool { return true })
	if err != nil {
		return t, err
	}
	ioTime := time.Since(t0)
	t.AddRow("I/O thread alone (stream file)", fms(ioTime), f0(float64(read)/ioTime.Seconds()), "-")

	// Stage 2: matching only (records already in memory).
	st := store.New()
	st.Insert(recs...)
	t0 = time.Now()
	_, scanned, err := st.MatchArc(context.Background(), m, q, 0.5, 0.4999999, store.MatchOptions{Threads: 1})
	if err != nil {
		return t, err
	}
	matchTime := time.Since(t0)
	t.AddRow("match thread alone (in memory)", fms(matchTime), f0(float64(scanned)/matchTime.Seconds()), "-")

	// End-to-end disk-bound pipeline.
	t0 = time.Now()
	_, scanned, err = store.MatchFile(context.Background(), path, m, q, store.MatchOptions{Threads: 1})
	if err != nil {
		return t, err
	}
	diskTime := time.Since(t0)
	bottleneck := "I/O"
	if matchTime > ioTime {
		bottleneck = "matcher"
	}
	t.AddRow("pipeline from disk", fms(diskTime), f0(float64(scanned)/diskTime.Seconds()), bottleneck)

	// End-to-end warm pipeline.
	t0 = time.Now()
	_, scanned, err = st.MatchArc(context.Background(), m, q, 0.5, 0.4999999, store.MatchOptions{Threads: 1})
	if err != nil {
		return t, err
	}
	warmTime := time.Since(t0)
	t.AddRow("pipeline warm (in memory)", fms(warmTime), f0(float64(scanned)/warmTime.Seconds()), "matcher")
	t.Notes = "paper: disk-bound at 66MB/s until caches warm, then matcher-bound; pipeline ≈ max(stages)"
	return t, nil
}

func fig55(quick bool) (Table, error) {
	n := 15000
	if !quick {
		n = 500000
	}
	t := Table{ID: "fig5.5", Title: fmt.Sprintf("In-memory query delay vs matching threads, %d metadata", n),
		Columns: []string{"threads", "delay", "metadata/s"}}
	_, recs, err := sharedCorpus(n)
	if err != nil {
		return t, err
	}
	st := store.New()
	st.Insert(recs...)
	m, _ := pps.NewMatcher(slimEncoder.ServerParams())
	q, err := missQuery()
	if err != nil {
		return t, err
	}
	maxThreads := 8
	if runtime.NumCPU() < 8 {
		maxThreads = runtime.NumCPU()
	}
	for threads := 1; threads <= maxThreads; threads *= 2 {
		best := time.Duration(1 << 62)
		for rep := 0; rep < 3; rep++ {
			t0 := time.Now()
			if _, _, err := st.MatchArc(context.Background(), m, q, 0.5, 0.4999999,
				store.MatchOptions{Threads: threads}); err != nil {
				return t, err
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		t.AddRow(fi(threads), fms(best), f0(float64(n)/best.Seconds()))
	}
	t.Notes = "paper: near-linear speedup to 4 threads (cores), then a plateau"
	return t, nil
}

func fig56(quick bool) (Table, error) {
	sizes := []int{2000, 8000, 24000}
	if !quick {
		sizes = []int{8000, 32000, 128000, 512000}
	}
	t := Table{ID: "fig5.6", Title: "PPS delay and throughput vs collection size",
		Columns: []string{"collection", "disk delay", "disk md/s", "mem delay", "mem md/s"}}
	m, _ := pps.NewMatcher(slimEncoder.ServerParams())
	q, err := missQuery()
	if err != nil {
		return t, err
	}
	for _, n := range sizes {
		path, cleanup, err := corpusOnDisk(n)
		if err != nil {
			return t, err
		}
		_, recs, err := sharedCorpus(n)
		if err != nil {
			cleanup()
			return t, err
		}
		t0 := time.Now()
		if _, _, err := store.MatchFile(context.Background(), path, m, q,
			store.MatchOptions{Threads: 1}); err != nil {
			cleanup()
			return t, err
		}
		disk := time.Since(t0)
		st := store.New()
		st.Insert(recs...)
		t0 = time.Now()
		if _, _, err := st.MatchArc(context.Background(), m, q, 0.5, 0.4999999,
			store.MatchOptions{Threads: runtime.NumCPU()}); err != nil {
			cleanup()
			return t, err
		}
		mem := time.Since(t0)
		t.AddRow(fi(n), fms(disk), f0(float64(n)/disk.Seconds()), fms(mem), f0(float64(n)/mem.Seconds()))
		cleanup()
	}
	t.Notes = "delay linear in collection size once fixed costs amortise (paper: levels off by ~250k files)"
	return t, nil
}

func fig57(quick bool) (Table, error) {
	sizes := []int{2000, 8000, 24000}
	if !quick {
		sizes = []int{8000, 32000, 128000, 512000}
	}
	t := Table{ID: "fig5.7", Title: "PPS_LM vs PPS_LC (forced GC per query) on CPU-bound profile",
		Columns: []string{"collection", "LM delay", "LC delay", "LM md/s", "LC md/s"}}
	m, _ := pps.NewMatcher(slimEncoder.ServerParams())
	q, err := missQuery()
	if err != nil {
		return t, err
	}
	for _, n := range sizes {
		_, recs, err := sharedCorpus(n)
		if err != nil {
			return t, err
		}
		st := store.New()
		st.Insert(recs...)
		// LM: force a GC after every query (low memory, higher fixed
		// cost); LC: let the runtime decide.
		run := func(gc bool) (time.Duration, error) {
			t0 := time.Now()
			if _, _, err := st.MatchArc(context.Background(), m, q, 0.5, 0.4999999,
				store.MatchOptions{Threads: 1}); err != nil {
				return 0, err
			}
			if gc {
				runtime.GC()
			}
			return time.Since(t0), nil
		}
		lm, err := run(true)
		if err != nil {
			return t, err
		}
		lc, err := run(false)
		if err != nil {
			return t, err
		}
		t.AddRow(fi(n), fms(lm), fms(lc),
			f0(float64(n)/lm.Seconds()), f0(float64(n)/lc.Seconds()))
	}
	t.Notes = "LM pays a fixed post-query cost: visible at small collections, amortised at large ones (paper Fig 5.7's steeper drop-off for PPS_LM)"
	return t, nil
}
