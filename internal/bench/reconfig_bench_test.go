package bench

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"roar/internal/frontend"
	"roar/internal/pps"
	"roar/internal/stats"
	"roar/internal/workload"
)

// errIDSetDiverged flags a query whose result set changed size across
// the live reconfiguration — the §4.5 safety violation.
var errIDSetDiverged = errors.New("bench: id set diverged across live ChangeP")

// Reconfiguration-under-load benchmark (§4.5's headline claim as a
// number CI tracks): closed-loop clients hammer the cluster while the
// coordinator performs a live ChangeP — the p-down direction, the one
// that moves data — and the run reports sustained queries/s and p99
// across the whole window, including the transition. The id-set check
// pins the §4.5 safety property: no query observes a partial level.

const (
	reconfigNodes   = 8
	reconfigP       = 4 // stepped down to 3 mid-run
	reconfigCorpus  = 400
	reconfigClients = 32
)

// reconfigRun drives load for dur with a ChangeP(p-1) fired at dur/3,
// returning queries/s and the delay sample.
func reconfigRun(dur time.Duration) (float64, *stats.Sample, error) {
	c, docs, err := benchCluster(reconfigNodes, reconfigP, reconfigCorpus,
		workload.UniformSpeeds(reconfigNodes, 150000),
		frontend.Config{PoolSize: 4}, 2*time.Millisecond)
	if err != nil {
		return 0, nil, err
	}
	defer c.Close()
	q, err := slimEncoder.EncryptQuery(pps.And,
		pps.Predicate{Kind: pps.Keyword, Word: popularWord(docs)})
	if err != nil {
		return 0, nil, err
	}
	// Warm pools and speed EWMAs out of band, and capture the reference
	// id-set size.
	ref, err := c.FE.Execute(context.Background(), q)
	if err != nil {
		return 0, nil, err
	}
	wantIDs := len(ref.IDs)

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		total   int
		delays  = stats.NewSample(1024)
		firstEr error
	)
	deadline := time.Now().Add(dur)
	for w := 0; w < reconfigClients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				res, err := c.FE.Execute(context.Background(), q)
				mu.Lock()
				if err == nil && len(res.IDs) != wantIDs {
					err = errIDSetDiverged
				}
				if err != nil {
					if firstEr == nil {
						firstEr = err
					}
					mu.Unlock()
					return
				}
				total++
				delays.Add(res.Delay.Seconds())
				mu.Unlock()
			}
		}()
	}
	// The live reconfiguration, mid-window: p-down grows every node's
	// replica arc, so the coordinator is pushing data while the workers
	// above keep querying.
	time.Sleep(dur / 3)
	if err := c.Coord.ChangeP(context.Background(), reconfigP-1); err != nil {
		mu.Lock()
		if firstEr == nil {
			firstEr = err
		}
		mu.Unlock()
	}
	_ = c.SyncView()
	wg.Wait()
	if firstEr != nil {
		return 0, nil, firstEr
	}
	return float64(total) / dur.Seconds(), delays, nil
}

// BenchmarkReconfigUnderLoad reports sustained queries/s and p99 across
// a live ChangeP (4→3) under 32 closed-loop clients.
func BenchmarkReconfigUnderLoad(b *testing.B) {
	var qps, p99 float64
	for i := 0; i < b.N; i++ {
		r, delays, err := reconfigRun(900 * time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		qps += r
		p99 += delays.Percentile(99)
	}
	b.ReportMetric(qps/float64(b.N), "queries/s")
	b.ReportMetric(p99/float64(b.N)*1000, "p99-ms")
}

// TestReconfigUnderLoadKeepsResults is the correctness side of the
// benchmark at test scale: every query across the live ChangeP returns
// the reference id set.
func TestReconfigUnderLoadKeepsResults(t *testing.T) {
	if testing.Short() {
		t.Skip("reconfiguration-under-load e2e is not short")
	}
	if _, _, err := reconfigRun(600 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
}
