package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"roar/internal/cluster"
	"roar/internal/core"
	"roar/internal/frontend"
	"roar/internal/pps"
	"roar/internal/proto"
	"roar/internal/ptn"
	"roar/internal/ring"
	"roar/internal/sim"
	"roar/internal/stats"
	"roar/internal/workload"
)

// Chapter 7 experiments: the real TCP cluster. Node speeds are
// calibrated (objects/second throttles) so the shapes track the paper's
// heterogeneous Hen testbed rather than this machine's scheduler noise.

func init() {
	register(Experiment{ID: "fig7.1", Title: "Delay and throughput vs p (PPS_LM: high fixed cost)", Run: fig71})
	register(Experiment{ID: "fig7.2", Title: "Delay and throughput vs p (PPS_LC: low fixed cost)", Run: fig72})
	register(Experiment{ID: "fig7.3", Title: "Per-node CPU load vs p", Run: fig73})
	register(Experiment{ID: "fig7.4", Title: "Update overhead vs replication level", Run: fig74})
	register(Experiment{ID: "tab7.2", Title: "Energy savings at p=5 vs p=47", Run: tab72})
	register(Experiment{ID: "fig7.5", Title: "Changing p dynamically under load steps", Run: fig75})
	register(Experiment{ID: "fig7.6", Title: "Node failures: delay and completeness", Run: fig76})
	register(Experiment{ID: "fig7.7", Title: "Fast load balancing with pq > p", Run: fig77})
	register(Experiment{ID: "fig7.9", Title: "Range load balancing convergence", Run: fig79})
	register(Experiment{ID: "fig7.11", Title: "Delay breakdown at the frontend", Run: fig711})
	register(Experiment{ID: "tab7.3", Title: "Large-scale deployment (EC2 stand-in)", Run: tab73})
	register(Experiment{ID: "fig7.12", Title: "Frontend scheduling delay: PTN vs ROAR", Run: fig712})
	register(Experiment{ID: "fig7.13", Title: "Observed server processing speeds", Run: fig713})
	register(Experiment{ID: "fig7.14", Title: "End-to-end delay: ROAR vs PTN", Run: fig714})
}

// benchCluster spins a throttled cluster with a loaded corpus.
func benchCluster(nodes, p, corpusN int, speeds []float64, fe frontend.Config, fixed time.Duration) (*cluster.Cluster, []pps.Document, error) {
	c, err := cluster.Start(cluster.Options{
		Nodes: nodes, P: p, NodeSpeeds: speeds, Frontend: fe,
		FixedQueryCost: fixed, Seed: 42, Encoder: &benchEncoderConfig,
	})
	if err != nil {
		return nil, nil, err
	}
	docs, recs, err := sharedCorpus(corpusN)
	if err != nil {
		c.Close()
		return nil, nil, err
	}
	if err := c.LoadEncoded(recs); err != nil {
		c.Close()
		return nil, nil, err
	}
	return c, docs, nil
}

// throughput drives the cluster closed-loop with `workers` clients for
// `dur`, returning completed queries/sec and the delay sample.
func throughput(c *cluster.Cluster, q pps.Query, workers int, dur time.Duration) (float64, *stats.Sample, error) {
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		total   int
		delays  = stats.NewSample(256)
		firstEr error
	)
	deadline := time.Now().Add(dur)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				res, err := c.FE.Query(context.Background(), frontend.QuerySpec{Enc: q})
				mu.Lock()
				if err != nil {
					if firstEr == nil {
						firstEr = err
					}
					mu.Unlock()
					return
				}
				total++
				delays.Add(res.Delay.Seconds())
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return 0, nil, firstEr
	}
	return float64(total) / dur.Seconds(), delays, nil
}

func delayThroughputVsP(id, title string, fixed time.Duration, quick bool) (Table, error) {
	n, corpusN := 12, 4000
	dur := 700 * time.Millisecond
	if !quick {
		n, corpusN = 24, 20000
		dur = 3 * time.Second
	}
	t := Table{ID: id, Title: title,
		Columns: []string{"p", "unloaded delay", "p90", "queries/s (4 clients)"}}
	speeds := workload.UniformSpeeds(n, 150000)
	q, err := missQuery()
	if err != nil {
		return t, err
	}
	for _, p := range divisorsOf(n) {
		if p < 2 {
			continue
		}
		c, _, err := benchCluster(n, p, corpusN, speeds, frontend.Config{}, fixed)
		if err != nil {
			return t, err
		}
		// Latency: one sequential client on an idle system (the paper's
		// per-query measurement), then throughput under closed-loop load.
		delays := stats.NewSample(20)
		for i := 0; i < 20; i++ {
			res, err := c.FE.Query(context.Background(), frontend.QuerySpec{Enc: q})
			if err != nil {
				c.Close()
				return t, err
			}
			delays.Add(res.Delay.Seconds())
		}
		qps, _, err := throughput(c, q, 4, dur)
		c.Close()
		if err != nil {
			return t, err
		}
		t.AddRow(fi(p), fms(time.Duration(delays.Mean()*float64(time.Second))),
			fms(time.Duration(delays.Percentile(90)*float64(time.Second))), f1(qps))
	}
	t.Notes = "delay falls with p (parallelism); throughput peaks at small p and erodes as fixed per-sub-query costs multiply"
	return t, nil
}

func fig71(quick bool) (Table, error) {
	return delayThroughputVsP("fig7.1", "Delay/throughput vs p, high fixed cost (PPS_LM)", 2*time.Millisecond, quick)
}

func fig72(quick bool) (Table, error) {
	return delayThroughputVsP("fig7.2", "Delay/throughput vs p, low fixed cost (PPS_LC)", 200*time.Microsecond, quick)
}

func fig73(quick bool) (Table, error) {
	n, corpusN := 12, 4000
	queries := 40
	if !quick {
		n, corpusN, queries = 24, 20000, 200
	}
	t := Table{ID: "fig7.3", Title: "Average per-node busy fraction at fixed offered load",
		Columns: []string{"p", "mean busy frac", "max busy frac", "imbalance"}}
	speeds := workload.UniformSpeeds(n, 150000)
	q, err := missQuery()
	if err != nil {
		return t, err
	}
	for _, p := range []int{2, n / 2} {
		c, _, err := benchCluster(n, p, corpusN, speeds, frontend.Config{}, time.Millisecond)
		if err != nil {
			return t, err
		}
		wall0 := time.Now()
		for i := 0; i < queries; i++ {
			if _, err := c.FE.Query(context.Background(), frontend.QuerySpec{Enc: q}); err != nil {
				c.Close()
				return t, err
			}
			time.Sleep(5 * time.Millisecond) // fixed offered load
		}
		wall := time.Since(wall0).Seconds()
		st := c.NodeStats(context.Background())
		busy := make([]float64, len(st))
		var sum, max float64
		for i, s := range st {
			busy[i] = float64(s.BusyNanos) / 1e9 / wall
			sum += busy[i]
			if busy[i] > max {
				max = busy[i]
			}
		}
		t.AddRow(fi(p), f3(sum/float64(len(st))), f3(max), f3(stats.LoadImbalance(busy)))
		c.Close()
	}
	t.Notes = "same offered load: larger p spreads each query thinner but pays fixed cost on more nodes, raising total busy time"
	return t, nil
}

func fig74(quick bool) (Table, error) {
	n, corpusN := 12, 3000
	dur := 600 * time.Millisecond
	if !quick {
		n, corpusN = 24, 12000
		dur = 2 * time.Second
	}
	t := Table{ID: "fig7.4", Title: "Query throughput with a concurrent update stream, by r",
		Columns: []string{"r", "p", "replicas/update", "queries/s (no updates)", "queries/s (with updates)"}}
	speeds := workload.UniformSpeeds(n, 150000)
	q, err := missQuery()
	if err != nil {
		return t, err
	}
	for _, r := range []int{2, 4, 6} {
		p := n / r
		c, docs, err := benchCluster(n, p, corpusN, speeds, frontend.Config{}, 500*time.Microsecond)
		if err != nil {
			return t, err
		}
		base, _, err := throughput(c, q, 3, dur)
		if err != nil {
			c.Close()
			return t, err
		}
		// Update stream: re-push existing objects continuously.
		stop := make(chan struct{})
		var updates, replicas int
		go func() {
			rng := rand.New(rand.NewSource(1))
			for {
				select {
				case <-stop:
					return
				default:
				}
				d := docs[rng.Intn(len(docs))]
				rec, err := c.Enc.EncryptDocument(d)
				if err != nil {
					return
				}
				k, err := c.Coord.AddObject(context.Background(), rec)
				if err != nil {
					return
				}
				updates++
				replicas += k
			}
		}()
		loaded, _, err := throughput(c, q, 3, dur)
		close(stop)
		c.Close()
		if err != nil {
			return t, err
		}
		perUpdate := 0.0
		if updates > 0 {
			perUpdate = float64(replicas) / float64(updates)
		}
		t.AddRow(fi(r), fi(p), f1(perUpdate), f1(base), f1(loaded))
	}
	t.Notes = "each update costs ~r+1 replica pushes; higher r loses more query throughput to the update stream"
	return t, nil
}

func tab72(quick bool) (Table, error) {
	n := 45 // the paper's 43-47 Hen nodes
	queries := 1500
	if quick {
		queries = 500
	}
	t := Table{ID: "tab7.2", Title: "Energy at p=5 vs p=47-equivalent (sim, Dell 1950 wattage)",
		Columns: []string{"p", "mean delay (s)", "utilisation", "watts total", "savings"}}
	rng := rand.New(rand.NewSource(1))
	speeds := workload.LogNormalSpeeds(n, 1, 0.3, rng)
	var capacity float64
	for _, s := range speeds {
		capacity += s
	}
	model := workload.Dell1950
	var baseWatts float64
	for _, p := range []int{45, 5} {
		cfg := sim.Config{Algo: sim.ROAR, N: n, P: p, Speeds: speeds,
			Rate: 0.15 * capacity, NumQueries: queries, Seed: 2,
			ProportionalRanges: true, FixedOverhead: 0.01}
		res, err := sim.Run(cfg)
		if err != nil {
			return t, err
		}
		watts := float64(n) * (model.IdleWatts + res.Utilisation*(model.ActiveWatts-model.IdleWatts))
		savings := "-"
		if baseWatts == 0 {
			baseWatts = watts
		} else {
			savings = fmt.Sprintf("%.1f%%", (baseWatts-watts)/baseWatts*100)
		}
		t.AddRow(fi(p), delayCell(res), f3(res.Utilisation), f0(watts), savings)
	}
	t.Notes = "paper Table 7.2: running at p=5 instead of p=47 cuts energy by reducing per-query fixed work"
	return t, nil
}

func fig75(quick bool) (Table, error) {
	n, corpusN := 12, 4000
	phaseQ := 25
	if !quick {
		n, corpusN, phaseQ = 24, 16000, 80
	}
	t := Table{ID: "fig7.5", Title: "Dynamic p adaptation under load steps (delay target 25ms)",
		Columns: []string{"phase", "offered load", "p", "mean delay", "action"}}
	speeds := workload.UniformSpeeds(n, 120000)
	c, _, err := benchCluster(n, 2, corpusN, speeds, frontend.Config{}, 500*time.Microsecond)
	if err != nil {
		return t, err
	}
	defer c.Close()
	q, err := missQuery()
	if err != nil {
		return t, err
	}
	const target = 0.025
	phases := []struct {
		name    string
		pause   time.Duration
		workers int
	}{
		{"low load", 10 * time.Millisecond, 1},
		{"high load", 0, 3},
		{"low load again", 10 * time.Millisecond, 1},
	}
	for _, ph := range phases {
		// Measure, then let the controller react (§4.5: raising p is
		// instant; lowering p waits for data movement).
		mean, err := measurePhase(c, q, ph.workers, ph.pause, phaseQ)
		if err != nil {
			return t, err
		}
		action := "hold"
		p := c.Coord.P()
		switch {
		case mean > target && p < n/2:
			newP := p * 2
			if err := c.Coord.ChangeP(context.Background(), newP); err != nil {
				return t, err
			}
			if err := c.SyncView(); err != nil {
				return t, err
			}
			action = fmt.Sprintf("raise p %d->%d (instant)", p, newP)
		case mean < target/3 && p > 2:
			newP := p / 2
			if err := c.Coord.ChangeP(context.Background(), newP); err != nil {
				return t, err
			}
			if err := c.SyncView(); err != nil {
				return t, err
			}
			action = fmt.Sprintf("lower p %d->%d (after replication)", p, newP)
		}
		mean2, err := measurePhase(c, q, ph.workers, ph.pause, phaseQ)
		if err != nil {
			return t, err
		}
		t.AddRow(ph.name, fmt.Sprintf("%d workers", ph.workers), fi(c.Coord.P()),
			fms(time.Duration(mean2*float64(time.Second))), action)
		_ = mean
	}
	t.Notes = "the system tracks the delay target by moving p, not by adding servers (§7.4)"
	return t, nil
}

func measurePhase(c *cluster.Cluster, q pps.Query, workers int, pause time.Duration, queries int) (float64, error) {
	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		s   = stats.NewSample(queries)
		err error
	)
	per := queries / workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				res, e := c.FE.Query(context.Background(), frontend.QuerySpec{Enc: q})
				mu.Lock()
				if e != nil && err == nil {
					err = e
				} else if e == nil {
					s.Add(res.Delay.Seconds())
				}
				mu.Unlock()
				if pause > 0 {
					time.Sleep(pause)
				}
			}
		}()
	}
	wg.Wait()
	if err != nil {
		return 0, err
	}
	return s.Mean(), nil
}

func fig76(quick bool) (Table, error) {
	n, corpusN, kills := 15, 4000, 3
	if !quick {
		n, corpusN, kills = 40, 16000, 8
	}
	t := Table{ID: "fig7.6", Title: fmt.Sprintf("%d node failures: delay and completeness", kills),
		Columns: []string{"phase", "mean delay", "sub-queries/query", "complete"}}
	speeds := workload.UniformSpeeds(n, 150000)
	c, docs, err := benchCluster(n, 5, corpusN, speeds,
		frontend.Config{SubQueryTimeout: 400 * time.Millisecond}, 300*time.Microsecond)
	if err != nil {
		return t, err
	}
	defer c.Close()
	word := popularWord(docs)
	want := map[uint64]bool{}
	for _, d := range docs {
		for _, k := range d.Keywords {
			if k == word {
				want[d.ID] = true
				break
			}
		}
	}
	q, err := slimEncoder.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: word})
	if err != nil {
		return t, err
	}
	phase := func(name string) error {
		s := stats.NewSample(10)
		subs := 0
		complete := true
		rounds := 8
		for i := 0; i < rounds; i++ {
			res, err := c.FE.Query(context.Background(), frontend.QuerySpec{Enc: q})
			if err != nil {
				return err
			}
			s.Add(res.Delay.Seconds())
			subs += res.SubQueries
			got := map[uint64]bool{}
			for _, id := range res.IDs {
				got[id] = true
			}
			for id := range want {
				if !got[id] {
					complete = false
				}
			}
		}
		t.AddRow(name, fms(time.Duration(s.Mean()*float64(time.Second))),
			f1(float64(subs)/float64(rounds)), fmt.Sprintf("%v", complete))
		return nil
	}
	if err := phase("before failures"); err != nil {
		return t, err
	}
	for i := 0; i < kills; i++ {
		if err := c.KillNode(i); err != nil {
			return t, err
		}
	}
	if err := phase("after failures (fallback)"); err != nil {
		return t, err
	}
	for i := 0; i < kills; i++ {
		if err := c.RecoverFailure(context.Background(), i); err != nil {
			return t, err
		}
	}
	if err := phase("after recovery"); err != nil {
		return t, err
	}
	t.Notes = "every phase stays complete (100% harvest); failures add split sub-queries and a detection bump, recovery restores baseline"
	return t, nil
}

func fig77(quick bool) (Table, error) {
	n, corpusN := 12, 6000
	queries := 30
	if !quick {
		n, corpusN, queries = 24, 24000, 120
	}
	t := Table{ID: "fig7.7", Title: "Fast load balancing with pq > p (one 8x-slow node)",
		Columns: []string{"pq", "mean delay", "p50", "p99"}}
	speeds := workload.UniformSpeeds(n, 200000)
	speeds[0] = 25000 // the straggler
	p := 3
	q, err := missQuery()
	if err != nil {
		return t, err
	}
	for _, mult := range []int{1, 2, 4} {
		c, _, err := benchCluster(n, p, corpusN, speeds,
			frontend.Config{PQ: p * mult}, 200*time.Microsecond)
		if err != nil {
			return t, err
		}
		s := stats.NewSample(queries)
		for i := 0; i < queries; i++ {
			res, err := c.FE.Query(context.Background(), frontend.QuerySpec{Enc: q})
			if err != nil {
				c.Close()
				return t, err
			}
			s.Add(res.Delay.Seconds())
		}
		c.Close()
		t.AddRow(fi(p*mult),
			fms(time.Duration(s.Mean()*float64(time.Second))),
			fms(time.Duration(s.Percentile(50)*float64(time.Second))),
			fms(time.Duration(s.Percentile(99)*float64(time.Second))))
	}
	t.Notes = "larger pq shrinks the straggler's share and the tail (Figs 7.7/7.8); the speed EWMA then routes around it"
	return t, nil
}

func fig79(quick bool) (Table, error) {
	n, corpusN := 10, 5000
	rounds, queriesPerRound := 5, 20
	if !quick {
		n, corpusN, rounds, queriesPerRound = 20, 20000, 10, 60
	}
	t := Table{ID: "fig7.9", Title: "Range load balancing: imbalance and delay per round",
		Columns: []string{"round", "range/speed imbalance", "busy imbalance", "mean delay"}}
	// Heterogeneous true speeds but uniform hints: ranges start equal
	// and must converge toward speed-proportional.
	rng := rand.New(rand.NewSource(3))
	speeds := workload.LogNormalSpeeds(n, 150000, 0.5, rng)
	c, err := cluster.Start(cluster.Options{
		Nodes: n, P: n / 2, NodeSpeeds: speeds,
		SpeedHints: workload.UniformSpeeds(n, 1), Seed: 7,
		Encoder: &benchEncoderConfig,
	})
	if err != nil {
		return t, err
	}
	defer c.Close()
	_, recs, err := sharedCorpus(corpusN)
	if err != nil {
		return t, err
	}
	if err := c.LoadEncoded(recs); err != nil {
		return t, err
	}
	q, err := missQuery()
	if err != nil {
		return t, err
	}
	prevBusy := make([]int64, n)
	// rangeSpeedImbalance is the structural metric: a node's expected
	// load is its range divided by its speed; perfect balancing drives
	// this ratio uniform.
	rangeSpeedImbalance := func() (float64, map[ring.NodeID]float64) {
		v := c.Coord.View()
		byID := map[int]float64{}
		sorted := append([]proto.NodeInfo(nil), v.Nodes...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a].Start < sorted[b].Start })
		for i, ni := range sorted {
			next := sorted[(i+1)%len(sorted)].Start
			length := next - ni.Start
			if length <= 0 {
				length += 1
			}
			byID[ni.ID] = length
		}
		loads := map[ring.NodeID]float64{}
		var vals []float64
		for i, id := range c.NodeIDs() {
			l := byID[int(id)] / speeds[i]
			loads[id] = l
			vals = append(vals, l)
		}
		return stats.LoadImbalance(vals), loads
	}
	for round := 0; round < rounds; round++ {
		s := stats.NewSample(queriesPerRound)
		w0 := time.Now()
		for i := 0; i < queriesPerRound; i++ {
			res, err := c.FE.Query(context.Background(), frontend.QuerySpec{Enc: q})
			if err != nil {
				return t, err
			}
			s.Add(res.Delay.Seconds())
		}
		wall := time.Since(w0).Seconds()
		st := c.NodeStats(context.Background())
		busy := make([]float64, n)
		for i, sr := range st {
			busy[i] = float64(sr.BusyNanos-prevBusy[i]) / 1e9 / wall
			prevBusy[i] = sr.BusyNanos
		}
		structural, loads := rangeSpeedImbalance()
		t.AddRow(fi(round), f3(structural), f3(stats.LoadImbalance(busy)),
			fms(time.Duration(s.Mean()*float64(time.Second))))
		// Balance on the structural proxy, as the membership server does
		// (§4.9: range over processing power, not instantaneous load).
		if _, err := c.Coord.BalanceStep(context.Background(), loads, 0.3); err != nil {
			return t, err
		}
		if err := c.SyncView(); err != nil {
			return t, err
		}
	}
	t.Notes = "structural (range/speed) imbalance falls as ranges migrate toward speed-proportional (Figs 7.9/7.10)"
	return t, nil
}

func fig711(quick bool) (Table, error) {
	n, corpusN := 12, 5000
	queries := 30
	if !quick {
		n, corpusN, queries = 24, 20000, 150
	}
	t := Table{ID: "fig7.11", Title: "Delay breakdown as seen at the frontend",
		Columns: []string{"phase", "mean", "p90", "share"}}
	speeds := workload.UniformSpeeds(n, 150000)
	c, _, err := benchCluster(n, 4, corpusN, speeds, frontend.Config{}, 300*time.Microsecond)
	if err != nil {
		return t, err
	}
	defer c.Close()
	q, err := missQuery()
	if err != nil {
		return t, err
	}
	for i := 0; i < queries; i++ {
		if _, err := c.FE.Query(context.Background(), frontend.QuerySpec{Enc: q}); err != nil {
			return t, err
		}
	}
	bd := c.FE.DelayBreakdown()
	total := bd.Total.Mean
	row := func(name string, s stats.Summary) {
		t.AddRow(name, fms(time.Duration(s.Mean*float64(time.Second))),
			fms(time.Duration(s.P90*float64(time.Second))),
			fmt.Sprintf("%.1f%%", s.Mean/total*100))
	}
	row("queue", bd.Queue)
	row("scheduling", bd.Schedule)
	row("dispatch+match", bd.Dispatch)
	row("merge", bd.Merge)
	row("total", bd.Total)
	t.Notes = "dispatch (network + remote matching) dominates; scheduling, admission queueing and merge are small slices (paper Fig 7.11)"
	return t, nil
}

func tab73(quick bool) (Table, error) {
	n, corpusN := 200, 3000
	queries := 25
	if !quick {
		n, corpusN, queries = 1000, 10000, 100
	}
	t := Table{ID: "tab7.3", Title: fmt.Sprintf("ROAR on %d servers (EC2 stand-in on loopback)", n),
		Columns: []string{"metric", "value"}}
	c, err := cluster.Start(cluster.Options{Nodes: n, P: n / 10, Seed: 11,
		Encoder: &benchEncoderConfig})
	if err != nil {
		return t, err
	}
	defer c.Close()
	_, recs, err := sharedCorpus(corpusN)
	if err != nil {
		return t, err
	}
	if err := c.LoadEncoded(recs); err != nil {
		return t, err
	}
	q, err := missQuery()
	if err != nil {
		return t, err
	}
	s := stats.NewSample(queries)
	var sched time.Duration
	for i := 0; i < queries; i++ {
		res, err := c.FE.Query(context.Background(), frontend.QuerySpec{Enc: q})
		if err != nil {
			return t, err
		}
		s.Add(res.Delay.Seconds())
		sched += res.Schedule
	}
	t.AddRow("servers", fi(n))
	t.AddRow("partitioning level p", fi(n/10))
	t.AddRow("mean query delay", fms(time.Duration(s.Mean()*float64(time.Second))))
	t.AddRow("p50", fms(time.Duration(s.Percentile(50)*float64(time.Second))))
	t.AddRow("p99", fms(time.Duration(s.Percentile(99)*float64(time.Second))))
	t.AddRow("mean scheduling time", fms(sched/time.Duration(queries)))
	t.Notes = "paper Table 7.3: 1000 EC2 servers; scheduling stays in the low milliseconds at p=100"
	return t, nil
}

func fig712(quick bool) (Table, error) {
	ns := []int{100, 300, 1000}
	if !quick {
		ns = []int{100, 300, 1000, 3000}
	}
	t := Table{ID: "fig7.12", Title: "Frontend scheduling delay vs n (p = n/10)",
		Columns: []string{"n", "ROAR Alg1", "ROAR strawman", "PTN scan"}}
	for _, n := range ns {
		rng := rand.New(rand.NewSource(5))
		r := ring.New()
		id := ring.NodeID(0)
		for r.Len() < n {
			if err := r.Insert(id, ring.Norm(rng.Float64())); err == nil {
				id++
			}
		}
		pl, err := core.NewPlacement(n/10, r)
		if err != nil {
			return t, err
		}
		speeds := map[ring.NodeID]float64{}
		for _, nid := range r.IDs() {
			speeds[nid] = 0.5 + rng.Float64()*10
		}
		est := core.EstimatorFunc(func(nid ring.NodeID, size float64) float64 {
			return size / speeds[nid]
		})
		timeIt := func(f func() error) (time.Duration, error) {
			reps := 5
			t0 := time.Now()
			for i := 0; i < reps; i++ {
				if err := f(); err != nil {
					return 0, err
				}
			}
			return time.Since(t0) / time.Duration(reps), nil
		}
		alg1, err := timeIt(func() error { _, err := pl.Schedule(n/10, est); return err })
		if err != nil {
			return t, err
		}
		straw, err := timeIt(func() error { _, err := pl.ScheduleStrawman(n/10, est); return err })
		if err != nil {
			return t, err
		}
		pc, err := startPTNLayoutOnly(n, n/10, speeds)
		if err != nil {
			return t, err
		}
		scan, err := timeIt(func() error { _, err := pc.Schedule(est, nil); return err })
		if err != nil {
			return t, err
		}
		t.AddRow(fi(n), fms(alg1), fms(straw), fms(scan))
	}
	t.Notes = "Algorithm 1 is O(n log p) vs the strawman's O(n·p); PTN's linear scan is cheapest (paper: ROAR ~3x PTN at n=1000)"
	return t, nil
}

func fig713(quick bool) (Table, error) {
	n, corpusN := 8, 5000
	queries := 40
	if !quick {
		n, corpusN, queries = 16, 20000, 150
	}
	t := Table{ID: "fig7.13", Title: "Configured vs frontend-observed server speeds",
		Columns: []string{"node", "configured obj/s", "observed (norm.)", "expected (norm.)"}}
	speeds := make([]float64, n)
	for i := range speeds {
		if i%2 == 0 {
			speeds[i] = 200000
		} else {
			speeds[i] = 50000
		}
	}
	c, _, err := benchCluster(n, n/2, corpusN, speeds, frontend.Config{PQ: n}, 0)
	if err != nil {
		return t, err
	}
	defer c.Close()
	q, err := missQuery()
	if err != nil {
		return t, err
	}
	for i := 0; i < queries; i++ {
		if _, err := c.FE.Query(context.Background(), frontend.QuerySpec{Enc: q}); err != nil {
			return t, err
		}
	}
	estimates := c.FE.SpeedEstimates()
	// Normalise both scales by their fastest entry.
	var maxEst, maxCfg float64
	for _, v := range estimates {
		if v > maxEst {
			maxEst = v
		}
	}
	for _, v := range speeds {
		if v > maxCfg {
			maxCfg = v
		}
	}
	for i, nid := range c.NodeIDs() {
		est, ok := estimates[int(nid)]
		if !ok {
			continue
		}
		t.AddRow(fi(int(nid)), f0(speeds[i]), f3(est/maxEst), f3(speeds[i]/maxCfg))
	}
	t.Notes = "EWMA speed estimates recover the configured 4x fast/slow split (paper Fig 7.13)"
	return t, nil
}

func fig714(quick bool) (Table, error) {
	n, corpusN := 12, 6000
	queries := 30
	if !quick {
		n, corpusN, queries = 24, 24000, 120
	}
	p := n / 4
	t := Table{ID: "fig7.14", Title: "End-to-end query delay: ROAR vs PTN (heterogeneous pool)",
		Columns: []string{"algorithm", "mean", "p50", "p90", "p99"}}
	rng := rand.New(rand.NewSource(9))
	speeds := workload.LogNormalSpeeds(n, 150000, 0.5, rng)
	_, recs, err := sharedCorpus(corpusN)
	if err != nil {
		return t, err
	}
	q, err := missQuery()
	if err != nil {
		return t, err
	}

	// ROAR.
	c, err := cluster.Start(cluster.Options{Nodes: n, P: p, NodeSpeeds: speeds,
		SpeedHints: speeds, Seed: 13, Encoder: &benchEncoderConfig})
	if err != nil {
		return t, err
	}
	if err := c.LoadEncoded(recs); err != nil {
		c.Close()
		return t, err
	}
	roarS := stats.NewSample(queries)
	var roarIDs []uint64
	for i := 0; i < queries; i++ {
		res, err := c.FE.Query(context.Background(), frontend.QuerySpec{Enc: q})
		if err != nil {
			c.Close()
			return t, err
		}
		roarS.Add(res.Delay.Seconds())
		roarIDs = res.IDs
	}
	c.Close()

	// PTN on identical hardware.
	pc, err := startPTN(n, p, speeds, 0)
	if err != nil {
		return t, err
	}
	defer pc.close()
	if err := pc.load(recs); err != nil {
		return t, err
	}
	ptnS := stats.NewSample(queries)
	var ptnIDs []uint64
	for i := 0; i < queries; i++ {
		ids, d, err := pc.query(context.Background(), q)
		if err != nil {
			return t, err
		}
		ptnS.Add(d.Seconds())
		ptnIDs = ids
	}
	if len(roarIDs) != len(ptnIDs) {
		t.Notes = fmt.Sprintf("WARNING: result sets differ (%d vs %d)", len(roarIDs), len(ptnIDs))
	}
	add := func(name string, s *stats.Sample) {
		t.AddRow(name,
			fms(time.Duration(s.Mean()*float64(time.Second))),
			fms(time.Duration(s.Percentile(50)*float64(time.Second))),
			fms(time.Duration(s.Percentile(90)*float64(time.Second))),
			fms(time.Duration(s.Percentile(99)*float64(time.Second))))
	}
	add("ROAR", roarS)
	add("PTN", ptnS)
	if t.Notes == "" {
		t.Notes = "paper Fig 7.14: PTN slightly ahead (r^p vs r·choices), ROAR close behind — the price of cheap reconfiguration"
	}
	return t, nil
}

// startPTNLayoutOnly builds a PTN layout without node servers, for the
// pure scheduling benchmark.
func startPTNLayoutOnly(n, p int, speeds map[ring.NodeID]float64) (*ptn.PTN, error) {
	ids := make([]ring.NodeID, n)
	for i := range ids {
		ids[i] = ring.NodeID(i)
	}
	return ptn.NewBalanced(ids, speeds, p)
}
