package bench

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"roar/internal/node"
	"roar/internal/pps"
	"roar/internal/proto"
	"roar/internal/ptn"
	"roar/internal/ring"
	"roar/internal/stats"
	"roar/internal/store"
	"roar/internal/wire"
)

// ptnCluster runs the PTN baseline on the same node servers as ROAR:
// cluster k owns the id arc (k/p, (k+1)/p], every node of a cluster
// stores that full arc, and a query sends one arc-sized sub-query per
// cluster to the member with the smallest estimated finish time. This is
// the experimental comparator of Figs 7.12 and 7.14.
type ptnCluster struct {
	enc     *pps.Encoder
	layout  *ptn.PTN
	nodes   []*node.Node
	servers []*wire.Server
	clients map[ring.NodeID]*wire.Client
	speeds  map[ring.NodeID]*stats.EWMA
	outMu   sync.Mutex
	out     map[ring.NodeID]float64 // outstanding sub-query sizes
}

// startPTN builds a PTN cluster of n nodes in p speed-balanced clusters.
func startPTN(n, p int, nodeSpeeds []float64, fixedCost time.Duration) (*ptnCluster, error) {
	c := &ptnCluster{
		enc:     slimEncoder,
		clients: map[ring.NodeID]*wire.Client{},
		speeds:  map[ring.NodeID]*stats.EWMA{},
		out:     map[ring.NodeID]float64{},
	}
	ids := make([]ring.NodeID, n)
	hints := map[ring.NodeID]float64{}
	for i := 0; i < n; i++ {
		cfg := node.Config{Params: c.enc.ServerParams(), FixedQueryCost: fixedCost}
		if nodeSpeeds != nil {
			cfg.ObjectsPerSec = nodeSpeeds[i]
		}
		nd, err := node.New(cfg)
		if err != nil {
			c.close()
			return nil, err
		}
		srv, err := nd.Serve("127.0.0.1:0")
		if err != nil {
			c.close()
			return nil, err
		}
		c.nodes = append(c.nodes, nd)
		c.servers = append(c.servers, srv)
		ids[i] = ring.NodeID(i)
		c.clients[ids[i]] = wire.NewClient(srv.Addr())
		e := stats.NewEWMA(0.1)
		e.Set(1)
		c.speeds[ids[i]] = e
		if nodeSpeeds != nil {
			hints[ids[i]] = nodeSpeeds[i]
		} else {
			hints[ids[i]] = 1
		}
	}
	layout, err := ptn.NewBalanced(ids, hints, p)
	if err != nil {
		c.close()
		return nil, err
	}
	c.layout = layout
	return c, nil
}

func (c *ptnCluster) close() {
	for _, cl := range c.clients {
		cl.Close()
	}
	for _, s := range c.servers {
		if s != nil {
			s.Close()
		}
	}
}

// load pushes every record to all members of its id arc's cluster.
func (c *ptnCluster) load(recs []pps.Encoded) error {
	p := c.layout.P()
	byCluster := make([][]pps.Encoded, p)
	for _, r := range recs {
		pt := float64(store.PointOf(r.ID))
		k := int(pt * float64(p))
		if k >= p {
			k = p - 1
		}
		byCluster[k] = append(byCluster[k], r)
	}
	for k := 0; k < p; k++ {
		for _, id := range c.layout.Cluster(k) {
			cl := c.clients[id]
			for off := 0; off < len(byCluster[k]); off += 2000 {
				end := off + 2000
				if end > len(byCluster[k]) {
					end = len(byCluster[k])
				}
				if err := cl.Call(context.Background(), proto.MNodePut,
					proto.PutReq{Records: byCluster[k][off:end]}, nil); err != nil {
					return fmt.Errorf("ptn load: %w", err)
				}
			}
		}
	}
	return nil
}

// query executes one encrypted query and returns ids + delay.
func (c *ptnCluster) query(ctx context.Context, q pps.Query) ([]uint64, time.Duration, error) {
	t0 := time.Now()
	p := c.layout.P()
	size := 1 / float64(p)
	est := estFunc(func(id ring.NodeID, sz float64) float64 {
		sp, _ := c.speeds[id].Value()
		if sp <= 0 {
			sp = 1
		}
		c.outMu.Lock()
		o := c.out[id]
		c.outMu.Unlock()
		return (o + sz) / sp
	})
	plan, err := c.layout.Schedule(est, nil)
	if err != nil {
		return nil, 0, err
	}
	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		ids []uint64
	)
	errs := make([]error, len(plan.Subs))
	for i, sub := range plan.Subs {
		wg.Add(1)
		go func(i int, nid ring.NodeID, k int) {
			defer wg.Done()
			lo := float64(k) / float64(p)
			hi := float64(k+1) / float64(p)
			c.outMu.Lock()
			c.out[nid] += size
			c.outMu.Unlock()
			defer func() {
				c.outMu.Lock()
				c.out[nid] -= size
				c.outMu.Unlock()
			}()
			start := time.Now()
			var resp proto.QueryResp
			if err := c.clients[nid].Call(ctx, proto.MNodeQuery,
				proto.QueryReq{Lo: lo, Hi: hi, Q: q}, &resp); err != nil {
				errs[i] = err
				return
			}
			if d := time.Since(start).Seconds(); d > 0 {
				c.speeds[nid].Observe(size / d)
			}
			mu.Lock()
			ids = append(ids, resp.IDs...)
			mu.Unlock()
		}(i, sub.Node, sub.Cluster)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, 0, err
		}
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids, time.Since(t0), nil
}

// estFunc adapts a closure to core.Estimator's shape for ptn.Schedule.
type estFunc func(ring.NodeID, float64) float64

func (f estFunc) EstimateFinish(id ring.NodeID, size float64) float64 { return f(id, size) }
