// Package bench is the experiment harness: one function per table and
// figure of the paper's evaluation (Chapters 5, 6 and 7), each
// regenerating the same rows/series the paper reports. cmd/roar-bench
// runs them from the command line; bench_test.go exposes them as Go
// benchmarks; EXPERIMENTS.md records paper-vs-measured.
package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"roar/internal/pps"
	"roar/internal/workload"
)

// Table is a printable experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// Experiment is one reproducible table/figure.
type Experiment struct {
	ID    string
	Title string
	// Run executes the experiment. quick selects a laptop-scale
	// parameterisation (used by `go test -bench`); full runs the
	// paper-scale sweep.
	Run func(quick bool) (Table, error)
}

var (
	regMu    sync.Mutex
	registry []Experiment
)

func register(e Experiment) {
	regMu.Lock()
	defer regMu.Unlock()
	registry = append(registry, e)
}

// All returns every experiment, sorted by id.
func All() []Experiment {
	regMu.Lock()
	defer regMu.Unlock()
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Get finds an experiment by id.
func Get(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ---- shared corpus machinery ----------------------------------------

// benchEncoderConfig is the shared bench-scale encoding: a reduced word
// budget and Bloom parameters (9 hashes, 12 bits/word, fp ≈ 3e-3) keep
// large-corpus encryption affordable on small machines. The
// full-fidelity parameters are exercised by the pps package tests and
// FullEncoding cluster runs. Every cluster started by this package must
// use this config so nodes can match the shared corpus.
var benchEncoderConfig = pps.EncoderConfig{
	MaxKeywords: 4,
	MaxPathDir:  3,
	SizePoints:  pps.LinearPoints(0, 1e9, 8),
	DateDays:    365,
	DateSpan:    8,
	RankBuckets: []int{1},
	Hashes:      9,
	BitsPerWord: 12,
}

var slimEncoder = pps.NewEncoder(pps.TestKey(1), benchEncoderConfig)

var (
	corpusMu    sync.Mutex
	corpusDocs  []pps.Document
	corpusRecs  []pps.Encoded
	corpusWords []string
)

// sharedCorpus returns at least n encrypted records plus their plaintext
// documents. The corpus is deterministic, grows incrementally (only the
// new tail is encrypted) and encryption is parallelised across cores.
func sharedCorpus(n int) ([]pps.Document, []pps.Encoded, error) {
	corpusMu.Lock()
	defer corpusMu.Unlock()
	if len(corpusRecs) >= n {
		return corpusDocs[:n], corpusRecs[:n], nil
	}
	// Regenerate the deterministic plaintext prefix cheaply, then
	// encrypt only documents beyond the cached length.
	gen := workload.NewCorpus(3000, 7)
	files := gen.Generate(n)
	rng := rand.New(rand.NewSource(99))
	docs := make([]pps.Document, n)
	for i, f := range files {
		kws := f.Keywords
		if len(kws) > 4 {
			kws = kws[:4]
		}
		docs[i] = pps.Document{ID: rng.Uint64(), Path: f.Path, Size: f.Size,
			Modified: f.Modified, Keywords: kws}
	}
	recs := make([]pps.Encoded, n)
	copy(recs, corpusRecs)
	start := len(corpusRecs)
	var (
		wg   sync.WaitGroup
		merr error
		emu  sync.Mutex
	)
	workers := runtime.NumCPU()
	chunk := (n - start + workers - 1) / workers
	for off := start; off < n; off += chunk {
		end := off + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				r, err := slimEncoder.EncryptDocument(docs[i])
				if err != nil {
					emu.Lock()
					if merr == nil {
						merr = err
					}
					emu.Unlock()
					return
				}
				recs[i] = r
			}
		}(off, end)
	}
	wg.Wait()
	if merr != nil {
		return nil, nil, merr
	}
	corpusDocs, corpusRecs = docs, recs
	corpusWords = nil
	return corpusDocs[:n], corpusRecs[:n], nil
}

// missQuery returns a query matching (almost) no documents — the
// paper's methodology for measuring pure matching cost (§5.7 uses
// zero-match queries to exclude result-return costs).
func missQuery() (pps.Query, error) {
	return slimEncoder.EncryptQuery(pps.And,
		pps.Predicate{Kind: pps.Keyword, Word: "zzz-no-such-word"})
}

// popularWord returns a frequently occurring corpus keyword.
func popularWord(docs []pps.Document) string {
	counts := map[string]int{}
	for _, d := range docs {
		for _, k := range d.Keywords {
			counts[k]++
		}
	}
	best, bestN := "", 0
	for w, n := range counts {
		if n > bestN {
			best, bestN = w, n
		}
	}
	return best
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
func fi(v int) string     { return fmt.Sprintf("%d", v) }
func fms(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
}
