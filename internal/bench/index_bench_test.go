package bench

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"roar/internal/index"
)

// benchDoc is one plaintext document of the bench corpus.
type benchDoc struct {
	id    uint64
	terms []string
}

// indexCorpus builds a deterministic corpus with a skewed term
// distribution (a few common terms, a long tail of rare ones) — the
// shape where an inverted index pays off against a scan.
func indexCorpus(docs, vocab int) []benchDoc {
	rng := rand.New(rand.NewSource(1009))
	words := make([]string, vocab)
	for i := range words {
		words[i] = fmt.Sprintf("term%03d", i)
	}
	out := make([]benchDoc, 0, docs)
	seen := map[uint64]bool{}
	for len(out) < docs {
		id := rng.Uint64()
		if seen[id] || id == 0 {
			continue
		}
		seen[id] = true
		n := 2 + rng.Intn(6)
		terms := make([]string, 0, n)
		for len(terms) < n {
			// Zipf-ish: half the picks from the 8 most common terms.
			var w string
			if rng.Intn(2) == 0 {
				w = words[rng.Intn(8)]
			} else {
				w = words[rng.Intn(vocab)]
			}
			terms = append(terms, w)
		}
		out = append(out, benchDoc{id: id, terms: terms})
	}
	return out
}

// scanMatch is the emulated scan baseline: what answering the same
// plaintext query costs without an index — touch every document, test
// its term set. This is the plaintext analogue of the PPS full-arc scan.
func scanMatch(docs []benchDoc, q index.Query) []uint64 {
	var ids []uint64
	for _, d := range docs {
		n := 0
		for _, qt := range q.Terms {
			for _, dt := range d.terms {
				if dt == qt {
					n++
					break
				}
			}
		}
		switch q.Mode {
		case index.ModeAnd:
			if n == len(q.Terms) {
				ids = append(ids, d.id)
			}
		default:
			if n >= 1 {
				ids = append(ids, d.id)
			}
		}
	}
	return ids
}

// benchQueries mixes selective AND queries with broad ORs, cycling so
// the cache sub-benches touch a rotating set of postings.
func benchQueries() []index.Query {
	return []index.Query{
		{Terms: []string{"term001", "term042"}, Mode: index.ModeAnd},
		{Terms: []string{"term003", "term117", "term250"}, Mode: index.ModeOr},
		{Terms: []string{"term005", "term006"}, Mode: index.ModeAnd},
		{Terms: []string{"term200", "term201", "term202"}, Mode: index.ModeOr},
		{Terms: []string{"term000", "term300"}, Mode: index.ModeAnd},
	}
}

// BenchmarkIndexMatch measures the roaring-bitmap index data plane:
// warm-cache and cold-open full-ring queries against the emulated scan
// the index replaces, plus a posting-cache budget sweep. The warm case
// reports speedup-x over the scan — the number the ISSUE acceptance
// pins at ≥10×.
func BenchmarkIndexMatch(b *testing.B) {
	const docs, vocab = 100_000, 400
	corpus := indexCorpus(docs, vocab)
	bld := index.NewBuilder()
	for _, d := range corpus {
		bld.Add(d.id, d.terms...)
	}
	seg := bld.Build("bench")
	path := filepath.Join(b.TempDir(), "bench.seg")
	if err := index.SaveFile(path, seg); err != nil {
		b.Fatal(err)
	}
	queries := benchQueries()
	ctx := context.Background()

	// One timed scan pass per query, for the speedup metric.
	scanStart := time.Now()
	const scanReps = 3
	for r := 0; r < scanReps; r++ {
		for _, q := range queries {
			if ids := scanMatch(corpus, q); len(ids) == 0 {
				b.Fatal("scan baseline matched nothing; corpus misconfigured")
			}
		}
	}
	scanNsPerQuery := float64(time.Since(scanStart).Nanoseconds()) / float64(scanReps*len(queries))

	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			scanMatch(corpus, queries[i%len(queries)])
		}
	})

	b.Run("warm", func(b *testing.B) {
		ix := index.New(0)
		if err := ix.AddFile(path); err != nil {
			b.Fatal(err)
		}
		defer ix.Close()
		// Touch every query once so postings are resident.
		for _, q := range queries {
			if _, _, err := ix.SearchArc(ctx, q, 0, 0, true); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := ix.SearchArc(ctx, queries[i%len(queries)], 0, 0, true); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		if perOp > 0 {
			b.ReportMetric(scanNsPerQuery/perOp, "speedup-x")
		}
	})

	b.Run("cold", func(b *testing.B) {
		// Cold cache AND cold segment: every iteration re-opens the file
		// and loads postings from disk through an empty cache.
		for i := 0; i < b.N; i++ {
			ix := index.New(0)
			if err := ix.AddFile(path); err != nil {
				b.Fatal(err)
			}
			if _, _, err := ix.SearchArc(ctx, queries[i%len(queries)], 0, 0, true); err != nil {
				b.Fatal(err)
			}
			ix.Close()
		}
	})

	// Budget sweep: the same warm query mix under shrinking posting-cache
	// budgets, from everything-resident down to thrash.
	for _, budget := range []int64{4 << 20, 256 << 10, 32 << 10} {
		b.Run(fmt.Sprintf("budget-%dKB", budget>>10), func(b *testing.B) {
			ix := index.New(budget)
			if err := ix.AddFile(path); err != nil {
				b.Fatal(err)
			}
			defer ix.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := ix.SearchArc(ctx, queries[i%len(queries)], 0, 0, true); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := ix.Cache().Stats()
			if st.Bytes > st.Budget {
				b.Fatalf("cache residency %d exceeds budget %d", st.Bytes, st.Budget)
			}
			total := st.Hits + st.Misses
			if total > 0 {
				b.ReportMetric(float64(st.Hits)/float64(total), "hit-ratio")
			}
		})
	}
}
