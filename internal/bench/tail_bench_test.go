package bench

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"time"

	"roar/internal/cluster"
	"roar/internal/frontend"
	"roar/internal/pps"
	"roar/internal/stats"
)

// Tail-latency benchmark: 8 nodes at pq = 8 (every query must touch
// every node) with one node throttled far below its peers — the
// "slow-but-alive machine" that dominates p99 in any fan-out system.
// The timer-only baseline waits for the straggler on every query; the
// hedged configuration re-dispatches its sub-query onto a replica
// bracket after HedgeDelay and cancels the loser. Equal speed hints
// keep placement symmetric so neither configuration can schedule
// around the slow node.

const (
	tailNodes     = 8
	tailP         = 4
	tailCorpus    = 400
	tailSlowSpeed = 1200   // objects/s: tens of ms per ~50-object sub-query
	tailFastSpeed = 200000 // objects/s: sub-millisecond sub-queries
)

var tailConfigs = []struct {
	name string
	fe   frontend.Config
}{
	// Failure-timer-only re-dispatch: the seed behaviour.
	{"timer-only", frontend.Config{PQ: tailNodes, SubQueryTimeout: 2 * time.Second}},
	// Hedged, un-budgeted: every slow sub-query races a replica. This
	// is the one-straggler best case (and the broad-slowness worst
	// case, which is why the budget exists).
	{"hedged-8ms", frontend.Config{PQ: tailNodes, SubQueryTimeout: 2 * time.Second,
		HedgeDelay: 8 * time.Millisecond, HedgeBudgetFraction: -1}},
	// Hedged under the default 5% token-bucket budget: the burst covers
	// the straggler's steady hedge demand here (one slow node out of
	// eight ≈ 12.5% of sub-queries want hedging, so the budget bites);
	// CI tracks how much p99 this costs versus un-budgeted hedging.
	{"hedged-budget-5pct", frontend.Config{PQ: tailNodes, SubQueryTimeout: 2 * time.Second,
		HedgeDelay: 8 * time.Millisecond, HedgeBudgetFraction: 0.05, HedgeBudgetBurst: 4}},
}

// tailRun drives `queries` closed-loop queries and returns the delay
// sample plus each query's deduplicated id set (as sorted slices) for
// the correctness comparison.
func tailRun(fe frontend.Config, queries int) (*stats.Sample, [][]uint64, error) {
	speeds := make([]float64, tailNodes)
	hints := make([]float64, tailNodes)
	for i := range speeds {
		speeds[i] = tailFastSpeed
		hints[i] = 1
	}
	speeds[0] = tailSlowSpeed
	c, err := cluster.Start(cluster.Options{
		Nodes: tailNodes, P: tailP, NodeSpeeds: speeds, SpeedHints: hints,
		Frontend: fe, FixedQueryCost: time.Millisecond,
		Seed: 42, Encoder: &benchEncoderConfig,
	})
	if err != nil {
		return nil, nil, err
	}
	defer c.Close()
	docs, recs, err := sharedCorpus(tailCorpus)
	if err != nil {
		return nil, nil, err
	}
	if err := c.LoadEncoded(recs); err != nil {
		return nil, nil, err
	}
	q, err := slimEncoder.EncryptQuery(pps.And,
		pps.Predicate{Kind: pps.Keyword, Word: popularWord(docs)})
	if err != nil {
		return nil, nil, err
	}
	// Warm pools and speed EWMAs out of band.
	if _, err := c.FE.Execute(context.Background(), q); err != nil {
		return nil, nil, err
	}
	delays := stats.NewSample(queries)
	sets := make([][]uint64, 0, queries)
	for i := 0; i < queries; i++ {
		res, err := c.FE.Execute(context.Background(), q)
		if err != nil {
			return nil, nil, fmt.Errorf("query %d: %w", i, err)
		}
		delays.Add(res.Delay.Seconds())
		ids := append([]uint64(nil), res.IDs...)
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		sets = append(sets, ids)
	}
	return delays, sets, nil
}

func sameIDSet(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// BenchmarkTailLatency reports p50/p99 query delay for the timer-only
// and hedged frontends against one slow node.
func BenchmarkTailLatency(b *testing.B) {
	for _, tc := range tailConfigs {
		b.Run(tc.name, func(b *testing.B) {
			var p50, p99 float64
			for i := 0; i < b.N; i++ {
				delays, _, err := tailRun(tc.fe, 40)
				if err != nil {
					b.Fatal(err)
				}
				p50 += delays.Percentile(50)
				p99 += delays.Percentile(99)
			}
			b.ReportMetric(p50/float64(b.N)*1000, "p50-ms")
			b.ReportMetric(p99/float64(b.N)*1000, "p99-ms")
		})
	}
}

// TestHedgingLowersTailLatency pins the acceptance bar: with one slow
// node, hedged dispatch must cut p99 query delay versus timer-only
// re-dispatch, with zero correctness loss — every query in both
// configurations returns the identical deduplicated id set.
func TestHedgingLowersTailLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("tail-latency comparison is not short")
	}
	const queries = 50
	timerDelays, timerSets, err := tailRun(tailConfigs[0].fe, queries)
	if err != nil {
		t.Fatal(err)
	}
	hedgeDelays, hedgeSets, err := tailRun(tailConfigs[1].fe, queries)
	if err != nil {
		t.Fatal(err)
	}
	want := timerSets[0]
	if len(want) == 0 {
		t.Fatal("reference query matched nothing; popular-word corpus broken")
	}
	for i, s := range timerSets {
		if !sameIDSet(s, want) {
			t.Fatalf("timer-only query %d returned %d ids, reference %d", i, len(s), len(want))
		}
	}
	for i, s := range hedgeSets {
		if !sameIDSet(s, want) {
			t.Fatalf("hedged query %d id set diverged: %d ids vs reference %d", i, len(s), len(want))
		}
	}
	tp99 := timerDelays.Percentile(99)
	hp99 := hedgeDelays.Percentile(99)
	t.Logf("timer-only p50 %.1fms p99 %.1fms; hedged p50 %.1fms p99 %.1fms",
		timerDelays.Percentile(50)*1000, tp99*1000,
		hedgeDelays.Percentile(50)*1000, hp99*1000)
	if hp99 >= tp99*0.8 {
		t.Errorf("hedged p99 %.1fms is not clearly below timer-only p99 %.1fms", hp99*1000, tp99*1000)
	}
}
