// Positive fixture: a library package must not mint context roots.
package lib

import "context"

func bad() context.Context {
	return context.Background() // want `severs cancellation`
}

func alsoBad() context.Context {
	return context.TODO() // want `severs cancellation`
}

func allowedRoot() context.Context {
	return context.Background() //lint:allow background — process-lifetime root for the fixture
}

// Deriving from the caller's context is the required shape.
func threaded(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(ctx)
}
