// Negative fixture: run under the import path "example.com/cmd/tool",
// which is a cmd/ edge where roots are legitimate.
package main

import "context"

func main() {
	_ = context.Background()
}
