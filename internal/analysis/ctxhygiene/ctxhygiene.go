// Package ctxhygiene bans context.Background() and context.TODO() in
// library code. The dispatch → hedge → repair pipeline only cancels
// end-to-end because every layer derives from its caller's context; a
// detached root anywhere in that chain orphans remote work (the wire
// cancel frame never fires) and turns client disconnects into leaked
// load. Roots belong at the edges: cmd/ binaries, tests, and the bench
// and cluster harnesses that stand in for a main function. The rare
// legitimate in-library root (a connection's lifetime, a process-scoped
// loop) carries a //lint:allow background directive naming its reason.
package ctxhygiene

import (
	"go/ast"
	"strings"

	"roar/internal/analysis"
)

// ExemptPaths are packages exempt by role: test harnesses driven only
// from tests and benches, where the harness IS the main-adjacent edge.
var ExemptPaths = map[string]bool{
	"roar/internal/bench":   true,
	"roar/internal/cluster": true,
}

// Analyzer is the ctxhygiene pass.
var Analyzer = &analysis.Analyzer{
	Name:     "ctxhygiene",
	AllowKey: "background",
	Doc: "bans context.Background()/context.TODO() outside cmd/, tests, and harness " +
		"packages so cancellation keeps propagating through dispatch/hedge/repair; " +
		"annotate legitimate lifetime roots with //lint:allow background",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if ExemptPaths[pass.Path] || isCmdPath(pass.Path) {
		return nil
	}
	if pass.Pkg != nil && pass.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name != "Background" && sel.Sel.Name != "TODO" {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || analysis.PkgNameOf(pass, id) != "context" {
				return true
			}
			pass.Reportf(call.Pos(),
				"context.%s() in library package %q severs cancellation; thread the caller's context, or annotate a genuine lifetime root with //lint:allow background",
				sel.Sel.Name, pass.Path)
			return true
		})
	}
	return nil
}

func isCmdPath(path string) bool {
	return strings.HasPrefix(path, "cmd/") || strings.Contains(path, "/cmd/")
}
