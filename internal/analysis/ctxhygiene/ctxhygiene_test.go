package ctxhygiene_test

import (
	"testing"

	"roar/internal/analysis/analysistest"
	"roar/internal/analysis/ctxhygiene"
)

func TestCtxHygiene(t *testing.T) {
	analysistest.Run(t, "testdata/src/lib", "example.com/lib", ctxhygiene.Analyzer)
}

func TestCtxHygieneCmdExempt(t *testing.T) {
	analysistest.Run(t, "testdata/src/cmdtool", "example.com/cmd/tool", ctxhygiene.Analyzer)
}
