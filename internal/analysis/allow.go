package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// //lint:allow directives. A directive names one or more allow keys and
// (by convention, after an em-dash or semicolon) the reason:
//
//	now = time.Now //lint:allow wallclock — injection default
//	//lint:allow background lock
//	doRisky()
//
// A directive suppresses matching findings on its own line and on the
// line directly below it, so both trailing and leading placement work.
// The key "all" suppresses every analyzer.
type allowSet map[string]map[int][]string // filename → line → keys

const allowPrefix = "//lint:allow"

func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	set := allowSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(text[len(allowPrefix):])
				// Strip a trailing reason: everything after an em-dash,
				// " -- ", or ";" is prose.
				for _, sep := range []string{"—", " -- ", ";"} {
					if i := strings.Index(rest, sep); i >= 0 {
						rest = rest[:i]
					}
				}
				keys := strings.Fields(rest)
				if len(keys) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := set[pos.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					set[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], keys...)
			}
		}
	}
	return set
}

// suppressed reports whether a finding at pos is excused by a directive
// for key on the same line or the line above.
func (s allowSet) suppressed(fset *token.FileSet, pos token.Pos, key string) bool {
	if len(s) == 0 {
		return false
	}
	p := fset.Position(pos)
	byLine := s[p.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, k := range byLine[line] {
			if k == key || k == "all" {
				return true
			}
		}
	}
	return false
}
