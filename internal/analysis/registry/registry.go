// Package registry enumerates the roar-lint analyzer suite. It lives
// apart from the framework so analyzers can import
// roar/internal/analysis without a cycle; the driver and the
// analyzers' shared tests import this package instead.
package registry

import (
	"roar/internal/analysis"
	"roar/internal/analysis/atomicfields"
	"roar/internal/analysis/clockinject"
	"roar/internal/analysis/codecsync"
	"roar/internal/analysis/ctxhygiene"
	"roar/internal/analysis/lockdiscipline"
)

// All returns the full suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicfields.Analyzer,
		clockinject.Analyzer,
		codecsync.Analyzer,
		ctxhygiene.Analyzer,
		lockdiscipline.Analyzer,
	}
}
