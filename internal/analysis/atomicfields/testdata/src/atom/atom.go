// Fixture for mixed atomic/plain field access. The field n is touched
// through sync/atomic, so every plain access to it is a data race; the
// typed atomic.Int64 field is safe by construction.
package atom

import "sync/atomic"

type counter struct {
	n    int64
	safe atomic.Int64
}

func (c *counter) inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) load() int64 {
	return atomic.LoadInt64(&c.n)
}

func (c *counter) badRead() int64 {
	return c.n // want `plain access to field n`
}

func (c *counter) badWrite() {
	c.n++ // want `plain access to field n`
}

func (c *counter) typedOK() int64 {
	c.safe.Add(1)
	return c.safe.Load()
}

func (c *counter) allowedPrePublication() {
	c.n = 0 //lint:allow atomic — constructor runs before the counter is shared
}
