// Package atomicfields flags struct fields that mix sync/atomic access
// with plain loads or stores. A field read with atomic.LoadInt64 in one
// place and `s.n++` in another is a data race the race detector only
// catches when both paths run in the same test; the analyzer catches it
// at vet time, package-wide. Fields typed atomic.Int64/atomic.Value/...
// are safe by construction and need no analysis — this pass exists for
// the plain-integer-plus-atomic-calls pattern. Suppress deliberate
// unsynchronized access (e.g. a constructor before publication) with
// //lint:allow atomic.
package atomicfields

import (
	"go/ast"
	"go/types"

	"roar/internal/analysis"
)

// Analyzer is the atomicfields pass.
var Analyzer = &analysis.Analyzer{
	Name:     "atomicfields",
	AllowKey: "atomic",
	Doc: "struct fields accessed via sync/atomic functions must never also be accessed " +
		"with plain loads/stores anywhere in the package",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.TypesInfo == nil || len(pass.TypesInfo.Selections) == 0 {
		return nil // needs type information to bind fields reliably
	}

	// Pass 1: every field whose address feeds a sync/atomic call, and
	// the exact selector nodes used inside those calls.
	atomicField := map[*types.Var]string{} // field object → atomic func name
	inAtomicCall := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || analysis.PkgNameOf(pass, id) != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok {
					continue
				}
				fieldSel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fv := fieldVar(pass, fieldSel); fv != nil {
					atomicField[fv] = sel.Sel.Name
					inAtomicCall[fieldSel] = true
				}
			}
			return true
		})
	}
	if len(atomicField) == 0 {
		return nil
	}

	// Pass 2: any other selector binding one of those fields is a plain
	// access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fieldSel, ok := n.(*ast.SelectorExpr)
			if !ok || inAtomicCall[fieldSel] {
				return true
			}
			fv := fieldVar(pass, fieldSel)
			if fv == nil {
				return true
			}
			if fn, ok := atomicField[fv]; ok {
				pass.Reportf(fieldSel.Pos(),
					"plain access to field %s, which is accessed with atomic.%s elsewhere in this package (data race); use sync/atomic consistently or an atomic.%s-style typed field",
					fv.Name(), fn, properType(fv))
			}
			return true
		})
	}
	return nil
}

// fieldVar resolves a selector to the struct field it binds, or nil.
func fieldVar(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// properType suggests the typed-atomic replacement for a field's type.
func properType(v *types.Var) string {
	if b, ok := v.Type().Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Int32:
			return "Int32"
		case types.Uint32:
			return "Uint32"
		case types.Uint64:
			return "Uint64"
		case types.Uintptr:
			return "Uintptr"
		}
	}
	return "Int64"
}
