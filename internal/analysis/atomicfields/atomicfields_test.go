package atomicfields_test

import (
	"testing"

	"roar/internal/analysis/analysistest"
	"roar/internal/analysis/atomicfields"
)

func TestAtomicFields(t *testing.T) {
	analysistest.Run(t, "testdata/src/atom", "example.com/atom", atomicfields.Analyzer)
}
