// Positive fixture: the package's import path ends in "frontend", so
// every wall-clock touch must be flagged unless allow-annotated.
package frontend

import "time"

type ctl struct {
	now func() time.Time
}

func bad() time.Time {
	return time.Now() // want `direct time.Now in injected-clock package`
}

func badWaits(d time.Duration) {
	time.Sleep(d)         // want `direct time.Sleep`
	t := time.NewTimer(d) // want `direct time.NewTimer`
	defer t.Stop()
	<-time.After(d) // want `direct time.After`
}

func badElapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `direct time.Since`
}

func allowedDefault() *ctl {
	c := &ctl{}
	c.now = time.Now //lint:allow wallclock — clock-injection default
	return c
}

// Pure duration/Time arithmetic never touches the clock and is fine.
func durationsOK(d time.Duration, t time.Time) time.Time {
	return t.Add(d * 2)
}
