// Negative fixture: "other" is not an injected-clock package, so
// wall-clock use is unrestricted here.
package other

import "time"

func fine() time.Time {
	time.Sleep(time.Millisecond)
	return time.Now()
}
