// Package clockinject bans direct wall-clock access in packages whose
// control loops run on injected clocks. The hedging, health, and
// autoscale loops are all tested with fake clocks (hedgeBudget.now,
// AutoscaleConfig.Now, HealthConfig.Now); one stray time.Now or
// time.After in those packages silently reintroduces wall-clock
// dependence — tests go flaky, and the deterministic budget/hysteresis
// proofs stop covering the shipped code path.
//
// Both calls (time.Now()) and bare references (now = time.Now) are
// flagged: a bare reference is exactly how an injection default is
// wired, and forcing a `//lint:allow wallclock` on each default keeps
// the package's complete wall-clock surface greppable.
package clockinject

import (
	"go/ast"

	"roar/internal/analysis"
)

// Packages lists the import-path segments naming the injected-clock
// packages. A package is covered when its import path's last segment is
// in this list.
var Packages = map[string]bool{
	"frontend":    true,
	"membership":  true, // includes the autoscale controller and replica
	"cluster":     true,
	"coordclient": true, // failover backoff must be test-steerable
}

// banned are the time package's wall-clock entry points. time.Duration
// arithmetic and time.Time values are fine — only reading or waiting on
// the real clock is restricted.
var banned = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"Since":     true,
	"Until":     true,
}

// Analyzer is the clockinject pass.
var Analyzer = &analysis.Analyzer{
	Name:     "clockinject",
	AllowKey: "wallclock",
	Doc: "bans direct time.Now/Sleep/After/Since/NewTimer/NewTicker in injected-clock " +
		"packages (frontend, membership, cluster); route through the injected clock or " +
		"annotate the sanctioned wall-clock touchpoint with //lint:allow wallclock",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !Packages[lastSegment(pass.Path)] {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue // tests drive the fake clocks and real timeouts alike
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !banned[sel.Sel.Name] {
				return true
			}
			if analysis.PkgNameOf(pass, id) != "time" {
				return true
			}
			pass.Reportf(sel.Pos(),
				"direct time.%s in injected-clock package %q; use the injected clock, or annotate the sanctioned touchpoint with //lint:allow wallclock",
				sel.Sel.Name, lastSegment(pass.Path))
			return true
		})
	}
	return nil
}

func lastSegment(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
