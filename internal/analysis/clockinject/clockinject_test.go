package clockinject_test

import (
	"testing"

	"roar/internal/analysis/analysistest"
	"roar/internal/analysis/clockinject"
)

func TestClockInject(t *testing.T) {
	analysistest.Run(t, "testdata/src/frontend", "example.com/frontend", clockinject.Analyzer)
}

func TestClockInjectUncoveredPackage(t *testing.T) {
	analysistest.Run(t, "testdata/src/other", "example.com/other", clockinject.Analyzer)
}
