// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis vocabulary, sized for this repo's
// invariant suite. The container bakes only the standard toolchain, so
// instead of importing x/tools the suite defines the same three nouns —
// Analyzer, Pass, Diagnostic — over go/ast + go/types, and the driver
// (cmd/roar-lint) speaks the `go vet -vettool` unitchecker protocol
// directly. Porting an analyzer here to the real framework is a
// mechanical rename.
//
// Each analyzer carries an AllowKey; a finding whose source line (or the
// line above it) has a `//lint:allow <key>` directive is suppressed, so
// every sanctioned exception to an invariant is spelled out in the code
// it excuses. See docs/INVARIANTS.md for the catalogue.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in output and documentation.
	Name string
	// Doc is the one-paragraph description printed by roar-lint -help.
	Doc string
	// AllowKey is the token that suppresses this analyzer's findings in
	// a //lint:allow directive ("wallclock", "background", ...).
	AllowKey string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one package's syntax and types to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed files, comments included.
	Files []*ast.File
	// Pkg and TypesInfo are the type-checked package. TypesInfo is
	// always non-nil when the driver could type-check; analyzers that
	// can degrade to syntax-only operation should tolerate empty maps.
	Pkg       *types.Package
	TypesInfo *types.Info
	// Path is the package's import path (Pkg.Path(), but available even
	// when type checking failed).
	Path string

	report func(Diagnostic)
}

// Reportf records one finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// IsTestFile reports whether the file containing pos is a _test.go
// file. Several invariants (clock injection, context hygiene) bind
// production code only: tests legitimately use real timers and root
// contexts.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	f := fset.Position(pos).Filename
	return len(f) >= len("_test.go") && f[len(f)-len("_test.go"):] == "_test.go"
}

// Run executes the analyzers over one type-checked package and returns
// the surviving (non-suppressed) diagnostics sorted by position. A nil
// info is tolerated (syntax-only passes still run).
func Run(fset *token.FileSet, path string, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	allow := collectAllows(fset, files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Path:      path,
			report: func(d Diagnostic) {
				if !allow.suppressed(fset, d.Pos, a.AllowKey) {
					out = append(out, d)
				}
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// PkgNameOf resolves the package an identifier imports (e.g. the `time`
// in time.Now), or "" when the ident is not an import reference. Falls
// back to matching the file's import spec names when type information
// is unavailable.
func PkgNameOf(pass *Pass, id *ast.Ident) string {
	if pass.TypesInfo != nil {
		if obj, ok := pass.TypesInfo.Uses[id]; ok {
			if pn, ok := obj.(*types.PkgName); ok {
				return pn.Imported().Path()
			}
			return ""
		}
	}
	// Syntax fallback: find the file holding id and match import names.
	for _, f := range pass.Files {
		if f.Pos() <= id.Pos() && id.Pos() <= f.End() {
			for _, imp := range f.Imports {
				path := imp.Path.Value
				path = path[1 : len(path)-1] // unquote
				name := path
				if i := lastIndexByte(path, '/'); i >= 0 {
					name = path[i+1:]
				}
				if imp.Name != nil {
					name = imp.Name.Name
				}
				if name == id.Name {
					return path
				}
			}
		}
	}
	return ""
}

func lastIndexByte(s string, b byte) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == b {
			return i
		}
	}
	return -1
}
