// Fixture for codec pair synchronisation. Each MsgN exercises one
// defect class; Good exercises the loop/alias machinery with a correct
// pair that must stay silent.
package codec

type rdr struct {
	data []byte
	off  int
}

func (r *rdr) uvarint() uint64 { r.off++; return 0 }
func (r *rdr) str() string     { r.off++; return "" }

// Msg1: plain field-order drift.
type Msg1 struct {
	A uint64
	B string
}

func (m *Msg1) AppendWire(b []byte) []byte {
	b = append(b, byte(m.A))
	b = append(b, m.B...)
	return b
}

func (m *Msg1) DecodeWire(data []byte) error {
	r := &rdr{data: data}
	m.B = r.str() // want `field order drift`
	m.A = r.uvarint()
	return nil
}

// Msg2: extension split disagreement — C is extension-only on the
// encode side but read unconditionally by the decoder.
type Msg2 struct {
	A uint64
	C uint64
}

func (m *Msg2) AppendWire(b []byte) []byte {
	b = append(b, byte(m.A))
	if m.C == 0 {
		return b
	}
	b = append(b, byte(m.C))
	return b
}

func (m *Msg2) DecodeWire(data []byte) error {
	r := &rdr{data: data}
	m.A = r.uvarint()
	m.C = r.uvarint() // want `base/extension split must agree`
	return nil
}

// Msg3: decoder reads a field the encoder never writes.
type Msg3 struct {
	A uint64
	B string
}

func (m *Msg3) AppendWire(b []byte) []byte {
	b = append(b, byte(m.A))
	return b
}

func (m *Msg3) DecodeWire(data []byte) error {
	r := &rdr{data: data}
	m.A = r.uvarint()
	m.B = r.str() // want `encoder never writes it`
	return nil
}

// Msg4: encoder writes a field the decoder never reads.
type Msg4 struct {
	A uint64
	B string
}

func (m *Msg4) AppendWire(b []byte) []byte {
	b = append(b, byte(m.A))
	b = append(b, m.B...)
	return b
}

func (m *Msg4) DecodeWire(data []byte) error { // want `decoder never reads it`
	r := &rdr{data: data}
	m.A = r.uvarint()
	return nil
}

// Msg5: deliberate legacy asymmetry, suppressed.
type Msg5 struct {
	A uint64
	B string
}

func (m *Msg5) AppendWire(b []byte) []byte {
	b = append(b, byte(m.A))
	b = append(b, m.B...)
	return b
}

func (m *Msg5) DecodeWire(data []byte) error {
	r := &rdr{data: data}
	m.B = r.str() //lint:allow codec — legacy decoders read the fields reversed on purpose here
	m.A = r.uvarint()
	return nil
}

// Good: repeated-field codec with correct order, matching extension
// blocks, and the range/append alias idioms the real codecs use.
type Item struct {
	ID  uint64
	Tag string
}

type Good struct {
	Items []Item
	Note  string // extension field
}

func (g *Good) AppendWire(b []byte) []byte {
	b = append(b, byte(len(g.Items)))
	for _, it := range g.Items {
		b = append(b, byte(it.ID))
		b = append(b, it.Tag...)
	}
	if g.Note == "" {
		return b
	}
	b = append(b, g.Note...)
	return b
}

func (g *Good) DecodeWire(data []byte) error {
	r := &rdr{data: data}
	n := int(r.uvarint())
	g.Items = make([]Item, 0, n)
	for i := 0; i < n; i++ {
		var it Item
		it.ID = r.uvarint()
		it.Tag = r.str()
		g.Items = append(g.Items, it)
	}
	if r.off < len(r.data) {
		g.Note = r.str()
	}
	return nil
}
