// Package codecsync checks hand-rolled binary codec pairs for
// field-order agreement. The repo's hot-path bodies (internal/proto)
// and the index segment format (internal/index) are encoded by
// hand-written AppendWire/DecodeWire (and Append*/Decode*) pairs; the
// wire format IS the order those functions touch fields in, so a field
// appended in one order and decoded in another is silent data
// corruption that round-trip tests only catch when the swapped fields
// have incompatible shapes.
//
// Two invariants per pair:
//
//  1. The decoder must read receiver fields in exactly the order the
//     encoder writes them (first-occurrence order; loop bodies over a
//     repeated field compare element-field by element-field through
//     range/append alias tracking).
//  2. The base/extension split must agree: a field the encoder emits
//     after its trailing-extension guard (`if cond { return b }`) must
//     be read inside the decoder's trailing-bytes block
//     (`if ... r.off < len(r.data) { ... }`), and vice versa — that
//     split is what keeps old peers byte-compatible with stripped
//     messages.
//
// The analysis is syntactic and intentionally conservative: a pair in
// which either half delegates all field work to helpers (no directly
// attributable field events) is skipped rather than guessed at.
// Suppress deliberate asymmetry with //lint:allow codec.
package codecsync

import (
	"go/ast"
	"go/token"
	"strings"

	"roar/internal/analysis"
)

// Analyzer is the codecsync pass.
var Analyzer = &analysis.Analyzer{
	Name:     "codecsync",
	AllowKey: "codec",
	Doc: "Encode*/Decode* (Append*/Decode*) pairs must touch fields in the same order, " +
		"and fields after the trailing-extension marker must stay in the extension on " +
		"both sides (mixed-version wire compatibility)",
	Run: run,
}

// pair is one encoder/decoder couple under comparison.
type pair struct {
	name     string // type or base name, for messages
	enc, dec *ast.FuncDecl
}

func run(pass *analysis.Pass) error {
	pairs := findPairs(pass)
	for _, p := range pairs {
		encRoot := recvOrParamRoot(p.enc, false)
		decRoot := recvOrParamRoot(p.dec, true)
		if encRoot == "" || decRoot == "" {
			continue
		}
		enc := extractEvents(p.enc, encRoot, encodeSide)
		dec := extractEvents(p.dec, decRoot, decodeSide)
		if len(enc) == 0 || len(dec) == 0 {
			continue // delegating half: nothing attributable to compare
		}
		comparePair(pass, p, enc, dec)
	}
	return nil
}

// findPairs locates method pairs (AppendWire/DecodeWire on one type)
// and function pairs (Append<X>|Encode<X> with Decode<X>, any case).
func findPairs(pass *analysis.Pass) []pair {
	methods := map[string]*pair{} // receiver type name
	funcs := map[string]*pair{}   // base name <X>
	record := func(m map[string]*pair, key string, fd *ast.FuncDecl, enc bool) {
		p := m[key]
		if p == nil {
			p = &pair{name: key}
			m[key] = p
		}
		if enc {
			p.enc = fd
		} else {
			p.dec = fd
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if fd.Recv != nil {
				switch name {
				case "AppendWire":
					record(methods, recvTypeName(fd), fd, true)
				case "DecodeWire":
					record(methods, recvTypeName(fd), fd, false)
				}
				continue
			}
			lower := strings.ToLower(name)
			switch {
			case strings.HasPrefix(lower, "append"):
				record(funcs, lower[len("append"):], fd, true)
			case strings.HasPrefix(lower, "encode"):
				record(funcs, lower[len("encode"):], fd, true)
			case strings.HasPrefix(lower, "decode"):
				record(funcs, lower[len("decode"):], fd, false)
			}
		}
	}
	var out []pair
	for _, m := range []map[string]*pair{methods, funcs} {
		for _, p := range m {
			if p.enc != nil && p.dec != nil {
				out = append(out, *p)
			}
		}
	}
	return out
}

func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if s, ok := t.(*ast.StarExpr); ok {
		t = s.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// recvOrParamRoot names the message variable: the receiver for methods;
// for plain functions, the first pointer-to-named-type parameter on the
// decode side and the first named-type parameter on the encode side
// (skipping the buffer).
func recvOrParamRoot(fd *ast.FuncDecl, wantPtr bool) string {
	if fd.Recv != nil {
		if len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
			return fd.Recv.List[0].Names[0].Name
		}
		return ""
	}
	for _, fld := range fd.Type.Params.List {
		t := fld.Type
		isPtr := false
		if s, ok := t.(*ast.StarExpr); ok {
			t = s.X
			isPtr = true
		}
		id, ok := t.(*ast.Ident)
		if !ok || id.Obj != nil && id.Obj.Kind != ast.Typ {
			continue
		}
		// Skip buffer/reader-ish params by conventional names.
		if !ok || len(fld.Names) != 1 {
			continue
		}
		if wantPtr && !isPtr {
			continue
		}
		if !wantPtr && (id.Name == "byte" || strings.Contains(strings.ToLower(id.Name), "reader") || strings.Contains(strings.ToLower(id.Name), "writer")) {
			continue
		}
		return fld.Names[0].Name
	}
	return ""
}

type side int

const (
	encodeSide side = iota
	decodeSide
)

// event is one attributable field touch.
type event struct {
	path string
	pos  token.Pos
	ext  bool // inside the trailing-extension region
}

// pathOf resolves an expression to a dotted field path rooted at root
// (directly or through an alias). Index/star/paren wrappers are
// dropped; an empty path (the bare root) resolves to "", false.
func pathOf(e ast.Expr, root string, aliases map[string]string) (string, bool) {
	var chain []string
	for {
		switch x := e.(type) {
		case *ast.Ident:
			base := ""
			switch {
			case x.Name == root:
				// rooted directly
			case aliases[x.Name] != "":
				base = aliases[x.Name]
			default:
				return "", false
			}
			if base != "" && len(chain) == 0 {
				return base, true
			}
			// reverse chain
			for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
				chain[i], chain[j] = chain[j], chain[i]
			}
			path := strings.Join(chain, ".")
			if base != "" {
				if path == "" {
					return base, true
				}
				return base + "." + path, true
			}
			if path == "" {
				return "", false
			}
			return path, true
		case *ast.SelectorExpr:
			chain = append(chain, x.Sel.Name)
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return "", false
		}
	}
}

// collectAliases maps locals to receiver paths: range variables over a
// receiver field (encode side), locals later stored or appended into a
// receiver field, and composite-literal element fields (decode side).
// Runs to fixpoint so one level of indirection chains through.
func collectAliases(fd *ast.FuncDecl, root string) map[string]string {
	aliases := map[string]string{}
	for i := 0; i < 4; i++ {
		changed := false
		add := func(name, path string) {
			if name != "" && name != "_" && path != "" && aliases[name] != path {
				if _, exists := aliases[name]; !exists {
					aliases[name] = path
					changed = true
				}
			}
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.RangeStmt:
				if path, ok := pathOf(x.X, root, aliases); ok {
					if id, isID := x.Value.(*ast.Ident); isID {
						add(id.Name, path)
					}
				}
			case *ast.AssignStmt:
				if len(x.Lhs) != len(x.Rhs) {
					return true
				}
				for i := range x.Lhs {
					lpath, lok := pathOf(x.Lhs[i], root, aliases)
					if !lok {
						continue
					}
					switch r := x.Rhs[i].(type) {
					case *ast.Ident:
						add(r.Name, lpath)
					case *ast.CallExpr:
						if id, isID := r.Fun.(*ast.Ident); isID && id.Name == "append" {
							for _, arg := range r.Args[1:] {
								switch a := unwrapAddr(arg).(type) {
								case *ast.Ident:
									add(a.Name, lpath)
								case *ast.CompositeLit:
									for _, elt := range a.Elts {
										kv, isKV := elt.(*ast.KeyValueExpr)
										if !isKV {
											continue
										}
										key, isKey := kv.Key.(*ast.Ident)
										val := unwrapAddr(kv.Value)
										if vid, isVID := val.(*ast.Ident); isKey && isVID {
											add(vid.Name, lpath+"."+key.Name)
										}
									}
								}
							}
						}
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	return aliases
}

func unwrapAddr(e ast.Expr) ast.Expr {
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		return u.X
	}
	return e
}

// extractEvents walks one codec function and returns its field events
// in source order, extension-marked.
func extractEvents(fd *ast.FuncDecl, root string, s side) []event {
	aliases := collectAliases(fd, root)

	// Extension markers.
	// Encode: everything after the first top-level `if cond { return ... }`
	// guard is the trailing extension.
	extAfter := token.Pos(0)
	for _, stmt := range fd.Body.List {
		ifs, ok := stmt.(*ast.IfStmt)
		if !ok || len(ifs.Body.List) != 1 {
			continue
		}
		if _, isRet := ifs.Body.List[0].(*ast.ReturnStmt); isRet {
			extAfter = ifs.End()
			break
		}
	}
	// Decode: ranges of if-blocks gated on `r.off < len(r.data)`.
	type span struct{ lo, hi token.Pos }
	var extSpans []span
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || !isTrailingBytesCond(ifs.Cond) {
			return true
		}
		extSpans = append(extSpans, span{ifs.Body.Pos(), ifs.Body.End()})
		return true
	})
	inExt := func(pos token.Pos) bool {
		if s == encodeSide {
			return extAfter != 0 && pos > extAfter
		}
		for _, sp := range extSpans {
			if sp.lo <= pos && pos <= sp.hi {
				return true
			}
		}
		return false
	}

	// Nodes to skip: condition expressions (guards, not wire traffic)
	// and method-call Fun selectors.
	skip := map[ast.Node]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.IfStmt:
			skip[x.Cond] = true
		case *ast.ForStmt:
			if x.Cond != nil {
				skip[x.Cond] = true
			}
		case *ast.SwitchStmt:
			if x.Tag != nil {
				skip[x.Tag] = true
			}
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				skip[sel] = true // method call: not a field touch
			}
		}
		return true
	})

	var events []event
	addEvent := func(e ast.Expr) {
		if path, ok := pathOf(e, root, aliases); ok && path != "" {
			events = append(events, event{path: path, pos: e.Pos(), ext: inExt(e.Pos())})
		}
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if n == nil || skip[n] {
			return false
		}
		switch s {
		case encodeSide:
			// Any resolvable selector read is an encode event; don't
			// descend into a resolved selector (q.Q.Preds counts once).
			if e, ok := n.(ast.Expr); ok {
				if _, isSel := n.(*ast.SelectorExpr); isSel {
					if path, resolved := pathOf(e, root, aliases); resolved && path != "" {
						addEvent(e)
						return false
					}
				}
			}
		case decodeSide:
			if as, ok := n.(*ast.AssignStmt); ok {
				for i, lhs := range as.Lhs {
					var rhs ast.Expr
					if len(as.Rhs) == len(as.Lhs) {
						rhs = as.Rhs[i]
					} else if len(as.Rhs) == 1 {
						rhs = as.Rhs[0]
					}
					if rhs != nil && isZeroish(rhs) {
						continue // field reset, not wire traffic
					}
					addEvent(lhs)
				}
				// Still descend: RHS may contain append(recvField, ...)
				// whose arguments carry their own events; LHS selectors
				// are already recorded, and descending would double-add,
				// so mark them.
				for _, lhs := range as.Lhs {
					if sel, ok := lhs.(*ast.SelectorExpr); ok {
						skip[sel] = true
					}
				}
			}
		}
		return true
	}
	// Depth-first, source order.
	var inspect func(n ast.Node)
	inspect = func(n ast.Node) {
		ast.Inspect(n, func(c ast.Node) bool {
			if c == nil {
				return false
			}
			if c == n {
				return true
			}
			if walk(c) {
				inspect(c)
			}
			return false
		})
	}
	for _, stmt := range fd.Body.List {
		if walk(stmt) {
			inspect(stmt)
		}
	}
	return events
}

func isTrailingBytesCond(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		if be.Op != token.LSS && be.Op != token.GTR && be.Op != token.NEQ {
			return true
		}
		for _, e := range []ast.Expr{be.X, be.Y} {
			if sel, ok := e.(*ast.SelectorExpr); ok && sel.Sel.Name == "off" {
				found = true
			}
		}
		return true
	})
	return found
}

func isZeroish(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name == "nil" || x.Name == "false"
	case *ast.BasicLit:
		return x.Value == "0" || x.Value == `""` || x.Value == "0.0"
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "make" {
			return true
		}
	}
	return false
}

// sequence reduces events to the comparable form: first-occurrence
// order, deduplicated, container paths dropped when a child path is
// also present (the container event is just its length prefix/loop).
func sequence(events []event) []event {
	seen := map[string]int{}
	var uniq []event
	for _, e := range events {
		if _, ok := seen[e.path]; ok {
			continue
		}
		seen[e.path] = len(uniq)
		uniq = append(uniq, e)
	}
	hasChild := func(p string) bool {
		prefix := p + "."
		for q := range seen {
			if strings.HasPrefix(q, prefix) {
				return true
			}
		}
		return false
	}
	var out []event
	for _, e := range uniq {
		if !hasChild(e.path) {
			out = append(out, e)
		}
	}
	return out
}

func comparePair(pass *analysis.Pass, p pair, encEvents, decEvents []event) {
	enc := sequence(encEvents)
	dec := sequence(decEvents)
	n := len(enc)
	if len(dec) < n {
		n = len(dec)
	}
	for i := 0; i < n; i++ {
		if enc[i].path != dec[i].path {
			pass.Reportf(dec[i].pos,
				"codec %s: field order drift — decoder reads %q at position %d where the encoder writes %q; Encode*/Decode* must touch fields in the same order",
				p.name, dec[i].path, i, enc[i].path)
			return // later positions are all shifted; one finding suffices
		}
		if enc[i].ext != dec[i].ext {
			pass.Reportf(dec[i].pos,
				"codec %s: field %q is in the %s on the encode side but the %s on the decode side; the base/extension split must agree or old peers lose byte compatibility",
				p.name, enc[i].path, region(enc[i].ext), region(dec[i].ext))
		}
	}
	for _, e := range enc[n:] {
		pass.Reportf(p.dec.Pos(),
			"codec %s: encoder writes %q but the decoder never reads it", p.name, e.path)
	}
	for _, e := range dec[n:] {
		pass.Reportf(e.pos,
			"codec %s: decoder reads %q but the encoder never writes it", p.name, e.path)
	}
}

func region(ext bool) string {
	if ext {
		return "trailing extension"
	}
	return "base encoding"
}
