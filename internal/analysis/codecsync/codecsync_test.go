package codecsync_test

import (
	"testing"

	"roar/internal/analysis/analysistest"
	"roar/internal/analysis/codecsync"
)

func TestCodecSync(t *testing.T) {
	analysistest.Run(t, "testdata/src/codec", "example.com/codec", codecsync.Analyzer)
}
