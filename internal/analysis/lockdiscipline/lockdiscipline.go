// Package lockdiscipline enforces the repo's `...Locked` naming
// contract: a method whose name ends in "Locked" documents that its
// caller already holds the relevant mutex. Two invariants follow:
//
//  1. A ...Locked method must not itself acquire or release a mutex
//     reachable from its receiver — doing so either deadlocks
//     (sync.Mutex is not reentrant) or silently drops the caller's
//     critical section.
//  2. A call to x.fooLocked() must be made while some lock is held on
//     the scan path to the call — either the enclosing function is
//     itself a ...Locked method, or a Lock()/RLock() call precedes the
//     call site without an intervening non-deferred Unlock.
//
// The check is intra-package and syntactic (a linear source-order scan
// per function body, as promised in the contract's name — it cannot
// prove lock ownership across goroutines or through aliased pointers).
// Findings are suppressed with //lint:allow lock.
package lockdiscipline

import (
	"go/ast"
	"strings"

	"roar/internal/analysis"
)

// Analyzer is the lockdiscipline pass.
var Analyzer = &analysis.Analyzer{
	Name:     "lockdiscipline",
	AllowKey: "lock",
	Doc: "methods suffixed Locked must not acquire their receiver's mutex, and callers " +
		"of ...Locked must hold a lock on the (syntactic) path to the call",
	Run: run,
}

func isLockedName(name string) bool {
	return strings.HasSuffix(name, "Locked") && name != "Locked"
}

func isAcquire(name string) bool { return name == "Lock" || name == "RLock" }
func isRelease(name string) bool { return name == "Unlock" || name == "RUnlock" }

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	recvName := ""
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		recvName = fd.Recv.List[0].Names[0].Name
	}
	locked := isLockedName(fd.Name.Name)

	// Invariant 1: a ...Locked body must not touch the receiver's own
	// mutex — recv.mu.Lock() or recv.Lock() (embedded). A mutex nested
	// deeper (recv.health.mu) is a component's separate lock domain,
	// not the one the Locked suffix refers to. Checked across the whole
	// body, closures included — a closure spawned by a Locked method
	// still runs inside (or races with) the caller's critical section.
	if locked && recvName != "" {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (!isAcquire(sel.Sel.Name) && !isRelease(sel.Sel.Name)) {
				return true
			}
			if isReceiverMutex(sel.X, recvName) {
				pass.Reportf(call.Pos(),
					"%s is a ...Locked method but calls %s on its receiver's mutex; the caller already holds it (deadlock or dropped critical section)",
					fd.Name.Name, sel.Sel.Name)
			}
			return true
		})
	}

	// Invariant 2: linear-scan each function context (the decl body and
	// each closure separately) and require a held lock at every
	// x.fooLocked() call site.
	scanContext(pass, fd.Body, locked)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			// A closure is its own scan context: it may run after the
			// enclosing critical section ended, so outer locks don't
			// vouch for it. (Closures that do run under the caller's
			// lock annotate the call with //lint:allow lock.)
			scanContext(pass, lit.Body, false)
		}
		return true
	})
}

// isReceiverMutex reports whether e names the receiver's own mutex:
// the bare receiver (embedded sync.Mutex) or a direct field of it
// (recv.mu). Deeper chains (recv.health.mu) are other lock domains.
func isReceiverMutex(e ast.Expr, recvName string) bool {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name == recvName
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == recvName
}

// terminates reports whether a block's last statement leaves the
// enclosing flow (return, break/continue/goto, or panic).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// scanContext walks one function body in source order, tracking how
// many locks are currently held, and reports ...Locked calls made with
// none. Nested closures are skipped (scanned separately); deferred
// Unlocks do not release (they run at return). An if-body that ends by
// leaving the flow (early-return unlock idiom) is scanned with its own
// held count so its releases don't leak onto the fall-through path.
func scanContext(pass *analysis.Pass, body *ast.BlockStmt, inLocked bool) {
	held := 0
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		switch x := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			return // separate context
		case *ast.IfStmt:
			if x.Init != nil {
				walk(x.Init)
			}
			walk(x.Cond)
			if terminates(x.Body) {
				saved := held
				walk(x.Body)
				held = saved
			} else {
				walk(x.Body)
			}
			if x.Else != nil {
				walk(x.Else)
			}
			return
		case *ast.DeferStmt:
			// A deferred Unlock runs at return: it neither releases here
			// nor counts as holding. A deferred ...Locked call is checked
			// against the state at the defer statement (approximation).
			if sel, ok := x.Call.Fun.(*ast.SelectorExpr); ok && isLockedName(sel.Sel.Name) {
				checkLockedCall(pass, x.Call, sel, held, inLocked)
			}
			return
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				switch {
				case isAcquire(sel.Sel.Name):
					held++
				case isRelease(sel.Sel.Name):
					if held > 0 {
						held--
					}
				case isLockedName(sel.Sel.Name):
					checkLockedCall(pass, x, sel, held, inLocked)
				}
			}
		}
		// Recurse in source order.
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			if c != nil {
				walk(c)
			}
			return false
		})
	}
	for _, stmt := range body.List {
		walk(stmt)
	}
}

func checkLockedCall(pass *analysis.Pass, call *ast.CallExpr, sel *ast.SelectorExpr, held int, inLocked bool) {
	if held > 0 || inLocked {
		return
	}
	pass.Reportf(call.Pos(),
		"call to %s without holding a lock on any path to it; ...Locked methods require the caller to hold the receiver's mutex",
		sel.Sel.Name)
}
