// Fixture for the ...Locked naming contract, both directions: Locked
// bodies must not touch the receiver's own mutex, and Locked calls
// must happen under a held lock.
package lock

import "sync"

type inner struct {
	mu sync.Mutex
}

type box struct {
	mu    sync.Mutex
	n     int
	inner inner
}

func (b *box) addLocked(d int) { b.n += d }

func (b *box) badLocked() {
	b.mu.Lock() // want `Locked method but calls Lock on its receiver`
	b.n++
	b.mu.Unlock() // want `Locked method but calls Unlock on its receiver`
}

// A nested component's mutex is a different lock domain; the Locked
// suffix refers only to the receiver's own lock.
func (b *box) innerDomainLocked() {
	b.inner.mu.Lock()
	b.inner.mu.Unlock()
}

func (b *box) Add(d int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.addLocked(d)
}

func (b *box) Bad(d int) {
	b.addLocked(d) // want `without holding a lock`
}

// A Locked method may call further Locked methods: the caller's hold
// vouches for the whole chain.
func (b *box) chainLocked(d int) {
	b.addLocked(d)
}

// The early-return unlock idiom must not leak its release onto the
// fall-through path.
func (b *box) EarlyReturn(d int) {
	b.mu.Lock()
	if d == 0 {
		b.mu.Unlock()
		return
	}
	b.addLocked(d)
	b.mu.Unlock()
}

func (b *box) AfterRelease(d int) {
	b.mu.Lock()
	b.addLocked(d)
	b.mu.Unlock()
	b.addLocked(d) // want `without holding a lock`
}

// A closure is its own scan context: it may outlive the enclosing
// critical section.
func (b *box) ClosureEscapes() {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		b.addLocked(1) // want `without holding a lock`
	}()
}

func (b *box) AllowedCall(d int) {
	b.addLocked(d) //lint:allow lock — single-goroutine setup phase
}
