package lockdiscipline_test

import (
	"testing"

	"roar/internal/analysis/analysistest"
	"roar/internal/analysis/lockdiscipline"
)

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata/src/lock", "example.com/lock", lockdiscipline.Analyzer)
}
