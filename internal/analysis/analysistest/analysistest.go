// Package analysistest runs roar-lint analyzers over fixture packages
// and diffs reported diagnostics against `// want "regex"` comments,
// mirroring golang.org/x/tools/go/analysis/analysistest on the
// standard library only.
//
// Fixture layout follows the x/tools convention: each analyzer keeps
// source packages under testdata/src/<pkg>/, and a test calls
//
//	analysistest.Run(t, "testdata/src/a", "example.com/a", pkg.Analyzer)
//
// Every line expecting a diagnostic carries a trailing
// `// want "re"` comment (multiple quoted regexps allowed); the run
// fails on any unmatched diagnostic and any unsatisfied expectation.
//
// Fixtures are type-checked with the stdlib source importer, which
// compiles imported standard-library packages from source — no
// network, no build cache. The importer is shared process-wide because
// warming it (time, context, sync) costs a few seconds.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"roar/internal/analysis"
)

// The shared fileset/importer pair. The source importer caches
// type-checked stdlib packages keyed by this fileset, so all fixture
// runs must share it.
var (
	mu        sync.Mutex
	sharedSet = token.NewFileSet()
	sharedImp = importer.ForCompiler(sharedSet, "source", nil)
)

// wantRe pulls the quoted regexps out of a want comment — either
// double-quoted (backslash escapes) or backtick-quoted (raw).
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"|` + "`([^`]*)`")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// Run analyzes the fixture package rooted at dir (non-recursive) under
// the given import path and diffs diagnostics against want comments.
func Run(t *testing.T, dir, pkgPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	mu.Lock()
	defer mu.Unlock()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(sharedSet, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	cfg := types.Config{Importer: sharedImp}
	pkg, err := cfg.Check(pkgPath, sharedSet, files, info)
	if err != nil {
		t.Fatalf("typechecking fixture: %v", err)
	}

	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := sharedSet.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(c.Text[idx:], -1) {
					pat := m[1]
					if m[2] != "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{
						file: filepath.Base(pos.Filename), line: pos.Line, re: re, raw: pat,
					})
				}
			}
		}
	}

	diags, err := analysis.Run(sharedSet, pkgPath, files, pkg, info, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })

	for _, d := range diags {
		pos := sharedSet.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == filepath.Base(pos.Filename) && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s [%s]", pos.Filename, pos.Line, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}
