// Package ptn implements the Partitioned distributed-rendezvous baseline
// of §3.1 — the Google-style cluster algorithm. The n servers are
// divided into p clusters; each object is stored on every server of one
// randomly chosen cluster; a query visits one server per cluster.
//
// PTN is the strongest baseline: it has r^p scheduling choices and is
// simple to administer, but changing the p/r trade-off with n fixed is
// disruptive — a cluster must be destroyed or created and its data
// reloaded, which §3.1 and §6.3 quantify and which this package models.
package ptn

import (
	"fmt"
	"math/rand"

	"roar/internal/core"
	"roar/internal/ring"
)

// PTN is a cluster-based distributed rendezvous layout.
type PTN struct {
	clusters [][]ring.NodeID
	byNode   map[ring.NodeID]int // node -> cluster index
}

// New divides the given nodes into p clusters as evenly as possible,
// preserving order (node i goes to cluster i mod p, so consecutive
// nodes spread across clusters).
func New(nodes []ring.NodeID, p int) (*PTN, error) {
	if p <= 0 {
		return nil, fmt.Errorf("ptn: p must be positive, got %d", p)
	}
	if len(nodes) < p {
		return nil, fmt.Errorf("ptn: %d nodes cannot form %d clusters", len(nodes), p)
	}
	c := &PTN{clusters: make([][]ring.NodeID, p), byNode: make(map[ring.NodeID]int, len(nodes))}
	for i, id := range nodes {
		k := i % p
		if _, dup := c.byNode[id]; dup {
			return nil, fmt.Errorf("ptn: duplicate node id %d", id)
		}
		c.clusters[k] = append(c.clusters[k], id)
		c.byNode[id] = k
	}
	return c, nil
}

// NewBalanced divides nodes into p clusters of roughly equal total
// processing speed (§3.1: maximum throughput requires computationally
// equivalent clusters). It greedily assigns the fastest remaining node
// to the currently lightest cluster.
func NewBalanced(nodes []ring.NodeID, speeds map[ring.NodeID]float64, p int) (*PTN, error) {
	if p <= 0 || len(nodes) < p {
		return nil, fmt.Errorf("ptn: cannot form %d clusters from %d nodes", p, len(nodes))
	}
	order := append([]ring.NodeID(nil), nodes...)
	// Sort by descending speed (insertion sort: n is small and we avoid
	// an extra dependency on sort with custom keys).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && speeds[order[j]] > speeds[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	c := &PTN{clusters: make([][]ring.NodeID, p), byNode: make(map[ring.NodeID]int, len(nodes))}
	totals := make([]float64, p)
	for _, id := range order {
		light := 0
		for k := 1; k < p; k++ {
			if totals[k] < totals[light] {
				light = k
			}
		}
		c.clusters[light] = append(c.clusters[light], id)
		c.byNode[id] = light
		totals[light] += speeds[id]
	}
	return c, nil
}

// P returns the number of clusters (the partitioning level).
func (c *PTN) P() int { return len(c.clusters) }

// N returns the total number of nodes.
func (c *PTN) N() int { return len(c.byNode) }

// Cluster returns the members of cluster k.
func (c *PTN) Cluster(k int) []ring.NodeID {
	return append([]ring.NodeID(nil), c.clusters[k]...)
}

// ClusterOf returns the cluster index of a node, or -1.
func (c *PTN) ClusterOf(id ring.NodeID) int {
	k, ok := c.byNode[id]
	if !ok {
		return -1
	}
	return k
}

// StoreCluster picks the cluster for a new object (uniformly random, as
// in §3.1).
func (c *PTN) StoreCluster(rng *rand.Rand) int { return rng.Intn(len(c.clusters)) }

// Assignment is one sub-query of a PTN plan.
type Assignment struct {
	Node    ring.NodeID
	Cluster int
	Est     float64
}

// Plan is a full PTN query assignment: one node per cluster.
type Plan struct {
	Subs  []Assignment
	Delay float64
}

// Schedule picks, in each cluster, the server with the smallest
// estimated finish for a sub-query of size 1/p — the O(n) per-cluster
// scan of §4.8.1. failed nodes are skipped.
func (c *PTN) Schedule(est core.Estimator, failed map[ring.NodeID]bool) (Plan, error) {
	size := 1 / float64(len(c.clusters))
	plan := Plan{Subs: make([]Assignment, 0, len(c.clusters))}
	for k, members := range c.clusters {
		best := Assignment{Cluster: k}
		found := false
		for _, id := range members {
			if failed[id] {
				continue
			}
			fin := est.EstimateFinish(id, size)
			if !found || fin < best.Est {
				best.Node, best.Est, found = id, fin, true
			}
		}
		if !found {
			return Plan{}, fmt.Errorf("ptn: cluster %d has no live nodes; partition %d unavailable", k, k)
		}
		plan.Subs = append(plan.Subs, best)
		if best.Est > plan.Delay {
			plan.Delay = best.Est
		}
	}
	return plan, nil
}

// RepartitionCost models the §3.1/§6.3 cost of changing the cluster
// count from the current p to newP with n fixed, in fractions of the
// total dataset that must be transferred over the network.
//
// Decreasing p (destroying clusters): every object of each destroyed
// cluster must be copied to all servers of a surviving cluster, and the
// freed servers must then load their new cluster's full share.
// Increasing p: servers leave existing clusters to form new ones and
// must load the new cluster's share (objects can be transferred from
// existing clusters to balance).
func (c *PTN) RepartitionCost(newP int) (fractionMoved float64, err error) {
	p := len(c.clusters)
	if newP <= 0 || newP > c.N() {
		return 0, fmt.Errorf("ptn: invalid new partitioning level %d", newP)
	}
	if newP == p {
		return 0, nil
	}
	n := float64(c.N())
	share := 1 / float64(newP) // per-cluster data share after the change
	if newP < p {
		// p-newP clusters destroyed: their data (fraction (p-newP)/p)
		// must be stored on ALL servers of a surviving cluster (§3.1),
		// and the freed servers (n/p each) reload a full new share.
		destroyed := float64(p-newP) / float64(p) * (n / float64(p))
		reload := float64(p-newP) * (n / float64(p)) * share
		return destroyed + reload, nil
	}
	// newP > p: servers leave to form newP-p new clusters of n/newP
	// servers, each loading the new share.
	joining := float64(newP-p) * (n / float64(newP)) * share
	return joining, nil
}

// RemoveNode deletes a node from its cluster (server removal or failure
// acknowledged by the membership layer).
func (c *PTN) RemoveNode(id ring.NodeID) error {
	k, ok := c.byNode[id]
	if !ok {
		return fmt.Errorf("ptn: node %d not present", id)
	}
	members := c.clusters[k]
	for i, m := range members {
		if m == id {
			c.clusters[k] = append(members[:i], members[i+1:]...)
			break
		}
	}
	delete(c.byNode, id)
	return nil
}

// AddNode appends a node to the currently smallest cluster (the §3.1
// default for growing r).
func (c *PTN) AddNode(id ring.NodeID) error {
	if _, dup := c.byNode[id]; dup {
		return fmt.Errorf("ptn: duplicate node id %d", id)
	}
	small := 0
	for k := 1; k < len(c.clusters); k++ {
		if len(c.clusters[k]) < len(c.clusters[small]) {
			small = k
		}
	}
	c.clusters[small] = append(c.clusters[small], id)
	c.byNode[id] = small
	return nil
}

// Choices returns the number of distinct server combinations available
// to a query: r^p with per-cluster replica counts r_k (§3.1). Returned
// as float64 since it overflows quickly.
func (c *PTN) Choices() float64 {
	out := 1.0
	for _, m := range c.clusters {
		out *= float64(len(m))
	}
	return out
}
