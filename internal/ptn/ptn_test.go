package ptn

import (
	"math"
	"math/rand"
	"testing"

	"roar/internal/core"
	"roar/internal/ring"
)

func nodeIDs(n int) []ring.NodeID {
	out := make([]ring.NodeID, n)
	for i := range out {
		out[i] = ring.NodeID(i)
	}
	return out
}

func TestNewClusters(t *testing.T) {
	c, err := New(nodeIDs(12), 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.P() != 4 || c.N() != 12 {
		t.Fatalf("P=%d N=%d", c.P(), c.N())
	}
	for k := 0; k < 4; k++ {
		if len(c.Cluster(k)) != 3 {
			t.Errorf("cluster %d has %d members, want 3", k, len(c.Cluster(k)))
		}
	}
	if c.ClusterOf(5) != 5%4 {
		t.Errorf("ClusterOf(5) = %d", c.ClusterOf(5))
	}
	if c.ClusterOf(99) != -1 {
		t.Error("absent node should map to -1")
	}
	if _, err := New(nodeIDs(3), 4); err == nil {
		t.Error("too few nodes should be rejected")
	}
	if _, err := New(nodeIDs(3), 0); err == nil {
		t.Error("p=0 should be rejected")
	}
	if _, err := New([]ring.NodeID{1, 1}, 1); err == nil {
		t.Error("duplicate ids should be rejected")
	}
}

func TestNewBalanced(t *testing.T) {
	speeds := map[ring.NodeID]float64{}
	ids := nodeIDs(12)
	rng := rand.New(rand.NewSource(1))
	for _, id := range ids {
		speeds[id] = 1 + rng.Float64()*9
	}
	c, err := NewBalanced(ids, speeds, 4)
	if err != nil {
		t.Fatal(err)
	}
	totals := make([]float64, 4)
	var sum float64
	for k := 0; k < 4; k++ {
		for _, id := range c.Cluster(k) {
			totals[k] += speeds[id]
			sum += speeds[id]
		}
	}
	mean := sum / 4
	for k, tot := range totals {
		if math.Abs(tot-mean) > mean*0.5 {
			t.Errorf("cluster %d total speed %v far from mean %v", k, tot, mean)
		}
	}
}

func TestScheduleFastestPerCluster(t *testing.T) {
	c, _ := New(nodeIDs(8), 2)
	speeds := map[ring.NodeID]float64{}
	for i := 0; i < 8; i++ {
		speeds[ring.NodeID(i)] = 1
	}
	speeds[0] = 100 // fastest in cluster 0
	speeds[1] = 50  // fastest in cluster 1
	est := core.EstimatorFunc(func(id ring.NodeID, size float64) float64 {
		return size / speeds[id]
	})
	plan, err := c.Schedule(est, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Subs) != 2 {
		t.Fatalf("want 2 subs, got %d", len(plan.Subs))
	}
	if plan.Subs[0].Node != 0 || plan.Subs[1].Node != 1 {
		t.Errorf("scheduler picked %d,%d; want fastest 0,1", plan.Subs[0].Node, plan.Subs[1].Node)
	}
	if math.Abs(plan.Delay-0.5/50) > 1e-12 {
		t.Errorf("delay = %v, want 0.01", plan.Delay)
	}
}

func TestScheduleSkipsFailed(t *testing.T) {
	c, _ := New(nodeIDs(4), 2)
	est := core.EstimatorFunc(func(id ring.NodeID, size float64) float64 { return size })
	failed := map[ring.NodeID]bool{0: true}
	plan, err := c.Schedule(est, failed)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range plan.Subs {
		if failed[s.Node] {
			t.Error("plan uses a failed node")
		}
	}
	// Kill the whole cluster 0 (nodes 0 and 2): partition unavailable.
	failed[2] = true
	if _, err := c.Schedule(est, failed); err == nil {
		t.Error("dead cluster should make queries fail")
	}
}

func TestRepartitionCost(t *testing.T) {
	c, _ := New(nodeIDs(12), 4)
	if cost, err := c.RepartitionCost(4); err != nil || cost != 0 {
		t.Errorf("no-op repartition cost = %v, %v", cost, err)
	}
	down, err := c.RepartitionCost(3)
	if err != nil {
		t.Fatal(err)
	}
	up, err := c.RepartitionCost(6)
	if err != nil {
		t.Fatal(err)
	}
	if down <= 0 || up <= 0 {
		t.Errorf("repartition must cost data movement: down=%v up=%v", down, up)
	}
	// The asymmetric destroy-and-reload path (decreasing p) moves more
	// data than cluster creation (§3.1).
	if down <= up {
		t.Errorf("decreasing p (%v) should cost more than increasing (%v)", down, up)
	}
	if _, err := c.RepartitionCost(0); err == nil {
		t.Error("invalid target p should error")
	}
}

func TestAddRemoveNode(t *testing.T) {
	c, _ := New(nodeIDs(8), 2)
	if err := c.RemoveNode(3); err != nil {
		t.Fatal(err)
	}
	if c.ClusterOf(3) != -1 || c.N() != 7 {
		t.Error("removal not applied")
	}
	if err := c.RemoveNode(3); err == nil {
		t.Error("double removal should error")
	}
	if err := c.AddNode(100); err != nil {
		t.Fatal(err)
	}
	// Node joins the smallest cluster (cluster 1, which lost node 3).
	if c.ClusterOf(100) != 1 {
		t.Errorf("new node joined cluster %d, want the smallest (1)", c.ClusterOf(100))
	}
	if err := c.AddNode(100); err == nil {
		t.Error("duplicate add should error")
	}
}

func TestChoices(t *testing.T) {
	c, _ := New(nodeIDs(12), 4) // clusters of 3 => 3^4 = 81
	if got := c.Choices(); got != 81 {
		t.Errorf("Choices = %v, want 81", got)
	}
}
