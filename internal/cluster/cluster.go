// Package cluster is the in-process test harness for the full ROAR
// system: N data nodes served over loopback TCP, a membership
// coordinator, and a frontend — the same roles as the paper's Hen/EC2
// deployments (§7.1), shrunk onto one machine. All experiment code and
// the integration tests run through this package so they exercise the
// complete networked path: scheduling, RPC, matching, reconfiguration
// and failure handling.
package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"roar/internal/frontend"
	"roar/internal/ingest"
	"roar/internal/membership"
	"roar/internal/node"
	"roar/internal/pps"
	"roar/internal/proto"
	"roar/internal/ring"
	"roar/internal/wire"
	"roar/internal/workload"
)

// Options configures a cluster.
type Options struct {
	Nodes int
	Rings int // default 1
	P     int // initial partitioning level

	// MatchThreads per node (default 1).
	MatchThreads int
	// FixedQueryCost is a constant per-sub-query node overhead (§2's
	// fixed costs; used by the throughput-vs-p experiments).
	FixedQueryCost time.Duration
	// NodeSpeeds, when set, throttles node i to NodeSpeeds[i] objects
	// per second — the Table 7.1 hardware emulation. nil = unthrottled.
	NodeSpeeds []float64
	// SpeedHints passed to the membership server at join (defaults to
	// NodeSpeeds scaled, else 1).
	SpeedHints []float64

	Frontend frontend.Config
	// Tuning, when set, is distributed through the membership view so
	// the frontend's execution pipeline is configured the way a real
	// deployment would be: centrally, not per process.
	Tuning *proto.Tuning
	// Health tunes the coordinator's failure/overload control loop
	// (quarantine thresholds); zero values use the defaults.
	Health membership.HealthConfig
	// Autoscale, when set, attaches an elasticity controller to the
	// coordinator (not started: tests drive it with StepAutoscale for
	// determinism; call Cluster.AS.Start for the background loop).
	Autoscale *membership.AutoscaleConfig
	// Encoder overrides the PPS encoding (zero value = slim test
	// encoding; use pps.EncoderConfig{} semantics via FullEncoding).
	Encoder *pps.EncoderConfig
	// FullEncoding selects the paper-sized encoder (500B metadata).
	FullEncoding bool

	// IngestDir, when set, opens a durable ingest WAL there and starts
	// the drain consumer — enables Cluster.IngestPut. Use t.TempDir().
	IngestDir string
	// IngestBatch caps records per drain round (0 = consumer default).
	IngestBatch int

	Seed int64
}

// Cluster is a running system.
type Cluster struct {
	Enc   *pps.Encoder
	Coord *membership.Coordinator
	FE    *frontend.Frontend
	// AS is the attached elasticity controller (nil unless
	// Options.Autoscale was set).
	AS *membership.Autoscaler

	nodes    []*node.Node
	servers  []*wire.Server
	ids      []ring.NodeID
	extraFEs []*frontend.Frontend
	wal      *ingest.WAL
	rng      *rand.Rand
}

// SlimEncoderConfig is a small encoding that keeps harness corpora cheap
// to build while exercising every code path.
func SlimEncoderConfig() pps.EncoderConfig {
	return pps.EncoderConfig{
		MaxKeywords: 4,
		MaxPathDir:  4,
		SizePoints:  pps.LinearPoints(0, 1e9, 16),
		DateDays:    90,
		DateSpan:    40,
		RankBuckets: []int{1, 5},
	}
}

// Start builds and starts a cluster.
func Start(opts Options) (*Cluster, error) {
	if opts.Nodes <= 0 || opts.P <= 0 {
		return nil, fmt.Errorf("cluster: need Nodes and P")
	}
	if opts.Rings <= 0 {
		opts.Rings = 1
	}
	encCfg := SlimEncoderConfig()
	if opts.Encoder != nil {
		encCfg = *opts.Encoder
	} else if opts.FullEncoding {
		encCfg = pps.EncoderConfig{}
	}
	// The key is fixed: experiments vary topology and load, never key
	// material, and a shared key lets callers reuse encrypted corpora.
	enc := pps.NewEncoder(pps.TestKey(1), encCfg)

	coordCfg := membership.Config{Rings: opts.Rings, P: opts.P, Tuning: opts.Tuning, Health: opts.Health}
	var wal *ingest.WAL
	if opts.IngestDir != "" {
		var err error
		wal, err = ingest.Open(opts.IngestDir, ingest.Options{})
		if err != nil {
			return nil, err
		}
		coordCfg.WAL = wal
	}
	coord, err := membership.New(coordCfg)
	if err != nil {
		if wal != nil {
			wal.Close()
		}
		return nil, err
	}
	c := &Cluster{Enc: enc, Coord: coord, wal: wal, rng: rand.New(rand.NewSource(opts.Seed))}

	for i := 0; i < opts.Nodes; i++ {
		ncfg := node.Config{
			Params:         enc.ServerParams(),
			MatchThreads:   opts.MatchThreads,
			FixedQueryCost: opts.FixedQueryCost,
		}
		if opts.NodeSpeeds != nil {
			ncfg.ObjectsPerSec = opts.NodeSpeeds[i]
		}
		n, err := node.New(ncfg)
		if err != nil {
			c.Close()
			return nil, err
		}
		srv, err := n.Serve("127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, err
		}
		c.nodes = append(c.nodes, n)
		c.servers = append(c.servers, srv)
		hint := 1.0
		if opts.SpeedHints != nil {
			hint = opts.SpeedHints[i]
		} else if opts.NodeSpeeds != nil {
			hint = opts.NodeSpeeds[i]
		}
		jr, err := coord.Join(context.Background(), srv.Addr(), hint)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.ids = append(c.ids, ring.NodeID(jr.ID))
	}

	fe := frontend.New(opts.Frontend)
	c.FE = fe
	if err := c.SyncView(); err != nil {
		c.Close()
		return nil, err
	}
	if opts.Autoscale != nil {
		c.AS = coord.NewAutoscaler(*opts.Autoscale)
	}
	if wal != nil {
		if err := coord.StartIngest(membership.IngestConfig{Batch: opts.IngestBatch}); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// IngestPut appends records to the durable ingest WAL (requires
// Options.IngestDir) and returns the sequence of the last one; delivery
// to the owning nodes is asynchronous — WaitIngestDrained blocks on it.
func (c *Cluster) IngestPut(ctx context.Context, recs ...pps.Encoded) (uint64, error) {
	return c.Coord.IngestAppend(ctx, recs)
}

// WaitIngestDrained blocks until every record with sequence <= seq has
// been delivered to all of its owners, or ctx ends.
func (c *Cluster) WaitIngestDrained(ctx context.Context, seq uint64) error {
	return c.Coord.WaitIngestDrained(ctx, seq)
}

// StepAutoscale runs one elasticity-controller evaluation and, when it
// actually reconfigured something, pushes the fresh view to every
// frontend — the harness equivalent of the frontends' epoch-triggered
// re-pull. Dry-run decisions, refusals ("hold"), and failed executions
// mutate nothing, so they trigger no view push.
func (c *Cluster) StepAutoscale(ctx context.Context) ([]membership.AutoscaleDecision, error) {
	if c.AS == nil {
		return nil, fmt.Errorf("cluster: no autoscaler attached (Options.Autoscale)")
	}
	ds := c.AS.Step(ctx)
	for _, d := range ds {
		if d.Action != membership.ActionHold && !d.DryRun && d.Err == "" {
			if err := c.SyncView(); err != nil {
				return ds, err
			}
			break
		}
	}
	return ds, nil
}

// SetRingEnabled powers a ring on or off through the coordinator and
// re-syncs every frontend's view.
func (c *Cluster) SetRingEnabled(ctx context.Context, ring int, enabled bool) error {
	if err := c.Coord.SetRingEnabled(ctx, ring, enabled); err != nil {
		return err
	}
	return c.SyncView()
}

// SyncView pushes the coordinator's current view to every frontend.
func (c *Cluster) SyncView() error {
	v := c.Coord.View()
	for _, fe := range c.extraFEs {
		if err := fe.ApplyView(v); err != nil {
			return err
		}
	}
	return c.FE.ApplyView(v)
}

// AddFrontend starts an additional frontend against the current view —
// the harness's stand-in for a real multi-frontend deployment (health
// aggregation across frontends, quarantine quorums). Closed with the
// cluster.
func (c *Cluster) AddFrontend(cfg frontend.Config) (*frontend.Frontend, error) {
	fe := frontend.New(cfg)
	if err := fe.ApplyView(c.Coord.View()); err != nil {
		fe.Close()
		return nil, err
	}
	c.extraFEs = append(c.extraFEs, fe)
	return fe, nil
}

// PumpHealth runs one turn of the health loop for the given frontends
// (all of the cluster's frontends when none are named): each pushes its
// report to the coordinator, and any frontend whose view is stale
// against the coordinator's epoch re-pulls it — exactly what
// cmd/roar-frontend's background pushers do on their tickers.
func (c *Cluster) PumpHealth(fes ...*frontend.Frontend) proto.HealthResp {
	if len(fes) == 0 {
		fes = append([]*frontend.Frontend{c.FE}, c.extraFEs...)
	}
	var resp proto.HealthResp
	for _, fe := range fes {
		resp = c.Coord.ReportHealth(fe.HealthReport())
		if resp.Epoch != fe.View().Epoch {
			_ = fe.ApplyView(c.Coord.View())
		}
	}
	return resp
}

// Close tears everything down.
func (c *Cluster) Close() {
	if c.AS != nil {
		c.AS.Stop()
	}
	for _, fe := range c.extraFEs {
		fe.Close()
	}
	if c.FE != nil {
		c.FE.Close()
	}
	if c.Coord != nil {
		c.Coord.Close()
	}
	if c.wal != nil {
		c.wal.Close()
	}
	for _, s := range c.servers {
		if s != nil {
			s.Close()
		}
	}
}

// Nodes returns the in-process node handles (for direct inspection).
func (c *Cluster) Nodes() []*node.Node { return c.nodes }

// NodeIDs returns the membership-assigned ids, index-aligned with
// Nodes().
func (c *Cluster) NodeIDs() []ring.NodeID { return append([]ring.NodeID(nil), c.ids...) }

// GenerateCorpus builds and loads n synthetic documents; returns the
// plaintext docs for verification.
func (c *Cluster) GenerateCorpus(n int) ([]pps.Document, error) {
	corpus := workload.NewCorpus(2000, 7)
	files := corpus.Generate(n)
	docs := make([]pps.Document, n)
	recs := make([]pps.Encoded, n)
	for i, f := range files {
		docs[i] = pps.Document{
			ID:       c.rng.Uint64(),
			Path:     f.Path,
			Size:     f.Size,
			Modified: f.Modified,
			Keywords: limitKeywords(f.Keywords, 4),
		}
		r, err := c.Enc.EncryptDocument(docs[i])
		if err != nil {
			return nil, err
		}
		recs[i] = r
	}
	if err := c.Coord.LoadCorpus(context.Background(), recs); err != nil {
		return nil, err
	}
	return docs, nil
}

func limitKeywords(kws []string, max int) []string {
	if len(kws) <= max {
		return kws
	}
	return kws[:max]
}

// LoadEncoded loads pre-encrypted records.
func (c *Cluster) LoadEncoded(recs []pps.Encoded) error {
	return c.Coord.LoadCorpus(context.Background(), recs)
}

// Query executes a query against the cluster.
func (c *Cluster) Query(ctx context.Context, op pps.BoolOp, preds ...pps.Predicate) (frontend.Result, error) {
	q, err := c.Enc.EncryptQuery(op, preds...)
	if err != nil {
		return frontend.Result{}, err
	}
	return c.FE.Query(ctx, frontend.QuerySpec{Enc: q})
}

// KillNode crashes node i: its server stops accepting and all its
// connections drop. The membership layer is NOT informed — the frontend
// must discover the failure through timeouts, exactly as in Fig 7.6.
func (c *Cluster) KillNode(i int) error {
	if i < 0 || i >= len(c.servers) {
		return fmt.Errorf("cluster: no node %d", i)
	}
	return c.servers[i].Close()
}

// RecoverFailure tells the membership layer to redistribute a failed
// node's range (the long-term path of §4.9).
func (c *Cluster) RecoverFailure(ctx context.Context, i int) error {
	if err := c.Coord.Decommission(ctx, c.ids[i]); err != nil {
		return err
	}
	return c.SyncView()
}

// NodeStats polls every live node's counters.
func (c *Cluster) NodeStats(ctx context.Context) []proto.StatsResp {
	out := make([]proto.StatsResp, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = n.Stats()
	}
	return out
}

// WaitSettled gives in-flight background work a moment; used by tests
// after reconfigurations.
func (c *Cluster) WaitSettled() { time.Sleep(20 * time.Millisecond) } //lint:allow wallclock — real goroutines need real time to settle
