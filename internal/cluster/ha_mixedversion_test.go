package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"roar/internal/frontend"
	"roar/internal/ring"
	"roar/internal/wire"
)

// TestClusterMixedVersionFrontend pins the rolling-upgrade contract: a
// pre-HA frontend — plain wire.Client hard-wired to one coordinator
// address, no failover, no peer list — must work unchanged against a
// replicated leader, and the view fence must order standalone (Term 0)
// and elected (Term > 0) publishers correctly in both directions.
func TestClusterMixedVersionFrontend(t *testing.T) {
	if testing.Short() {
		t.Skip("mixed-version e2e is not short")
	}
	hc, err := StartHA(HAOptions{
		Replicas: 3, Nodes: 2, P: 2, Seed: 7,
		Lease:     250 * time.Millisecond,
		Heartbeat: 60 * time.Millisecond,
		Frontend:  frontend.Config{Name: "fe-new", PQ: 2},
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	want, q := haCorpus(t, hc)

	leader, err := hc.WaitLeader(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}

	// The old-style frontend speaks to the leader's address directly: a
	// bare wire.Client is the pre-HA deployment's entire control-plane
	// stack, and it satisfies the Syncer's MemberCaller as-is.
	oldFE := frontend.New(frontend.Config{Name: "fe-old", PQ: 2})
	defer oldFE.Close()
	cl := wire.NewClient(leader.Self())
	defer cl.Close()
	sy := frontend.NewSyncer(oldFE, cl, frontend.SyncConfig{Logf: t.Logf})
	defer sy.Stop()

	if err := sy.PullViewOnce(context.Background()); err != nil {
		t.Fatalf("old-style frontend cannot pull from replicated leader: %v", err)
	}
	if got, lead := oldFE.View().Term, leader.Term(); got != lead {
		t.Fatalf("old-style frontend installed term %d, leader at %d", got, lead)
	}
	res, err := oldFE.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	checkIDSet(t, res, want, "old-style frontend against replicated leader")

	// Health reports land on the replicated leader too (the Syncer's
	// downgrade ladder handles genuinely old wire formats; here the
	// point is the single-address path against a replica).
	oldFE.MarkFailed(ring.NodeID(oldFE.View().Nodes[0].ID))
	if err := sy.PushHealthOnce(context.Background()); err != nil {
		t.Fatalf("old-style health push: %v", err)
	}

	// Fence, downgrade direction: once a frontend has installed an
	// elected leader's view, a standalone coordinator's Term-0 view of
	// the same cluster must be rejected — a pre-HA process restarted by
	// accident cannot roll the fleet back.
	standalone := oldFE.View()
	standalone.Term = 0
	if err := oldFE.ApplyView(standalone); !errors.Is(err, frontend.ErrStaleView) {
		t.Fatalf("Term-0 view accepted over an elected one: %v", err)
	}

	// Fence, upgrade direction: a frontend still holding a Term-0 view
	// (booted against a standalone coordinator) accepts its first
	// elected view even if the epoch restarted lower.
	upFE := frontend.New(frontend.Config{Name: "fe-upgrading", PQ: 2})
	defer upFE.Close()
	pre := oldFE.View()
	pre.Term = 0
	pre.Epoch = pre.Epoch + 100 // standalone epochs share no origin
	if err := upFE.ApplyView(pre); err != nil {
		t.Fatal(err)
	}
	elected := oldFE.View()
	if err := upFE.ApplyView(elected); err != nil {
		t.Fatalf("upgrade to first elected view refused: %v", err)
	}
	if upFE.View().Term != elected.Term {
		t.Fatalf("upgrading frontend kept term %d", upFE.View().Term)
	}
	res, err = upFE.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	checkIDSet(t, res, want, "upgraded frontend")
}
