package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"roar/internal/frontend"
	"roar/internal/pps"
)

// haCorpus mirrors chaosCorpus for the replicated harness: 60 documents,
// 20 carrying the target keyword, loaded through the current leader.
func haCorpus(t *testing.T, c *HACluster) (map[uint64]bool, pps.Query) {
	t.Helper()
	want := map[uint64]bool{}
	var recs []pps.Encoded
	for i := 0; i < 60; i++ {
		kw := "filler"
		if i%3 == 0 {
			kw = "target"
		}
		id := uint64(i+1) << 32
		rec, err := c.Enc.EncryptDocument(pps.Document{
			ID: id, Path: fmt.Sprintf("/d/%d", i), Size: int64(i),
			Modified: time.Unix(1.2e9, 0), Keywords: []string{kw},
		})
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
		if kw == "target" {
			want[id] = true
		}
	}
	if err := c.LoadEncoded(recs); err != nil {
		t.Fatal(err)
	}
	q, err := c.Enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "target"})
	if err != nil {
		t.Fatal(err)
	}
	return want, q
}

// TestClusterChaosLeaderFailover is the control-plane kill test: the
// lease holder dies at the worst possible instant — after a ChangeP
// intent commits but before any data moves — while 32 concurrent
// clients hammer the frontend. A follower must take over within the
// lease timeout, finish the inherited reconfiguration, and every query
// before, during, and after the takeover must return the exact id set
// of an undisturbed run. The deposed leader's last view must be
// rejected by the frontend's (Term, Epoch) fence.
func TestClusterChaosLeaderFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e is not short")
	}
	const (
		nodes   = 8
		p       = 4
		pTarget = 2 // p-down only ADDS records to nodes: correct mid-move
		clients = 32
	)

	// Crash-point hook: the first intent commit anywhere in the replica
	// set signals the test and freezes that leader pre-execution; the
	// new leader's re-driven pass sails through.
	var intentOnce sync.Once
	intentHit := make(chan struct{})
	release := make(chan struct{})
	hook := func(int) {
		fired := false
		intentOnce.Do(func() { fired = true })
		if fired {
			close(intentHit)
			<-release
		}
	}

	hc, err := StartHA(HAOptions{
		Replicas: 3, Nodes: nodes, P: p, Seed: 23,
		Lease:     250 * time.Millisecond,
		Heartbeat: 60 * time.Millisecond,
		Frontend: frontend.Config{
			Name:            "fe-ha",
			PQ:              nodes,
			SubQueryTimeout: 250 * time.Millisecond,
		},
		OnIntentCommitted: hook,
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	want, q := haCorpus(t, hc)

	// Undisturbed baseline: the reference id set the chaos run must match.
	res, err := hc.FE.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	checkIDSet(t, res, want, "undisturbed baseline")

	// 32 concurrent clients assert id-set identity for the whole run.
	var queries atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				res, err := hc.FE.Execute(ctx, q)
				cancel()
				if err != nil {
					t.Errorf("client %d: query failed mid-chaos: %v", id, err)
					return
				}
				if len(res.IDs) != len(want) {
					t.Errorf("client %d: got %d ids, want %d", id, len(res.IDs), len(want))
					return
				}
				for _, rid := range res.IDs {
					if !want[rid] {
						t.Errorf("client %d: unexpected id %d", id, rid)
						return
					}
				}
				queries.Add(1)
			}
		}(i)
	}

	leader, err := hc.WaitLeader(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	oldTerm := leader.Term()
	staleView, err := leader.View()
	if err != nil {
		t.Fatal(err)
	}
	leaderIdx := hc.ReplicaIndex(leader)

	// Kick off the reconfiguration; it will freeze at the crash point.
	changeErr := make(chan error, 1)
	go func() { changeErr <- leader.ChangeP(context.Background(), pTarget) }()
	select {
	case <-intentHit:
	case <-time.After(10 * time.Second):
		t.Fatal("ChangeP intent never committed")
	}

	// Kill the lease holder mid-ChangeP: intent durable, work not done.
	killedAt := time.Now()
	hc.KillReplica(leaderIdx)
	close(release)
	if err := <-changeErr; err == nil {
		t.Error("ChangeP on the killed leader reported success")
	} else {
		t.Logf("killed leader's ChangeP surfaced: %v", err)
	}

	next, err := hc.WaitLeader(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("failover took %v (lease 250ms)", time.Since(killedAt))
	if next == leader {
		t.Fatal("killed leader still leads")
	}
	if nt := next.Term(); nt <= oldTerm {
		t.Fatalf("new leader term %d does not supersede %d", nt, oldTerm)
	}

	// The successor must finish the inherited ChangeP on its own.
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, verr := next.View()
		st, ok := next.CommittedState()
		if verr == nil && ok && v.P == pTarget && st.PendingP == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("inherited ChangeP never completed: view=%+v err=%v pending=%d",
				v, verr, st.PendingP)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The frontend fails over to the new leader through coordclient and
	// installs the post-reconfiguration view...
	if err := hc.Syncer.PullViewOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	fv := hc.FE.View()
	if fv.P != pTarget {
		t.Fatalf("frontend view p=%d after failover, want %d", fv.P, pTarget)
	}
	if fv.Term <= oldTerm {
		t.Fatalf("frontend view term %d does not supersede %d", fv.Term, oldTerm)
	}
	// ...and the deposed leader's pre-kill view is fenced out.
	if err := hc.FE.ApplyView(staleView); !errors.Is(err, frontend.ErrStaleView) {
		t.Fatalf("stale view from term %d accepted after takeover: %v", staleView.Term, err)
	}

	// Let the clients observe the post-failover world before stopping.
	pre := queries.Load()
	settle := time.Now().Add(5 * time.Second)
	for queries.Load() < pre+clients && time.Now().Before(settle) {
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if n := queries.Load(); n < clients {
		t.Fatalf("only %d queries completed across the chaos run", n)
	} else {
		t.Logf("%d id-set-identical queries across kill and takeover", n)
	}

	res, err = hc.FE.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	checkIDSet(t, res, want, "after failover at p=2")
}
