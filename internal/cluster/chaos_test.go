package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"roar/internal/frontend"
	"roar/internal/membership"
	"roar/internal/pps"
)

// Chaos end-to-end tests for the failure/overload control loop: two
// frontends and the coordinator close the loop the way a real
// deployment does (periodic health reports, quarantine views, recovery
// evidence), while nodes are killed and slow-walked underneath them.

// chaosCorpus loads 60 documents, 20 carrying the target keyword, and
// returns the expected id set.
func chaosCorpus(t *testing.T, c *Cluster) (map[uint64]bool, pps.Query) {
	t.Helper()
	want := map[uint64]bool{}
	var recs []pps.Encoded
	for i := 0; i < 60; i++ {
		kw := "filler"
		if i%3 == 0 {
			kw = "target"
		}
		id := uint64(i+1) << 32
		rec, err := c.Enc.EncryptDocument(pps.Document{
			ID: id, Path: fmt.Sprintf("/d/%d", i), Size: int64(i),
			Modified: time.Unix(1.2e9, 0), Keywords: []string{kw},
		})
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
		if kw == "target" {
			want[id] = true
		}
	}
	if err := c.LoadEncoded(recs); err != nil {
		t.Fatal(err)
	}
	q, err := c.Enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "target"})
	if err != nil {
		t.Fatal(err)
	}
	return want, q
}

func checkIDSet(t *testing.T, res frontend.Result, want map[uint64]bool, phase string) {
	t.Helper()
	if len(res.IDs) != len(want) {
		t.Fatalf("%s: got %d ids, want %d", phase, len(res.IDs), len(want))
	}
	for _, id := range res.IDs {
		if !want[id] {
			t.Fatalf("%s: unexpected id %d", phase, id)
		}
	}
}

// arrivals counts every sub-query that reached a node, completed or
// cancelled mid-match — the "dispatches" a quarantined node must not
// receive.
func arrivals(c *Cluster, i int) int64 {
	st := c.Nodes()[i].Stats()
	return st.Queries + st.Canceled
}

// TestClusterChaosFailureLoop drives the full loop: one node killed and
// one slow-walked; both frontends' suspicion reports push the
// coordinator over the quarantine threshold; the published view demotes
// the nodes from scheduling (zero dispatches while quarantined, results
// stay identical to the healthy run); then the slow node recovers, the
// probes' evidence un-quarantines it, and it is genuinely rescheduled.
func TestClusterChaosFailureLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e is not short")
	}
	const (
		nodes   = 8
		p       = 4 // node ranges 1/8 < 1/p−δ: §4.4 repair always covers
		killIdx = 3
		slowIdx = 5
	)
	c, err := Start(Options{
		Nodes: nodes, P: p, Seed: 11,
		Frontend: frontend.Config{
			Name:            "fe-0",
			PQ:              nodes, // every plan touches every node
			SubQueryTimeout: 120 * time.Millisecond,
			ProbeInterval:   25 * time.Millisecond,
		},
		Health: membership.HealthConfig{QuarantineThreshold: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fe2, err := c.AddFrontend(frontend.Config{
		Name:            "fe-1",
		PQ:              nodes,
		SubQueryTimeout: 120 * time.Millisecond,
		ProbeInterval:   25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	fes := []*frontend.Frontend{c.FE, fe2}
	want, q := chaosCorpus(t, c)

	// Healthy baseline: both frontends agree on the reference id set.
	for _, fe := range fes {
		res, err := fe.Execute(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		checkIDSet(t, res, want, "healthy baseline")
	}

	killID, slowID := int(c.ids[killIdx]), int(c.ids[slowIdx])
	if err := c.KillNode(killIdx); err != nil {
		t.Fatal(err)
	}
	c.Nodes()[slowIdx].SetDelay(time.Second)

	// Drive queries and the health loop until both nodes are
	// quarantined. Queries must stay correct throughout — the §4.4
	// repair path covers the failing arcs while evidence accumulates.
	quarantined := func(id int) bool {
		for _, qid := range c.Coord.Quarantined() {
			if qid == id {
				return true
			}
		}
		return false
	}
	deadline := time.Now().Add(15 * time.Second)
	for !quarantined(killID) || !quarantined(slowID) {
		if time.Now().After(deadline) {
			t.Fatalf("nodes never quarantined: quarantined=%v scores: kill=%.1f slow=%.1f",
				c.Coord.Quarantined(), c.Coord.HealthScore(c.ids[killIdx]), c.Coord.HealthScore(c.ids[slowIdx]))
		}
		for _, fe := range fes {
			res, err := fe.Execute(context.Background(), q)
			if err != nil {
				t.Fatalf("query during failure accumulation: %v", err)
			}
			checkIDSet(t, res, want, "during suspicion")
		}
		c.PumpHealth()
	}

	// The quarantine view must have reached the frontends (PumpHealth
	// re-pulls on epoch skew) and demoted both nodes.
	for i, fe := range fes {
		for _, id := range []int{killID, slowID} {
			if st := fe.Health()[id]; st != "quarantined" {
				t.Fatalf("frontend %d: node %d state %q, want quarantined", i, id, st)
			}
		}
	}

	// Zero dispatches while quarantined: let in-flight work drain, then
	// run a batch of queries on both frontends and require the
	// slow-walked node's arrival counter to stay flat. (The killed
	// node's server is gone; the slow one is the interesting assertion.)
	time.Sleep(300 * time.Millisecond)
	pre := arrivals(c, slowIdx)
	preFailures := 0
	for round := 0; round < 5; round++ {
		for _, fe := range fes {
			res, err := fe.Execute(context.Background(), q)
			if err != nil {
				t.Fatalf("query while quarantined: %v", err)
			}
			checkIDSet(t, res, want, "while quarantined")
			preFailures += res.Failures
		}
	}
	if got := arrivals(c, slowIdx); got != pre {
		t.Fatalf("quarantined node received %d dispatches", got-pre)
	}
	if preFailures != 0 {
		t.Errorf("queries against a quarantined-aware view still hit the failure path %d times", preFailures)
	}

	// Recovery: the slow node speeds back up. Background probes gather
	// the evidence, the health pump reports it, and the coordinator
	// must lift the quarantine and republish.
	c.Nodes()[slowIdx].SetDelay(0)
	for quarantined(slowID) {
		if time.Now().After(deadline) {
			t.Fatalf("slow node never un-quarantined; score %.1f", c.Coord.HealthScore(c.ids[slowIdx]))
		}
		time.Sleep(20 * time.Millisecond)
		c.PumpHealth()
	}
	if quarantined(killID) {
		t.Log("killed node correctly remains quarantined")
	} else {
		t.Error("killed node was un-quarantined without recovery evidence")
	}

	// And the recovered node must be genuinely rescheduled.
	recovered := arrivals(c, slowIdx)
	for arrivals(c, slowIdx) == recovered {
		if time.Now().After(deadline) {
			t.Fatalf("recovered node never rescheduled; health fe0=%v", c.FE.Health()[slowID])
		}
		for _, fe := range fes {
			res, err := fe.Execute(context.Background(), q)
			if err != nil {
				t.Fatalf("post-recovery query: %v", err)
			}
			checkIDSet(t, res, want, "post recovery")
		}
		c.PumpHealth()
	}
	t.Logf("loop closed: suspicion → quarantine (scores kill=%.1f slow=%.1f) → recovery → rescheduled",
		c.Coord.HealthScore(c.ids[killIdx]), c.Coord.HealthScore(c.ids[slowIdx]))
}

// TestClusterChaosHedgeBudget is the broad-slowness acceptance test:
// with EVERY node slow-walked past the hedge delay, an un-budgeted
// frontend would hedge every sub-query and double the offered load;
// the token bucket must keep hedged legs within HedgeBudgetFraction of
// primaries (plus the burst), while results stay correct.
func TestClusterChaosHedgeBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e is not short")
	}
	const (
		nodes    = 8
		p        = 4
		queries  = 40
		fraction = 0.05
		burst    = 2
	)
	c, err := Start(Options{
		Nodes: nodes, P: p, Seed: 13,
		Frontend: frontend.Config{
			PQ:                  nodes,
			SubQueryTimeout:     2 * time.Second,
			HedgeDelay:          5 * time.Millisecond,
			HedgeBudgetFraction: fraction,
			HedgeBudgetBurst:    burst,
			ProbeInterval:       -1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	want, q := chaosCorpus(t, c)

	// Global slowness: every sub-query crosses the hedge delay.
	for i := range c.Nodes() {
		c.Nodes()[i].SetDelay(15 * time.Millisecond)
	}
	var primaries, hedged, denied int
	for i := 0; i < queries; i++ {
		res, err := c.FE.Execute(context.Background(), q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		checkIDSet(t, res, want, "global slowness")
		primaries += res.SubQueries - res.HedgedSubs
		hedged += res.HedgedSubs
		denied += res.HedgesDenied
	}
	// The bucket admits fraction per primary plus the initial burst;
	// the idle trickle at fraction/sec adds well under one token over
	// this test's runtime — 2 tokens of slack absorbs it.
	limit := int(fraction*float64(primaries)) + burst + 2
	t.Logf("primaries=%d hedged=%d denied=%d (limit %d)", primaries, hedged, denied, limit)
	if hedged > limit {
		t.Fatalf("hedged legs %d exceed budget limit %d (fraction %.2f of %d primaries + burst %d)",
			hedged, limit, fraction, primaries, burst)
	}
	if denied == 0 {
		t.Fatal("budget never denied a hedge under global slowness; the rate limit is not engaging")
	}
	if hedged == 0 {
		t.Fatal("budget denied every hedge; burst tokens should have admitted some")
	}
}
