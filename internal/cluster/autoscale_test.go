package cluster

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"roar/internal/frontend"
	"roar/internal/membership"
)

// Elasticity end-to-end test: the autonomic controller closes the loop
// a human drives today. Under a sustained load ramp it powers the
// standby ring up (shed rate falls, result id sets stay identical to
// the healthy baseline throughout); a node killed and quarantined past
// the deadline is auto-decommissioned; and when the load drops the
// standby ring is powered back down. The controller clock is injected
// so cooldowns and the quarantine deadline advance deterministically.

// asClock is the shared fake clock for the health aggregator and the
// controller.
type asClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *asClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *asClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestClusterAutoscaleElasticity(t *testing.T) {
	if testing.Short() {
		t.Skip("elasticity e2e is not short")
	}
	const (
		nodes        = 8
		rings        = 2
		p            = 2
		workers      = 20 // closed-loop background load
		shedHW       = 5  // mean reported depth triggering overload
		probesPerTck = 4
		sustainTicks = 2
	)
	clk := &asClock{t: time.Unix(1_700_000_000, 0)}
	c, err := Start(Options{
		Nodes: nodes, Rings: rings, P: p, Seed: 17,
		FixedQueryCost: 4 * time.Millisecond,
		Frontend: frontend.Config{
			Name:            "fe-0",
			SubQueryTimeout: 150 * time.Millisecond,
			ProbeInterval:   25 * time.Millisecond,
			ShedHighWater:   shedHW,
		},
		Health: membership.HealthConfig{QuarantineThreshold: 2, Now: clk.Now},
		Autoscale: &membership.AutoscaleConfig{
			ShedRef:      1,    // one shed per tick is already pressure 1.0
			DepthRef:     1000, // de-emphasize the noisy depth gauge
			HighPressure: 1, LowPressure: 0.25,
			SustainTicks:       sustainTicks,
			Cooldown:           time.Minute,
			QuarantineDeadline: 30 * time.Second,
			Now:                clk.Now,
			Logf:               t.Logf,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	want, q := chaosCorpus(t, c)
	ctx := context.Background()

	// The standby ring starts powered down: half the fleet is dark.
	if err := c.SetRingEnabled(ctx, 1, false); err != nil {
		t.Fatal(err)
	}
	if got := len(c.FE.View().Nodes); got != nodes/2 {
		t.Fatalf("standby ring disabled but view has %d nodes", got)
	}

	// Static reference run (no controller involvement yet): every later
	// id set must equal this one.
	res, err := c.FE.Execute(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	checkIDSet(t, res, want, "static reference")

	// Background closed-loop load at PriorityNormal; every result is
	// checked against the reference set.
	var loadErr atomic.Value
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := c.FE.Execute(ctx, q)
				if err != nil {
					loadErr.CompareAndSwap(nil, err)
					return
				}
				if len(res.IDs) != len(want) {
					loadErr.CompareAndSwap(nil, errors.New("background query id set diverged"))
					return
				}
			}
		}()
	}
	checkLoad := func(phase string) {
		t.Helper()
		if e := loadErr.Load(); e != nil {
			t.Fatalf("%s: background load failed: %v", phase, e)
		}
	}
	// probeSheds fires n sequential PriorityLow probes and reports how
	// many were shed; successes are checked against the reference.
	probeSheds := func(n int, phase string) int {
		t.Helper()
		shed := 0
		for i := 0; i < n; i++ {
			res, err := c.FE.ExecuteOpts(ctx, q, frontend.ExecOptions{Priority: frontend.PriorityLow})
			switch {
			case errors.Is(err, frontend.ErrShed):
				shed++
			case err != nil:
				t.Fatalf("%s: low-priority probe: %v", phase, err)
			default:
				checkIDSet(t, res, want, phase)
			}
			time.Sleep(5 * time.Millisecond)
		}
		return shed
	}

	// --- Phase A: load ramp → the controller powers the ring up. ---
	time.Sleep(100 * time.Millisecond) // let depth gauges fill
	rampSheds, rampProbes, rangUp := 0, 0, false
	for tick := 0; tick < 40 && !rangUp; tick++ {
		rampSheds += probeSheds(probesPerTck, "during ramp")
		rampProbes += probesPerTck
		c.PumpHealth()
		clk.Advance(time.Second)
		ds, err := c.StepAutoscale(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range ds {
			if d.Action == membership.ActionRingUp {
				rangUp = true
			}
		}
		checkLoad("ramp")
	}
	if !rangUp {
		t.Fatalf("controller never powered the standby ring up (sheds %d/%d, pressure telemetry %+v)",
			rampSheds, rampProbes, c.Coord.FleetPressure())
	}
	if rampSheds == 0 {
		t.Fatal("ramp produced no sheds; the overload signal never engaged")
	}
	if got := len(c.FE.View().Nodes); got != nodes {
		t.Fatalf("after ring-up the view has %d nodes, want %d", got, nodes)
	}

	// --- Shed rate falls with the doubled capacity, same offered load. ---
	time.Sleep(150 * time.Millisecond) // fresh nodes absorb their share
	afterProbes := 20
	afterSheds := probeSheds(afterProbes, "after ring-up")
	rampRate := float64(rampSheds) / float64(rampProbes)
	afterRate := float64(afterSheds) / float64(afterProbes)
	t.Logf("shed rate: ramp %.2f (%d/%d) → after ring-up %.2f (%d/%d)",
		rampRate, rampSheds, rampProbes, afterRate, afterSheds, afterProbes)
	if afterRate >= rampRate {
		t.Fatalf("shed rate did not fall after ring-up: %.2f → %.2f", rampRate, afterRate)
	}
	checkLoad("after ring-up")

	// --- Phase B: kill a node (load still running, so the depth-driven
	// scheduler keeps exercising the whole fleet); the health loop
	// quarantines it, the controller decommissions it once the deadline
	// passes. ---
	var killIdx int
	killRing := map[int]int{}
	for _, ni := range c.Coord.View().Nodes {
		killRing[ni.ID] = ni.Ring
	}
	for i, id := range c.ids {
		if killRing[int(id)] == 0 {
			killIdx = i
			break
		}
	}
	killID := int(c.ids[killIdx])
	if err := c.KillNode(killIdx); err != nil {
		t.Fatal(err)
	}
	quarantined := func() bool {
		for _, qid := range c.Coord.Quarantined() {
			if qid == killID {
				return true
			}
		}
		return false
	}
	deadline := time.Now().Add(15 * time.Second)
	for !quarantined() {
		if time.Now().After(deadline) {
			t.Fatalf("node %d never quarantined; score %.1f", killID, c.Coord.HealthScore(c.ids[killIdx]))
		}
		res, err := c.FE.Execute(ctx, q)
		if err != nil {
			t.Fatalf("query during failure accumulation: %v", err)
		}
		checkIDSet(t, res, want, "during suspicion")
		c.PumpHealth()
	}
	// Deadline not yet reached: stepping must NOT decommission.
	ds, err := c.StepAutoscale(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		if d.Action == membership.ActionDecommission {
			t.Fatalf("decommissioned before the deadline: %+v", d)
		}
	}
	clk.Advance(45 * time.Second) // past the 30s quarantine deadline
	ds, err = c.StepAutoscale(ctx)
	if err != nil {
		t.Fatal(err)
	}
	decommissioned := false
	for _, d := range ds {
		if d.Action == membership.ActionDecommission && d.Node == killID {
			decommissioned = true
			if d.Err != "" {
				t.Fatalf("auto-decommission failed: %s", d.Err)
			}
		}
	}
	if !decommissioned {
		t.Fatalf("no auto-decommission past the deadline; decisions %+v, quarantined %v",
			ds, c.Coord.Quarantined())
	}
	for _, ni := range c.FE.View().Nodes {
		if ni.ID == killID {
			t.Fatal("decommissioned node still in the frontend's view")
		}
	}
	res, err = c.FE.Execute(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	checkIDSet(t, res, want, "after decommission")

	// --- Load drop. ---
	close(stop)
	wg.Wait()
	checkLoad("load stopped")

	// --- Phase C: with pressure gone and the cooldown elapsed, the
	// standby ring is powered back down (diurnal scale-down). ---
	clk.Advance(2 * time.Minute)
	rangDown := false
	for tick := 0; tick < sustainTicks+2 && !rangDown; tick++ {
		c.PumpHealth()
		clk.Advance(time.Second)
		ds, err := c.StepAutoscale(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range ds {
			if d.Action == membership.ActionRingDown {
				rangDown = true
			}
		}
	}
	if !rangDown {
		t.Fatalf("controller never powered the standby ring down; decisions %+v", c.AS.Decisions())
	}
	for _, ni := range c.FE.View().Nodes {
		if ni.Ring == 1 {
			t.Fatal("ring 1 still serving after ring-down")
		}
	}
	res, err = c.FE.Execute(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	checkIDSet(t, res, want, "after ring-down")
	t.Logf("elasticity loop closed: ramp → ring-up → shed fell (%.2f→%.2f) → quarantine → auto-decommission → ring-down",
		rampRate, afterRate)
}
