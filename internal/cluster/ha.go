// HA harness: the replicated-control-plane variant of the cluster
// package. Where Cluster wires one in-process Coordinator straight to
// the frontends, HACluster runs a replica set over real loopback
// wire servers, joins nodes through the failover client (so joins land
// on whoever holds the lease), and keeps the frontend synchronised via
// frontend.Syncer over the same failover path — the complete networked
// control plane that docs/HA.md describes, shrunk onto one machine for
// the leader-kill chaos tests.
package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"time"

	"roar/internal/coordclient"
	"roar/internal/frontend"
	"roar/internal/ingest"
	"roar/internal/membership"
	"roar/internal/node"
	"roar/internal/pps"
	"roar/internal/proto"
	"roar/internal/store"
	"roar/internal/wire"
)

// HAOptions configures a replicated-control-plane cluster.
type HAOptions struct {
	Replicas int // default 3
	Nodes    int
	Rings    int // default 1
	P        int

	// Lease/Heartbeat tune the election; chaos tests run them short.
	Lease     time.Duration
	Heartbeat time.Duration

	Frontend frontend.Config
	Health   membership.HealthConfig
	// IngestDir, when set, opens one durable ingest WAL shared by every
	// replica — like the shared backend store, the stand-in for the
	// paper's shared corpus storage. Only the leader drains it; a new
	// leader resumes from the replicated watermark.
	IngestDir string
	// IngestBatch caps records per drain round (0 = consumer default).
	IngestBatch int
	// OnIntentCommitted is the ChangeP crash-point hook, installed on
	// every replica (leaders fire it; see membership.ReplicaConfig).
	OnIntentCommitted func(newP int)
	// Logf receives replica role transitions (tests pass t.Logf).
	Logf func(format string, args ...any)

	Seed int64
}

// HACluster is a running system with a replicated control plane.
type HACluster struct {
	Enc *pps.Encoder
	// Replicas holds every control-plane replica, index-aligned with
	// ReplicaAddrs. Killed replicas stay in the slice but are stopped.
	Replicas []*membership.Replica
	FE       *frontend.Frontend
	Syncer   *frontend.Syncer
	// MCl is the failover client the frontend and the harness share.
	MCl *coordclient.Client

	replicaSrvs []*wire.Server
	addrs       []string
	killed      []bool
	nodes       []*node.Node
	nodeSrvs    []*wire.Server
	wal         *ingest.WAL
	rng         *rand.Rand
}

// StartHA builds and starts a replicated cluster: all replica
// listeners are bound first (each replica must know the full peer list
// up front), replicas share one backend store — the paper's shared
// NFS stand-in (§4.1) — and nodes join through the failover client.
func StartHA(opts HAOptions) (*HACluster, error) {
	if opts.Nodes <= 0 || opts.P <= 0 {
		return nil, fmt.Errorf("cluster: need Nodes and P")
	}
	if opts.Replicas <= 0 {
		opts.Replicas = 3
	}
	if opts.Rings <= 0 {
		opts.Rings = 1
	}
	enc := pps.NewEncoder(pps.TestKey(1), SlimEncoderConfig())
	c := &HACluster{Enc: enc, rng: rand.New(rand.NewSource(opts.Seed))}

	backend := store.New()
	if opts.IngestDir != "" {
		wal, err := ingest.Open(opts.IngestDir, ingest.Options{})
		if err != nil {
			return nil, err
		}
		c.wal = wal
	}
	lns := make([]net.Listener, opts.Replicas)
	c.addrs = make([]string, opts.Replicas)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, err
		}
		lns[i] = ln
		c.addrs[i] = ln.Addr().String()
	}
	c.killed = make([]bool, opts.Replicas)
	for i := range lns {
		rep, err := membership.NewReplica(membership.ReplicaConfig{
			Self:      c.addrs[i],
			Peers:     c.addrs,
			Lease:     opts.Lease,
			Heartbeat: opts.Heartbeat,
			Coordinator: membership.Config{
				Rings: opts.Rings, P: opts.P,
				Health:  opts.Health,
				Backend: backend,
				WAL:     c.wal,
			},
			Ingest:            membership.IngestConfig{Batch: opts.IngestBatch, Logf: opts.Logf},
			Logf:              opts.Logf,
			OnIntentCommitted: opts.OnIntentCommitted,
		})
		if err != nil {
			lns[i].Close()
			c.Close()
			return nil, err
		}
		d := wire.NewDispatcher()
		rep.RegisterHandlers(d)
		c.Replicas = append(c.Replicas, rep)
		c.replicaSrvs = append(c.replicaSrvs, wire.ServeListener(lns[i], d.Handle, wire.ServerConfig{}))
	}
	for _, rep := range c.Replicas {
		rep.Start()
	}
	if _, err := c.WaitLeader(10 * time.Second); err != nil {
		c.Close()
		return nil, err
	}

	mcl, err := coordclient.New(c.addrs, coordclient.Config{})
	if err != nil {
		c.Close()
		return nil, err
	}
	c.MCl = mcl

	for i := 0; i < opts.Nodes; i++ {
		n, err := node.New(node.Config{Params: enc.ServerParams()})
		if err != nil {
			c.Close()
			return nil, err
		}
		srv, err := n.Serve("127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, err
		}
		c.nodes = append(c.nodes, n)
		c.nodeSrvs = append(c.nodeSrvs, srv)
		var jr proto.JoinResp
		if err := mcl.Call(context.Background(), proto.MMemberJoin,
			proto.JoinReq{Addr: srv.Addr(), SpeedHint: 1}, &jr); err != nil {
			c.Close()
			return nil, err
		}
	}

	fe := frontend.New(opts.Frontend)
	c.FE = fe
	c.Syncer = frontend.NewSyncer(fe, mcl, frontend.SyncConfig{Logf: opts.Logf})
	if err := c.Syncer.PullViewOnce(context.Background()); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// Leader returns the current unique leader, or nil when there is none
// (an election in progress, or a split not yet resolved).
func (c *HACluster) Leader() *membership.Replica {
	var leader *membership.Replica
	for i, r := range c.Replicas {
		if !c.killed[i] && r.IsLeader() {
			if leader != nil {
				return nil
			}
			leader = r
		}
	}
	return leader
}

// WaitLeader blocks until exactly one live replica leads.
func (c *HACluster) WaitLeader(timeout time.Duration) (*membership.Replica, error) {
	deadline := time.Now().Add(timeout) //lint:allow wallclock — harness waits on real elections
	for {
		if l := c.Leader(); l != nil {
			return l, nil
		}
		if time.Now().After(deadline) { //lint:allow wallclock — harness waits on real elections
			return nil, fmt.Errorf("cluster: no leader within %v", timeout)
		}
		time.Sleep(5 * time.Millisecond) //lint:allow wallclock — harness waits on real elections
	}
}

// KillReplica crashes replica i: the replica stops (its coordinator
// and peer clients close) and its wire server goes down, so peers and
// clients see connection failures — the closest in-process stand-in
// for a killed coordinator process.
func (c *HACluster) KillReplica(i int) {
	if i < 0 || i >= len(c.Replicas) || c.killed[i] {
		return
	}
	c.killed[i] = true
	c.Replicas[i].Stop()
	c.replicaSrvs[i].Close()
}

// ReplicaIndex maps a replica to its slot, -1 when unknown.
func (c *HACluster) ReplicaIndex(r *membership.Replica) int {
	for i, cand := range c.Replicas {
		if cand == r {
			return i
		}
	}
	return -1
}

// LoadEncoded loads pre-encrypted records through the current leader,
// retrying across a failover.
func (c *HACluster) LoadEncoded(recs []pps.Encoded) error {
	var err error
	for attempt := 0; attempt < 20; attempt++ {
		l := c.Leader()
		if l == nil {
			if _, err = c.WaitLeader(10 * time.Second); err != nil {
				return err
			}
			continue
		}
		if err = l.LoadCorpus(context.Background(), recs); err == nil {
			return nil
		}
		time.Sleep(20 * time.Millisecond) //lint:allow wallclock — harness retries across real elections
	}
	return fmt.Errorf("cluster: corpus load never landed: %w", err)
}

// IngestPut appends records through the current leader's durable ingest
// WAL (requires HAOptions.IngestDir), failing over with the shared
// coordclient — a mid-append failover surfaces as a retriable error,
// which this helper absorbs (record-ID dedup makes re-appending safe).
func (c *HACluster) IngestPut(ctx context.Context, recs ...pps.Encoded) (proto.IngestResp, error) {
	var resp proto.IngestResp
	var err error
	for attempt := 0; attempt < 20; attempt++ {
		if resp, err = c.Syncer.Ingest(ctx, recs); err == nil {
			return resp, nil
		}
		select {
		case <-ctx.Done():
			return proto.IngestResp{}, ctx.Err()
		case <-time.After(20 * time.Millisecond): //lint:allow wallclock — harness retries across real elections
		}
	}
	return proto.IngestResp{}, fmt.Errorf("cluster: ingest append never landed: %w", err)
}

// WaitIngestDrained polls the leader's delivery watermark until it
// reaches seq or ctx ends, surviving failovers in between.
func (c *HACluster) WaitIngestDrained(ctx context.Context, seq uint64) error {
	for {
		if l := c.Leader(); l != nil {
			if drained, err := l.IngestDrained(); err == nil && drained >= seq {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("cluster: ingest drain did not reach %d: %w", seq, ctx.Err())
		case <-time.After(10 * time.Millisecond): //lint:allow wallclock — harness polls real drain progress
		}
	}
}

// Nodes returns the in-process node handles.
func (c *HACluster) Nodes() []*node.Node { return c.nodes }

// Close tears everything down.
func (c *HACluster) Close() {
	if c.Syncer != nil {
		c.Syncer.Stop()
	}
	if c.FE != nil {
		c.FE.Close()
	}
	if c.MCl != nil {
		c.MCl.Close()
	}
	for i := range c.Replicas {
		if !c.killed[i] {
			c.killed[i] = true
			c.Replicas[i].Stop()
			c.replicaSrvs[i].Close()
		}
	}
	for _, s := range c.nodeSrvs {
		if s != nil {
			s.Close()
		}
	}
	if c.wal != nil {
		c.wal.Close()
	}
}
