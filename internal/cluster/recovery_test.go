package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"roar/internal/frontend"
	"roar/internal/pps"
)

// TestDelayedNodeRecoversAndIsReused is the end-to-end recovery test:
// a node that is delayed (not dead) times out, is suspected and
// scheduled around, then — once it speeds back up — is cleared by the
// background probe and actually receives sub-queries again, with no
// view change and no process restart. This is the behaviour the seed's
// one-way failure map made impossible.
func TestDelayedNodeRecoversAndIsReused(t *testing.T) {
	const (
		nodes = 8
		p     = 4 // pq = n: every plan touches every node, and node
		// ranges (1/8) stay below the 1/p−δ bracket span so the §4.4
		// fallback around the suspected node always succeeds.
	)
	c, err := Start(Options{
		Nodes: nodes, P: p, Seed: 9,
		Frontend: frontend.Config{
			PQ:              nodes,
			SubQueryTimeout: 150 * time.Millisecond,
			ProbeInterval:   30 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	want := map[uint64]bool{}
	var recs []pps.Encoded
	for i := 0; i < 60; i++ {
		kw := "filler"
		if i%3 == 0 {
			kw = "target"
		}
		id := uint64(i+1) << 32
		rec, err := c.Enc.EncryptDocument(pps.Document{
			ID: id, Path: fmt.Sprintf("/d/%d", i), Size: int64(i),
			Modified: time.Unix(1.2e9, 0), Keywords: []string{kw},
		})
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
		if kw == "target" {
			want[id] = true
		}
	}
	if err := c.LoadEncoded(recs); err != nil {
		t.Fatal(err)
	}
	q, err := c.Enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "target"})
	if err != nil {
		t.Fatal(err)
	}
	checkComplete := func(res frontend.Result) {
		t.Helper()
		got := map[uint64]bool{}
		for i, id := range res.IDs {
			if i > 0 && res.IDs[i] <= res.IDs[i-1] {
				t.Fatalf("ids not sorted unique: %v", res.IDs)
			}
			got[id] = true
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("missing id %d (%d/%d returned)", id, len(res.IDs), len(want))
			}
		}
	}

	const slowIdx = 1
	slowID := int(c.ids[slowIdx])

	// Delay — don't kill — one node beyond the failure timer.
	c.Nodes()[slowIdx].SetDelay(time.Second)
	res, err := c.FE.Execute(context.Background(), q)
	if err != nil {
		t.Fatalf("query with delayed node: %v", err)
	}
	checkComplete(res)
	if res.Failures == 0 {
		t.Fatal("delayed node never hit the failure path")
	}
	if got := c.FE.FailedNodes(); len(got) != 1 || got[0] != slowID {
		t.Fatalf("FailedNodes = %v, want [%d]", got, slowID)
	}
	// While suspected, queries keep completing around it.
	res, err = c.FE.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(res)
	preQueries := c.Nodes()[slowIdx].Stats().Queries

	// The node speeds back up: the probe must clear it without help.
	c.Nodes()[slowIdx].SetDelay(0)
	deadline := time.Now().Add(3 * time.Second)
	for len(c.FE.FailedNodes()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("suspicion never cleared; health = %v", c.FE.Health())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// And it must be re-used for real work again.
	for c.Nodes()[slowIdx].Stats().Queries == preQueries {
		if time.Now().After(deadline) {
			t.Fatalf("recovered node never rescheduled; health = %v", c.FE.Health())
		}
		res, err := c.FE.Execute(context.Background(), q)
		if err != nil {
			t.Fatalf("post-recovery query: %v", err)
		}
		checkComplete(res)
	}
	if st := c.FE.Health()[slowID]; st != "healthy" {
		t.Errorf("recovered node state = %q, want healthy", st)
	}
	t.Logf("node %d: suspected on timeout, probed back, re-used (%d -> %d completed sub-queries)",
		slowID, preQueries, c.Nodes()[slowIdx].Stats().Queries)
}
