package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"roar/internal/frontend"
	"roar/internal/pps"
)

// Chaos end-to-end tests for the durable ingest pipeline: records are
// accepted into the WAL, a node (or the coordinator itself) dies
// mid-drain, and the system must converge to the exact id set of an
// undisturbed run — with duplicate deliveries never changing a node's
// record count.

// ingestCorpus builds the 60-document chaos corpus (every 3rd document
// carries the target keyword) WITHOUT loading it — the tests push it
// through the async ingest path themselves.
func ingestCorpus(t *testing.T, enc *pps.Encoder) ([]pps.Encoded, map[uint64]bool, pps.Query) {
	t.Helper()
	want := map[uint64]bool{}
	var recs []pps.Encoded
	for i := 0; i < 60; i++ {
		kw := "filler"
		if i%3 == 0 {
			kw = "target"
		}
		id := uint64(i+1) << 32
		rec, err := enc.EncryptDocument(pps.Document{
			ID: id, Path: fmt.Sprintf("/d/%d", i), Size: int64(i),
			Modified: time.Unix(1.2e9, 0), Keywords: []string{kw},
		})
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
		if kw == "target" {
			want[id] = true
		}
	}
	q, err := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "target"})
	if err != nil {
		t.Fatal(err)
	}
	return recs, want, q
}

// liveStoreLens snapshots every node's record count except the skipped
// (killed) index; -1 skips nothing.
func liveStoreLens(c *Cluster, skip int) map[int]int {
	out := map[int]int{}
	for i, n := range c.Nodes() {
		if i == skip {
			continue
		}
		out[i] = n.Store().Len()
	}
	return out
}

// TestClusterIngestReplay is the pipeline's crash acceptance test: a
// record acknowledged by the WAL before a node crash must be queryable
// after decommission + replay. A node is killed mid-drain, the batch
// stalls against it, and the decommission re-routes delivery to the
// replacement holders — the id set must come out identical to a
// no-failure run, and re-delivering the whole corpus must not change
// any node's record count.
func TestClusterIngestReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e is not short")
	}
	const (
		nodes   = 8
		p       = 4 // node ranges 1/8 < 1/p−δ: §4.4 repair always covers
		killIdx = 3
	)
	c, err := Start(Options{
		Nodes: nodes, P: p, Seed: 17,
		IngestDir:   t.TempDir(),
		IngestBatch: 4, // several drain rounds per phase: the kill lands mid-drain
		Frontend: frontend.Config{
			Name:            "fe-ingest",
			PQ:              nodes,
			SubQueryTimeout: 250 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	recs, want, q := ingestCorpus(t, c.Enc)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Healthy phase: the first half drains and is queryable — the
	// no-failure reference behaviour.
	seq, err := c.IngestPut(ctx, recs[:30]...)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitIngestDrained(ctx, seq); err != nil {
		t.Fatal(err)
	}
	wantHalf := map[uint64]bool{}
	for i := 0; i < 30; i += 3 {
		wantHalf[uint64(i+1)<<32] = true
	}
	res, err := c.Query(ctx, pps.And, pps.Predicate{Kind: pps.Keyword, Word: "target"})
	if err != nil {
		t.Fatal(err)
	}
	checkIDSet(t, res, wantHalf, "healthy drain")

	// Crash phase: accept the second half into the WAL, then kill a
	// node while the drain is in flight. Batches routed to the dead
	// node stall — acceptance stays durable, delivery waits.
	seq, err = c.IngestPut(ctx, recs[30:]...)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.KillNode(killIdx); err != nil {
		t.Fatal(err)
	}

	// Decommission the dead node. Replay needs no special path: the
	// next delivery attempt re-routes to the arc's new holders and the
	// WAL replays the affected records into them.
	if err := c.RecoverFailure(ctx, killIdx); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitIngestDrained(ctx, seq); err != nil {
		t.Fatalf("drain never converged after decommission: %v", err)
	}

	// Every record accepted before the crash is queryable, and the id
	// set is exactly the no-failure set.
	res, err = c.FE.Execute(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	checkIDSet(t, res, want, "after decommission + replay")

	// Idempotency: re-deliver the ENTIRE corpus. Duplicate deliveries
	// must never change a node's record count.
	before := liveStoreLens(c, killIdx)
	seq, err = c.IngestPut(ctx, recs...)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitIngestDrained(ctx, seq); err != nil {
		t.Fatal(err)
	}
	after := liveStoreLens(c, killIdx)
	for i, n := range before {
		if after[i] != n {
			t.Fatalf("duplicate delivery changed node %d record count %d→%d", i, n, after[i])
		}
	}
	res, err = c.FE.Execute(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	checkIDSet(t, res, want, "after duplicate re-delivery")
}

// TestClusterIngestFailoverResume kills the control-plane leader while
// it is draining: the new leader must resume the drain from the
// log-replicated watermark against the shared WAL, re-delivering at
// most the un-replicated tail — which node-side dedup absorbs. The
// producer's appends fail over through the coordclient transport.
func TestClusterIngestFailoverResume(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e is not short")
	}
	const (
		nodes = 6
		p     = 3
	)
	hc, err := StartHA(HAOptions{
		Replicas: 3, Nodes: nodes, P: p, Seed: 29,
		Lease:       250 * time.Millisecond,
		Heartbeat:   60 * time.Millisecond,
		IngestDir:   t.TempDir(),
		IngestBatch: 4,
		Frontend: frontend.Config{
			Name:            "fe-ha-ingest",
			PQ:              nodes,
			SubQueryTimeout: 250 * time.Millisecond,
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	recs, want, q := ingestCorpus(t, hc.Enc)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	leader, err := hc.WaitLeader(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	leaderIdx := hc.ReplicaIndex(leader)

	// Accept the whole corpus through the leader's WAL, then kill the
	// leader while its consumer is mid-drain.
	var lastSeq uint64
	for at := 0; at < len(recs); at += 10 {
		resp, err := hc.IngestPut(ctx, recs[at:at+10]...)
		if err != nil {
			t.Fatalf("ingest batch at %d: %v", at, err)
		}
		lastSeq = resp.Seq
	}
	killedAt := time.Now()
	hc.KillReplica(leaderIdx)

	next, err := hc.WaitLeader(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if next == leader {
		t.Fatal("killed leader still leads")
	}
	t.Logf("failover took %v; new leader resumes drain from replicated watermark", time.Since(killedAt))

	// The new leader drains the rest from the shared WAL.
	if err := hc.WaitIngestDrained(ctx, lastSeq); err != nil {
		t.Fatalf("drain never resumed on the new leader: %v", err)
	}

	// The frontend fails over and the id set is exactly the
	// no-failure set.
	if err := hc.Syncer.PullViewOnce(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := hc.FE.Execute(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	checkIDSet(t, res, want, "after leader failover")

	// Re-deliver everything through the NEW leader: at-least-once
	// duplicates (including the watermark lag re-delivered at takeover)
	// must never change a node's record count.
	before := make([]int, nodes)
	for i, n := range hc.Nodes() {
		before[i] = n.Store().Len()
	}
	resp, err := hc.IngestPut(ctx, recs...)
	if err != nil {
		t.Fatal(err)
	}
	if err := hc.WaitIngestDrained(ctx, resp.Seq); err != nil {
		t.Fatal(err)
	}
	for i, n := range hc.Nodes() {
		if got := n.Store().Len(); got != before[i] {
			t.Fatalf("duplicate delivery changed node %d record count %d→%d", i, before[i], got)
		}
	}
	res, err = hc.FE.Execute(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	checkIDSet(t, res, want, "after duplicate re-delivery")
}
