package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"roar/internal/frontend"
	"roar/internal/pps"
	"roar/internal/ring"
	"roar/internal/workload"
)

// expectKeyword returns the ground-truth ids for a keyword query.
func expectKeyword(docs []pps.Document, word string) map[uint64]bool {
	out := map[uint64]bool{}
	for _, d := range docs {
		for _, k := range d.Keywords {
			if k == word {
				out[d.ID] = true
				break
			}
		}
	}
	return out
}

// checkResult verifies completeness (no false negatives — a coverage
// violation would be a correctness bug) and tolerates the Bloom
// filter's designed ~1e-5 false-positive rate plus duplicates-free
// output.
func checkResult(t *testing.T, res frontend.Result, want map[uint64]bool) {
	t.Helper()
	got := map[uint64]bool{}
	for i, id := range res.IDs {
		if got[id] {
			t.Fatalf("duplicate id %d in results", id)
		}
		got[id] = true
		_ = i
	}
	for id := range want {
		if !got[id] {
			t.Fatalf("missing expected match %d (coverage violation)", id)
		}
	}
	extra := 0
	for id := range got {
		if !want[id] {
			extra++
		}
	}
	if extra > 3 {
		t.Fatalf("%d unexpected matches (Bloom fp budget exceeded)", extra)
	}
}

func pickWord(docs []pps.Document) string {
	counts := map[string]int{}
	for _, d := range docs {
		for _, k := range d.Keywords {
			counts[k]++
		}
	}
	best, bestN := "", 0
	for w, n := range counts {
		if n > bestN {
			best, bestN = w, n
		}
	}
	return best
}

// The corpus is encrypted once and shared by every test: the encoder
// key is fixed in Start, so the records are valid for any cluster.
var (
	corpusOnce sync.Once
	corpusDocs []pps.Document
	corpusRecs []pps.Encoded
	corpusErr  error
)

func sharedCorpus(t *testing.T) ([]pps.Document, []pps.Encoded) {
	t.Helper()
	corpusOnce.Do(func() {
		enc := pps.NewEncoder(pps.TestKey(1), SlimEncoderConfig())
		gen := workload.NewCorpus(2000, 7)
		files := gen.Generate(1200)
		rng := rand.New(rand.NewSource(99))
		for _, f := range files {
			kws := f.Keywords
			if len(kws) > 4 {
				kws = kws[:4]
			}
			d := pps.Document{ID: rng.Uint64(), Path: f.Path, Size: f.Size,
				Modified: f.Modified, Keywords: kws}
			r, err := enc.EncryptDocument(d)
			if err != nil {
				corpusErr = err
				return
			}
			corpusDocs = append(corpusDocs, d)
			corpusRecs = append(corpusRecs, r)
		}
	})
	if corpusErr != nil {
		t.Fatal(corpusErr)
	}
	return corpusDocs, corpusRecs
}

func startCluster(t *testing.T, opts Options) (*Cluster, []pps.Document) {
	t.Helper()
	docs, recs := sharedCorpus(t)
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.LoadEncoded(recs); err != nil {
		t.Fatal(err)
	}
	return c, docs
}

func TestClusterBasicQuery(t *testing.T) {
	c, docs := startCluster(t, Options{Nodes: 12, P: 4, Seed: 1})
	word := pickWord(docs)
	res, err := c.Query(context.Background(), pps.And, pps.Predicate{Kind: pps.Keyword, Word: word})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, expectKeyword(docs, word))
	if res.SubQueries != 4 {
		t.Errorf("sent %d sub-queries, want p=4", res.SubQueries)
	}
	if res.Scanned < len(docs)-10 {
		t.Errorf("scanned %d, want ~%d (full harvest)", res.Scanned, len(docs))
	}
	if res.Delay <= 0 || res.Schedule <= 0 {
		t.Error("breakdown timings should be positive")
	}
}

func TestClusterRepeatedQueriesStable(t *testing.T) {
	c, docs := startCluster(t, Options{Nodes: 10, P: 5, Seed: 2})
	word := pickWord(docs)
	want := expectKeyword(docs, word)
	for i := 0; i < 10; i++ {
		res, err := c.Query(context.Background(), pps.And, pps.Predicate{Kind: pps.Keyword, Word: word})
		if err != nil {
			t.Fatal(err)
		}
		checkResult(t, res, want)
	}
	bd := c.FE.DelayBreakdown()
	if bd.Total.N != 10 {
		t.Errorf("breakdown recorded %d queries, want 10", bd.Total.N)
	}
}

func TestClusterPQAboveP(t *testing.T) {
	c, docs := startCluster(t, Options{Nodes: 12, P: 3, Seed: 3,
		Frontend: frontend.Config{PQ: 9}})
	word := pickWord(docs)
	res, err := c.Query(context.Background(), pps.And, pps.Predicate{Kind: pps.Keyword, Word: word})
	if err != nil {
		t.Fatal(err)
	}
	if res.SubQueries != 9 {
		t.Errorf("sent %d sub-queries, want pq=9", res.SubQueries)
	}
	checkResult(t, res, expectKeyword(docs, word))
	// The dedup rule must also keep Scanned ≈ corpus (each object
	// matched exactly once despite overlapping replica sets).
	if res.Scanned > len(docs)+10 {
		t.Errorf("scanned %d > corpus %d: duplicate matching work", res.Scanned, len(docs))
	}
}

func TestClusterMultiPredicate(t *testing.T) {
	c, docs := startCluster(t, Options{Nodes: 8, P: 4, Seed: 4})
	word := pickWord(docs)
	res, err := c.Query(context.Background(), pps.And,
		pps.Predicate{Kind: pps.Keyword, Word: word},
		pps.Predicate{Kind: pps.SizeGreater, Value: 0})
	if err != nil {
		t.Fatal(err)
	}
	// size > 0 is satisfied by every document with size above the first
	// reference point; expect a subset of the keyword matches.
	want := expectKeyword(docs, word)
	got := map[uint64]bool{}
	for _, id := range res.IDs {
		got[id] = true
	}
	for id := range got {
		if !want[id] {
			t.Fatalf("AND result %d not in keyword set", id)
		}
	}
}

func TestClusterChangePUp(t *testing.T) {
	c, docs := startCluster(t, Options{Nodes: 12, P: 3, Seed: 5})
	word := pickWord(docs)
	want := expectKeyword(docs, word)
	before := c.Coord.ObjectsPushed()
	// Increase p (drop replicas): immediate, free.
	if err := c.Coord.ChangeP(context.Background(), 6); err != nil {
		t.Fatal(err)
	}
	if pushed := c.Coord.ObjectsPushed() - before; pushed != 0 {
		t.Errorf("increasing p pushed %d objects, want 0", pushed)
	}
	if err := c.SyncView(); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(context.Background(), pps.And, pps.Predicate{Kind: pps.Keyword, Word: word})
	if err != nil {
		t.Fatal(err)
	}
	if res.SubQueries != 6 {
		t.Errorf("after p change sent %d sub-queries, want 6", res.SubQueries)
	}
	checkResult(t, res, want)
}

func TestClusterChangePDown(t *testing.T) {
	c, docs := startCluster(t, Options{Nodes: 12, P: 6, Seed: 6})
	word := pickWord(docs)
	want := expectKeyword(docs, word)
	before := c.Coord.ObjectsPushed()
	// Decrease p (add replicas): data must move before the switch.
	if err := c.Coord.ChangeP(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	if pushed := c.Coord.ObjectsPushed() - before; pushed <= 0 {
		t.Error("decreasing p must transfer replicas")
	}
	if err := c.SyncView(); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(context.Background(), pps.And, pps.Predicate{Kind: pps.Keyword, Word: word})
	if err != nil {
		t.Fatal(err)
	}
	if res.SubQueries != 3 {
		t.Errorf("after p change sent %d sub-queries, want 3", res.SubQueries)
	}
	checkResult(t, res, want)
}

func TestClusterNodeFailure(t *testing.T) {
	c, docs := startCluster(t, Options{Nodes: 12, P: 4, Seed: 7,
		Frontend: frontend.Config{SubQueryTimeout: 500 * time.Millisecond}})
	word := pickWord(docs)
	want := expectKeyword(docs, word)
	// Crash a node without telling anyone.
	if err := c.KillNode(3); err != nil {
		t.Fatal(err)
	}
	// Queries must still return complete results via the §4.4 fallback;
	// the first query eats the detection timeout.
	for i := 0; i < 3; i++ {
		res, err := c.Query(context.Background(), pps.And, pps.Predicate{Kind: pps.Keyword, Word: word})
		if err != nil {
			t.Fatalf("query %d after failure: %v", i, err)
		}
		checkResult(t, res, want)
	}
	if len(c.FE.FailedNodes()) == 0 {
		t.Error("frontend should have detected the failure")
	}
	// Long-term recovery through membership redistributes the range.
	if err := c.RecoverFailure(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(context.Background(), pps.And, pps.Predicate{Kind: pps.Keyword, Word: word})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, want)
	if res.Failures != 0 {
		t.Errorf("after recovery queries should not see failures, got %d", res.Failures)
	}
}

func TestClusterJoinLeave(t *testing.T) {
	c, docs := startCluster(t, Options{Nodes: 8, P: 4, Seed: 8})
	word := pickWord(docs)
	want := expectKeyword(docs, word)
	// Graceful leave.
	if err := c.Coord.Leave(context.Background(), c.NodeIDs()[2]); err != nil {
		t.Fatal(err)
	}
	if err := c.SyncView(); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(context.Background(), pps.And, pps.Predicate{Kind: pps.Keyword, Word: word})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, want)
}

func TestClusterBalanceStep(t *testing.T) {
	c, docs := startCluster(t, Options{Nodes: 8, P: 4, Seed: 9})
	word := pickWord(docs)
	want := expectKeyword(docs, word)
	// Pretend one node is much more loaded; balancing should move
	// boundaries and keep correctness.
	loads := map[ring.NodeID]float64{}
	for i, id := range c.NodeIDs() {
		loads[id] = 1
		if i == 0 {
			loads[id] = 10
		}
	}
	moves, err := c.Coord.BalanceStep(context.Background(), loads, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if moves == 0 {
		t.Error("a 10x load imbalance should trigger at least one move")
	}
	if err := c.SyncView(); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(context.Background(), pps.And, pps.Predicate{Kind: pps.Keyword, Word: word})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, want)
}

func TestClusterTwoRingsAndPowerCycle(t *testing.T) {
	c, docs := startCluster(t, Options{Nodes: 12, Rings: 2, P: 4, Seed: 10})
	word := pickWord(docs)
	want := expectKeyword(docs, word)
	res, err := c.Query(context.Background(), pps.And, pps.Predicate{Kind: pps.Keyword, Word: word})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, want)
	// Power down ring 1; ring 0 alone holds all data.
	if err := c.Coord.SetRingEnabled(context.Background(), 1, false); err != nil {
		t.Fatal(err)
	}
	if err := c.SyncView(); err != nil {
		t.Fatal(err)
	}
	res, err = c.Query(context.Background(), pps.And, pps.Predicate{Kind: pps.Keyword, Word: word})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, want)
	// Cannot power down the last ring.
	if err := c.Coord.SetRingEnabled(context.Background(), 0, false); err == nil {
		t.Error("disabling the last ring must fail")
	}
	// Power ring 1 back up.
	if err := c.Coord.SetRingEnabled(context.Background(), 1, true); err != nil {
		t.Fatal(err)
	}
	if err := c.SyncView(); err != nil {
		t.Fatal(err)
	}
	res, err = c.Query(context.Background(), pps.And, pps.Predicate{Kind: pps.Keyword, Word: word})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, want)
}

func TestClusterAddObject(t *testing.T) {
	c, docs := startCluster(t, Options{Nodes: 9, P: 3, Seed: 11})
	doc := pps.Document{
		ID:       123456789,
		Path:     "/new/file",
		Size:     10,
		Modified: docs[0].Modified,
		Keywords: []string{"freshly-added"},
	}
	rec, err := c.Enc.EncryptDocument(doc)
	if err != nil {
		t.Fatal(err)
	}
	replicas, err := c.Coord.AddObject(context.Background(), rec)
	if err != nil {
		t.Fatal(err)
	}
	// r = n/p = 3; the replication arc touches r or r+1 nodes.
	if replicas < 3 || replicas > 5 {
		t.Errorf("object stored on %d nodes, want ~r+1=4", replicas)
	}
	res, err := c.Query(context.Background(), pps.And, pps.Predicate{Kind: pps.Keyword, Word: "freshly-added"})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range res.IDs {
		if id == doc.ID {
			found = true
		}
	}
	if !found {
		t.Error("freshly added object not returned by query")
	}
}

func TestClusterThrottledNodes(t *testing.T) {
	speeds := make([]float64, 6)
	for i := range speeds {
		speeds[i] = 100000 // 100k objects/s
	}
	c, docs := startCluster(t, Options{Nodes: 6, P: 3, Seed: 12, NodeSpeeds: speeds})
	word := pickWord(docs)
	res, err := c.Query(context.Background(), pps.And, pps.Predicate{Kind: pps.Keyword, Word: word})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, expectKeyword(docs, word))
	// 1500 docs across 3 sub-queries at 100k obj/s → ≥ 5ms total match.
	if res.Delay < 3*time.Millisecond {
		t.Errorf("throttled query finished in %v; limiter inactive?", res.Delay)
	}
}

// TestMultipleFrontends exercises §4.8.3: several front-end servers
// schedule independently against the same view, each learning speeds on
// its own, and all return identical complete results.
func TestMultipleFrontends(t *testing.T) {
	c, docs := startCluster(t, Options{Nodes: 10, P: 5, Seed: 20})
	word := pickWord(docs)
	want := expectKeyword(docs, word)
	fe2 := frontend.New(frontend.Config{})
	defer fe2.Close()
	if err := fe2.ApplyView(c.Coord.View()); err != nil {
		t.Fatal(err)
	}
	q, err := c.Enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: word})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for _, fe := range []*frontend.Frontend{c.FE, fe2} {
		wg.Add(1)
		go func(fe *frontend.Frontend) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				res, err := fe.Execute(context.Background(), q)
				if err != nil {
					errs <- err
					return
				}
				got := map[uint64]bool{}
				for _, id := range res.IDs {
					got[id] = true
				}
				for id := range want {
					if !got[id] {
						errs <- fmt.Errorf("frontend missed expected match %d", id)
						return
					}
				}
			}
		}(fe)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestFrontendRejectsWithoutView(t *testing.T) {
	fe := frontend.New(frontend.Config{})
	defer fe.Close()
	enc := pps.NewEncoder(pps.TestKey(1), SlimEncoderConfig())
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "x"})
	if _, err := fe.Execute(context.Background(), q); err == nil {
		t.Error("execute without view must fail")
	}
}
