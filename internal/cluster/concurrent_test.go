package cluster

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"roar/internal/frontend"
	"roar/internal/pps"
)

// TestConcurrentExecuteWithNodeFailure is the race-focused end-to-end
// test of the execution pipeline: 32 concurrent clients drive a real
// TCP cluster through the pooled, admission-controlled frontend while a
// node is killed mid-flight. Every query must return the complete
// result set (replicas make the killed node's arc recoverable, §4.4)
// with no duplicate ids (incremental merge dedup), and the frontend
// must record the failure.
func TestConcurrentExecuteWithNodeFailure(t *testing.T) {
	const (
		nodes   = 9
		p       = 3 // r = 3 replicas: one failure cannot lose data
		clients = 32
	)
	c, err := Start(Options{
		Nodes: nodes, P: p, Seed: 5,
		Frontend: frontend.Config{
			SubQueryTimeout: 400 * time.Millisecond,
			PoolSize:        2,
			MaxInFlight:     16,
			DispatchWorkers: 64,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A small corpus with a known answer: 40 of 120 documents carry the
	// target keyword.
	want := map[uint64]bool{}
	var recs []pps.Encoded
	for i := 0; i < 120; i++ {
		kw := "filler"
		if i%3 == 0 {
			kw = "target"
		}
		id := uint64(i+1) << 32
		rec, err := c.Enc.EncryptDocument(pps.Document{
			ID: id, Path: fmt.Sprintf("/d/%d", i), Size: int64(i),
			Modified: time.Unix(1.2e9, 0), Keywords: []string{kw},
		})
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
		if kw == "target" {
			want[id] = true
		}
	}
	if err := c.LoadEncoded(recs); err != nil {
		t.Fatal(err)
	}
	q, err := c.Enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "target"})
	if err != nil {
		t.Fatal(err)
	}

	check := func(res frontend.Result) error {
		for i := 1; i < len(res.IDs); i++ {
			if res.IDs[i] <= res.IDs[i-1] {
				return fmt.Errorf("ids not strictly increasing at %d: %v", i, res.IDs[i])
			}
		}
		got := map[uint64]bool{}
		for _, id := range res.IDs {
			got[id] = true
		}
		for id := range want {
			if !got[id] {
				return fmt.Errorf("missing id %d (%d/%d returned)", id, len(res.IDs), len(want))
			}
		}
		return nil
	}

	const killIdx = 2
	var (
		wg         sync.WaitGroup
		sawFailure atomic.Bool
		queries    atomic.Int64
		afterKill  atomic.Int64
		killedAt   = make(chan struct{})
		deadline   = time.Now().Add(1500 * time.Millisecond)
		errCh      = make(chan error, clients)
	)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				res, err := c.FE.Execute(context.Background(), q)
				if err != nil {
					errCh <- fmt.Errorf("execute: %w", err)
					return
				}
				if err := check(res); err != nil {
					errCh <- err
					return
				}
				if res.Failures > 0 {
					sawFailure.Store(true)
				}
				queries.Add(1)
				select {
				case <-killedAt:
					afterKill.Add(1)
				default:
				}
			}
		}()
	}
	// Kill a node while the 32 clients are in full flight.
	time.Sleep(150 * time.Millisecond)
	if err := c.KillNode(killIdx); err != nil {
		t.Fatal(err)
	}
	close(killedAt)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		return
	}
	if !sawFailure.Load() {
		t.Error("no query ever observed the failure/fallback path")
	}
	if got := c.FE.FailedNodes(); len(got) == 0 {
		t.Error("frontend never recorded the killed node")
	} else if killed := int(c.ids[killIdx]); got[0] != killed {
		t.Errorf("failed nodes = %v, want [%d]", got, killed)
	}
	if afterKill.Load() == 0 {
		t.Error("no query completed after the kill; failure window not exercised")
	}
	t.Logf("%d queries (%d after kill) stayed complete and duplicate-free across a mid-flight node failure",
		queries.Load(), afterKill.Load())

	// The surviving nodes must have overlapped work: with 32 concurrent
	// clients the per-node peak concurrency cannot be 1 everywhere.
	var peak int64
	for i, n := range c.Nodes() {
		if i == killIdx {
			continue
		}
		if s := n.Stats(); s.PeakConcurrency > peak {
			peak = s.PeakConcurrency
		}
	}
	if peak < 2 {
		t.Errorf("peak node concurrency = %d; pipeline never overlapped sub-queries", peak)
	}
}
