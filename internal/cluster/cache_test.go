package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"roar/internal/frontend"
	"roar/internal/pps"
	"roar/internal/workload"
)

// End-to-end economics tests: the result cache must convert Zipf repeat
// traffic into hits WITHOUT ever changing an answer (the cached
// frontend's id sets are compared against an uncached frontend's at
// every step), and the per-tenant quotas must keep a hot tenant from
// starving a well-behaved one.

func idSet(r frontend.Result) map[uint64]bool {
	m := make(map[uint64]bool, len(r.IDs))
	for _, id := range r.IDs {
		m[id] = true
	}
	return m
}

func sameIDs(a, b map[uint64]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for id := range a {
		if !b[id] {
			return false
		}
	}
	return true
}

// distinctWords collects n distinct corpus keywords (the query universe).
func distinctWords(docs []pps.Document, n int) []string {
	seen := map[string]bool{}
	var words []string
	for _, d := range docs {
		for _, k := range d.Keywords {
			if !seen[k] {
				seen[k] = true
				words = append(words, k)
				if len(words) == n {
					return words
				}
			}
		}
	}
	return words
}

// TestCacheZipfHitRatio drives a Zipf(s=1.0) query stream at a cached
// frontend and an uncached one side by side: every answer must be
// identical, and the warm hit ratio must clear the 30% economics floor.
func TestCacheZipfHitRatio(t *testing.T) {
	c, docs := startCluster(t, Options{
		Nodes: 8, P: 2, Seed: 3,
		Frontend: frontend.Config{CacheBudget: 4 << 20},
	})
	plainFE, err := c.AddFrontend(frontend.Config{})
	if err != nil {
		t.Fatal(err)
	}
	words := distinctWords(docs, 30)
	if len(words) < 10 {
		t.Fatalf("corpus too small: %d distinct words", len(words))
	}
	rng := rand.New(rand.NewSource(11))
	qs := workload.NewQueryStream(uint64(len(words)), 1.0, rng)

	const draws = 200
	for i := 0; i < draws; i++ {
		word := words[qs.Next()]
		q, err := c.Enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: word})
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.FE.Query(context.Background(), frontend.QuerySpec{Enc: q, Tenant: "zipf"})
		if err != nil {
			t.Fatalf("draw %d (%q): %v", i, word, err)
		}
		want, err := plainFE.Query(context.Background(), frontend.QuerySpec{Enc: q})
		if err != nil {
			t.Fatalf("draw %d (%q) uncached: %v", i, word, err)
		}
		if !sameIDs(idSet(got), idSet(want)) {
			t.Fatalf("draw %d (%q): cached answer diverged: %d ids vs %d uncached",
				i, word, len(got.IDs), len(want.IDs))
		}
	}
	st := c.FE.CacheStats()
	ratio := float64(st.Hits) / float64(st.Hits+st.Misses)
	t.Logf("cache: hits=%d misses=%d ratio=%.2f entries=%d bytes=%d",
		st.Hits, st.Misses, ratio, st.Entries, st.Bytes)
	if ratio < 0.30 {
		t.Errorf("warm Zipf hit ratio %.2f, want >= 0.30", ratio)
	}
	if st.Hits+st.Misses != draws {
		t.Errorf("cache saw %d lookups, want %d", st.Hits+st.Misses, draws)
	}
}

// TestCacheIngestInvalidationChaos interleaves async ingest batches with
// queries: after the frontend observes each ingest epoch (the put ack,
// then the drain watermark via the view), its answers must be identical
// to an uncached frontend's — zero stale results at every step.
func TestCacheIngestInvalidationChaos(t *testing.T) {
	c, err := Start(Options{
		Nodes: 6, P: 2, Seed: 5,
		Frontend:  frontend.Config{CacheBudget: 1 << 20},
		IngestDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	plainFE, err := c.AddFrontend(frontend.Config{})
	if err != nil {
		t.Fatal(err)
	}
	q, err := c.Enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "target"})
	if err != nil {
		t.Fatal(err)
	}
	spec := frontend.QuerySpec{Enc: q}
	check := func(step string, wantN int) {
		t.Helper()
		got, err := c.FE.Query(context.Background(), spec)
		if err != nil {
			t.Fatalf("%s: cached query: %v", step, err)
		}
		want, err := plainFE.Query(context.Background(), spec)
		if err != nil {
			t.Fatalf("%s: uncached query: %v", step, err)
		}
		if !sameIDs(idSet(got), idSet(want)) {
			t.Fatalf("%s: cached %d ids, uncached %d — stale result served",
				step, len(got.IDs), len(want.IDs))
		}
		if wantN >= 0 && len(got.IDs) != wantN {
			t.Fatalf("%s: %d matches, want %d", step, len(got.IDs), wantN)
		}
	}

	check("empty cluster", 0)
	for batch := 1; batch <= 5; batch++ {
		// Two records per batch, one matching, pushed asynchronously.
		var recs []pps.Encoded
		for j := 0; j < 2; j++ {
			kw := "filler"
			if j == 0 {
				kw = "target"
			}
			rec, err := c.Enc.EncryptDocument(pps.Document{
				ID: uint64(batch)<<32 | uint64(j), Path: fmt.Sprintf("/b/%d/%d", batch, j),
				Size: 1, Modified: time.Unix(1.2e9, 0), Keywords: []string{kw},
			})
			if err != nil {
				t.Fatal(err)
			}
			recs = append(recs, rec)
		}
		// Warm the cache with the pre-batch answer so a stale entry
		// definitely exists when the write lands.
		check(fmt.Sprintf("batch %d pre-put", batch), batch-1)

		seq, err := c.IngestPut(context.Background(), recs...)
		if err != nil {
			t.Fatal(err)
		}
		// The put ack is the first invalidation signal (read-your-writes
		// through Syncer.Ingest in a real deployment). The drain is still
		// racing the nodes, so the answer may be the pre- or post-batch
		// set — but it must come from a fresh fan-out, never the entry
		// cached before the put.
		c.FE.ObserveIngest(seq, 0)
		got, err := c.FE.Query(context.Background(), spec)
		if err != nil {
			t.Fatalf("batch %d post-ack: %v", batch, err)
		}
		if got.Source == frontend.SourceCache {
			t.Fatalf("batch %d post-ack: served from cache across the ingest ack", batch)
		}
		if n := len(got.IDs); n < batch-1 || n > batch {
			t.Fatalf("batch %d post-ack: %d matches, want %d or %d", batch, n, batch-1, batch)
		}

		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err = c.WaitIngestDrained(ctx, seq)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		// The drain watermark arrives with the next view sync.
		if err := c.SyncView(); err != nil {
			t.Fatal(err)
		}
		check(fmt.Sprintf("batch %d post-drain", batch), batch)
	}
	if st := c.FE.CacheStats(); st.Hits == 0 {
		t.Error("chaos run never hit the cache; invalidation test is vacuous")
	}
}

// TestTenantFairnessHotTenantShed floods a hot tenant far past its
// quota beside a victim paced well under its own: the hot tenant must
// be shed substantially while the victim's shed rate stays under 1%.
// Token buckets are per-tenant, so the victim's headroom is exact
// arithmetic — its pace (1 per 300ms) against a 5/s refill never
// drains the bucket no matter how hard the hot tenant pushes.
func TestTenantFairnessHotTenantShed(t *testing.T) {
	c, docs := startCluster(t, Options{
		Nodes: 4, P: 1, Seed: 9,
		// No cache: hits would bypass admission and mask the quota. The
		// 5/s rate keeps the refill interval (200ms) far above a single
		// query's latency even under -race, so the hot flood stays over
		// quota on any machine.
		Frontend: frontend.Config{TenantRate: 5, TenantBurst: 2},
	})
	word := pickWord(docs)
	q, err := c.Enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: word})
	if err != nil {
		t.Fatal(err)
	}
	run := func(tenant string) (frontend.Result, error) {
		return c.FE.Query(context.Background(), frontend.QuerySpec{
			Enc: q, Tenant: tenant, Priority: frontend.PriorityBulk,
		})
	}

	var hotSent, hotShed, vicSent, vicShed int
	start := time.Now()
	nextVictim := time.Duration(0)
	for elapsed := time.Duration(0); elapsed < 3*time.Second; elapsed = time.Since(start) {
		hotSent++
		if _, err := run("hot"); errors.Is(err, frontend.ErrTenantShed) {
			hotShed++
		} else if err != nil {
			t.Fatalf("hot query %d: %v", hotSent, err)
		}
		if elapsed >= nextVictim {
			nextVictim = elapsed + 300*time.Millisecond
			vicSent++
			if _, err := run("victim"); errors.Is(err, frontend.ErrTenantShed) {
				vicShed++
			} else if err != nil {
				t.Fatalf("victim query %d: %v", vicSent, err)
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Logf("hot: %d/%d shed; victim: %d/%d shed", hotShed, hotSent, vicShed, vicSent)
	if hotShed == 0 {
		t.Error("flooding hot tenant was never shed")
	}
	if frac := float64(vicShed) / float64(vicSent); frac > 0.01 {
		t.Errorf("victim shed rate %.3f, want <= 0.01", frac)
	}

	// The telemetry block must attribute the sheds to the hot tenant.
	rep := c.FE.HealthReport()
	var hot, vic int
	for _, tl := range rep.Tenants {
		switch tl.Tenant {
		case "hot":
			hot = tl.Shed
		case "victim":
			vic = tl.Shed
		}
	}
	if hot != hotShed || vic != vicShed {
		t.Errorf("health report sheds hot=%d victim=%d, counters say %d/%d", hot, vic, hotShed, vicShed)
	}
}
