// Epoch-fence tests: the node-side half of the ingest pipeline's
// placement fence (stale-epoch rejection, monotonic ratchet, the
// always-accepted legacy path) and its wire behaviour.
package node

import (
	"context"
	"errors"
	"testing"
	"time"

	"roar/internal/pps"
	"roar/internal/proto"
	"roar/internal/wire"
)

func testCorpus(t *testing.T, enc *pps.Encoder, n int) []pps.Encoded {
	t.Helper()
	recs := make([]pps.Encoded, n)
	for i := range recs {
		rec, err := enc.EncryptDocument(pps.Document{
			ID: uint64(i+1) << 40, Path: "/e", Size: 9,
			Modified: time.Unix(1.2e9, 0), Keywords: []string{"kw"},
		})
		if err != nil {
			t.Fatal(err)
		}
		recs[i] = rec
	}
	return recs
}

func TestPutEpochFence(t *testing.T) {
	n, enc := testSetup(t)
	recs := testCorpus(t, enc, 3)

	// Unfenced puts (legacy senders) are always accepted.
	if _, err := n.Put(proto.PutReq{Records: recs[:1]}); err != nil {
		t.Fatalf("unfenced put rejected: %v", err)
	}
	// A fenced put establishes the observed epoch.
	if _, err := n.Put(proto.PutReq{Records: recs[1:2], Epoch: 5}); err != nil {
		t.Fatalf("first fenced put rejected: %v", err)
	}
	// An older epoch is refused — the records must NOT be stored.
	before := n.Store().Len()
	_, err := n.Put(proto.PutReq{Records: recs[2:3], Epoch: 3})
	var stale *StaleEpochError
	if !errors.As(err, &stale) {
		t.Fatalf("stale-epoch put got %v, want StaleEpochError", err)
	}
	if stale.Got != 3 || stale.Current != 5 {
		t.Fatalf("StaleEpochError = %+v, want Got=3 Current=5", stale)
	}
	if stale.WireErrorCode() != wire.CodeStaleEpoch {
		t.Fatalf("wire code %q diverges from wire.CodeStaleEpoch %q",
			stale.WireErrorCode(), wire.CodeStaleEpoch)
	}
	if n.Store().Len() != before {
		t.Fatal("stale-epoch put stored records anyway")
	}
	// The same epoch and newer epochs pass.
	if _, err := n.Put(proto.PutReq{Records: recs[2:3], Epoch: 5}); err != nil {
		t.Fatalf("current-epoch put rejected: %v", err)
	}
	if _, err := n.Put(proto.PutReq{Records: recs[2:3], Epoch: 6}); err != nil {
		t.Fatalf("newer-epoch put rejected: %v", err)
	}
	// Unfenced puts still work after the fence has advanced.
	if _, err := n.Put(proto.PutReq{Records: recs[:1]}); err != nil {
		t.Fatalf("unfenced put after fencing rejected: %v", err)
	}
}

func TestRetainAdvancesEpochFence(t *testing.T) {
	n, enc := testSetup(t)
	recs := testCorpus(t, enc, 2)
	if _, err := n.Put(proto.PutReq{Records: recs[:1], Epoch: 4}); err != nil {
		t.Fatal(err)
	}
	// A placement change (retain) published under epoch 9 ratchets the
	// fence: puts routed under the old view must start bouncing.
	n.Retain(proto.RetainReq{Start: 0, Length: 1, P: 1, Epoch: 9})
	_, err := n.Put(proto.PutReq{Records: recs[1:], Epoch: 4})
	var stale *StaleEpochError
	if !errors.As(err, &stale) || stale.Current != 9 {
		t.Fatalf("put under pre-retain epoch got %v, want stale at 9", err)
	}
}

// TestPutEpochFenceOverWire pins the remote shape: a stale fenced put
// surfaces to the sender as a wire.RemoteError carrying CodeStaleEpoch
// — the signal the coordinator's retry loop re-routes on.
func TestPutEpochFenceOverWire(t *testing.T) {
	n, enc := testSetup(t)
	srv, err := n.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := wire.NewClient(srv.Addr())
	defer cl.Close()
	recs := testCorpus(t, enc, 2)
	var resp proto.PutResp
	if err := cl.Call(context.Background(), proto.MNodePut,
		proto.PutReq{Records: recs[:1], Epoch: 7}, &resp); err != nil {
		t.Fatalf("fenced put over wire: %v", err)
	}
	err = cl.Call(context.Background(), proto.MNodePut,
		proto.PutReq{Records: recs[1:], Epoch: 2}, &resp)
	var re *wire.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("stale put over wire got %v, want RemoteError", err)
	}
	if re.Code != wire.CodeStaleEpoch {
		t.Fatalf("remote code %q, want %q", re.Code, wire.CodeStaleEpoch)
	}
}
