package node

import (
	"context"
	"testing"
	"time"

	"roar/internal/pps"
	"roar/internal/proto"
	"roar/internal/store"
	"roar/internal/wire"
)

func testSetup(t *testing.T) (*Node, *pps.Encoder) {
	t.Helper()
	enc := pps.NewEncoder(pps.TestKey(1), pps.EncoderConfig{
		MaxKeywords: 4, MaxPathDir: 2,
		SizePoints: pps.LinearPoints(0, 100, 4), DateDays: 365, DateSpan: 4,
		RankBuckets: []int{1},
	})
	n, err := New(Config{Params: enc.ServerParams(), MatchThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	return n, enc
}

func loadDocs(t *testing.T, n *Node, enc *pps.Encoder, words []string) []uint64 {
	t.Helper()
	ids := make([]uint64, len(words))
	for i, w := range words {
		id := uint64(i+1) << 32
		doc := pps.Document{ID: id, Path: "/x", Size: 10,
			Modified: time.Unix(1.2e9, 0), Keywords: []string{w}}
		rec, err := enc.EncryptDocument(doc)
		if err != nil {
			t.Fatal(err)
		}
		n.Put(proto.PutReq{Records: []pps.Encoded{rec}})
		ids[i] = id
	}
	return ids
}

func TestNodeQueryLocal(t *testing.T) {
	n, enc := testSetup(t)
	ids := loadDocs(t, n, enc, []string{"aa", "bb", "aa", "cc"})
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "aa"})
	resp, err := n.Query(context.Background(), proto.QueryReq{Lo: 0.5, Hi: 0.4999999, Q: q})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.IDs) != 2 {
		t.Fatalf("matched %d, want 2", len(resp.IDs))
	}
	want := map[uint64]bool{ids[0]: true, ids[2]: true}
	for _, id := range resp.IDs {
		if !want[id] {
			t.Fatalf("unexpected match %d", id)
		}
	}
	if resp.Scanned != 4 || resp.MatchNanos <= 0 {
		t.Errorf("Scanned=%d MatchNanos=%d", resp.Scanned, resp.MatchNanos)
	}
	st := n.Stats()
	if st.Queries != 1 || st.Objects != 4 || st.Scanned != 4 {
		t.Errorf("stats: %+v", st)
	}
}

func TestNodeQueryPartialArc(t *testing.T) {
	n, enc := testSetup(t)
	loadDocs(t, n, enc, []string{"aa", "aa", "aa", "aa"})
	// ids are (i+1)<<32, i.e. points ~ (i+1)*2^-32 — all very near 0.
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "aa"})
	resp, err := n.Query(context.Background(), proto.QueryReq{Lo: 0.5, Hi: 0.6, Q: q})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.IDs) != 0 || resp.Scanned != 0 {
		t.Errorf("arc away from objects matched %d/%d", len(resp.IDs), resp.Scanned)
	}
}

func TestNodeRetain(t *testing.T) {
	n, enc := testSetup(t)
	loadDocs(t, n, enc, []string{"aa", "bb"})
	// Objects sit just above 0; a range at 0 with p=4 keeps them.
	resp := n.Retain(proto.RetainReq{Start: 0, Length: 0.25, P: 4})
	if resp.Dropped != 0 || resp.Remaining != 2 {
		t.Errorf("retain kept wrong set: %+v", resp)
	}
	// A range far away drops them.
	resp = n.Retain(proto.RetainReq{Start: 0.5, Length: 0.1, P: 4})
	if resp.Dropped != 2 || resp.Remaining != 0 {
		t.Errorf("retain should drop both: %+v", resp)
	}
}

func TestNodeDelete(t *testing.T) {
	n, enc := testSetup(t)
	ids := loadDocs(t, n, enc, []string{"aa", "bb"})
	n.Delete(proto.DeleteReq{IDs: []uint64{ids[0]}})
	if n.Store().Len() != 1 {
		t.Errorf("Len = %d after delete", n.Store().Len())
	}
}

func TestNodeThrottle(t *testing.T) {
	enc := pps.NewEncoder(pps.TestKey(1), pps.EncoderConfig{
		MaxKeywords: 2, MaxPathDir: 1,
		SizePoints: pps.LinearPoints(0, 100, 2), DateDays: 365, DateSpan: 2,
		RankBuckets: []int{1},
	})
	n, err := New(Config{Params: enc.ServerParams(), ObjectsPerSec: 1000})
	if err != nil {
		t.Fatal(err)
	}
	var recs []pps.Encoded
	for i := 0; i < 100; i++ {
		r, err := enc.EncryptDocument(pps.Document{ID: uint64(i+1) << 40, Path: "/x",
			Size: 1, Modified: time.Unix(1.2e9, 0), Keywords: []string{"w"}})
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, r)
	}
	n.Put(proto.PutReq{Records: recs})
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "w"})
	start := time.Now()
	if _, err := n.Query(context.Background(), proto.QueryReq{Lo: 0.5, Hi: 0.49999, Q: q}); err != nil {
		t.Fatal(err)
	}
	// 100 objects at 1000 obj/s = 100ms.
	if el := time.Since(start); el < 80*time.Millisecond {
		t.Errorf("throttled query took %v, want >= ~100ms", el)
	}
}

func TestNodeServeRPC(t *testing.T) {
	n, enc := testSetup(t)
	srv, err := n.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := wire.NewClient(srv.Addr())
	defer cl.Close()

	if err := cl.Call(context.Background(), proto.MNodePing, nil, nil); err != nil {
		t.Fatal(err)
	}
	rec, err := enc.EncryptDocument(pps.Document{ID: 1 << 40, Path: "/x", Size: 5,
		Modified: time.Unix(1.2e9, 0), Keywords: []string{"net"}})
	if err != nil {
		t.Fatal(err)
	}
	var put proto.PutResp
	if err := cl.Call(context.Background(), proto.MNodePut, proto.PutReq{Records: []pps.Encoded{rec}}, &put); err != nil {
		t.Fatal(err)
	}
	if put.Stored != 1 || put.Total != 1 {
		t.Errorf("put = %+v", put)
	}
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "net"})
	var resp proto.QueryResp
	if err := cl.Call(context.Background(), proto.MNodeQuery,
		proto.QueryReq{Lo: 0.5, Hi: 0.49999, Q: q}, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.IDs) != 1 || resp.IDs[0] != 1<<40 {
		t.Errorf("query over RPC = %+v", resp)
	}
	var st proto.StatsResp
	if err := cl.Call(context.Background(), proto.MNodeStats, nil, &st); err != nil {
		t.Fatal(err)
	}
	if st.Objects != 1 {
		t.Errorf("stats over RPC: %+v", st)
	}
	// Malformed body surfaces an error, not a hang.
	if err := cl.Call(context.Background(), proto.MNodeQuery, "not an object", nil); err == nil {
		t.Error("malformed request should error")
	}
}

// TestNodeMixedCodecClients: a legacy JSON-framed client and a
// binary-negotiating client read the same node state and get identical
// answers — the mixed-version cluster guarantee at the node boundary.
func TestNodeMixedCodecClients(t *testing.T) {
	n, enc := testSetup(t)
	srv, err := n.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	binCl := wire.NewClient(srv.Addr())
	defer binCl.Close()
	jsonCl := wire.NewClientWithConfig(srv.Addr(), wire.ClientConfig{DisableBinary: true})
	defer jsonCl.Close()

	var recs []pps.Encoded
	for i := 0; i < 20; i++ {
		r, err := enc.EncryptDocument(pps.Document{ID: uint64(i+1) << 40, Path: "/m",
			Size: 9, Modified: time.Unix(1.2e9, 0), Keywords: []string{"mixed"}})
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, r)
	}
	// Write through the old-framing client, read through both.
	var put proto.PutResp
	if err := jsonCl.Call(context.Background(), proto.MNodePut, proto.PutReq{Records: recs}, &put); err != nil {
		t.Fatal(err)
	}
	if put.Stored != 20 {
		t.Fatalf("json-framed put = %+v", put)
	}
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "mixed"})
	req := proto.QueryReq{Lo: 0.5, Hi: 0.49999, Q: q}
	var fromBin, fromJSON proto.QueryResp
	if err := binCl.Call(context.Background(), proto.MNodeQuery, req, &fromBin); err != nil {
		t.Fatal(err)
	}
	if err := jsonCl.Call(context.Background(), proto.MNodeQuery, req, &fromJSON); err != nil {
		t.Fatal(err)
	}
	if len(fromBin.IDs) != 20 || len(fromJSON.IDs) != 20 {
		t.Fatalf("codec-dependent results: binary %d ids, json %d ids", len(fromBin.IDs), len(fromJSON.IDs))
	}
	for i := range fromBin.IDs {
		if fromBin.IDs[i] != fromJSON.IDs[i] {
			t.Fatalf("id %d differs across codecs: %d != %d", i, fromBin.IDs[i], fromJSON.IDs[i])
		}
	}
	var pr proto.PingResp
	if err := binCl.Call(context.Background(), proto.MNodePing, proto.PingReq{}, &pr); err != nil {
		t.Fatal(err)
	}
}

func TestNodeRejectsBadParams(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero MBits should be rejected")
	}
}

func TestPointConsistencyWithStore(t *testing.T) {
	// The node's arc filtering and the store's point mapping must agree.
	if store.PointOf(0) != 0 {
		t.Error("PointOf(0) != 0")
	}
}
