// Package node implements a ROAR data server: it stores encrypted
// metadata replicas for its ring range and matches sub-queries against
// them with the §5.6.3 producer/consumer pipeline. A node is oblivious
// to the rest of the ring — it just serves the arc it is told to serve —
// which is what makes ROAR reconfiguration local and cheap.
package node

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"roar/internal/index"
	"roar/internal/pps"
	"roar/internal/proto"
	"roar/internal/ring"
	"roar/internal/store"
	"roar/internal/wire"
)

// Config parameterises a node.
type Config struct {
	// Params are the public PPS matching parameters (no key material).
	Params pps.ServerParams
	// MatchThreads is the matching-thread count (§5.6.3; 0 = 1).
	MatchThreads int
	// ObjectsPerSec, when positive, throttles matching to emulate a
	// calibrated hardware profile (Table 7.1); 0 matches at full speed.
	ObjectsPerSec float64
	// BatchSize for the matching pipeline (0 = 256).
	BatchSize int
	// FixedQueryCost adds a constant per-sub-query cost (thread start,
	// request parsing — the fixed overheads of §2 that do not depend on
	// data size and cap throughput as p grows). Zero disables it.
	FixedQueryCost time.Duration
	// Index, when non-nil, serves plaintext queries (QueryReq.Plain)
	// through the roaring-bitmap data plane alongside the PPS scan.
	// SetIndex attaches one after construction.
	Index *index.Index
}

// Node is one data server. Create with New, expose with Serve.
type Node struct {
	cfg     Config
	matcher *pps.Matcher
	store   *store.Store

	// The two data planes behind the common Matcher interface. enc is
	// always present; plain holds an *indexMatcher (atomically swapped
	// by SetIndex) or nil when no index is attached.
	enc   Matcher
	plain atomic.Pointer[indexMatcher]

	queries   atomic.Int64
	scanned   atomic.Int64
	busyNanos atomic.Int64
	canceled  atomic.Int64 // sub-queries aborted by caller cancellation
	inflight  atomic.Int64
	peak      atomic.Int64 // high-water mark of concurrent queries
	delay     atomic.Int64 // injected per-query latency (tests/experiments)
	viewEpoch atomic.Int64 // newest view epoch observed (epoch fence)
	started   time.Time
}

// New builds a node.
func New(cfg Config) (*Node, error) {
	m, err := pps.NewMatcher(cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("node: %w", err)
	}
	if cfg.MatchThreads <= 0 {
		cfg.MatchThreads = 1
	}
	n := &Node{cfg: cfg, matcher: m, store: store.New(), started: time.Now()}
	n.enc = &storeMatcher{
		store:         n.store,
		matcher:       m,
		threads:       cfg.MatchThreads,
		batchSize:     cfg.BatchSize,
		objectsPerSec: cfg.ObjectsPerSec,
	}
	if cfg.Index != nil {
		n.SetIndex(cfg.Index)
	}
	return n, nil
}

// Store exposes the underlying record store (tests and in-process
// harnesses load data directly through it).
func (n *Node) Store() *store.Store { return n.store }

// SetIndex attaches (or replaces) the plaintext index served for
// QueryReq.Plain sub-queries. Safe to call while serving.
func (n *Node) SetIndex(ix *index.Index) {
	if ix == nil {
		n.plain.Store(nil)
		return
	}
	n.plain.Store(&indexMatcher{ix: ix})
}

// Index returns the attached plaintext index, if any.
func (n *Node) Index() *index.Index {
	if im := n.plain.Load(); im != nil {
		return im.ix
	}
	return nil
}

// SetDelay injects d of extra latency into every subsequent Query —
// a slow-but-alive node, as opposed to a killed one. The sleep honours
// the caller's context, so cancelled (hedged-away) sub-queries abort
// promptly. Tests and the tail-latency experiments drive this at
// runtime; d = 0 removes the delay.
func (n *Node) SetDelay(d time.Duration) { n.delay.Store(int64(d)) }

// QueueDepth reports the number of sub-queries currently executing.
func (n *Node) QueueDepth() int { return int(n.inflight.Load()) }

// Query matches the encrypted query against stored objects in (lo, hi].
func (n *Node) Query(ctx context.Context, req proto.QueryReq) (proto.QueryResp, error) {
	start := time.Now()
	cur := n.inflight.Add(1)
	defer n.inflight.Add(-1)
	for {
		p := n.peak.Load()
		if cur <= p || n.peak.CompareAndSwap(p, cur) {
			break
		}
	}
	if n.cfg.FixedQueryCost > 0 {
		time.Sleep(n.cfg.FixedQueryCost)
	}
	if d := time.Duration(n.delay.Load()); d > 0 {
		select {
		case <-time.After(d):
		case <-ctx.Done():
			n.canceled.Add(1)
			return proto.QueryResp{}, ctx.Err()
		}
	}
	m := n.enc
	if req.Plain != nil {
		im := n.plain.Load()
		if im == nil {
			return proto.QueryResp{}, ErrNoIndex
		}
		m = im
	}
	ids, scanned, err := m.MatchArc(ctx, req, ring.Norm(req.Lo), ring.Norm(req.Hi))
	if err != nil {
		if ctx.Err() != nil {
			n.canceled.Add(1)
		}
		return proto.QueryResp{}, err
	}
	el := time.Since(start)
	n.queries.Add(1)
	n.scanned.Add(int64(scanned))
	n.busyNanos.Add(int64(el))
	// Depth is sampled at ARRIVAL (cur was read when this sub-query
	// entered), excluding the sub-query itself: the load it queued
	// behind. Sampling at completion instead systematically reads ~0
	// under closed-loop load — sub-queries admitted together finish
	// together, so the last response of every wave sees a drained node
	// and the frontends' last-writer-wins gauges sit at the trough of
	// the sawtooth exactly when the node is saturated.
	depth := int(cur) - 1
	if depth < 0 {
		depth = 0
	}
	return proto.QueryResp{IDs: ids, Scanned: scanned, MatchNanos: int64(el), QueueDepth: depth}, nil
}

// StaleEpochError rejects an epoch-fenced put placed under a view older
// than the newest this node has observed: the sender's routing may be
// wrong, so the records are refused rather than stored where queries
// will never look for them. Crosses the wire as wire.CodeStaleEpoch.
type StaleEpochError struct {
	Got     int // the put's fencing epoch
	Current int // the node's newest observed epoch
}

func (e *StaleEpochError) Error() string {
	return fmt.Sprintf("node: stale view epoch %d (node has observed %d); re-pull the view", e.Got, e.Current)
}

// WireErrorCode implements wire.ErrorCoder; the literal must match
// wire.CodeStaleEpoch.
func (e *StaleEpochError) WireErrorCode() string { return "stale-epoch" }

// observeEpoch advances the node's observed view epoch (monotonic) and
// returns the newest value. A node never trusts an older epoch again:
// the fence only ratchets forward.
func (n *Node) observeEpoch(e int) int {
	for {
		cur := n.viewEpoch.Load()
		if int64(e) <= cur {
			return int(cur)
		}
		if n.viewEpoch.CompareAndSwap(cur, int64(e)) {
			return e
		}
	}
}

// Put stores replica records. A fenced request (Epoch > 0) is rejected
// with StaleEpochError when its epoch is older than the newest this
// node has observed; an unfenced request (Epoch == 0, legacy senders)
// is always accepted. Insert dedups by record ID with last-write-wins,
// so re-delivery of the same records is a no-op — the idempotent-apply
// half of the ingest pipeline's at-least-once contract.
func (n *Node) Put(req proto.PutReq) (proto.PutResp, error) {
	if req.Epoch > 0 {
		if cur := n.observeEpoch(req.Epoch); req.Epoch < cur {
			return proto.PutResp{}, &StaleEpochError{Got: req.Epoch, Current: cur}
		}
	}
	n.store.Insert(req.Records...)
	return proto.PutResp{Stored: len(req.Records), Total: n.store.Len()}, nil
}

// Delete removes records.
func (n *Node) Delete(req proto.DeleteReq) {
	n.store.Delete(req.IDs...)
}

// Retain applies a range/p change, dropping records outside the new
// stored set (§4.5). A retain carrying the publishing view's epoch
// advances the fence, so epoch-fenced puts routed under older views
// start bouncing the moment the new placement lands.
func (n *Node) Retain(req proto.RetainReq) proto.RetainResp {
	if req.Epoch > 0 {
		n.observeEpoch(req.Epoch)
	}
	dropped := n.store.RetainStored(ring.NewArc(ring.Norm(req.Start), req.Length), req.P)
	return proto.RetainResp{Dropped: dropped, Remaining: n.store.Len()}
}

// Stats reports counters.
func (n *Node) Stats() proto.StatsResp {
	return proto.StatsResp{
		Objects:         n.store.Len(),
		Queries:         n.queries.Load(),
		Scanned:         n.scanned.Load(),
		BusyNanos:       n.busyNanos.Load(),
		UptimeSecs:      time.Since(n.started).Seconds(),
		PeakConcurrency: n.peak.Load(),
		Canceled:        n.canceled.Load(),
	}
}

// Serve exposes the node over TCP on addr ("127.0.0.1:0" for ephemeral).
// The two hot methods (query, put) decode their bodies through the
// negotiated codec — binary on upgraded connections, JSON otherwise.
func (n *Node) Serve(addr string) (*wire.Server, error) {
	d := wire.NewDispatcher()
	d.Register(proto.MNodeQuery, func(ctx context.Context, _ string, body wire.Body) (interface{}, error) {
		var req proto.QueryReq
		if err := body.Decode(&req); err != nil {
			return nil, fmt.Errorf("node: bad query request: %w", err)
		}
		return n.Query(ctx, req)
	})
	d.Register(proto.MNodePut, func(_ context.Context, _ string, body wire.Body) (interface{}, error) {
		var req proto.PutReq
		if err := body.Decode(&req); err != nil {
			return nil, fmt.Errorf("node: bad put request: %w", err)
		}
		return n.Put(req)
	})
	d.Register(proto.MNodeDelete, func(_ context.Context, _ string, body wire.Body) (interface{}, error) {
		var req proto.DeleteReq
		if err := body.Decode(&req); err != nil {
			return nil, fmt.Errorf("node: bad delete request: %w", err)
		}
		n.Delete(req)
		return struct{}{}, nil
	})
	d.Register(proto.MNodeRetain, func(_ context.Context, _ string, body wire.Body) (interface{}, error) {
		var req proto.RetainReq
		if err := body.Decode(&req); err != nil {
			return nil, fmt.Errorf("node: bad retain request: %w", err)
		}
		return n.Retain(req), nil
	})
	d.Register(proto.MNodeStats, func(_ context.Context, _ string, _ wire.Body) (interface{}, error) {
		return n.Stats(), nil
	})
	d.Register(proto.MNodePing, func(ctx context.Context, _ string, _ wire.Body) (interface{}, error) {
		// The injected delay models a stalled machine, which answers
		// probes as slowly as queries — a recovery probe must not see
		// a healthy node while Query traffic is still timing out.
		if d := time.Duration(n.delay.Load()); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return proto.PingResp{QueueDepth: n.QueueDepth()}, nil
	})
	return wire.Serve(addr, d.Handle)
}
