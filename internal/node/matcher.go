package node

import (
	"context"
	"errors"
	"time"

	"roar/internal/index"
	"roar/internal/pps"
	"roar/internal/proto"
	"roar/internal/ring"
	"roar/internal/store"
)

// Matcher is the node's pluggable data plane: given a sub-query and its
// duplicate-avoidance arc (lo, hi], return the matching record ids
// (ascending), the amount of work examined (records scanned or posting
// entries touched — the unit the stats and speed estimators consume),
// and any error. The ring/hedge/quarantine/autoscale machinery above is
// oblivious to which engine answers; it sees only ids and scanned work.
//
// Two implementations ship: the PPS encrypted scan over the record
// store (the paper's workload) and the plaintext roaring-bitmap index
// (internal/index). A request selects the plane via QueryReq.Plain.
type Matcher interface {
	MatchArc(ctx context.Context, req proto.QueryReq, lo, hi ring.Point) (ids []uint64, scanned int, err error)
}

// ErrNoIndex rejects plaintext queries on nodes that were not started
// with an index attached.
var ErrNoIndex = errors.New("node: no plaintext index configured")

// storeMatcher is the encrypted data plane: the §5.6.3 producer/consumer
// pipeline over the sorted record store, optionally throttled to emulate
// a calibrated hardware profile.
type storeMatcher struct {
	store         *store.Store
	matcher       *pps.Matcher
	threads       int
	batchSize     int
	objectsPerSec float64
}

func (sm *storeMatcher) MatchArc(ctx context.Context, req proto.QueryReq, lo, hi ring.Point) ([]uint64, int, error) {
	opts := store.MatchOptions{Threads: sm.threads, BatchSize: sm.batchSize}
	if sm.objectsPerSec > 0 {
		perSec := sm.objectsPerSec
		opts.Limiter = func(ctx context.Context, k int) error {
			// The emulated scan time must abort the moment the caller
			// cancels (hedge loss, client deadline): a cancelled sub-query
			// sleeping out its throttle would hold the matching thread
			// exactly when the frontend has already re-dispatched the work.
			t := time.NewTimer(time.Duration(float64(k) / perSec * float64(time.Second)))
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	return sm.store.MatchArc(ctx, sm.matcher, req.Q, lo, hi, opts)
}

// indexMatcher is the plaintext data plane: roaring-bitmap posting
// lists behind the memory-budgeted segment cache. The ring arc converts
// to id space through the same IDOf the store's arc walk uses, so both
// planes agree on which records a sub-query owns.
type indexMatcher struct {
	ix *index.Index
}

func (im *indexMatcher) MatchArc(ctx context.Context, req proto.QueryReq, lo, hi ring.Point) ([]uint64, int, error) {
	q := index.Query{
		Terms:    req.Plain.Terms,
		Mode:     index.Mode(req.Plain.Mode),
		MinMatch: req.Plain.MinMatch,
		Limit:    req.Plain.Limit,
	}
	full := ring.MatchSpan(lo, hi) >= 1
	return im.ix.SearchArc(ctx, q, store.IDOf(lo), store.IDOf(hi), full)
}
