// Package stats provides the small statistical toolkit used across the
// ROAR codebase: exponentially weighted moving averages for server-speed
// estimation, percentile summaries for delay reporting, fixed-bin
// histograms for CDF plots, and least-squares linear fits used by the
// simulator's queue-explosion detector (§6.1).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// EWMA is an exponentially weighted moving average. The zero value is
// unusable; construct with NewEWMA. EWMA is safe for concurrent use.
type EWMA struct {
	mu    sync.Mutex
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1]. Larger
// alpha weights recent observations more heavily. The front-end uses
// alpha ≈ 0.1 for server-speed estimates, averaging over many queries to
// avoid the oscillations §4.8.3 warns about.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("stats: EWMA alpha %v out of (0,1]", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Observe folds a new sample into the average.
func (e *EWMA) Observe(x float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.init {
		e.value, e.init = x, true
		return
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
}

// Value returns the current average and whether any sample was observed.
func (e *EWMA) Value() (float64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.value, e.init
}

// Set forces the average to x (used to seed speed estimates).
func (e *EWMA) Set(x float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.value, e.init = x, true
}

// Sample accumulates float64 observations and answers summary queries.
// It keeps all samples; experiments here are bounded (≤ millions of
// points) so this is simpler and exact. Not safe for concurrent use.
type Sample struct {
	xs     []float64
	sorted bool
	sum    float64
}

// NewSample returns an empty sample, optionally pre-allocating capacity.
func NewSample(capacity int) *Sample {
	return &Sample{xs: make([]float64, 0, capacity)}
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sum += x
	s.sorted = false
}

// AddAll records many observations.
func (s *Sample) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	return s.sum / float64(len(s.xs))
}

// Sum returns the sum of all observations.
func (s *Sample) Sum() float64 { return s.sum }

// Variance returns the population variance.
func (s *Sample) Variance() float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	m := s.Mean()
	var acc float64
	for _, x := range s.xs {
		d := x - m
		acc += d * d
	}
	return acc / float64(n)
}

// Stddev returns the population standard deviation.
func (s *Sample) Stddev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation (0 for an empty sample).
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.xs[0]
}

// Max returns the largest observation (0 for an empty sample).
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.xs[len(s.xs)-1]
}

// Percentile returns the q-th percentile (q in [0, 100]) using linear
// interpolation between closest ranks.
func (s *Sample) Percentile(q float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	s.ensureSorted()
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 100 {
		return s.xs[n-1]
	}
	pos := q / 100 * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Summary is a compact printable digest of a sample.
type Summary struct {
	N              int
	Mean, Min, Max float64
	P50, P90, P99  float64
	Stddev         float64
}

// Summarize computes the standard digest.
func (s *Sample) Summarize() Summary {
	return Summary{
		N:      s.N(),
		Mean:   s.Mean(),
		Min:    s.Min(),
		Max:    s.Max(),
		P50:    s.Percentile(50),
		P90:    s.Percentile(90),
		P99:    s.Percentile(99),
		Stddev: s.Stddev(),
	}
}

func (sm Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g p50=%.4g p90=%.4g p99=%.4g min=%.4g max=%.4g sd=%.4g",
		sm.N, sm.Mean, sm.P50, sm.P90, sm.P99, sm.Min, sm.Max, sm.Stddev)
}

// CDF returns (x, F(x)) pairs at each distinct observation, suitable for
// plotting delay distributions (Figs 7.8, 7.14).
func (s *Sample) CDF() (xs, fs []float64) {
	n := len(s.xs)
	if n == 0 {
		return nil, nil
	}
	s.ensureSorted()
	xs = make([]float64, 0, n)
	fs = make([]float64, 0, n)
	for i, x := range s.xs {
		if i+1 < n && s.xs[i+1] == x {
			continue // emit only the last of a run of equal values
		}
		xs = append(xs, x)
		fs = append(fs, float64(i+1)/float64(n))
	}
	return xs, fs
}

// LinearFit returns the least-squares slope and intercept of y on x.
// The simulator fits delay(arrivalTime) and declares the system
// overloaded when the slope exceeds a threshold (§6.1: slope > 0.1).
func LinearFit(x, y []float64) (slope, intercept float64, err error) {
	if len(x) != len(y) {
		return 0, 0, fmt.Errorf("stats: LinearFit length mismatch %d vs %d", len(x), len(y))
	}
	n := float64(len(x))
	if n < 2 {
		return 0, 0, fmt.Errorf("stats: LinearFit needs >= 2 points, got %d", len(x))
	}
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, fmt.Errorf("stats: LinearFit degenerate x values")
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept, nil
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi); samples out of
// range are clamped into the first/last bin.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with the given bounds and bin count.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: bad histogram [%v,%v) bins=%d", lo, hi, bins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records a sample.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of recorded samples.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// String renders a small ASCII sparkline, handy in bench output.
func (h *Histogram) String() string {
	if h.total == 0 {
		return "(empty)"
	}
	max := 0
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	glyphs := []rune(" ▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, c := range h.Counts {
		g := 0
		if max > 0 {
			g = c * (len(glyphs) - 1) / max
		}
		b.WriteRune(glyphs[g])
	}
	return b.String()
}

// LoadImbalance implements Definition 3: the ratio of the maximum
// per-server load to the mean. 1 is perfect balance; n is total skew.
func LoadImbalance(assigned []float64) float64 {
	if len(assigned) == 0 {
		return 0
	}
	var sum, max float64
	for _, a := range assigned {
		sum += a
		if a > max {
			max = a
		}
	}
	if sum == 0 {
		return 1
	}
	return max / (sum / float64(len(assigned)))
}
