package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if _, ok := e.Value(); ok {
		t.Error("fresh EWMA should report no value")
	}
	e.Observe(10)
	if v, ok := e.Value(); !ok || v != 10 {
		t.Errorf("first observation should seed value, got %v %v", v, ok)
	}
	e.Observe(20)
	if v, _ := e.Value(); math.Abs(v-15) > 1e-12 {
		t.Errorf("EWMA(0.5) after 10,20 = %v, want 15", v)
	}
	e.Set(100)
	if v, _ := e.Value(); v != 100 {
		t.Errorf("Set should override, got %v", v)
	}
}

func TestEWMAPanicsOnBadAlpha(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewEWMA(0) should panic")
		}
	}()
	NewEWMA(0)
}

func TestEWMAConcurrent(t *testing.T) {
	e := NewEWMA(0.1)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				e.Observe(float64(i))
				e.Value()
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

func TestSampleBasics(t *testing.T) {
	s := NewSample(0)
	if s.Mean() != 0 || s.Min() != 0 || s.Percentile(50) != 0 {
		t.Error("empty sample should answer zeros")
	}
	s.AddAll([]float64{4, 1, 3, 2, 5})
	if s.N() != 5 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 3 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.Median() != 3 {
		t.Errorf("Median = %v", s.Median())
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := s.Percentile(100); got != 5 {
		t.Errorf("P100 = %v", got)
	}
	if got := s.Percentile(25); got != 2 {
		t.Errorf("P25 = %v, want 2", got)
	}
	if math.Abs(s.Variance()-2) > 1e-12 {
		t.Errorf("Variance = %v, want 2", s.Variance())
	}
}

func TestSampleAddAfterQuery(t *testing.T) {
	s := NewSample(0)
	s.Add(10)
	_ = s.Median() // forces sort
	s.Add(1)
	if s.Min() != 1 {
		t.Error("Add after a query must re-sort")
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		s := NewSample(len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			s.Add(x)
		}
		if s.N() == 0 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 100; q += 5 {
			v := s.Percentile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDF(t *testing.T) {
	s := NewSample(0)
	s.AddAll([]float64{1, 2, 2, 3})
	xs, fs := s.CDF()
	if len(xs) != 3 {
		t.Fatalf("CDF xs = %v", xs)
	}
	if xs[1] != 2 || math.Abs(fs[1]-0.75) > 1e-12 {
		t.Errorf("CDF at 2 = %v, want 0.75", fs[1])
	}
	if fs[len(fs)-1] != 1 {
		t.Errorf("CDF must end at 1, got %v", fs[len(fs)-1])
	}
}

func TestLinearFit(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{1, 3, 5, 7, 9} // y = 2x + 1
	slope, intercept, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope-2) > 1e-9 || math.Abs(intercept-1) > 1e-9 {
		t.Errorf("fit = %v, %v; want 2, 1", slope, intercept)
	}
	if _, _, err := LinearFit(x, y[:3]); err == nil {
		t.Error("length mismatch should error")
	}
	if _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should error")
	}
	if _, _, err := LinearFit([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Error("degenerate x should error")
	}
}

func TestLinearFitNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var x, y []float64
	for i := 0; i < 1000; i++ {
		xi := float64(i)
		x = append(x, xi)
		y = append(y, 0.5*xi+3+rng.NormFloat64())
	}
	slope, intercept, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope-0.5) > 0.01 || math.Abs(intercept-3) > 1 {
		t.Errorf("noisy fit = %v, %v", slope, intercept)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i%10) + 0.5)
	}
	for i, c := range h.Counts {
		if c != 10 {
			t.Errorf("bin %d = %d, want 10", i, c)
		}
	}
	h.Add(-5) // clamps to first bin
	h.Add(99) // clamps to last bin
	if h.Counts[0] != 11 || h.Counts[9] != 11 {
		t.Error("clamping failed")
	}
	if h.Total() != 102 {
		t.Errorf("Total = %d", h.Total())
	}
	if got := h.BinCenter(0); got != 0.5 {
		t.Errorf("BinCenter(0) = %v", got)
	}
	if h.String() == "" {
		t.Error("sparkline should render")
	}
}

func TestLoadImbalance(t *testing.T) {
	if lb := LoadImbalance([]float64{1, 1, 1, 1}); lb != 1 {
		t.Errorf("even load lb = %v, want 1", lb)
	}
	if lb := LoadImbalance([]float64{4, 0, 0, 0}); lb != 4 {
		t.Errorf("all-on-one lb = %v, want n=4", lb)
	}
	if lb := LoadImbalance(nil); lb != 0 {
		t.Errorf("empty lb = %v", lb)
	}
	if lb := LoadImbalance([]float64{0, 0}); lb != 1 {
		t.Errorf("zero-load lb = %v, want 1", lb)
	}
}

func TestSummaryString(t *testing.T) {
	s := NewSample(0)
	s.AddAll([]float64{1, 2, 3})
	if got := s.Summarize().String(); got == "" {
		t.Error("summary should render")
	}
}
