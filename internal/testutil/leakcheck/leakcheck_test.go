package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// TestCheckDetectsLeak injects a deliberately blocked goroutine and
// requires check to report it, then releases it and requires the
// report to clear — the self-test for the harness every adopting
// package relies on.
func TestCheckDetectsLeak(t *testing.T) {
	stop := make(chan struct{})
	go func() {
		<-stop
	}()

	err := check(50 * time.Millisecond)
	if err == nil {
		close(stop)
		t.Fatal("check missed a deliberately leaked goroutine")
	}
	if !strings.Contains(err.Error(), "TestCheckDetectsLeak") {
		close(stop)
		t.Fatalf("leak report does not name the leaking function:\n%v", err)
	}

	close(stop)
	if err := check(2 * time.Second); err != nil {
		t.Fatalf("leak report did not clear after the goroutine exited: %v", err)
	}
}

// TestCheckWaitsForShutdown verifies the polling grace period: a
// goroutine that exits shortly after the check starts must not be
// reported.
func TestCheckWaitsForShutdown(t *testing.T) {
	go func() {
		time.Sleep(20 * time.Millisecond)
	}()
	if err := check(2 * time.Second); err != nil {
		t.Fatalf("check reported a goroutine that was already shutting down: %v", err)
	}
}

func TestCheckCleanPass(t *testing.T) {
	if err := check(time.Second); err != nil {
		t.Fatalf("clean state reported as leak: %v", err)
	}
}
