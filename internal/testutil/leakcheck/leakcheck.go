// Package leakcheck fails a test binary that exits with goroutines
// still running. The repo is full of lifecycle-owning components —
// frontend probe loops, wire connection pools, membership pushers,
// autoscale tickers — whose Close contracts are exactly the kind of
// thing that regresses silently: a leaked goroutine changes no test
// assertion, it just accumulates. Wiring
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// into a package makes every test in it a leak test.
//
// The checker snapshots all goroutine stacks after the tests pass,
// filters the runtime's and testing's own machinery, and polls until a
// deadline so goroutines that are mid-shutdown (a Close racing the
// test's return) get time to finish. No dependencies beyond the
// standard library.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// Main wraps m.Run with a leak check. Failures print the offending
// stacks and force a non-zero exit even when all tests passed.
func Main(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if err := check(2 * time.Second); err != nil {
			fmt.Fprintf(os.Stderr, "leakcheck: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

// benign are substrings marking goroutines that legitimately outlive a
// test run: the testing framework's own workers and the runtime's
// signal plumbing. (True system goroutines never appear in
// runtime.Stack output.)
var benign = []string{
	"testing.Main(",
	"testing.runTests(",
	"testing.(*M).",
	"testing.(*T).Run(",
	"testing.tRunner(",
	"testing.runFuzzing(",
	"os/signal.signal_recv(",
	"os/signal.loop(",
	"runtime.ReadTrace(",
}

func isBenign(stack string) bool {
	for _, b := range benign {
		if strings.Contains(stack, b) {
			return true
		}
	}
	return false
}

// snapshot returns the stacks of all live goroutines except the
// calling one (always the first block in runtime.Stack output) and the
// benign set.
func snapshot() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	blocks := strings.Split(string(buf), "\n\n")
	var leaked []string
	for _, b := range blocks[1:] { // blocks[0] is this goroutine
		b = strings.TrimSpace(b)
		if b == "" || isBenign(b) {
			continue
		}
		leaked = append(leaked, b)
	}
	return leaked
}

// check polls until no unexpected goroutines remain or maxWait
// elapses. The backoff starts tight so the common case (everything
// already shut down) costs ~1ms.
func check(maxWait time.Duration) error {
	deadline := time.Now().Add(maxWait)
	delay := time.Millisecond
	var leaked []string
	for {
		leaked = snapshot()
		if len(leaked) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(delay)
		if delay < 100*time.Millisecond {
			delay *= 2
		}
	}
	return fmt.Errorf("%d goroutine(s) still running after tests:\n\n%s",
		len(leaked), strings.Join(leaked, "\n\n"))
}
