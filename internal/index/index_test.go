package index

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
)

// corpus is the reference model: doc id → term set.
type corpus map[uint64]map[string]bool

// genCorpus produces n docs with uniformly random uint64 ids (the ROAR
// id distribution) drawing terms from a small vocabulary.
func genCorpus(rng *rand.Rand, n, vocab, termsPerDoc int) corpus {
	c := make(corpus, n)
	for len(c) < n {
		id := rng.Uint64()
		terms := make(map[string]bool, termsPerDoc)
		for len(terms) < termsPerDoc {
			terms[fmt.Sprintf("t%03d", rng.Intn(vocab))] = true
		}
		c[id] = terms
	}
	return c
}

func buildSegment(c corpus, name string) *Segment {
	b := NewBuilder()
	for id, terms := range c {
		tl := make([]string, 0, len(terms))
		for t := range terms {
			tl = append(tl, t)
		}
		b.Add(id, tl...)
	}
	return b.Build(name)
}

// bruteArc evaluates the query by brute force over the model, honoring
// the (lo, hi] arc (wrap when lo >= hi and !full) and the limit.
func bruteArc(c corpus, q Query, lo, hi uint64, full bool) []uint64 {
	minMatch := q.MinMatch
	switch q.Mode {
	case ModeAnd:
		minMatch = len(q.Terms)
	case ModeOr:
		minMatch = 1
	default:
		if minMatch < 1 {
			minMatch = 1
		}
	}
	var ids []uint64
	for id, terms := range c {
		if !full {
			inArc := false
			if lo < hi {
				inArc = id > lo && id <= hi
			} else {
				inArc = id > lo || id <= hi
			}
			if !inArc {
				continue
			}
		}
		n := 0
		for _, t := range q.Terms {
			if terms[t] {
				n++
			}
		}
		if n >= minMatch {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	if q.Limit > 0 && len(ids) > q.Limit {
		ids = ids[:q.Limit]
	}
	return ids
}

func sameIDs(t *testing.T, label string, got, want []uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d ids want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: got[%d]=%d want %d", label, i, got[i], want[i])
		}
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	c := genCorpus(rng, 3000, 40, 6)
	ix := New(0)
	ix.AddSegment(buildSegment(c, "mem"))

	ctx := context.Background()
	for trial := 0; trial < 300; trial++ {
		nTerms := 1 + rng.Intn(4)
		q := Query{Mode: Mode(rng.Intn(3))}
		for i := 0; i < nTerms; i++ {
			q.Terms = append(q.Terms, fmt.Sprintf("t%03d", rng.Intn(45))) // some absent terms
		}
		if q.Mode == ModeThreshold {
			q.MinMatch = 1 + rng.Intn(nTerms)
		}
		if trial%3 == 0 {
			q.Limit = 1 + rng.Intn(20)
		}
		lo, hi := rng.Uint64(), rng.Uint64()
		full := trial%5 == 0
		got, scanned, err := ix.SearchArc(ctx, q, lo, hi, full)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := bruteArc(c, q, lo, hi, full)
		sameIDs(t, fmt.Sprintf("trial %d (mode %d lo %d hi %d full %v)", trial, q.Mode, lo, hi, full), got, want)
		if len(got) > 0 && scanned == 0 {
			t.Fatalf("trial %d: results with zero scanned work", trial)
		}
	}
}

func TestSearchMultiSegmentDedup(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := genCorpus(rng, 800, 20, 5)
	// Two overlapping segments: replica pushes may duplicate docs.
	half := make(corpus)
	for id, terms := range c {
		if id%3 != 0 {
			half[id] = terms
		}
	}
	ix := New(0)
	ix.AddSegment(buildSegment(c, "full"))
	ix.AddSegment(buildSegment(half, "replica"))

	q := Query{Terms: []string{"t001"}, Mode: ModeOr}
	got, _, err := ix.SearchArc(context.Background(), q, 0, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	sameIDs(t, "dedup", got, bruteArc(c, q, 0, 0, true))
}

func TestSearchValidation(t *testing.T) {
	ix := New(0)
	if _, _, err := ix.SearchArc(context.Background(), Query{}, 0, 0, true); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, _, err := ix.SearchArc(context.Background(), Query{Terms: []string{"x"}, Mode: 9}, 0, 0, true); err == nil {
		t.Fatal("bad mode accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ix.AddSegment(buildSegment(corpus{1: {"x": true}}, "m"))
	if _, _, err := ix.SearchArc(ctx, Query{Terms: []string{"x"}}, 0, 0, true); err == nil {
		t.Fatal("cancelled context not observed")
	}
}

func TestSegmentFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	c := genCorpus(rng, 2000, 30, 5)
	mem := buildSegment(c, "mem")

	path := filepath.Join(t.TempDir(), "seg.roar")
	if err := SaveFile(path, mem); err != nil {
		t.Fatal(err)
	}
	disk, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()

	if disk.Docs() != mem.Docs() {
		t.Fatalf("docs %d want %d", disk.Docs(), mem.Docs())
	}
	if len(disk.Terms()) != len(mem.Terms()) {
		t.Fatalf("terms %d want %d", len(disk.Terms()), len(mem.Terms()))
	}
	for _, term := range mem.Terms() {
		if disk.Cardinality(term) != mem.Cardinality(term) {
			t.Fatalf("term %q card %d want %d", term, disk.Cardinality(term), mem.Cardinality(term))
		}
	}

	// Same searches through both — the disk postings load via the cache.
	memIx, diskIx := New(0), New(1<<20)
	memIx.AddSegment(mem)
	diskIx.AddSegment(disk)
	for trial := 0; trial < 100; trial++ {
		q := Query{
			Terms: []string{fmt.Sprintf("t%03d", rng.Intn(32)), fmt.Sprintf("t%03d", rng.Intn(32))},
			Mode:  Mode(rng.Intn(3)),
		}
		if q.Mode == ModeThreshold {
			q.MinMatch = 1 + rng.Intn(2)
		}
		lo, hi := rng.Uint64(), rng.Uint64()
		a, _, err := memIx.SearchArc(context.Background(), q, lo, hi, false)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := diskIx.SearchArc(context.Background(), q, lo, hi, false)
		if err != nil {
			t.Fatal(err)
		}
		sameIDs(t, fmt.Sprintf("trial %d", trial), b, a)
	}
	if st := diskIx.Cache().Stats(); st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("cache unused: %+v", st)
	}
}

func TestEncodeDecodeSegment(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c := genCorpus(rng, 500, 15, 4)
	mem := buildSegment(c, "mem")
	blob, err := EncodeSegment(mem)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeSegment(blob)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Docs() != mem.Docs() || len(dec.Terms()) != len(mem.Terms()) {
		t.Fatalf("decode mismatch: %d/%d docs, %d/%d terms",
			dec.Docs(), mem.Docs(), len(dec.Terms()), len(mem.Terms()))
	}
	for _, term := range mem.Terms() {
		want := mem.mem[term]
		got := dec.mem[term]
		if got.Cardinality() != want.Cardinality() {
			t.Fatalf("term %q card %d want %d", term, got.Cardinality(), want.Cardinality())
		}
		got.Iterate(func(v uint64) bool {
			if !want.Contains(v) {
				t.Fatalf("term %q stray ordinal %d", term, v)
			}
			return true
		})
	}

	// Strictness: trailing garbage, truncations, and bit flips must all
	// fail cleanly, never panic.
	if _, err := DecodeSegment(append(append([]byte(nil), blob...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	for cut := 0; cut < len(blob); cut += 37 {
		if _, err := DecodeSegment(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	for i := 0; i < len(blob); i += 53 {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0x40
		dec, err := DecodeSegment(mut) // may legally succeed; must not panic
		_ = dec
		_ = err
	}
}

func TestCacheBudgetInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	c := genCorpus(rng, 4000, 60, 6)
	mem := buildSegment(c, "mem")
	path := filepath.Join(t.TempDir(), "seg.roar")
	if err := SaveFile(path, mem); err != nil {
		t.Fatal(err)
	}
	disk, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()

	// Budget fits only a handful of postings, so Gets must evict.
	var maxPosting int64
	for _, term := range mem.Terms() {
		if n := int64(mem.mem[term].MemBytes()); n > maxPosting {
			maxPosting = n
		}
	}
	cache := NewCache(3 * maxPosting)
	for trial := 0; trial < 2000; trial++ {
		term := fmt.Sprintf("t%03d", rng.Intn(60))
		bm, err := cache.Get(disk, term)
		if err != nil {
			t.Fatal(err)
		}
		if bm == nil {
			t.Fatalf("posting %q missing", term)
		}
		st := cache.Stats()
		if st.Bytes > st.Budget {
			t.Fatalf("trial %d: residency %d exceeds budget %d", trial, st.Bytes, st.Budget)
		}
	}
	st := cache.Stats()
	if st.Evictions == 0 || st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("cache did not cycle: %+v", st)
	}

	// A posting larger than the whole budget is served but never cached.
	tiny := NewCache(1)
	if _, err := tiny.Get(disk, mem.Terms()[0]); err != nil {
		t.Fatal(err)
	}
	if st := tiny.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversized posting was cached: %+v", st)
	}

	// DropSegment releases everything.
	cache.DropSegment(disk)
	if st := cache.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("DropSegment left residue: %+v", st)
	}
}

func TestTokenizeAndNgrams(t *testing.T) {
	got := Tokenize("Hello, World-2026! go_go")
	want := []string{"hello", "world", "2026", "go", "go"}
	if len(got) != len(want) {
		t.Fatalf("tokenize: %v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("tokenize[%d] = %q want %q", i, got[i], want[i])
		}
	}
	if g := Ngrams("abcab", 3); len(g) != 3 || g[0] != "abc" || g[1] != "bca" || g[2] != "cab" {
		t.Fatalf("ngrams: %v", g)
	}
	if g := Ngrams("ab", 3); len(g) != 1 || g[0] != "ab" {
		t.Fatalf("short ngrams: %v", g)
	}
}
