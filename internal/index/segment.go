package index

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// A Segment is an immutable inverted index over one batch of documents.
//
// Postings are bitmaps over dense per-segment doc ordinals, not raw
// record ids: ROAR record ids are drawn uniformly from the whole uint64
// space (their ring position is the id scaled into [0,1)), so a roaring
// bitmap of raw ids would degenerate into one singleton container per
// record. Ordinals are assigned in record-id order, which keeps the
// containers dense AND makes an id arc a contiguous ordinal range: the
// resident docID column (8B/doc plus the term dictionary — the
// memory-resident "compute" half of the compute/storage split) converts
// arc bounds to ordinal bounds with two binary searches, and the
// posting bitmaps never leave ordinal space until final extraction.
//
// A segment is either memory-resident (built by a Builder) or
// disk-backed (OpenFile), in which case posting bytes are read on
// demand and decoded through the Cache's memory budget.
type Segment struct {
	name   string
	docIDs []uint64 // ordinal -> record id, strictly increasing
	terms  []string // sorted; encoding order
	dict   map[string]postingInfo

	mem map[string]*Bitmap // memory-resident postings (Builder output)

	src    io.ReaderAt // disk-backed posting source
	closer io.Closer
}

// postingInfo locates one term's encoded posting list in the segment
// file. off is absolute within the file.
type postingInfo struct {
	off  int64
	size int
	card int
}

// Name identifies the segment (its file path for disk-backed segments).
func (s *Segment) Name() string { return s.name }

// Docs returns the document count.
func (s *Segment) Docs() int { return len(s.docIDs) }

// Terms returns the sorted term list (shared; do not mutate).
func (s *Segment) Terms() []string { return s.terms }

// Cardinality returns the posting-list length for term (0 when absent)
// without touching the posting bytes — the dictionary is resident.
func (s *Segment) Cardinality(term string) int { return s.dict[term].card }

// Close releases the underlying file, if any.
func (s *Segment) Close() error {
	if s.closer != nil {
		err := s.closer.Close()
		s.closer = nil
		return err
	}
	return nil
}

// loadPosting decodes the posting list for term, reading from disk for
// file-backed segments. Returns nil for absent terms. Callers normally
// go through a Cache; loadPosting itself is unbudgeted.
func (s *Segment) loadPosting(term string) (*Bitmap, error) {
	info, ok := s.dict[term]
	if !ok {
		return nil, nil
	}
	if s.mem != nil {
		return s.mem[term], nil
	}
	buf := make([]byte, info.size)
	if _, err := s.src.ReadAt(buf, info.off); err != nil {
		return nil, fmt.Errorf("index: reading posting %q of %s: %w", term, s.name, err)
	}
	bm, err := DecodeBitmap(buf)
	if err != nil {
		return nil, fmt.Errorf("index: posting %q of %s: %w", term, s.name, err)
	}
	return bm, nil
}

// ordRange returns the ordinal window [a, b) of docs whose record id
// lies in the half-open id interval (lo, hi], assuming lo <= hi (the
// caller splits wrapping arcs).
func (s *Segment) ordRange(lo, hi uint64) (int, int) {
	a := sort.Search(len(s.docIDs), func(i int) bool { return s.docIDs[i] > lo })
	b := sort.Search(len(s.docIDs), func(i int) bool { return s.docIDs[i] > hi })
	return a, b
}

// idsInRanges extracts, ascending and bounded by limit (<= 0 for
// unlimited), the record ids of set-member ordinals inside the given
// ordinal windows.
func (s *Segment) idsInRanges(set *Bitmap, ranges [][2]int, limit int, out []uint64) []uint64 {
	var ords []uint64
	for _, r := range ranges {
		if r[0] >= r[1] {
			continue
		}
		if limit > 0 && len(ords) >= limit {
			break
		}
		// AppendRange's limit bounds the total output length, so the
		// running slice threads straight through.
		ords = set.AppendRange(uint64(r[0]), uint64(r[1]-1), limit, ords)
	}
	for _, o := range ords {
		out = append(out, s.docIDs[int(o)])
	}
	return out
}

// Builder accumulates documents and produces an immutable Segment.
// Not safe for concurrent use.
type Builder struct {
	docs map[uint64][]string
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{docs: make(map[uint64][]string)}
}

// Add registers a document's terms. Re-adding an id replaces its terms
// (idempotent replica pushes, like store.Insert).
func (b *Builder) Add(id uint64, terms ...string) {
	b.docs[id] = append([]string(nil), terms...)
}

// Len reports the buffered document count.
func (b *Builder) Len() int { return len(b.docs) }

// Build freezes the builder into a memory-resident segment: docs are
// ordered by record id, ordinals assigned, and one bitmap built per
// distinct term.
func (b *Builder) Build(name string) *Segment {
	ids := make([]uint64, 0, len(b.docs))
	for id := range b.docs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, c int) bool { return ids[a] < ids[c] })

	mem := make(map[string]*Bitmap)
	for ord, id := range ids {
		for _, t := range b.docs[id] {
			bm := mem[t]
			if bm == nil {
				bm = NewBitmap()
				mem[t] = bm
			}
			bm.Add(uint64(ord))
		}
	}
	terms := make([]string, 0, len(mem))
	dict := make(map[string]postingInfo, len(mem))
	for t, bm := range mem {
		terms = append(terms, t)
		dict[t] = postingInfo{card: bm.Cardinality()}
	}
	sort.Strings(terms)
	return &Segment{name: name, docIDs: ids, terms: terms, dict: dict, mem: mem}
}

// Index is a set of segments searched as one corpus, sharing a
// memory-budgeted posting cache. Safe for concurrent searches;
// AddSegment during searches is serialized by the internal lock.
type Index struct {
	mu    sync.RWMutex
	segs  []*Segment
	cache *Cache
}

// New creates an empty index whose disk-backed posting residency is
// bounded by budgetBytes (<= 0 means a small sane default; see Cache).
func New(budgetBytes int64) *Index {
	return &Index{cache: NewCache(budgetBytes)}
}

// Cache exposes the posting cache (stats, budget introspection).
func (ix *Index) Cache() *Cache { return ix.cache }

// AddSegment attaches a built or opened segment.
func (ix *Index) AddSegment(s *Segment) {
	ix.mu.Lock()
	ix.segs = append(ix.segs, s)
	ix.mu.Unlock()
}

// AddFile opens a segment file and attaches it.
func (ix *Index) AddFile(path string) error {
	s, err := OpenFile(path)
	if err != nil {
		return err
	}
	ix.AddSegment(s)
	return nil
}

// Docs returns the total document count across segments.
func (ix *Index) Docs() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	n := 0
	for _, s := range ix.segs {
		n += s.Docs()
	}
	return n
}

// Segments returns the attached segments (shared slice copy).
func (ix *Index) Segments() []*Segment {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return append([]*Segment(nil), ix.segs...)
}

// Close releases every disk-backed segment.
func (ix *Index) Close() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	var first error
	for _, s := range ix.segs {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	ix.segs = nil
	return first
}
