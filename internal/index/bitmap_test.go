package index

import (
	"math/rand"
	"sort"
	"testing"
)

// randomBitmap builds a bitmap plus its reference set, mixing sparse
// and dense regions so both container forms are exercised.
func randomBitmap(rng *rand.Rand, n int, span uint64) (*Bitmap, map[uint64]bool) {
	b := NewBitmap()
	ref := make(map[uint64]bool)
	for i := 0; i < n; i++ {
		v := rng.Uint64() % span
		b.Add(v)
		ref[v] = true
	}
	return b, ref
}

func sortedKeys(ref map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(ref))
	for v := range ref {
		out = append(out, v)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func TestBitmapAddContainsIterate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// span < 2^16 forces dense promotion; huge span stays sparse arrays.
	for _, span := range []uint64{1 << 14, 1 << 20, 1 << 63} {
		b, ref := randomBitmap(rng, 20000, span)
		if b.Cardinality() != len(ref) {
			t.Fatalf("span %d: cardinality %d want %d", span, b.Cardinality(), len(ref))
		}
		for v := range ref {
			if !b.Contains(v) {
				t.Fatalf("span %d: missing %d", span, v)
			}
		}
		for i := 0; i < 1000; i++ {
			v := rng.Uint64() % span
			if b.Contains(v) != ref[v] {
				t.Fatalf("span %d: Contains(%d) = %v want %v", span, v, b.Contains(v), ref[v])
			}
		}
		var got []uint64
		b.Iterate(func(v uint64) bool { got = append(got, v); return true })
		want := sortedKeys(ref)
		if len(got) != len(want) {
			t.Fatalf("span %d: iterate yielded %d values want %d", span, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("span %d: iterate[%d] = %d want %d", span, i, got[i], want[i])
			}
		}
	}
}

func TestBitmapDensePromotion(t *testing.T) {
	b := NewBitmap()
	for v := uint64(0); v <= arrayMaxCard; v++ {
		b.Add(2 * v) // one container, card 4097 → words form
	}
	if b.Cardinality() != arrayMaxCard+1 {
		t.Fatalf("cardinality %d", b.Cardinality())
	}
	if len(b.cs) != 1 || b.cs[0].words == nil {
		t.Fatalf("expected a single dense container, got %d containers (words=%v)",
			len(b.cs), len(b.cs) > 0 && b.cs[0].words != nil)
	}
	for v := uint64(0); v <= arrayMaxCard; v++ {
		if !b.Contains(2*v) || b.Contains(2*v+1) {
			t.Fatalf("membership wrong around %d after promotion", 2*v)
		}
	}
}

func TestBitmapSetOps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, span := range []uint64{1 << 13, 1 << 22} {
		a, refA := randomBitmap(rng, 8000, span)
		b, refB := randomBitmap(rng, 8000, span)

		and := And(a, b)
		or := Or(a, b)
		wantAnd, wantOr := 0, len(refA)
		for v := range refB {
			if refA[v] {
				wantAnd++
			} else {
				wantOr++
			}
		}
		if and.Cardinality() != wantAnd {
			t.Fatalf("span %d: And card %d want %d", span, and.Cardinality(), wantAnd)
		}
		if or.Cardinality() != wantOr {
			t.Fatalf("span %d: Or card %d want %d", span, or.Cardinality(), wantOr)
		}
		and.Iterate(func(v uint64) bool {
			if !refA[v] || !refB[v] {
				t.Fatalf("span %d: And yielded non-member %d", span, v)
			}
			return true
		})
		or.Iterate(func(v uint64) bool {
			if !refA[v] && !refB[v] {
				t.Fatalf("span %d: Or yielded non-member %d", span, v)
			}
			return true
		})
		// Ops must return canonical containers (array iff ≤ 4096).
		for _, res := range []*Bitmap{and, or} {
			for i, c := range res.cs {
				if c.words != nil && c.card <= arrayMaxCard {
					t.Fatalf("span %d: non-canonical dense container (key %d card %d)", span, res.keys[i], c.card)
				}
				if c.words == nil && c.card > arrayMaxCard {
					t.Fatalf("span %d: overlong array container (card %d)", span, c.card)
				}
			}
		}
	}
}

func TestThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const span = 1 << 18
	bms := make([]*Bitmap, 4)
	refs := make([]map[uint64]bool, 4)
	for i := range bms {
		bms[i], refs[i] = randomBitmap(rng, 30000, span)
	}
	for minMatch := 1; minMatch <= 5; minMatch++ {
		got := Threshold(bms, minMatch)
		want := make(map[uint64]bool)
		for v := uint64(0); v < span; v++ {
			n := 0
			for _, ref := range refs {
				if ref[v] {
					n++
				}
			}
			if n >= minMatch {
				want[v] = true
			}
		}
		if minMatch > len(bms) {
			want = nil
		}
		if got.Cardinality() != len(want) {
			t.Fatalf("minMatch %d: card %d want %d", minMatch, got.Cardinality(), len(want))
		}
		got.Iterate(func(v uint64) bool {
			if !want[v] {
				t.Fatalf("minMatch %d: non-member %d", minMatch, v)
			}
			return true
		})
	}
}

func TestAndAllEarlyTermination(t *testing.T) {
	a := NewBitmap()
	b := NewBitmap()
	for v := uint64(0); v < 100; v++ {
		a.Add(v)
		b.Add(v + 1000)
	}
	if got := AndAll([]*Bitmap{a, b}); got.Cardinality() != 0 {
		t.Fatalf("disjoint AndAll card %d", got.Cardinality())
	}
	if got := AndAll([]*Bitmap{a}); got != a {
		t.Fatal("single-input AndAll should share the input")
	}
	if got := AndAll(nil); got.Cardinality() != 0 {
		t.Fatal("empty AndAll not empty")
	}
}

func TestAppendRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	b, ref := randomBitmap(rng, 20000, 1<<20)
	all := sortedKeys(ref)
	for trial := 0; trial < 200; trial++ {
		from := rng.Uint64() % (1 << 20)
		to := from + rng.Uint64()%(1<<18)
		limit := 0
		if trial%2 == 0 {
			limit = int(rng.Int31n(50)) + 1
		}
		got := b.AppendRange(from, to, limit, nil)
		var want []uint64
		for _, v := range all {
			if v >= from && v <= to {
				want = append(want, v)
				if limit > 0 && len(want) == limit {
					break
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("[%d,%d] limit %d: got %d values want %d", from, to, limit, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("[%d,%d] limit %d: got[%d]=%d want %d", from, to, limit, i, got[i], want[i])
			}
		}
	}
	// Degenerate and boundary shapes.
	if out := b.AppendRange(5, 4, 0, nil); len(out) != 0 {
		t.Fatal("inverted range not empty")
	}
	full := b.AppendRange(0, ^uint64(0), 0, nil)
	if len(full) != len(all) {
		t.Fatalf("full range yielded %d want %d", len(full), len(all))
	}
}
