package index

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// DefaultCacheBudget bounds decoded posting residency when the caller
// passes a non-positive budget.
const DefaultCacheBudget = 32 << 20

// Cache is the memory-budgeted LRU over decoded posting lists of
// disk-backed segments. Residency (the sum of MemBytes of cached
// bitmaps) NEVER exceeds the budget: inserting evicts from the cold end
// first, and a posting larger than the entire budget is returned to the
// caller uncached. Memory-resident segments bypass the cache entirely —
// their postings are already accounted to the heap.
type Cache struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	lru    *list.List // front = hottest; values are *cacheEntry
	items  map[cacheKey]*list.Element

	// Counters are typed atomics so Stats can snapshot them without
	// taking c.mu: a metrics scrape must never queue behind a cold
	// posting decode holding the lock.
	hits, misses, evictions atomic.Int64
}

type cacheKey struct {
	seg  *Segment
	term string
}

type cacheEntry struct {
	key  cacheKey
	bm   *Bitmap
	size int64
}

// NewCache creates a cache holding at most budgetBytes of decoded
// postings (<= 0 selects DefaultCacheBudget).
func NewCache(budgetBytes int64) *Cache {
	if budgetBytes <= 0 {
		budgetBytes = DefaultCacheBudget
	}
	return &Cache{
		budget: budgetBytes,
		lru:    list.New(),
		items:  make(map[cacheKey]*list.Element),
	}
}

// Budget returns the configured byte budget.
func (c *Cache) Budget() int64 { return c.budget }

// CacheStats is a point-in-time snapshot for tests and introspection.
type CacheStats struct {
	Budget    int64
	Bytes     int64
	Entries   int
	Hits      int64
	Misses    int64
	Evictions int64
}

// Stats snapshots the cache counters. The hit/miss/eviction counters
// are read lock-free; only the residency fields take the lock.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	c.mu.Lock()
	st.Budget = c.budget
	st.Bytes = c.bytes
	st.Entries = c.lru.Len()
	c.mu.Unlock()
	return st
}

// Get returns the posting list for term in seg, consulting the cache
// for disk-backed segments. Returns nil for terms the segment does not
// contain. The load happens under the cache lock: concurrent searches
// for the same cold posting decode it once, and the residency invariant
// holds at every instant (never budget + in-flight duplicates).
func (c *Cache) Get(seg *Segment, term string) (*Bitmap, error) {
	if seg.mem != nil {
		return seg.mem[term], nil
	}
	if _, ok := seg.dict[term]; !ok {
		return nil, nil
	}
	key := cacheKey{seg: seg, term: term}

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.hits.Add(1)
		c.lru.MoveToFront(el)
		return el.Value.(*cacheEntry).bm, nil
	}
	c.misses.Add(1)
	bm, err := seg.loadPosting(term)
	if err != nil {
		return nil, err
	}
	size := int64(bm.MemBytes())
	if size > c.budget {
		// Oversized posting: serve it uncached rather than blow the
		// budget or thrash the whole cache for one entry.
		return bm, nil
	}
	for c.bytes+size > c.budget {
		cold := c.lru.Back()
		if cold == nil {
			break
		}
		ent := cold.Value.(*cacheEntry)
		c.lru.Remove(cold)
		delete(c.items, ent.key)
		c.bytes -= ent.size
		c.evictions.Add(1)
	}
	c.items[key] = c.lru.PushFront(&cacheEntry{key: key, bm: bm, size: size})
	c.bytes += size
	return bm, nil
}

// DropSegment evicts every cached posting of seg (segment close or
// replacement).
func (c *Cache) DropSegment(seg *Segment) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		ent := el.Value.(*cacheEntry)
		if ent.key.seg == seg {
			c.lru.Remove(el)
			delete(c.items, ent.key)
			c.bytes -= ent.size
			c.evictions.Add(1)
		}
		el = next
	}
}
