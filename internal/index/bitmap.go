// Package index implements the plaintext inverted-index data plane: term
// posting lists stored as roaring bitmaps, grouped into immutable
// segments with a SaveFile-style length-prefixed disk layout, loaded
// through a memory-budgeted LRU cache so a node can serve indexes far
// larger than RAM. It is the second matcher behind internal/node's
// pluggable Matcher interface — the same ring/hedging/autoscale
// machinery that serves PPS encrypted scans serves these indexes
// unchanged, but a sub-query here costs a few container intersections
// instead of an HMAC per stored record.
package index

import (
	"math/bits"
	"sort"
)

// Roaring layout: a Bitmap holds uint64 values chunked by their high 48
// bits. Each chunk ("container") stores the low 16 bits either as a
// sorted uint16 array (sparse, ≤ arrayMaxCard values) or as a 65536-bit
// word array (dense). Posting lists are built over dense per-segment
// doc ordinals (see segment.go), which is what makes the dense
// containers actually occur; the Bitmap itself accepts arbitrary uint64
// values, so record-id bitmaps work too — they just stay in array form.

const (
	// arrayMaxCard is the array→bitmap promotion threshold: past 4096
	// values the 8KB word array is smaller than 2 bytes per value.
	arrayMaxCard = 4096
	// containerWords is the dense form's word count (65536 bits).
	containerWords = 1 << 16 / 64
)

// container holds one 2^16-value chunk. Exactly one of array/words is
// non-nil; card tracks the value count in both forms.
type container struct {
	array []uint16 // sorted unique, when words == nil
	words []uint64 // len containerWords, when dense
	card  int
}

func (c *container) memBytes() int {
	if c.words != nil {
		return containerWords * 8
	}
	return 2 * len(c.array)
}

func (c *container) contains(low uint16) bool {
	if c.words != nil {
		return c.words[low>>6]&(1<<(low&63)) != 0
	}
	i := sort.Search(len(c.array), func(i int) bool { return c.array[i] >= low })
	return i < len(c.array) && c.array[i] == low
}

func (c *container) add(low uint16) {
	if c.words != nil {
		w, b := low>>6, uint64(1)<<(low&63)
		if c.words[w]&b == 0 {
			c.words[w] |= b
			c.card++
		}
		return
	}
	i := sort.Search(len(c.array), func(i int) bool { return c.array[i] >= low })
	if i < len(c.array) && c.array[i] == low {
		return
	}
	c.array = append(c.array, 0)
	copy(c.array[i+1:], c.array[i:])
	c.array[i] = low
	c.card++
	if c.card > arrayMaxCard {
		c.toWords()
	}
}

func (c *container) toWords() {
	words := make([]uint64, containerWords)
	for _, v := range c.array {
		words[v>>6] |= 1 << (v & 63)
	}
	c.words, c.array = words, nil
}

// toArray demotes a sparse dense-form container back to array form
// (set operations produce canonical containers: array iff ≤ 4096).
func (c *container) toArray() {
	arr := make([]uint16, 0, c.card)
	for w, word := range c.words {
		for word != 0 {
			arr = append(arr, uint16(w<<6+bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	c.array, c.words = arr, nil
}

func (c *container) canonicalize() {
	if c.words != nil && c.card <= arrayMaxCard {
		c.toArray()
	}
}

// iterate calls fn for each value in ascending order; fn returning false
// stops early. Returns false when stopped.
func (c *container) iterate(fn func(low uint16) bool) bool {
	if c.words != nil {
		for w, word := range c.words {
			for word != 0 {
				if !fn(uint16(w<<6 + bits.TrailingZeros64(word))) {
					return false
				}
				word &= word - 1
			}
		}
		return true
	}
	for _, v := range c.array {
		if !fn(v) {
			return false
		}
	}
	return true
}

func andContainer(a, b *container) *container {
	switch {
	case a.words != nil && b.words != nil:
		words := make([]uint64, containerWords)
		card := 0
		for i := range words {
			words[i] = a.words[i] & b.words[i]
			card += bits.OnesCount64(words[i])
		}
		if card == 0 {
			return nil
		}
		out := &container{words: words, card: card}
		out.canonicalize()
		return out
	case a.words == nil && b.words == nil:
		// Merge the smaller array against the larger with binary probes.
		small, large := a, b
		if len(small.array) > len(large.array) {
			small, large = large, small
		}
		var arr []uint16
		for _, v := range small.array {
			if large.contains(v) {
				arr = append(arr, v)
			}
		}
		if len(arr) == 0 {
			return nil
		}
		return &container{array: arr, card: len(arr)}
	default:
		arrC, wordC := a, b
		if arrC.words != nil {
			arrC, wordC = b, a
		}
		var arr []uint16
		for _, v := range arrC.array {
			if wordC.contains(v) {
				arr = append(arr, v)
			}
		}
		if len(arr) == 0 {
			return nil
		}
		return &container{array: arr, card: len(arr)}
	}
}

func orContainer(a, b *container) *container {
	if a.words != nil || b.words != nil || a.card+b.card > arrayMaxCard {
		words := make([]uint64, containerWords)
		fill := func(c *container) {
			if c.words != nil {
				for i, w := range c.words {
					words[i] |= w
				}
				return
			}
			for _, v := range c.array {
				words[v>>6] |= 1 << (v & 63)
			}
		}
		fill(a)
		fill(b)
		card := 0
		for _, w := range words {
			card += bits.OnesCount64(w)
		}
		out := &container{words: words, card: card}
		out.canonicalize()
		return out
	}
	arr := make([]uint16, 0, a.card+b.card)
	i, j := 0, 0
	for i < len(a.array) && j < len(b.array) {
		switch {
		case a.array[i] < b.array[j]:
			arr = append(arr, a.array[i])
			i++
		case a.array[i] > b.array[j]:
			arr = append(arr, b.array[j])
			j++
		default:
			arr = append(arr, a.array[i])
			i, j = i+1, j+1
		}
	}
	arr = append(arr, a.array[i:]...)
	arr = append(arr, b.array[j:]...)
	return &container{array: arr, card: len(arr)}
}

// Bitmap is a compressed set of uint64 values. The zero value is not
// usable; construct with NewBitmap or the package operations. Bitmaps
// returned by Segment/Cache lookups are shared and must be treated as
// immutable.
type Bitmap struct {
	keys []uint64 // value >> 16, strictly increasing
	cs   []*container
	card int
}

// NewBitmap returns an empty bitmap.
func NewBitmap() *Bitmap { return &Bitmap{} }

// Cardinality returns the number of values in the set.
func (b *Bitmap) Cardinality() int { return b.card }

// MemBytes estimates the bitmap's in-memory footprint, the unit the
// segment cache budgets.
func (b *Bitmap) MemBytes() int {
	n := 64 + 8*len(b.keys) // struct + key slice + container headers
	for _, c := range b.cs {
		n += 48 + c.memBytes()
	}
	return n
}

func (b *Bitmap) keyIndex(key uint64) (int, bool) {
	i := sort.Search(len(b.keys), func(i int) bool { return b.keys[i] >= key })
	return i, i < len(b.keys) && b.keys[i] == key
}

// Add inserts a value.
func (b *Bitmap) Add(v uint64) {
	key := v >> 16
	i, ok := b.keyIndex(key)
	if !ok {
		b.keys = append(b.keys, 0)
		b.cs = append(b.cs, nil)
		copy(b.keys[i+1:], b.keys[i:])
		copy(b.cs[i+1:], b.cs[i:])
		b.keys[i] = key
		b.cs[i] = &container{}
	}
	c := b.cs[i]
	before := c.card
	c.add(uint16(v))
	b.card += c.card - before
}

// Contains reports membership.
func (b *Bitmap) Contains(v uint64) bool {
	i, ok := b.keyIndex(v >> 16)
	return ok && b.cs[i].contains(uint16(v))
}

// Iterate calls fn for each value in ascending order until fn returns
// false.
func (b *Bitmap) Iterate(fn func(v uint64) bool) {
	for i, key := range b.keys {
		base := key << 16
		if !b.cs[i].iterate(func(low uint16) bool { return fn(base | uint64(low)) }) {
			return
		}
	}
}

// AppendRange appends the values in the inclusive range [from, to] to
// out, in ascending order, stopping once limit values have been
// appended in total (limit <= 0 means unlimited). It returns the
// extended slice.
func (b *Bitmap) AppendRange(from, to uint64, limit int, out []uint64) []uint64 {
	if from > to {
		return out
	}
	loKey, hiKey := from>>16, to>>16
	start := sort.Search(len(b.keys), func(i int) bool { return b.keys[i] >= loKey })
	for i := start; i < len(b.keys) && b.keys[i] <= hiKey; i++ {
		base := b.keys[i] << 16
		boundary := b.keys[i] == loKey || b.keys[i] == hiKey
		if !b.cs[i].iterate(func(low uint16) bool {
			v := base | uint64(low)
			if boundary && (v < from || v > to) {
				return v <= to // past `to` inside the last container: stop
			}
			out = append(out, v)
			return limit <= 0 || len(out) < limit
		}) {
			if limit > 0 && len(out) >= limit {
				return out
			}
		}
	}
	return out
}

// And intersects two bitmaps.
func And(a, b *Bitmap) *Bitmap {
	out := NewBitmap()
	i, j := 0, 0
	for i < len(a.keys) && j < len(b.keys) {
		switch {
		case a.keys[i] < b.keys[j]:
			i++
		case a.keys[i] > b.keys[j]:
			j++
		default:
			if c := andContainer(a.cs[i], b.cs[j]); c != nil {
				out.keys = append(out.keys, a.keys[i])
				out.cs = append(out.cs, c)
				out.card += c.card
			}
			i, j = i+1, j+1
		}
	}
	return out
}

// Or unions two bitmaps.
func Or(a, b *Bitmap) *Bitmap {
	out := NewBitmap()
	i, j := 0, 0
	push := func(key uint64, c *container) {
		out.keys = append(out.keys, key)
		out.cs = append(out.cs, c)
		out.card += c.card
	}
	for i < len(a.keys) && j < len(b.keys) {
		switch {
		case a.keys[i] < b.keys[j]:
			push(a.keys[i], a.cs[i])
			i++
		case a.keys[i] > b.keys[j]:
			push(b.keys[j], b.cs[j])
			j++
		default:
			push(a.keys[i], orContainer(a.cs[i], b.cs[j]))
			i, j = i+1, j+1
		}
	}
	for ; i < len(a.keys); i++ {
		push(a.keys[i], a.cs[i])
	}
	for ; j < len(b.keys); j++ {
		push(b.keys[j], b.cs[j])
	}
	return out
}

// AndAll intersects the given bitmaps smallest-cardinality-first,
// terminating early the moment the running intersection goes empty —
// the cheap predicates prune before the expensive ones are touched.
func AndAll(bms []*Bitmap) *Bitmap {
	if len(bms) == 0 {
		return NewBitmap()
	}
	sorted := append([]*Bitmap(nil), bms...)
	sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].card < sorted[b].card })
	acc := sorted[0]
	if acc.card == 0 {
		return NewBitmap()
	}
	for _, bm := range sorted[1:] {
		acc = And(acc, bm)
		if acc.card == 0 {
			break
		}
	}
	// Single input shares the original — bitmaps are immutable by
	// contract, so no defensive copy.
	return acc
}

// OrAll unions the given bitmaps.
func OrAll(bms []*Bitmap) *Bitmap {
	acc := NewBitmap()
	for _, bm := range bms {
		acc = Or(acc, bm)
	}
	return acc
}

// Threshold returns the values present in at least minMatch of the
// given bitmaps (the T-of-N query mode). minMatch is clamped to
// [1, len(bms)]; counting runs per 2^16-value chunk with a reusable
// tally array, so each chunk costs the sum of its containers'
// cardinalities plus one sweep.
func Threshold(bms []*Bitmap, minMatch int) *Bitmap {
	if len(bms) == 0 {
		return NewBitmap()
	}
	if minMatch < 1 {
		minMatch = 1
	}
	if minMatch > len(bms) {
		return NewBitmap()
	}
	if minMatch == 1 {
		return OrAll(bms)
	}
	// Gather the union of keys, then tally per key.
	keySet := map[uint64]struct{}{}
	for _, bm := range bms {
		for _, k := range bm.keys {
			keySet[k] = struct{}{}
		}
	}
	keys := make([]uint64, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })

	out := NewBitmap()
	var counts [1 << 16]uint16
	for _, key := range keys {
		clear(counts[:])
		present := 0
		for _, bm := range bms {
			if i, ok := bm.keyIndex(key); ok {
				present++
				bm.cs[i].iterate(func(low uint16) bool {
					counts[low]++
					return true
				})
			}
		}
		if present < minMatch {
			continue
		}
		c := &container{}
		for v := 0; v < 1<<16; v++ {
			if int(counts[v]) >= minMatch {
				c.array = append(c.array, uint16(v))
			}
		}
		c.card = len(c.array)
		if c.card == 0 {
			continue
		}
		if c.card > arrayMaxCard {
			c.toWords()
		}
		out.keys = append(out.keys, key)
		out.cs = append(out.cs, c)
		out.card += c.card
	}
	return out
}
