package index

import (
	"math/rand"
	"testing"
)

// FuzzDecodeSegment: the segment decoder faces bytes from disk, so
// truncated/corrupt images must error or decode, never panic or
// over-allocate; a valid decode must survive re-encode → re-decode.
func FuzzDecodeSegment(f *testing.F) {
	rng := rand.New(rand.NewSource(42))
	b := NewBuilder()
	for i := 0; i < 200; i++ {
		b.Add(rng.Uint64(), "alpha", "beta", Ngrams("gamma", 3)[i%3])
	}
	seed, err := EncodeSegment(b.Build("seed"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	// A segment with a dense (words-form) container.
	dense := NewBuilder()
	for i := uint64(0); i < 5000; i++ {
		dense.Add(i*7, "hot")
	}
	dseed, err := EncodeSegment(dense.Build("dense"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(dseed)
	f.Add([]byte{})
	f.Add([]byte("ROARSEG1"))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSegment(data)
		if err != nil {
			return
		}
		blob, err := EncodeSegment(s)
		if err != nil {
			t.Fatalf("re-encode of valid segment failed: %v", err)
		}
		back, err := DecodeSegment(blob)
		if err != nil {
			t.Fatalf("re-decode of valid segment failed: %v", err)
		}
		if back.Docs() != s.Docs() || len(back.Terms()) != len(s.Terms()) {
			t.Fatalf("round-trip drift: %d/%d docs, %d/%d terms",
				back.Docs(), s.Docs(), len(back.Terms()), len(s.Terms()))
		}
	})
}
