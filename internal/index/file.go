package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
	"os"
)

// Disk segment layout (little-endian where fixed-width, uvarint
// elsewhere), the SaveFile-style length-prefixed shape of the store's
// record files applied to an index:
//
//	8 bytes  magic "ROARSEG1"
//	uvarint  docCount
//	docIDs   first absolute, then uvarint deltas (strictly increasing)
//	uvarint  termCount
//	dict     termCount entries, terms strictly increasing:
//	           uvarint termLen, term bytes
//	           uvarint cardinality
//	           uvarint postingSize (encoded bitmap byte length)
//	blobs    postings concatenated in dict order, each postingSize bytes
//
// The header (docIDs + dict) is what OpenFile keeps resident; posting
// blobs are ReadAt on demand through the cache. Bitmap encoding:
//
//	uvarint  containerCount
//	per container (keys strictly increasing):
//	  uvarint key
//	  byte    form: 0 array, 1 words
//	  uvarint cardinality
//	  array:  cardinality × uint16 LE   (1 ≤ card ≤ 4096)
//	  words:  8192 bytes                (card = popcount > 4096)
//
// Decoders are strict — trailing bytes, unsorted keys or values,
// non-canonical container forms, and count/size mismatches are all
// rejected — and allocation is bounded by the input length, so a
// corrupt or adversarial segment cannot provoke huge allocations
// (FuzzDecodeSegment leans on both properties).

var segMagic = [8]byte{'R', 'O', 'A', 'R', 'S', 'E', 'G', '1'}

// --- encoding ---

// AppendBitmap appends b's encoding to buf.
func AppendBitmap(buf []byte, b *Bitmap) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b.keys)))
	for i, key := range b.keys {
		c := b.cs[i]
		buf = binary.AppendUvarint(buf, key)
		if c.words != nil {
			buf = append(buf, 1)
			buf = binary.AppendUvarint(buf, uint64(c.card))
			for _, w := range c.words {
				buf = binary.LittleEndian.AppendUint64(buf, w)
			}
			continue
		}
		buf = append(buf, 0)
		buf = binary.AppendUvarint(buf, uint64(c.card))
		for _, v := range c.array {
			buf = binary.LittleEndian.AppendUint16(buf, v)
		}
	}
	return buf
}

// WriteSegment writes a memory-resident segment in the disk layout.
func WriteSegment(w io.Writer, s *Segment) error {
	if s.mem == nil {
		return fmt.Errorf("index: cannot write disk-backed segment %s (postings not resident)", s.name)
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(segMagic[:]); err != nil {
		return err
	}
	var scratch []byte
	scratch = binary.AppendUvarint(scratch, uint64(len(s.docIDs)))
	prev := uint64(0)
	for i, id := range s.docIDs {
		if i == 0 {
			scratch = binary.AppendUvarint(scratch, id)
		} else {
			scratch = binary.AppendUvarint(scratch, id-prev)
		}
		prev = id
	}
	scratch = binary.AppendUvarint(scratch, uint64(len(s.terms)))
	// Encode postings once to learn their sizes for the dictionary.
	blobs := make([][]byte, len(s.terms))
	for i, t := range s.terms {
		blobs[i] = AppendBitmap(nil, s.mem[t])
		scratch = binary.AppendUvarint(scratch, uint64(len(t)))
		scratch = append(scratch, t...)
		scratch = binary.AppendUvarint(scratch, uint64(s.dict[t].card))
		scratch = binary.AppendUvarint(scratch, uint64(len(blobs[i])))
	}
	if _, err := bw.Write(scratch); err != nil {
		return err
	}
	for _, blob := range blobs {
		if _, err := bw.Write(blob); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SaveFile writes a memory-resident segment to path.
func SaveFile(path string, s *Segment) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("index: creating %s: %w", path, err)
	}
	if err := WriteSegment(f, s); err != nil {
		f.Close()
		return fmt.Errorf("index: writing %s: %w", path, err)
	}
	return f.Close()
}

// EncodeSegment renders a memory-resident segment as one byte slice
// (tests and the fuzz seed corpus).
func EncodeSegment(s *Segment) ([]byte, error) {
	var buf writerBuf
	if err := WriteSegment(&buf, s); err != nil {
		return nil, err
	}
	return buf.b, nil
}

type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// --- decoding ---

// segReader is a bounds-checked cursor (same discipline as the proto
// body codecs: fail once, stay failed, finish() surfaces it).
type segReader struct {
	data []byte
	off  int
	err  error
}

func (r *segReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("index: truncated or corrupt %s", what)
	}
}

func (r *segReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.off += n
	return v
}

func (r *segReader) byte(what string) byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.data) {
		r.fail(what)
		return 0
	}
	b := r.data[r.off]
	r.off++
	return b
}

func (r *segReader) take(n int, what string) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.data)-r.off < n {
		r.fail(what)
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

// count guards a declared element count against the bytes present.
func (r *segReader) count(what string, minBytes int) int {
	n := r.uvarint(what)
	if r.err != nil {
		return 0
	}
	if n > uint64((len(r.data)-r.off)/minBytes+1) {
		r.fail(what + " count")
		return 0
	}
	return int(n)
}

// decodeBitmapInto parses one bitmap from the cursor.
func decodeBitmapInto(r *segReader) *Bitmap {
	// A container costs at least key(1) + form(1) + card(1) + 2 bytes.
	n := r.count("bitmap containers", 5)
	b := NewBitmap()
	prevKey := uint64(0)
	for i := 0; i < n && r.err == nil; i++ {
		key := r.uvarint("container key")
		if i > 0 && key <= prevKey {
			r.fail("container key order")
			return nil
		}
		prevKey = key
		form := r.byte("container form")
		card := int(r.uvarint("container cardinality"))
		var c *container
		switch form {
		case 0:
			if card < 1 || card > arrayMaxCard {
				r.fail("array container cardinality")
				return nil
			}
			raw := r.take(2*card, "array container values")
			if r.err != nil {
				return nil
			}
			arr := make([]uint16, card)
			prev := -1
			for j := range arr {
				v := binary.LittleEndian.Uint16(raw[2*j:])
				if int(v) <= prev {
					r.fail("array container value order")
					return nil
				}
				prev = int(v)
				arr[j] = v
			}
			c = &container{array: arr, card: card}
		case 1:
			raw := r.take(containerWords*8, "words container payload")
			if r.err != nil {
				return nil
			}
			words := make([]uint64, containerWords)
			got := 0
			for j := range words {
				words[j] = binary.LittleEndian.Uint64(raw[8*j:])
				got += bits.OnesCount64(words[j])
			}
			if got != card || card <= arrayMaxCard {
				// card ≤ 4096 must be array form (canonical encoding).
				r.fail("words container cardinality")
				return nil
			}
			c = &container{words: words, card: card}
		default:
			r.fail("container form byte")
			return nil
		}
		b.keys = append(b.keys, key)
		b.cs = append(b.cs, c)
		b.card += c.card
	}
	if r.err != nil {
		return nil
	}
	return b
}

// DecodeBitmap parses one encoded bitmap, rejecting trailing bytes.
func DecodeBitmap(data []byte) (*Bitmap, error) {
	r := &segReader{data: data}
	b := decodeBitmapInto(r)
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.data) {
		return nil, fmt.Errorf("index: %d trailing bytes after bitmap", len(r.data)-r.off)
	}
	return b, nil
}

// decodeHeader parses magic, docIDs, and the dictionary, returning a
// segment whose postingInfo offsets are absolute. The cursor is left at
// the first posting blob.
func decodeHeader(r *segReader, name string) *Segment {
	magic := r.take(8, "segment magic")
	if r.err == nil && string(magic) != string(segMagic[:]) {
		r.fail("segment magic")
	}
	nDocs := r.count("segment docIDs", 1)
	docIDs := make([]uint64, 0, capDocs(nDocs))
	prev := uint64(0)
	for i := 0; i < nDocs && r.err == nil; i++ {
		v := r.uvarint("segment docID")
		if i > 0 {
			v += prev
			if v <= prev {
				r.fail("segment docID order")
				break
			}
		}
		docIDs = append(docIDs, v)
		prev = v
	}
	// A dict entry costs at least termLen(1) + card(1) + size(1).
	nTerms := r.count("segment terms", 3)
	s := &Segment{name: name, docIDs: docIDs, dict: make(map[string]postingInfo, capDocs(nTerms))}
	blobBytes := int64(0)
	prevTerm := ""
	for i := 0; i < nTerms && r.err == nil; i++ {
		tl := int(r.uvarint("term length"))
		term := string(r.take(tl, "term bytes"))
		if r.err != nil {
			break
		}
		if i > 0 && term <= prevTerm {
			r.fail("term order")
			break
		}
		prevTerm = term
		card := int(r.uvarint("term cardinality"))
		size := int(r.uvarint("posting size"))
		if r.err != nil {
			break
		}
		if card < 0 || size < 0 {
			r.fail("dict entry")
			break
		}
		s.terms = append(s.terms, term)
		s.dict[term] = postingInfo{off: blobBytes, size: size, card: card}
		blobBytes += int64(size)
	}
	if r.err != nil {
		return nil
	}
	// Rebase offsets to the end of the header.
	base := int64(r.off)
	for t, info := range s.dict {
		info.off += base
		s.dict[t] = info
	}
	return s
}

// capDocs bounds up-front slice allocation for decoded counts.
func capDocs(n int) int {
	const maxHint = 4096
	if n > maxHint {
		return maxHint
	}
	return n
}

// DecodeSegment parses a complete segment image into a memory-resident
// segment, validating every posting (cardinality and size must match
// the dictionary) and rejecting trailing bytes. OpenFile is the
// lazy-loading production path; this is the oracle the fuzzer drives.
func DecodeSegment(data []byte) (*Segment, error) {
	r := &segReader{data: data}
	s := decodeHeader(r, "<bytes>")
	if r.err != nil {
		return nil, r.err
	}
	s.mem = make(map[string]*Bitmap, len(s.terms))
	for _, t := range s.terms {
		info := s.dict[t]
		blob := r.take(info.size, "posting blob")
		if r.err != nil {
			return nil, r.err
		}
		bm, err := DecodeBitmap(blob)
		if err != nil {
			return nil, fmt.Errorf("index: posting %q: %w", t, err)
		}
		if bm.Cardinality() != info.card {
			return nil, fmt.Errorf("index: posting %q cardinality %d != dict %d", t, bm.Cardinality(), info.card)
		}
		// Ordinals must stay inside the doc table.
		if n := len(s.docIDs); bm.card > 0 && maxValue(bm) >= uint64(n) {
			return nil, fmt.Errorf("index: posting %q ordinal %d outside doc table (%d docs)", t, maxValue(bm), n)
		}
		s.mem[t] = bm
	}
	if r.off != len(r.data) {
		return nil, fmt.Errorf("index: %d trailing bytes after segment", len(r.data)-r.off)
	}
	return s, nil
}

// maxValue returns the largest value in a non-empty bitmap.
func maxValue(b *Bitmap) uint64 {
	if len(b.keys) == 0 {
		return 0
	}
	c := b.cs[len(b.cs)-1]
	base := b.keys[len(b.keys)-1] << 16
	if c.words != nil {
		for w := containerWords - 1; w >= 0; w-- {
			if c.words[w] != 0 {
				return base | uint64(w<<6+63-bits.LeadingZeros64(c.words[w]))
			}
		}
	}
	return base | uint64(c.array[len(c.array)-1])
}

// OpenFile opens a disk segment: the header (doc table + dictionary) is
// parsed and kept resident, posting blobs stay on disk behind ReadAt.
func OpenFile(path string) (*Segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("index: opening %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("index: stat %s: %w", path, err)
	}
	// The header is a small prefix; read it in growing chunks until the
	// dictionary parses (the parse tells us where it ends).
	s, hdrLen, derr := openHeader(f, st.Size(), path)
	if derr != nil {
		f.Close()
		return nil, derr
	}
	// Validate the blob region length against the file size.
	blobBytes := int64(0)
	for _, info := range s.dict {
		if end := info.off + int64(info.size); end > st.Size() {
			f.Close()
			return nil, fmt.Errorf("index: %s: posting blob past end of file", path)
		}
		blobBytes += int64(info.size)
	}
	if hdrLen+blobBytes != st.Size() {
		f.Close()
		return nil, fmt.Errorf("index: %s: %d trailing bytes after segment", path, st.Size()-hdrLen-blobBytes)
	}
	s.src = f
	s.closer = f
	return s, nil
}

// openHeader reads and parses the segment header from the front of the
// file, growing the read window until the parse fits.
func openHeader(f *os.File, size int64, path string) (*Segment, int64, error) {
	chunk := int64(1 << 16)
	for {
		if chunk > size {
			chunk = size
		}
		buf := make([]byte, chunk)
		if _, err := io.ReadFull(f, buf); err != nil {
			return nil, 0, fmt.Errorf("index: reading %s: %w", path, err)
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, 0, err
		}
		r := &segReader{data: buf}
		s := decodeHeader(r, path)
		if r.err == nil {
			return s, int64(r.off), nil
		}
		if chunk == size {
			return nil, 0, fmt.Errorf("index: %s: %w", path, r.err)
		}
		chunk *= 4
	}
}
