package index

import (
	"context"
	"fmt"
	"sort"
)

// Mode selects how a query's terms combine.
type Mode uint8

const (
	// ModeAnd matches docs containing every term.
	ModeAnd Mode = iota
	// ModeOr matches docs containing any term.
	ModeOr
	// ModeThreshold matches docs containing at least MinMatch terms.
	ModeThreshold
)

// Query is a plaintext index query. Terms are matched exactly against
// the indexed term strings (tokenization happens at build time; see
// Tokenize/Ngrams).
type Query struct {
	Terms []string
	Mode  Mode
	// MinMatch is the T of a ModeThreshold query (clamped to
	// [1, len(Terms)]).
	MinMatch int
	// Limit caps the result to the numerically-smallest Limit record
	// ids inside the searched arc (top-k). 0 = unlimited.
	Limit int
}

// Validate rejects structurally bad queries before any posting I/O.
func (q Query) Validate() error {
	if len(q.Terms) == 0 {
		return fmt.Errorf("index: query has no terms")
	}
	if q.Mode > ModeThreshold {
		return fmt.Errorf("index: unknown query mode %d", q.Mode)
	}
	return nil
}

// SearchArc runs the query over every segment, restricted to record
// ids in the half-open id arc (lo, hi] (wrapping when lo >= hi; full
// set when full is true — mirroring ring.MatchSpan's lo == hi
// convention, which id truncation cannot express). It returns the
// matching record ids ascending (at most Limit of the smallest when
// Limit > 0) and the number of posting entries examined — the
// scanned-work analogue of the PPS scan path's record count.
func (ix *Index) SearchArc(ctx context.Context, q Query, lo, hi uint64, full bool) ([]uint64, int, error) {
	if err := q.Validate(); err != nil {
		return nil, 0, err
	}
	ix.mu.RLock()
	segs := ix.segs
	ix.mu.RUnlock()

	var (
		ids     []uint64
		scanned int
	)
	for _, seg := range segs {
		if err := ctx.Err(); err != nil {
			return nil, scanned, err
		}
		segIDs, n, err := ix.searchSegment(ctx, seg, q, lo, hi, full)
		scanned += n
		if err != nil {
			return nil, scanned, err
		}
		ids = append(ids, segIDs...)
	}
	if len(segs) > 1 {
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		// Segments normally partition the corpus, but overlapping pushes
		// are legal (idempotent replication); drop duplicates like the
		// frontend's merge does.
		w := 0
		for i, id := range ids {
			if i > 0 && ids[w-1] == id {
				continue
			}
			ids[w] = id
			w++
		}
		ids = ids[:w]
	}
	if q.Limit > 0 && len(ids) > q.Limit {
		ids = ids[:q.Limit]
	}
	return ids, scanned, nil
}

// searchSegment evaluates the query in one segment. The ordinal windows
// are computed first so a segment with no documents in the arc is
// skipped before any posting list is touched — an arc-partitioned node
// holding a whole-corpus segment file only ever pays for the terms, not
// per-arc copies of them.
func (ix *Index) searchSegment(ctx context.Context, seg *Segment, q Query, lo, hi uint64, full bool) ([]uint64, int, error) {
	var ranges [][2]int
	switch {
	case full:
		ranges = [][2]int{{0, seg.Docs()}}
	case lo < hi:
		a, b := seg.ordRange(lo, hi)
		ranges = [][2]int{{a, b}}
	default:
		// Wrapping arc (lo, max] ∪ [0, hi]: the [0, hi] window first —
		// its ids are numerically smaller, so a Limit cut keeps the
		// smallest ids in the arc.
		a, _ := seg.ordRange(lo, ^uint64(0))
		_, b := seg.ordRange(0, hi)
		ranges = [][2]int{{0, b}, {a, seg.Docs()}}
		if hi == ^uint64(0) || b > a {
			// Degenerate split (possible only with adversarial bounds,
			// not ring-derived ones): fall back to the full window
			// rather than double-count overlapping ranges.
			ranges = [][2]int{{0, seg.Docs()}}
		}
	}
	live := false
	for _, r := range ranges {
		if r[0] < r[1] {
			live = true
		}
	}
	if !live {
		return nil, 0, nil
	}

	scanned := 0
	postings := make([]*Bitmap, 0, len(q.Terms))
	for _, term := range q.Terms {
		if err := ctx.Err(); err != nil {
			return nil, scanned, err
		}
		bm, err := ix.cache.Get(seg, term)
		if err != nil {
			return nil, scanned, err
		}
		if bm == nil {
			bm = NewBitmap()
		}
		scanned += bm.Cardinality()
		if q.Mode == ModeAnd && bm.Cardinality() == 0 {
			// Early termination: one empty conjunct empties the result
			// before the remaining (possibly disk-resident) terms load.
			return nil, scanned, nil
		}
		postings = append(postings, bm)
	}

	var set *Bitmap
	switch q.Mode {
	case ModeAnd:
		set = AndAll(postings)
	case ModeOr:
		set = OrAll(postings)
	case ModeThreshold:
		set = Threshold(postings, q.MinMatch)
	}
	if set.Cardinality() == 0 {
		return nil, scanned, nil
	}
	return seg.idsInRanges(set, ranges, q.Limit, nil), scanned, nil
}
