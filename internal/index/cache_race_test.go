package index

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
)

// TestCacheConcurrentHammer drives Get, Stats, and DropSegment from
// many goroutines at once over two disk-backed segments. It exists to
// run under -race: the Stats counters are read lock-free, so any
// access that slips outside the atomics (or any LRU state touched
// outside c.mu) surfaces here. It also checks the invariants that
// survive concurrency — residency never over budget, counters
// monotonic.
func TestCacheConcurrentHammer(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	corpus := genCorpus(rng, 3000, 48, 6)
	dir := t.TempDir()
	var disks []*Segment
	for i := 0; i < 2; i++ {
		mem := buildSegment(corpus, fmt.Sprintf("seg%d", i))
		path := filepath.Join(dir, fmt.Sprintf("seg%d.roar", i))
		if err := SaveFile(path, mem); err != nil {
			t.Fatal(err)
		}
		disk, err := OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		defer disk.Close()
		disks = append(disks, disk)
	}

	// A tight budget keeps the eviction path hot.
	cache := NewCache(64 << 10)

	const workers = 8
	const opsPerWorker = 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsPerWorker; i++ {
				switch rng.Intn(10) {
				case 0:
					st := cache.Stats()
					if st.Bytes > st.Budget {
						t.Errorf("residency %d exceeds budget %d", st.Bytes, st.Budget)
						return
					}
				case 1:
					cache.DropSegment(disks[rng.Intn(len(disks))])
				default:
					term := fmt.Sprintf("t%03d", rng.Intn(48))
					bm, err := cache.Get(disks[rng.Intn(len(disks))], term)
					if err != nil {
						t.Error(err)
						return
					}
					if bm == nil {
						t.Errorf("posting %q missing", term)
						return
					}
				}
			}
		}(int64(w) + 100)
	}
	wg.Wait()

	st := cache.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatalf("hammer did no lookups: %+v", st)
	}
	if st.Bytes > st.Budget {
		t.Fatalf("final residency %d exceeds budget %d", st.Bytes, st.Budget)
	}
}
