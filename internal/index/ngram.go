package index

import (
	"strings"
	"unicode"
)

// Tokenize splits text into lower-cased terms on any non-alphanumeric
// rune — the build-time analyzer for the plaintext workload. Query
// terms must be produced by the same analyzer to match.
func Tokenize(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// Ngrams returns the distinct character n-grams of term, for
// substring-style matching: index Ngrams(term, n) at build time and
// intersect Ngrams(pattern, n) at query time (candidates still need a
// verification pass — n-gram intersection over-approximates substring
// containment). Terms shorter than n yield the term itself so short
// tokens stay findable.
func Ngrams(term string, n int) []string {
	if n <= 0 || len(term) <= n {
		return []string{term}
	}
	seen := make(map[string]struct{}, len(term)-n+1)
	out := make([]string, 0, len(term)-n+1)
	for i := 0; i+n <= len(term); i++ {
		g := term[i : i+n]
		if _, ok := seen[g]; ok {
			continue
		}
		seen[g] = struct{}{}
		out = append(out, g)
	}
	return out
}
