package pps

import (
	"fmt"
	"sort"
)

// ServerParams are the public parameters a matching server needs: only
// the Bloom filter size. No key material ever reaches the server.
type ServerParams struct {
	MBits int
}

// matchBloomBits is the generic (allocating) server-side matching
// reference used by MatchOne. The hot path lives in Run, which evaluates
// the same function through a reusable zero-allocation PRF kernel; this
// form is kept as the plain-Go oracle the kernel is tested (and
// benchmarked, BenchmarkMatchKernel/legacy) against.
func matchBloomBits(mBits int, q BloomQuery, m BloomMetadata) bool {
	for _, x := range q.Trapdoor {
		pos := int(prfUint64(m.Nonce, x) % uint64(mBits))
		if !getBit(m.Filter, pos) {
			return false
		}
	}
	return true
}

// Matcher evaluates encrypted queries against encrypted metadata on the
// server. It is stateless and safe for concurrent use.
type Matcher struct {
	mBits int
}

// NewMatcher builds a matcher from public parameters.
func NewMatcher(p ServerParams) (*Matcher, error) {
	if p.MBits <= 0 {
		return nil, fmt.Errorf("pps: matcher needs positive MBits, got %d", p.MBits)
	}
	return &Matcher{mBits: p.MBits}, nil
}

// MatchOne evaluates a single predicate. One-shot convenience: it pays
// a fresh HMAC key schedule per hash evaluation. Batch callers should
// use a Run, whose kernel amortises keying per record.
func (m *Matcher) MatchOne(q BloomQuery, md BloomMetadata) bool {
	return matchBloomBits(m.mBits, q, md)
}

// SelectivitySamples is the number of metadata sampled before predicates
// are re-ordered by selectivity. §5.6.5 derives 225 from Chebyshev's
// inequality for ±0.1 selectivity accuracy at ~89% confidence.
const SelectivitySamples = 225

// Run is the per-query matching state implementing dynamic predicate
// ordering (§5.6.5): the first SelectivitySamples records are matched
// against every predicate while counting per-predicate selectivity;
// afterwards predicates are sorted (most selective first for AND, least
// selective first for OR) and evaluation short-circuits.
//
// Run owns a reusable PRF kernel, re-keyed once per record by the record
// nonce, so the settled-order steady state performs zero heap
// allocations per record. Run is not safe for concurrent use; create
// one per matching thread and merge results, or share one behind the
// store's batching.
type Run struct {
	m       *Matcher
	q       Query
	counts  []int // matches per predicate during sampling
	sampled int
	order   []int // settled evaluation order (nil until settled)
	prf     prfKernel
}

// NewRun starts the matching state for one query.
func (m *Matcher) NewRun(q Query) *Run {
	r := &Run{m: m, q: q, counts: make([]int, len(q.Preds))}
	r.prf.init()
	return r
}

// Sampled reports how many records contributed to selectivity estimates.
func (r *Run) Sampled() int { return r.sampled }

// Order returns the settled predicate order, or nil while sampling.
func (r *Run) Order() []int { return r.order }

// evalPred checks one predicate against the record the kernel is
// currently keyed for (setKey(md.Nonce) must precede it).
func (r *Run) evalPred(q BloomQuery, filter []byte) bool {
	mBits := uint64(r.m.mBits)
	for _, x := range q.Trapdoor {
		if !getBit(filter, int(r.prf.sum64(x)%mBits)) {
			return false
		}
	}
	return true
}

// Match evaluates the full query against one record.
func (r *Run) Match(md BloomMetadata) bool {
	if len(r.q.Preds) == 0 {
		return false
	}
	r.prf.setKey(md.Nonce)
	if len(r.q.Preds) == 1 {
		return r.evalPred(r.q.Preds[0], md.Filter)
	}
	if r.order == nil {
		return r.sampleMatch(md)
	}
	return r.orderedMatch(md)
}

// MatchBatch evaluates the query against a batch of records, appending
// matching IDs to out and returning the extended slice. It is the
// store's §5.6.3 consumer entry point: with a settled order and a
// pre-grown out slice the whole scan is allocation-free.
func (r *Run) MatchBatch(recs []Encoded, out []uint64) []uint64 {
	for i := range recs {
		if r.Match(recs[i].BloomMetadata) {
			out = append(out, recs[i].ID)
		}
	}
	return out
}

func (r *Run) sampleMatch(md BloomMetadata) bool {
	// Evaluate every predicate to learn selectivities.
	all := true
	any := false
	for i := range r.q.Preds {
		if r.evalPred(r.q.Preds[i], md.Filter) {
			r.counts[i]++
			any = true
		} else {
			all = false
		}
	}
	r.sampled++
	if r.sampled >= SelectivitySamples {
		r.settle()
	}
	if r.q.Op == And {
		return all
	}
	return any
}

func (r *Run) settle() {
	r.order = make([]int, len(r.q.Preds))
	for i := range r.order {
		r.order[i] = i
	}
	asc := r.q.Op == And // AND: fewest matches (most selective) first
	sort.SliceStable(r.order, func(a, b int) bool {
		ca, cb := r.counts[r.order[a]], r.counts[r.order[b]]
		if asc {
			return ca < cb
		}
		return ca > cb
	})
}

func (r *Run) orderedMatch(md BloomMetadata) bool {
	if r.q.Op == And {
		for _, i := range r.order {
			if !r.evalPred(r.q.Preds[i], md.Filter) {
				return false
			}
		}
		return true
	}
	for _, i := range r.order {
		if r.evalPred(r.q.Preds[i], md.Filter) {
			return true
		}
	}
	return false
}

// MatchAll is a convenience helper matching a query against a slice of
// records, returning the IDs of matches. It uses a fresh Run, so
// dynamic ordering is exercised exactly as a server would.
func (m *Matcher) MatchAll(q Query, mds []Encoded) []uint64 {
	run := m.NewRun(q)
	return run.MatchBatch(mds, nil)
}
