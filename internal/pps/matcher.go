package pps

import (
	"fmt"
	"sort"
)

// ServerParams are the public parameters a matching server needs: only
// the Bloom filter size. No key material ever reaches the server.
type ServerParams struct {
	MBits int
}

// matchBloomBits is the shared server-side matching kernel used by both
// the client-side Bloom scheme and the keyless Matcher, so the two can
// never diverge.
func matchBloomBits(mBits int, q BloomQuery, m BloomMetadata) bool {
	for _, x := range q.Trapdoor {
		pos := int(prfUint64(m.Nonce, x) % uint64(mBits))
		if !getBit(m.Filter, pos) {
			return false
		}
	}
	return true
}

// Matcher evaluates encrypted queries against encrypted metadata on the
// server. It is stateless and safe for concurrent use.
type Matcher struct {
	mBits int
}

// NewMatcher builds a matcher from public parameters.
func NewMatcher(p ServerParams) (*Matcher, error) {
	if p.MBits <= 0 {
		return nil, fmt.Errorf("pps: matcher needs positive MBits, got %d", p.MBits)
	}
	return &Matcher{mBits: p.MBits}, nil
}

// MatchOne evaluates a single predicate.
func (m *Matcher) MatchOne(q BloomQuery, md BloomMetadata) bool {
	return matchBloomBits(m.mBits, q, md)
}

// SelectivitySamples is the number of metadata sampled before predicates
// are re-ordered by selectivity. §5.6.5 derives 225 from Chebyshev's
// inequality for ±0.1 selectivity accuracy at ~89% confidence.
const SelectivitySamples = 225

// Run is the per-query matching state implementing dynamic predicate
// ordering (§5.6.5): the first SelectivitySamples records are matched
// against every predicate while counting per-predicate selectivity;
// afterwards predicates are sorted (most selective first for AND, least
// selective first for OR) and evaluation short-circuits. Run is not safe
// for concurrent use; create one per matching thread and merge counts,
// or share one behind the store's batching. The cheap path — a settled
// order with short-circuit evaluation — dominates.
type Run struct {
	m       *Matcher
	q       Query
	counts  []int // matches per predicate during sampling
	sampled int
	order   []int // settled evaluation order (nil until settled)
}

// NewRun starts the matching state for one query.
func (m *Matcher) NewRun(q Query) *Run {
	return &Run{m: m, q: q, counts: make([]int, len(q.Preds))}
}

// Sampled reports how many records contributed to selectivity estimates.
func (r *Run) Sampled() int { return r.sampled }

// Order returns the settled predicate order, or nil while sampling.
func (r *Run) Order() []int { return r.order }

// Match evaluates the full query against one record.
func (r *Run) Match(md BloomMetadata) bool {
	if len(r.q.Preds) == 0 {
		return false
	}
	if len(r.q.Preds) == 1 {
		return r.m.MatchOne(r.q.Preds[0], md)
	}
	if r.order == nil {
		return r.sampleMatch(md)
	}
	return r.orderedMatch(md)
}

func (r *Run) sampleMatch(md BloomMetadata) bool {
	// Evaluate every predicate to learn selectivities.
	all := true
	any := false
	for i, p := range r.q.Preds {
		if r.m.MatchOne(p, md) {
			r.counts[i]++
			any = true
		} else {
			all = false
		}
	}
	r.sampled++
	if r.sampled >= SelectivitySamples {
		r.settle()
	}
	if r.q.Op == And {
		return all
	}
	return any
}

func (r *Run) settle() {
	r.order = make([]int, len(r.q.Preds))
	for i := range r.order {
		r.order[i] = i
	}
	asc := r.q.Op == And // AND: fewest matches (most selective) first
	sort.SliceStable(r.order, func(a, b int) bool {
		ca, cb := r.counts[r.order[a]], r.counts[r.order[b]]
		if asc {
			return ca < cb
		}
		return ca > cb
	})
}

func (r *Run) orderedMatch(md BloomMetadata) bool {
	if r.q.Op == And {
		for _, i := range r.order {
			if !r.m.MatchOne(r.q.Preds[i], md) {
				return false
			}
		}
		return true
	}
	for _, i := range r.order {
		if r.m.MatchOne(r.q.Preds[i], md) {
			return true
		}
	}
	return false
}

// MatchAll is a convenience helper matching a query against a slice of
// records, returning the IDs of matches. It uses a fresh Run, so
// dynamic ordering is exercised exactly as a server would.
func (m *Matcher) MatchAll(q Query, mds []Encoded) []uint64 {
	run := m.NewRun(q)
	var out []uint64
	for i := range mds {
		if run.Match(mds[i].BloomMetadata) {
			out = append(out, mds[i].ID)
		}
	}
	return out
}
