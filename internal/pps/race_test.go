//go:build race

package pps

// raceEnabled skips allocation-count assertions under -race: the race
// detector instruments allocations, so AllocsPerRun measures the
// instrumentation, not the kernel.
const raceEnabled = true
