package pps

// The zero-allocation PRF kernel. The matching hot path evaluates
// HMAC-SHA-256 once per (trapdoor element, record) pair; with the
// paper's parameters that is r = 17 evaluations per predicate per
// record, millions per sub-query. The generic path (crypto/hmac) runs
// the full key schedule and allocates two digest states plus a result
// slice on every evaluation, so per-node matching throughput — the term
// that §2 and Badue et al. show directly bounds cluster capacity — is
// dominated by allocator and key-schedule overhead rather than hashing.
//
// prfKernel removes both costs:
//
//   - The two SHA-256 states are allocated once per kernel and Reset
//     between evaluations; digests land in a fixed scratch buffer.
//   - Re-keying (per record: the nonce) only re-derives the ipad/opad
//     blocks — no allocation.
//   - Where the hash implementation supports binary state save/restore
//     (encoding.BinaryAppender/BinaryUnmarshaler, true for crypto/sha256
//     since Go 1.24), the kernel checkpoints the state *after* absorbing
//     the pad block and restores it per evaluation, halving the SHA-256
//     compressions for short inputs (2 instead of 4).
//
// A kernel is NOT safe for concurrent use; embed one per Run (matching)
// or per pooled encode state (EncryptMetadata).

import (
	"crypto/sha256"
	"encoding"
	"encoding/binary"
	"hash"
)

const prfBlockSize = sha256.BlockSize // 64

// prfKernel is a reusable HMAC-SHA-256 evaluator for one key at a time.
// The zero value is not usable; call init (or reset via setKey) first.
type prfKernel struct {
	inner, outer hash.Hash
	ipad, opad   [prfBlockSize]byte
	sum          [sha256.Size]byte // digest scratch

	// Midstate checkpoints: inner/outer state just after the pad block,
	// so per-evaluation work skips re-absorbing 64 pad bytes. Nil when
	// the hash does not support state save/restore.
	innerSaved, outerSaved []byte
	canSave                bool
	keyed                  bool
}

func (k *prfKernel) init() {
	k.inner = sha256.New()
	k.outer = sha256.New()
	_, okA := k.inner.(encoding.BinaryAppender)
	_, okU := k.inner.(encoding.BinaryUnmarshaler)
	k.canSave = okA && okU
	if k.canSave {
		k.innerSaved = make([]byte, 0, 128)
		k.outerSaved = make([]byte, 0, 128)
	}
}

// setKey re-keys the kernel. Keys longer than the block size are hashed
// first, per RFC 2104 (none of our callers hit that: nonces are 16
// bytes, derived sub-keys 32).
func (k *prfKernel) setKey(key []byte) {
	if k.inner == nil {
		k.init()
	}
	if len(key) > prfBlockSize {
		k.inner.Reset()
		k.inner.Write(key)
		key = k.inner.Sum(k.sum[:0])
	}
	for i := range k.ipad {
		k.ipad[i] = 0x36
		k.opad[i] = 0x5c
	}
	for i, b := range key {
		k.ipad[i] ^= b
		k.opad[i] ^= b
	}
	if k.canSave {
		k.inner.Reset()
		k.inner.Write(k.ipad[:])
		k.innerSaved = k.saveState(k.inner, k.innerSaved)
		k.outer.Reset()
		k.outer.Write(k.opad[:])
		k.outerSaved = k.saveState(k.outer, k.outerSaved)
	}
	k.keyed = true
}

// saveState checkpoints h into buf (reusing its capacity). A marshal
// failure demotes the kernel to the pad-replay path for its lifetime.
func (k *prfKernel) saveState(h hash.Hash, buf []byte) []byte {
	out, err := h.(encoding.BinaryAppender).AppendBinary(buf[:0])
	if err != nil {
		k.canSave = false
		return buf
	}
	return out
}

// sumInto computes HMAC(key, data) into out (which must have capacity
// sha256.Size and length 0, typically scratch[:0]) and returns the full
// 32-byte digest. Identical output to prf() in prf.go.
func (k *prfKernel) sumInto(data []byte, out []byte) []byte {
	if k.canSave {
		// Restore the post-pad midstates instead of re-hashing the pads.
		if err := k.inner.(encoding.BinaryUnmarshaler).UnmarshalBinary(k.innerSaved); err == nil {
			k.inner.Write(data)
			d := k.inner.Sum(k.sum[:0])
			if err := k.outer.(encoding.BinaryUnmarshaler).UnmarshalBinary(k.outerSaved); err == nil {
				k.outer.Write(d)
				return k.outer.Sum(out)
			}
		}
		// Restore failed (foreign hash implementation): fall through to
		// the replay path and stop checkpointing.
		k.canSave = false
	}
	k.inner.Reset()
	k.inner.Write(k.ipad[:])
	k.inner.Write(data)
	d := k.inner.Sum(k.sum[:0])
	k.outer.Reset()
	k.outer.Write(k.opad[:])
	k.outer.Write(d)
	return k.outer.Sum(out)
}

// sum64 is sumInto truncated to the leading 8 bytes as a big-endian
// uint64 — the bit-position derivation used by matching (prfUint64's
// zero-allocation twin).
func (k *prfKernel) sum64(data []byte) uint64 {
	d := k.sumInto(data, k.sum[:0])
	return binary.BigEndian.Uint64(d)
}
