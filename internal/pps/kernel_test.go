package pps

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// TestKernelMatchesGenericPRF: the reusable kernel must be bit-identical
// to the crypto/hmac reference for every key/data shape we use (16-byte
// nonces, 32-byte derived sub-keys) plus edge cases (empty data, long
// keys that trigger the RFC 2104 pre-hash).
func TestKernelMatchesGenericPRF(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var k prfKernel
	k.init()
	for _, keyLen := range []int{1, 16, 32, 64, 65, 200} {
		for _, dataLen := range []int{0, 1, 8, 16, 32, 100} {
			key := make([]byte, keyLen)
			rng.Read(key)
			k.setKey(key)
			for trial := 0; trial < 4; trial++ { // repeated evals on one key
				data := make([]byte, dataLen)
				rng.Read(data)
				want := prf(key, data)
				var scratch [32]byte
				got := k.sumInto(data, scratch[:0])
				if !bytes.Equal(got, want) {
					t.Fatalf("kernel mismatch at keyLen=%d dataLen=%d", keyLen, dataLen)
				}
				if k.sum64(data) != prfUint64(key, data) {
					t.Fatalf("sum64 mismatch at keyLen=%d dataLen=%d", keyLen, dataLen)
				}
			}
		}
	}
}

// TestKernelRekeying: interleaved re-keying (the per-record pattern)
// never leaks state between keys.
func TestKernelRekeying(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var k prfKernel
	k.init()
	keys := make([][]byte, 8)
	for i := range keys {
		keys[i] = make([]byte, 16)
		rng.Read(keys[i])
	}
	data := []byte("trapdoor-element-0123456789abcdef")
	for trial := 0; trial < 64; trial++ {
		key := keys[rng.Intn(len(keys))]
		k.setKey(key)
		if got, want := k.sum64(data), prfUint64(key, data); got != want {
			t.Fatalf("trial %d: kernel %x != reference %x after re-keying", trial, got, want)
		}
	}
}

// TestKernelFallbackPath: with midstate checkpointing disabled the
// replay path must produce the same digests.
func TestKernelFallbackPath(t *testing.T) {
	var k prfKernel
	k.init()
	k.canSave = false
	key := []byte("0123456789abcdef")
	k.setKey(key)
	data := []byte("payload")
	if got, want := k.sum64(data), prfUint64(key, data); got != want {
		t.Fatalf("fallback path diverges: %x != %x", got, want)
	}
}

// kernelCorpus builds a deterministic corpus plus an AND query whose
// predicates all hit `hitEvery`-th record.
func kernelCorpus(t testing.TB, n, preds int) (*Matcher, Query, []Encoded) {
	t.Helper()
	key := TestKey(42)
	enc := NewEncoder(key, EncoderConfig{Hashes: 4, BitsPerWord: 12})
	mds := make([]Encoded, 0, n)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		kws := []string{"common"}
		if i%3 == 0 {
			kws = append(kws, "sparse")
		}
		kws = append(kws, fmt.Sprintf("unique-%d", i))
		e, err := enc.EncryptDocument(Document{
			ID:       rng.Uint64(),
			Path:     "/home/user/docs",
			Size:     int64(1000 + i),
			Modified: time.Date(2008, 1, 1, 0, 0, 0, 0, time.UTC),
			Keywords: kws,
		})
		if err != nil {
			t.Fatal(err)
		}
		mds = append(mds, e)
	}
	ps := []Predicate{{Kind: Keyword, Word: "common"}, {Kind: Keyword, Word: "sparse"}}
	for len(ps) < preds {
		ps = append(ps, Predicate{Kind: PathComponent, Word: "docs"})
	}
	q, err := enc.EncryptQuery(And, ps[:preds]...)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMatcher(enc.ServerParams())
	if err != nil {
		t.Fatal(err)
	}
	return m, q, mds
}

// TestRunMatchesLegacyKernel: the kernel-backed Run must agree with the
// generic MatchOne evaluation on every record, before and after the
// order settles.
func TestRunMatchesLegacyKernel(t *testing.T) {
	m, q, mds := kernelCorpus(t, SelectivitySamples+200, 2)
	run := m.NewRun(q)
	for i := range mds {
		want := true
		for _, p := range q.Preds {
			if !m.MatchOne(p, mds[i].BloomMetadata) {
				want = false
				break
			}
		}
		if got := run.Match(mds[i].BloomMetadata); got != want {
			t.Fatalf("record %d (settled=%v): kernel=%v legacy=%v", i, run.Order() != nil, got, want)
		}
	}
	if run.Order() == nil {
		t.Fatal("order never settled")
	}
}

// TestMatchBatchMatchesMatch: batch and single-record entry points agree.
func TestMatchBatchMatchesMatch(t *testing.T) {
	m, q, mds := kernelCorpus(t, 400, 2)
	single := m.NewRun(q)
	var want []uint64
	for i := range mds {
		if single.Match(mds[i].BloomMetadata) {
			want = append(want, mds[i].ID)
		}
	}
	batch := m.NewRun(q)
	got := batch.MatchBatch(mds, nil)
	if len(got) != len(want) {
		t.Fatalf("MatchBatch found %d ids, Match found %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("id %d: MatchBatch %d != Match %d", i, got[i], want[i])
		}
	}
}

// TestMatchSteadyStateZeroAlloc is the acceptance gate: once the
// predicate order settles, matching a record performs no heap
// allocations.
func TestMatchSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc counts only meaningful without -race")
	}
	m, q, mds := kernelCorpus(t, SelectivitySamples+64, 3)
	run := m.NewRun(q)
	for i := 0; i < SelectivitySamples; i++ {
		run.Match(mds[i%len(mds)].BloomMetadata)
	}
	if run.Order() == nil {
		t.Fatal("order did not settle")
	}
	steady := mds[SelectivitySamples:]
	out := make([]uint64, 0, len(steady))
	allocs := testing.AllocsPerRun(50, func() {
		out = run.MatchBatch(steady, out[:0])
	})
	if allocs != 0 {
		t.Fatalf("settled-order MatchBatch allocates %.1f objects per scan, want 0", allocs)
	}
}

// BenchmarkMatchKernel compares the pre-change matching kernel (generic
// crypto/hmac per hash evaluation, as MatchOne still does) against the
// reusable zero-allocation kernel, both in the settled-order steady
// state. Run with -benchmem; compare sub-benchmarks with benchstat.
func BenchmarkMatchKernel(b *testing.B) {
	m, q, mds := kernelCorpus(b, SelectivitySamples+1024, 3)
	steady := mds[SelectivitySamples:]

	// Settle one run to copy its order for the legacy loop.
	settle := m.NewRun(q)
	for i := 0; i < SelectivitySamples; i++ {
		settle.Match(mds[i].BloomMetadata)
	}
	order := settle.Order()
	if order == nil {
		b.Fatal("order did not settle")
	}

	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		matched := 0
		for i := 0; i < b.N; i++ {
			md := steady[i%len(steady)].BloomMetadata
			ok := true
			for _, p := range order {
				if !m.MatchOne(q.Preds[p], md) {
					ok = false
					break
				}
			}
			if ok {
				matched++
			}
		}
		b.ReportMetric(float64(matched)/float64(b.N), "hit-rate")
	})
	b.Run("kernel", func(b *testing.B) {
		run := m.NewRun(q)
		for i := 0; i < SelectivitySamples; i++ {
			run.Match(mds[i].BloomMetadata)
		}
		b.ReportAllocs()
		b.ResetTimer()
		matched := 0
		for i := 0; i < b.N; i++ {
			if run.Match(steady[i%len(steady)].BloomMetadata) {
				matched++
			}
		}
		b.ReportMetric(float64(matched)/float64(b.N), "hit-rate")
	})
}

// BenchmarkEncryptMetadata measures the write-side path the pooled
// encode kernels accelerate (replica pushes encrypt whole corpora).
func BenchmarkEncryptMetadata(b *testing.B) {
	key := TestKey(42)
	s := NewBloom(key, BloomConfig{MaxWords: 64, Hashes: 4, BitsPerWord: 12})
	words := make([]string, 32)
	for i := range words {
		words[i] = fmt.Sprintf("kw=word-%d", i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.EncryptMetadata(words); err != nil {
			b.Fatal(err)
		}
	}
}
