package pps

import (
	"bytes"
	"fmt"
)

// Equal implements the equality-matching scheme of §5.5.1 (the first
// step of Song et al.): the query is the PRF of the plaintext under the
// user key; the metadata is a random nonce together with the PRF of the
// nonce under the hidden value. The server matches by recomputing.
type Equal struct {
	key []byte
}

// NewEqual builds the scheme from the master key.
func NewEqual(k MasterKey) *Equal {
	return &Equal{key: k.Derive("equal")}
}

// EqualQuery is an encrypted equality query (the hidden value).
type EqualQuery struct {
	Hidden []byte
}

// EqualMetadata is an encrypted value: (nonce, PRF_hidden(nonce)).
type EqualMetadata struct {
	Nonce []byte
	Tag   []byte
}

// EncryptQuery hides a plaintext value.
func (s *Equal) EncryptQuery(value string) EqualQuery {
	return EqualQuery{Hidden: prf(s.key, []byte(value))}
}

// EncryptMetadata encodes a value so that only matching queries
// recognise it.
func (s *Equal) EncryptMetadata(value string) (EqualMetadata, error) {
	rnd, err := nonce()
	if err != nil {
		return EqualMetadata{}, err
	}
	h := prf(s.key, []byte(value))
	return EqualMetadata{Nonce: rnd, Tag: prf(h, rnd)}, nil
}

// MatchEqual runs on the server: it needs no key material. It reports
// whether the encrypted query matches the encrypted metadata.
func MatchEqual(q EqualQuery, m EqualMetadata) bool {
	return bytes.Equal(prf(q.Hidden, m.Nonce), m.Tag)
}

// CoverEqual reports whether q1 covers q2; for equality queries this is
// exact bitwise equality (§5.5.1).
func CoverEqual(q1, q2 EqualQuery) bool {
	return bytes.Equal(q1.Hidden, q2.Hidden)
}

func (q EqualQuery) String() string { return fmt.Sprintf("EqualQuery(%x…)", q.Hidden[:4]) }
