package pps

import (
	"crypto/sha256"
	"fmt"
	"math"
	"sync"
)

// Bloom implements Goh's secure-index keyword scheme (§5.5.2, "Bloom-
// Filter Keyword Matching"). Each document's keywords are inserted into
// a Bloom filter whose bit positions are blinded per-document with a
// random nonce; the query (trapdoor) is the tuple of keyword PRFs under
// r independent sub-keys.
//
// Parameters follow §5.5.2: for a false-positive rate of 1e-5 the
// optimal hash count is r = 17 at ~25 bits per element.
type Bloom struct {
	subkeys  [][]byte // r derived keys
	mBits    int      // filter size in bits
	r        int      // hash count
	maxWords int      // design load

	// enc pools reusable encode states: r kernels pre-keyed with the
	// sub-keys plus one blinding kernel re-keyed per document by the
	// nonce. EncryptMetadata is the write-side hot path (replica pushes
	// encrypt whole corpora); the pool keeps it allocation-free past the
	// filter itself while staying safe for concurrent encoders.
	enc sync.Pool
}

// encState is one pooled encode scratch (see Bloom.enc).
type encState struct {
	sub   []prfKernel       // keyed once by the scheme sub-keys
	blind prfKernel         // keyed per document by the nonce
	word  []byte            // string→bytes scratch
	td    [sha256.Size]byte // trapdoor element scratch
}

// BloomConfig sizes the filter.
type BloomConfig struct {
	// MaxWords is the maximum number of words stored per document; the
	// filter is sized at ~25 bits per word (fp ≈ 1e-5 with r=17).
	MaxWords int
	// Hashes is the number of hash functions (0 means the paper's 17).
	Hashes int
	// BitsPerWord is the filter budget per element (0 means 25).
	BitsPerWord int
}

// DefaultBloomConfig matches §5.5.2: 50 words, 17 hashes, 25 bits/word.
func DefaultBloomConfig() BloomConfig {
	return BloomConfig{MaxWords: 50, Hashes: 17, BitsPerWord: 25}
}

// NewBloom builds the scheme from the master key and configuration.
func NewBloom(k MasterKey, cfg BloomConfig) *Bloom {
	if cfg.MaxWords <= 0 {
		cfg.MaxWords = 50
	}
	if cfg.Hashes <= 0 {
		cfg.Hashes = 17
	}
	if cfg.BitsPerWord <= 0 {
		cfg.BitsPerWord = 25
	}
	sub := make([][]byte, cfg.Hashes)
	for i := range sub {
		sub[i] = k.Derive(fmt.Sprintf("bloom-%d", i))
	}
	s := &Bloom{subkeys: sub, mBits: cfg.MaxWords * cfg.BitsPerWord, r: cfg.Hashes, maxWords: cfg.MaxWords}
	s.enc.New = func() interface{} {
		st := &encState{sub: make([]prfKernel, len(s.subkeys))}
		for i := range st.sub {
			st.sub[i].setKey(s.subkeys[i])
		}
		st.blind.init()
		return st
	}
	return s
}

// MBits returns the filter size in bits (for overhead accounting).
func (s *Bloom) MBits() int { return s.mBits }

// Hashes returns the hash-function count r.
func (s *Bloom) Hashes() int { return s.r }

// BloomQuery is a keyword trapdoor: the r PRF values of the keyword.
type BloomQuery struct {
	Trapdoor [][]byte
}

// BloomMetadata is a blinded per-document filter plus its nonce.
type BloomMetadata struct {
	Nonce  []byte
	Filter []byte // mBits/8 bytes
}

// Bytes returns the wire size of the metadata, used by the bandwidth
// model of Fig 5.1.
func (m BloomMetadata) Bytes() int { return len(m.Nonce) + len(m.Filter) }

// EncryptQuery produces the trapdoor for one keyword.
func (s *Bloom) EncryptQuery(word string) BloomQuery {
	td := make([][]byte, s.r)
	for i, k := range s.subkeys {
		td[i] = prf(k, []byte(word))
	}
	return BloomQuery{Trapdoor: td}
}

// EncryptMetadata builds the blinded filter for a document's words.
// Words beyond the configured maximum are rejected rather than silently
// degrading the false-positive rate.
func (s *Bloom) EncryptMetadata(words []string) (BloomMetadata, error) {
	if len(words) > 2*s.maxWords {
		return BloomMetadata{}, fmt.Errorf("pps: %d words exceed filter budget (%d)", len(words), 2*s.maxWords)
	}
	rnd, err := nonce()
	if err != nil {
		return BloomMetadata{}, err
	}
	filter := make([]byte, (s.mBits+7)/8)
	st := s.enc.Get().(*encState)
	st.blind.setKey(rnd)
	mBits := uint64(s.mBits)
	for _, w := range words {
		st.word = append(st.word[:0], w...)
		for i := range st.sub {
			x := st.sub[i].sumInto(st.word, st.td[:0])
			setBit(filter, int(st.blind.sum64(x)%mBits))
		}
	}
	s.enc.Put(st)
	return BloomMetadata{Nonce: rnd, Filter: filter}, nil
}

// codeword maps a trapdoor element to a blinded bit position:
// y = PRF_nonce(x) mod m (§5.5.2's F_rnd(x_i)).
func (s *Bloom) codeword(rnd, x []byte) int {
	return int(prfUint64(rnd, x) % uint64(s.mBits))
}

// MatchBloom checks whether the keyword trapdoor hits the document
// filter. Runs on the server; needs no keys. On a non-match, on average
// half the hash applications are evaluated before the first missing bit
// short-circuits the test — the cost asymmetry the paper measures in
// §5.7 (matching documents cost ~r hashes, misses ~r/2).
func (s *Bloom) MatchBloom(q BloomQuery, m BloomMetadata) bool {
	for _, x := range q.Trapdoor {
		if !getBit(m.Filter, s.codeword(m.Nonce, x)) {
			return false
		}
	}
	return true
}

// CoverBloom reports query coverage: equality of trapdoors.
func CoverBloom(q1, q2 BloomQuery) bool {
	if len(q1.Trapdoor) != len(q2.Trapdoor) {
		return false
	}
	for i := range q1.Trapdoor {
		if string(q1.Trapdoor[i]) != string(q2.Trapdoor[i]) {
			return false
		}
	}
	return true
}

// QueryBytes returns the wire size of a trapdoor under the compact
// encoding the paper assumes (r bit-positions of log2(m) bits each).
func (s *Bloom) QueryBytes() int {
	return (s.r*bitsFor(s.mBits) + 7) / 8
}

func bitsFor(n int) int {
	return int(math.Ceil(math.Log2(float64(n))))
}

func setBit(b []byte, i int) { b[i/8] |= 1 << (i % 8) }

func getBit(b []byte, i int) bool { return b[i/8]&(1<<(i%8)) != 0 }

// FalsePositiveRate estimates the filter's false-positive probability
// for a document holding nWords words: (1 - e^{-r·n/m})^r.
func (s *Bloom) FalsePositiveRate(nWords int) float64 {
	load := float64(s.r) * float64(nWords) / float64(s.mBits)
	return math.Pow(1-math.Exp(-load), float64(s.r))
}
