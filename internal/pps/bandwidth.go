package pps

import "math"

// This file implements the analytical bandwidth model of §5.3.1
// comparing the index-based search solution against PPS (Fig 5.1).
//
// Constants from the paper's measurement of a 50,000-file corpus:
// a compressed+encrypted full index is 500 KB (~10 B/file); one index
// delta is 200 B; one PPS metadata is 500 B; one encrypted query is
// 500 B; ~10 results of 200 B each come back per query.

// Bandwidth model constants (bytes).
const (
	IndexBytes      = 500_000
	DeltaBytes      = 200
	MetadataBytes   = 500
	QueryBytes      = 500
	ResultBytes     = 200
	ResultsPerQuery = 10
)

// PPSBandwidth returns the expected bandwidth (bytes per unit time) used
// by the PPS solution at update frequency fu and query frequency fq:
// 500·fu + 2500·fq.
func PPSBandwidth(fu, fq float64) float64 {
	return MetadataBytes*fu + float64(QueryBytes+ResultsPerQuery*ResultBytes)*fq
}

// IndexBandwidth returns the expected bandwidth of the index-based
// solution with the given maximum delta chain length deltaMax and the
// fraction localUpdates of updates generated on the querying machine
// (which therefore need no download before searching).
func IndexBandwidth(fu, fq float64, deltaMax int, localUpdates float64) float64 {
	dm := float64(deltaMax)
	// Uploads: over dm updates the index is stored once in full and
	// dm-1 deltas are sent.
	update := fu * (IndexBytes + DeltaBytes*(dm-1)) / dm
	// Downloads before queries: the querying machine sees only non-local
	// updates; and no more downloads can happen than updates occurred,
	// so the effective download-triggering rate is min(fq, fu_remote).
	fuRemote := fu * (1 - localUpdates)
	f := math.Min(fq, fuRemote)
	query := f * (IndexBytes + 100*dm*(dm-1)) / dm
	// The query itself also returns results in both solutions; the paper
	// folds this into the shared Bresults term and omits it from the
	// ratio, so we omit it here too.
	return update + query
}

// OptimalDeltaMax searches the delta chain length minimising index-based
// bandwidth for the given frequencies.
func OptimalDeltaMax(fu, fq float64, localUpdates float64) int {
	best, bestBW := 1, math.Inf(1)
	for dm := 1; dm <= 4096; dm++ {
		if bw := IndexBandwidth(fu, fq, dm, localUpdates); bw < bestBW {
			best, bestBW = dm, bw
		}
	}
	return best
}

// BandwidthRatio returns index-based bandwidth (at its optimal deltaMax)
// divided by PPS bandwidth — the surface plotted in Fig 5.1.
func BandwidthRatio(fu, fq, localUpdates float64) float64 {
	dm := OptimalDeltaMax(fu, fq, localUpdates)
	return IndexBandwidth(fu, fq, dm, localUpdates) / PPSBandwidth(fu, fq)
}

// BandwidthGrid evaluates the ratio over a grid of frequencies, the
// three panels of Fig 5.1 (localUpdates = 0, 0.5, 0.9).
func BandwidthGrid(freqs []float64, localUpdates float64) [][]float64 {
	out := make([][]float64, len(freqs))
	for i, fu := range freqs {
		out[i] = make([]float64, len(freqs))
		for j, fq := range freqs {
			out[i][j] = BandwidthRatio(fu, fq, localUpdates)
		}
	}
	return out
}
