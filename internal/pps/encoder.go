package pps

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Document is the plaintext description of one user file: the unit PPS
// encrypts and the distributed search matches (§5.5: filename/path,
// content keywords, and numeric attributes).
type Document struct {
	ID       uint64 // random identifier supplied by the user (§5.6.1)
	Path     string
	Size     int64
	Modified time.Time
	Keywords []string // content keywords in rank order, most important first
}

// Encoded is one encrypted metadata record as stored on servers. All
// attributes are embedded into a single Bloom filter with per-attribute
// word prefixes, the combined-dictionary encoding of §5.6.4, so the
// server cannot tell which attribute a query touches.
type Encoded struct {
	ID uint64
	BloomMetadata
}

// MarshalBinary encodes the record for the wire and the on-disk store.
func (e Encoded) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 8+2+len(e.Nonce)+4+len(e.Filter))
	binary.BigEndian.PutUint64(buf, e.ID)
	off := 8
	binary.BigEndian.PutUint16(buf[off:], uint16(len(e.Nonce)))
	off += 2
	off += copy(buf[off:], e.Nonce)
	binary.BigEndian.PutUint32(buf[off:], uint32(len(e.Filter)))
	off += 4
	copy(buf[off:], e.Filter)
	return buf, nil
}

// UnmarshalBinary decodes a record produced by MarshalBinary.
func (e *Encoded) UnmarshalBinary(b []byte) error {
	if len(b) < 14 {
		return fmt.Errorf("pps: encoded record too short (%d bytes)", len(b))
	}
	e.ID = binary.BigEndian.Uint64(b)
	off := 8
	nl := int(binary.BigEndian.Uint16(b[off:]))
	off += 2
	if len(b) < off+nl+4 {
		return fmt.Errorf("pps: encoded record truncated in nonce")
	}
	e.Nonce = append([]byte(nil), b[off:off+nl]...)
	off += nl
	fl := int(binary.BigEndian.Uint32(b[off:]))
	off += 4
	if len(b) < off+fl {
		return fmt.Errorf("pps: encoded record truncated in filter")
	}
	e.Filter = append([]byte(nil), b[off:off+fl]...)
	return nil
}

// Encoder turns plaintext documents and queries into their encrypted
// forms. It owns the user's key material; servers never see it.
type Encoder struct {
	bloom      *Bloom
	sizePoints []float64
	datePoints []float64
	rankBkts   []int
	epoch      time.Time
}

// EncoderConfig tunes the combined encoding.
type EncoderConfig struct {
	MaxKeywords int       // per document (0 = 50, per §5.5)
	MaxPathDir  int       // path components indexed (0 = 22, per §5.5.2)
	SizePoints  []float64 // inequality reference points for file size
	DateDays    int       // date reference granularity in days (0 = 30)
	DateSpan    int       // number of date reference points (0 = 200, ≈16 years)
	RankBuckets []int     // rank buckets (nil = DefaultRankBuckets)
	Epoch       time.Time // date reference origin (zero = 2005-01-01)
	// Hashes and BitsPerWord override the Bloom filter parameters
	// (0 = the paper's 17 hashes at 25 bits/word, fp ≈ 1e-5). Tests and
	// large synthetic corpora may trade false-positive rate for
	// encryption speed.
	Hashes      int
	BitsPerWord int
}

// NewEncoder builds the encoder with the given key and config.
func NewEncoder(k MasterKey, cfg EncoderConfig) *Encoder {
	if cfg.MaxKeywords <= 0 {
		cfg.MaxKeywords = 50
	}
	if cfg.MaxPathDir <= 0 {
		cfg.MaxPathDir = 22
	}
	if cfg.SizePoints == nil {
		cfg.SizePoints = ExponentialPoints(1e12)
	}
	if cfg.DateDays <= 0 {
		cfg.DateDays = 30
	}
	if cfg.DateSpan <= 0 {
		cfg.DateSpan = 200
	}
	if cfg.RankBuckets == nil {
		cfg.RankBuckets = DefaultRankBuckets()
	}
	if cfg.Epoch.IsZero() {
		cfg.Epoch = time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	sort.Float64s(cfg.SizePoints)
	sort.Ints(cfg.RankBuckets)
	datePoints := make([]float64, cfg.DateSpan)
	for i := range datePoints {
		datePoints[i] = float64(i * cfg.DateDays)
	}
	// Word budget: keywords (plain + rank buckets) + path components +
	// one signature word per size and date reference point.
	words := cfg.MaxKeywords*(1+len(cfg.RankBuckets)) + cfg.MaxPathDir +
		len(cfg.SizePoints) + len(datePoints)
	bcfg := DefaultBloomConfig()
	bcfg.MaxWords = words
	if cfg.Hashes > 0 {
		bcfg.Hashes = cfg.Hashes
	}
	if cfg.BitsPerWord > 0 {
		bcfg.BitsPerWord = cfg.BitsPerWord
	}
	return &Encoder{
		bloom:      NewBloom(k, bcfg),
		sizePoints: cfg.SizePoints,
		datePoints: datePoints,
		rankBkts:   cfg.RankBuckets,
		epoch:      cfg.Epoch,
	}
}

// MetadataBytes returns the wire size of one encoded record.
func (e *Encoder) MetadataBytes() int { return 16 + (e.bloom.MBits()+7)/8 }

// QueryBytes returns the wire size of one encrypted predicate.
func (e *Encoder) QueryBytes() int { return e.bloom.QueryBytes() }

// ServerParams returns the public parameters a server needs to match
// queries (no key material): the filter size in bits.
func (e *Encoder) ServerParams() ServerParams { return ServerParams{MBits: e.bloom.MBits()} }

// EncryptDocument produces the combined encrypted metadata for a file.
func (e *Encoder) EncryptDocument(d Document) (Encoded, error) {
	var words []string
	// Content keywords with rank buckets (§5.5.4).
	for rank, kw := range d.Keywords {
		words = append(words, "kw="+kw)
		for _, b := range e.rankBkts {
			if rank < b {
				words = append(words, fmt.Sprintf("top%d=%s", b, kw))
			}
		}
	}
	// Path components (§5.5: all components of a path are searchable).
	for _, c := range strings.Split(d.Path, "/") {
		if c != "" {
			words = append(words, "path="+c)
		}
	}
	// Numeric signature for size (§5.5.3 inequality encoding).
	words = append(words, signatureWords("size", float64(d.Size), e.sizePoints)...)
	// Numeric signature for modification date, in days since epoch.
	days := d.Modified.Sub(e.epoch).Hours() / 24
	words = append(words, signatureWords("date", days, e.datePoints)...)

	md, err := e.bloom.EncryptMetadata(words)
	if err != nil {
		return Encoded{}, fmt.Errorf("pps: encrypting document %d: %w", d.ID, err)
	}
	return Encoded{ID: d.ID, BloomMetadata: md}, nil
}

func signatureWords(attr string, v float64, points []float64) []string {
	words := make([]string, 0, len(points))
	for _, p := range points {
		switch {
		case v > p:
			words = append(words, fmt.Sprintf("%s>%g", attr, p))
		case v < p:
			words = append(words, fmt.Sprintf("%s<%g", attr, p))
		}
	}
	return words
}

// Predicate is one plaintext search condition.
type Predicate struct {
	Kind  PredKind
	Word  string  // for Keyword / Path
	Rank  int     // for KeywordRanked: the top-K bucket
	Value float64 // for numeric kinds
}

// PredKind enumerates the supported predicate types.
type PredKind int

// Supported predicate kinds.
const (
	Keyword       PredKind = iota // content keyword match
	KeywordRanked                 // keyword within top-K ranked features
	PathComponent                 // path component match
	SizeGreater                   // file size > Value
	SizeLess                      // file size < Value
	DateAfter                     // modified after epoch+Value days
	DateBefore                    // modified before epoch+Value days
)

// EncryptPredicate compiles one predicate to a trapdoor.
func (e *Encoder) EncryptPredicate(p Predicate) (BloomQuery, error) {
	switch p.Kind {
	case Keyword:
		return e.bloom.EncryptQuery("kw=" + p.Word), nil
	case KeywordRanked:
		for _, b := range e.rankBkts {
			if b == p.Rank {
				return e.bloom.EncryptQuery(fmt.Sprintf("top%d=%s", b, p.Word)), nil
			}
		}
		return BloomQuery{}, fmt.Errorf("pps: rank bucket %d not configured", p.Rank)
	case PathComponent:
		return e.bloom.EncryptQuery("path=" + p.Word), nil
	case SizeGreater:
		return e.bloom.EncryptQuery(fmt.Sprintf("size>%g", nearestPoint(e.sizePoints, p.Value))), nil
	case SizeLess:
		return e.bloom.EncryptQuery(fmt.Sprintf("size<%g", nearestPoint(e.sizePoints, p.Value))), nil
	case DateAfter:
		return e.bloom.EncryptQuery(fmt.Sprintf("date>%g", nearestPoint(e.datePoints, p.Value))), nil
	case DateBefore:
		return e.bloom.EncryptQuery(fmt.Sprintf("date<%g", nearestPoint(e.datePoints, p.Value))), nil
	default:
		return BloomQuery{}, fmt.Errorf("pps: unknown predicate kind %d", p.Kind)
	}
}

func nearestPoint(points []float64, v float64) float64 {
	i := sort.SearchFloat64s(points, v)
	if i == 0 {
		return points[0]
	}
	if i == len(points) {
		return points[len(points)-1]
	}
	if v-points[i-1] <= points[i]-v {
		return points[i-1]
	}
	return points[i]
}

// BoolOp combines predicates in a multi-predicate query (§5.6.5).
type BoolOp int

// Query combinators.
const (
	And BoolOp = iota
	Or
)

// Query is an encrypted multi-predicate query as shipped to servers.
type Query struct {
	Preds []BloomQuery
	Op    BoolOp
}

// EncryptQuery compiles a conjunction/disjunction of predicates.
func (e *Encoder) EncryptQuery(op BoolOp, preds ...Predicate) (Query, error) {
	q := Query{Op: op, Preds: make([]BloomQuery, 0, len(preds))}
	for _, p := range preds {
		bq, err := e.EncryptPredicate(p)
		if err != nil {
			return Query{}, err
		}
		q.Preds = append(q.Preds, bq)
	}
	return q, nil
}
