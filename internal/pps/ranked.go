package pps

import (
	"fmt"
	"sort"
)

// Ranked implements the ranked-query construction of §5.5.4: keywords
// are ranked by importance within each document, the rank space is
// partitioned into buckets (first, first 5, first 10, first 25, ...),
// and a document emits the word "topK|keyword" for every bucket K the
// keyword's rank falls within. A query "keyword within top K" is then
// ordinary keyword matching.
type Ranked struct {
	bloom   *Bloom
	buckets []int // sorted rank cut-offs, e.g. 1, 5, 10, 25
}

// DefaultRankBuckets mirrors §5.5.4: first, first five, first ten,
// first twenty-five.
func DefaultRankBuckets() []int { return []int{1, 5, 10, 25} }

// NewRanked builds the scheme. maxKeywords sizes the underlying filter:
// each keyword contributes one plain word plus one word per bucket its
// rank falls in.
func NewRanked(k MasterKey, buckets []int, maxKeywords int) (*Ranked, error) {
	if len(buckets) == 0 {
		return nil, fmt.Errorf("pps: ranked needs rank buckets")
	}
	bs := append([]int(nil), buckets...)
	sort.Ints(bs)
	cfg := DefaultBloomConfig()
	cfg.MaxWords = maxKeywords * (1 + len(bs))
	return &Ranked{bloom: NewBloom(k, cfg), buckets: bs}, nil
}

// Buckets returns the rank cut-offs.
func (s *Ranked) Buckets() []int { return s.buckets }

// EncryptQuery asks for documents where word ranks within the top
// `within` keywords. within must be one of the configured buckets;
// within = 0 means an unranked keyword query.
func (s *Ranked) EncryptQuery(word string, within int) (BloomQuery, error) {
	if within == 0 {
		return s.bloom.EncryptQuery("kw|" + word), nil
	}
	for _, b := range s.buckets {
		if b == within {
			return s.bloom.EncryptQuery(fmt.Sprintf("top%d|%s", b, word)), nil
		}
	}
	return BloomQuery{}, fmt.Errorf("pps: rank bucket %d not configured (have %v)", within, s.buckets)
}

// EncryptMetadata encodes a document's keywords in rank order (most
// important first).
func (s *Ranked) EncryptMetadata(rankedKeywords []string) (BloomMetadata, error) {
	var words []string
	for rank, kw := range rankedKeywords {
		words = append(words, "kw|"+kw)
		for _, b := range s.buckets {
			if rank < b {
				words = append(words, fmt.Sprintf("top%d|%s", b, kw))
			}
		}
	}
	return s.bloom.EncryptMetadata(words)
}

// Match runs on the server.
func (s *Ranked) Match(q BloomQuery, m BloomMetadata) bool {
	return s.bloom.MatchBloom(q, m)
}
