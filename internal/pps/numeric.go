package pps

import (
	"fmt"
	"math"
	"sort"
)

// Inequality implements the novel numeric-matching construction of
// §5.5.3 for one-sided tests (N > lb, N < ub). A set of reference
// points is agreed at key generation; each metadata value is encoded as
// the set of keywords { ">p_i" or "<p_i" for every reference point },
// and a query is approximated by the nearest reference point. Keyword
// matching is delegated to the Bloom scheme.
type Inequality struct {
	bloom  *Bloom
	points []float64 // sorted reference points
}

// ExponentialPoints builds the exponentially spaced reference set the
// paper suggests for 4-byte positive integers: 1..10, 20..100, 200..1000,
// ..., up to max (≈100 points for max = 1e9). Precision follows query
// sensitivity: coarser for bigger values.
func ExponentialPoints(max float64) []float64 {
	var pts []float64
	for base := 1.0; base < max; base *= 10 {
		for k := 1; k <= 9; k++ {
			v := base * float64(k)
			if v > max {
				break
			}
			pts = append(pts, v)
		}
	}
	pts = append(pts, max)
	sort.Float64s(pts)
	// Dedup (base*k can revisit values like 10 = 1*10? no, but max may
	// duplicate the last point).
	out := pts[:0]
	for i, v := range pts {
		if i == 0 || v != pts[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// LinearPoints builds l evenly spaced points over [lo, hi].
func LinearPoints(lo, hi float64, l int) []float64 {
	if l < 2 {
		return []float64{lo, hi}
	}
	pts := make([]float64, l)
	for i := range pts {
		pts[i] = lo + (hi-lo)*float64(i)/float64(l-1)
	}
	return pts
}

// NewInequality builds the scheme over the given reference points. The
// Bloom filter is sized for 2·l words (one "<" and one ">" word per
// point).
func NewInequality(k MasterKey, points []float64) (*Inequality, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("pps: inequality needs reference points")
	}
	pts := append([]float64(nil), points...)
	sort.Float64s(pts)
	cfg := DefaultBloomConfig()
	cfg.MaxWords = 2 * len(pts)
	return &Inequality{bloom: NewBloom(k, cfg), points: pts}, nil
}

// Points returns the reference points (for overhead accounting).
func (s *Inequality) Points() []float64 { return s.points }

// IneqOp is the comparison direction of an inequality query.
type IneqOp int

// Inequality operators.
const (
	Greater IneqOp = iota // N > value
	Less                  // N < value
)

func (op IneqOp) String() string {
	if op == Greater {
		return ">"
	}
	return "<"
}

// IneqQuery is an encrypted inequality test.
type IneqQuery struct {
	BQ BloomQuery
	// ApproxPoint is the reference point actually used; exposed so
	// callers can report approximation error. It leaks nothing beyond
	// what the trapdoor already determines.
	ApproxPoint float64
}

// EncryptQuery approximates "N op value" by the nearest reference point
// and returns the corresponding keyword trapdoor.
func (s *Inequality) EncryptQuery(op IneqOp, value float64) IneqQuery {
	p := s.nearest(value)
	return IneqQuery{BQ: s.bloom.EncryptQuery(fmt.Sprintf("%s%g", op, p)), ApproxPoint: p}
}

func (s *Inequality) nearest(v float64) float64 {
	i := sort.SearchFloat64s(s.points, v)
	if i == 0 {
		return s.points[0]
	}
	if i == len(s.points) {
		return s.points[len(s.points)-1]
	}
	if v-s.points[i-1] <= s.points[i]-v {
		return s.points[i-1]
	}
	return s.points[i]
}

// EncryptMetadata encodes a numeric value as its full comparison
// signature against every reference point.
func (s *Inequality) EncryptMetadata(value float64) (BloomMetadata, error) {
	words := make([]string, 0, 2*len(s.points))
	for _, p := range s.points {
		if value > p {
			words = append(words, fmt.Sprintf(">%g", p))
		} else if value < p {
			words = append(words, fmt.Sprintf("<%g", p))
		}
		// value == p matches neither strict inequality, as in the paper.
	}
	return s.bloom.EncryptMetadata(words)
}

// Match runs the inequality test on the server.
func (s *Inequality) Match(q IneqQuery, m BloomMetadata) bool {
	return s.bloom.MatchBloom(q.BQ, m)
}

// Interval is one cell of a range partition: [Lo, Hi).
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether v lies in [Lo, Hi).
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v < iv.Hi }

// Partition is a set of intervals covering the numeric domain.
type Partition []Interval

// UniformPartition divides [lo, hi) into cells of the given width,
// starting at lo+offset (offsets give the "different starting offsets"
// of §5.5.3's refined construction).
func UniformPartition(lo, hi, width, offset float64) Partition {
	var p Partition
	start := lo + offset - width
	for s := start; s < hi; s += width {
		cellLo := math.Max(s, lo)
		cellHi := math.Min(s+width, hi)
		if cellHi > cellLo {
			p = append(p, Interval{Lo: cellLo, Hi: cellHi})
		}
	}
	return p
}

// Range implements the range-query construction of §5.5.3: several
// partitions of the domain with different cell sizes and offsets; a
// metadata value lists every cell (across all partitions) containing it,
// and a query is approximated by the single best-fitting cell.
type Range struct {
	bloom      *Bloom
	partitions []Partition
}

// NewRange builds the scheme over m partitions.
func NewRange(k MasterKey, partitions []Partition) (*Range, error) {
	if len(partitions) == 0 {
		return nil, fmt.Errorf("pps: range needs at least one partition")
	}
	cfg := DefaultBloomConfig()
	cfg.MaxWords = len(partitions) // one cell word per partition
	return &Range{bloom: NewBloom(k, cfg), partitions: partitions}, nil
}

// DefaultRangePartitions builds a practical multi-resolution partition
// set for [lo, hi): levels cell widths of (hi-lo)/2^k for k = 1..levels,
// each at two offsets (0 and half a cell), echoing §5.5.3's refinement.
func DefaultRangePartitions(lo, hi float64, levels int) []Partition {
	var ps []Partition
	for k := 1; k <= levels; k++ {
		w := (hi - lo) / math.Pow(2, float64(k))
		ps = append(ps, UniformPartition(lo, hi, w, 0))
		ps = append(ps, UniformPartition(lo, hi, w, w/2))
	}
	return ps
}

// RangeQuery is an encrypted range test.
type RangeQuery struct {
	BQ BloomQuery
	// Approx is the cell used to approximate [Lo, Hi); exposed for
	// error reporting.
	Approx Interval
}

// EncryptQuery approximates [lb, ub) with the best cell across all
// partitions — the one minimising |lb-a| + |ub-b| (§5.5.3).
func (s *Range) EncryptQuery(lb, ub float64) RangeQuery {
	bestX, bestY := 0, 0
	bestErr := math.Inf(1)
	for x, part := range s.partitions {
		for y, cell := range part {
			e := math.Abs(lb-cell.Lo) + math.Abs(ub-cell.Hi)
			if e < bestErr {
				bestErr, bestX, bestY = e, x, y
			}
		}
	}
	cell := s.partitions[bestX][bestY]
	return RangeQuery{
		BQ:     s.bloom.EncryptQuery(cellWord(bestX, bestY)),
		Approx: cell,
	}
}

// EncryptMetadata lists every cell containing the value.
func (s *Range) EncryptMetadata(value float64) (BloomMetadata, error) {
	var words []string
	for x, part := range s.partitions {
		for y, cell := range part {
			if cell.Contains(value) {
				words = append(words, cellWord(x, y))
			}
		}
	}
	return s.bloom.EncryptMetadata(words)
}

// Match runs the range test on the server.
func (s *Range) Match(q RangeQuery, m BloomMetadata) bool {
	return s.bloom.MatchBloom(q.BQ, m)
}

func cellWord(x, y int) string { return fmt.Sprintf("%d,%d", x, y) }
