//go:build !race

package pps

const raceEnabled = false
