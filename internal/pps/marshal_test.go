package pps

import (
	"bytes"
	"testing"
	"testing/quick"
)

// TestEncodedRoundTripQuick: any (id, nonce, filter) triple survives
// binary marshalling.
func TestEncodedRoundTripQuick(t *testing.T) {
	f := func(id uint64, nonce, filter []byte) bool {
		if len(nonce) > 65535 {
			nonce = nonce[:65535]
		}
		in := Encoded{ID: id, BloomMetadata: BloomMetadata{Nonce: nonce, Filter: filter}}
		b, err := in.MarshalBinary()
		if err != nil {
			return false
		}
		var out Encoded
		if err := out.UnmarshalBinary(b); err != nil {
			return false
		}
		return out.ID == in.ID &&
			bytes.Equal(out.Nonce, in.Nonce) && bytes.Equal(out.Filter, in.Filter)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestUnmarshalNeverPanics: arbitrary bytes must produce an error or a
// record, never a panic (the store feeds disk bytes straight in).
func TestUnmarshalNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		var e Encoded
		_ = e.UnmarshalBinary(raw) // outcome irrelevant; must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
