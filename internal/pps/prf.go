// Package pps implements Privacy Preserving Search (Chapter 5): schemes
// that let an untrusted server match encrypted queries against encrypted
// metadata without learning the contents of either.
//
// The package provides the five schemes of §5.5 —
//
//   - Equal: exact-value matching (Song et al.'s first step).
//   - Bloom: keyword matching via blinded Bloom filters (Goh).
//   - Dictionary: keyword matching via a blinded dictionary bitmap
//     (Chang & Mitzenmacher).
//   - Inequality and Range: numeric matching via reference points and
//     overlapping partitions (this paper's novel constructions).
//   - Ranked: result ranking via rank-bucket keywords.
//
// plus the combined per-file metadata encoding of §5.6.4 and the
// multi-predicate query engine with dynamic selectivity ordering of
// §5.6.5.
//
// Primitive substitution (documented in DESIGN.md): the paper uses SHA-1
// as its pseudorandom function and AES as its pseudorandom permutation;
// we use HMAC-SHA-256 as the PRF and a PRF-seeded Fisher-Yates shuffle
// as the PRP over dictionary indices. The schemes only require "a PRF"
// and "a PRP", so the security argument is unchanged.
package pps

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	mrand "math/rand"
)

// KeySize is the size in bytes of all symmetric keys used by the package.
const KeySize = 32

// MasterKey is the user's private key. All scheme sub-keys are derived
// from it with domain-separated PRF applications, so a single key
// protects the whole metadata encoding.
type MasterKey [KeySize]byte

// NewMasterKey draws a fresh key from crypto/rand.
func NewMasterKey() (MasterKey, error) {
	var k MasterKey
	if _, err := rand.Read(k[:]); err != nil {
		return MasterKey{}, fmt.Errorf("pps: generating master key: %w", err)
	}
	return k, nil
}

// TestKey derives a deterministic key from a seed; for tests and
// reproducible benchmarks only.
func TestKey(seed int64) MasterKey {
	var k MasterKey
	rng := mrand.New(mrand.NewSource(seed))
	for i := range k {
		k[i] = byte(rng.Intn(256))
	}
	return k
}

// Derive produces a domain-separated sub-key.
func (k MasterKey) Derive(domain string) []byte {
	return prf(k[:], []byte(domain))
}

// prf is the pseudorandom function: HMAC-SHA-256.
func prf(key, data []byte) []byte {
	m := hmac.New(sha256.New, key)
	m.Write(data)
	return m.Sum(nil)
}

// prfUint64 interprets the first 8 bytes of the PRF output as a uint64,
// handy for deriving bit positions and permutation seeds.
func prfUint64(key, data []byte) uint64 {
	return binary.BigEndian.Uint64(prf(key, data))
}

// nonce returns a fresh 16-byte random nonce.
func nonce() ([]byte, error) {
	b := make([]byte, 16)
	if _, err := rand.Read(b); err != nil {
		return nil, fmt.Errorf("pps: generating nonce: %w", err)
	}
	return b, nil
}

// permutation returns a pseudorandom permutation of [0, n) determined by
// key: the PRP over dictionary indices used by the Dictionary scheme.
func permutation(key []byte, n int) []int {
	seed := int64(prfUint64(key, []byte("prp-seed")))
	rng := mrand.New(mrand.NewSource(seed))
	p := rng.Perm(n)
	return p
}

// invert returns the inverse permutation.
func invert(p []int) []int {
	inv := make([]int, len(p))
	for i, v := range p {
		inv[v] = i
	}
	return inv
}
