package pps

import (
	"fmt"
)

// Dictionary implements Chang & Mitzenmacher's scheme (§5.5.2,
// "Dictionary Keyword Matching"): a fixed dictionary of all possible
// words, one bit per word. The index bitmap is shuffled by a
// pseudorandom permutation and blinded per-document:
//
//	J[i] = I[i] XOR G_{F_K2(i)}(nonce)
//
// The query for word λ is (index = E_K1(λ), rindex = F_K2(index)); the
// server unblinds exactly the queried bit. No false positives, but the
// metadata is as large as the dictionary and the dictionary must be
// fixed up front (§5.5.2 discusses this trade-off).
type Dictionary struct {
	words map[string]int // plaintext word -> dictionary index
	perm  []int          // PRP over indices (E_K1)
	k2    []byte
}

// NewDictionary builds the scheme over the given fixed word list.
func NewDictionary(k MasterKey, words []string) (*Dictionary, error) {
	if len(words) == 0 {
		return nil, fmt.Errorf("pps: empty dictionary")
	}
	idx := make(map[string]int, len(words))
	for i, w := range words {
		if _, dup := idx[w]; dup {
			return nil, fmt.Errorf("pps: duplicate dictionary word %q", w)
		}
		idx[w] = i
	}
	return &Dictionary{
		words: idx,
		perm:  permutation(k.Derive("dict-k1"), len(words)),
		k2:    k.Derive("dict-k2"),
	}, nil
}

// Size returns the dictionary size |D| (bits per metadata).
func (s *Dictionary) Size() int { return len(s.perm) }

// DictQuery is an encrypted keyword query.
type DictQuery struct {
	Index  int    // E_K1(λ): permuted dictionary position
	RIndex []byte // F_K2(Index): the per-position blinding key
}

// DictMetadata is a blinded dictionary bitmap plus nonce.
type DictMetadata struct {
	Nonce  []byte
	Bitmap []byte // |D| bits
}

// Bytes returns the wire size, used for overhead accounting (§5.5.2
// notes ~32kB for an English dictionary).
func (m DictMetadata) Bytes() int { return len(m.Nonce) + len(m.Bitmap) }

// ErrUnknownWord is returned when querying a word outside the dictionary.
var ErrUnknownWord = fmt.Errorf("pps: word not in dictionary")

// EncryptQuery produces the encrypted query for one word.
func (s *Dictionary) EncryptQuery(word string) (DictQuery, error) {
	lambda, ok := s.words[word]
	if !ok {
		return DictQuery{}, fmt.Errorf("%w: %q", ErrUnknownWord, word)
	}
	index := s.perm[lambda]
	return DictQuery{Index: index, RIndex: s.blindKey(index)}, nil
}

func (s *Dictionary) blindKey(index int) []byte {
	return prf(s.k2, []byte(fmt.Sprintf("pos-%d", index)))
}

// EncryptMetadata encodes the set of words present in a document.
// Unknown words are an error: the dictionary is fixed at key-generation
// time and silent omission would produce false negatives forever.
func (s *Dictionary) EncryptMetadata(wordsPresent []string) (DictMetadata, error) {
	rnd, err := nonce()
	if err != nil {
		return DictMetadata{}, err
	}
	n := len(s.perm)
	bitmap := make([]byte, (n+7)/8)
	// I[perm[λ]] = 1 for each present word, then blind every position.
	present := make([]bool, n)
	for _, w := range wordsPresent {
		lambda, ok := s.words[w]
		if !ok {
			return DictMetadata{}, fmt.Errorf("%w: %q", ErrUnknownWord, w)
		}
		present[s.perm[lambda]] = true
	}
	for i := 0; i < n; i++ {
		bit := present[i]
		if blindBit(s.blindKey(i), rnd) {
			bit = !bit
		}
		if bit {
			setBit(bitmap, i)
		}
	}
	return DictMetadata{Nonce: rnd, Bitmap: bitmap}, nil
}

// blindBit is G_{r_i}(nonce): one pseudorandom bit per (position, nonce).
// It needs no key material, only the per-position blinding key.
func blindBit(rindex, rnd []byte) bool {
	return prf(rindex, rnd)[0]&1 == 1
}

// MatchDict runs on the server with no key material: it unblinds exactly
// the queried position. A single PRF application per match, which is why
// §5.5.2 reports Dictionary matching "a few times faster" than Bloom.
func MatchDict(q DictQuery, m DictMetadata) bool {
	bit := getBit(m.Bitmap, q.Index)
	if blindBit(q.RIndex, m.Nonce) {
		bit = !bit
	}
	return bit
}

// CoverDict reports query coverage (equality for keyword queries).
func CoverDict(q1, q2 DictQuery) bool {
	return q1.Index == q2.Index && string(q1.RIndex) == string(q2.RIndex)
}
