package pps

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

func TestMasterKeyDerivation(t *testing.T) {
	k := TestKey(1)
	a := k.Derive("x")
	b := k.Derive("y")
	if bytes.Equal(a, b) {
		t.Error("different domains must derive different keys")
	}
	if !bytes.Equal(a, k.Derive("x")) {
		t.Error("derivation must be deterministic")
	}
	k2 := TestKey(2)
	if bytes.Equal(a, k2.Derive("x")) {
		t.Error("different master keys must derive different sub-keys")
	}
}

func TestNewMasterKeyRandom(t *testing.T) {
	a, err := NewMasterKey()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMasterKey()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("two fresh keys should differ")
	}
}

func TestPermutationIsBijection(t *testing.T) {
	p := permutation([]byte("key"), 1000)
	seen := make([]bool, 1000)
	for _, v := range p {
		if v < 0 || v >= 1000 || seen[v] {
			t.Fatalf("not a permutation at value %d", v)
		}
		seen[v] = true
	}
	inv := invert(p)
	for i, v := range p {
		if inv[v] != i {
			t.Fatal("inverse permutation wrong")
		}
	}
}

func TestEqualScheme(t *testing.T) {
	s := NewEqual(TestKey(3))
	md, err := s.EncryptMetadata("hello")
	if err != nil {
		t.Fatal(err)
	}
	if !MatchEqual(s.EncryptQuery("hello"), md) {
		t.Error("matching value should match")
	}
	if MatchEqual(s.EncryptQuery("world"), md) {
		t.Error("different value must not match")
	}
	// Same plaintext encrypts to different metadata (semantic security
	// shape): nonces differ.
	md2, _ := s.EncryptMetadata("hello")
	if bytes.Equal(md.Nonce, md2.Nonce) || bytes.Equal(md.Tag, md2.Tag) {
		t.Error("two encryptions of the same value should differ")
	}
	if !CoverEqual(s.EncryptQuery("a"), s.EncryptQuery("a")) {
		t.Error("identical queries cover each other")
	}
	if CoverEqual(s.EncryptQuery("a"), s.EncryptQuery("b")) {
		t.Error("different queries must not cover")
	}
}

func TestEqualWrongKey(t *testing.T) {
	s1 := NewEqual(TestKey(4))
	s2 := NewEqual(TestKey(5))
	md, _ := s1.EncryptMetadata("v")
	if MatchEqual(s2.EncryptQuery("v"), md) {
		t.Error("query under a different key must not match")
	}
}

func TestBloomKeyword(t *testing.T) {
	s := NewBloom(TestKey(6), DefaultBloomConfig())
	md, err := s.EncryptMetadata([]string{"alpha", "beta", "gamma"})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"alpha", "beta", "gamma"} {
		if !s.MatchBloom(s.EncryptQuery(w), md) {
			t.Errorf("stored keyword %q should match", w)
		}
	}
	misses := 0
	for i := 0; i < 1000; i++ {
		if !s.MatchBloom(s.EncryptQuery(fmt.Sprintf("absent-%d", i)), md) {
			misses++
		}
	}
	if misses < 995 { // fp rate should be ≈1e-5 at this load
		t.Errorf("too many false positives: %d/1000 misses", misses)
	}
}

func TestBloomFalsePositiveRateEstimate(t *testing.T) {
	s := NewBloom(TestKey(7), DefaultBloomConfig())
	fp := s.FalsePositiveRate(50)
	if fp > 1e-4 || fp <= 0 {
		t.Errorf("fp rate at design load = %v, want ~1e-5", fp)
	}
}

func TestBloomTooManyWords(t *testing.T) {
	s := NewBloom(TestKey(8), BloomConfig{MaxWords: 4, Hashes: 17, BitsPerWord: 25})
	words := make([]string, 100)
	for i := range words {
		words[i] = fmt.Sprintf("w%d", i)
	}
	if _, err := s.EncryptMetadata(words); err == nil {
		t.Error("overfull filter should be rejected")
	}
}

func TestBloomDifferentNonces(t *testing.T) {
	s := NewBloom(TestKey(9), DefaultBloomConfig())
	a, _ := s.EncryptMetadata([]string{"x"})
	b, _ := s.EncryptMetadata([]string{"x"})
	if bytes.Equal(a.Nonce, b.Nonce) {
		t.Error("nonces must differ between encryptions")
	}
	if bytes.Equal(a.Filter, b.Filter) {
		t.Error("blinded filters of the same document should differ")
	}
}

func TestBloomCover(t *testing.T) {
	s := NewBloom(TestKey(10), DefaultBloomConfig())
	if !CoverBloom(s.EncryptQuery("a"), s.EncryptQuery("a")) {
		t.Error("same-word trapdoors cover")
	}
	if CoverBloom(s.EncryptQuery("a"), s.EncryptQuery("b")) {
		t.Error("different trapdoors must not cover")
	}
}

func TestBloomSizes(t *testing.T) {
	s := NewBloom(TestKey(11), DefaultBloomConfig())
	if s.MBits() != 1250 {
		t.Errorf("MBits = %d, want 50*25", s.MBits())
	}
	md, _ := s.EncryptMetadata([]string{"x"})
	if md.Bytes() < 150 || md.Bytes() > 200 {
		t.Errorf("metadata bytes = %d, want ≈173 (16B nonce + 157B filter)", md.Bytes())
	}
	if qb := s.QueryBytes(); qb < 20 || qb > 30 {
		t.Errorf("query bytes = %d, want ≈23 (17 positions × 11 bits)", qb)
	}
}

func TestDictionaryScheme(t *testing.T) {
	words := []string{"apple", "banana", "cherry", "date", "elderberry"}
	s, err := NewDictionary(TestKey(12), words)
	if err != nil {
		t.Fatal(err)
	}
	md, err := s.EncryptMetadata([]string{"banana", "date"})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range words {
		q, err := s.EncryptQuery(w)
		if err != nil {
			t.Fatal(err)
		}
		want := w == "banana" || w == "date"
		if got := MatchDict(q, md); got != want {
			t.Errorf("MatchDict(%q) = %v, want %v", w, got, want)
		}
	}
	if _, err := s.EncryptQuery("missing"); err == nil {
		t.Error("unknown query word should error")
	}
	if _, err := s.EncryptMetadata([]string{"missing"}); err == nil {
		t.Error("unknown metadata word should error")
	}
}

func TestDictionaryNoFalsePositives(t *testing.T) {
	// Dictionary is exact: across many documents and words, zero errors.
	n := 200
	words := make([]string, n)
	for i := range words {
		words[i] = fmt.Sprintf("word%03d", i)
	}
	s, err := NewDictionary(TestKey(13), words)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for doc := 0; doc < 20; doc++ {
		present := map[string]bool{}
		var ws []string
		for k := 0; k < 10; k++ {
			w := words[rng.Intn(n)]
			if !present[w] {
				present[w] = true
				ws = append(ws, w)
			}
		}
		md, err := s.EncryptMetadata(ws)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range words {
			q, _ := s.EncryptQuery(w)
			if got := MatchDict(q, md); got != present[w] {
				t.Fatalf("doc %d word %q: got %v want %v", doc, w, got, present[w])
			}
		}
	}
}

func TestDictionaryDuplicateWordRejected(t *testing.T) {
	if _, err := NewDictionary(TestKey(14), []string{"a", "a"}); err == nil {
		t.Error("duplicate dictionary words should be rejected")
	}
	if _, err := NewDictionary(TestKey(14), nil); err == nil {
		t.Error("empty dictionary should be rejected")
	}
}

func TestDictionaryBitmapLooksRandom(t *testing.T) {
	// Blinding should set roughly half the bits regardless of content.
	n := 1024
	words := make([]string, n)
	for i := range words {
		words[i] = fmt.Sprintf("w%d", i)
	}
	s, _ := NewDictionary(TestKey(15), words)
	md, _ := s.EncryptMetadata(nil) // empty document
	ones := 0
	for i := 0; i < n; i++ {
		if getBit(md.Bitmap, i) {
			ones++
		}
	}
	if ones < n/3 || ones > 2*n/3 {
		t.Errorf("blinded bitmap has %d/%d ones; not pseudorandom", ones, n)
	}
}

func TestExponentialPoints(t *testing.T) {
	pts := ExponentialPoints(1e9)
	if len(pts) < 80 || len(pts) > 110 {
		t.Errorf("got %d points, want ~100 per §5.5.3", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i] <= pts[i-1] {
			t.Fatal("points must be strictly increasing")
		}
	}
	if pts[0] != 1 || pts[len(pts)-1] != 1e9 {
		t.Errorf("range = [%g, %g]", pts[0], pts[len(pts)-1])
	}
}

func TestInequalityScheme(t *testing.T) {
	s, err := NewInequality(TestKey(16), LinearPoints(0, 1000, 101)) // points every 10
	if err != nil {
		t.Fatal(err)
	}
	md, err := s.EncryptMetadata(457)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		op   IneqOp
		v    float64
		want bool
	}{
		{Greater, 100, true},  // 457 > 100
		{Greater, 450, true},  // 457 > 450
		{Greater, 460, false}, // 457 < 460
		{Less, 900, true},
		{Less, 460, true},
		{Less, 450, false},
	}
	for _, c := range cases {
		q := s.EncryptQuery(c.op, c.v)
		if got := s.Match(q, md); got != c.want {
			t.Errorf("457 %s %g = %v, want %v (approx point %g)", c.op, c.v, got, c.want, q.ApproxPoint)
		}
	}
}

func TestInequalityApproximation(t *testing.T) {
	s, _ := NewInequality(TestKey(17), []float64{0, 5, 10})
	q := s.EncryptQuery(Greater, 7)
	if q.ApproxPoint != 5 {
		t.Errorf("nearest point to 7 = %g, want 5", q.ApproxPoint)
	}
	q = s.EncryptQuery(Greater, 8)
	if q.ApproxPoint != 10 {
		t.Errorf("nearest point to 8 = %g, want 10", q.ApproxPoint)
	}
	q = s.EncryptQuery(Less, -100)
	if q.ApproxPoint != 0 {
		t.Errorf("clamping below = %g, want 0", q.ApproxPoint)
	}
	q = s.EncryptQuery(Less, 100)
	if q.ApproxPoint != 10 {
		t.Errorf("clamping above = %g, want 10", q.ApproxPoint)
	}
}

func TestRangeScheme(t *testing.T) {
	parts := DefaultRangePartitions(0, 1024, 5)
	s, err := NewRange(TestKey(18), parts)
	if err != nil {
		t.Fatal(err)
	}
	md, err := s.EncryptMetadata(300)
	if err != nil {
		t.Fatal(err)
	}
	// A query cell covering 300 matches.
	q := s.EncryptQuery(256, 512)
	if !q.Approx.Contains(300) {
		t.Fatalf("approx cell %v should contain 300", q.Approx)
	}
	if !s.Match(q, md) {
		t.Error("range containing the value should match")
	}
	// A query cell away from 300 does not.
	q2 := s.EncryptQuery(600, 700)
	if q2.Approx.Contains(300) {
		t.Skip("approximation unexpectedly covers 300")
	}
	if s.Match(q2, md) {
		t.Error("range excluding the value must not match")
	}
}

func TestRangeApproximationQuality(t *testing.T) {
	parts := DefaultRangePartitions(0, 1024, 6)
	s, _ := NewRange(TestKey(19), parts)
	q := s.EncryptQuery(100, 200)
	// Best cell should approximate [100,200) within a coarse cell width.
	if q.Approx.Hi-q.Approx.Lo > 512 {
		t.Errorf("approx cell %v far too coarse for [100,200)", q.Approx)
	}
}

func TestUniformPartitionCoversDomain(t *testing.T) {
	p := UniformPartition(0, 100, 7, 3)
	for v := 0.0; v < 100; v += 0.5 {
		n := 0
		for _, c := range p {
			if c.Contains(v) {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("value %g in %d cells, want exactly 1", v, n)
		}
	}
}

func TestRankedScheme(t *testing.T) {
	s, err := NewRanked(TestKey(20), DefaultRankBuckets(), 50)
	if err != nil {
		t.Fatal(err)
	}
	kws := make([]string, 30)
	for i := range kws {
		kws[i] = fmt.Sprintf("kw%02d", i)
	}
	md, err := s.EncryptMetadata(kws)
	if err != nil {
		t.Fatal(err)
	}
	// kw00 is rank 0: in top-1, top-5, top-10, top-25.
	for _, b := range []int{1, 5, 10, 25} {
		q, err := s.EncryptQuery("kw00", b)
		if err != nil {
			t.Fatal(err)
		}
		if !s.Match(q, md) {
			t.Errorf("kw00 should be within top %d", b)
		}
	}
	// kw07 is rank 7: in top-10 and top-25 but not top-1 or top-5.
	for _, c := range []struct {
		b    int
		want bool
	}{{1, false}, {5, false}, {10, true}, {25, true}} {
		q, _ := s.EncryptQuery("kw07", c.b)
		if got := s.Match(q, md); got != c.want {
			t.Errorf("kw07 within top %d = %v, want %v", c.b, got, c.want)
		}
	}
	// Unranked query matches any stored keyword.
	q, _ := s.EncryptQuery("kw29", 0)
	if !s.Match(q, md) {
		t.Error("plain keyword query should match")
	}
	if _, err := s.EncryptQuery("kw00", 7); err == nil {
		t.Error("unconfigured bucket should error")
	}
}

func testEncoder(t testing.TB) *Encoder {
	t.Helper()
	return NewEncoder(TestKey(21), EncoderConfig{})
}

func testDoc(id uint64) Document {
	return Document{
		ID:       id,
		Path:     "/home/costin/papers/roar.pdf",
		Size:     123456,
		Modified: time.Date(2008, 6, 15, 0, 0, 0, 0, time.UTC),
		Keywords: []string{"rendezvous", "ring", "search", "distributed", "partitioning"},
	}
}

func TestEncoderRoundTrip(t *testing.T) {
	e := testEncoder(t)
	md, err := e.EncryptDocument(testDoc(42))
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMatcher(e.ServerParams())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		pred Predicate
		want bool
	}{
		{"keyword hit", Predicate{Kind: Keyword, Word: "ring"}, true},
		{"keyword miss", Predicate{Kind: Keyword, Word: "database"}, false},
		{"ranked hit", Predicate{Kind: KeywordRanked, Word: "rendezvous", Rank: 1}, true},
		{"ranked miss", Predicate{Kind: KeywordRanked, Word: "search", Rank: 1}, false},
		{"ranked top5", Predicate{Kind: KeywordRanked, Word: "search", Rank: 5}, true},
		{"path hit", Predicate{Kind: PathComponent, Word: "papers"}, true},
		{"path miss", Predicate{Kind: PathComponent, Word: "music"}, false},
		{"size greater", Predicate{Kind: SizeGreater, Value: 1000}, true},
		{"size not greater", Predicate{Kind: SizeGreater, Value: 1e9}, false},
		{"size less", Predicate{Kind: SizeLess, Value: 1e9}, true},
		{"date after", Predicate{Kind: DateAfter, Value: 365}, true},    // after 2006
		{"date before", Predicate{Kind: DateBefore, Value: 5000}, true}, // before ~2018
	}
	for _, c := range cases {
		bq, err := e.EncryptPredicate(c.pred)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got := m.MatchOne(bq, md.BloomMetadata); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestEncodedMarshalRoundTrip(t *testing.T) {
	e := testEncoder(t)
	md, err := e.EncryptDocument(testDoc(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := md.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Encoded
	if err := back.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if back.ID != md.ID || !bytes.Equal(back.Nonce, md.Nonce) || !bytes.Equal(back.Filter, md.Filter) {
		t.Error("marshal round trip mismatch")
	}
	// Truncations must error, not panic.
	for cut := 0; cut < len(b); cut += 7 {
		var e2 Encoded
		if err := e2.UnmarshalBinary(b[:cut]); err == nil && cut < len(b)-1 {
			t.Fatalf("truncation at %d silently accepted", cut)
		}
	}
}

func TestMultiPredicateAndOr(t *testing.T) {
	e := testEncoder(t)
	m, _ := NewMatcher(e.ServerParams())
	md, _ := e.EncryptDocument(testDoc(1))
	and, err := e.EncryptQuery(And,
		Predicate{Kind: Keyword, Word: "ring"},
		Predicate{Kind: Keyword, Word: "search"})
	if err != nil {
		t.Fatal(err)
	}
	if !m.NewRun(and).Match(md.BloomMetadata) {
		t.Error("AND of two present keywords should match")
	}
	and2, _ := e.EncryptQuery(And,
		Predicate{Kind: Keyword, Word: "ring"},
		Predicate{Kind: Keyword, Word: "absent"})
	if m.NewRun(and2).Match(md.BloomMetadata) {
		t.Error("AND with one absent keyword must not match")
	}
	or, _ := e.EncryptQuery(Or,
		Predicate{Kind: Keyword, Word: "absent"},
		Predicate{Kind: Keyword, Word: "ring"})
	if !m.NewRun(or).Match(md.BloomMetadata) {
		t.Error("OR with one present keyword should match")
	}
	empty := Query{Op: And}
	if m.NewRun(empty).Match(md.BloomMetadata) {
		t.Error("empty query matches nothing")
	}
}

func TestDynamicPredicateOrdering(t *testing.T) {
	e := testEncoder(t)
	m, _ := NewMatcher(e.ServerParams())
	// Corpus: "common" appears in every document, "rare" in none.
	var mds []Encoded
	for i := 0; i < 500; i++ {
		doc := Document{ID: uint64(i), Path: "/d/f", Size: 10, Modified: time.Unix(1e9, 0),
			Keywords: []string{"common", fmt.Sprintf("unique%d", i)}}
		md, err := e.EncryptDocument(doc)
		if err != nil {
			t.Fatal(err)
		}
		mds = append(mds, md)
	}
	q, _ := e.EncryptQuery(And,
		Predicate{Kind: Keyword, Word: "common"},
		Predicate{Kind: Keyword, Word: "rare"})
	run := m.NewRun(q)
	matches := 0
	for _, md := range mds {
		if run.Match(md.BloomMetadata) {
			matches++
		}
	}
	if matches != 0 {
		t.Errorf("got %d matches, want 0", matches)
	}
	if run.Sampled() < SelectivitySamples {
		t.Fatalf("sampled %d, want >= %d", run.Sampled(), SelectivitySamples)
	}
	order := run.Order()
	if order == nil {
		t.Fatal("order should have settled")
	}
	// For AND, the selective predicate ("rare", index 1) must come first.
	if order[0] != 1 {
		t.Errorf("AND order = %v, want rare (1) first", order)
	}
}

func TestDynamicOrderingOr(t *testing.T) {
	e := testEncoder(t)
	m, _ := NewMatcher(e.ServerParams())
	var mds []Encoded
	for i := 0; i < SelectivitySamples+10; i++ {
		md, err := e.EncryptDocument(Document{ID: uint64(i), Path: "/x",
			Size: 1, Modified: time.Unix(1e9, 0), Keywords: []string{"everywhere"}})
		if err != nil {
			t.Fatal(err)
		}
		mds = append(mds, md)
	}
	q, _ := e.EncryptQuery(Or,
		Predicate{Kind: Keyword, Word: "nowhere"},
		Predicate{Kind: Keyword, Word: "everywhere"})
	run := m.NewRun(q)
	for _, md := range mds {
		if !run.Match(md.BloomMetadata) {
			t.Fatal("OR should match every doc")
		}
	}
	if order := run.Order(); order == nil || order[0] != 1 {
		t.Errorf("OR order = %v, want everywhere (1) first", run.Order())
	}
}

func TestMatchAll(t *testing.T) {
	e := testEncoder(t)
	m, _ := NewMatcher(e.ServerParams())
	var mds []Encoded
	for i := 0; i < 50; i++ {
		kw := "even"
		if i%2 == 1 {
			kw = "odd"
		}
		md, _ := e.EncryptDocument(Document{ID: uint64(i), Path: "/x", Size: 1,
			Modified: time.Unix(1e9, 0), Keywords: []string{kw}})
		mds = append(mds, md)
	}
	q, _ := e.EncryptQuery(And, Predicate{Kind: Keyword, Word: "odd"})
	ids := m.MatchAll(q, mds)
	if len(ids) != 25 {
		t.Fatalf("got %d matches, want 25", len(ids))
	}
	for _, id := range ids {
		if id%2 != 1 {
			t.Fatalf("id %d should not match", id)
		}
	}
}

func TestMatcherRejectsBadParams(t *testing.T) {
	if _, err := NewMatcher(ServerParams{}); err == nil {
		t.Error("zero MBits should be rejected")
	}
}

func TestBandwidthModel(t *testing.T) {
	// PPS: 500fu + 2500fq, from the paper.
	if got := PPSBandwidth(10, 4); got != 500*10+2500*4 {
		t.Errorf("PPSBandwidth = %v", got)
	}
	// Paper's qualitative results: ~8x more bandwidth for the index
	// solution with non-local updates at high frequencies; ~2x when 90%
	// of updates are local.
	r0 := BandwidthRatio(1000, 1000, 0)
	if r0 < 4 || r0 > 12 {
		t.Errorf("ratio(0%% local) = %v, want ~8", r0)
	}
	r90 := BandwidthRatio(1000, 1000, 0.9)
	if r90 < 1 || r90 > 4 {
		t.Errorf("ratio(90%% local) = %v, want ~2", r90)
	}
	if r90 >= r0 {
		t.Error("local updates must reduce the index solution's cost")
	}
}

func TestOptimalDeltaMax(t *testing.T) {
	dm := OptimalDeltaMax(100, 100, 0)
	if dm <= 1 {
		t.Errorf("optimal deltaMax = %d; chains should help at equal rates", dm)
	}
	// With extremely rare queries, longer chains are better than with
	// frequent queries.
	dmRare := OptimalDeltaMax(1000, 1, 0)
	if dmRare < dm {
		t.Errorf("rare queries should prefer longer chains: %d < %d", dmRare, dm)
	}
}

func TestBandwidthGrid(t *testing.T) {
	g := BandwidthGrid([]float64{1, 10, 100}, 0)
	if len(g) != 3 || len(g[0]) != 3 {
		t.Fatal("grid shape wrong")
	}
	for _, row := range g {
		for _, v := range row {
			if v <= 0 {
				t.Fatal("ratios must be positive")
			}
		}
	}
}

func BenchmarkBloomMatchMiss(b *testing.B) {
	s := NewBloom(TestKey(100), DefaultBloomConfig())
	md, _ := s.EncryptMetadata([]string{"present"})
	q := s.EncryptQuery("absent")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MatchBloom(q, md)
	}
}

func BenchmarkBloomMatchHit(b *testing.B) {
	s := NewBloom(TestKey(101), DefaultBloomConfig())
	md, _ := s.EncryptMetadata([]string{"present"})
	q := s.EncryptQuery("present")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MatchBloom(q, md)
	}
}

func BenchmarkDictionaryMatch(b *testing.B) {
	words := make([]string, 1000)
	for i := range words {
		words[i] = fmt.Sprintf("w%d", i)
	}
	s, _ := NewDictionary(TestKey(102), words)
	md, _ := s.EncryptMetadata(words[:10])
	q, _ := s.EncryptQuery("w5")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatchDict(q, md)
	}
}

func BenchmarkEncryptDocument(b *testing.B) {
	e := NewEncoder(TestKey(103), EncoderConfig{})
	doc := testDoc(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.EncryptDocument(doc); err != nil {
			b.Fatal(err)
		}
	}
}
