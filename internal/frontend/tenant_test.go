package frontend

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"roar/internal/pps"
	"roar/internal/proto"
)

// fakeClock (hedgebudget_test.go) serves as the hand-advanced time
// source for the token buckets here too.

func TestTenantTableTakeAndRefill(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	tt := newTenantTable(1, 2, clk.now) // 1 token/s, burst 2

	if !tt.take("a") || !tt.take("a") {
		t.Fatal("burst of 2 must admit two takes")
	}
	if tt.take("a") {
		t.Fatal("third take admitted with an empty bucket")
	}
	clk.advance(time.Second)
	if !tt.take("a") {
		t.Fatal("one second at rate 1 must refill one token")
	}
	if tt.take("a") {
		t.Fatal("refill over-credited")
	}
	// Refill caps at burst, not unbounded accrual.
	clk.advance(time.Hour)
	if !tt.take("a") || !tt.take("a") {
		t.Fatal("bucket should be back at burst capacity")
	}
	if tt.take("a") {
		t.Fatal("refill exceeded burst")
	}
	// Buckets are per tenant.
	if !tt.take("b") {
		t.Fatal("tenant b's bucket drained by tenant a")
	}
}

func TestTenantTableDisabled(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	tt := newTenantTable(0, 0, clk.now)
	for i := 0; i < 100; i++ {
		if !tt.take("a") {
			t.Fatal("rate <= 0 must disable quota enforcement")
		}
	}
	var nilTable *tenantTable
	if !nilTable.take("a") {
		t.Fatal("nil table must admit")
	}
	nilTable.noteAdmitted("a") // no-ops, must not panic
	nilTable.noteShed("a")
	nilTable.noteCacheHit("a")
	nilTable.noteCacheMiss("a")
	if nilTable.snapshot() != nil {
		t.Fatal("nil table snapshot must be empty")
	}
}

func TestTenantAdmitClasses(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	fe := New(Config{TenantRate: 0.0001, TenantBurst: 1})
	defer fe.Close()
	fe.tenants.nowFn = clk.now

	// High bypasses the quota even under contention with a dry bucket.
	for i := 0; i < 3; i++ {
		if !fe.tenantAdmit("hot", PriorityHigh, true) {
			t.Fatal("PriorityHigh must never be quota-shed")
		}
	}
	// Normal is work-conserving: unmetered while the pool has slack.
	for i := 0; i < 3; i++ {
		if !fe.tenantAdmit("hot", PriorityNormal, false) {
			t.Fatal("uncontended Normal must admit regardless of bucket")
		}
	}
	// Under contention Normal spends tokens: burst 1 admits once.
	if !fe.tenantAdmit("hot", PriorityNormal, true) {
		t.Fatal("first contended Normal should spend the burst token")
	}
	if fe.tenantAdmit("hot", PriorityNormal, true) {
		t.Fatal("second contended Normal must be quota-shed")
	}
	// Bulk is metered even on an idle pool.
	if fe.tenantAdmit("hot", PriorityBulk, false) {
		t.Fatal("Bulk must be metered even uncontended")
	}
	if !fe.tenantAdmit("cold", PriorityBulk, false) {
		t.Fatal("a fresh tenant's Bulk should spend its own burst")
	}
}

func TestTenantSnapshotDrainsAndRestores(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	tt := newTenantTable(1, 8, clk.now)
	tt.noteAdmitted("a")
	tt.noteAdmitted("a")
	tt.noteShed("a")
	tt.noteCacheHit("b")
	tt.noteCacheMiss("b")

	snap := tt.snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d tenants, want 2", len(snap))
	}
	byName := map[string]proto.TenantLoad{}
	for _, tl := range snap {
		byName[tl.Tenant] = tl
	}
	if a := byName["a"]; a.Admitted != 2 || a.Shed != 1 {
		t.Errorf("tenant a: %+v", a)
	}
	if b := byName["b"]; b.CacheHits != 1 || b.CacheMisses != 1 {
		t.Errorf("tenant b: %+v", b)
	}
	// Destructive: a second snapshot reports nothing.
	if again := tt.snapshot(); len(again) != 0 {
		t.Fatalf("second snapshot not empty: %v", again)
	}
	// Restore folds the deltas back for the next report.
	tt.restore(snap)
	if back := tt.snapshot(); len(back) != 2 {
		t.Fatalf("restore lost tenants: %v", back)
	}
}

func TestTenantSnapshotOverflowFolds(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	tt := newTenantTable(1, 8, clk.now)
	const n = maxTenantsPerReport + 40
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("t%03d", i)
		// Larger index = more load, so the fold takes the small tail.
		for j := 0; j <= i%7; j++ {
			tt.noteAdmitted(name)
		}
		tt.noteShed(name)
	}
	snap := tt.snapshot()
	if len(snap) != maxTenantsPerReport+1 {
		t.Fatalf("snapshot has %d entries, want %d named + 1 overflow",
			len(snap), maxTenantsPerReport)
	}
	var admitted, shed int
	sawOverflow := false
	for _, tl := range snap {
		admitted += tl.Admitted
		shed += tl.Shed
		if tl.Tenant == tenantOverflow {
			sawOverflow = true
		}
	}
	if !sawOverflow {
		t.Fatal("overflow bucket missing")
	}
	wantAdmitted := 0
	for i := 0; i < n; i++ {
		wantAdmitted += i%7 + 1
	}
	if admitted != wantAdmitted || shed != n {
		t.Errorf("totals not conserved across fold: admitted=%d want %d, shed=%d want %d",
			admitted, wantAdmitted, shed, n)
	}
}

func TestTenantTableEvictsLeastRecentlyActive(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	tt := newTenantTable(1, 8, clk.now)
	for i := 0; i < maxTenantStates; i++ {
		tt.noteAdmitted(fmt.Sprintf("t%04d", i))
		clk.advance(time.Millisecond)
	}
	// Touch t0000 so t0001 becomes the eviction victim.
	tt.noteAdmitted("t0000")
	clk.advance(time.Millisecond)
	tt.noteAdmitted("fresh")
	tt.mu.Lock()
	_, kept := tt.m["t0000"]
	_, evicted := tt.m["t0001"]
	n := len(tt.m)
	tt.mu.Unlock()
	if n != maxTenantStates {
		t.Errorf("table grew to %d states, cap is %d", n, maxTenantStates)
	}
	if !kept {
		t.Error("recently-active tenant evicted")
	}
	if evicted {
		t.Error("least-recently-active tenant survived")
	}
}

// TestQueryBulkTenantShed: end-to-end through Query — a bulk tenant past
// its burst is rejected with ErrTenantShed before taking a slot, and the
// shed shows up in the health report's tenant block.
func TestQueryBulkTenantShed(t *testing.T) {
	enc := slimEncoder()
	v, nodes := testView(t, enc, 2, 1)
	loadAll(t, nodes, enc, []string{"aa"})
	fe := New(Config{TenantRate: 0.0001, TenantBurst: 2})
	defer fe.Close()
	if err := fe.ApplyView(v); err != nil {
		t.Fatal(err)
	}
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "aa"})
	spec := QuerySpec{Enc: q, Tenant: "batch", Priority: PriorityBulk}

	for i := 0; i < 2; i++ {
		if _, err := fe.Query(context.Background(), spec); err != nil {
			t.Fatalf("within-burst bulk query %d: %v", i, err)
		}
	}
	if _, err := fe.Query(context.Background(), spec); !errors.Is(err, ErrTenantShed) {
		t.Fatalf("over-burst bulk query: err = %v, want ErrTenantShed", err)
	}
	// A well-behaved tenant is unaffected.
	if _, err := fe.Query(context.Background(), QuerySpec{Enc: q, Tenant: "ok", Priority: PriorityBulk}); err != nil {
		t.Fatalf("other tenant sheds with the hot one: %v", err)
	}

	rep := fe.HealthReport()
	byName := map[string]proto.TenantLoad{}
	for _, tl := range rep.Tenants {
		byName[tl.Tenant] = tl
	}
	if b := byName["batch"]; b.Admitted != 2 || b.Shed != 1 {
		t.Errorf("tenant batch telemetry: %+v, want 2 admitted / 1 shed", b)
	}
	if o := byName["ok"]; o.Admitted != 1 || o.Shed != 0 {
		t.Errorf("tenant ok telemetry: %+v, want 1 admitted / 0 shed", o)
	}
}
