package frontend

import (
	"context"
	"errors"
	"testing"
	"time"

	"roar/internal/pps"
	"roar/internal/ring"
)

// TestViewQuarantineDemotesNode: a view flagging a node quarantined
// makes it unschedulable — zero dispatches — without dropping it from
// the ring, and a later view clearing the flag re-admits it through
// the recovering state.
func TestViewQuarantineDemotesNode(t *testing.T) {
	enc := slimEncoder()
	v, nodes := testView(t, enc, 8, 4)
	loadAll(t, nodes, enc, []string{"aa", "bb"})
	fe := New(Config{PQ: 8, ProbeInterval: -1})
	defer fe.Close()
	const qIdx = 2
	v.Nodes[qIdx].Quarantined = true
	if err := fe.ApplyView(v); err != nil {
		t.Fatal(err)
	}
	if st := fe.Health()[qIdx]; st != "quarantined" {
		t.Fatalf("state = %q, want quarantined", st)
	}
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "aa"})
	for i := 0; i < 5; i++ {
		res, err := fe.Execute(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.IDs) != 1 {
			t.Fatalf("quarantine-aware plan lost results: %d ids", len(res.IDs))
		}
		if res.Failures != 0 {
			t.Fatalf("planning around a quarantined node must not hit the failure path")
		}
	}
	if got := nodes[qIdx].Stats().Queries; got != 0 {
		t.Fatalf("quarantined node received %d sub-queries", got)
	}
	// FailedNodes reports only local suspicion, not the view's verdict.
	if got := fe.FailedNodes(); len(got) != 0 {
		t.Fatalf("FailedNodes echoes the quarantine back: %v", got)
	}

	// The membership layer lifts the quarantine: recovering, then used.
	v.Nodes[qIdx].Quarantined = false
	v.Epoch = 2
	if err := fe.ApplyView(v); err != nil {
		t.Fatal(err)
	}
	if st := fe.Health()[qIdx]; st != "recovering" {
		t.Fatalf("lifted quarantine state = %q, want recovering", st)
	}
	deadline := time.Now().Add(3 * time.Second)
	for nodes[qIdx].Stats().Queries == 0 {
		if time.Now().After(deadline) {
			t.Fatal("re-admitted node never rescheduled")
		}
		if _, err := fe.Execute(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	if st := fe.Health()[qIdx]; st != "healthy" {
		t.Errorf("state after successful contact = %q, want healthy", st)
	}
}

// TestShedLowPriorityUnderOverload: past the shed high-water mark,
// PriorityLow queries are rejected with ErrShed before admission while
// normal-priority work proceeds, and the shed count rides the next
// health report.
func TestShedLowPriorityUnderOverload(t *testing.T) {
	enc := slimEncoder()
	v, nodes := testView(t, enc, 2, 1)
	loadAll(t, nodes, enc, []string{"aa"})
	fe := New(Config{ShedHighWater: 5, ProbeInterval: -1})
	defer fe.Close()
	if err := fe.ApplyView(v); err != nil {
		t.Fatal(err)
	}
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "aa"})

	// Below the mark nothing sheds.
	if _, err := fe.ExecuteOpts(context.Background(), q, ExecOptions{Priority: PriorityLow}); err != nil {
		t.Fatalf("low-priority query shed below high water: %v", err)
	}

	// Simulate deep remote queues (the depth reports nodes piggyback).
	fe.mu.RLock()
	for _, h := range fe.nodes {
		h.mu.Lock()
		h.depth = 9
		h.mu.Unlock()
	}
	fe.mu.RUnlock()

	if _, err := fe.ExecuteOpts(context.Background(), q, ExecOptions{Priority: PriorityLow}); !errors.Is(err, ErrShed) {
		t.Fatalf("low-priority query err = %v, want ErrShed", err)
	}
	if res, err := fe.Execute(context.Background(), q); err != nil || len(res.IDs) != 1 {
		t.Fatalf("normal-priority query under overload: ids=%d err=%v", len(res.IDs), err)
	}
	// Execute succeeded against real nodes, whose genuine depth reports
	// just cleared the simulated congestion — so only the first low-
	// priority rejection is in the ledger.
	rep := fe.HealthReport()
	if rep.Shed != 1 {
		t.Fatalf("HealthReport.Shed = %d, want 1", rep.Shed)
	}
	if rep := fe.HealthReport(); rep.Shed != 0 {
		t.Fatalf("shed counter must reset between reports, got %d", rep.Shed)
	}
}

// TestHealthReportCountersDelta: report counters are deltas — a
// suspicion shows up once and resets; queue depth and speed ride along.
func TestHealthReportCountersDelta(t *testing.T) {
	enc := slimEncoder()
	v, nodes := testView(t, enc, 3, 1)
	loadAll(t, nodes, enc, []string{"aa"})
	fe := New(Config{Name: "fe-test", ProbeInterval: -1})
	defer fe.Close()
	if err := fe.ApplyView(v); err != nil {
		t.Fatal(err)
	}
	fe.MarkFailed(ring.NodeID(1))
	rep := fe.HealthReport()
	if rep.FE != "fe-test" || rep.Seq != 1 {
		t.Fatalf("report identity = %q/%d, want fe-test/1", rep.FE, rep.Seq)
	}
	var got *int
	for i := range rep.Nodes {
		if rep.Nodes[i].ID == 1 {
			got = &rep.Nodes[i].Suspicions
		}
	}
	if got == nil || *got != 1 {
		t.Fatalf("suspicion missing from report: %+v", rep.Nodes)
	}
	rep2 := fe.HealthReport()
	if rep2.Seq != 2 {
		t.Fatalf("Seq = %d, want 2", rep2.Seq)
	}
	for _, nh := range rep2.Nodes {
		if nh.Suspicions != 0 || nh.ProbeOKs != 0 || nh.ProbeFails != 0 || nh.Contacts != 0 {
			t.Fatalf("counters did not reset: %+v", nh)
		}
	}

	// A report whose delivery failed is re-credited: its deltas must
	// ride the next snapshot instead of being lost.
	fe.RestoreHealthReport(rep)
	rep3 := fe.HealthReport()
	restored := false
	for _, nh := range rep3.Nodes {
		if nh.ID == 1 && nh.Suspicions == 1 {
			restored = true
		}
	}
	if !restored {
		t.Fatalf("restored evidence missing from the next report: %+v", rep3.Nodes)
	}
	_ = nodes
}

// TestHealthReportAutoscaleTelemetry pins the autoscale extension's
// delta/gauge semantics: shed-by-priority and hedge-denial counters
// reset per report and are re-credited on restore; the queue-wait and
// per-node latency digests are rolling gauges.
func TestHealthReportAutoscaleTelemetry(t *testing.T) {
	enc := slimEncoder()
	v, nodes := testView(t, enc, 2, 1)
	loadAll(t, nodes, enc, []string{"aa"})
	fe := New(Config{Name: "fe-test", ProbeInterval: -1})
	defer fe.Close()
	if err := fe.ApplyView(v); err != nil {
		t.Fatal(err)
	}
	fe.shedNorm.Add(3)
	fe.hdgDenied.Add(7)
	// Warm the queue-wait and one node's latency tracker past the
	// quantile floor.
	for i := 0; i < latWarmup; i++ {
		fe.queueLat.observe(2 * time.Millisecond)
		fe.observeLatency(ring.NodeID(0), 5*time.Millisecond)
	}

	rep := fe.HealthReport()
	if rep.ShedNormal != 3 || rep.HedgesDenied != 7 {
		t.Fatalf("extension counters = %d/%d, want 3/7", rep.ShedNormal, rep.HedgesDenied)
	}
	if rep.QueueP50Nanos <= 0 || rep.QueueP99Nanos < rep.QueueP50Nanos {
		t.Fatalf("queue digest broken: p50=%d p99=%d", rep.QueueP50Nanos, rep.QueueP99Nanos)
	}
	var lat0 int64
	for _, nh := range rep.Nodes {
		if nh.ID == 0 {
			lat0 = nh.LatP99Nanos
		} else if nh.LatP99Nanos != 0 {
			t.Fatalf("cold node %d grew a latency digest: %d", nh.ID, nh.LatP99Nanos)
		}
	}
	if lat0 <= 0 {
		t.Fatalf("warmed node's latency digest missing: %+v", rep.Nodes)
	}
	if !rep.HasExt() {
		t.Fatal("report with telemetry does not claim the extension")
	}

	// Counters are deltas; digests are gauges.
	rep2 := fe.HealthReport()
	if rep2.ShedNormal != 0 || rep2.HedgesDenied != 0 {
		t.Fatalf("extension counters did not reset: %+v", rep2)
	}
	if rep2.QueueP99Nanos == 0 {
		t.Fatal("queue-wait gauge reset with the counters")
	}

	// A failed delivery re-credits the counter deltas.
	fe.RestoreHealthReport(rep)
	rep3 := fe.HealthReport()
	if rep3.ShedNormal != 3 || rep3.HedgesDenied != 7 {
		t.Fatalf("restore lost extension counters: %+v", rep3)
	}
}
