package frontend

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"roar/internal/node"
	"roar/internal/pps"
	"roar/internal/proto"
)

// testViewCost is testView with a fixed per-sub-query node cost, for
// exercising the admission queue deterministically.
func testViewCost(t *testing.T, enc *pps.Encoder, n, p int, cost time.Duration) (proto.View, []*node.Node) {
	t.Helper()
	v := proto.View{Epoch: 1, P: p}
	var nodes []*node.Node
	for i := 0; i < n; i++ {
		nd, err := node.New(node.Config{Params: enc.ServerParams(), FixedQueryCost: cost})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := nd.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		nodes = append(nodes, nd)
		v.Nodes = append(v.Nodes, proto.NodeInfo{
			ID: i, Ring: 0, Start: float64(i) / float64(n), Addr: srv.Addr(),
		})
	}
	return v, nodes
}

func TestAdmissionControlQueues(t *testing.T) {
	enc := slimEncoder()
	v, nodes := testViewCost(t, enc, 2, 1, 40*time.Millisecond)
	loadAll(t, nodes, enc, []string{"aa"})
	fe := New(Config{MaxInFlight: 1})
	defer fe.Close()
	if err := fe.ApplyView(v); err != nil {
		t.Fatal(err)
	}
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "aa"})
	const clients = 4
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		queued int
	)
	start := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := fe.Execute(context.Background(), q)
			if err != nil {
				t.Error(err)
				return
			}
			if len(res.IDs) != 1 {
				t.Errorf("got %d ids, want 1", len(res.IDs))
			}
			mu.Lock()
			if res.Queue > 0 {
				queued++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	// One at a time: total wall time is at least clients × fixed cost.
	if d := time.Since(start); d < clients*40*time.Millisecond {
		t.Errorf("serial admission finished in %v, faster than %d serialised queries", d, clients)
	}
	if queued == 0 {
		t.Error("no query reported admission queueing")
	}
	if bd := fe.DelayBreakdown(); bd.Queue.Mean <= 0 {
		t.Error("queue phase not accumulated in breakdown")
	}
}

func TestQueueTimeoutOverload(t *testing.T) {
	enc := slimEncoder()
	v, nodes := testViewCost(t, enc, 2, 1, 300*time.Millisecond)
	loadAll(t, nodes, enc, []string{"aa"})
	fe := New(Config{MaxInFlight: 1, QueueTimeout: 20 * time.Millisecond})
	defer fe.Close()
	if err := fe.ApplyView(v); err != nil {
		t.Fatal(err)
	}
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "aa"})
	first := make(chan error, 1)
	go func() {
		_, err := fe.Execute(context.Background(), q)
		first <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the first query occupy the slot
	_, err := fe.Execute(context.Background(), q)
	if !errors.Is(err, ErrOverloaded) {
		t.Errorf("queued query got %v, want ErrOverloaded", err)
	}
	if err := <-first; err != nil {
		t.Fatalf("first query failed: %v", err)
	}
}

func TestAdmissionHonoursContext(t *testing.T) {
	enc := slimEncoder()
	v, nodes := testViewCost(t, enc, 2, 1, 300*time.Millisecond)
	loadAll(t, nodes, enc, []string{"aa"})
	fe := New(Config{MaxInFlight: 1})
	defer fe.Close()
	if err := fe.ApplyView(v); err != nil {
		t.Fatal(err)
	}
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "aa"})
	first := make(chan error, 1)
	go func() {
		_, err := fe.Execute(context.Background(), q)
		first <- err
	}()
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := fe.Execute(ctx, q); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("queued query got %v, want context deadline", err)
	}
	if err := <-first; err != nil {
		t.Fatalf("first query failed: %v", err)
	}
}

func TestDispatchWorkersBounded(t *testing.T) {
	enc := slimEncoder()
	v, nodes := testView(t, enc, 4, 4)
	loadAll(t, nodes, enc, []string{"aa", "bb", "aa"})
	fe := New(Config{DispatchWorkers: 1})
	defer fe.Close()
	if err := fe.ApplyView(v); err != nil {
		t.Fatal(err)
	}
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "aa"})
	res, err := fe.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 2 {
		t.Fatalf("got %d matches, want 2", len(res.IDs))
	}
	if res.SubQueries != 4 {
		t.Errorf("p=4 should send 4 sub-queries, sent %d", res.SubQueries)
	}
}

func TestPooledClientsPerNode(t *testing.T) {
	enc := slimEncoder()
	v, nodes := testView(t, enc, 3, 1)
	loadAll(t, nodes, enc, []string{"aa"})
	fe := New(Config{PoolSize: 3})
	defer fe.Close()
	if err := fe.ApplyView(v); err != nil {
		t.Fatal(err)
	}
	fe.mu.RLock()
	defer fe.mu.RUnlock()
	for id, h := range fe.nodes {
		if got := h.client.PoolSize(); got != 3 {
			t.Errorf("node %d client pool = %d, want 3", id, got)
		}
	}
}

func TestViewTuningOverridesConfig(t *testing.T) {
	enc := slimEncoder()
	v, nodes := testView(t, enc, 2, 1)
	loadAll(t, nodes, enc, []string{"aa"})
	fe := New(Config{PoolSize: 1})
	defer fe.Close()
	v.Tuning = &proto.Tuning{
		PoolSize:            2,
		MaxInFlight:         7,
		DispatchWorkers:     5,
		QueueTimeoutNanos:   int64(time.Second),
		HedgeBudgetFraction: 0.10,
		HedgeBudgetBurst:    8,
		HedgeMaxPerQuery:    3,
		ShedHighWater:       6,
	}
	if err := fe.ApplyView(v); err != nil {
		t.Fatal(err)
	}
	fe.mu.RLock()
	tune, admit, workers := fe.tune, fe.admit, fe.workers
	budget := fe.budget
	var poolSizes []int
	for _, h := range fe.nodes {
		poolSizes = append(poolSizes, h.client.PoolSize())
	}
	fe.mu.RUnlock()
	if tune.poolSize != 2 || tune.maxInFlight != 7 || tune.dispatchWorkers != 5 || tune.queueTimeout != time.Second {
		t.Errorf("tuning not applied: %+v", tune)
	}
	if tune.hedgeBudgetFrac != 0.10 || tune.hedgeBudgetBurst != 8 || tune.hedgeMaxPerQuery != 3 || tune.shedHighWater != 6 {
		t.Errorf("hedge/shed tuning not applied: %+v", tune)
	}
	if budget == nil || budget.fraction != 0.10 || budget.burst != 8 {
		t.Errorf("budget not rebuilt from view tuning: %+v", budget)
	}
	if cap(admit) != 7 {
		t.Errorf("admit capacity = %d, want 7", cap(admit))
	}
	if cap(workers) != 5 {
		t.Errorf("workers capacity = %d, want 5", cap(workers))
	}
	for _, ps := range poolSizes {
		if ps != 2 {
			t.Errorf("client pool = %d, want view-tuned 2", ps)
		}
	}
	// Concurrency still works end to end under the tuned pipeline.
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "aa"})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if res, err := fe.Execute(context.Background(), q); err != nil || len(res.IDs) != 1 {
				t.Errorf("tuned execute: ids=%d err=%v", len(res.IDs), err)
			}
		}()
	}
	wg.Wait()
}
