package frontend

import (
	"context"
	"sync"
	"testing"
	"time"

	"roar/internal/pps"
	"roar/internal/proto"
	"roar/internal/ring"
)

// The recovery and hedging tests use n == pq (8 equal nodes, p = 4,
// PQ = 8) so every node owns exactly one probe point of every plan: the
// slow node cannot be scheduled around, which makes timeout, hedge, and
// re-use deterministic. Node ranges (1/8) stay below the 1/p−δ bracket
// span, so the §4.4 fallback around a suspected node always has valid
// replacement pairs.

// TestRecoveryAfterTransientSlowness is the un-stick test for the
// one-way failure ratchet: a node that times out once (slow, not dead)
// is suspected, then probed back, then actually rescheduled.
func TestRecoveryAfterTransientSlowness(t *testing.T) {
	enc := slimEncoder()
	v, nodes := testView(t, enc, 8, 4)
	loadAll(t, nodes, enc, []string{"aa", "bb"})
	fe := New(Config{
		PQ:              8,
		SubQueryTimeout: 120 * time.Millisecond,
		ProbeInterval:   30 * time.Millisecond,
	})
	defer fe.Close()
	if err := fe.ApplyView(v); err != nil {
		t.Fatal(err)
	}
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "aa"})

	// Phase 1: node 0 is slow beyond the sub-query timer. Every plan
	// must touch it (n == pq), so the first query suspects it and
	// recovers the harvest through the §4.4 fallback.
	nodes[0].SetDelay(time.Second)
	res, err := fe.Execute(context.Background(), q)
	if err != nil {
		t.Fatalf("query against slow node: %v", err)
	}
	if len(res.IDs) != 1 {
		t.Fatalf("fallback lost results: got %d ids, want 1", len(res.IDs))
	}
	if res.Failures == 0 {
		t.Fatal("slow node never hit the failure path")
	}
	if got := fe.FailedNodes(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("FailedNodes = %v, want [0]", got)
	}
	preQueries := nodes[0].Stats().Queries

	// Phase 2: the node comes back; the background probe must lift
	// suspicion without any view change or query traffic.
	nodes[0].SetDelay(0)
	deadline := time.Now().Add(3 * time.Second)
	for len(fe.FailedNodes()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("suspicion never cleared; health = %v", fe.Health())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := fe.Health()[0]; st != "recovering" {
		t.Errorf("probed-back node state = %q, want recovering", st)
	}

	// Phase 3: the recovered node is actually rescheduled and promotes
	// to healthy on its first success.
	for nodes[0].Stats().Queries == preQueries {
		if time.Now().After(deadline) {
			t.Fatalf("recovered node never rescheduled; health = %v", fe.Health())
		}
		if _, err := fe.Execute(context.Background(), q); err != nil {
			t.Fatalf("post-recovery query: %v", err)
		}
	}
	if st := fe.Health()[0]; st != "healthy" {
		t.Errorf("node state after successful contact = %q, want healthy", st)
	}
	if got := fe.FailedNodes(); len(got) != 0 {
		t.Errorf("FailedNodes after recovery = %v, want none", got)
	}
}

// TestApplyViewClearsSuspicion pins the satellite bugfix: a retained
// node (same id, same addr) must not keep failed=true forever across
// view updates.
func TestApplyViewClearsSuspicion(t *testing.T) {
	enc := slimEncoder()
	v, nodes := testView(t, enc, 4, 2)
	loadAll(t, nodes, enc, []string{"aa"})
	fe := New(Config{ProbeInterval: -1}) // isolate the ApplyView path
	defer fe.Close()
	if err := fe.ApplyView(v); err != nil {
		t.Fatal(err)
	}
	fe.MarkFailed(ring.NodeID(2))
	if got := fe.FailedNodes(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("FailedNodes = %v, want [2]", got)
	}
	v2 := v
	v2.Epoch = 2
	if err := fe.ApplyView(v2); err != nil {
		t.Fatal(err)
	}
	if got := fe.FailedNodes(); len(got) != 0 {
		t.Errorf("retained node kept suspicion across ApplyView: %v", got)
	}
	if st := fe.Health()[2]; st != "recovering" {
		t.Errorf("retained node state = %q, want recovering", st)
	}
}

// TestApplyViewRebuildsPoolOnTuningChange pins the satellite bugfix: a
// retained handle's connection pool must track Tuning.PoolSize.
func TestApplyViewRebuildsPoolOnTuningChange(t *testing.T) {
	enc := slimEncoder()
	v, nodes := testView(t, enc, 2, 1)
	loadAll(t, nodes, enc, []string{"aa"})
	fe := New(Config{PoolSize: 1, ProbeInterval: -1})
	defer fe.Close()
	if err := fe.ApplyView(v); err != nil {
		t.Fatal(err)
	}
	fe.mu.RLock()
	for id, h := range fe.nodes {
		if got := h.client.PoolSize(); got != 1 {
			t.Errorf("node %d initial pool = %d, want 1", id, got)
		}
	}
	fe.mu.RUnlock()
	v2 := v
	v2.Epoch = 2
	v2.Tuning = &proto.Tuning{PoolSize: 3}
	if err := fe.ApplyView(v2); err != nil {
		t.Fatal(err)
	}
	fe.mu.RLock()
	for id, h := range fe.nodes {
		if got := h.client.PoolSize(); got != 3 {
			t.Errorf("node %d retained stale pool width %d, want retuned 3", id, got)
		}
	}
	fe.mu.RUnlock()
	// The rebuilt clients must still work.
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "aa"})
	if res, err := fe.Execute(context.Background(), q); err != nil || len(res.IDs) != 1 {
		t.Fatalf("execute after pool rebuild: ids=%d err=%v", len(res.IDs), err)
	}
}

// TestHedgeWinsAndCancelsLoser: a slow (not failed) node is hedged onto
// replicas before the failure timer; the hedge wins, the result is
// complete and duplicate-free, and the losing primary call is cancelled
// all the way into the node's matcher.
func TestHedgeWinsAndCancelsLoser(t *testing.T) {
	enc := slimEncoder()
	v, nodes := testView(t, enc, 8, 4)
	loadAll(t, nodes, enc, []string{"aa", "bb", "aa"})
	fe := New(Config{
		PQ:            8,
		HedgeDelay:    30 * time.Millisecond,
		ProbeInterval: -1,
	})
	defer fe.Close()
	if err := fe.ApplyView(v); err != nil {
		t.Fatal(err)
	}
	const slowFor = 600 * time.Millisecond
	nodes[0].SetDelay(slowFor)
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "aa"})
	start := time.Now()
	res, err := fe.Execute(context.Background(), q)
	wall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 2 {
		t.Fatalf("hedged query returned %d ids, want 2", len(res.IDs))
	}
	for i := 1; i < len(res.IDs); i++ {
		if res.IDs[i] <= res.IDs[i-1] {
			t.Fatalf("duplicate or unsorted ids after hedge merge: %v", res.IDs)
		}
	}
	if res.Hedges == 0 || res.HedgeWins == 0 {
		t.Fatalf("expected a winning hedge, got hedges=%d wins=%d", res.Hedges, res.HedgeWins)
	}
	if res.Failures != 0 {
		t.Errorf("hedging must not count as failure, got %d", res.Failures)
	}
	if wall >= slowFor {
		t.Errorf("query took %v, did not beat the %v slow primary", wall, slowFor)
	}
	// Hedging is speculative: the slow primary must NOT be suspected.
	if got := fe.FailedNodes(); len(got) != 0 {
		t.Errorf("hedged-away node was suspected: %v", got)
	}
	// The losing call must have been cancelled server-side: the slow
	// node never completes the match (its counter stays flat) and
	// records the abort.
	time.Sleep(slowFor + 100*time.Millisecond)
	st := nodes[0].Stats()
	if st.Queries != 0 {
		t.Errorf("losing primary ran to completion (%d queries); cancellation never reached the node", st.Queries)
	}
	if st.Canceled == 0 {
		t.Error("node never recorded the cancelled sub-query")
	}
}

// TestNodeCreditBackpressure: with a per-node outstanding cap of 1,
// concurrent dispatches to one node serialise on its credit channel.
func TestNodeCreditBackpressure(t *testing.T) {
	enc := slimEncoder()
	v, nodes := testViewCost(t, enc, 1, 1, 40*time.Millisecond)
	loadAll(t, nodes, enc, []string{"aa"})
	fe := New(Config{NodeMaxOutstanding: 1, ProbeInterval: -1})
	defer fe.Close()
	if err := fe.ApplyView(v); err != nil {
		t.Fatal(err)
	}
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "aa"})
	const clients = 4
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if res, err := fe.Execute(context.Background(), q); err != nil || len(res.IDs) != 1 {
				t.Errorf("execute: ids=%d err=%v", len(res.IDs), err)
			}
		}()
	}
	wg.Wait()
	// One credit: the node sees the 40ms sub-queries one at a time.
	if d := time.Since(start); d < clients*40*time.Millisecond {
		t.Errorf("4 capped queries finished in %v; credit cap not enforced", d)
	}
	if peak := nodes[0].Stats().PeakConcurrency; peak > 1 {
		t.Errorf("node peak concurrency %d under a 1-credit cap", peak)
	}
}

// TestBreakdownRecordsFailedQueries pins the satellite bugfix: the
// phase breakdown must include queries that end in error — those are
// exactly the delays worth diagnosing.
func TestBreakdownRecordsFailedQueries(t *testing.T) {
	enc := slimEncoder()
	// A view whose only node is a dead address: every dispatch fails.
	v := proto.View{Epoch: 1, P: 1, Nodes: []proto.NodeInfo{
		{ID: 0, Ring: 0, Start: 0, Addr: "127.0.0.1:1"},
	}}
	fe := New(Config{SubQueryTimeout: 100 * time.Millisecond, ProbeInterval: -1})
	defer fe.Close()
	if err := fe.ApplyView(v); err != nil {
		t.Fatal(err)
	}
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "aa"})
	if _, err := fe.Execute(context.Background(), q); err == nil {
		t.Fatal("query against a dead-only view must fail")
	}
	bd := fe.DelayBreakdown()
	if bd.Total.N != 1 {
		t.Errorf("failed query missing from breakdown: N = %d, want 1", bd.Total.N)
	}
	if bd.Dispatch.N != 1 || bd.Dispatch.Mean <= 0 {
		t.Errorf("dispatch phase of the failed query not recorded: %+v", bd.Dispatch)
	}
}

// TestEstimatorUsesReportedDepth: a node that reports a deep queue is
// estimated slower than an idle one at equal speed.
func TestEstimatorUsesReportedDepth(t *testing.T) {
	enc := slimEncoder()
	v, nodes := testView(t, enc, 2, 1)
	loadAll(t, nodes, enc, []string{"aa"})
	fe := New(Config{ProbeInterval: -1})
	defer fe.Close()
	if err := fe.ApplyView(v); err != nil {
		t.Fatal(err)
	}
	fe.mu.RLock()
	h0 := fe.nodes[0]
	fe.mu.RUnlock()
	h0.mu.Lock()
	h0.depth = 8
	h0.mu.Unlock()
	est := fe.estimator()
	deep := est.EstimateFinish(0, 0.5)
	idle := est.EstimateFinish(1, 0.5)
	if deep <= idle {
		t.Errorf("deep-queue node estimated %.3f, idle %.3f; depth ignored", deep, idle)
	}
	_ = nodes
}
