// Result cache: a memory-budgeted, sharded LRU over merged query
// results, keyed by the query's canonical bytes and fenced by a
// generation counter so asynchronous writes can never serve stale hits
// silently (docs/ECONOMICS.md).
//
// The generation is the frontend's summary of "the data may have
// changed": it advances when a strictly newer view installs (placement
// or quarantine moved) and when the ingest watermarks advance (PR 9's
// async write path delivers without an epoch bump — see
// Frontend.ObserveIngest). Every cached entry records the generation it
// was computed under; a hit requires generation equality, and a Put is
// dropped when the generation moved while the query was in flight. That
// makes invalidation O(1) at write-observation time and lazy at the
// entries (they fall out on next touch or by LRU pressure), at the cost
// of flushing the whole cache per observed write batch — the right
// trade for a read-heavy tier, and the only safe one without per-arc
// dependency tracking.
//
// Misses single-flight: concurrent queries for the same key at the same
// generation collapse onto one fan-out (the leader), and followers wait
// for its result instead of multiplying the herd by p sub-queries each.
// A follower whose leader fails falls back to its own execution, so the
// cache can slow nothing down, only shed work.
package frontend

import (
	"container/list"
	"encoding/binary"
	"sync"
	"sync/atomic"

	"roar/internal/proto"
)

// Result sources, for latency attribution (Result.Source).
const (
	// SourceCache: served from the result cache (or coalesced onto
	// another in-flight query's fan-out) without dispatching.
	SourceCache = "cache"
	// SourceFanout: a full scheduled fan-out with no hedged legs.
	SourceFanout = "fanout"
	// SourceHedged: a fan-out that launched at least one hedged leg.
	SourceHedged = "hedged"
)

// CacheStats is a point-in-time snapshot of the result cache's
// counters, attached to every Result so bench artifacts can attribute
// latency without a second API call. Counters are cumulative since the
// frontend started.
type CacheStats struct {
	Hits          int64 // generation-fresh lookups served from memory
	Misses        int64 // lookups that fell through to a fan-out
	Coalesced     int64 // queries that joined another query's fan-out
	Evictions     int64 // entries dropped by the byte budget
	Invalidations int64 // entries dropped on generation mismatch
	Entries       int   // live entries across all shards
	Bytes         int64 // resident budget across all shards
}

// cacheEntry is one cached merged result.
type cacheEntry struct {
	key  string
	ids  []uint64
	gen  uint64
	size int64
}

// flight is one in-progress fan-out other queries may coalesce onto.
type flight struct {
	gen  uint64
	done chan struct{}
	ids  []uint64
	err  error
}

// cacheShard is one lock domain of the cache: an LRU list plus the
// single-flight table for keys hashing here.
type cacheShard struct {
	mu      sync.Mutex
	lru     *list.List // front = most recent; values are *cacheEntry
	byKey   map[string]*list.Element
	bytes   int64
	budget  int64
	flights map[string]*flight
}

// resultCache is the sharded whole: shard count fixed at build time,
// budget split evenly. Stats are lock-free atomics (read on every
// query result).
type resultCache struct {
	shards []*cacheShard

	hits          atomic.Int64
	misses        atomic.Int64
	coalesced     atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
	entries       atomic.Int64
	resident      atomic.Int64
}

const defaultCacheShards = 16

// entryOverhead approximates the per-entry bookkeeping bytes (list
// element, map bucket share, struct) charged against the budget on top
// of key and id payload.
const entryOverhead = 96

func newResultCache(budget int64, shards int) *resultCache {
	if budget <= 0 {
		return nil
	}
	if shards <= 0 {
		shards = defaultCacheShards
	}
	per := budget / int64(shards)
	if per <= 0 {
		per = 1
	}
	c := &resultCache{shards: make([]*cacheShard, shards)}
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			lru:     list.New(),
			byKey:   make(map[string]*list.Element),
			budget:  per,
			flights: make(map[string]*flight),
		}
	}
	return c
}

// shardFor hashes the key (FNV-1a) onto a shard.
func (c *resultCache) shardFor(key string) *cacheShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return c.shards[h%uint64(len(c.shards))]
}

// get returns the cached ids for key at exactly generation gen. An
// entry from an older generation is removed on sight (a write was
// observed since it was stored) and counts as an invalidation plus a
// miss. The returned slice is a copy — callers own their Result.
func (c *resultCache) get(key string, gen uint64) ([]uint64, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	el, ok := s.byKey[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if e.gen != gen {
		s.removeLocked(el, e)
		s.mu.Unlock()
		c.invalidations.Add(1)
		c.entries.Add(-1)
		c.resident.Add(-e.size)
		c.misses.Add(1)
		return nil, false
	}
	s.lru.MoveToFront(el)
	ids := make([]uint64, len(e.ids))
	copy(ids, e.ids)
	s.mu.Unlock()
	c.hits.Add(1)
	return ids, true
}

// put stores a merged result computed under generation gen. Oversized
// results (bigger than a whole shard's budget) are served uncached
// rather than wiping the shard for one entry.
func (c *resultCache) put(key string, ids []uint64, gen uint64) {
	size := int64(len(key)) + 8*int64(len(ids)) + entryOverhead
	s := c.shardFor(key)
	if size > s.budget {
		return
	}
	stored := make([]uint64, len(ids))
	copy(stored, ids)
	e := &cacheEntry{key: key, ids: stored, gen: gen, size: size}

	var evicted, freed int64
	s.mu.Lock()
	if el, ok := s.byKey[key]; ok {
		old := el.Value.(*cacheEntry)
		s.removeLocked(el, old)
		c.entries.Add(-1)
		c.resident.Add(-old.size)
	}
	s.byKey[key] = s.lru.PushFront(e)
	s.bytes += size
	for s.bytes > s.budget {
		back := s.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*cacheEntry)
		s.removeLocked(back, victim)
		evicted++
		freed += victim.size
	}
	s.mu.Unlock()
	c.entries.Add(1 - evicted)
	c.resident.Add(size - freed)
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}

// removeLocked unlinks one entry; the caller adjusts the atomics.
func (s *cacheShard) removeLocked(el *list.Element, e *cacheEntry) {
	s.lru.Remove(el)
	delete(s.byKey, e.key)
	s.bytes -= e.size
}

// startFlight registers a single-flight for (key, gen). The second
// return is true when the caller is the leader and must execute the
// fan-out then call finishFlight; false means another query's fan-out
// for the same key and generation is in progress and the caller should
// wait on fl.done. A flight registered under a DIFFERENT generation is
// not joinable — the waiter would inherit a result the fence already
// outdated — so the caller leads unregistered (fl == nil): it executes
// without publishing, and the stale flight finishes on its own.
func (c *resultCache) startFlight(key string, gen uint64) (fl *flight, leader bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.flights[key]; ok {
		if cur.gen == gen {
			return cur, false
		}
		return nil, true // stale flight in progress; lead unregistered
	}
	fl = &flight{gen: gen, done: make(chan struct{})}
	s.flights[key] = fl
	return fl, true
}

// finishFlight publishes the leader's outcome and wakes followers.
func (c *resultCache) finishFlight(key string, fl *flight, ids []uint64, err error) {
	s := c.shardFor(key)
	s.mu.Lock()
	if s.flights[key] == fl {
		delete(s.flights, key)
	}
	s.mu.Unlock()
	fl.ids, fl.err = ids, err
	close(fl.done)
}

// noteCoalesced counts one follower served from a leader's fan-out.
func (c *resultCache) noteCoalesced() { c.coalesced.Add(1) }

// stats snapshots the counters.
func (c *resultCache) stats() CacheStats {
	return CacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Coalesced:     c.coalesced.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Entries:       int(c.entries.Load()),
		Bytes:         c.resident.Load(),
	}
}

// cacheKey canonicalises a query's payload. Two QuerySpecs with the
// same key are guaranteed the same answer at the same generation:
// every field that reaches the nodes' matchers is folded in (data
// plane, operator, trapdoor bytes or terms, mode, threshold, limit),
// and nothing else — tenant, priority, and cache-control affect
// admission, not the answer, so they share entries.
func cacheKey(spec QuerySpec) string {
	b := make([]byte, 0, 128)
	if spec.Plain != nil {
		p := spec.Plain
		b = append(b, 1, p.Mode)
		b = binary.AppendVarint(b, int64(p.MinMatch))
		b = binary.AppendVarint(b, int64(p.Limit))
		b = binary.AppendUvarint(b, uint64(len(p.Terms)))
		for _, t := range p.Terms {
			b = binary.AppendUvarint(b, uint64(len(t)))
			b = append(b, t...)
		}
		return string(b)
	}
	b = append(b, 0, byte(spec.Enc.Op))
	b = binary.AppendUvarint(b, uint64(len(spec.Enc.Preds)))
	for _, pred := range spec.Enc.Preds {
		b = binary.AppendUvarint(b, uint64(len(pred.Trapdoor)))
		for _, td := range pred.Trapdoor {
			b = binary.AppendUvarint(b, uint64(len(td)))
			b = append(b, td...)
		}
	}
	return string(b)
}

// ObserveIngest feeds the frontend an ingest-watermark observation
// (from a view pull, an fe.put acknowledgement, or any IngestResp).
// Whenever either watermark advances past everything observed before,
// the cache generation bumps: records became durable or were delivered
// since the cached results were computed, so they may be stale. Widely
// monotonic — a lagging report (an old view, a slow replica) can never
// rewind the watermarks or resurrect invalidated entries.
func (f *Frontend) ObserveIngest(seq, drained uint64) {
	bump := false
	for {
		cur := f.ingSeq.Load()
		if seq <= cur {
			break
		}
		if f.ingSeq.CompareAndSwap(cur, seq) {
			bump = true
			break
		}
	}
	for {
		cur := f.ingDrained.Load()
		if drained <= cur {
			break
		}
		if f.ingDrained.CompareAndSwap(cur, drained) {
			bump = true
			break
		}
	}
	if bump && f.cache != nil {
		f.cacheGen.Add(1)
	}
}

// CacheStats snapshots the result cache counters (zero value when the
// cache is disabled).
func (f *Frontend) CacheStats() CacheStats {
	if f.cache == nil {
		return CacheStats{}
	}
	return f.cache.stats()
}

// cacheControlValid keeps unknown wire values from doing something
// surprising: anything but the defined Cache* constants behaves as
// CacheDefault.
func cacheControl(cc uint8) uint8 {
	switch cc {
	case proto.CacheBypass, proto.CacheRefresh:
		return cc
	default:
		return proto.CacheDefault
	}
}
