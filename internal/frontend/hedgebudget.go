package frontend

import (
	"sync"
	"time"
)

// Hedge budget (Tail-Tolerant Distributed Search: replica hedging only
// pays off when it is rate-limited). Without a budget, broad slowness —
// an overloaded cluster, not one straggler — makes *every* sub-query
// cross the hedge delay, and speculative re-dispatch doubles offered
// load exactly when capacity is scarce. The budget is a token bucket
// denominated in sub-queries: every primary dispatch earns `fraction`
// tokens, every hedged replica leg spends one, so hedged legs are
// bounded by fraction × primaries + burst no matter how slow the
// cluster gets. Tokens also trickle back at fraction per second of
// wall-clock idleness (through the injectable clock), so a frontend
// that went quiet re-arms its burst headroom.

// Defaults applied when Config leaves the knobs zero.
const (
	defaultHedgeBudgetFraction = 0.05
	defaultHedgeBudgetBurst    = 4
)

type hedgeBudget struct {
	mu       sync.Mutex
	fraction float64 // tokens earned per primary sub-query dispatched
	burst    float64 // bucket capacity; also the initial balance
	tokens   float64
	now      func() time.Time // injectable clock (tests)
	last     time.Time        // last trickle evaluation
}

// newHedgeBudget builds a full bucket. now == nil uses the wall clock.
func newHedgeBudget(fraction, burst float64, now func() time.Time) *hedgeBudget {
	if now == nil {
		now = time.Now //lint:allow wallclock — clock-injection default
	}
	b := &hedgeBudget{fraction: fraction, burst: burst, tokens: burst, now: now}
	b.last = now()
	return b
}

// trickleLocked credits fraction tokens per elapsed second — the
// idle-refill path; the clock is only read here.
func (b *hedgeBudget) trickleLocked() {
	now := b.now()
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.fraction
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
}

// earn credits the budget for n dispatched primary sub-queries.
func (b *hedgeBudget) earn(n int) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.trickleLocked()
	b.tokens += float64(n) * b.fraction
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mu.Unlock()
}

// take attempts to spend n tokens (one per hedge leg about to launch).
// A nil budget means hedging is un-budgeted and always allowed.
func (b *hedgeBudget) take(n int) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.trickleLocked()
	if b.tokens < float64(n) {
		return false
	}
	b.tokens -= float64(n)
	return true
}

// balance reports the current token count (tests, introspection).
func (b *hedgeBudget) balance() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.trickleLocked()
	return b.tokens
}
