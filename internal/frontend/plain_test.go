package frontend

import (
	"context"
	"math/rand"
	"sort"
	"testing"

	"roar/internal/index"
	"roar/internal/pps"
	"roar/internal/proto"
)

// plainCorpus builds a deterministic corpus of random-id documents.
func plainCorpus(rng *rand.Rand, docs int) map[uint64][]string {
	vocab := []string{"alpha", "beta", "gamma", "delta"}
	corpus := make(map[uint64][]string, docs)
	for len(corpus) < docs {
		id := rng.Uint64()
		if _, dup := corpus[id]; dup || id == 0 {
			continue
		}
		corpus[id] = vocab[:1+rng.Intn(len(vocab))]
	}
	return corpus
}

// TestExecutePlainEndToEnd drives plaintext queries through the full
// frontend pipeline — scheduling, wire RPC, binary codec, node-side
// matcher dispatch, merge — against real nodes serving a roaring index,
// and checks the merged answer against a local brute-force evaluation.
func TestExecutePlainEndToEnd(t *testing.T) {
	enc := slimEncoder()
	v, nodes := testView(t, enc, 4, 1)
	rng := rand.New(rand.NewSource(7))
	corpus := plainCorpus(rng, 200)
	// Fully replicated layout (the plain-plane analogue of loadAll):
	// every node indexes the whole corpus; arc bounds on each sub-query
	// keep the merged answer duplicate-free.
	for _, nd := range nodes {
		b := index.NewBuilder()
		for id, terms := range corpus {
			b.Add(id, terms...)
		}
		ix := index.New(0)
		ix.AddSegment(b.Build("e2e"))
		nd.SetIndex(ix)
	}
	// Encrypted records ride alongside so the PPS plane stays exercised
	// through the shared pipeline.
	loadAll(t, nodes, enc, []string{"aa", "bb"})

	fe := New(Config{PQ: 4})
	defer fe.Close()
	if err := fe.ApplyView(v); err != nil {
		t.Fatal(err)
	}

	brute := func(q proto.PlainQuery) []uint64 {
		var ids []uint64
		for id, terms := range corpus {
			have := make(map[string]bool, len(terms))
			for _, tm := range terms {
				have[tm] = true
			}
			n := 0
			for _, tm := range q.Terms {
				if have[tm] {
					n++
				}
			}
			min := q.MinMatch
			switch index.Mode(q.Mode) {
			case index.ModeAnd:
				min = len(q.Terms)
			case index.ModeOr:
				min = 1
			}
			if n >= min {
				ids = append(ids, id)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		if q.Limit > 0 && len(ids) > q.Limit {
			ids = ids[:q.Limit]
		}
		return ids
	}

	queries := []proto.PlainQuery{
		{Terms: []string{"alpha"}, Mode: uint8(index.ModeAnd)},
		{Terms: []string{"alpha", "gamma"}, Mode: uint8(index.ModeAnd)},
		{Terms: []string{"beta", "delta"}, Mode: uint8(index.ModeOr)},
		{Terms: []string{"beta", "gamma", "delta"}, Mode: uint8(index.ModeThreshold), MinMatch: 2},
		{Terms: []string{"alpha", "beta"}, Mode: uint8(index.ModeOr), Limit: 7},
		{Terms: []string{"missing"}, Mode: uint8(index.ModeAnd)},
	}
	for qi, pq := range queries {
		res, err := fe.ExecutePlain(context.Background(), pq)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		want := brute(pq)
		if len(res.IDs) != len(want) {
			t.Fatalf("query %d: got %d ids, want %d", qi, len(res.IDs), len(want))
		}
		for i := range want {
			if res.IDs[i] != want[i] {
				t.Fatalf("query %d: ids[%d] = %d, want %d", qi, i, res.IDs[i], want[i])
			}
		}
		if res.SubQueries != 4 {
			t.Fatalf("query %d: pq=4 should send 4 sub-queries, sent %d", qi, res.SubQueries)
		}
	}

	// The encrypted plane still answers through the same frontend.
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "aa"})
	res, err := fe.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 1 {
		t.Fatalf("encrypted query returned %d ids, want 1", len(res.IDs))
	}
}

// TestExecutePlainNoIndex pins the failure shape when a node has no
// index attached: the query fails rather than silently returning an
// empty (wrong) answer.
func TestExecutePlainNoIndex(t *testing.T) {
	enc := slimEncoder()
	v, _ := testView(t, enc, 2, 1)
	fe := New(Config{})
	defer fe.Close()
	if err := fe.ApplyView(v); err != nil {
		t.Fatal(err)
	}
	_, err := fe.ExecutePlain(context.Background(), proto.PlainQuery{Terms: []string{"x"}})
	if err == nil {
		t.Fatal("plain query against index-less nodes must fail, not return empty")
	}
}
