package frontend

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"roar/internal/proto"
)

func TestApplyViewFencesStaleTermAndEpoch(t *testing.T) {
	enc := slimEncoder()
	v, _ := testView(t, enc, 2, 1)
	v.Term, v.Epoch = 3, 10
	fe := New(Config{})
	defer fe.Close()
	if err := fe.ApplyView(v); err != nil {
		t.Fatal(err)
	}

	stale := v
	stale.Term, stale.Epoch = 2, 99 // deposed leader: any epoch loses to a newer term
	if err := fe.ApplyView(stale); !errors.Is(err, ErrStaleView) {
		t.Errorf("older term accepted: %v", err)
	}
	stale = v
	stale.Epoch = 9 // same leader, older publish
	if err := fe.ApplyView(stale); !errors.Is(err, ErrStaleView) {
		t.Errorf("older epoch accepted: %v", err)
	}
	if got := fe.View(); got.Term != 3 || got.Epoch != 10 {
		t.Errorf("installed view moved: term %d epoch %d", got.Term, got.Epoch)
	}

	// Equal is a refresh, newer term supersedes even at a lower epoch.
	if err := fe.ApplyView(v); err != nil {
		t.Errorf("re-applying the installed view: %v", err)
	}
	next := v
	next.Term, next.Epoch = 4, 1
	if err := fe.ApplyView(next); err != nil {
		t.Errorf("newer term rejected: %v", err)
	}
}

// scriptedMember fakes the coordinator: each Call pops the next error
// from the script (nil = success) and records what was sent.
type scriptedMember struct {
	errs   []error
	view   proto.View
	health proto.HealthResp
	calls  []string
}

func (m *scriptedMember) Call(_ context.Context, method string, in, out interface{}) error {
	m.calls = append(m.calls, method)
	var err error
	if len(m.errs) > 0 {
		err, m.errs = m.errs[0], m.errs[1:]
	}
	if err != nil {
		return err
	}
	switch method {
	case proto.MMemberView:
		*out.(*proto.View) = m.view
	case proto.MMemberHealth:
		*out.(*proto.HealthResp) = m.health
	}
	return nil
}

// seedShed plants one unit of shed evidence in the frontend's counters
// and returns a getter for the pending count.
func seedShed(fe *Frontend) func() int64 {
	fe.shed.Add(1)
	return func() int64 { return fe.shed.Load() }
}

func TestPushHealthRecreditsOnTransportError(t *testing.T) {
	enc := slimEncoder()
	v, _ := testView(t, enc, 2, 1)
	fe := New(Config{})
	defer fe.Close()
	if err := fe.ApplyView(v); err != nil {
		t.Fatal(err)
	}
	pending := seedShed(fe)
	m := &scriptedMember{errs: []error{errors.New("wire: connection refused")}}
	s := NewSyncer(fe, m, SyncConfig{})
	if err := s.PushHealthOnce(context.Background()); err == nil {
		t.Fatal("push should surface the transport error")
	}
	if pending() != 1 {
		t.Errorf("shed evidence lost on transport error: pending=%d", pending())
	}
}

func TestPushHealthRecreditsOnLegacyDowngrade(t *testing.T) {
	enc := slimEncoder()
	v, _ := testView(t, enc, 2, 1)
	fe := New(Config{})
	defer fe.Close()
	if err := fe.ApplyView(v); err != nil {
		t.Fatal(err)
	}
	pending := seedShed(fe)
	// The exact rejection a pre-member.health coordinator produces.
	m := &scriptedMember{errs: []error{fmt.Errorf("wire: %s: unknown method %q", proto.MMemberHealth, proto.MMemberHealth)}}
	s := NewSyncer(fe, m, SyncConfig{})
	if err := s.PushHealthOnce(context.Background()); err == nil {
		t.Fatal("downgrade push should still report the error")
	}
	// The report consumed by the failed push must be re-credited even
	// though the syncer is switching modes — this evidence would
	// otherwise vanish exactly once per downgrade.
	if pending() != 1 {
		t.Errorf("shed evidence lost on legacy downgrade: pending=%d", pending())
	}
	// Subsequent pushes use the legacy report format.
	if err := s.PushHealthOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := m.calls[len(m.calls)-1]; got != proto.MMemberReport {
		t.Errorf("after downgrade the syncer should send %s, sent %s", proto.MMemberReport, got)
	}
}

func TestPushHealthRecreditsOnExtensionDowngrade(t *testing.T) {
	enc := slimEncoder()
	v, _ := testView(t, enc, 2, 1)
	fe := New(Config{})
	defer fe.Close()
	if err := fe.ApplyView(v); err != nil {
		t.Fatal(err)
	}
	pending := seedShed(fe)
	m := &scriptedMember{errs: []error{errors.New("wire: member.health: proto: trailing bytes after HealthReport")}}
	s := NewSyncer(fe, m, SyncConfig{})
	if err := s.PushHealthOnce(context.Background()); err == nil {
		t.Fatal("downgrade push should still report the error")
	}
	if pending() != 1 {
		t.Errorf("shed evidence lost on extension downgrade: pending=%d", pending())
	}
	s.mu.Lock()
	stripExt := s.stripExt
	s.mu.Unlock()
	if !stripExt {
		t.Error("extension downgrade not latched")
	}
}

func TestPushHealthEpochAheadRepullsView(t *testing.T) {
	enc := slimEncoder()
	v, _ := testView(t, enc, 2, 1)
	v.Epoch = 1
	fe := New(Config{})
	defer fe.Close()
	if err := fe.ApplyView(v); err != nil {
		t.Fatal(err)
	}
	newer := v
	newer.Epoch = 5
	m := &scriptedMember{view: newer, health: proto.HealthResp{Epoch: 5}}
	s := NewSyncer(fe, m, SyncConfig{})
	if err := s.PushHealthOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := fe.View().Epoch; got != 5 {
		t.Errorf("epoch-ahead reply should trigger an immediate view pull; installed epoch %d", got)
	}
}
