package frontend

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"roar/internal/proto"
	"roar/internal/wire"
)

func TestApplyViewFencesStaleTermAndEpoch(t *testing.T) {
	enc := slimEncoder()
	v, _ := testView(t, enc, 2, 1)
	v.Term, v.Epoch = 3, 10
	fe := New(Config{})
	defer fe.Close()
	if err := fe.ApplyView(v); err != nil {
		t.Fatal(err)
	}

	stale := v
	stale.Term, stale.Epoch = 2, 99 // deposed leader: any epoch loses to a newer term
	if err := fe.ApplyView(stale); !errors.Is(err, ErrStaleView) {
		t.Errorf("older term accepted: %v", err)
	}
	stale = v
	stale.Epoch = 9 // same leader, older publish
	if err := fe.ApplyView(stale); !errors.Is(err, ErrStaleView) {
		t.Errorf("older epoch accepted: %v", err)
	}
	if got := fe.View(); got.Term != 3 || got.Epoch != 10 {
		t.Errorf("installed view moved: term %d epoch %d", got.Term, got.Epoch)
	}

	// Equal is a refresh, newer term supersedes even at a lower epoch.
	if err := fe.ApplyView(v); err != nil {
		t.Errorf("re-applying the installed view: %v", err)
	}
	next := v
	next.Term, next.Epoch = 4, 1
	if err := fe.ApplyView(next); err != nil {
		t.Errorf("newer term rejected: %v", err)
	}
}

// scriptedMember fakes the coordinator: each Call pops the next error
// from the script (nil = success) and records what was sent.
type scriptedMember struct {
	errs   []error
	view   proto.View
	health proto.HealthResp
	calls  []string
}

func (m *scriptedMember) Call(_ context.Context, method string, in, out interface{}) error {
	m.calls = append(m.calls, method)
	var err error
	if len(m.errs) > 0 {
		err, m.errs = m.errs[0], m.errs[1:]
	}
	if err != nil {
		return err
	}
	switch method {
	case proto.MMemberView:
		*out.(*proto.View) = m.view
	case proto.MMemberHealth:
		*out.(*proto.HealthResp) = m.health
	}
	return nil
}

// seedShed plants one unit of shed evidence in the frontend's counters
// and returns a getter for the pending count.
func seedShed(fe *Frontend) func() int64 {
	fe.shed.Add(1)
	return func() int64 { return fe.shed.Load() }
}

// syncTestBed builds a frontend with an installed view, seeded shed
// evidence, and a syncer over the scripted member.
func syncTestBed(t *testing.T, m *scriptedMember) (*Frontend, *Syncer, func() int64) {
	t.Helper()
	enc := slimEncoder()
	v, _ := testView(t, enc, 2, 1)
	fe := New(Config{})
	t.Cleanup(fe.Close)
	if err := fe.ApplyView(v); err != nil {
		t.Fatal(err)
	}
	m.health = proto.HealthResp{Epoch: v.Epoch} // no surprise view re-pull
	pending := seedShed(fe)
	s := NewSyncer(fe, m, SyncConfig{})
	return fe, s, pending
}

// modes reads the syncer's downgrade latches.
func (s *Syncer) modes() (legacy, stripExt bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.legacy, s.stripExt
}

func TestPushHealthRecreditsOnTransportError(t *testing.T) {
	m := &scriptedMember{errs: []error{errors.New("wire: connection refused")}}
	_, s, pending := syncTestBed(t, m)
	if err := s.PushHealthOnce(context.Background()); err == nil {
		t.Fatal("push should surface the transport error")
	}
	if pending() != 1 {
		t.Errorf("shed evidence lost on transport error: pending=%d", pending())
	}
}

// TestPushHealthTransportTextNeverLatches: transport errors whose text
// embeds the downgrade spellings (a proxy quoting a server, a
// connection-loss message) must NOT degrade the frontend — only an
// error the remote handler reported (wire.RemoteError) classifies.
func TestPushHealthTransportTextNeverLatches(t *testing.T) {
	m := &scriptedMember{errs: []error{
		fmt.Errorf("wire: connection lost: proxy said %q", "unknown method"),
		errors.New("gateway: upstream replied: proto: 7 trailing bytes after HealthReport"),
	}}
	_, s, _ := syncTestBed(t, m)
	for i := 0; i < 2; i++ {
		if err := s.PushHealthOnce(context.Background()); err == nil {
			t.Fatal("scripted error should surface")
		}
		if legacy, stripExt := s.modes(); legacy || stripExt {
			t.Fatalf("transport error text latched a downgrade: legacy=%v stripExt=%v", legacy, stripExt)
		}
	}
	// And the next push still uses the full-fidelity method.
	if err := s.PushHealthOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := m.calls[len(m.calls)-1]; got != proto.MMemberHealth {
		t.Errorf("push after transport noise should send %s, sent %s", proto.MMemberHealth, got)
	}
}

func TestPushHealthRecreditsOnLegacyDowngrade(t *testing.T) {
	// The typed rejection a pre-member.health coordinator produces
	// through a current wire server.
	m := &scriptedMember{errs: []error{
		&wire.RemoteError{Method: proto.MMemberHealth, Code: wire.CodeUnknownMethod,
			Msg: fmt.Sprintf("wire: unknown method %q", proto.MMemberHealth)},
	}}
	_, s, pending := syncTestBed(t, m)
	if err := s.PushHealthOnce(context.Background()); err == nil {
		t.Fatal("downgrade push should still report the error")
	}
	// The report consumed by the failed push must be re-credited even
	// though the syncer is switching modes — this evidence would
	// otherwise vanish exactly once per downgrade.
	if pending() != 1 {
		t.Errorf("shed evidence lost on legacy downgrade: pending=%d", pending())
	}
	// Subsequent pushes use the legacy report format.
	if err := s.PushHealthOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := m.calls[len(m.calls)-1]; got != proto.MMemberReport {
		t.Errorf("after downgrade the syncer should send %s, sent %s", proto.MMemberReport, got)
	}
}

// TestPushHealthLegacyStringStillClassifies pins the pre-code
// fallback: a coordinator built before the wire error codes rejects
// with the bare historic spelling, which must still classify — but
// only when it arrives as a remote (handler) error.
func TestPushHealthLegacyStringStillClassifies(t *testing.T) {
	m := &scriptedMember{errs: []error{
		&wire.RemoteError{Method: proto.MMemberHealth,
			Msg: fmt.Sprintf("wire: unknown method %q", proto.MMemberHealth)},
	}}
	_, s, _ := syncTestBed(t, m)
	if err := s.PushHealthOnce(context.Background()); err == nil {
		t.Fatal("downgrade push should still report the error")
	}
	if legacy, _ := s.modes(); !legacy {
		t.Error("pre-code unknown-method spelling did not latch legacy mode")
	}
}

func TestPushHealthRecreditsOnExtensionDowngrade(t *testing.T) {
	m := &scriptedMember{errs: []error{
		&wire.RemoteError{Method: proto.MMemberHealth, Code: wire.CodeTrailingBytes,
			Msg: "proto: 7 trailing bytes after HealthReport"},
	}}
	_, s, pending := syncTestBed(t, m)
	if err := s.PushHealthOnce(context.Background()); err == nil {
		t.Fatal("downgrade push should still report the error")
	}
	if pending() != 1 {
		t.Errorf("shed evidence lost on extension downgrade: pending=%d", pending())
	}
	if _, stripExt := s.modes(); !stripExt {
		t.Error("extension downgrade not latched")
	}
}

// TestPushHealthReprobeUnlatches: a latched downgrade heals once the
// coordinator is upgraded (or failover lands on a newer replica): every
// downgradeProbeEvery pushes one full-fidelity probe goes out, and its
// success clears the latch.
func TestPushHealthReprobeUnlatches(t *testing.T) {
	m := &scriptedMember{errs: []error{
		&wire.RemoteError{Method: proto.MMemberHealth, Code: wire.CodeUnknownMethod,
			Msg: fmt.Sprintf("wire: unknown method %q", proto.MMemberHealth)},
	}}
	_, s, _ := syncTestBed(t, m)
	if err := s.PushHealthOnce(context.Background()); err == nil {
		t.Fatal("downgrade push should still report the error")
	}
	if legacy, _ := s.modes(); !legacy {
		t.Fatal("legacy mode not latched")
	}
	// The scripted errors are exhausted, so every call from here on
	// succeeds — the "coordinator upgraded" moment. The next
	// downgradeProbeEvery-1 pushes stay legacy; the probe push sends
	// member.health and un-latches.
	for i := 0; i < downgradeProbeEvery; i++ {
		if err := s.PushHealthOnce(context.Background()); err != nil {
			t.Fatal(err)
		}
		legacy, _ := s.modes()
		if i < downgradeProbeEvery-1 {
			if got := m.calls[len(m.calls)-1]; got != proto.MMemberReport {
				t.Fatalf("push %d should stay legacy (%s), sent %s", i, proto.MMemberReport, got)
			}
			if !legacy {
				t.Fatalf("push %d un-latched without a probe", i)
			}
		} else if legacy {
			t.Fatal("successful probe did not clear the legacy latch")
		}
	}
	if err := s.PushHealthOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := m.calls[len(m.calls)-1]; got != proto.MMemberHealth {
		t.Errorf("after un-latch the syncer should send %s, sent %s", proto.MMemberHealth, got)
	}
}

func TestPushHealthEpochAheadRepullsView(t *testing.T) {
	enc := slimEncoder()
	v, _ := testView(t, enc, 2, 1)
	v.Epoch = 1
	fe := New(Config{})
	defer fe.Close()
	if err := fe.ApplyView(v); err != nil {
		t.Fatal(err)
	}
	newer := v
	newer.Epoch = 5
	m := &scriptedMember{view: newer, health: proto.HealthResp{Epoch: 5}}
	s := NewSyncer(fe, m, SyncConfig{})
	if err := s.PushHealthOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := fe.View().Epoch; got != 5 {
		t.Errorf("epoch-ahead reply should trigger an immediate view pull; installed epoch %d", got)
	}
}
