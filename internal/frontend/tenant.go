// Per-tenant admission: token-bucket quotas over the shared MaxInFlight
// pool, plus the per-tenant counters the autoscale telemetry extension
// carries (docs/ECONOMICS.md).
//
// The quota is deliberately work-conserving: for the interactive
// classes it is enforced only while the admission pool is contended
// (every slot taken), so an over-quota tenant on an idle frontend runs
// at full speed — the bucket's job is to decide who yields when slots
// are scarce, not to cap throughput for its own sake. PriorityBulk is
// the exception: bulk work metered always, so a batch scan cannot
// monopolise the pool in the instant before contention registers.
// PriorityHigh bypasses the quota entirely (it is "never shed" by
// contract).
package frontend

import (
	"errors"
	"sort"
	"sync"
	"time"

	"roar/internal/proto"
)

// ErrTenantShed is returned to queries rejected by their tenant's
// admission quota while the frontend's in-flight pool is contended.
var ErrTenantShed = errors.New("frontend: tenant over admission quota, query rejected")

// anonTenant accounts requests that carry no tenant id.
const anonTenant = ""

// maxTenantStates bounds the table; the least-recently-active tenant
// is evicted past it (its bucket restarts full if it returns — a brief
// over-admission for a tenant idle long enough to be evicted).
const maxTenantStates = 1024

// maxTenantsPerReport caps the per-tenant telemetry shipped in one
// health report; the remainder is folded into tenantOverflow so the
// coordinator's totals still conserve.
const (
	maxTenantsPerReport = 64
	tenantOverflow      = "~other"
)

// tenantState is one tenant's bucket and delta counters, guarded by
// the table mutex (accesses are short and already on the admission
// path's lock-order leaf).
type tenantState struct {
	tokens float64
	last   time.Time // last refill
	active time.Time // last touch, for idle eviction

	admitted    int
	shed        int
	cacheHits   int
	cacheMisses int
}

// tenantTable is the frontend's tenant ledger. rate <= 0 disables
// quota enforcement but keeps the counters — telemetry without caps.
type tenantTable struct {
	mu    sync.Mutex
	m     map[string]*tenantState
	rate  float64 // tokens per second
	burst float64 // bucket capacity and initial balance
	nowFn func() time.Time
}

func newTenantTable(rate, burst float64, nowFn func() time.Time) *tenantTable {
	if burst <= 0 {
		burst = rate
		if burst < 8 {
			burst = 8
		}
	}
	return &tenantTable{m: make(map[string]*tenantState), rate: rate, burst: burst, nowFn: nowFn}
}

// stateLocked finds or creates a tenant's state, evicting the
// least-recently-active tenant when the table is full.
func (t *tenantTable) stateLocked(tenant string, now time.Time) *tenantState {
	st, ok := t.m[tenant]
	if ok {
		st.active = now
		return st
	}
	if len(t.m) >= maxTenantStates {
		var oldest string
		var oldestAt time.Time
		first := true
		for name, s := range t.m {
			if first || s.active.Before(oldestAt) {
				oldest, oldestAt, first = name, s.active, false
			}
		}
		delete(t.m, oldest)
	}
	st = &tenantState{tokens: t.burst, last: now, active: now}
	t.m[tenant] = st
	return st
}

// take attempts to spend one admission token. With rate <= 0 quotas are
// disabled and every take succeeds.
func (t *tenantTable) take(tenant string) bool {
	if t == nil || t.rate <= 0 {
		return true
	}
	now := t.nowFn()
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.stateLocked(tenant, now)
	if dt := now.Sub(st.last).Seconds(); dt > 0 {
		st.tokens += dt * t.rate
		if st.tokens > t.burst {
			st.tokens = t.burst
		}
		st.last = now
	}
	if st.tokens < 1 {
		return false
	}
	st.tokens--
	return true
}

// Counter notes. Each takes the table lock briefly; nil tables (no
// tenant accounting configured) make them no-ops.

func (t *tenantTable) noteAdmitted(tenant string) {
	if t == nil {
		return
	}
	now := t.nowFn()
	t.mu.Lock()
	t.stateLocked(tenant, now).admitted++
	t.mu.Unlock()
}

func (t *tenantTable) noteShed(tenant string) {
	if t == nil {
		return
	}
	now := t.nowFn()
	t.mu.Lock()
	t.stateLocked(tenant, now).shed++
	t.mu.Unlock()
}

func (t *tenantTable) noteCacheHit(tenant string) {
	if t == nil {
		return
	}
	now := t.nowFn()
	t.mu.Lock()
	t.stateLocked(tenant, now).cacheHit()
	t.mu.Unlock()
}

func (st *tenantState) cacheHit() { st.cacheHits++ }

func (t *tenantTable) noteCacheMiss(tenant string) {
	if t == nil {
		return
	}
	now := t.nowFn()
	t.mu.Lock()
	t.stateLocked(tenant, now).cacheMisses++
	t.mu.Unlock()
}

// snapshot drains the delta counters into a report block, largest
// tenants first, folding the tail past maxTenantsPerReport into
// tenantOverflow so totals conserve. Tenants with nothing to report
// are skipped (their buckets stay).
func (t *tenantTable) snapshot() []proto.TenantLoad {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	var out []proto.TenantLoad
	for name, st := range t.m {
		if st.admitted == 0 && st.shed == 0 && st.cacheHits == 0 && st.cacheMisses == 0 {
			continue
		}
		out = append(out, proto.TenantLoad{
			Tenant:      name,
			Admitted:    st.admitted,
			Shed:        st.shed,
			CacheHits:   st.cacheHits,
			CacheMisses: st.cacheMisses,
		})
		st.admitted, st.shed, st.cacheHits, st.cacheMisses = 0, 0, 0, 0
	}
	t.mu.Unlock()
	sort.Slice(out, func(a, b int) bool {
		la := out[a].Admitted + out[a].Shed + out[a].CacheHits + out[a].CacheMisses
		lb := out[b].Admitted + out[b].Shed + out[b].CacheHits + out[b].CacheMisses
		if la != lb {
			return la > lb
		}
		return out[a].Tenant < out[b].Tenant
	})
	if len(out) > maxTenantsPerReport {
		var rest proto.TenantLoad
		rest.Tenant = tenantOverflow
		for _, tl := range out[maxTenantsPerReport:] {
			rest.Admitted += tl.Admitted
			rest.Shed += tl.Shed
			rest.CacheHits += tl.CacheHits
			rest.CacheMisses += tl.CacheMisses
		}
		out = append(out[:maxTenantsPerReport], rest)
	}
	return out
}

// restore folds an undelivered report's tenant deltas back (the
// counterpart of Frontend.RestoreHealthReport).
func (t *tenantTable) restore(tls []proto.TenantLoad) {
	if t == nil || len(tls) == 0 {
		return
	}
	now := t.nowFn()
	t.mu.Lock()
	for _, tl := range tls {
		st := t.stateLocked(tl.Tenant, now)
		st.admitted += tl.Admitted
		st.shed += tl.Shed
		st.cacheHits += tl.CacheHits
		st.cacheMisses += tl.CacheMisses
	}
	t.mu.Unlock()
}

// tenantAdmit applies the quota for one query given its priority class
// and the admission pool's contention state. Returns false when the
// query must be rejected with ErrTenantShed.
func (f *Frontend) tenantAdmit(tenant string, prio Priority, contended bool) bool {
	switch {
	case prio >= PriorityHigh:
		return true // never shed, never metered
	case prio <= PriorityBulk:
		return f.tenants.take(tenant) // metered even on an idle pool
	default: // Normal and Low: work-conserving
		if !contended {
			return true
		}
		return f.tenants.take(tenant)
	}
}
