package frontend

import (
	"context"
	"testing"
	"time"

	"roar/internal/node"
	"roar/internal/pps"
	"roar/internal/proto"
	"roar/internal/ring"
)

func slimEncoder() *pps.Encoder {
	return pps.NewEncoder(pps.TestKey(1), pps.EncoderConfig{
		MaxKeywords: 2, MaxPathDir: 1,
		SizePoints: pps.LinearPoints(0, 100, 2), DateDays: 365, DateSpan: 2,
		RankBuckets: []int{1},
	})
}

// testView starts n real nodes with equal ranges and returns a view.
func testView(t *testing.T, enc *pps.Encoder, n, p int) (proto.View, []*node.Node) {
	t.Helper()
	v := proto.View{Epoch: 1, P: p}
	var nodes []*node.Node
	for i := 0; i < n; i++ {
		nd, err := node.New(node.Config{Params: enc.ServerParams()})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := nd.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		nodes = append(nodes, nd)
		v.Nodes = append(v.Nodes, proto.NodeInfo{
			ID: i, Ring: 0, Start: float64(i) / float64(n), Addr: srv.Addr(),
		})
	}
	return v, nodes
}

// loadAll puts every record on every node (p=1-style over-replication,
// simplest correct layout for unit tests).
func loadAll(t *testing.T, nodes []*node.Node, enc *pps.Encoder, words []string) {
	t.Helper()
	for i, w := range words {
		rec, err := enc.EncryptDocument(pps.Document{
			ID: uint64(i+1) * (1 << 40), Path: "/x", Size: 5,
			Modified: time.Unix(1.2e9, 0), Keywords: []string{w},
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, nd := range nodes {
			nd.Put(proto.PutReq{Records: []pps.Encoded{rec}})
		}
	}
}

func TestApplyViewAndExecute(t *testing.T) {
	enc := slimEncoder()
	v, nodes := testView(t, enc, 4, 1)
	loadAll(t, nodes, enc, []string{"aa", "bb", "aa"})
	fe := New(Config{})
	defer fe.Close()
	if err := fe.ApplyView(v); err != nil {
		t.Fatal(err)
	}
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "aa"})
	res, err := fe.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 2 {
		t.Fatalf("got %d matches, want 2", len(res.IDs))
	}
	if res.SubQueries != 1 {
		t.Errorf("p=1 should send one sub-query, sent %d", res.SubQueries)
	}
}

func TestApplyViewRejectsEmpty(t *testing.T) {
	fe := New(Config{})
	defer fe.Close()
	if err := fe.ApplyView(proto.View{P: 1}); err == nil {
		t.Error("empty view must be rejected")
	}
}

func TestViewUpdatePreservesSpeeds(t *testing.T) {
	enc := slimEncoder()
	v, nodes := testView(t, enc, 4, 2)
	loadAll(t, nodes, enc, []string{"aa"})
	fe := New(Config{})
	defer fe.Close()
	if err := fe.ApplyView(v); err != nil {
		t.Fatal(err)
	}
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "aa"})
	if _, err := fe.Execute(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	before := fe.SpeedEstimates()
	if len(before) == 0 {
		t.Fatal("expected learned speeds")
	}
	// Same nodes, new epoch: estimates must survive.
	v2 := v
	v2.Epoch = 2
	if err := fe.ApplyView(v2); err != nil {
		t.Fatal(err)
	}
	after := fe.SpeedEstimates()
	for id, sp := range before {
		if after[id] != sp {
			t.Errorf("speed for node %d changed across identical views: %v -> %v", id, sp, after[id])
		}
	}
	// Dropping a node forgets it.
	v3 := v2
	v3.Epoch = 3
	v3.Nodes = v3.Nodes[:3]
	if err := fe.ApplyView(v3); err != nil {
		t.Fatal(err)
	}
	if _, ok := fe.SpeedEstimates()[3]; ok {
		t.Error("removed node should be forgotten")
	}
}

func TestFailureDetectionAndFallback(t *testing.T) {
	enc := slimEncoder()
	v, nodes := testView(t, enc, 6, 2)
	loadAll(t, nodes, enc, []string{"aa", "bb"})
	fe := New(Config{SubQueryTimeout: 300 * time.Millisecond})
	defer fe.Close()
	if err := fe.ApplyView(v); err != nil {
		t.Fatal(err)
	}
	// Point node 2's address at a dead port by rewriting the view.
	deadView := v
	deadView.Epoch = 2
	deadView.Nodes = append([]proto.NodeInfo(nil), v.Nodes...)
	deadView.Nodes[2].Addr = "127.0.0.1:1" // nothing listens here
	if err := fe.ApplyView(deadView); err != nil {
		t.Fatal(err)
	}
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "aa"})
	// Run enough queries that some plan hits node 2.
	sawFailure := false
	for i := 0; i < 10; i++ {
		res, err := fe.Execute(context.Background(), q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if len(res.IDs) != 1 {
			t.Fatalf("query %d returned %d matches, want 1 (fallback must preserve harvest)", i, len(res.IDs))
		}
		if res.Failures > 0 {
			sawFailure = true
		}
	}
	if !sawFailure {
		t.Skip("no plan touched the dead node; scheduling avoided it")
	}
	if len(fe.FailedNodes()) == 0 {
		t.Error("failure should be recorded")
	}
}

func TestMarkFailedAvoidsNode(t *testing.T) {
	enc := slimEncoder()
	v, nodes := testView(t, enc, 6, 3)
	loadAll(t, nodes, enc, []string{"aa"})
	// Probing disabled: node 1 is alive, so the background prober would
	// (correctly) clear the mark; this test pins the avoidance behaviour
	// while the mark holds.
	fe := New(Config{ProbeInterval: -1})
	defer fe.Close()
	if err := fe.ApplyView(v); err != nil {
		t.Fatal(err)
	}
	fe.MarkFailed(ring.NodeID(1))
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "aa"})
	for i := 0; i < 5; i++ {
		res, err := fe.Execute(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.IDs) != 1 {
			t.Fatalf("marked-failed execution lost results")
		}
	}
	if got := fe.FailedNodes(); len(got) != 1 || got[0] != 1 {
		t.Errorf("FailedNodes = %v", got)
	}
}

func TestBreakdownAccumulates(t *testing.T) {
	enc := slimEncoder()
	v, nodes := testView(t, enc, 3, 1)
	loadAll(t, nodes, enc, []string{"aa"})
	fe := New(Config{})
	defer fe.Close()
	if err := fe.ApplyView(v); err != nil {
		t.Fatal(err)
	}
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "aa"})
	for i := 0; i < 4; i++ {
		if _, err := fe.Execute(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	bd := fe.DelayBreakdown()
	if bd.Total.N != 4 {
		t.Errorf("breakdown N = %d, want 4", bd.Total.N)
	}
	if bd.Dispatch.Mean <= 0 || bd.Total.Mean < bd.Dispatch.Mean {
		t.Errorf("phases inconsistent: %+v", bd)
	}
}

// TestAggregatorDedup pins the streaming merge invariant directly:
// overlapping sub-responses (the failure re-dispatch case, §4.4) are
// deduplicated on arrival, preserving scanned counts.
func TestAggregatorDedup(t *testing.T) {
	agg := &aggregator{seen: make(map[uint64]struct{})}
	agg.add(proto.QueryResp{IDs: []uint64{5, 1, 3}, Scanned: 3})
	agg.add(proto.QueryResp{IDs: []uint64{1, 5, 5, 7}, Scanned: 4})
	want := []uint64{5, 1, 3, 7} // arrival order, duplicates dropped
	if len(agg.ids) != len(want) {
		t.Fatalf("ids = %v, want %v", agg.ids, want)
	}
	for i := range want {
		if agg.ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", agg.ids, want)
		}
	}
	if agg.scanned != 7 {
		t.Errorf("scanned = %d, want 7", agg.scanned)
	}
}

// TestMergeDedup checks the merged output through Execute at pq > 1
// over fully replicated nodes: results must come back sorted and
// unique (the sub-query arc bounds provide happy-path duplicate
// avoidance; overlap handling is covered by TestAggregatorDedup and
// the cluster failure e2e test).
func TestMergeDedup(t *testing.T) {
	enc := slimEncoder()
	v, nodes := testView(t, enc, 4, 1)
	loadAll(t, nodes, enc, []string{"aa", "aa", "bb"})
	fe := New(Config{PQ: 4})
	defer fe.Close()
	if err := fe.ApplyView(v); err != nil {
		t.Fatal(err)
	}
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "aa"})
	res, err := fe.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.SubQueries != 4 {
		t.Fatalf("pq=4 should send 4 sub-queries, sent %d", res.SubQueries)
	}
	if len(res.IDs) != 2 {
		t.Fatalf("merge returned %d ids, want 2 deduplicated", len(res.IDs))
	}
	for i := 1; i < len(res.IDs); i++ {
		if res.IDs[i] <= res.IDs[i-1] {
			t.Fatalf("ids not sorted unique: %v", res.IDs)
		}
	}
}

// TestDeprecatedWrappersMatchQuery pins the compatibility contract of
// the Execute* quartet: each wrapper is a pure delegate to Query, so
// answers (and their stats) are identical for identical inputs.
func TestDeprecatedWrappersMatchQuery(t *testing.T) {
	enc := slimEncoder()
	v, nodes := testView(t, enc, 4, 2)
	loadAll(t, nodes, enc, []string{"aa", "bb", "aa"})
	fe := New(Config{})
	defer fe.Close()
	if err := fe.ApplyView(v); err != nil {
		t.Fatal(err)
	}
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "aa"})

	want, err := fe.Query(context.Background(), QuerySpec{Enc: q})
	if err != nil {
		t.Fatal(err)
	}
	same := func(name string, got Result, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got.IDs) != len(want.IDs) || got.Source != want.Source {
			t.Errorf("%s: %d ids via %q, Query gave %d via %q",
				name, len(got.IDs), got.Source, len(want.IDs), want.Source)
		}
		for i := range got.IDs {
			if got.IDs[i] != want.IDs[i] {
				t.Fatalf("%s: id[%d] = %#x, want %#x", name, i, got.IDs[i], want.IDs[i])
			}
		}
	}
	r, err := fe.Execute(context.Background(), q)
	same("Execute", r, err)
	r, err = fe.ExecuteOpts(context.Background(), q, ExecOptions{Priority: PriorityHigh})
	same("ExecuteOpts", r, err)
	r, err = fe.ExecuteSpec(context.Background(), QuerySpec{Enc: q}, ExecOptions{})
	same("ExecuteSpec", r, err)
	// ExecuteSpec's option-merge rule: an explicit spec priority wins,
	// the legacy opts priority fills the zero value.
	r, err = fe.ExecuteSpec(context.Background(), QuerySpec{Enc: q, Priority: PriorityHigh},
		ExecOptions{Priority: PriorityLow})
	same("ExecuteSpec(priority merge)", r, err)
}
