// Coordinator synchronisation: the frontend's half of the §4.9 control
// loop, factored out of the command binary so it can run against a
// single coordinator (wire.Client) or a replicated control plane
// (coordclient.Client) unchanged — MemberCaller is the only coupling.
//
// The Syncer owns two cadences: view pulls (install the cluster map,
// fenced by ApplyView on (Term, Epoch)) and health pushes (ship the
// destructively-snapshotted observation deltas). A health push that
// fails for ANY reason re-credits the report — including the
// mixed-version downgrade paths, where the evidence would otherwise be
// silently lost exactly once per downgrade.
//
// Downgrades latch on evidence, not prose: only an error the remote
// handler reported (wire.RemoteError) classifies, by its typed code
// when the server attached one, so a transport or proxy error that
// happens to embed similar text can never degrade the frontend. And a
// latch is not forever — every downgradeProbeEvery pushes the Syncer
// retries the full-fidelity path once, so an upgraded coordinator (or
// failover onto a newer replica) restores quarantine and telemetry
// evidence without a frontend restart.
package frontend

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"roar/internal/pps"
	"roar/internal/proto"
	"roar/internal/wire"
)

// MemberCaller is the coordinator transport: satisfied by wire.Client
// (one coordinator) and coordclient.Client (replicated, failover).
type MemberCaller interface {
	Call(ctx context.Context, method string, in, out interface{}) error
}

// SyncConfig tunes a Syncer. Zero values take the documented defaults.
type SyncConfig struct {
	// Poll is the view refresh cadence. Default 1s.
	Poll time.Duration
	// HealthInterval is the health report push cadence. Default 1s.
	HealthInterval time.Duration
	// After injects the loop timer (tests). Nil means real time.
	After func(time.Duration) <-chan time.Time
	// Logf, when set, receives one line per downgrade or sync failure.
	Logf func(format string, args ...any)
}

func (sc SyncConfig) withDefaults() SyncConfig {
	if sc.Poll <= 0 {
		sc.Poll = time.Second
	}
	if sc.HealthInterval <= 0 {
		sc.HealthInterval = time.Second
	}
	if sc.After == nil {
		sc.After = time.After //lint:allow wallclock — clock-injection default
	}
	return sc
}

// downgradeProbeEvery is the re-probe cadence: after this many pushes
// in a downgraded mode, one push retries the full-fidelity encoding.
// Success un-latches the downgrade; the specific rejection re-latches
// it for another window. At the default 1s health interval a latched
// frontend rediscovers an upgraded coordinator within ~16s while
// paying one predictable extra rejection per window against a
// genuinely old one (whose evidence is re-credited, not lost).
const downgradeProbeEvery = 16

// Syncer keeps one frontend synchronised with the control plane.
type Syncer struct {
	fe  *Frontend
	mc  MemberCaller
	cfg SyncConfig

	mu sync.Mutex
	// Mixed-version downgrades, each latched only by its specific
	// rejection: legacy when the coordinator predates member.health
	// entirely, stripTenants when it has the autoscale telemetry block
	// but predates the per-tenant block trailing it, stripExt when it
	// predates both extension blocks. A trailing-bytes rejection
	// latches the shallowest strip that removes the trailer actually
	// sent (the ladder: full → no tenants → no extensions → legacy
	// method). sinceProbe counts downgraded pushes toward the next
	// full-fidelity re-probe.
	legacy       bool
	stripTenants bool
	stripExt     bool
	sinceProbe   int

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// NewSyncer binds a frontend to its coordinator transport.
func NewSyncer(fe *Frontend, mc MemberCaller, cfg SyncConfig) *Syncer {
	return &Syncer{fe: fe, mc: mc, cfg: cfg.withDefaults(), stop: make(chan struct{})}
}

func (s *Syncer) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// PullViewOnce fetches the coordinator's current view and installs it.
// An empty view (membership has no nodes yet) and a stale view
// (ErrStaleView — a deposed leader answered) both error without
// changing the installed view.
func (s *Syncer) PullViewOnce(ctx context.Context) error {
	var v proto.View
	if err := s.mc.Call(ctx, proto.MMemberView, nil, &v); err != nil {
		return err
	}
	if len(v.Nodes) == 0 {
		return fmt.Errorf("frontend: membership has no nodes yet")
	}
	return s.fe.ApplyView(v)
}

// pullIfStale refreshes only when the coordinator's epoch moved, so the
// poll loop does not rebuild placements for identical views.
func (s *Syncer) pullIfStale(ctx context.Context) {
	var v proto.View
	if err := s.mc.Call(ctx, proto.MMemberView, nil, &v); err != nil {
		return
	}
	installed := s.fe.View()
	if (v.Epoch != installed.Epoch || v.Term != installed.Term) && len(v.Nodes) > 0 {
		if err := s.fe.ApplyView(v); err != nil {
			s.logf("frontend: view refresh rejected: %v", err)
		}
	}
}

// WaitFirstView retries PullViewOnce on a one-second cadence until a
// usable view installs, attempts runs out, or ctx ends.
func (s *Syncer) WaitFirstView(ctx context.Context, attempts int) error {
	var err error
	for i := 0; i < attempts; i++ {
		if err = s.PullViewOnce(ctx); err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-s.stop:
			return fmt.Errorf("frontend: syncer stopped: %w", err)
		case <-s.cfg.After(time.Second):
		}
	}
	return fmt.Errorf("frontend: no usable view after %d attempts: %w", attempts, err)
}

// downgradeSignal classifies a member.health failure into the
// mixed-version downgrade it proves, if any. Only an error the remote
// HANDLER reported counts — a transport error carrying similar text
// (a proxy quoting a server, a connection-loss message) never
// classifies. Typed codes are authoritative; the bare-string fallbacks
// accept the exact spellings of coordinators that predate the codes.
func downgradeSignal(err error) (legacy, noExt bool) {
	var re *wire.RemoteError
	if !errors.As(err, &re) {
		return false, false
	}
	switch re.Code {
	case wire.CodeUnknownMethod:
		return true, false
	case wire.CodeTrailingBytes:
		return false, true
	case "": // pre-code coordinator: fall through to the exact spellings
	default:
		return false, false
	}
	if strings.HasPrefix(re.Msg, "wire: unknown method") {
		return true, false
	}
	if strings.Contains(re.Msg, "trailing bytes after HealthReport") {
		return false, true
	}
	return false, false
}

// Ingest forwards a client write batch to the coordinator's durable
// ingest WAL (member.ingest) — the frontend's async put path. The reply
// acknowledges durability; delivery to the owning nodes is asynchronous
// (poll IngestResp.Drained against Seq when delivery matters). The
// coordclient transport retries NotLeader redirects, so a failover
// mid-append surfaces here only as a retriable error — record-ID dedup
// makes the producer-side retry safe.
func (s *Syncer) Ingest(ctx context.Context, recs []pps.Encoded) (proto.IngestResp, error) {
	var resp proto.IngestResp
	if err := s.mc.Call(ctx, proto.MMemberIngest, proto.IngestReq{Records: recs}, &resp); err != nil {
		return proto.IngestResp{}, err
	}
	// A write acknowledged THROUGH this frontend invalidates its result
	// cache immediately — the tightest read-your-writes signal there
	// is, ahead of the next view poll carrying the same watermarks.
	s.fe.ObserveIngest(resp.Seq, resp.Drained)
	return resp, nil
}

// PushHealthOnce ships one health report. When the coordinator's reply
// names an epoch other than the installed view's (a quarantine or
// recovery just published — or a new leader took over), the view is
// re-pulled immediately rather than waiting out the poll timer.
//
// Every failure path re-credits the snapshotted report: the counters
// are deltas, and dropping them exactly when the control plane is
// flaky (transport error, failover in progress, version downgrade)
// would silence failure evidence when it matters most.
func (s *Syncer) PushHealthOnce(ctx context.Context) error {
	s.mu.Lock()
	legacy, stripTen, stripExt := s.legacy, s.stripTenants, s.stripExt
	probe := false
	if legacy || stripTen || stripExt {
		s.sinceProbe++
		if s.sinceProbe >= downgradeProbeEvery {
			s.sinceProbe = 0
			probe = true // retry full fidelity this round
		}
	}
	s.mu.Unlock()
	if legacy && !probe {
		report := proto.ReportReq{Speeds: s.fe.SpeedEstimates(), Failed: s.fe.FailedNodes()}
		return s.mc.Call(ctx, proto.MMemberReport, report, nil)
	}
	rep := s.fe.HealthReport()
	send := rep
	sentStripTen, sentStripExt := false, false
	if !probe {
		switch {
		case stripExt:
			send, sentStripExt = rep.StripExt(), true
		case stripTen:
			send, sentStripTen = rep.StripTenants(), true
		}
	}
	var hr proto.HealthResp
	if err := s.mc.Call(ctx, proto.MMemberHealth, send, &hr); err != nil {
		// Whatever happens next, the evidence goes back first: even a
		// downgrade consumes this report without delivering it.
		s.fe.RestoreHealthReport(rep)
		if toLegacy, toStrip := downgradeSignal(err); toLegacy || toStrip {
			// A trailing-bytes rejection names the trailer of the form
			// actually sent: if this push carried the tenant block,
			// stripping just it may suffice; if the tenant block was
			// already absent (stripped, or nothing to report), the
			// rejected trailer was the autoscale block itself.
			toStripTen := toStrip && !sentStripTen && !sentStripExt && send.HasTenantExt()
			toStripExt := toStrip && !toStripTen
			s.mu.Lock()
			changed := s.legacy != toLegacy || s.stripTenants != toStripTen || s.stripExt != toStripExt
			s.legacy, s.stripTenants, s.stripExt = toLegacy, toStripTen, toStripExt
			s.sinceProbe = 0
			s.mu.Unlock()
			switch {
			case changed && toLegacy:
				s.logf("frontend: coordinator predates member.health; downgrading to legacy reports")
			case changed && toStripTen:
				s.logf("frontend: coordinator predates tenant telemetry; stripping tenant block")
			case changed:
				s.logf("frontend: coordinator predates telemetry extension; stripping reports")
			}
		}
		return err
	}
	if probe {
		// The full-fidelity probe landed: the coordinator was upgraded,
		// or failover reached a newer replica. Un-latch.
		s.mu.Lock()
		s.legacy, s.stripTenants, s.stripExt = false, false, false
		s.mu.Unlock()
		s.logf("frontend: coordinator accepts full health reports again; downgrade cleared")
	}
	if hr.Epoch != s.fe.View().Epoch {
		s.pullIfStale(ctx)
	}
	return nil
}

// Start launches the view-poll and health-push loops; ctx scopes their
// RPCs and cancelling it (or calling Stop) halts both.
func (s *Syncer) Start(ctx context.Context) {
	s.wg.Add(2)
	go func() {
		defer s.wg.Done()
		for {
			select {
			case <-ctx.Done():
				return
			case <-s.stop:
				return
			case <-s.cfg.After(s.cfg.Poll):
				s.pullIfStale(ctx)
			}
		}
	}()
	go func() {
		defer s.wg.Done()
		for {
			select {
			case <-ctx.Done():
				return
			case <-s.stop:
				return
			case <-s.cfg.After(s.cfg.HealthInterval):
				_ = s.PushHealthOnce(ctx)
			}
		}
	}()
}

// Stop halts the loops (idempotent) and waits for them to exit.
func (s *Syncer) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
}
