package frontend

import (
	"context"
	"sort"
	"sync"
	"time"

	"roar/internal/core"
	"roar/internal/proto"
	"roar/internal/ring"
)

// Hedged dispatch (Tail-Tolerant Distributed Search; Dean's tail-at-
// scale hedging): a sub-query still unanswered after the hedge delay is
// speculatively re-dispatched onto replica nodes — without waiting for
// SubQueryTimeout and without declaring the primary failed. Whichever
// side answers first wins; the loser's RPC is cancelled all the way to
// the remote matcher through the wire layer's cancel frame. Replica
// overlap can only produce duplicate ids, which the streaming
// aggregator already discards on arrival.

// minHedgeDelay floors the adaptive delay so microsecond-scale latency
// samples cannot turn every sub-query into a hedge storm.
const minHedgeDelay = time.Millisecond

// latTracker keeps a ring of recent sub-query latencies and answers
// quantile queries for the adaptive hedge delay. The quantile is
// recomputed at most every recomputeEvery observations.
type latTracker struct {
	mu      sync.Mutex
	buf     [512]float64 // seconds
	n, idx  int
	adds    int
	cached  float64 // cached quantile value, seconds
	cachedQ float64 // quantile the cache was computed for
	stale   bool
}

const (
	latWarmup      = 32 // observations before the quantile is trusted
	recomputeEvery = 64
)

// count reports the tracked observations (per-node sample-floor check).
func (l *latTracker) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

func (l *latTracker) observe(d time.Duration) {
	l.mu.Lock()
	l.buf[l.idx] = d.Seconds()
	l.idx = (l.idx + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	l.adds++
	if l.adds%recomputeEvery == 0 {
		l.stale = true
	}
	l.mu.Unlock()
}

// quantile returns the q-th (q in (0,1)) latency quantile, or 0 while
// the tracker is still warming up.
func (l *latTracker) quantile(q float64) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.n < latWarmup {
		return 0
	}
	if l.stale || q != l.cachedQ || l.cached == 0 {
		xs := make([]float64, l.n)
		copy(xs, l.buf[:l.n])
		sort.Float64s(xs)
		pos := q * float64(l.n-1)
		i := int(pos)
		frac := pos - float64(i)
		v := xs[i]
		if i+1 < l.n {
			v = xs[i]*(1-frac) + xs[i+1]*frac
		}
		l.cached, l.cachedQ, l.stale = v, q, false
	}
	return time.Duration(l.cached * float64(time.Second))
}

// nodeTracker returns (creating on demand) the latency tracker for one
// node.
func (f *Frontend) nodeTracker(id ring.NodeID) *latTracker {
	f.mu.RLock()
	l := f.nodeLat[id]
	f.mu.RUnlock()
	if l != nil {
		return l
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if l = f.nodeLat[id]; l == nil {
		l = &latTracker{}
		f.nodeLat[id] = l
	}
	return l
}

// observeLatency feeds one sub-query latency sample into the global and
// the per-node distribution.
func (f *Frontend) observeLatency(id ring.NodeID, d time.Duration) {
	f.lat.observe(d)
	f.nodeTracker(id).observe(d)
}

// hedgeDelay returns the current delay before a slow sub-query on node
// id is hedged, or 0 when hedging is off. With a quantile configured
// the delay adapts to the node's own latency distribution once it has
// latWarmup samples, falling back to the global distribution below that
// floor (fixed HedgeDelay serves as floor and cold-start value in both
// cases); otherwise the fixed delay is used as-is. Judging a node
// against its own history matters: a node serving a large arc is
// legitimately slower than the fleet, and the global quantile would
// hedge every one of its sub-queries.
func (f *Frontend) hedgeDelay(id ring.NodeID) time.Duration {
	f.mu.RLock()
	hd, hq := f.tune.hedgeDelay, f.tune.hedgeQuantile
	nl := f.nodeLat[id]
	f.mu.RUnlock()
	if hq <= 0 || hq >= 1 {
		return hd
	}
	lat := &f.lat
	if nl != nil && nl.count() >= latWarmup {
		lat = nl
	}
	if q := lat.quantile(hq); q > hd {
		hd = q
	}
	if hd > 0 && hd < minHedgeDelay {
		hd = minHedgeDelay
	}
	return hd
}

// hedgeCandidates picks replica sub-queries covering sub's arc while
// avoiding the primary and every currently suspected node.
func (f *Frontend) hedgeCandidates(pl *core.Placement, est core.Estimator, sub core.SubQuery) ([]core.SubQuery, error) {
	avoid := f.suspectedSet()
	f.rngMu.Lock()
	defer f.rngMu.Unlock()
	return pl.HedgeSubs(sub, avoid, est, f.rng)
}

// subResult is one side of the primary/hedge race.
type subResult struct {
	resps []proto.QueryResp
	err   error
}

// sendSubHedged executes one sub-query with speculative hedging. It
// adds winning responses to the aggregator and returns nil, or returns
// the primary's error after every side failed (the caller then runs the
// §4.4 re-dispatch). Suspicion is only recorded for legs that failed on
// their own — never for legs we cancelled after losing the race.
func (f *Frontend) sendSubHedged(ctx context.Context, pl *core.Placement, est core.Estimator, agg *aggregator, spec QuerySpec, sub core.SubQuery) error {
	// Every primary dispatch funds the hedge budget with its fraction
	// of a token, whatever happens to this particular sub-query.
	f.mu.RLock()
	budget := f.budget
	maxPerQuery := f.tune.hedgeMaxPerQuery
	f.mu.RUnlock()
	budget.earn(1)

	hd := f.hedgeDelay(sub.Node)
	if hd <= 0 || hd >= f.cfg.SubQueryTimeout {
		resp, err := f.sendSub(ctx, agg.workers, agg.qid, spec, sub, nil)
		if err == nil {
			agg.add(resp)
			return nil
		}
		if ctx.Err() == nil {
			f.suspect(sub.Node)
		}
		return err
	}

	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	primary := make(chan subResult, 1)
	started := make(chan struct{})
	go func() {
		resp, err := f.sendSub(pctx, agg.workers, agg.qid, spec, sub, started)
		primary <- subResult{resps: []proto.QueryResp{resp}, err: err}
	}()

	finishPrimary := func(r subResult) error {
		if r.err == nil {
			agg.add(r.resps[0])
			return nil
		}
		if ctx.Err() == nil {
			f.suspect(sub.Node)
		}
		return r.err
	}

	// Arm the hedge timer only once the primary holds its credit and
	// worker slot: hedging exists to cut remote tail latency, and
	// counting local queueing would turn saturation into a hedge storm.
	select {
	case <-started:
	case r := <-primary:
		return finishPrimary(r)
	case <-ctx.Done():
		return ctx.Err()
	}
	pstart := f.nowFn()
	timer := f.timerFn(hd)
	defer timer.Stop()
	select {
	case r := <-primary:
		return finishPrimary(r)
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
	}

	// The primary is slower than the hedge delay: race replicas against
	// it. All hedge legs must succeed for the hedge side to cover the
	// arc (a bracket pair covers it jointly; a cross-ring replica alone).
	// But hedging is pure extra load, so it must clear three gates
	// first: the overload brake (no speculation while reported queue
	// depths are over the high-water mark), the per-query cap, and the
	// global token-bucket budget — one token per replica leg.
	if f.overloaded() {
		agg.hedgeDenied()
		return finishPrimary(<-primary)
	}
	hsubs, herr := f.hedgeCandidates(pl, est, sub)
	if herr != nil {
		return finishPrimary(<-primary) // no replica available
	}
	if maxPerQuery > 0 && agg.hedgedCount()+len(hsubs) > maxPerQuery {
		agg.hedgeDenied()
		return finishPrimary(<-primary)
	}
	if !budget.take(len(hsubs)) {
		agg.hedgeDenied()
		return finishPrimary(<-primary)
	}
	agg.hedgeLaunched(len(hsubs))
	// Bound the hedge side as a whole by the sub-query timer: its legs'
	// credit/worker waits must not stretch failure recovery beyond the
	// one-SubQueryTimeout bound the §4.4 path had before hedging.
	hctx, hcancel := context.WithTimeout(ctx, f.cfg.SubQueryTimeout)
	defer hcancel()
	hedge := make(chan subResult, 1)
	go func() {
		var (
			hwg  sync.WaitGroup
			hmu  sync.Mutex
			errH error
			out  []proto.QueryResp
		)
		for _, hs := range hsubs {
			hwg.Add(1)
			go func(hs core.SubQuery) {
				defer hwg.Done()
				resp, err := f.sendSub(hctx, agg.workers, agg.qid, spec, hs, nil)
				if err != nil {
					if hctx.Err() == nil {
						f.suspect(hs.Node) // genuine hedge-node failure
					}
					hmu.Lock()
					if errH == nil {
						errH = err
					}
					hmu.Unlock()
					return
				}
				hmu.Lock()
				out = append(out, resp)
				hmu.Unlock()
			}(hs)
		}
		hwg.Wait()
		hedge <- subResult{resps: out, err: errH}
	}()

	select {
	case r := <-primary:
		if r.err == nil {
			hcancel() // primary won: abandon the hedge legs
			agg.add(r.resps[0])
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		f.suspect(sub.Node)
		if hr := <-hedge; hr.err == nil {
			// The hedge saved a genuinely failed primary before its
			// timeout would have: count it as a recovered failure win.
			agg.hedgeWon()
			for _, resp := range hr.resps {
				agg.add(resp)
			}
			return nil
		}
		return r.err
	case hr := <-hedge:
		if hr.err == nil {
			pcancel() // hedge won: cancel the straggling primary
			// Feed the elapsed time back as a speed lower bound so the
			// scheduler learns the primary is slow even though its
			// response was abandoned.
			f.observeSlow(sub, f.nowFn().Sub(pstart))
			agg.hedgeWon()
			for _, resp := range hr.resps {
				agg.add(resp)
			}
			return nil
		}
		return finishPrimary(<-primary)
	}
}

// observeSlow folds a cancelled primary's elapsed time into its node's
// speed EWMA as the most favourable speed still consistent with the
// observation (the true latency was at least elapsed), and into the
// latency tracker. The tracker feed matters: without it the adaptive
// hedge delay only ever sees race *winners*, and that survivorship
// bias holds the quantile far below real latency — every sub-query
// hedges, amplifying load exactly when the cluster is saturated.
func (f *Frontend) observeSlow(sub core.SubQuery, elapsed time.Duration) {
	f.observeLatency(sub.Node, elapsed)
	f.mu.RLock()
	h := f.nodes[sub.Node]
	f.mu.RUnlock()
	if h == nil {
		return
	}
	if d := elapsed.Seconds(); d > 0 && sub.Size() > 0 {
		h.speed.Observe(sub.Size() / d)
	}
}
