package frontend

import (
	"context"
	"sort"
	"sync"
	"time"

	"roar/internal/proto"
	"roar/internal/ring"
	"roar/internal/stats"
	"roar/internal/wire"
)

// Node health (§4.8 failure suspicion, made revocable). The seed
// implementation kept a one-way `failed` map: a single timeout on a
// slow-but-alive node made it permanently unschedulable until the
// membership view dropped it. Health is now a per-node state machine:
//
//	healthy ──(sub-query error)──▶ suspected
//	suspected ──(probe RPC ok, or retained by a new view)──▶ recovering
//	recovering ──(sub-query ok)──▶ healthy
//	recovering ──(sub-query error)──▶ suspected
//	any ──(view marks node quarantined)──▶ quarantined
//	quarantined ──(view clears the mark)──▶ recovering
//
// Suspected nodes are unschedulable and probed in the background;
// recovering nodes are scheduled normally (their speed EWMA and the
// queue depth they report keep the scheduler honest) and promote back
// to healthy on the first successful sub-query.
//
// Quarantined is the membership layer's verdict, not a local one: the
// health aggregator saw enough evidence across the fleet to demote the
// node from scheduling. It is sticky against local observations — the
// background probe keeps running (its outcomes are the recovery
// evidence the next HealthReport carries upstream), but only a new
// view can make the node schedulable again, so one frontend's lucky
// probe cannot diverge from the published topology.
type nodeState int32

const (
	stateHealthy nodeState = iota
	stateSuspected
	stateRecovering
	stateQuarantined
)

func (s nodeState) String() string {
	switch s {
	case stateSuspected:
		return "suspected"
	case stateRecovering:
		return "recovering"
	case stateQuarantined:
		return "quarantined"
	default:
		return "healthy"
	}
}

// handle is the frontend's per-node state: wire client, speed estimate,
// health, and the two load signals the estimator consumes (our own
// outstanding work plus the node's last self-reported queue depth).
type handle struct {
	id    ring.NodeID
	speed *stats.EWMA

	mu          sync.Mutex
	addr        string
	client      *wire.Client  // rebuilt when the pool width retunes
	credits     chan struct{} // per-node outstanding cap; nil = unlimited
	state       nodeState
	outstanding float64 // sum of in-flight sub-query sizes (this frontend)
	depth       int     // last remote queue-depth report

	// Observation deltas since the last HealthReport; snapshot-and-reset
	// by Frontend.HealthReport so the membership aggregator can sum
	// reports across frontends without double counting.
	suspicions int // healthy/recovering -> suspected transitions
	probeOKs   int
	probeFails int
	contacts   int // successful sub-query completions
}

// wireClient snapshots the (swappable) client.
func (h *handle) wireClient() *wire.Client {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.client
}

func (h *handle) healthState() nodeState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state
}

func (h *handle) isSuspected() bool { return h.healthState() == stateSuspected }

// unschedulable reports whether the node must be planned around:
// locally suspected, or demoted by the membership view.
func (h *handle) unschedulable() bool {
	st := h.healthState()
	return st == stateSuspected || st == stateQuarantined
}

// suspect records a genuine sub-query failure (timeout or transport
// error that was not a caller cancellation). Quarantined nodes stay
// quarantined — the view owns that state — but the evidence still
// counts toward the next health report.
func (h *handle) suspect() {
	h.mu.Lock()
	if h.state != stateSuspected {
		h.suspicions++
	}
	if h.state != stateQuarantined {
		h.state = stateSuspected
	}
	h.mu.Unlock()
}

// probeOK records a successful background probe: the node answers RPCs
// again, so suspicion lifts, but it stays "recovering" until a real
// sub-query confirms it end to end. A quarantined node is NOT promoted
// — the probe outcome rides the next HealthReport and the membership
// aggregator decides.
func (h *handle) probeOK(depth int) {
	h.mu.Lock()
	h.probeOKs++
	if h.state == stateSuspected {
		h.state = stateRecovering
	}
	h.depth = depth
	h.mu.Unlock()
}

// probeFail records an unanswered background probe (the node stays in
// its current state; the counter is recovery evidence's counterpart).
func (h *handle) probeFail() {
	h.mu.Lock()
	h.probeFails++
	h.mu.Unlock()
}

// clearSuspicion is probeOK without a depth report — used when a new
// membership view retains the node without quarantining it, which is
// the membership layer's assertion that it is worth re-evaluating.
// This is also the only transition out of quarantine.
func (h *handle) clearSuspicion() {
	h.mu.Lock()
	if h.state == stateSuspected || h.state == stateQuarantined {
		h.state = stateRecovering
	}
	h.mu.Unlock()
}

// setQuarantined applies the view's demotion verdict.
func (h *handle) setQuarantined() {
	h.mu.Lock()
	h.state = stateQuarantined
	h.mu.Unlock()
}

// contactOK records a successful sub-query: full health, whatever the
// prior local state, plus the fresh queue-depth report. (A quarantined
// node keeps its view-assigned state; completions on it can only come
// from requests already in flight when the quarantine view landed.)
func (h *handle) contactOK(depth int) {
	h.mu.Lock()
	h.contacts++
	if h.state != stateQuarantined {
		h.state = stateHealthy
	}
	h.depth = depth
	h.mu.Unlock()
}

// loadSnapshot returns state and the estimator's load inputs.
func (h *handle) loadSnapshot() (nodeState, float64, int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state, h.outstanding, h.depth
}

// suspect marks a node's handle suspected, if it is still in the view.
func (f *Frontend) suspect(id ring.NodeID) {
	f.mu.RLock()
	h := f.nodes[id]
	f.mu.RUnlock()
	if h != nil {
		h.suspect()
	}
}

// suspectedSet snapshots the currently unschedulable nodes — locally
// suspected plus view-quarantined — the set the scheduler must plan
// around, RepairPlan must avoid, and hedging must not target.
func (f *Frontend) suspectedSet() map[ring.NodeID]bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make(map[ring.NodeID]bool)
	for id, h := range f.nodes {
		if h.unschedulable() {
			out[id] = true
		}
	}
	return out
}

// MarkFailed flags a node (tests and membership push-downs). Unlike the
// seed's one-way map, the background probe may clear the mark as soon
// as the node answers a ping.
func (f *Frontend) MarkFailed(id ring.NodeID) { f.suspect(id) }

// FailedNodes returns the currently suspected nodes.
func (f *Frontend) FailedNodes() []int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	var out []int
	for id, h := range f.nodes {
		if h.isSuspected() {
			out = append(out, int(id))
		}
	}
	sort.Ints(out)
	return out
}

// Health reports every node's health state, for membership reports and
// operational visibility.
func (f *Frontend) Health() map[int]string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make(map[int]string, len(f.nodes))
	for id, h := range f.nodes {
		out[int(id)] = h.healthState().String()
	}
	return out
}

// HealthReport snapshots this frontend's observation deltas for the
// membership health aggregator and resets the counters, so consecutive
// reports carry disjoint evidence. Entries are sorted by node id.
//
// Beyond the failure evidence, the report carries the autoscale
// telemetry the membership elasticity controller consumes: shed counts
// per priority class (Shed = sheddable-low, ShedNormal = queue-timeout
// rejections), hedge-budget denials, an admission-queue wait digest,
// and per-node latency digests drawn from the same rolling histories
// the adaptive hedge delay uses. Counter fields are deltas; digest
// fields are gauges over the rolling window.
func (f *Frontend) HealthReport() proto.HealthReport {
	rep := proto.HealthReport{
		FE:            f.cfg.Name,
		Seq:           f.reportSeq.Add(1),
		Shed:          int(f.shed.Swap(0)),
		ShedNormal:    int(f.shedNorm.Swap(0)),
		HedgesDenied:  int(f.hdgDenied.Swap(0)),
		QueueP50Nanos: f.queueLat.quantile(0.50).Nanoseconds(),
		QueueP99Nanos: f.queueLat.quantile(0.99).Nanoseconds(),
		Tenants:       f.tenants.snapshot(),
	}
	f.mu.RLock()
	handles := make([]*handle, 0, len(f.nodes))
	for _, h := range f.nodes {
		handles = append(handles, h)
	}
	f.mu.RUnlock()
	for _, h := range handles {
		h.mu.Lock()
		nh := proto.NodeHealth{
			ID:         int(h.id),
			Suspicions: h.suspicions,
			ProbeOKs:   h.probeOKs,
			ProbeFails: h.probeFails,
			Contacts:   h.contacts,
			QueueDepth: h.depth,
		}
		h.suspicions, h.probeOKs, h.probeFails, h.contacts = 0, 0, 0, 0
		h.mu.Unlock()
		if v, ok := h.speed.Value(); ok {
			nh.Speed = v
		}
		if nl := f.nodeTracker(h.id); nl != nil {
			nh.LatP50Nanos = nl.quantile(0.50).Nanoseconds()
			nh.LatP99Nanos = nl.quantile(0.99).Nanoseconds()
		}
		rep.Nodes = append(rep.Nodes, nh)
	}
	sort.Slice(rep.Nodes, func(a, b int) bool { return rep.Nodes[a].ID < rep.Nodes[b].ID })
	return rep
}

// RestoreHealthReport re-credits a report whose delivery failed: the
// counters are deltas destructively snapshotted by HealthReport, so a
// push that errors (coordinator restart, network blip) must fold its
// evidence back for the next attempt — losing it exactly when the
// control plane is flaky would silence failure evidence when it
// matters most. Sequence numbers are not rolled back; the aggregator
// tolerates gaps.
func (f *Frontend) RestoreHealthReport(rep proto.HealthReport) {
	f.shed.Add(int64(rep.Shed))
	f.shedNorm.Add(int64(rep.ShedNormal))
	f.hdgDenied.Add(int64(rep.HedgesDenied))
	f.tenants.restore(rep.Tenants)
	f.mu.RLock()
	handles := make(map[int]*handle, len(f.nodes))
	for id, h := range f.nodes {
		handles[int(id)] = h
	}
	f.mu.RUnlock()
	for _, nh := range rep.Nodes {
		h := handles[nh.ID]
		if h == nil {
			continue // node left the view meanwhile; its evidence is moot
		}
		h.mu.Lock()
		h.suspicions += nh.Suspicions
		h.probeOKs += nh.ProbeOKs
		h.probeFails += nh.ProbeFails
		h.contacts += nh.Contacts
		h.mu.Unlock()
	}
}

// overloaded reports whether the mean self-reported queue depth across
// schedulable nodes has crossed the shed high-water mark (0 disables).
// Overload flips the frontend into load-preservation mode: hedging —
// pure extra load — pauses, and sheddable-priority admissions are
// rejected up front (Badue et al.: shed before saturation, not after).
func (f *Frontend) overloaded() bool {
	f.mu.RLock()
	hw := f.tune.shedHighWater
	if hw <= 0 {
		f.mu.RUnlock()
		return false
	}
	var sum, n int
	for _, h := range f.nodes {
		st, _, depth := h.loadSnapshot()
		if st == stateSuspected || st == stateQuarantined {
			continue
		}
		sum += depth
		n++
	}
	f.mu.RUnlock()
	return n > 0 && sum >= hw*n
}

// probeLoop is the background recovery prober: every probe interval it
// pings suspected nodes and lifts suspicion from the ones that answer.
// It runs for the frontend's lifetime; Close stops it.
func (f *Frontend) probeLoop() {
	for {
		f.mu.RLock()
		iv := f.tune.probeInterval
		f.mu.RUnlock()
		wait := iv
		if wait <= 0 {
			wait = defaultProbeInterval
		}
		select {
		case <-f.stop:
			return
		case <-f.afterFn(wait):
		}
		if iv < 0 {
			continue // probing disabled; keep watching for retuning
		}
		f.probeSuspects(wait)
	}
}

// probeSuspects pings every suspected or quarantined node concurrently,
// bounding each probe by the probe interval (capped at 1s). For
// suspected nodes a successful probe lifts suspicion; for quarantined
// nodes it only accumulates recovery evidence for the next health
// report — the membership aggregator decides when they rejoin.
func (f *Frontend) probeSuspects(timeout time.Duration) {
	if timeout > time.Second {
		timeout = time.Second
	}
	f.mu.RLock()
	var suspects []*handle
	for _, h := range f.nodes {
		if h.unschedulable() {
			suspects = append(suspects, h)
		}
	}
	f.mu.RUnlock()
	if len(suspects) == 0 {
		return
	}
	var wg sync.WaitGroup
	for _, h := range suspects {
		wg.Add(1)
		go func(h *handle) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(f.lifeCtx, timeout)
			defer cancel()
			var pr proto.PingResp
			if err := h.wireClient().Call(ctx, proto.MNodePing, proto.PingReq{}, &pr); err != nil {
				h.probeFail() // still unreachable; stay put
				return
			}
			h.probeOK(pr.QueueDepth)
		}(h)
	}
	wg.Wait()
}
