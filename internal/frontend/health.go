package frontend

import (
	"context"
	"sort"
	"sync"
	"time"

	"roar/internal/proto"
	"roar/internal/ring"
	"roar/internal/stats"
	"roar/internal/wire"
)

// Node health (§4.8 failure suspicion, made revocable). The seed
// implementation kept a one-way `failed` map: a single timeout on a
// slow-but-alive node made it permanently unschedulable until the
// membership view dropped it. Health is now a per-node state machine:
//
//	healthy ──(sub-query error)──▶ suspected
//	suspected ──(probe RPC ok, or retained by a new view)──▶ recovering
//	recovering ──(sub-query ok)──▶ healthy
//	recovering ──(sub-query error)──▶ suspected
//
// Suspected nodes are unschedulable and probed in the background;
// recovering nodes are scheduled normally (their speed EWMA and the
// queue depth they report keep the scheduler honest) and promote back
// to healthy on the first successful sub-query.
type nodeState int32

const (
	stateHealthy nodeState = iota
	stateSuspected
	stateRecovering
)

func (s nodeState) String() string {
	switch s {
	case stateSuspected:
		return "suspected"
	case stateRecovering:
		return "recovering"
	default:
		return "healthy"
	}
}

// handle is the frontend's per-node state: wire client, speed estimate,
// health, and the two load signals the estimator consumes (our own
// outstanding work plus the node's last self-reported queue depth).
type handle struct {
	id    ring.NodeID
	speed *stats.EWMA

	mu          sync.Mutex
	addr        string
	client      *wire.Client  // rebuilt when the pool width retunes
	credits     chan struct{} // per-node outstanding cap; nil = unlimited
	state       nodeState
	outstanding float64 // sum of in-flight sub-query sizes (this frontend)
	depth       int     // last remote queue-depth report
}

// wireClient snapshots the (swappable) client.
func (h *handle) wireClient() *wire.Client {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.client
}

func (h *handle) healthState() nodeState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state
}

func (h *handle) isSuspected() bool { return h.healthState() == stateSuspected }

// suspect records a genuine sub-query failure (timeout or transport
// error that was not a caller cancellation).
func (h *handle) suspect() {
	h.mu.Lock()
	h.state = stateSuspected
	h.mu.Unlock()
}

// probeOK records a successful background probe: the node answers RPCs
// again, so suspicion lifts, but it stays "recovering" until a real
// sub-query confirms it end to end.
func (h *handle) probeOK(depth int) {
	h.mu.Lock()
	if h.state == stateSuspected {
		h.state = stateRecovering
	}
	h.depth = depth
	h.mu.Unlock()
}

// clearSuspicion is probeOK without a depth report — used when a new
// membership view retains the node, which is the membership layer's
// assertion that it is worth re-evaluating.
func (h *handle) clearSuspicion() {
	h.mu.Lock()
	if h.state == stateSuspected {
		h.state = stateRecovering
	}
	h.mu.Unlock()
}

// contactOK records a successful sub-query: full health, whatever the
// prior state, plus the fresh queue-depth report.
func (h *handle) contactOK(depth int) {
	h.mu.Lock()
	h.state = stateHealthy
	h.depth = depth
	h.mu.Unlock()
}

// loadSnapshot returns state and the estimator's load inputs.
func (h *handle) loadSnapshot() (nodeState, float64, int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state, h.outstanding, h.depth
}

// suspect marks a node's handle suspected, if it is still in the view.
func (f *Frontend) suspect(id ring.NodeID) {
	f.mu.RLock()
	h := f.nodes[id]
	f.mu.RUnlock()
	if h != nil {
		h.suspect()
	}
}

// suspectedSet snapshots the currently suspected nodes (the set the
// scheduler must plan around and RepairPlan must avoid).
func (f *Frontend) suspectedSet() map[ring.NodeID]bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make(map[ring.NodeID]bool)
	for id, h := range f.nodes {
		if h.isSuspected() {
			out[id] = true
		}
	}
	return out
}

// MarkFailed flags a node (tests and membership push-downs). Unlike the
// seed's one-way map, the background probe may clear the mark as soon
// as the node answers a ping.
func (f *Frontend) MarkFailed(id ring.NodeID) { f.suspect(id) }

// FailedNodes returns the currently suspected nodes.
func (f *Frontend) FailedNodes() []int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	var out []int
	for id, h := range f.nodes {
		if h.isSuspected() {
			out = append(out, int(id))
		}
	}
	sort.Ints(out)
	return out
}

// Health reports every node's health state, for membership reports and
// operational visibility.
func (f *Frontend) Health() map[int]string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make(map[int]string, len(f.nodes))
	for id, h := range f.nodes {
		out[int(id)] = h.healthState().String()
	}
	return out
}

// probeLoop is the background recovery prober: every probe interval it
// pings suspected nodes and lifts suspicion from the ones that answer.
// It runs for the frontend's lifetime; Close stops it.
func (f *Frontend) probeLoop() {
	for {
		f.mu.RLock()
		iv := f.tune.probeInterval
		f.mu.RUnlock()
		wait := iv
		if wait <= 0 {
			wait = defaultProbeInterval
		}
		select {
		case <-f.stop:
			return
		case <-time.After(wait):
		}
		if iv < 0 {
			continue // probing disabled; keep watching for retuning
		}
		f.probeSuspects(wait)
	}
}

// probeSuspects pings every suspected node concurrently, bounding each
// probe by the probe interval (capped at 1s).
func (f *Frontend) probeSuspects(timeout time.Duration) {
	if timeout > time.Second {
		timeout = time.Second
	}
	f.mu.RLock()
	var suspects []*handle
	for _, h := range f.nodes {
		if h.isSuspected() {
			suspects = append(suspects, h)
		}
	}
	f.mu.RUnlock()
	if len(suspects) == 0 {
		return
	}
	var wg sync.WaitGroup
	for _, h := range suspects {
		wg.Add(1)
		go func(h *handle) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			defer cancel()
			var pr proto.PingResp
			if err := h.wireClient().Call(ctx, proto.MNodePing, proto.PingReq{}, &pr); err != nil {
				return // still unreachable; stay suspected
			}
			h.probeOK(pr.QueueDepth)
		}(h)
	}
	wg.Wait()
}
