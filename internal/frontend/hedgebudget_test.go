package frontend

import (
	"testing"
	"time"

	"roar/internal/ring"
)

// fakeClock is the injected time source for deterministic budget tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time                    { return c.t }
func (c *fakeClock) advance(d time.Duration)           { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock                         { return &fakeClock{t: time.Unix(1e9, 0)} }
func budgetAt(f, b float64, c *fakeClock) *hedgeBudget { return newHedgeBudget(f, b, c.now) }

// TestHedgeBudgetExhaustionStopsHedging: the bucket starts at burst,
// spends one token per leg, and refuses hedges once empty — no wall
// clock involved, so the behaviour is exact.
func TestHedgeBudgetExhaustionStopsHedging(t *testing.T) {
	clk := newFakeClock()
	b := budgetAt(0.1, 2, clk)
	if !b.take(2) {
		t.Fatal("burst tokens must admit the first hedge")
	}
	if b.take(1) {
		t.Fatal("empty bucket admitted a hedge")
	}
	if got := b.balance(); got != 0 {
		t.Fatalf("balance = %v, want 0", got)
	}
}

// TestHedgeBudgetEarnRefillsFromDispatches: primary dispatches are the
// main refill path — fraction tokens each — and resume hedging after
// exhaustion.
func TestHedgeBudgetEarnRefillsFromDispatches(t *testing.T) {
	clk := newFakeClock()
	b := budgetAt(0.1, 2, clk)
	b.take(2) // drain
	b.earn(9) // 0.9 tokens: still short of one leg
	if b.take(1) {
		t.Fatal("0.9 tokens admitted a full leg")
	}
	b.earn(1) // tips over 1.0
	if !b.take(1) {
		t.Fatal("refilled bucket refused a hedge")
	}
	// Earning never exceeds burst.
	b.earn(1000)
	if got := b.balance(); got != 2 {
		t.Fatalf("balance after huge earn = %v, want burst cap 2", got)
	}
}

// TestHedgeBudgetClockTrickleRefills: wall-clock idleness (through the
// injected clock) trickles tokens back at fraction per second, so a
// quiet frontend re-arms without any dispatches.
func TestHedgeBudgetClockTrickleRefills(t *testing.T) {
	clk := newFakeClock()
	b := budgetAt(0.5, 4, clk)
	b.take(4) // drain
	if b.take(1) {
		t.Fatal("drained bucket admitted a hedge")
	}
	clk.advance(1 * time.Second) // +0.5 tokens
	if b.take(1) {
		t.Fatal("half a trickled token admitted a hedge")
	}
	clk.advance(1 * time.Second) // reaches 1.0
	if !b.take(1) {
		t.Fatal("trickle refill did not resume hedging")
	}
	// Trickle is also capped at burst.
	clk.advance(time.Hour)
	if got := b.balance(); got != 4 {
		t.Fatalf("balance after long idle = %v, want burst cap 4", got)
	}
}

// TestHedgeBudgetBoundsGlobalSlownessFraction is the provable-fraction
// property: simulate a workload where EVERY primary wants to hedge (the
// broad-slowness disaster case) and require hedged legs ≤ fraction ×
// primaries + burst, exactly.
func TestHedgeBudgetBoundsGlobalSlownessFraction(t *testing.T) {
	const (
		fraction  = 0.05
		burst     = 4.0
		primaries = 10000
	)
	clk := newFakeClock() // frozen: no trickle, the bound is pure
	b := budgetAt(fraction, burst, clk)
	hedged := 0
	for i := 0; i < primaries; i++ {
		b.earn(1)
		if b.take(1) {
			hedged++
		}
	}
	limit := int(fraction*primaries + burst)
	if hedged > limit {
		t.Fatalf("hedged %d of %d primaries, budget limit %d", hedged, primaries, limit)
	}
	if hedged < int(fraction*primaries) {
		t.Fatalf("hedged only %d; the budget must spend what it earns (≥%d)", hedged, int(fraction*primaries))
	}
	t.Logf("global slowness: %d/%d hedged (%.2f%%, limit %.0f%%)",
		hedged, primaries, 100*float64(hedged)/primaries, 100*fraction)
}

// TestHedgeBudgetNilUnlimited: a nil budget (HedgeBudgetFraction < 0)
// never refuses.
func TestHedgeBudgetNilUnlimited(t *testing.T) {
	var b *hedgeBudget
	for i := 0; i < 100; i++ {
		if !b.take(2) {
			t.Fatal("nil budget refused a hedge")
		}
	}
	b.earn(1) // must not panic
}

// TestPerNodeHedgeDelay pins the satellite fix for the global latency
// distribution: a node that is legitimately slow (large arc) must be
// judged against its own latency history once it has enough samples,
// instead of the fleet-wide quantile that would hedge its every
// sub-query. Below the sample floor the global distribution still
// applies.
func TestPerNodeHedgeDelay(t *testing.T) {
	fe := New(Config{HedgeQuantile: 0.9, ProbeInterval: -1})
	defer fe.Close()
	fast, slow, cold := ring.NodeID(1), ring.NodeID(2), ring.NodeID(3)
	// The fleet is fast: enough 2ms samples that the global quantile
	// stays fast even after the slow node's samples join the ring...
	for i := 0; i < 512; i++ {
		fe.observeLatency(fast, 2*time.Millisecond)
	}
	// ...while the large-arc node consistently takes 50ms.
	for i := 0; i < latWarmup; i++ {
		fe.observeLatency(slow, 50*time.Millisecond)
	}
	fastDelay := fe.hedgeDelay(fast)
	slowDelay := fe.hedgeDelay(slow)
	coldDelay := fe.hedgeDelay(cold)
	if fastDelay <= 0 || fastDelay > 10*time.Millisecond {
		t.Fatalf("fast node hedge delay %v, want a few ms from its own history", fastDelay)
	}
	if slowDelay < 45*time.Millisecond {
		t.Fatalf("slow node hedge delay %v would eagerly hedge its normal 50ms sub-queries", slowDelay)
	}
	// A node below the sample floor falls back to the global quantile.
	if coldDelay != fe.hedgeDelay(ring.NodeID(99)) {
		t.Fatalf("cold nodes must share the global fallback delay")
	}
	if coldDelay > 10*time.Millisecond {
		t.Fatalf("cold-node fallback delay %v, want the global (fast) quantile", coldDelay)
	}
	t.Logf("hedge delays: fast=%v slow=%v cold(global)=%v", fastDelay, slowDelay, coldDelay)
}

// TestPerNodeTrackerRegression is the end-to-end form of the fix: with
// a fleet-dominated global distribution, the slow node's OWN quantile
// decides, so sendSubHedged at its typical latency does not hedge.
// (Before the fix, hedgeDelay ignored the node and the 90th-percentile
// global delay sat near 2ms — every 50ms sub-query hedged.)
func TestPerNodeTrackerRegressionVsGlobal(t *testing.T) {
	fe := New(Config{HedgeQuantile: 0.9, ProbeInterval: -1})
	defer fe.Close()
	slow := ring.NodeID(7)
	for i := 0; i < 512; i++ {
		fe.observeLatency(ring.NodeID(1), 2*time.Millisecond)
	}
	for i := 0; i < latWarmup-1; i++ {
		fe.observeLatency(slow, 50*time.Millisecond)
	}
	// One sample short of the floor: still global, still eager.
	if d := fe.hedgeDelay(slow); d >= 50*time.Millisecond {
		t.Fatalf("below the floor the global delay should rule, got %v", d)
	}
	fe.observeLatency(slow, 50*time.Millisecond) // crosses the floor
	if d := fe.hedgeDelay(slow); d < 45*time.Millisecond {
		t.Fatalf("at the floor the node's own distribution should rule, got %v", d)
	}
}
