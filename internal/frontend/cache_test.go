package frontend

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"roar/internal/pps"
	"roar/internal/proto"
)

// ---------------------------------------------------------------------------
// resultCache unit tests: generation fencing, LRU budget, single-flight.

func TestResultCacheGetPutGenFence(t *testing.T) {
	c := newResultCache(1<<20, 4)
	c.put("k", []uint64{1, 2, 3}, 1)
	ids, ok := c.get("k", 1)
	if !ok || len(ids) != 3 {
		t.Fatalf("same-generation get: ok=%v ids=%v", ok, ids)
	}
	// The returned slice is a copy — mutating it must not poison the cache.
	ids[0] = 99
	ids2, _ := c.get("k", 1)
	if ids2[0] != 1 {
		t.Fatal("cached ids aliased to a caller's slice")
	}
	// A newer generation invalidates on sight and removes the entry.
	if _, ok := c.get("k", 2); ok {
		t.Fatal("stale-generation entry served as a hit")
	}
	st := c.stats()
	if st.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", st.Invalidations)
	}
	if st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("invalidated entry still resident: %+v", st)
	}
	// Even back at the original generation the entry is gone: removal is
	// permanent, not a filter.
	if _, ok := c.get("k", 1); ok {
		t.Fatal("invalidated entry resurrected")
	}
}

func TestResultCacheLRUEviction(t *testing.T) {
	// One shard so the LRU order is fully observable. Budget fits two
	// of the three entries below.
	entrySize := int64(1) + 8*4 + entryOverhead
	c := newResultCache(2*entrySize, 1)
	c.put("a", []uint64{1, 2, 3, 4}, 1)
	c.put("b", []uint64{1, 2, 3, 4}, 1)
	c.get("a", 1) // touch a so b is the LRU victim
	c.put("c", []uint64{1, 2, 3, 4}, 1)
	if _, ok := c.get("b", 1); ok {
		t.Error("LRU victim b survived over-budget put")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.get(k, 1); !ok {
			t.Errorf("entry %q evicted though within budget", k)
		}
	}
	if st := c.stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	// An entry larger than a whole shard is skipped, not stored.
	big := make([]uint64, 1024)
	c.put("huge", big, 1)
	if _, ok := c.get("huge", 1); ok {
		t.Error("oversized entry stored; should be served uncached")
	}
}

func TestResultCacheReplaceSameKey(t *testing.T) {
	c := newResultCache(1<<20, 1)
	c.put("k", []uint64{1}, 1)
	c.put("k", []uint64{2, 3}, 2)
	if st := c.stats(); st.Entries != 1 {
		t.Fatalf("replacing put left %d entries", st.Entries)
	}
	ids, ok := c.get("k", 2)
	if !ok || len(ids) != 2 {
		t.Fatalf("replaced entry: ok=%v ids=%v", ok, ids)
	}
}

func TestResultCacheSingleFlight(t *testing.T) {
	c := newResultCache(1<<20, 4)
	fl, leader := c.startFlight("k", 1)
	if !leader || fl == nil {
		t.Fatal("first flight must lead")
	}
	fl2, leader2 := c.startFlight("k", 1)
	if leader2 || fl2 != fl {
		t.Fatal("same-generation second flight must join the first")
	}
	// A different generation must NOT join the stale flight: its result
	// is already fenced out. The caller leads unregistered.
	fl3, leader3 := c.startFlight("k", 2)
	if !leader3 || fl3 != nil {
		t.Fatalf("newer-generation flight joined a stale one: fl=%v leader=%v", fl3, leader3)
	}
	done := make(chan []uint64)
	go func() {
		<-fl2.done
		done <- fl2.ids
	}()
	c.finishFlight("k", fl, []uint64{7}, nil)
	select {
	case ids := <-done:
		if len(ids) != 1 || ids[0] != 7 {
			t.Fatalf("follower saw %v", ids)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("follower never woke")
	}
	// The finished flight is deregistered; a new one can lead.
	if _, leader := c.startFlight("k", 1); !leader {
		t.Fatal("flight table did not clear after finishFlight")
	}
}

// ---------------------------------------------------------------------------
// Cache key canonicalisation.

func TestCacheKeyCanonical(t *testing.T) {
	enc := slimEncoder()
	q1, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "aa"})

	base := QuerySpec{Enc: q1}
	// Tenant, priority, and cache-control select admission behaviour, not
	// the answer — they must share one entry.
	same := []QuerySpec{
		{Enc: q1, Tenant: "acme"},
		{Enc: q1, Priority: PriorityHigh},
		{Enc: q1, CacheControl: proto.CacheRefresh},
	}
	for i, s := range same {
		if cacheKey(s) != cacheKey(base) {
			t.Errorf("spec %d: admission-only field changed the cache key", i)
		}
	}

	pq := proto.PlainQuery{Mode: 0, Terms: []string{"aa"}}
	distinct := []QuerySpec{
		{Plain: &pq},
		{Plain: &proto.PlainQuery{Mode: 0, Terms: []string{"ab"}}},
		{Plain: &proto.PlainQuery{Mode: 0, Terms: []string{"aa"}, Limit: 5}},
		{Plain: &proto.PlainQuery{Mode: 1, Terms: []string{"aa"}}},
	}
	seen := map[string]int{cacheKey(base): -1}
	for i, s := range distinct {
		k := cacheKey(s)
		if prev, dup := seen[k]; dup {
			t.Errorf("specs %d and %d collide on cache key", prev, i)
		}
		seen[k] = i
	}
}

// ---------------------------------------------------------------------------
// Query-level behaviour against real nodes.

func cachedFrontend(t *testing.T, v proto.View) *Frontend {
	t.Helper()
	fe := New(Config{CacheBudget: 1 << 20})
	t.Cleanup(fe.Close)
	if err := fe.ApplyView(v); err != nil {
		t.Fatal(err)
	}
	return fe
}

func TestQueryCacheHitSourceAndStats(t *testing.T) {
	enc := slimEncoder()
	v, nodes := testView(t, enc, 4, 1)
	loadAll(t, nodes, enc, []string{"aa", "bb", "aa"})
	fe := cachedFrontend(t, v)
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "aa"})
	spec := QuerySpec{Enc: q, Tenant: "acme"}

	r1, err := fe.Query(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Source != SourceFanout {
		t.Errorf("cold query Source = %q, want %q", r1.Source, SourceFanout)
	}
	r2, err := fe.Query(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Source != SourceCache {
		t.Errorf("warm query Source = %q, want %q", r2.Source, SourceCache)
	}
	if len(r2.IDs) != len(r1.IDs) {
		t.Fatalf("cache hit changed the answer: %v vs %v", r2.IDs, r1.IDs)
	}
	if r2.Cache.Hits != 1 || r2.Cache.Misses != 1 {
		t.Errorf("CacheStats hits=%d misses=%d, want 1/1", r2.Cache.Hits, r2.Cache.Misses)
	}
	if bd := fe.DelayBreakdown(); bd.CacheHit.N != 1 {
		t.Errorf("DelayBreakdown.CacheHit.N = %d, want 1", bd.CacheHit.N)
	}

	// Bypass: served by fan-out and the entry is neither read nor written.
	r3, err := fe.Query(context.Background(), QuerySpec{Enc: q, CacheControl: proto.CacheBypass})
	if err != nil {
		t.Fatal(err)
	}
	if r3.Source != SourceFanout {
		t.Errorf("bypass Source = %q, want %q", r3.Source, SourceFanout)
	}
	if got := fe.CacheStats(); got.Hits != 1 || got.Misses != 1 {
		t.Errorf("bypass touched the cache: %+v", got)
	}

	// Refresh: forced fan-out, result re-stored, next default query hits.
	r4, err := fe.Query(context.Background(), QuerySpec{Enc: q, CacheControl: proto.CacheRefresh})
	if err != nil {
		t.Fatal(err)
	}
	if r4.Source != SourceFanout {
		t.Errorf("refresh Source = %q, want %q", r4.Source, SourceFanout)
	}
	r5, err := fe.Query(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if r5.Source != SourceCache {
		t.Errorf("query after refresh Source = %q, want %q", r5.Source, SourceCache)
	}
}

// TestQueryCacheEpochInvalidation is the satellite property test: once a
// write at "epoch" E has been observed (ObserveIngest or a newer view),
// no subsequent hit may return pre-E results. It interleaves direct node
// puts with queries and checks the cached frontend's answer against an
// uncached frontend's at every step.
func TestQueryCacheEpochInvalidation(t *testing.T) {
	enc := slimEncoder()
	v, nodes := testView(t, enc, 4, 1)
	loadAll(t, nodes, enc, []string{"aa"})
	fe := cachedFrontend(t, v)
	plain := New(Config{}) // no cache: ground truth
	defer plain.Close()
	if err := plain.ApplyView(v); err != nil {
		t.Fatal(err)
	}
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "aa"})

	idSet := func(r Result) map[uint64]bool {
		m := make(map[uint64]bool, len(r.IDs))
		for _, id := range r.IDs {
			m[id] = true
		}
		return m
	}
	for epoch := uint64(1); epoch <= 5; epoch++ {
		// Warm the cache so a pre-E entry definitely exists.
		if _, err := fe.Query(context.Background(), QuerySpec{Enc: q}); err != nil {
			t.Fatal(err)
		}
		// The write lands on the nodes, then the frontend observes it —
		// the order PR 9's drain pipeline guarantees (FEPutResp carries
		// the watermark only after the records are durable).
		rec, err := enc.EncryptDocument(pps.Document{
			ID: (epoch + 100) * (1 << 40), Path: "/x", Size: 5,
			Modified: time.Unix(1.2e9, 0), Keywords: []string{"aa"},
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, nd := range nodes {
			nd.Put(proto.PutReq{Records: []pps.Encoded{rec}})
		}
		fe.ObserveIngest(epoch, epoch)

		got, err := fe.Query(context.Background(), QuerySpec{Enc: q})
		if err != nil {
			t.Fatal(err)
		}
		want, err := plain.Query(context.Background(), QuerySpec{Enc: q})
		if err != nil {
			t.Fatal(err)
		}
		if g, w := idSet(got), idSet(want); len(g) != len(w) {
			t.Fatalf("epoch %d: cached answer has %d ids, uncached %d — stale hit", epoch, len(g), len(w))
		} else {
			for id := range w {
				if !g[id] {
					t.Fatalf("epoch %d: cached answer missing id %d — stale hit", epoch, id)
				}
			}
		}
		if got.Source != SourceFanout {
			t.Fatalf("epoch %d: post-invalidation query served from %q", epoch, got.Source)
		}
	}
	// A lagging watermark report must not re-invalidate.
	before := fe.CacheStats().Invalidations
	fe.ObserveIngest(1, 1)
	if _, err := fe.Query(context.Background(), QuerySpec{Enc: q}); err != nil {
		t.Fatal(err)
	}
	if after := fe.CacheStats().Invalidations; after != before {
		t.Errorf("stale watermark report invalidated entries: %d -> %d", before, after)
	}
}

// TestApplyViewCacheFencing: re-applying the installed view (the harness
// SyncView path) must keep the cache warm; a strictly newer epoch must
// flush it.
func TestApplyViewCacheFencing(t *testing.T) {
	enc := slimEncoder()
	v, nodes := testView(t, enc, 4, 1)
	loadAll(t, nodes, enc, []string{"aa"})
	fe := cachedFrontend(t, v)
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "aa"})
	if _, err := fe.Query(context.Background(), QuerySpec{Enc: q}); err != nil {
		t.Fatal(err)
	}

	if err := fe.ApplyView(v); err != nil { // same (Term, Epoch)
		t.Fatal(err)
	}
	r, err := fe.Query(context.Background(), QuerySpec{Enc: q})
	if err != nil {
		t.Fatal(err)
	}
	if r.Source != SourceCache {
		t.Errorf("same-view re-apply flushed the cache (Source = %q)", r.Source)
	}

	v2 := v
	v2.Epoch = 2
	if err := fe.ApplyView(v2); err != nil {
		t.Fatal(err)
	}
	r, err = fe.Query(context.Background(), QuerySpec{Enc: q})
	if err != nil {
		t.Fatal(err)
	}
	if r.Source != SourceFanout {
		t.Errorf("newer epoch did not flush the cache (Source = %q)", r.Source)
	}
}

// TestQueryCoalesce: concurrent identical queries while a fan-out is slow
// collapse onto one flight.
func TestQueryCoalesce(t *testing.T) {
	enc := slimEncoder()
	v, nodes := testViewCost(t, enc, 2, 1, 50*time.Millisecond)
	loadAll(t, nodes, enc, []string{"aa"})
	fe := cachedFrontend(t, v)
	q, _ := enc.EncryptQuery(pps.And, pps.Predicate{Kind: pps.Keyword, Word: "aa"})
	spec := QuerySpec{Enc: q}

	// Lead with one query so the flight is registered, then pile on.
	errc := make(chan error, 1)
	go func() {
		_, err := fe.Query(context.Background(), spec)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	const followers = 4
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := fe.Query(context.Background(), spec)
			if err != nil {
				t.Errorf("follower query: %v", err)
				return
			}
			if len(r.IDs) != 1 {
				t.Errorf("follower got %d ids, want 1", len(r.IDs))
			}
		}()
	}
	wg.Wait()
	if err := <-errc; err != nil {
		t.Fatalf("leader query: %v", err)
	}
	st := fe.CacheStats()
	if st.Coalesced == 0 {
		t.Error("no queries coalesced onto the in-flight fan-out")
	}
	if st.Coalesced+st.Hits < followers {
		t.Errorf("coalesced=%d hits=%d; %d followers should all have been served without a second fan-out",
			st.Coalesced, st.Hits, followers)
	}
}

// ---------------------------------------------------------------------------
// Race hammer: concurrent Get / Put / Invalidate on the sharded cache
// (run with -race; the assertions also hold without it).

func TestResultCacheRaceHammer(t *testing.T) {
	c := newResultCache(64<<10, 8)
	var gen atomic.Uint64
	gen.Store(1)
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}

	stop := make(chan struct{})
	invDone := make(chan struct{})
	// Invalidator: advances the generation continuously.
	go func() {
		defer close(invDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			gen.Add(1)
			if i%64 == 0 {
				time.Sleep(time.Millisecond)
			}
		}
	}()
	var wg sync.WaitGroup
	// Workers: mixed get/put/flight traffic. The invariant under attack:
	// a get must never return ids stored under a different generation
	// than the one it asked for.
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 4000; i++ {
				k := keys[rng.Intn(len(keys))]
				g := gen.Load()
				switch rng.Intn(3) {
				case 0:
					// Store ids stamped with the generation they claim.
					c.put(k, []uint64{g}, g)
				case 1:
					if ids, ok := c.get(k, g); ok {
						if len(ids) != 1 || ids[0] != g {
							t.Errorf("get(%q, gen %d) returned ids from generation %d", k, g, ids[0])
							return
						}
					}
				default:
					if fl, leader := c.startFlight(k, g); leader && fl != nil {
						c.finishFlight(k, fl, []uint64{g}, nil)
					} else if fl != nil {
						<-fl.done
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(stop)
	<-invDone
	st := c.stats()
	if st.Bytes < 0 || st.Entries < 0 {
		t.Errorf("accounting went negative: %+v", st)
	}
}
