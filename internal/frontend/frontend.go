// Package frontend implements the ROAR front-end server (§4.8): it
// receives client queries, admits them through a bounded in-flight
// window, splits them into sub-queries with the Algorithm 1 scheduler,
// dispatches them over pooled TCP connections through a bounded worker
// pool with a per-node outstanding-credit cap (backpressure: a slow
// node stalls only its own dispatch stream), hedges slow sub-queries
// onto replica nodes before the failure timer fires (first response
// wins, the loser is cancelled down to the remote matcher), detects
// node failures through per-sub-query timers, re-dispatches around
// failures with the §4.4 fallback, merges and deduplicates results
// incrementally as sub-responses stream in, and maintains per-server
// processing-speed EWMAs from observed completions. Failure suspicion
// is revocable: suspected nodes are probed in the background and
// rescheduled once they answer (healthy → suspected → recovering, see
// health.go), instead of the seed's permanent one-way failure mark.
package frontend

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"roar/internal/core"
	"roar/internal/pps"
	"roar/internal/proto"
	"roar/internal/ring"
	"roar/internal/stats"
	"roar/internal/wire"
)

// defaultProbeInterval is the recovery-probe cadence when none is
// configured.
const defaultProbeInterval = 500 * time.Millisecond

// Config tunes a frontend.
type Config struct {
	// Name identifies this frontend in health reports to the membership
	// server (its listen address, or any stable label). Optional.
	Name string
	// PQ forces the query partitioning level; 0 uses the view's safe p.
	PQ int
	// RangeAdjust enables the §4.8.2 boundary-shifting optimisation.
	RangeAdjust bool
	// MaxSplits enables slow-sub-query splitting up to this many extra
	// sub-queries per query.
	MaxSplits int
	// SubQueryTimeout is the failure-detection timer (§4.8). Default 5s.
	SubQueryTimeout time.Duration
	// SpeedAlpha is the EWMA smoothing for speed estimates. Default 0.1.
	SpeedAlpha float64
	// InitialSpeed seeds estimates for unseen nodes, in id-space
	// fraction per second. Default 1.
	InitialSpeed float64
	// Seed for the failure-fallback randomness.
	Seed int64

	// PoolSize is the per-node wire connection pool width (default 1).
	// Larger pools keep sub-query writes from serialising behind one
	// connection at high query concurrency.
	PoolSize int
	// MaxInFlight caps concurrently executing queries (admission
	// control). Excess Execute calls queue until a slot frees, their
	// context ends, or QueueTimeout elapses. 0 = unlimited.
	MaxInFlight int
	// QueueTimeout bounds the admission wait when MaxInFlight is set;
	// 0 waits as long as the caller's context allows.
	QueueTimeout time.Duration
	// DispatchWorkers bounds concurrent sub-query RPCs across all
	// in-flight queries (shared dispatch worker pool). 0 = unlimited.
	DispatchWorkers int

	// NodeMaxOutstanding caps concurrent in-flight sub-query RPCs per
	// node (per-node backpressure): dispatch to a backed-up node blocks
	// on its own credit channel, before a shared dispatch-worker slot
	// is taken, so one slow node cannot inflate every query's tail by
	// draining the global pool. 0 = unlimited.
	NodeMaxOutstanding int
	// HedgeDelay launches a speculative replica re-dispatch for a
	// sub-query still unanswered after this long (must be below
	// SubQueryTimeout to matter). 0 disables hedging unless
	// HedgeQuantile produces an adaptive delay.
	HedgeDelay time.Duration
	// HedgeQuantile, in (0, 1), derives the hedge delay from that
	// quantile of recently observed sub-query latencies (e.g. 0.95
	// hedges the slowest ~5%). HedgeDelay then acts as the floor and
	// the cold-start value. 0 uses the fixed HedgeDelay only.
	HedgeQuantile float64
	// ProbeInterval is the cadence of the background probe that
	// re-evaluates suspected nodes. 0 defaults to 500ms; negative
	// disables probing (suspicion then clears only via view retention
	// or a successful hedge contact).
	ProbeInterval time.Duration

	// HedgeBudgetFraction rate-limits hedging: every primary sub-query
	// dispatch earns this many tokens, every hedged replica leg spends
	// one, so hedged legs stay ≤ fraction × primaries + burst even when
	// the whole cluster is slow (Kraus et al.: hedging only pays off
	// rate-limited). 0 uses the default 0.05 (≤5% of sub-queries);
	// negative disables the budget entirely.
	HedgeBudgetFraction float64
	// HedgeBudgetBurst is the token-bucket capacity and initial
	// balance. 0 uses the default 4.
	HedgeBudgetBurst float64
	// HedgeMaxPerQuery caps hedged replica legs launched for a single
	// query. 0 = unlimited (the global budget still applies).
	HedgeMaxPerQuery int
	// ShedHighWater, when positive, is the mean node-reported queue
	// depth at which the frontend declares overload: hedging pauses and
	// PriorityLow admissions are rejected with ErrShed. 0 disables.
	ShedHighWater int

	// CacheBudget bounds the result cache's resident bytes (keys, id
	// payloads, and per-entry overhead). 0 disables caching entirely.
	CacheBudget int64
	// CacheShards is the cache's lock-shard count (default 16).
	CacheShards int
	// TenantRate is each tenant's admission-quota refill, in queries
	// per second. 0 disables quota enforcement (per-tenant counters are
	// kept regardless); see tenant.go for the work-conserving semantics.
	TenantRate float64
	// TenantBurst is the quota bucket capacity (default max(rate, 8)).
	TenantBurst float64
}

// Priority classes admission control distinguishes under overload.
type Priority int

const (
	// PriorityBulk marks background batch work: shed under overload
	// like PriorityLow, and additionally metered by the tenant quota
	// even when the admission pool is idle.
	PriorityBulk Priority = -2
	// PriorityLow marks sheddable work: rejected first when the
	// cluster's reported queue depths cross the shed high-water mark.
	PriorityLow Priority = -1
	// PriorityNormal is the default class (zero value).
	PriorityNormal Priority = 0
	// PriorityHigh is never shed and bypasses the tenant quota.
	PriorityHigh Priority = 1
)

// ExecOptions carries per-query execution options.
type ExecOptions struct {
	Priority Priority
}

// ErrOverloaded is returned when a query waits longer than QueueTimeout
// for an admission slot.
var ErrOverloaded = errors.New("frontend: overloaded, admission queue timeout")

// ErrShed is returned to PriorityLow queries rejected at admission
// while the frontend is over its shed high-water mark.
var ErrShed = errors.New("frontend: overloaded, sheddable query rejected")

// Result is one executed query.
type Result struct {
	IDs          []uint64
	Delay        time.Duration
	Queue        time.Duration // admission-control wait
	Schedule     time.Duration // plan computation (Fig 7.11 breakdown)
	Dispatch     time.Duration // network + remote matching
	Merge        time.Duration // result assembly + dedup
	SubQueries   int           // sub-queries sent (grows on failures and hedges)
	Failures     int           // failed sub-queries recovered
	Hedges       int           // speculative replica dispatches launched
	HedgedSubs   int           // hedged replica legs sent (budget denominator)
	HedgesDenied int           // hedges suppressed by budget, cap, or overload
	HedgeWins    int           // hedges that answered before the primary
	Scanned      int           // objects scanned across nodes
	// Source attributes the answer: SourceCache (result cache or
	// coalesced fan-out), SourceHedged (fan-out with hedged legs), or
	// SourceFanout. Empty only on error.
	Source string
	// Cache snapshots the result-cache counters at completion (zero
	// value when caching is disabled).
	Cache CacheStats
}

// Frontend schedules and executes queries against a node view.
type Frontend struct {
	cfg Config
	qid atomic.Uint64 // query ids for tracing

	mu    sync.RWMutex
	view  proto.View
	pl    *core.Placement
	nodes map[ring.NodeID]*handle
	// Execution-pipeline state, swappable at runtime by view tuning.
	tune    tuning
	admit   chan struct{} // admission slots (nil = unlimited)
	workers chan struct{} // dispatch worker slots (nil = unlimited)

	lat latTracker // recent sub-query latencies (adaptive hedge delay)
	// nodeLat holds per-node latency distributions: a node serving a
	// naturally large arc is judged against its own history, not the
	// fleet's, once it has enough samples (guarded by f.mu).
	nodeLat map[ring.NodeID]*latTracker

	budget    *hedgeBudget  // hedge rate limit; nil = un-budgeted (guarded by f.mu)
	shed      atomic.Int64  // PriorityLow queries shed since the last health report
	shedNorm  atomic.Int64  // queries rejected on admission-queue timeout since the last report
	hdgDenied atomic.Int64  // hedges denied (budget/cap/overload) since the last report
	queueLat  latTracker    // admission-queue waits of admitted queries (report digest)
	reportSeq atomic.Uint64 // health report sequence numbers

	// Result cache (nil when Config.CacheBudget is 0) and its fence.
	// cacheGen advances on every strictly-newer view install and every
	// ingest-watermark advance (ObserveIngest); entries from older
	// generations are unservable. ingSeq/ingDrained are the high-water
	// ingest observations backing that monotonicity.
	cache      *resultCache
	cacheGen   atomic.Uint64
	ingSeq     atomic.Uint64
	ingDrained atomic.Uint64
	// tenants is the per-tenant quota and accounting ledger (always
	// non-nil; quota enforcement off when Config.TenantRate is 0).
	tenants *tenantTable

	stop      chan struct{} // stops the background prober
	closeOnce sync.Once
	// lifeCtx scopes work owned by the frontend itself (probe RPCs)
	// rather than by a caller; Close cancels it so in-flight probes
	// abort instead of running out their timeouts against dead peers.
	lifeCtx    context.Context
	lifeCancel context.CancelFunc

	// Injected clock. All latency measurement and timer arming in the
	// execute/hedge/probe paths goes through these three so tests can
	// drive the pipeline on a fake clock; the wall-clock defaults in
	// New are the package's only sanctioned time touchpoints.
	nowFn   func() time.Time
	timerFn func(time.Duration) *time.Timer
	afterFn func(time.Duration) <-chan time.Time

	rngMu sync.Mutex
	rng   *rand.Rand

	statMu    sync.Mutex
	queueS    *stats.Sample
	schedS    *stats.Sample
	dispatchS *stats.Sample
	mergeS    *stats.Sample
	totalS    *stats.Sample
	hitS      *stats.Sample // cache-hit delays, kept out of the fan-out phases
}

// tuning is the effective execution-pipeline configuration: Config
// defaults, overridden per field by the view's proto.Tuning.
type tuning struct {
	poolSize           int
	maxInFlight        int
	dispatchWorkers    int
	queueTimeout       time.Duration
	nodeMaxOutstanding int
	hedgeDelay         time.Duration
	hedgeQuantile      float64
	probeInterval      time.Duration
	hedgeBudgetFrac    float64 // resolved: >0 budgeted, <0 unlimited
	hedgeBudgetBurst   float64
	hedgeMaxPerQuery   int
	shedHighWater      int
}

func (f *Frontend) baseTuning() tuning {
	frac := f.cfg.HedgeBudgetFraction
	if frac == 0 {
		frac = defaultHedgeBudgetFraction
	}
	burst := f.cfg.HedgeBudgetBurst
	if burst <= 0 {
		burst = defaultHedgeBudgetBurst
	}
	return tuning{
		poolSize:           f.cfg.PoolSize,
		maxInFlight:        f.cfg.MaxInFlight,
		dispatchWorkers:    f.cfg.DispatchWorkers,
		queueTimeout:       f.cfg.QueueTimeout,
		nodeMaxOutstanding: f.cfg.NodeMaxOutstanding,
		hedgeDelay:         f.cfg.HedgeDelay,
		hedgeQuantile:      f.cfg.HedgeQuantile,
		probeInterval:      f.cfg.ProbeInterval,
		hedgeBudgetFrac:    frac,
		hedgeBudgetBurst:   burst,
		hedgeMaxPerQuery:   f.cfg.HedgeMaxPerQuery,
		shedHighWater:      f.cfg.ShedHighWater,
	}
}

// merge overlays non-zero view tuning fields on the config baseline.
func (t tuning) merge(pt *proto.Tuning) tuning {
	if pt == nil {
		return t
	}
	if pt.PoolSize > 0 {
		t.poolSize = pt.PoolSize
	}
	if pt.MaxInFlight > 0 {
		t.maxInFlight = pt.MaxInFlight
	}
	if pt.DispatchWorkers > 0 {
		t.dispatchWorkers = pt.DispatchWorkers
	}
	if pt.QueueTimeoutNanos > 0 {
		t.queueTimeout = time.Duration(pt.QueueTimeoutNanos)
	}
	if pt.NodeMaxOutstanding > 0 {
		t.nodeMaxOutstanding = pt.NodeMaxOutstanding
	}
	if pt.HedgeDelayNanos > 0 {
		t.hedgeDelay = time.Duration(pt.HedgeDelayNanos)
	}
	if pt.HedgeQuantile > 0 {
		t.hedgeQuantile = pt.HedgeQuantile
	}
	if pt.ProbeIntervalNanos > 0 {
		t.probeInterval = time.Duration(pt.ProbeIntervalNanos)
	}
	if pt.HedgeBudgetFraction != 0 {
		t.hedgeBudgetFrac = pt.HedgeBudgetFraction
	}
	if pt.HedgeBudgetBurst > 0 {
		t.hedgeBudgetBurst = pt.HedgeBudgetBurst
	}
	if pt.HedgeMaxPerQuery > 0 {
		t.hedgeMaxPerQuery = pt.HedgeMaxPerQuery
	}
	if pt.ShedHighWater > 0 {
		t.shedHighWater = pt.ShedHighWater
	}
	return t
}

// newBudget builds the hedge token bucket for a tuning state; nil when
// the budget is disabled (negative fraction).
func (t tuning) newBudget() *hedgeBudget {
	if t.hedgeBudgetFrac < 0 {
		return nil
	}
	return newHedgeBudget(t.hedgeBudgetFrac, t.hedgeBudgetBurst, nil)
}

func semaphore(n int) chan struct{} {
	if n <= 0 {
		return nil
	}
	return make(chan struct{}, n)
}

// New builds a frontend with no view; call ApplyView before Execute.
func New(cfg Config) *Frontend {
	if cfg.SubQueryTimeout <= 0 {
		cfg.SubQueryTimeout = 5 * time.Second
	}
	if cfg.SpeedAlpha <= 0 {
		cfg.SpeedAlpha = 0.1
	}
	if cfg.InitialSpeed <= 0 {
		cfg.InitialSpeed = 1
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 1
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = defaultProbeInterval
	}
	f := &Frontend{
		cfg:       cfg,
		nodes:     make(map[ring.NodeID]*handle),
		nodeLat:   make(map[ring.NodeID]*latTracker),
		stop:      make(chan struct{}),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		queueS:    stats.NewSample(0),
		schedS:    stats.NewSample(0),
		dispatchS: stats.NewSample(0),
		mergeS:    stats.NewSample(0),
		totalS:    stats.NewSample(0),
		hitS:      stats.NewSample(0),
	}
	f.nowFn = time.Now                                                 //lint:allow wallclock — clock-injection default
	f.timerFn = time.NewTimer                                          //lint:allow wallclock — clock-injection default
	f.afterFn = time.After                                             //lint:allow wallclock — clock-injection default
	f.lifeCtx, f.lifeCancel = context.WithCancel(context.Background()) //lint:allow background — frontend lifetime root, cancelled in Close
	f.cache = newResultCache(cfg.CacheBudget, cfg.CacheShards)
	f.tenants = newTenantTable(cfg.TenantRate, cfg.TenantBurst, func() time.Time { return f.nowFn() })
	f.tune = f.baseTuning()
	f.admit = semaphore(f.tune.maxInFlight)
	f.workers = semaphore(f.tune.dispatchWorkers)
	f.budget = f.tune.newBudget()
	go f.probeLoop()
	return f
}

// ErrStaleView rejects a view older than the installed one. With a
// replicated control plane a deposed leader can keep publishing views
// for up to a lease after losing its majority; fencing on (Term, Epoch)
// keeps those from rolling the data plane back.
var ErrStaleView = errors.New("frontend: stale view from deposed or lagging coordinator")

// viewOlder orders views by (Term, Epoch) lexicographically: terms fence
// leader generations, epochs order one leader's publishes. Equal views
// are not "older" — re-applying the installed view is a no-op refresh.
func viewOlder(v, installed proto.View) bool {
	if v.Term != installed.Term {
		return v.Term < installed.Term
	}
	return v.Epoch < installed.Epoch
}

// ApplyView installs a membership snapshot: it rebuilds the ring
// placement and node clients. Speed estimates of retained nodes are
// preserved and their failure suspicion is cleared — the membership
// layer retaining a node is its assertion that the node deserves
// re-evaluation (§4.8 suspicion must not ratchet). A retained node's
// connection pool is rebuilt when the effective pool width retunes.
// Nodes absent from the view are closed and forgotten (§4.8.3: a
// rejoining backup relearns statistics quickly).
//
// Views are fenced: once a view is installed, a view strictly older by
// (Term, Epoch) returns ErrStaleView and changes nothing.
func (f *Frontend) ApplyView(v proto.View) error {
	f.mu.RLock()
	stale := f.pl != nil && viewOlder(v, f.view)
	f.mu.RUnlock()
	if stale {
		return ErrStaleView
	}
	byRing := map[int]*ring.Ring{}
	maxRing := 0
	for _, ni := range v.Nodes {
		if ni.Ring > maxRing {
			maxRing = ni.Ring
		}
	}
	for k := 0; k <= maxRing; k++ {
		byRing[k] = ring.New()
	}
	for _, ni := range v.Nodes {
		if err := byRing[ni.Ring].Insert(ring.NodeID(ni.ID), ring.Norm(ni.Start)); err != nil {
			return fmt.Errorf("frontend: applying view: %w", err)
		}
	}
	rings := make([]*ring.Ring, 0, len(byRing))
	for k := 0; k <= maxRing; k++ {
		if byRing[k].Len() > 0 {
			rings = append(rings, byRing[k])
		}
	}
	if len(rings) == 0 {
		return fmt.Errorf("frontend: view has no nodes")
	}
	pl, err := core.NewPlacement(v.P, rings...)
	if err != nil {
		return fmt.Errorf("frontend: applying view: %w", err)
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	// Re-check the fence under the write lock: a newer view may have
	// been installed while this one was building its placement.
	if f.pl != nil && viewOlder(v, f.view) {
		return ErrStaleView
	}
	// A strictly newer (Term, Epoch) invalidates the result cache:
	// placement, quarantine, or membership moved, so cached merges may
	// no longer reflect what a fan-out would return. Re-applying the
	// installed view (the harness's SyncView refresh, a poll answering
	// with the same epoch) must NOT — it proves nothing changed.
	newer := f.pl == nil || v.Term > f.view.Term || (v.Term == f.view.Term && v.Epoch > f.view.Epoch)
	// Apply execution-pipeline tuning pushed with the view (§4.9-style
	// central control). Resized semaphores only govern newly admitted
	// work; queries holding a slot release onto the channel they
	// captured, so a brief transition can exceed the new bound.
	tune := f.baseTuning().merge(v.Tuning)
	if tune.maxInFlight != f.tune.maxInFlight {
		f.admit = semaphore(tune.maxInFlight)
	}
	if tune.dispatchWorkers != f.tune.dispatchWorkers {
		f.workers = semaphore(tune.dispatchWorkers)
	}
	if tune.hedgeBudgetFrac != f.tune.hedgeBudgetFrac || tune.hedgeBudgetBurst != f.tune.hedgeBudgetBurst {
		f.budget = tune.newBudget()
	}
	f.tune = tune
	seen := map[ring.NodeID]bool{}
	for _, ni := range v.Nodes {
		id := ring.NodeID(ni.ID)
		seen[id] = true
		if h, ok := f.nodes[id]; ok && h.addr == ni.Addr {
			// Retained node: keep the speed estimate, re-evaluate
			// suspicion, and retune the mutable transport state.
			h.mu.Lock()
			if h.client.PoolSize() != tune.poolSize {
				// Swap in the rebuilt pool and drain the old client
				// gracefully: in-flight calls on the old pool run to
				// completion (bounded by the sub-query timeout) instead
				// of failing over through the retry path, and the old
				// sockets close as soon as the last call finishes. A
				// sender that snapshotted the old client but had not
				// called yet sees ErrClosed and retries on the new pool
				// (sendSub), so a pure config change never produces
				// failure evidence.
				old := h.client
				h.client = wire.NewClientWithConfig(ni.Addr, wire.ClientConfig{PoolSize: tune.poolSize})
				go old.DrainClose(f.cfg.SubQueryTimeout)
			}
			if cap(h.credits) != tune.nodeMaxOutstanding {
				// In-flight senders release onto the channel they
				// captured; only new dispatches see the new cap.
				h.credits = semaphore(tune.nodeMaxOutstanding)
			}
			h.mu.Unlock()
			// The view's health verdict wins over local state: a
			// quarantine demotes the node whatever we observed, and a
			// retained, un-quarantined node deserves re-evaluation.
			if ni.Quarantined {
				h.setQuarantined()
			} else {
				h.clearSuspicion()
			}
			continue
		}
		if h, ok := f.nodes[id]; ok {
			h.wireClient().Close()
		}
		sp := stats.NewEWMA(f.cfg.SpeedAlpha)
		sp.Set(f.cfg.InitialSpeed)
		cl := wire.NewClientWithConfig(ni.Addr, wire.ClientConfig{PoolSize: tune.poolSize})
		h := &handle{
			id: id, addr: ni.Addr, client: cl, speed: sp,
			credits: semaphore(tune.nodeMaxOutstanding),
		}
		if ni.Quarantined {
			h.state = stateQuarantined
		}
		f.nodes[id] = h
	}
	for id, h := range f.nodes {
		if !seen[id] {
			h.wireClient().Close()
			delete(f.nodes, id)
			delete(f.nodeLat, id)
		}
	}
	f.view = v
	f.pl = pl
	if newer && f.cache != nil {
		f.cacheGen.Add(1)
	}
	// The view also carries the coordinator's ingest watermarks; feed
	// them through the same fence (atomics — safe under f.mu).
	f.ObserveIngest(v.Ingested, v.Drained)
	return nil
}

// View returns the installed view.
func (f *Frontend) View() proto.View {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.view
}

// Close stops the background prober and shuts all node clients.
func (f *Frontend) Close() {
	f.closeOnce.Do(func() {
		close(f.stop)
		f.lifeCancel()
	})
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, h := range f.nodes {
		h.wireClient().Close()
	}
	f.nodes = map[ring.NodeID]*handle{}
}

// SpeedEstimates exports the EWMA speeds for membership reports.
func (f *Frontend) SpeedEstimates() map[int]float64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make(map[int]float64, len(f.nodes))
	for id, h := range f.nodes {
		if v, ok := h.speed.Value(); ok {
			out[int(id)] = v
		}
	}
	return out
}

// estimator builds the scheduling estimator from EWMAs, in-flight work,
// and the queue depth nodes report with every response (§4.8:
// outstanding queries and their expected finish times). Suspected
// nodes are effectively unschedulable; recovering nodes compete
// normally so they are actually re-used after recovery.
func (f *Frontend) estimator() core.Estimator {
	return core.EstimatorFunc(func(id ring.NodeID, size float64) float64 {
		f.mu.RLock()
		h := f.nodes[id]
		f.mu.RUnlock()
		if h == nil {
			return 1e12
		}
		st, out, depth := h.loadSnapshot()
		if st == stateSuspected || st == stateQuarantined {
			return 1e12 // unschedulable until a probe or view clears it
		}
		sp, _ := h.speed.Value()
		if sp <= 0 {
			sp = f.cfg.InitialSpeed
		}
		// Pending load: our own outstanding sub-query sizes, or the
		// node's self-reported queue depth scaled to this sub-query's
		// span — whichever is larger. The remote depth includes our own
		// in-flight work, so taking the max avoids double counting
		// while still seeing competing frontends' load.
		load := out
		if r := float64(depth) * size; r > load {
			load = r
		}
		return (load + size) / sp
	})
}

// QuerySpec is one query: its payload for the pluggable node data
// planes — Enc, the PPS encrypted query (the default), or Plain, which
// routes to the nodes' roaring-bitmap index matcher — plus the
// admission and caching options. The scheduling, hedging,
// failure-recovery, and merge pipeline is identical for both planes.
type QuerySpec struct {
	Enc   pps.Query
	Plain *proto.PlainQuery

	// Tenant names the accounting principal for quota and telemetry;
	// empty is the anonymous tenant.
	Tenant string
	// Priority selects the admission class (PriorityNormal when zero).
	Priority Priority
	// CacheControl is one of proto.CacheDefault / CacheBypass /
	// CacheRefresh; unknown values behave as CacheDefault.
	CacheControl uint8
}

// Query runs one query end to end: result-cache lookup, single-flight
// coalescing, admission (overload shed, tenant quota, in-flight
// window), scheduling, pipelined dispatch with hedging, and streaming
// merge. It subsumes the deprecated Execute/ExecuteOpts/ExecutePlain/
// ExecuteSpec quartet.
//
// Cache hits bypass admission entirely — they consume no slot, no
// quota token, and no dispatch worker, which is the point of having
// the cache. A miss that finds another query already fanning out for
// the same key and generation waits for that flight instead of
// dispatching its own; if the flight fails, the waiter falls back to a
// full execution of its own, so coalescing can only remove work.
func (f *Frontend) Query(ctx context.Context, spec QuerySpec) (Result, error) {
	t0 := f.nowFn()
	c := f.cache
	cc := cacheControl(spec.CacheControl)
	var key string
	var gen uint64
	if c != nil && cc != proto.CacheBypass {
		key = cacheKey(spec)
		gen = f.cacheGen.Load()
		if cc == proto.CacheDefault {
			if ids, ok := c.get(key, gen); ok {
				f.tenants.noteCacheHit(spec.Tenant)
				delay := f.nowFn().Sub(t0)
				f.statMu.Lock()
				f.hitS.Add(delay.Seconds())
				f.statMu.Unlock()
				return Result{IDs: ids, Delay: delay, Source: SourceCache, Cache: c.stats()}, nil
			}
			f.tenants.noteCacheMiss(spec.Tenant)
			if fl, leader := c.startFlight(key, gen); !leader {
				select {
				case <-fl.done:
				case <-ctx.Done():
					return Result{}, ctx.Err()
				}
				if fl.err == nil {
					c.noteCoalesced()
					f.tenants.noteCacheHit(spec.Tenant)
					ids := make([]uint64, len(fl.ids))
					copy(ids, fl.ids)
					delay := f.nowFn().Sub(t0)
					f.statMu.Lock()
					f.hitS.Add(delay.Seconds())
					f.statMu.Unlock()
					return Result{IDs: ids, Delay: delay, Source: SourceCache, Cache: c.stats()}, nil
				}
				// The leader failed (shed, timeout, fan-out error); its
				// failure is not necessarily ours. Execute independently.
				return f.execute(ctx, spec, t0, key, gen)
			} else if fl != nil {
				res, err := f.execute(ctx, spec, t0, key, gen)
				c.finishFlight(key, fl, res.IDs, err)
				return res, err
			}
			// fl == nil: a stale-generation flight is still draining;
			// lead unregistered rather than inherit its fenced result.
			return f.execute(ctx, spec, t0, key, gen)
		}
		f.tenants.noteCacheMiss(spec.Tenant) // CacheRefresh: forced miss
	}
	return f.execute(ctx, spec, t0, key, gen)
}

// Execute runs one encrypted query end to end at PriorityNormal.
//
// Deprecated: use Query with QuerySpec{Enc: q}.
func (f *Frontend) Execute(ctx context.Context, q pps.Query) (Result, error) {
	return f.Query(ctx, QuerySpec{Enc: q})
}

// ExecuteOpts is Execute with explicit per-query options.
//
// Deprecated: use Query; QuerySpec carries Priority directly.
func (f *Frontend) ExecuteOpts(ctx context.Context, q pps.Query, opts ExecOptions) (Result, error) {
	return f.Query(ctx, QuerySpec{Enc: q, Priority: opts.Priority})
}

// ExecutePlain runs one plaintext index query at PriorityNormal. Each
// node returns at most pq.Limit of the numerically-smallest ids in its
// arc; the merged result is cut to the same global top-k after the
// final sort, so the answer matches a single-index evaluation.
//
// Deprecated: use Query with QuerySpec{Plain: &pq}.
func (f *Frontend) ExecutePlain(ctx context.Context, pq proto.PlainQuery) (Result, error) {
	return f.Query(ctx, QuerySpec{Plain: &pq})
}

// ExecuteSpec is the pre-cache entry point: any data plane, any
// options.
//
// Deprecated: use Query; QuerySpec absorbed ExecOptions.
func (f *Frontend) ExecuteSpec(ctx context.Context, spec QuerySpec, opts ExecOptions) (Result, error) {
	if spec.Priority == PriorityNormal {
		spec.Priority = opts.Priority
	}
	return f.Query(ctx, spec)
}

// execute is the uncached pipeline: admission (overload shed, tenant
// quota, in-flight window), scheduling, dispatch, merge, and — when key
// is non-empty, the query succeeded, and the generation fence has not
// moved — the cache store. PriorityLow and PriorityBulk queries are
// shed with ErrShed — before consuming an admission slot — while the
// cluster's reported queue depths are over the shed high-water mark.
func (f *Frontend) execute(ctx context.Context, spec QuerySpec, t0 time.Time, key string, gen uint64) (Result, error) {
	if spec.Priority < PriorityNormal && f.overloaded() {
		f.shed.Add(1)
		f.tenants.noteShed(spec.Tenant)
		return Result{}, ErrShed
	}
	f.mu.RLock()
	admit := f.admit
	queueTO := f.tune.queueTimeout
	f.mu.RUnlock()
	// Tenant quota: decided before queueing for a slot, against the
	// pool's current contention (all slots taken = contended), so a
	// over-quota tenant is turned away while compliant tenants queue.
	contended := admit != nil && len(admit) == cap(admit)
	if !f.tenantAdmit(spec.Tenant, spec.Priority, contended) {
		f.tenants.noteShed(spec.Tenant)
		return Result{}, ErrTenantShed
	}
	if admit != nil {
		var timeout <-chan time.Time
		if queueTO > 0 {
			tm := f.timerFn(queueTO)
			defer tm.Stop()
			timeout = tm.C
		}
		select {
		case admit <- struct{}{}:
			// Release to the same channel we acquired from, even if a
			// view swaps f.admit while we run.
			defer func() { <-admit }()
		case <-ctx.Done():
			return Result{}, ctx.Err()
		case <-timeout:
			f.shedNorm.Add(1)
			return Result{}, ErrOverloaded
		}
	}
	queueDur := f.nowFn().Sub(t0)
	f.queueLat.observe(queueDur)
	f.tenants.noteAdmitted(spec.Tenant)

	tSched := f.nowFn()
	f.mu.RLock()
	pl := f.pl
	pq := f.cfg.PQ
	if pq == 0 || pq < f.view.P {
		pq = f.view.P
	}
	workers := f.workers
	f.mu.RUnlock()
	if pl == nil {
		return Result{}, fmt.Errorf("frontend: no view installed")
	}
	suspected := f.suspectedSet()

	est := f.estimator()
	plan, err := pl.Schedule(pq, est)
	if err != nil {
		return Result{}, fmt.Errorf("frontend: scheduling: %w", err)
	}
	if f.cfg.RangeAdjust {
		plan = pl.AdjustRanges(plan, est, 8)
	}
	if f.cfg.MaxSplits > 0 {
		plan = pl.SplitSlowest(plan, est, f.cfg.MaxSplits)
	}
	if len(suspected) > 0 {
		f.rngMu.Lock()
		plan, err = pl.RepairPlan(plan, suspected, est, f.rng)
		f.rngMu.Unlock()
		if err != nil {
			return Result{}, fmt.Errorf("frontend: repairing plan: %w", err)
		}
	}
	schedDur := f.nowFn().Sub(tSched)

	// Dispatch all sub-queries through the shared worker pool with
	// per-sub timers and hedging, deduplicating into the aggregator as
	// responses stream in.
	t1 := f.nowFn()
	agg := &aggregator{
		qid:     f.qid.Add(1),
		seen:    make(map[uint64]struct{}),
		workers: workers,
	}
	f.dispatchAll(ctx, pl, est, spec, plan.Subs, 0, agg)
	dispatchDur := f.nowFn().Sub(t1)

	// Merge: responses were deduplicated on arrival, so only the final
	// ordering remains — plus the global top-k cut for limited plaintext
	// queries (each node returned its arc-local smallest ids; the global
	// smallest k are a subset of their union).
	t2 := f.nowFn()
	ids := agg.ids
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	if spec.Plain != nil && spec.Plain.Limit > 0 && len(ids) > spec.Plain.Limit {
		ids = ids[:spec.Plain.Limit]
	}
	mergeDur := f.nowFn().Sub(t2)

	out := Result{
		IDs:          ids,
		Delay:        f.nowFn().Sub(t0),
		Queue:        queueDur,
		Schedule:     schedDur,
		Dispatch:     dispatchDur,
		Merge:        mergeDur,
		SubQueries:   agg.sent,
		Failures:     agg.failures,
		Hedges:       agg.hedges,
		HedgedSubs:   agg.hedgedSubs,
		HedgesDenied: agg.hedgesDenied,
		HedgeWins:    agg.hedgeWins,
		Scanned:      agg.scanned,
		Source:       SourceFanout,
	}
	if out.Hedges > 0 {
		out.Source = SourceHedged
	}
	if f.cache != nil {
		out.Cache = f.cache.stats()
	}
	if out.HedgesDenied > 0 {
		f.hdgDenied.Add(int64(out.HedgesDenied))
	}
	// Record the phase breakdown before the error check: failed queries
	// are exactly the ones whose delay anatomy the breakdown must not
	// undercount.
	f.statMu.Lock()
	f.queueS.Add(queueDur.Seconds())
	f.schedS.Add(schedDur.Seconds())
	f.dispatchS.Add(dispatchDur.Seconds())
	f.mergeS.Add(mergeDur.Seconds())
	f.totalS.Add(out.Delay.Seconds())
	f.statMu.Unlock()
	if agg.err != nil {
		return out, agg.err
	}
	// Store only results still provably current: if the generation
	// moved while the fan-out ran (a view installed, a write was
	// observed), this merge may predate the change — serving it later
	// would be exactly the stale hit the fence exists to prevent.
	if f.cache != nil && key != "" && gen == f.cacheGen.Load() {
		f.cache.put(key, out.IDs, gen)
	}
	return out, nil
}

// aggregator accumulates one query's streaming results across the
// dispatch recursion. Duplicate ids (from replica overlap after hedged
// or failure re-dispatch) are discarded on arrival rather than
// buffered.
type aggregator struct {
	qid     uint64
	workers chan struct{} // nil = unbounded

	mu           sync.Mutex
	seen         map[uint64]struct{}
	ids          []uint64
	sent         int
	failures     int
	hedges       int
	hedgedSubs   int
	hedgesDenied int
	hedgeWins    int
	scanned      int
	err          error
}

func (a *aggregator) add(resp proto.QueryResp) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, id := range resp.IDs {
		if _, dup := a.seen[id]; !dup {
			a.seen[id] = struct{}{}
			a.ids = append(a.ids, id)
		}
	}
	a.scanned += resp.Scanned
}

func (a *aggregator) fail(err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.err == nil {
		a.err = err
	}
}

func (a *aggregator) countSent(n int) {
	a.mu.Lock()
	a.sent += n
	a.mu.Unlock()
}

func (a *aggregator) countFailure() {
	a.mu.Lock()
	a.failures++
	a.mu.Unlock()
}

// hedgeLaunched counts one hedge of n replica legs; the legs also count
// as sent sub-queries.
func (a *aggregator) hedgeLaunched(n int) {
	a.mu.Lock()
	a.hedges++
	a.hedgedSubs += n
	a.sent += n
	a.mu.Unlock()
}

// hedgeDenied counts a hedge suppressed by the budget, the per-query
// cap, or overload.
func (a *aggregator) hedgeDenied() {
	a.mu.Lock()
	a.hedgesDenied++
	a.mu.Unlock()
}

// hedgedCount reports the hedged legs launched so far for this query
// (per-query cap accounting).
func (a *aggregator) hedgedCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.hedgedSubs
}

func (a *aggregator) hedgeWon() {
	a.mu.Lock()
	a.hedgeWins++
	a.mu.Unlock()
}

// dispatchAll sends sub-queries concurrently; each one races a hedge
// (hedge.go) when enabled. A sub-query that fails on every leg is split
// per §4.4 and re-dispatched (bounded depth to terminate under mass
// failure).
func (f *Frontend) dispatchAll(ctx context.Context, pl *core.Placement, est core.Estimator, spec QuerySpec, subs []core.SubQuery, depth int, agg *aggregator) {
	const maxDepth = 4
	var wg sync.WaitGroup
	agg.countSent(len(subs))
	for _, sub := range subs {
		wg.Add(1)
		go func(sub core.SubQuery) {
			defer wg.Done()
			err := f.sendSubHedged(ctx, pl, est, agg, spec, sub)
			if err == nil {
				return
			}
			if ctx.Err() != nil {
				agg.fail(ctx.Err())
				return
			}
			// Failure path: the node is already suspected; split the
			// sub-query in two around it (§4.4) and retry.
			agg.countFailure()
			if depth >= maxDepth {
				agg.fail(fmt.Errorf("frontend: sub-query (%v,%v] failed beyond retry depth: %w", sub.Lo, sub.Hi, err))
				return
			}
			suspected := f.suspectedSet()
			f.rngMu.Lock()
			repaired, rerr := pl.RepairPlan(core.Plan{Subs: []core.SubQuery{sub}}, suspected, est, f.rng)
			f.rngMu.Unlock()
			if rerr != nil {
				agg.fail(fmt.Errorf("frontend: cannot re-place failed sub-query: %w", rerr))
				return
			}
			f.dispatchAll(ctx, pl, est, spec, repaired.Subs, depth+1, agg)
		}(sub)
	}
	wg.Wait()
}

// sendSub executes one sub-query RPC with its timer. It first takes the
// node's outstanding credit (per-node backpressure: a backed-up node
// queues dispatches on its own stream), then a shared dispatch-worker
// slot — in that order, so a stalled node never drains the global pool.
// Both are released when the RPC completes, before any retry recursion.
// A non-nil started channel is closed once both are held and the RPC is
// about to go out — the hedge timer keys off it so local queueing never
// counts as remote slowness.
func (f *Frontend) sendSub(ctx context.Context, workers chan struct{}, qid uint64, spec QuerySpec, sub core.SubQuery, started chan<- struct{}) (proto.QueryResp, error) {
	f.mu.RLock()
	h := f.nodes[sub.Node]
	f.mu.RUnlock()
	if h == nil {
		return proto.QueryResp{}, fmt.Errorf("frontend: no handle for node %d", sub.Node)
	}
	h.mu.Lock()
	credits := h.credits
	h.mu.Unlock()
	if credits != nil {
		select {
		case credits <- struct{}{}:
			defer func() { <-credits }()
		case <-ctx.Done():
			return proto.QueryResp{}, ctx.Err()
		}
	}
	if workers != nil {
		select {
		case workers <- struct{}{}:
			defer func() { <-workers }()
		case <-ctx.Done():
			return proto.QueryResp{}, ctx.Err()
		}
	}
	if started != nil {
		close(started)
	}
	size := sub.Size()
	h.mu.Lock()
	h.outstanding += size
	h.mu.Unlock()
	defer func() {
		h.mu.Lock()
		h.outstanding -= size
		h.mu.Unlock()
	}()

	cctx, cancel := context.WithTimeout(ctx, f.cfg.SubQueryTimeout)
	defer cancel()
	req := proto.QueryReq{QID: qid, Lo: float64(sub.Lo), Hi: float64(sub.Hi), Q: spec.Enc, Plain: spec.Plain}
	start := f.nowFn()
	var resp proto.QueryResp
	// Snapshot the client only now, after the (possibly long) credit and
	// worker waits: a view-driven pool retune may have swapped it while
	// we queued. If the snapshot still loses the race — the old pool
	// began draining between the read and the call — ErrClosed names
	// exactly that case, and one re-read picks up the replacement pool.
	if err := h.wireClient().Call(cctx, proto.MNodeQuery, req, &resp); err != nil {
		if !errors.Is(err, wire.ErrClosed) {
			return proto.QueryResp{}, err
		}
		if err := h.wireClient().Call(cctx, proto.MNodeQuery, req, &resp); err != nil {
			return proto.QueryResp{}, err
		}
	}
	// Successful contact: record health, the node's queue depth, the
	// latency sample for the adaptive hedge delay, and the speed
	// estimate (observed fraction/second).
	elapsed := f.nowFn().Sub(start)
	h.contactOK(resp.QueueDepth)
	f.observeLatency(sub.Node, elapsed)
	if d := elapsed.Seconds(); d > 0 && size > 0 {
		h.speed.Observe(size / d)
	}
	return resp, nil
}

// Breakdown reports the accumulated per-phase delay means in seconds
// (Fig 7.11, plus the admission queue wait). Cache hits are kept out
// of the fan-out phases — a hit has no queue, schedule, dispatch, or
// merge — and summarised separately in CacheHit, so the phase means
// keep describing what fan-outs cost.
type Breakdown struct {
	Queue, Schedule, Dispatch, Merge, Total stats.Summary
	CacheHit                                stats.Summary
}

// DelayBreakdown returns the phase summaries.
func (f *Frontend) DelayBreakdown() Breakdown {
	f.statMu.Lock()
	defer f.statMu.Unlock()
	return Breakdown{
		Queue:    f.queueS.Summarize(),
		Schedule: f.schedS.Summarize(),
		Dispatch: f.dispatchS.Summarize(),
		Merge:    f.mergeS.Summarize(),
		Total:    f.totalS.Summarize(),
		CacheHit: f.hitS.Summarize(),
	}
}
