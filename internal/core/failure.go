package core

import (
	"fmt"
	"math/rand"

	"roar/internal/ring"
)

// This file implements the node-failure fallback of §4.4: when a
// sub-query targets a failed node, it is split in two and sent to nodes
// before and after the failed one, no more than 1/p - δ apart, so every
// object the failed node would have matched is matched by one of them.

// DeltaFraction is the uncertainty margin δ expressed as a fraction of
// 1/p: δ = DeltaFraction/p. It must be large enough that 1/p - δ is
// below 1/p_old for all recently used partitioning levels (§4.4).
const DeltaFraction = 0.02

// RepairPlan rewrites every sub-query aimed at a failed node following
// the §4.4 fallback. The two replacement sub-queries keep the original
// match arc (the "original query ID" of step 4), so together they match
// exactly the failed node's object set; because they are maximally
// separated their stored sets overlap minimally, producing only a few
// duplicate matches, which the frontend deduplicates by object id.
//
// If a replacement also lands on a failed node, a new random placement
// is drawn (the paper's "repeat from step 2"), up to a bounded number of
// retries before reporting failure.
func (pl *Placement) RepairPlan(plan Plan, failed map[ring.NodeID]bool, est Estimator, rng *rand.Rand) (Plan, error) {
	if len(failed) == 0 {
		return plan, nil
	}
	out := plan
	out.Subs = nil
	for _, s := range plan.Subs {
		if !failed[s.Node] {
			out.Subs = append(out.Subs, s)
			continue
		}
		a, b, err := pl.replaceSub(s, failed, est, rng)
		if err != nil {
			return Plan{}, err
		}
		out.Subs = append(out.Subs, a, b)
	}
	out.Delay = out.maxEst()
	return out, nil
}

func (pl *Placement) replaceSub(s SubQuery, failed map[ring.NodeID]bool, est Estimator, rng *rand.Rand) (SubQuery, SubQuery, error) {
	failArc, rk, err := pl.NodeRange(s.Node)
	if err != nil {
		return SubQuery{}, SubQuery{}, fmt.Errorf("core: failed node %d: %w", s.Node, err)
	}
	r := pl.rings[rk]
	repl := 1 / float64(pl.p)
	delta := DeltaFraction * repl
	span := repl - delta
	failHi := failArc.End()
	// idq1 is drawn from (failHi - span, failLo): the window of starting
	// points whose pair (idq1, idq1+span) straddles the failed range.
	// Its width is span - |range|; computing it as a clockwise ring
	// distance would silently wrap to ~1 when the range is wider than
	// the span, yielding pairs that do NOT bracket the failed node and
	// lose matches.
	window := span - failArc.Length
	if window <= 0 {
		return SubQuery{}, SubQuery{}, fmt.Errorf("core: failed node %d range %v wider than 1/p-δ; cannot bracket", s.Node, failArc)
	}
	const retries = 64
	for try := 0; try < retries; try++ {
		idq1 := failHi.Add(-span).Add(rng.Float64() * window)
		idq2 := idq1.Add(span)
		n1 := r.Owner(idq1)
		n2 := r.Owner(idq2)
		if n1 == s.Node || n2 == s.Node || failed[n1] || failed[n2] {
			continue
		}
		// Both replacements carry the original match arc; each node can
		// only match the objects it stores, and their stored sets
		// together cover the arc (§4.4 step 3 guarantees the pair is
		// close enough that no object falls between them).
		a := SubQuery{Node: n1, Ring: rk, Lo: s.Lo, Hi: s.Hi, Est: est.EstimateFinish(n1, s.Size())}
		b := SubQuery{Node: n2, Ring: rk, Lo: s.Lo, Hi: s.Hi, Est: est.EstimateFinish(n2, s.Size())}
		return a, b, nil
	}
	return SubQuery{}, SubQuery{}, fmt.Errorf("core: could not re-place sub-query around failed node %d after %d tries", s.Node, retries)
}

// CoveredByPair verifies the §4.4 coverage argument for one object: an
// object the failed node stored is stored by n1 or n2 (used by the
// property tests and the availability simulation).
func (pl *Placement) CoveredByPair(obj ring.Point, n1, n2 ring.NodeID) bool {
	return pl.Stores(n1, obj) || pl.Stores(n2, obj)
}

// SafePQ returns the partitioning level the frontend may use while a
// reconfiguration from oldP to newP is in flight (§4.5): increasing p
// (dropping replicas) is safe immediately; decreasing p (adding
// replicas) must wait until every node has confirmed its downloads.
func SafePQ(oldP, newP int, allConfirmed bool) int {
	if newP >= oldP {
		return newP // running with larger pq is always safe
	}
	if allConfirmed {
		return newP
	}
	return oldP
}
