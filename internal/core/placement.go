// Package core implements the ROAR algorithm (Chapter 4): replica
// placement on one or more continuous rings, query planning with
// duplicate-free partitioning at any pq ≥ p, the O(n log p) scheduling
// algorithm for heterogeneous servers (Algorithm 1), the range-adjustment
// and sub-query-splitting optimisations, the node-failure fallback, and
// the bookkeeping for changing the partitioning level on the fly.
//
// The package is deliberately free of networking: it computes *plans*
// (which node matches which slice of the object id space) that the
// frontend executes over TCP and the simulator executes in virtual time.
// Sharing this code between both evaluation paths is what lets the
// Chapter 6 and Chapter 7 experiments exercise identical logic.
package core

import (
	"fmt"

	"roar/internal/ring"
)

// Placement captures the replica layout of a ROAR deployment: one or
// more rings (§4.7 multiple sliding windows) plus the current
// partitioning level p. An object at id x is stored, in every ring, on
// all nodes whose range intersects the replication arc [x, x+1/p).
type Placement struct {
	rings []*ring.Ring
	p     int
}

// NewPlacement builds a placement over the given rings. Node ids must be
// globally unique across rings.
func NewPlacement(p int, rings ...*ring.Ring) (*Placement, error) {
	if p <= 0 {
		return nil, fmt.Errorf("core: partitioning level must be positive, got %d", p)
	}
	if len(rings) == 0 {
		return nil, fmt.Errorf("core: placement needs at least one ring")
	}
	seen := map[ring.NodeID]bool{}
	for _, r := range rings {
		for _, id := range r.IDs() {
			if seen[id] {
				return nil, fmt.Errorf("core: node id %d appears on two rings", id)
			}
			seen[id] = true
		}
	}
	return &Placement{rings: rings, p: p}, nil
}

// P returns the current minimum partitioning level.
func (pl *Placement) P() int { return pl.p }

// SetP changes the partitioning level. Callers are responsible for the
// §4.5 transition protocol (see Transition); SetP itself only moves the
// number.
func (pl *Placement) SetP(p int) error {
	if p <= 0 {
		return fmt.Errorf("core: partitioning level must be positive, got %d", p)
	}
	pl.p = p
	return nil
}

// Rings returns the underlying rings (shared, not copied).
func (pl *Placement) Rings() []*ring.Ring { return pl.rings }

// NumNodes returns the total number of nodes across rings.
func (pl *Placement) NumNodes() int {
	n := 0
	for _, r := range pl.rings {
		n += r.Len()
	}
	return n
}

// ReplicationArc returns the replication arc of an object under the
// current p.
func (pl *Placement) ReplicationArc(obj ring.Point) ring.Arc {
	return ring.ReplicationArc(obj, pl.p)
}

// Holders returns every node (across all rings) that must store the
// object at id obj: the union over rings of the nodes whose range
// intersects [obj, obj+1/p). With k rings each holds ~r/k replicas.
func (pl *Placement) Holders(obj ring.Point) []ring.NodeID {
	arc := pl.ReplicationArc(obj)
	var out []ring.NodeID
	for _, r := range pl.rings {
		out = append(out, r.Holders(arc)...)
	}
	return out
}

// Stores reports whether the given node must store the object.
func (pl *Placement) Stores(id ring.NodeID, obj ring.Point) bool {
	for _, r := range pl.rings {
		if !r.Contains(id) {
			continue
		}
		a, err := r.Range(id)
		if err != nil {
			return false
		}
		return a.Intersects(pl.ReplicationArc(obj))
	}
	return false
}

// NodeRange returns the ownership arc of a node, searching all rings.
func (pl *Placement) NodeRange(id ring.NodeID) (ring.Arc, int, error) {
	for k, r := range pl.rings {
		if r.Contains(id) {
			a, err := r.Range(id)
			return a, k, err
		}
	}
	return ring.Arc{}, -1, fmt.Errorf("core: node %d on no ring", id)
}

// CanServe reports whether a node can correctly match every object in
// the half-open id arc (lo, hi]. A node with range [s, e) stores exactly
// the objects with ids in the open arc (s-1/p, e) — those whose
// replication arc [id, id+1/p) intersects the range — so the condition
// is (lo, hi] ⊆ (s-1/p, e). This is the validity rule behind range
// adjustment (§4.8.2) and sub-query splitting, and the invariant the
// property tests check on every plan.
func (pl *Placement) CanServe(id ring.NodeID, lo, hi ring.Point) bool {
	size := ring.MatchSpan(lo, hi) // lo == hi means the full ring
	repl := 1 / float64(pl.p)
	nodeArc, _, err := pl.NodeRange(id)
	if err != nil {
		return false
	}
	stored := nodeArc.Length + repl
	if stored >= 1 {
		return true
	}
	// Offsets of (lo, hi] measured from the stored-set origin s-1/p are
	// (d1, d1+size]; all must fall strictly inside (0, stored).
	d1 := nodeArc.Start.Add(-repl).DistCW(lo)
	return d1+size < stored
}

// StoredSet enumerates, for a node, the fraction of the object id space
// it must store: the arc (start-1/p, end) where [start, end) is the
// node's range. Objects with ids in that arc have replication arcs
// intersecting the node's range.
func (pl *Placement) StoredSet(id ring.NodeID) (ring.Arc, error) {
	a, _, err := pl.NodeRange(id)
	if err != nil {
		return ring.Arc{}, err
	}
	repl := 1 / float64(pl.p)
	length := a.Length + repl
	if length >= 1 {
		return ring.FullArc(), nil
	}
	return ring.NewArc(a.Start.Add(-repl), length), nil
}

// ExpectedReplicas returns the average replica count r = n/p implied by
// the trade-off equation (2.1); with multiple rings it is the sum of the
// per-ring expectations.
func (pl *Placement) ExpectedReplicas() float64 {
	return float64(pl.NumNodes()) / float64(pl.p)
}
