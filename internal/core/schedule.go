package core

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"

	"roar/internal/ring"
)

// Estimator predicts how long a node would take to finish a sub-query
// covering the given fraction of the id space, measured from now. The
// frontend implements it from speed EWMAs and outstanding work (§4.8);
// the simulator implements it from exact queue state.
type Estimator interface {
	EstimateFinish(id ring.NodeID, size float64) float64
}

// EstimatorFunc adapts a function to the Estimator interface.
type EstimatorFunc func(ring.NodeID, float64) float64

// EstimateFinish calls f.
func (f EstimatorFunc) EstimateFinish(id ring.NodeID, size float64) float64 { return f(id, size) }

// SubQuery is one slice of a planned query: node Node matches the
// objects with ids in the half-open arc (Lo, Hi]. Hi is the sub-query's
// logical destination (id_query in §4.2); with the default equal split,
// Lo = Hi - 1/pq and the pair encodes exactly conditions (4.1)/(4.2).
// Lo == Hi denotes the full ring (the pq = 1 case); see ring.MatchSpan.
type SubQuery struct {
	Node ring.NodeID
	Ring int // index of the ring the node sits on
	Lo   ring.Point
	Hi   ring.Point
	Est  float64 // estimated finish time
}

// Size returns the match arc length (1 when Lo == Hi, the full ring).
func (s SubQuery) Size() float64 { return ring.MatchSpan(s.Lo, s.Hi) }

// Matches implements the server-side object filter.
func (s SubQuery) Matches(obj ring.Point) bool {
	return ring.InMatchArc(obj, s.Lo, s.Hi)
}

// Plan is a complete assignment of one query to servers.
type Plan struct {
	Start ring.Point // chosen starting id on the ring
	PQ    int        // partitioning level used for this query
	Delay float64    // estimated completion time (max over sub-queries)
	Subs  []SubQuery
}

// maxEst recomputes the plan delay from its sub-queries.
func (p *Plan) maxEst() float64 {
	max := 0.0
	for _, s := range p.Subs {
		if s.Est > max {
			max = s.Est
		}
	}
	return max
}

// Schedule runs Algorithm 1 (§4.8.1): it sweeps the query starting point
// over [0, 1/pq), visiting only the ids where some probe point crosses a
// node boundary, and returns the plan with the smallest estimated delay.
// Complexity O(n log pq) for n total nodes.
//
// With multiple rings, each probe point is served by the faster of the
// per-ring owners, and boundary crossings from every ring are swept
// (§4.8.1 "Scheduling for Multiple Rings").
func (pl *Placement) Schedule(pq int, est Estimator) (Plan, error) {
	if pq < pl.p {
		return Plan{}, fmt.Errorf("core: pq=%d below minimum partitioning level p=%d", pq, pl.p)
	}
	for k, r := range pl.rings {
		if r.Len() == 0 {
			return Plan{}, fmt.Errorf("core: ring %d is empty", k)
		}
	}
	nr := len(pl.rings)
	size := 1 / float64(pq)

	// Per-probe, per-ring current owner and its finish estimate.
	owner := make([][]ring.NodeID, pq)
	finish := make([][]float64, pq)
	// best finish per probe = min over rings.
	probeEst := make([]float64, pq)

	h := &crossingHeap{}
	for i := 0; i < pq; i++ {
		owner[i] = make([]ring.NodeID, nr)
		finish[i] = make([]float64, nr)
		base := ring.Norm(float64(i) / float64(pq))
		probeEst[i] = -1
		for k, r := range pl.rings {
			id := r.Owner(base)
			owner[i][k] = id
			finish[i][k] = est.EstimateFinish(id, size)
			if probeEst[i] < 0 || finish[i][k] < probeEst[i] {
				probeEst[i] = finish[i][k]
			}
			// Distance (relative to start=0) at which this probe leaves
			// the current owner: the clockwise distance from the probe
			// base to the owner's range end.
			a, err := r.Range(id)
			if err != nil {
				return Plan{}, err
			}
			d := base.DistCW(a.End())
			if a.IsFull() {
				d = 1 // single-node ring: never crossed within the sweep
			}
			heap.Push(h, crossing{dist: d, probe: i, ring: k})
		}
	}

	delayQ := maxOf(probeEst)
	// Candidate starts are evaluated at the midpoint of each sweep
	// segment between consecutive crossings: the configuration is
	// constant on the open segment, and midpoints are immune to the
	// float rounding that makes exact boundary points ambiguous.
	next := size
	if h.Len() > 0 && (*h)[0].dist < size {
		next = (*h)[0].dist
	}
	bestDelay, bestStart := delayQ, next/2

	for h.Len() > 0 {
		d := (*h)[0].dist
		if d >= size {
			break // swept the whole [0, 1/pq) interval
		}
		// Apply every crossing at this exact distance before judging the
		// configuration: on symmetric rings many probes cross boundaries
		// simultaneously, and intermediate states correspond to no real
		// starting id.
		for h.Len() > 0 && (*h)[0].dist <= d+1e-12 {
			c := heap.Pop(h).(crossing)
			i, k := c.probe, c.ring
			r := pl.rings[k]
			succ, err := r.Successor(owner[i][k])
			if err != nil {
				return Plan{}, err
			}
			owner[i][k] = succ
			wasMax := probeEst[i] == delayQ
			finish[i][k] = est.EstimateFinish(succ, size)
			probeEst[i] = minOf(finish[i])
			if wasMax && probeEst[i] < delayQ {
				delayQ = maxOf(probeEst) // O(pq), amortised per §4.8.1
			} else if probeEst[i] > delayQ {
				delayQ = probeEst[i]
			}
			// Next crossing for this probe on this ring.
			a, err := r.Range(succ)
			if err != nil {
				return Plan{}, err
			}
			base := ring.Norm(float64(i) / float64(pq))
			nd := base.DistCW(a.End())
			if nd <= c.dist {
				nd = 1 // wrapped past the sweep window; retire this entry
			}
			heap.Push(h, crossing{dist: nd, probe: i, ring: k})
		}
		if delayQ < bestDelay {
			next := size
			if h.Len() > 0 && (*h)[0].dist < size {
				next = (*h)[0].dist
			}
			bestDelay, bestStart = delayQ, (d+next)/2
		}
	}

	return pl.planAt(ring.Norm(bestStart), pq, est), nil
}

// planAt materialises the plan for a specific starting id.
func (pl *Placement) planAt(start ring.Point, pq int, est Estimator) Plan {
	size := 1 / float64(pq)
	plan := Plan{Start: start, PQ: pq, Subs: make([]SubQuery, 0, pq)}
	for i := 0; i < pq; i++ {
		probe := start.Add(float64(i) / float64(pq))
		node, rk, fin := pl.fastestOwner(probe, size, est)
		plan.Subs = append(plan.Subs, SubQuery{
			Node: node,
			Ring: rk,
			Lo:   probe.Add(-size),
			Hi:   probe,
			Est:  fin,
		})
	}
	plan.Delay = plan.maxEst()
	return plan
}

// fastestOwner returns the owner of the probe point with the smallest
// finish estimate across rings.
func (pl *Placement) fastestOwner(probe ring.Point, size float64, est Estimator) (ring.NodeID, int, float64) {
	bestID, bestRing, bestFin := ring.InvalidNode, -1, 0.0
	for k, r := range pl.rings {
		id := r.Owner(probe)
		if id == ring.InvalidNode {
			continue
		}
		fin := est.EstimateFinish(id, size)
		if bestRing < 0 || fin < bestFin {
			bestID, bestRing, bestFin = id, k, fin
		}
	}
	return bestID, bestRing, bestFin
}

// ScheduleRandom is the simple baseline of §4.8.1: try `tries` random
// starting points and keep the best. Used for comparison in the
// scheduling-cost experiments.
func (pl *Placement) ScheduleRandom(pq, tries int, est Estimator, rng *rand.Rand) (Plan, error) {
	if pq < pl.p {
		return Plan{}, fmt.Errorf("core: pq=%d below minimum partitioning level p=%d", pq, pl.p)
	}
	if tries < 1 {
		tries = 1
	}
	var best Plan
	for t := 0; t < tries; t++ {
		start := ring.Norm(rng.Float64() / float64(pq))
		plan := pl.planAt(start, pq, est)
		if t == 0 || plan.Delay < best.Delay {
			best = plan
		}
	}
	return best, nil
}

// ScheduleStrawman is the O(n·pq) deterministic sweep of §4.8.1: iterate
// the starting id over every distinct boundary in [0, 1/pq) and fully
// recompute the plan each time. It must agree with Schedule on the
// achieved delay; the tests and Fig 7.12 rely on this.
func (pl *Placement) ScheduleStrawman(pq int, est Estimator) (Plan, error) {
	if pq < pl.p {
		return Plan{}, fmt.Errorf("core: pq=%d below minimum partitioning level p=%d", pq, pl.p)
	}
	size := 1 / float64(pq)
	// Segment boundaries: every node boundary mapped into [0, 1/pq).
	// The assignment is constant between consecutive boundaries, so we
	// evaluate each segment's midpoint (matching Schedule's convention).
	var bounds []float64
	for _, r := range pl.rings {
		for _, nd := range r.Nodes() {
			f := float64(nd.Start)
			for f >= size {
				f -= size
			}
			bounds = append(bounds, f)
		}
	}
	sort.Float64s(bounds)
	starts := make([]float64, 0, len(bounds)+1)
	if len(bounds) == 0 {
		starts = append(starts, size/2)
	} else {
		starts = append(starts, bounds[0]/2)
		for i := 0; i+1 < len(bounds); i++ {
			starts = append(starts, (bounds[i]+bounds[i+1])/2)
		}
		starts = append(starts, (bounds[len(bounds)-1]+size)/2)
	}
	var best Plan
	first := true
	for _, s := range starts {
		plan := pl.planAt(ring.Norm(s), pq, est)
		if first || plan.Delay < best.Delay {
			best, first = plan, false
		}
	}
	return best, nil
}

// crossing is a heap entry: the sweep distance at which a probe point
// crosses into the next node on one ring.
type crossing struct {
	dist  float64
	probe int
	ring  int
}

type crossingHeap []crossing

func (h crossingHeap) Len() int            { return len(h) }
func (h crossingHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h crossingHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *crossingHeap) Push(x interface{}) { *h = append(*h, x.(crossing)) }
func (h *crossingHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
