package core

import (
	"roar/internal/ring"
)

// This file implements the two frontend optimisations of §4.8.2:
// range adjustment (shift work between neighbouring sub-queries, free)
// and sub-query splitting (split the slowest sub-query across extra
// servers, costs per-query overhead).

// adjustEps keeps shifted boundaries strictly inside their constraints.
const adjustEps = 1e-9

// AdjustRanges implements range adjustment: it repeatedly takes work
// away from the sub-query that finishes last and pushes it to its plan
// neighbours, aiming to equalise finishing times, subject to the replica
// constraints of §4.8.2 (a neighbour may only absorb object ids it
// already stores). It never changes the number of sub-queries and is
// most effective when the replication level is low (node ranges
// comparable to sub-query sizes).
//
// rounds bounds the number of slowest-subquery iterations; the paper
// describes the per-round work as near constant time.
func (pl *Placement) AdjustRanges(plan Plan, est Estimator, rounds int) Plan {
	n := len(plan.Subs)
	if n < 2 {
		return plan
	}
	out := plan
	out.Subs = append([]SubQuery(nil), plan.Subs...)
	for round := 0; round < rounds; round++ {
		slow := 0
		for i, s := range out.Subs {
			if s.Est > out.Subs[slow].Est {
				slow = i
			}
		}
		improved := false
		// Push work backwards across the slow sub-query's lower boundary
		// (the predecessor's Hi == our Lo), then forwards across its
		// upper boundary (the successor's Lo == our Hi).
		if pl.shiftToPred(out.Subs, slow, est) {
			improved = true
		}
		if pl.shiftToSucc(out.Subs, slow, est) {
			improved = true
		}
		if !improved {
			break
		}
	}
	out.Delay = out.maxEst()
	return out
}

// shiftToPred moves the boundary between sub-queries prev and i
// clockwise by δ: prev absorbs (B, B+δ]. Constraint (§4.8.2, "A < ida"):
// the boundary may move right only while it stays below prev's range
// end, so the absorbed objects are already replicated on prev.
func (pl *Placement) shiftToPred(subs []SubQuery, i int, est Estimator) bool {
	n := len(subs)
	prev := (i - 1 + n) % n
	if prev == i || subs[prev].Node == subs[i].Node {
		return false
	}
	prevArc, _, err := pl.NodeRange(subs[prev].Node)
	if err != nil {
		return false
	}
	b := subs[i].Lo // current boundary
	maxShift := b.DistCW(prevArc.End())
	if prevArc.IsFull() {
		maxShift = subs[i].Size()
	}
	maxShift = minF(maxShift, subs[i].Size()) - adjustEps
	if maxShift <= 0 {
		return false
	}
	delta := pl.equalise(subs[prev].Node, subs[prev].Size(), subs[i].Node, subs[i].Size(), maxShift, est)
	if delta <= 0 {
		return false
	}
	subs[prev].Hi = subs[prev].Hi.Add(delta)
	subs[i].Lo = subs[i].Lo.Add(delta)
	subs[prev].Est = est.EstimateFinish(subs[prev].Node, subs[prev].Size())
	subs[i].Est = est.EstimateFinish(subs[i].Node, subs[i].Size())
	return true
}

// shiftToSucc moves the boundary between sub-queries i and next counter-
// clockwise by δ: next absorbs (C-δ, C]. Constraint (§4.8.2,
// "A + 1/pq > idc"): the moved boundary plus the replication length must
// stay past the successor node's range start, so absorbed objects are
// already replicated on it.
func (pl *Placement) shiftToSucc(subs []SubQuery, i int, est Estimator) bool {
	n := len(subs)
	next := (i + 1) % n
	if next == i || subs[next].Node == subs[i].Node {
		return false
	}
	nextArc, _, err := pl.NodeRange(subs[next].Node)
	if err != nil {
		return false
	}
	repl := 1 / float64(pl.p)
	c := subs[i].Hi // current boundary
	// δ is bounded by the distance from the successor's stored-set start
	// (range start - 1/p) to the boundary (§4.8.2: A + 1/p must stay
	// past the successor's range start).
	maxShift := nextArc.Start.Add(-repl).DistCW(c)
	if nextArc.IsFull() {
		maxShift = subs[i].Size()
	}
	maxShift = minF(maxShift, subs[i].Size()) - adjustEps
	if maxShift <= 0 {
		return false
	}
	delta := pl.equalise(subs[next].Node, subs[next].Size(), subs[i].Node, subs[i].Size(), maxShift, est)
	if delta <= 0 {
		return false
	}
	subs[i].Hi = subs[i].Hi.Add(-delta)
	subs[next].Lo = subs[next].Lo.Add(-delta)
	subs[next].Est = est.EstimateFinish(subs[next].Node, subs[next].Size())
	subs[i].Est = est.EstimateFinish(subs[i].Node, subs[i].Size())
	return true
}

// equalise finds the shift δ ∈ [0, maxShift] that balances the absorber
// (gaining δ of work) against the slow node (losing δ), by bisection on
// the finish-time difference. Returns 0 when shifting cannot help.
func (pl *Placement) equalise(absorber ring.NodeID, absorberSize float64,
	slow ring.NodeID, slowSize float64, maxShift float64, est Estimator) float64 {
	gap := func(d float64) float64 {
		return est.EstimateFinish(absorber, absorberSize+d) - est.EstimateFinish(slow, slowSize-d)
	}
	if gap(0) >= 0 {
		return 0 // absorber is already as slow as (or slower than) us
	}
	if gap(maxShift) <= 0 {
		return maxShift // absorber stays faster even taking all it can
	}
	lo, hi := 0.0, maxShift
	for it := 0; it < 40; it++ {
		mid := (lo + hi) / 2
		if gap(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// SplitSlowest implements sub-query splitting: the slowest sub-query's
// match arc is halved and each half reassigned to the fastest node able
// to serve it. The process repeats while it improves the plan delay, up
// to maxSplits extra sub-queries. Unlike range adjustment this increases
// the fixed per-query overhead (more messages, more matching threads),
// which §4.8.2 warns about and Fig 6.7 quantifies.
func (pl *Placement) SplitSlowest(plan Plan, est Estimator, maxSplits int) Plan {
	out := plan
	out.Subs = append([]SubQuery(nil), plan.Subs...)
	for split := 0; split < maxSplits; split++ {
		slow := 0
		for i, s := range out.Subs {
			if s.Est > out.Subs[slow].Est {
				slow = i
			}
		}
		s := out.Subs[slow]
		half := s.Size() / 2
		if half <= 0 {
			break
		}
		mid := s.Lo.Add(half)
		a, okA := pl.bestServer(s.Lo, mid, est)
		b, okB := pl.bestServer(mid, s.Hi, est)
		if !okA || !okB {
			break
		}
		newMax := maxF(a.Est, b.Est)
		// Delay after split: max over the untouched subs and the halves.
		rest := 0.0
		for i, t := range out.Subs {
			if i != slow && t.Est > rest {
				rest = t.Est
			}
		}
		if maxF(newMax, rest) >= s.Est {
			break // splitting no longer helps
		}
		out.Subs[slow] = a
		out.Subs = append(out.Subs, b)
		out.Delay = out.maxEst()
	}
	out.Delay = out.maxEst()
	return out
}

// bestServer returns the fastest sub-query assignment covering (lo, hi]
// among all nodes (on any ring) that store the whole arc.
func (pl *Placement) bestServer(lo, hi ring.Point, est Estimator) (SubQuery, bool) {
	size := lo.DistCW(hi)
	var best SubQuery
	found := false
	for k, r := range pl.rings {
		if r.Len() == 0 {
			continue
		}
		// Candidates: the owner of hi and every node starting in
		// (hi, lo+1/p]; walk clockwise while CanServe holds.
		id := r.Owner(hi)
		for steps := 0; steps < r.Len(); steps++ {
			if pl.CanServe(id, lo, hi) {
				fin := est.EstimateFinish(id, size)
				if !found || fin < best.Est {
					best = SubQuery{Node: id, Ring: k, Lo: lo, Hi: hi, Est: fin}
					found = true
				}
			} else if steps > 0 {
				break // walked past the replica region
			}
			next, err := r.Successor(id)
			if err != nil {
				break
			}
			id = next
		}
	}
	return best, found
}

func minF(xs ...float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
