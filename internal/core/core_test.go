package core

import (
	"math"
	"math/rand"
	"testing"

	"roar/internal/ring"
)

// uniformEst models identical servers: finish time proportional to
// sub-query size.
var uniformEst = EstimatorFunc(func(id ring.NodeID, size float64) float64 {
	return size
})

// speedEst builds an estimator from a speed table: finish = size/speed.
func speedEst(speeds map[ring.NodeID]float64) Estimator {
	return EstimatorFunc(func(id ring.NodeID, size float64) float64 {
		s, ok := speeds[id]
		if !ok || s <= 0 {
			return math.Inf(1)
		}
		return size / s
	})
}

func mustPlacement(t testing.TB, p int, rings ...*ring.Ring) *Placement {
	t.Helper()
	pl, err := NewPlacement(p, rings...)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// randomRing builds a ring with n nodes at random positions, ids offset
// to keep multi-ring ids unique.
func randomRing(n int, idBase ring.NodeID, rng *rand.Rand) *ring.Ring {
	r := ring.New()
	id := idBase
	for r.Len() < n {
		if err := r.Insert(id, ring.Norm(rng.Float64())); err == nil {
			id++
		}
	}
	return r
}

func TestNewPlacementValidation(t *testing.T) {
	if _, err := NewPlacement(0, ring.NewEqual(4)); err == nil {
		t.Error("p=0 should be rejected")
	}
	if _, err := NewPlacement(2); err == nil {
		t.Error("no rings should be rejected")
	}
	// Duplicate ids across rings rejected.
	if _, err := NewPlacement(2, ring.NewEqual(4), ring.NewEqual(4)); err == nil {
		t.Error("duplicate node ids across rings should be rejected")
	}
}

func TestHoldersCount(t *testing.T) {
	// n=12, p=4 => r=3 (the running example of Figs 3.1/4.1).
	pl := mustPlacement(t, 4, ring.NewEqual(12))
	rng := rand.New(rand.NewSource(1))
	total := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		total += len(pl.Holders(ring.Norm(rng.Float64())))
	}
	avg := float64(total) / trials
	// Replication arc 1/4 intersects 3 or 4 equal ranges of width 1/12:
	// average must sit near r+1=4 (an arc of length 1/p crosses on
	// average n/p boundaries, touching n/p + 1 ranges).
	if avg < 3.5 || avg > 4.5 {
		t.Errorf("average holders = %v, want ≈4", avg)
	}
	if pl.ExpectedReplicas() != 3 {
		t.Errorf("ExpectedReplicas = %v, want 3", pl.ExpectedReplicas())
	}
}

func TestStoresMatchesHolders(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pl := mustPlacement(t, 5, randomRing(20, 0, rng))
	for i := 0; i < 500; i++ {
		obj := ring.Norm(rng.Float64())
		holders := map[ring.NodeID]bool{}
		for _, h := range pl.Holders(obj) {
			holders[h] = true
		}
		for _, id := range pl.rings[0].IDs() {
			if got := pl.Stores(id, obj); got != holders[id] {
				t.Fatalf("Stores(%d, %v) = %v but holders=%v", id, obj, got, holders[id])
			}
		}
	}
}

// checkPlan asserts the two fundamental plan invariants: the match arcs
// tile the object id space exactly once, and every sub-query's node
// stores every object in its arc.
func checkPlan(t *testing.T, pl *Placement, plan Plan, rng *rand.Rand) {
	t.Helper()
	// Tiling: sample random object ids; each matched by exactly one sub.
	for i := 0; i < 300; i++ {
		obj := ring.Norm(rng.Float64())
		matches := 0
		for _, s := range plan.Subs {
			if s.Matches(obj) {
				matches++
			}
		}
		if matches != 1 {
			t.Fatalf("object %v matched by %d sub-queries, want 1 (plan start %v pq %d)",
				obj, matches, plan.Start, plan.PQ)
		}
	}
	// Validity: nodes can serve their arcs.
	for i, s := range plan.Subs {
		if !pl.CanServe(s.Node, s.Lo, s.Hi) {
			t.Fatalf("sub %d: node %d cannot serve (%v,%v]", i, s.Node, s.Lo, s.Hi)
		}
	}
}

func TestScheduleBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pl := mustPlacement(t, 4, ring.NewEqual(12))
	plan, err := pl.Schedule(4, uniformEst)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Subs) != 4 {
		t.Fatalf("got %d sub-queries, want 4", len(plan.Subs))
	}
	checkPlan(t, pl, plan, rng)
	if math.Abs(plan.Delay-0.25) > 1e-9 {
		t.Errorf("uniform delay = %v, want 0.25", plan.Delay)
	}
}

func TestSchedulePqGreaterThanP(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pl := mustPlacement(t, 3, randomRing(12, 0, rng))
	for _, pq := range []int{3, 4, 6, 12} {
		plan, err := pl.Schedule(pq, uniformEst)
		if err != nil {
			t.Fatalf("pq=%d: %v", pq, err)
		}
		if len(plan.Subs) != pq {
			t.Fatalf("pq=%d: got %d subs", pq, len(plan.Subs))
		}
		checkPlan(t, pl, plan, rng)
	}
	if _, err := pl.Schedule(2, uniformEst); err == nil {
		t.Error("pq < p must be rejected")
	}
}

func TestSchedulePicksFastServers(t *testing.T) {
	// Two nodes, p=1: the query goes entirely to one node; the scheduler
	// must pick the faster one.
	r := ring.New()
	_ = r.Insert(0, 0)
	_ = r.Insert(1, 0.5)
	pl := mustPlacement(t, 1, r)
	est := speedEst(map[ring.NodeID]float64{0: 1, 1: 10})
	plan, err := pl.Schedule(1, est)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Subs[0].Node != 1 {
		t.Errorf("scheduler picked node %d, want the 10x faster node 1", plan.Subs[0].Node)
	}
}

func TestScheduleMatchesStrawman(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(30)
		p := 1 + rng.Intn(n/2)
		pl := mustPlacement(t, p, randomRing(n, 0, rng))
		speeds := map[ring.NodeID]float64{}
		for _, id := range pl.rings[0].IDs() {
			speeds[id] = 0.5 + rng.Float64()*10
		}
		est := speedEst(speeds)
		fast, err := pl.Schedule(p, est)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := pl.ScheduleStrawman(p, est)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fast.Delay-slow.Delay) > 1e-9*math.Max(1, slow.Delay) {
			t.Fatalf("trial %d (n=%d p=%d): Algorithm 1 delay %v != strawman %v",
				trial, n, p, fast.Delay, slow.Delay)
		}
	}
}

func TestScheduleRandomNeverBeatsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pl := mustPlacement(t, 4, randomRing(20, 0, rng))
	speeds := map[ring.NodeID]float64{}
	for _, id := range pl.rings[0].IDs() {
		speeds[id] = 0.5 + rng.Float64()*10
	}
	est := speedEst(speeds)
	opt, _ := pl.Schedule(4, est)
	for _, tries := range []int{1, 4, 16} {
		rp, err := pl.ScheduleRandom(4, tries, est, rng)
		if err != nil {
			t.Fatal(err)
		}
		if rp.Delay < opt.Delay-1e-9 {
			t.Fatalf("random (%d tries) beat Algorithm 1: %v < %v", tries, rp.Delay, opt.Delay)
		}
	}
}

func TestScheduleMultiRing(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r1 := randomRing(10, 0, rng)
	r2 := randomRing(10, 100, rng)
	pl := mustPlacement(t, 4, r1, r2)
	speeds := map[ring.NodeID]float64{}
	for _, id := range append(r1.IDs(), r2.IDs()...) {
		speeds[id] = 0.5 + rng.Float64()*5
	}
	est := speedEst(speeds)
	plan, err := pl.Schedule(4, est)
	if err != nil {
		t.Fatal(err)
	}
	checkPlan(t, pl, plan, rng)
	// Two-ring delay must be no worse than either single ring alone.
	pl1 := mustPlacement(t, 4, r1)
	p1, _ := pl1.Schedule(4, est)
	if plan.Delay > p1.Delay+1e-9 {
		t.Errorf("two-ring delay %v worse than ring-1 alone %v", plan.Delay, p1.Delay)
	}
	// And it must match the strawman on the same placement.
	slow, _ := pl.ScheduleStrawman(4, est)
	if math.Abs(plan.Delay-slow.Delay) > 1e-9 {
		t.Errorf("multi-ring Algorithm 1 %v != strawman %v", plan.Delay, slow.Delay)
	}
}

func TestCanServe(t *testing.T) {
	pl := mustPlacement(t, 4, ring.NewEqual(8)) // ranges of 1/8, repl 1/4
	// Node 2 owns [0.25, 0.375): it stores objects in (0, 0.375).
	if !pl.CanServe(2, 0.05, 0.3) {
		t.Error("node 2 should serve (0.05, 0.3]")
	}
	if pl.CanServe(2, 0.05, 0.4) {
		t.Error("node 2 must not serve past its range end")
	}
	if pl.CanServe(2, 0.95, 0.2) {
		t.Error("node 2 must not serve ids at/before its stored-set start")
	}
	if !pl.CanServe(2, 0.01, 0.25) {
		t.Error("node 2 stores objects straddling its range start")
	}
	// An arc wider than 1/p is fine while it fits the stored set
	// (range + 1/p = 0.375 here)...
	if !pl.CanServe(2, 0.01, 0.3) {
		t.Error("arc wider than 1/p but inside the stored set should be servable")
	}
	// ...but an arc wider than the stored set is not.
	if pl.CanServe(2, 0.9, 0.3) {
		t.Error("arc wider than the stored set must be rejected")
	}
	// lo == hi is the full ring (pq = 1): only a node whose stored set
	// covers everything can serve it.
	if pl.CanServe(2, 0.1, 0.1) {
		t.Error("full-ring arc must not be servable by a 1/8-range node at p=4")
	}
	pl1 := mustPlacement(t, 1, ring.NewEqual(8))
	if !pl1.CanServe(2, 0.1, 0.1) {
		t.Error("at p=1 every node stores everything and serves the full arc")
	}
}

func TestCanServeAgainstStores(t *testing.T) {
	// Property: CanServe(lo,hi) == every sampled object in (lo,hi] is
	// stored on the node.
	rng := rand.New(rand.NewSource(8))
	pl := mustPlacement(t, 6, randomRing(18, 0, rng))
	for trial := 0; trial < 400; trial++ {
		id := ring.NodeID(rng.Intn(18))
		lo := ring.Norm(rng.Float64())
		size := rng.Float64() / 6 // up to 1/p
		hi := lo.Add(size)
		can := pl.CanServe(id, lo, hi)
		allStored := true
		for k := 1; k <= 40; k++ {
			obj := lo.Add(size * float64(k) / 41)
			if !pl.Stores(id, obj) {
				allStored = false
				break
			}
		}
		if can && !allStored {
			t.Fatalf("CanServe true but object not stored (node %d, arc (%v,%v])", id, lo, hi)
		}
		// The converse can disagree within one sampling step of the
		// stored-set boundary; shrink the arc by the sampling resolution
		// before flagging a real inconsistency.
		if !can && allStored {
			step := size / 41
			if !pl.CanServe(id, lo.Add(step), hi.Add(-step)) {
				t.Fatalf("CanServe false but all interior objects stored (node %d, arc (%v,%v])", id, lo, hi)
			}
		}
	}
}

func TestAdjustRangesImprovesDelay(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	improved := 0
	for trial := 0; trial < 30; trial++ {
		n := 12 + rng.Intn(12)
		p := 6 // low replication: r=2-4, where §4.8.2 says adjustment helps
		pl := mustPlacement(t, p, randomRing(n, 0, rng))
		speeds := map[ring.NodeID]float64{}
		for _, id := range pl.rings[0].IDs() {
			speeds[id] = 0.5 + rng.Float64()*4
		}
		est := speedEst(speeds)
		plan, err := pl.Schedule(p, est)
		if err != nil {
			t.Fatal(err)
		}
		adj := pl.AdjustRanges(plan, est, 8)
		if adj.Delay > plan.Delay+1e-9 {
			t.Fatalf("adjustment worsened delay: %v -> %v", plan.Delay, adj.Delay)
		}
		if adj.Delay < plan.Delay-1e-9 {
			improved++
		}
		checkPlan(t, pl, adj, rng)
		if len(adj.Subs) != len(plan.Subs) {
			t.Fatal("range adjustment must not change the sub-query count")
		}
	}
	if improved == 0 {
		t.Error("range adjustment never improved any trial; expected it to help at low r")
	}
}

func TestSplitSlowestImprovesDelay(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	// With p = n every node (including the straggler) must serve a
	// sub-query; splitting the straggler's slice across its faster
	// replica neighbours is the only way to shed its load.
	pl := mustPlacement(t, 12, ring.NewEqual(12))
	speeds := map[ring.NodeID]float64{}
	for _, id := range pl.rings[0].IDs() {
		speeds[id] = 4
	}
	speeds[0] = 0.25 // the straggler
	est := speedEst(speeds)
	plan, err := pl.Schedule(12, est)
	if err != nil {
		t.Fatal(err)
	}
	split := pl.SplitSlowest(plan, est, 4)
	if split.Delay >= plan.Delay {
		t.Errorf("splitting did not improve: %v -> %v", plan.Delay, split.Delay)
	}
	checkPlan(t, pl, split, rng)
	if len(split.Subs) <= len(plan.Subs) {
		t.Error("splitting should add sub-queries")
	}
}

func TestSplitRespectsMaxSplits(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pl := mustPlacement(t, 3, randomRing(12, 0, rng))
	plan, _ := pl.Schedule(3, uniformEst)
	split := pl.SplitSlowest(plan, uniformEst, 0)
	if len(split.Subs) != len(plan.Subs) {
		t.Error("maxSplits=0 must be a no-op")
	}
}

func TestRepairPlanCoversFailedNode(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 25; trial++ {
		n := 15 + rng.Intn(20)
		p := 3 + rng.Intn(3)
		pl := mustPlacement(t, p, randomRing(n, 0, rng))
		plan, err := pl.Schedule(p, uniformEst)
		if err != nil {
			t.Fatal(err)
		}
		// Fail the node serving the first sub-query.
		failedID := plan.Subs[0].Node
		failed := map[ring.NodeID]bool{failedID: true}
		repaired, err := pl.RepairPlan(plan, failed, uniformEst, rng)
		if err != nil {
			// A node with a huge range cannot be bracketed; only accept
			// that explanation.
			arc, _, _ := pl.NodeRange(failedID)
			if arc.Length < (1/float64(p))*0.9 {
				t.Fatalf("trial %d: unexpected repair failure: %v", trial, err)
			}
			continue
		}
		if len(repaired.Subs) != len(plan.Subs)+1 {
			t.Fatalf("repair should add exactly one sub-query: %d -> %d", len(plan.Subs), len(repaired.Subs))
		}
		// No sub-query may touch the failed node.
		for _, s := range repaired.Subs {
			if s.Node == failedID {
				t.Fatal("repaired plan still targets the failed node")
			}
		}
		// Coverage: every object in the failed sub-query's arc is stored
		// on at least one replacement node that will match it.
		orig := plan.Subs[0]
		var reps []SubQuery
		for _, s := range repaired.Subs {
			if s.Lo == orig.Lo && s.Hi == orig.Hi && s.Node != orig.Node {
				reps = append(reps, s)
			}
		}
		if len(reps) != 2 {
			t.Fatalf("want 2 replacement subs, got %d", len(reps))
		}
		for k := 0; k < 200; k++ {
			obj := orig.Lo.Add(orig.Size() * (float64(k) + 0.5) / 200)
			if !orig.Matches(obj) {
				continue
			}
			if !pl.Stores(reps[0].Node, obj) && !pl.Stores(reps[1].Node, obj) {
				t.Fatalf("object %v in failed arc stored on neither replacement (nodes %d,%d)",
					obj, reps[0].Node, reps[1].Node)
			}
		}
	}
}

func TestRepairPlanMultipleFailures(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pl := mustPlacement(t, 4, randomRing(40, 0, rng))
	plan, _ := pl.Schedule(4, uniformEst)
	failed := map[ring.NodeID]bool{}
	for _, s := range plan.Subs[:2] {
		failed[s.Node] = true
	}
	repaired, err := pl.RepairPlan(plan, failed, uniformEst, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range repaired.Subs {
		if failed[s.Node] {
			t.Fatal("repaired plan targets a failed node")
		}
	}
}

func TestSafePQ(t *testing.T) {
	// Increasing p: switch immediately.
	if got := SafePQ(5, 10, false); got != 10 {
		t.Errorf("SafePQ(5->10, unconfirmed) = %d, want 10", got)
	}
	// Decreasing p: stay on old until confirmed.
	if got := SafePQ(10, 5, false); got != 10 {
		t.Errorf("SafePQ(10->5, unconfirmed) = %d, want 10", got)
	}
	if got := SafePQ(10, 5, true); got != 5 {
		t.Errorf("SafePQ(10->5, confirmed) = %d, want 5", got)
	}
}

func TestStoredSet(t *testing.T) {
	pl := mustPlacement(t, 4, ring.NewEqual(8))
	arc, err := pl.StoredSet(2) // node 2 owns [0.25, 0.375)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(arc.Start)-0.0) > 1e-9 || math.Abs(arc.Length-0.375) > 1e-9 {
		t.Errorf("StoredSet(2) = %v, want [0, 0.375)", arc)
	}
	// With p=1 every node stores everything.
	pl1 := mustPlacement(t, 1, ring.NewEqual(8))
	arc, _ = pl1.StoredSet(2)
	if !arc.IsFull() {
		t.Errorf("p=1 stored set should be full, got %v", arc)
	}
}

func BenchmarkScheduleAlg1(b *testing.B) {
	for _, n := range []int{100, 1000} {
		rng := rand.New(rand.NewSource(1))
		pl, _ := NewPlacement(n/10, randomRing(n, 0, rng))
		speeds := map[ring.NodeID]float64{}
		for _, id := range pl.rings[0].IDs() {
			speeds[id] = 0.5 + rng.Float64()*10
		}
		est := speedEst(speeds)
		b.Run(fmtInt("n", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pl.Schedule(n/10, est); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkScheduleStrawman(b *testing.B) {
	for _, n := range []int{100, 1000} {
		rng := rand.New(rand.NewSource(1))
		pl, _ := NewPlacement(n/10, randomRing(n, 0, rng))
		speeds := map[ring.NodeID]float64{}
		for _, id := range pl.rings[0].IDs() {
			speeds[id] = 0.5 + rng.Float64()*10
		}
		est := speedEst(speeds)
		b.Run(fmtInt("n", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pl.ScheduleStrawman(n/10, est); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func fmtInt(k string, v int) string {
	return k + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
