package core

import (
	"math/rand"
	"testing"

	"roar/internal/ring"
)

// hedgeCovers checks that every object the original sub-query would
// match is stored on (and matched by) at least one hedge sub-query's
// node — the correctness property hedged re-dispatch relies on.
func hedgeCovers(t *testing.T, pl *Placement, orig SubQuery, hedges []SubQuery) {
	t.Helper()
	for _, h := range hedges {
		if h.Lo != orig.Lo || h.Hi != orig.Hi {
			t.Fatalf("hedge sub changed the match arc: (%v,%v] vs (%v,%v]", h.Lo, h.Hi, orig.Lo, orig.Hi)
		}
		if h.Node == orig.Node {
			t.Fatalf("hedge sub targets the primary node %d", orig.Node)
		}
	}
	for k := 0; k < 200; k++ {
		obj := orig.Lo.Add(orig.Size() * (float64(k) + 0.5) / 200)
		if !orig.Matches(obj) {
			continue
		}
		stored := false
		for _, h := range hedges {
			if pl.Stores(h.Node, obj) {
				stored = true
				break
			}
		}
		if !stored {
			t.Fatalf("object %v in hedged arc stored on no hedge node %v", obj, hedges)
		}
	}
}

func TestHedgeSubsBracketPairSingleRing(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 12 + rng.Intn(16)
		p := 3 + rng.Intn(3)
		pl := mustPlacement(t, p, randomRing(n, 0, rng))
		plan, err := pl.Schedule(p, uniformEst)
		if err != nil {
			t.Fatal(err)
		}
		orig := plan.Subs[0]
		hedges, err := pl.HedgeSubs(orig, nil, uniformEst, rng)
		if err != nil {
			// Only a primary too wide to bracket excuses failure.
			arc, _, _ := pl.NodeRange(orig.Node)
			if arc.Length < (1/float64(p))*0.9 {
				t.Fatalf("trial %d: unexpected hedge failure: %v", trial, err)
			}
			continue
		}
		hedgeCovers(t, pl, orig, hedges)
	}
}

func TestHedgeSubsPrefersSingleReplicaAcrossRings(t *testing.T) {
	// Two rings (§4.7): every arc has an independent owner on the other
	// ring, so a slow primary hedges onto exactly one covering node.
	rng := rand.New(rand.NewSource(11))
	r0 := ring.NewEqual(6)
	r1 := ring.New()
	for i := 0; i < 6; i++ {
		if err := r1.Insert(ring.NodeID(100+i), ring.Norm(float64(i)/6+0.03)); err != nil {
			t.Fatal(err)
		}
	}
	pl := mustPlacement(t, 3, r0, r1)
	plan, err := pl.Schedule(3, uniformEst)
	if err != nil {
		t.Fatal(err)
	}
	for _, orig := range plan.Subs {
		hedges, err := pl.HedgeSubs(orig, nil, uniformEst, rng)
		if err != nil {
			t.Fatalf("hedge failed with a whole spare ring: %v", err)
		}
		if len(hedges) != 1 {
			t.Fatalf("want single-replica hedge across rings, got %d subs", len(hedges))
		}
		hedgeCovers(t, pl, orig, hedges)
	}
}

func TestHedgeSubsRespectsAvoidSet(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pl := mustPlacement(t, 3, ring.NewEqual(12))
	plan, err := pl.Schedule(3, uniformEst)
	if err != nil {
		t.Fatal(err)
	}
	orig := plan.Subs[0]
	// Avoid a couple of nodes adjacent to the primary.
	succ, _ := pl.rings[0].Successor(orig.Node)
	pred, _ := pl.rings[0].Predecessor(orig.Node)
	avoid := map[ring.NodeID]bool{succ: true, pred: true}
	hedges, err := pl.HedgeSubs(orig, avoid, uniformEst, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hedges {
		if avoid[h.Node] {
			t.Fatalf("hedge targets avoided node %d", h.Node)
		}
	}
	hedgeCovers(t, pl, orig, hedges)
}

// TestRepairPlanRefusesUnbracketableRange is the regression test for
// the bracket-window wrap bug: with n == p every node's range equals
// 1/p, wider than the 1/p−δ bracket span, so no replacement pair can
// straddle the failed node. The repair must say so — the buggy
// clockwise-distance window wrapped to ~1 and returned pairs that
// silently lost part of the arc.
func TestRepairPlanRefusesUnbracketableRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pl := mustPlacement(t, 4, ring.NewEqual(4))
	plan, err := pl.Schedule(4, uniformEst)
	if err != nil {
		t.Fatal(err)
	}
	failed := map[ring.NodeID]bool{plan.Subs[0].Node: true}
	if _, err := pl.RepairPlan(plan, failed, uniformEst, rng); err == nil {
		t.Fatal("RepairPlan produced a bracket for a node range wider than 1/p-δ; such pairs cannot cover the arc")
	}
}
