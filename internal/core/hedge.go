package core

import (
	"fmt"
	"math/rand"

	"roar/internal/ring"
)

// This file implements replica selection for hedged re-dispatch: when a
// sub-query is slow but its node is not (yet) declared failed, the
// frontend speculatively launches the same work on other replicas and
// keeps whichever answer arrives first (Tail-Tolerant Distributed
// Search; Dean's "tail at scale" hedging). Unlike the §4.4 failure
// fallback, hedging must not assume the primary is gone — the selection
// merely avoids it.

// HedgeSubs returns sub-queries that, together, match exactly the same
// object arc as s on nodes other than s.Node (and other than any node
// in avoid). Preference order:
//
//  1. A single node whose stored set covers the whole arc — possible
//     with multiple rings (§4.7), where every object has an independent
//     replica holder per ring, or when a node's range is wide enough.
//  2. The §4.4 bracket pair: two nodes at most 1/p−δ apart whose stored
//     sets jointly cover the arc. This always exists on a single ring
//     when enough non-avoided nodes remain.
//
// The returned sub-queries keep s's (Lo, Hi] match bounds, so replica
// overlap produces only duplicate ids, which the frontend's streaming
// aggregator discards on arrival.
func (pl *Placement) HedgeSubs(s SubQuery, avoid map[ring.NodeID]bool, est Estimator, rng *rand.Rand) ([]SubQuery, error) {
	excluded := func(id ring.NodeID) bool {
		return id == ring.InvalidNode || id == s.Node || avoid[id]
	}
	// Single covering replica: the owner of the sub-query's destination
	// point on each ring is the only candidate per ring (its range must
	// contain Hi for its stored set to reach the arc's end).
	bestID, bestRing, bestFin := ring.InvalidNode, -1, 0.0
	for k, r := range pl.rings {
		id := r.Owner(s.Hi)
		if excluded(id) || !pl.CanServe(id, s.Lo, s.Hi) {
			continue
		}
		fin := est.EstimateFinish(id, s.Size())
		if bestRing < 0 || fin < bestFin {
			bestID, bestRing, bestFin = id, k, fin
		}
	}
	if bestRing >= 0 {
		return []SubQuery{{Node: bestID, Ring: bestRing, Lo: s.Lo, Hi: s.Hi, Est: bestFin}}, nil
	}
	// Bracket pair around the primary, reusing the §4.4 placement with
	// the primary treated as unavailable for selection purposes only.
	failed := make(map[ring.NodeID]bool, len(avoid)+1)
	for id := range avoid {
		failed[id] = true
	}
	failed[s.Node] = true
	a, b, err := pl.replaceSub(s, failed, est, rng)
	if err != nil {
		return nil, fmt.Errorf("core: no hedge replica for sub-query (%v,%v]: %w", s.Lo, s.Hi, err)
	}
	return []SubQuery{a, b}, nil
}
