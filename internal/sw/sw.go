// Package sw implements the discrete Sliding Window distributed-
// rendezvous baseline of §3.3: n nodes in a circular list, object k
// stored on nodes k..k+r-1, and a query visiting every r-th node from
// one of r possible offsets. SW changes r cheaply (grow/shrink each
// window by one) but has only r scheduling choices, poor behaviour under
// failures, and degrading load balance — the weaknesses ROAR fixes.
package sw

import (
	"fmt"
	"math/rand"

	"roar/internal/core"
	"roar/internal/ring"
)

// SW is a discrete sliding-window layout over an ordered node list.
type SW struct {
	nodes []ring.NodeID
	r     int
}

// New builds a sliding window over nodes with replication level r.
// For exact query coverage r must divide n (§3.3's "assuming r divides
// n"); other values are rejected to keep the baseline honest.
func New(nodes []ring.NodeID, r int) (*SW, error) {
	if r <= 0 || r > len(nodes) {
		return nil, fmt.Errorf("sw: replication %d invalid for %d nodes", r, len(nodes))
	}
	if len(nodes)%r != 0 {
		return nil, fmt.Errorf("sw: r=%d does not divide n=%d", r, len(nodes))
	}
	return &SW{nodes: append([]ring.NodeID(nil), nodes...), r: r}, nil
}

// R returns the replication level.
func (s *SW) R() int { return s.r }

// P returns the partitioning level n/r.
func (s *SW) P() int { return len(s.nodes) / s.r }

// N returns the node count.
func (s *SW) N() int { return len(s.nodes) }

// Replicas returns the node indices storing object slot k (the window
// k..k+r-1 mod n). Objects are assigned to slots uniformly.
func (s *SW) Replicas(slot int) []ring.NodeID {
	n := len(s.nodes)
	out := make([]ring.NodeID, s.r)
	for i := 0; i < s.r; i++ {
		out[i] = s.nodes[(slot+i)%n]
	}
	return out
}

// StoreSlot picks the storage slot for a new object.
func (s *SW) StoreSlot(rng *rand.Rand) int { return rng.Intn(len(s.nodes)) }

// Assignment is one sub-query of an SW plan.
type Assignment struct {
	Node ring.NodeID
	Est  float64
}

// Plan is an SW query assignment: p nodes, every r-th from the offset.
type Plan struct {
	Offset int
	Subs   []Assignment
	Delay  float64
}

// Schedule evaluates all r offsets — SW's only degree of freedom (§3.3)
// — and returns the one with the smallest estimated delay. A failed node
// makes its offset unusable (the basic SW algorithm has no finer-grained
// fallback); if all offsets are blocked an error is returned.
func (s *SW) Schedule(est core.Estimator, failed map[ring.NodeID]bool) (Plan, error) {
	n := len(s.nodes)
	p := s.P()
	size := 1 / float64(p)
	var best Plan
	found := false
	for off := 0; off < s.r; off++ {
		plan := Plan{Offset: off, Subs: make([]Assignment, 0, p)}
		ok := true
		for i := 0; i < p; i++ {
			id := s.nodes[(off+i*s.r)%n]
			if failed[id] {
				ok = false
				break
			}
			fin := est.EstimateFinish(id, size)
			plan.Subs = append(plan.Subs, Assignment{Node: id, Est: fin})
			if fin > plan.Delay {
				plan.Delay = fin
			}
		}
		if !ok {
			continue
		}
		if !found || plan.Delay < best.Delay {
			best, found = plan, true
		}
	}
	if !found {
		return Plan{}, fmt.Errorf("sw: every offset hits a failed node")
	}
	return best, nil
}

// ChangeR models §3.3's cheap replication change: growing r by one
// copies 1/n of the data per node (each node replicates its window edge
// to the successor); shrinking r deletes without transfer. Returns the
// fraction of the dataset transferred.
func (s *SW) ChangeR(newR int) (fractionMoved float64, err error) {
	if newR <= 0 || newR > len(s.nodes) {
		return 0, fmt.Errorf("sw: replication %d invalid for %d nodes", newR, len(s.nodes))
	}
	if len(s.nodes)%newR != 0 {
		return 0, fmt.Errorf("sw: r=%d does not divide n=%d", newR, len(s.nodes))
	}
	old := s.r
	s.r = newR
	if newR <= old {
		return 0, nil // deletions only
	}
	// Each +1 step replicates each object once more: (newR-old)/old of
	// the currently stored bytes, i.e. (newR-old)·D objects of D·old
	// stored — as a fraction of the dataset D it is simply newR-old
	// full copies.
	return float64(newR - old), nil
}

// Choices returns SW's scheduling choice count: r (§3.3).
func (s *SW) Choices() float64 { return float64(s.r) }
