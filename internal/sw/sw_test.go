package sw

import (
	"math"
	"testing"

	"roar/internal/core"
	"roar/internal/ring"
)

func nodeIDs(n int) []ring.NodeID {
	out := make([]ring.NodeID, n)
	for i := range out {
		out[i] = ring.NodeID(i)
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nodeIDs(12), 5); err == nil {
		t.Error("r not dividing n should be rejected")
	}
	if _, err := New(nodeIDs(12), 0); err == nil {
		t.Error("r=0 should be rejected")
	}
	s, err := New(nodeIDs(12), 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.P() != 4 || s.R() != 3 || s.N() != 12 {
		t.Errorf("P=%d R=%d N=%d", s.P(), s.R(), s.N())
	}
}

func TestReplicasWindow(t *testing.T) {
	s, _ := New(nodeIDs(12), 3)
	got := s.Replicas(10) // nodes 10, 11, 0
	want := []ring.NodeID{10, 11, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Replicas(10) = %v, want %v", got, want)
		}
	}
}

// TestQueryCoverage: for any slot and any offset, the query built from
// that offset must visit at least one replica of the slot.
func TestQueryCoverage(t *testing.T) {
	s, _ := New(nodeIDs(12), 3)
	for slot := 0; slot < 12; slot++ {
		replicas := map[ring.NodeID]bool{}
		for _, id := range s.Replicas(slot) {
			replicas[id] = true
		}
		for off := 0; off < s.R(); off++ {
			hit := false
			for i := 0; i < s.P(); i++ {
				if replicas[s.nodes[(off+i*s.R())%12]] {
					hit = true
					break
				}
			}
			if !hit {
				t.Fatalf("slot %d offset %d: query misses all replicas", slot, off)
			}
		}
	}
}

func TestSchedulePicksBestOffset(t *testing.T) {
	s, _ := New(nodeIDs(6), 3) // p=2, offsets 0,1,2
	speeds := map[ring.NodeID]float64{0: 1, 1: 10, 2: 1, 3: 1, 4: 10, 5: 1}
	est := core.EstimatorFunc(func(id ring.NodeID, size float64) float64 {
		return size / speeds[id]
	})
	plan, err := s.Schedule(est, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Offset 1 uses nodes 1 and 4, both fast.
	if plan.Offset != 1 {
		t.Errorf("picked offset %d, want 1", plan.Offset)
	}
	if math.Abs(plan.Delay-0.05) > 1e-12 {
		t.Errorf("delay = %v, want 0.05", plan.Delay)
	}
}

func TestScheduleFailedBlocksOffsets(t *testing.T) {
	s, _ := New(nodeIDs(6), 3)
	est := core.EstimatorFunc(func(id ring.NodeID, size float64) float64 { return size })
	plan, err := s.Schedule(est, map[ring.NodeID]bool{1: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range plan.Subs {
		if a.Node == 1 {
			t.Error("plan uses failed node")
		}
	}
	// Fail one node in every offset class: 0, 1, 2 kill all offsets
	// (offset k uses nodes k and k+3).
	if _, err := s.Schedule(est, map[ring.NodeID]bool{0: true, 1: true, 2: true}); err == nil {
		t.Error("all offsets blocked should error")
	}
}

func TestChangeR(t *testing.T) {
	s, _ := New(nodeIDs(12), 3)
	moved, err := s.ChangeR(4)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 1 {
		t.Errorf("growing r by 1 should transfer one full copy, got %v", moved)
	}
	if s.R() != 4 || s.P() != 3 {
		t.Errorf("after change R=%d P=%d", s.R(), s.P())
	}
	moved, err = s.ChangeR(2)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 {
		t.Errorf("shrinking r transfers nothing, got %v", moved)
	}
	if _, err := s.ChangeR(5); err == nil {
		t.Error("r not dividing n should be rejected")
	}
}

func TestChoices(t *testing.T) {
	s, _ := New(nodeIDs(12), 3)
	if s.Choices() != 3 {
		t.Errorf("SW choices = %v, want r=3", s.Choices())
	}
}
