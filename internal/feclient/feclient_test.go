package feclient

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"roar/internal/pps"
	"roar/internal/proto"
	"roar/internal/wire"
)

// fakeFE scripts a frontend server generation: it inspects each request's
// encoding (visible here as the argument's Go type and extension state)
// and either answers or rejects the way that generation's wire stack
// would.
type fakeFE struct {
	generation string // "new", "binary-base", "json-only"
	code       bool   // attach typed codes (false = pre-code spellings)
	calls      []string
}

func (f *fakeFE) Call(_ context.Context, method string, in, out interface{}) error {
	if method != proto.MFEQuery {
		f.calls = append(f.calls, method)
		return nil
	}
	enc := "full"
	switch req := in.(type) {
	case proto.FEQueryReq:
		if !req.HasExt() {
			enc = "base"
		}
	case feQueryReqJSON:
		enc = "json"
	default:
		return fmt.Errorf("unexpected request type %T", in)
	}
	f.calls = append(f.calls, enc)
	reject := func(code, msg string) error {
		re := &wire.RemoteError{Method: proto.MFEQuery, Msg: msg}
		if f.code {
			re.Code = code
		}
		return re
	}
	switch f.generation {
	case "new":
	case "binary-base":
		// Decodes FEQueryReq binary but predates the extension trailer.
		if enc == "full" {
			return reject(wire.CodeTrailingBytes, "proto: 5 trailing bytes after FEQueryReq")
		}
	case "json-only":
		// Negotiated the binary envelope, has no FEQueryReq decoder.
		if enc != "json" {
			return reject(wire.CodeBinaryBody, "wire: *proto.FEQueryReq cannot decode a binary body")
		}
	}
	*(out.(*proto.FEQueryResp)) = proto.FEQueryResp{IDs: []uint64{42}, Source: "fanout"}
	return nil
}

func extReq() proto.FEQueryReq {
	return proto.FEQueryReq{Tenant: "acme", CacheControl: proto.CacheRefresh}
}

func TestQueryNewServerStaysFull(t *testing.T) {
	fe := &fakeFE{generation: "new", code: true}
	cl := New(fe, Options{})
	for i := 0; i < 3; i++ {
		resp, err := cl.Query(context.Background(), extReq())
		if err != nil || len(resp.IDs) != 1 {
			t.Fatalf("query %d: resp=%v err=%v", i, resp, err)
		}
	}
	for i, enc := range fe.calls {
		if enc != "full" {
			t.Errorf("call %d used %q, want full encoding against a new server", i, enc)
		}
	}
}

func TestQueryDowngradesToStrippedBinary(t *testing.T) {
	for _, typed := range []bool{true, false} {
		fe := &fakeFE{generation: "binary-base", code: typed}
		cl := New(fe, Options{Logf: t.Logf})
		resp, err := cl.Query(context.Background(), extReq())
		if err != nil {
			t.Fatalf("typed=%v: downgrade did not retry in-call: %v", typed, err)
		}
		if len(resp.IDs) != 1 {
			t.Fatalf("typed=%v: bad resp %v", typed, resp)
		}
		if want := []string{"full", "base"}; len(fe.calls) != 2 || fe.calls[0] != want[0] || fe.calls[1] != want[1] {
			t.Fatalf("typed=%v: calls = %v, want %v", typed, fe.calls, want)
		}
		// Latched: the next query goes straight to the stripped form.
		if _, err := cl.Query(context.Background(), extReq()); err != nil {
			t.Fatal(err)
		}
		if fe.calls[2] != "base" {
			t.Errorf("typed=%v: latched client sent %q, want base", typed, fe.calls[2])
		}
	}
}

func TestQueryDowngradesToJSON(t *testing.T) {
	for _, typed := range []bool{true, false} {
		fe := &fakeFE{generation: "json-only", code: typed}
		cl := New(fe, Options{Logf: t.Logf})
		resp, err := cl.Query(context.Background(), extReq())
		if err != nil {
			t.Fatalf("typed=%v: %v", typed, err)
		}
		if len(resp.IDs) != 1 {
			t.Fatalf("typed=%v: bad resp %v", typed, resp)
		}
		if last := fe.calls[len(fe.calls)-1]; last != "json" {
			t.Errorf("typed=%v: final call used %q, want json", typed, last)
		}
		// JSON keeps the extension fields — old servers ignore unknown
		// keys, new ones honour them — so no information is lost.
		if _, err := cl.Query(context.Background(), extReq()); err != nil {
			t.Fatal(err)
		}
		if last := fe.calls[len(fe.calls)-1]; last != "json" {
			t.Errorf("typed=%v: latched client sent %q, want json", typed, last)
		}
	}
}

func TestQueryReprobesAndRecovers(t *testing.T) {
	fe := &fakeFE{generation: "binary-base", code: true}
	cl := New(fe, Options{Logf: t.Logf})
	if _, err := cl.Query(context.Background(), extReq()); err != nil {
		t.Fatal(err)
	}
	// The server upgrades in place.
	fe.generation = "new"
	var sawFull bool
	for i := 0; i < probeEvery+1; i++ {
		if _, err := cl.Query(context.Background(), extReq()); err != nil {
			t.Fatal(err)
		}
	}
	for _, enc := range fe.calls[2:] {
		if enc == "full" {
			sawFull = true
		}
	}
	if !sawFull {
		t.Fatal("client never re-probed the full encoding")
	}
	// Recovery latched: everything after the successful probe is full.
	n := len(fe.calls)
	if _, err := cl.Query(context.Background(), extReq()); err != nil {
		t.Fatal(err)
	}
	if fe.calls[n] != "full" {
		t.Errorf("post-recovery call used %q, want full", fe.calls[n])
	}
}

func TestQueryNoExtSkipsStripRung(t *testing.T) {
	// A request with no extension fields already IS the base form; a
	// trailing-bytes rejection of it proves nothing a strip would fix.
	fe := &fakeFE{generation: "binary-base", code: true}
	cl := New(fe, Options{})
	resp, err := cl.Query(context.Background(), proto.FEQueryReq{})
	if err != nil || len(resp.IDs) != 1 {
		t.Fatalf("plain request against binary-base server: resp=%v err=%v", resp, err)
	}
	if len(fe.calls) != 1 || fe.calls[0] != "base" {
		t.Errorf("calls = %v, want one base-encoded call", fe.calls)
	}
}

// transportCaller fails every call with a non-remote error carrying the
// rejection spellings — which must never classify.
type transportCaller struct{ calls int }

func (c *transportCaller) Call(context.Context, string, interface{}, interface{}) error {
	c.calls++
	return errors.New("proxy: upstream said: cannot decode a binary body (trailing bytes after FEQueryReq)")
}

func TestTransportTextNeverDowngrades(t *testing.T) {
	tc := &transportCaller{}
	cl := New(tc, Options{})
	if _, err := cl.Query(context.Background(), extReq()); err == nil {
		t.Fatal("transport error swallowed")
	}
	if tc.calls != 1 {
		t.Errorf("client retried a transport error %d times; must fail through", tc.calls)
	}
	cl.mu.Lock()
	level := cl.level
	cl.mu.Unlock()
	if level != encFull {
		t.Errorf("transport text latched a downgrade to level %d", level)
	}
}

func TestPutForwards(t *testing.T) {
	fe := &fakeFE{generation: "new", code: true}
	cl := New(fe, Options{})
	if _, err := cl.Put(context.Background(), []pps.Encoded{}); err != nil {
		t.Fatal(err)
	}
	if len(fe.calls) != 1 || fe.calls[0] != proto.MFEPut {
		t.Errorf("calls = %v, want one fe.put", fe.calls)
	}
}

// TestWireInteropOldServer runs the ladder against a REAL wire server
// whose fe.query handler predates the FEQueryReq binary codec: it
// decodes into a methodless struct, so a binary body fails exactly the
// way a PR3-era frontend's would, end to end through negotiation,
// framing, and typed-error parsing.
func TestWireInteropOldServer(t *testing.T) {
	type oldFEQueryReq proto.FEQueryReq // no AppendWire/DecodeWire: the old shape
	d := wire.NewDispatcher()
	d.Register(proto.MFEQuery, func(_ context.Context, _ string, body wire.Body) (interface{}, error) {
		var req oldFEQueryReq
		if err := body.Decode(&req); err != nil {
			return nil, err
		}
		// Old servers never saw Tenant/CacheControl; JSON decoding just
		// drops the unknown keys.
		return proto.FEQueryResp{IDs: []uint64{7}}, nil
	})
	srv, err := wire.Serve("127.0.0.1:0", d.Handle)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	wc := wire.NewClient(srv.Addr())
	defer wc.Close()

	cl := New(wc, Options{Logf: t.Logf})
	resp, err := cl.Query(context.Background(), extReq())
	if err != nil {
		t.Fatalf("ladder never reached an encoding the old server accepts: %v", err)
	}
	if len(resp.IDs) != 1 || resp.IDs[0] != 7 {
		t.Fatalf("bad response %v", resp)
	}
	// Latched on JSON: a second query succeeds without retries.
	if _, err := cl.Query(context.Background(), extReq()); err != nil {
		t.Fatal(err)
	}
}
