// Package feclient is the client side of the frontend query API: a thin
// wrapper over wire.Client that speaks the newest FEQueryReq encoding —
// binary, with the tenant/cache-control trailing extension — and
// downgrades per evidence when the frontend predates it, so one binary
// works against every deployed server generation (docs/ECONOMICS.md).
//
// The ladder has three rungs, latched per client and re-probed every
// probeEvery requests (mirroring the frontend→coordinator health-push
// ladder in internal/frontend/sync.go):
//
//	0: binary encoding, extension block included (newest servers)
//	1: binary encoding, extensions stripped — the server decodes
//	   FEQueryReq binary but rejects the trailer (trailing-bytes)
//	2: JSON encoding — the server negotiated the binary envelope but
//	   has no FEQueryReq binary decoder at all (binary-body). JSON
//	   keeps the extension fields: old servers ignore unknown keys.
//
// Only an error the remote HANDLER reported (wire.RemoteError)
// classifies, by typed code when present with the historic spellings as
// fallback; transport errors never latch. A query whose downgrade is
// discovered mid-call is retried at the lower rung within the same
// Query invocation — queries are idempotent, so the caller just sees a
// slower first answer, not a spurious failure.
package feclient

import (
	"context"
	"errors"
	"strings"
	"sync"

	"roar/internal/pps"
	"roar/internal/proto"
	"roar/internal/wire"
)

// Caller is the frontend transport (satisfied by wire.Client).
type Caller interface {
	Call(ctx context.Context, method string, in, out interface{}) error
}

// Encoding rungs.
const (
	encFull     = 0 // binary, extension block included
	encStripExt = 1 // binary, base form only
	encJSON     = 2 // JSON body (named-type trick drops the appender)
)

// probeEvery is the re-probe cadence: after this many requests in a
// downgraded encoding, one request retries the full-fidelity form.
// Success un-latches; the specific rejection re-latches for another
// window at the cost of one predictable retried request.
const probeEvery = 16

// Options tunes a Client. The zero value is ready to use.
type Options struct {
	// Logf, when set, receives one line per downgrade transition.
	Logf func(format string, args ...any)
}

// Client issues queries and async puts against one frontend.
type Client struct {
	c    Caller
	logf func(format string, args ...any)

	mu         sync.Mutex
	level      int
	sinceProbe int
}

// New wraps a frontend transport.
func New(c Caller, opts Options) *Client {
	return &Client{c: c, logf: opts.Logf}
}

// feQueryReqJSON is proto.FEQueryReq minus its methods: converting to a
// defined type keeps the field tags but drops AppendWire, so encodeBody
// falls back to JSON even on a binary-negotiated connection — exactly
// the rung-2 escape hatch.
type feQueryReqJSON proto.FEQueryReq

// levelNames label transitions in logs.
var levelNames = [...]string{"full binary", "binary (extensions stripped)", "JSON"}

// Query runs one query, downgrading and retrying within the call when
// the server's rejection proves it predates the encoding sent.
func (c *Client) Query(ctx context.Context, req proto.FEQueryReq) (proto.FEQueryResp, error) {
	c.mu.Lock()
	level := c.level
	if level != encFull {
		c.sinceProbe++
		if c.sinceProbe >= probeEvery {
			c.sinceProbe = 0
			level = encFull // retry full fidelity this round
		}
	}
	c.mu.Unlock()

	for {
		var resp proto.FEQueryResp
		err := c.callAt(ctx, level, req, &resp)
		if err == nil {
			c.latch(level)
			return resp, nil
		}
		next, ok := downgradeFor(err, level, req)
		if !ok {
			return proto.FEQueryResp{}, err
		}
		level = next
	}
}

// callAt issues the request in one specific encoding.
func (c *Client) callAt(ctx context.Context, level int, req proto.FEQueryReq, resp *proto.FEQueryResp) error {
	switch level {
	case encStripExt:
		return c.c.Call(ctx, proto.MFEQuery, req.StripExt(), resp)
	case encJSON:
		return c.c.Call(ctx, proto.MFEQuery, feQueryReqJSON(req), resp)
	default:
		return c.c.Call(ctx, proto.MFEQuery, req, resp)
	}
}

// latch records the encoding that worked, logging transitions.
func (c *Client) latch(level int) {
	c.mu.Lock()
	changed := c.level != level
	c.level = level
	if level == encFull {
		c.sinceProbe = 0
	}
	c.mu.Unlock()
	if changed && c.logf != nil {
		if level == encFull {
			c.logf("feclient: frontend accepts the full encoding again; downgrade cleared")
		} else {
			c.logf("feclient: frontend rejected the request encoding; downgrading to %s", levelNames[level])
		}
	}
}

// downgradeFor classifies a failure into the next rung to try, if any.
// A trailing-bytes rejection of a request that actually carried the
// extension block drops to the stripped binary; a binary-body rejection
// proves the server cannot decode FEQueryReq binary at all and drops
// straight to JSON. Anything else — including the same rejection at a
// rung that should have cured it — is the caller's error.
func downgradeFor(err error, level int, req proto.FEQueryReq) (int, bool) {
	trailing, binaryBody := rejectionSignal(err)
	switch {
	case trailing && level == encFull && req.HasExt():
		return encStripExt, true
	case binaryBody && level < encJSON:
		return encJSON, true
	default:
		return 0, false
	}
}

// rejectionSignal classifies an error into the mixed-version rejection
// it proves, if any. Typed codes are authoritative; the bare-string
// fallbacks accept the exact spellings of servers that predate them.
func rejectionSignal(err error) (trailing, binaryBody bool) {
	var re *wire.RemoteError
	if !errors.As(err, &re) {
		return false, false
	}
	switch re.Code {
	case wire.CodeTrailingBytes:
		return true, false
	case wire.CodeBinaryBody:
		return false, true
	case "": // pre-code server: fall through to the exact spellings
	default:
		return false, false
	}
	if strings.Contains(re.Msg, "trailing bytes after FEQueryReq") {
		return true, false
	}
	if strings.Contains(re.Msg, "cannot decode a binary body") {
		return false, true
	}
	return false, false
}

// Put forwards a record batch to the frontend's async ingest (fe.put).
// The reply acknowledges WAL durability; poll Drained against Seq when
// delivery matters. FEPutReq predates this client, so no ladder applies.
func (c *Client) Put(ctx context.Context, recs []pps.Encoded) (proto.FEPutResp, error) {
	var resp proto.FEPutResp
	if err := c.c.Call(ctx, proto.MFEPut, proto.FEPutReq{Records: recs}, &resp); err != nil {
		return proto.FEPutResp{}, err
	}
	return resp, nil
}
