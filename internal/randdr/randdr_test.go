package randdr

import (
	"math/rand"
	"testing"

	"roar/internal/core"
	"roar/internal/ring"
)

func nodeIDs(n int) []ring.NodeID {
	out := make([]ring.NodeID, n)
	for i := range out {
		out[i] = ring.NodeID(i)
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nodeIDs(10), 0, 2); err == nil {
		t.Error("r=0 rejected")
	}
	if _, err := New(nodeIDs(10), 2, 0.5); err == nil {
		t.Error("c<1 rejected")
	}
}

func TestCounts(t *testing.T) {
	d, err := New(nodeIDs(100), 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	store, query := d.MessageCost()
	if store != 20 {
		t.Errorf("store count = %d, want c*r = 20", store)
	}
	if query != 20 {
		t.Errorf("query count = %d, want c*n/r = 20", query)
	}
}

func TestSamplesAreDistinct(t *testing.T) {
	d, _ := New(nodeIDs(50), 5, 2)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		seen := map[ring.NodeID]bool{}
		for _, id := range d.StoreReplicas(rng) {
			if seen[id] {
				t.Fatal("duplicate replica target")
			}
			seen[id] = true
		}
	}
}

func TestExpectedHarvest(t *testing.T) {
	// c=2 should give ~98% harvest per §3.2.
	d, _ := New(nodeIDs(1000), 30, 2)
	h := d.ExpectedHarvest()
	if h < 0.95 || h > 1 {
		t.Errorf("harvest = %v, want ~0.98", h)
	}
	// c=1 harvest is visibly lower.
	d1, _ := New(nodeIDs(1000), 30, 1)
	if h1 := d1.ExpectedHarvest(); h1 >= h {
		t.Errorf("c=1 harvest %v should be below c=2 harvest %v", h1, h)
	}
}

func TestEmpiricalHarvestMatches(t *testing.T) {
	d, _ := New(nodeIDs(200), 10, 2)
	rng := rand.New(rand.NewSource(2))
	hits := 0
	const trials = 3000
	for i := 0; i < trials; i++ {
		replicas := map[ring.NodeID]bool{}
		for _, id := range d.StoreReplicas(rng) {
			replicas[id] = true
		}
		for _, id := range d.QueryTargets(rng) {
			if replicas[id] {
				hits++
				break
			}
		}
	}
	got := float64(hits) / trials
	want := d.ExpectedHarvest()
	if got < want-0.02 || got > want+0.02 {
		t.Errorf("empirical harvest %v vs analytic %v", got, want)
	}
}

func TestSchedule(t *testing.T) {
	d, _ := New(nodeIDs(100), 10, 2)
	rng := rand.New(rand.NewSource(3))
	est := core.EstimatorFunc(func(id ring.NodeID, size float64) float64 { return size })
	plan, err := d.Schedule(est, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Subs) != 20 {
		t.Errorf("got %d targets, want 20", len(plan.Subs))
	}
	if plan.Delay != 0.1 {
		t.Errorf("delay = %v, want size 0.1", plan.Delay)
	}
	// Failed targets are simply dropped (harvest loss, not failure).
	failed := map[ring.NodeID]bool{}
	for i := 0; i < 99; i++ {
		failed[ring.NodeID(i)] = true
	}
	if _, err := d.Schedule(est, rng, failed); err == nil {
		// One node may survive the draw; retry with all failed.
		failed[99] = true
		if _, err := d.Schedule(est, rng, failed); err == nil {
			t.Error("all-failed draw should error")
		}
	}
}
