// Package randdr implements the Randomized distributed-rendezvous
// baseline of §3.2 (in the style of BubbleStorm): object replicas are
// placed on c·r random servers, and queries visit c·n/r random servers.
// Coverage is probabilistic — harvest is below 100% — which is why §3.4
// dismisses it for data-center use; it exists here to reproduce the
// comparison tables.
package randdr

import (
	"fmt"
	"math"
	"math/rand"

	"roar/internal/core"
	"roar/internal/ring"
)

// Rand is a randomized DR layout.
type Rand struct {
	nodes []ring.NodeID
	r     int
	c     float64
}

// New builds the layout. c is the overprovisioning constant; the typical
// value 2 yields ~98% harvest (§3.2).
func New(nodes []ring.NodeID, r int, c float64) (*Rand, error) {
	if r <= 0 || r > len(nodes) {
		return nil, fmt.Errorf("randdr: replication %d invalid for %d nodes", r, len(nodes))
	}
	if c < 1 {
		return nil, fmt.Errorf("randdr: c must be >= 1, got %v", c)
	}
	return &Rand{nodes: append([]ring.NodeID(nil), nodes...), r: r, c: c}, nil
}

// StoreReplicas draws the c·r random distinct servers for a new object
// (the random-walk endpoints of §3.2).
func (d *Rand) StoreReplicas(rng *rand.Rand) []ring.NodeID {
	k := d.storeCount()
	return d.sample(k, rng)
}

// QueryTargets draws the c·n/r random distinct servers a query visits.
func (d *Rand) QueryTargets(rng *rand.Rand) []ring.NodeID {
	k := d.queryCount()
	return d.sample(k, rng)
}

func (d *Rand) storeCount() int {
	k := int(math.Ceil(d.c * float64(d.r)))
	if k > len(d.nodes) {
		k = len(d.nodes)
	}
	return k
}

func (d *Rand) queryCount() int {
	k := int(math.Ceil(d.c * float64(len(d.nodes)) / float64(d.r)))
	if k > len(d.nodes) {
		k = len(d.nodes)
	}
	return k
}

func (d *Rand) sample(k int, rng *rand.Rand) []ring.NodeID {
	idx := rng.Perm(len(d.nodes))[:k]
	out := make([]ring.NodeID, k)
	for i, j := range idx {
		out[i] = d.nodes[j]
	}
	return out
}

// ExpectedHarvest returns the probability that a query visits at least
// one replica of a given object: 1 - (1 - s/n)^q for s stored copies and
// q query targets, the hypergeometric miss bound of §3.2.
func (d *Rand) ExpectedHarvest() float64 {
	n := float64(len(d.nodes))
	s := float64(d.storeCount())
	q := float64(d.queryCount())
	// Exact hypergeometric: P(miss) = C(n-s, q)/C(n, q).
	miss := 1.0
	for i := 0.0; i < q; i++ {
		miss *= (n - s - i) / (n - i)
		if miss <= 0 {
			return 1
		}
	}
	return 1 - miss
}

// Plan is a randomized query assignment.
type Plan struct {
	Subs  []Assignment
	Delay float64
}

// Assignment is one sub-query target.
type Assignment struct {
	Node ring.NodeID
	Est  float64
}

// Schedule draws the random target set and estimates its delay. Each
// target searches its full local share, size 1/p with p = n/r (the
// overprovisioning spends c× more messages, not smaller sub-queries).
func (d *Rand) Schedule(est core.Estimator, rng *rand.Rand, failed map[ring.NodeID]bool) (Plan, error) {
	size := float64(d.r) / float64(len(d.nodes))
	targets := d.QueryTargets(rng)
	plan := Plan{Subs: make([]Assignment, 0, len(targets))}
	for _, id := range targets {
		if failed[id] {
			continue // randomized DR simply loses that server's share
		}
		fin := est.EstimateFinish(id, size)
		plan.Subs = append(plan.Subs, Assignment{Node: id, Est: fin})
		if fin > plan.Delay {
			plan.Delay = fin
		}
	}
	if len(plan.Subs) == 0 {
		return Plan{}, fmt.Errorf("randdr: all drawn targets failed")
	}
	return plan, nil
}

// MessageCost returns the per-operation message counts for Table 6.2:
// store sends c·r messages, query sends c·n/r.
func (d *Rand) MessageCost() (store, query int) {
	return d.storeCount(), d.queryCount()
}
