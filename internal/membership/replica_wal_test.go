package membership

import (
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"roar/internal/ingest"
	"roar/internal/store"
	"roar/internal/wire"
)

// TestReplicaLazyWALOpenAndHandoff pins the multi-process WAL
// lifecycle: replicas sharing a WAL *directory* (separate handles, not
// the in-process shared *ingest.WAL) must open it only on winning an
// election — opening at startup races the peers on segment creation
// and leaves followers with handles that go stale the moment the
// leader appends. On failover the successor's fresh open must see
// everything the previous leader fsynced.
func TestReplicaLazyWALOpenAndHandoff(t *testing.T) {
	dir := t.TempDir()
	var opens atomic.Int32
	backend := store.New()
	lns := make([]net.Listener, 3)
	peers := make([]string, 3)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		peers[i] = ln.Addr().String()
	}
	reps := make([]*Replica, 3)
	for i := range reps {
		rep, err := NewReplica(ReplicaConfig{
			Self:        peers[i],
			Peers:       peers,
			Lease:       150 * time.Millisecond,
			Heartbeat:   40 * time.Millisecond,
			Coordinator: Config{P: 1, Backend: backend},
			OpenWAL: func() (*ingest.WAL, error) {
				opens.Add(1)
				return ingest.Open(dir, ingest.Options{})
			},
			Logf: t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		d := wire.NewDispatcher()
		rep.RegisterHandlers(d)
		srv := wire.ServeListener(lns[i], d.Handle, wire.ServerConfig{})
		t.Cleanup(func() { rep.Stop(); srv.Close() })
		reps[i] = rep
	}
	for _, rep := range reps {
		rep.Start()
	}

	leader := waitLeader(t, reps)
	if got := opens.Load(); got != 1 {
		t.Fatalf("%d WAL opens after first election, want 1 (leader only)", got)
	}

	// Durably accept records through the leader's handle. No nodes have
	// joined, so the drain stalls — acceptance must not care.
	enc := slimEncoder()
	recs := corpus(t, enc, 3)
	resp, err := leader.IngestAppend(context.Background(), recs)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Seq != 3 {
		t.Fatalf("IngestAppend seq = %d, want 3", resp.Seq)
	}

	// Kill the leader. Its coordinator owns the handle and closes it;
	// the successor's OpenWAL scan must pick up the fsynced frames.
	leader.Stop()
	next := waitLeader(t, reps)
	if next == leader {
		t.Fatal("stopped leader still leads")
	}
	if got := opens.Load(); got != 2 {
		t.Fatalf("%d WAL opens after failover, want 2", got)
	}
	resp, err = next.IngestAppend(context.Background(), recs[:1])
	if err != nil {
		t.Fatal(err)
	}
	if resp.Seq != 4 {
		t.Fatalf("successor's append got seq %d, want 4 (old leader's 3 frames recovered)", resp.Seq)
	}
}
