// Durable ingest: the coordinator's half of the internal/ingest
// pipeline. IngestAppend accepts records into the write-ahead log —
// acceptance means durability, not delivery — and StartIngest runs the
// consumer that drains the log to the p owning nodes.
//
// Routing happens per delivery attempt through ingestRoute, which reads
// the CURRENT topology and epoch under the coordinator lock. That one
// property carries all of the pipeline's fault tolerance on this side:
//
//   - A node that dies mid-drain stalls the batch (its push keeps
//     failing, the batch keeps retrying); the moment the node is
//     decommissioned its arc belongs to other nodes, the next attempt
//     routes there, and the WAL replays the affected records into the
//     replacements. No special replay code path exists — replay IS the
//     retry loop against the new topology.
//   - Pushes are fenced with the epoch the route was computed under, so
//     a push racing a reconfiguration is rejected (stale-epoch) instead
//     of landing on a node that no longer owns the record, and the
//     retry re-routes under the new epoch.
//
// Replicated coordinators (replica.go) share the WAL and replicate the
// drained watermark in ControlState; a new leader calls StartIngest
// with the restored watermark and resumes — re-delivering at most the
// un-replicated tail, which node-side dedup absorbs.
package membership

import (
	"context"
	"fmt"
	"time"

	"roar/internal/ingest"
	"roar/internal/pps"
	"roar/internal/ring"
	"roar/internal/store"
	"roar/internal/wire"
)

// IngestConfig tunes the drain consumer. Zero values take the
// ingest.ConsumerConfig defaults.
type IngestConfig struct {
	// Batch caps records per delivery round.
	Batch int
	// MinBackoff / MaxBackoff bound the delivery retry delay.
	MinBackoff time.Duration
	MaxBackoff time.Duration
	// OnAdvance, when set, observes every drained-watermark advance
	// (the replica layer uses it to schedule watermark replication).
	// Called from the drain goroutine; must not block.
	OnAdvance func(drained uint64)
	// Logf, when set, receives one line per delivery failure.
	Logf func(format string, args ...any)
	// After injects the backoff timer (tests). Nil means real time.
	After func(time.Duration) <-chan time.Time
}

// IngestEnabled reports whether this coordinator has a WAL attached.
func (c *Coordinator) IngestEnabled() bool { return c.wal != nil }

// IngestAppend durably accepts records: they are fsynced to the WAL and
// inserted into the backend before the call returns; delivery to the
// owning nodes happens asynchronously. Returns the WAL sequence of the
// last record — WaitIngestDrained on it blocks until delivery.
func (c *Coordinator) IngestAppend(ctx context.Context, recs []pps.Encoded) (uint64, error) {
	if c.wal == nil {
		return 0, errIngestDisabled
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	seq, err := c.wal.Append(recs...)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	c.backend.Insert(recs...)
	if seq > c.ingestSeq {
		c.ingestSeq = seq
	}
	c.mu.Unlock()
	return seq, nil
}

type ingestDisabledError struct{}

func (ingestDisabledError) Error() string { return "membership: ingest disabled (no WAL configured)" }

// WireErrorCode implements wire.ErrorCoder so remote producers can
// branch on the condition.
func (ingestDisabledError) WireErrorCode() string { return "ingest-disabled" }

var errIngestDisabled = ingestDisabledError{}

// StartIngest replays the WAL into the backend (restart recovery;
// backend inserts dedup by ID, so replaying records the backend already
// holds is a no-op) and starts the drain consumer from the given
// watermark bookkeeping. No-op without a WAL or when already started.
func (c *Coordinator) StartIngest(cfg IngestConfig) error {
	if c.wal == nil {
		return nil
	}
	var recs []pps.Encoded
	err := c.wal.Replay(0, func(seq uint64, rec pps.Encoded) bool {
		recs = append(recs, rec)
		return true
	})
	if err != nil {
		return err
	}
	last := c.wal.LastSeq()
	c.mu.Lock()
	if c.consumer != nil {
		c.mu.Unlock()
		return nil
	}
	c.backend.Insert(recs...)
	if last > c.ingestSeq {
		c.ingestSeq = last
	}
	from := c.ingestDrained
	cons := ingest.NewConsumer(c.wal, ingest.ConsumerConfig{
		Route:      c.ingestRoute,
		BatchSize:  cfg.Batch,
		MinBackoff: cfg.MinBackoff,
		MaxBackoff: cfg.MaxBackoff,
		Logf:       cfg.Logf,
		After:      cfg.After,
		OnAdvance: func(drained uint64) {
			c.mu.Lock()
			if drained > c.ingestDrained {
				c.ingestDrained = drained
			}
			c.mu.Unlock()
			if cfg.OnAdvance != nil {
				cfg.OnAdvance(drained)
			}
		},
	})
	c.consumer = cons
	c.mu.Unlock()
	cons.Start(from)
	return nil
}

// StopIngest halts the drain consumer (idempotent; the WAL itself stays
// open — it is owned by the caller that built it, and a replicated
// coordinator shares it across replica generations).
func (c *Coordinator) StopIngest() {
	c.mu.Lock()
	cons := c.consumer
	c.consumer = nil
	c.mu.Unlock()
	if cons != nil {
		cons.Stop()
	}
}

// ingestRoute resolves the CURRENT owners of one record: the holders of
// its replication arc on every enabled ring, with pushes fenced by the
// epoch the placement was read under. Called fresh on every delivery
// attempt (ingest.Route contract).
func (c *Coordinator) ingestRoute(rec pps.Encoded) ([]ingest.Target, error) {
	pt := store.PointOf(rec.ID)
	c.mu.Lock()
	repl := ring.ReplicationArc(pt, c.p)
	epoch := c.epoch
	type dest struct {
		id ring.NodeID
		cl *wire.Client
	}
	var dests []dest
	for k, r := range c.rings {
		if c.disabled[k] {
			continue
		}
		for _, id := range r.Holders(repl) {
			if cl := c.clients[id]; cl != nil {
				dests = append(dests, dest{id: id, cl: cl})
			}
		}
	}
	c.mu.Unlock()
	if len(dests) == 0 {
		return nil, errNoIngestOwners
	}
	targets := make([]ingest.Target, 0, len(dests))
	for _, d := range dests {
		d := d
		targets = append(targets, ingest.Target{
			Key: nodeKey(d.id),
			Push: func(ctx context.Context, recs []pps.Encoded) error {
				return c.putRecords(ctx, d.cl, d.id, epoch, recs)
			},
		})
	}
	return targets, nil
}

var errNoIngestOwners = ingestNoOwnersError{}

type ingestNoOwnersError struct{}

func (ingestNoOwnersError) Error() string {
	return "membership: no live owners for record (cluster empty or all rings disabled)"
}

// nodeKey renders a stable per-node ack key for the consumer. Node IDs
// are never reused (nextID only grows), so the numeric ID is stable
// across topology changes.
func nodeKey(id ring.NodeID) string {
	return fmt.Sprintf("node-%d", id)
}

// IngestSeq returns the last accepted (durable) WAL sequence.
func (c *Coordinator) IngestSeq() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ingestSeq
}

// IngestDrained returns the delivery watermark: every accepted record
// with sequence <= IngestDrained has reached all of its owners.
func (c *Coordinator) IngestDrained() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ingestDrained
}

// WaitIngestDrained blocks until the delivery watermark reaches seq or
// ctx ends.
func (c *Coordinator) WaitIngestDrained(ctx context.Context, seq uint64) error {
	c.mu.Lock()
	cons := c.consumer
	c.mu.Unlock()
	if cons == nil {
		return errIngestDisabled
	}
	return cons.WaitDrained(ctx, seq)
}
