// Replicated coordinator (control-plane HA): three membership replicas
// elect one leader via an epoch-fenced lease and the leader appends
// every state mutation — view publishes, quarantine flips, ChangeP,
// ring power changes, decommissions, autoscale decisions — to a
// decision log pushed to followers over member.replicate, with majority
// acknowledgment before the entry commits. Every entry carries a full
// ControlState snapshot (proto/replicate.go), so follower apply is a
// replacement and catch-up after a partition is "send the tail" — or
// just the newest entry once the leader's window has moved past the
// follower's gap.
//
// Lease protocol (Raft-shaped, snapshot-simplified):
//
//   - Terms fence everything. A replica that sees a higher term becomes
//     a follower at that term; a leader whose push is rejected with a
//     higher term steps down. Views published to frontends carry the
//     leader's term, so a deposed coordinator can never roll the data
//     plane back (frontend.ErrStaleView).
//   - Votes are leases, but the vote and the lease expire differently.
//     The grant (term, candidate, expiry) bounds leadership TIME: a
//     voter refuses new candidates while an unexpired grant stands, so
//     two leases cannot overlap. The vote (votedTerm, votedFor) never
//     expires: a voter that granted term T to one candidate refuses
//     every other candidate at T forever, even after the lease runs
//     out — otherwise a replica that never observed T could campaign
//     into it after the original leader died and two leader
//     generations would share a term, breaking both election safety
//     and the frontends' (Term, Epoch) view fence. Accepted replicate
//     traffic implicitly renews the leader's grant on each follower
//     (and pins the leader as that term's vote) — member.lease is
//     election-only traffic.
//   - A candidate must prove log completeness with Raft's up-to-date
//     rule: voters refuse candidates whose last log entry
//     (LastTerm, LastIndex) is behind their own, comparing terms first
//     and indexes only to break ties. Index alone is not enough — a
//     deposed leader's uncommitted tail can match a voter's committed
//     index while carrying an older term; electing it would let the
//     overwrite path truncate a committed decision.
//   - A committed log slot is immutable: a follower refuses any
//     replicate push that would rewrite an entry at or below its
//     commit watermark with a different term (defense in depth — no
//     correct leader can send one).
//   - The leader's own lease extends from each replication round that a
//     majority acknowledges; when it cannot reach a majority for a full
//     lease duration it steps down rather than serve stale reads.
//
// ChangeP survives leader death because the reconfiguration is bracketed
// by log entries: an EntryIntent (State.PendingP = target) commits
// BEFORE any data moves, and the closing EntryState commits after. A
// new leader that finds PendingP set in its inherited state re-drives
// the reconfiguration — node-side pushes are idempotent (stores merge
// by record id), so finishing a half-done ChangeP twice is safe.
package membership

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"roar/internal/ingest"
	"roar/internal/pps"
	"roar/internal/proto"
	"roar/internal/ring"
	"roar/internal/wire"
)

// Role is a replica's current election role.
type Role int

const (
	RoleFollower Role = iota
	RoleCandidate
	RoleLeader
)

func (r Role) String() string {
	switch r {
	case RoleLeader:
		return "leader"
	case RoleCandidate:
		return "candidate"
	default:
		return "follower"
	}
}

// NotLeaderError rejects a mutation or view pull on a non-leader
// replica. Leader, when known, is the redirect hint; the error text
// keeps the "leader=<addr>" suffix machine-parseable because it crosses
// the wire as a string (coordclient extracts it from the call failure).
type NotLeaderError struct {
	Leader string
}

func (e *NotLeaderError) Error() string {
	if e.Leader == "" {
		return "membership: not leader"
	}
	return "membership: not leader; leader=" + e.Leader
}

// logWindow bounds the in-memory decision-log tail kept for follower
// catch-up. Correctness never depends on the window: every entry is a
// full snapshot, so a follower too far behind is reset from the newest
// entry alone.
const logWindow = 64

// ReplicaConfig tunes one control-plane replica.
type ReplicaConfig struct {
	// Self is this replica's wire address — its identity in elections.
	Self string
	// Peers lists all replica addresses, including Self. Majority is
	// computed over this set; run an odd count.
	Peers []string
	// Lease is the leadership lease duration: followers start an
	// election when the leader has been silent this long, and a leader
	// that cannot reach a majority for this long steps down. Default 2s.
	Lease time.Duration
	// Heartbeat is the replication/renewal cadence. Default Lease/4.
	Heartbeat time.Duration
	// Coordinator is the local coordinator configuration (must match
	// across replicas; Backend should point at the shared corpus store).
	Coordinator Config
	// Now/After inject the clock (tests). Nil means real time.
	Now   func() time.Time
	After func(time.Duration) <-chan time.Time
	// Logf, when set, receives one line per role transition.
	Logf func(format string, args ...any)
	// OnIntentCommitted, when set, runs on the leader after a ChangeP
	// intent entry commits and before any data moves — the crash-point
	// hook chaos tests use to kill a leader mid-reconfiguration at the
	// exact moment the intent is durable but the work is not.
	OnIntentCommitted func(newP int)
	// Ingest tunes the durable ingest drain the leader runs when
	// Coordinator.WAL is set. The drained watermark replicates via the
	// heartbeat (maybeReplicateIngest), NOT from Ingest.OnAdvance — the
	// drain goroutine must never propose, because a failed propose steps
	// the leader down and closing the coordinator waits for that very
	// goroutine.
	Ingest IngestConfig
	// OpenWAL, when set, opens the shared ingest WAL lazily on winning
	// an election (and the coordinator closes it on step-down). Separate
	// processes sharing a WAL directory must use this rather than
	// Coordinator.WAL: opening at startup would race the other replicas
	// on segment creation, and a follower's handle would go stale the
	// moment the leader appends. The lease keeps open handles exclusive
	// the same way it keeps leaders exclusive. In-process replica sets
	// (one *ingest.WAL shared by reference) keep using Coordinator.WAL.
	OpenWAL func() (*ingest.WAL, error)
}

func (rc ReplicaConfig) withDefaults() ReplicaConfig {
	if rc.Lease <= 0 {
		rc.Lease = 2 * time.Second
	}
	if rc.Heartbeat <= 0 {
		rc.Heartbeat = rc.Lease / 4
	}
	if rc.Now == nil {
		rc.Now = time.Now //lint:allow wallclock — clock-injection default
	}
	if rc.After == nil {
		rc.After = time.After //lint:allow wallclock — clock-injection default
	}
	return rc
}

// Replica is one member of the replicated control plane.
type Replica struct {
	cfg ReplicaConfig

	mu   sync.Mutex
	role Role
	term uint64
	// leader is the last known leader address ("" when unknown).
	leader string
	// Follower-side lease grant: an unexpired grant to one candidate or
	// leader blocks grants to anyone else, which is what keeps two
	// leases from overlapping.
	grantTerm  uint64
	grantTo    string
	grantUntil time.Time
	// The vote, unlike the grant, never expires: one candidate per term,
	// forever (in-memory — a restarted replica rejoins with a fresh term
	// and an empty log, so it re-enters as a follower rather than
	// re-voting old terms). This is what makes a term name at most one
	// leader generation.
	votedTerm uint64
	votedFor  string
	lastHeard time.Time // last accepted leader traffic

	// Decision log window. log is contiguous; when non-empty its last
	// entry has Index == lastIndex and Term == lastTerm.
	log       []proto.LogEntry
	lastIndex uint64
	lastTerm  uint64
	commit    uint64
	committed proto.ControlState
	hasState  bool // committed holds a real snapshot

	// Leader-side state.
	coord      *Coordinator      // live state machine; non-nil only while leader
	ackIndex   map[string]uint64 // per-peer acknowledged last index
	leaseUntil time.Time         // leader lease expiry (majority-ack extended)

	peers map[string]*wire.Client // excludes Self

	// proposeMu serialises proposals so log order matches ack order.
	proposeMu sync.Mutex

	lifeCtx    context.Context
	lifeCancel context.CancelFunc
	stopOnce   sync.Once
	wg         sync.WaitGroup
}

// NewReplica builds a replica. Call Start to begin the election and
// replication loops, and RegisterHandlers to expose it on a wire server.
func NewReplica(cfg ReplicaConfig) (*Replica, error) {
	cfg = cfg.withDefaults()
	if cfg.Self == "" {
		return nil, fmt.Errorf("membership: replica needs a Self address")
	}
	self := false
	for _, p := range cfg.Peers {
		if p == cfg.Self {
			self = true
		}
	}
	if !self {
		return nil, fmt.Errorf("membership: Peers must include Self (%s)", cfg.Self)
	}
	r := &Replica{
		cfg:      cfg,
		peers:    map[string]*wire.Client{},
		ackIndex: map[string]uint64{},
	}
	for _, p := range cfg.Peers {
		if p != cfg.Self {
			r.peers[p] = wire.NewClient(p)
		}
	}
	r.lifeCtx, r.lifeCancel = context.WithCancel(context.Background()) //lint:allow background — the replica's lifetime is this root; cancelled in Stop
	return r, nil
}

// Start launches the election/heartbeat loop.
func (r *Replica) Start() {
	r.wg.Add(1)
	go r.run()
}

// Stop halts the loops and closes peer and node clients.
func (r *Replica) Stop() {
	r.stopOnce.Do(func() { r.lifeCancel() })
	r.wg.Wait()
	r.mu.Lock()
	coord := r.coord
	r.coord = nil
	r.role = RoleFollower
	peers := r.peers
	r.peers = map[string]*wire.Client{}
	r.mu.Unlock()
	if coord != nil {
		coord.Close()
	}
	for _, cl := range peers {
		cl.Close()
	}
}

func (r *Replica) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf("replica %s: "+format, append([]any{r.cfg.Self}, args...)...)
	}
}

func (r *Replica) majority() int { return len(r.cfg.Peers)/2 + 1 }

// run is the role loop: followers watch for leader silence and campaign,
// leaders replicate on the heartbeat cadence.
func (r *Replica) run() {
	defer r.wg.Done()
	for {
		r.mu.Lock()
		role := r.role
		r.mu.Unlock()
		var wait time.Duration
		if role == RoleLeader {
			wait = r.cfg.Heartbeat
		} else {
			// Jittered election timeout: [Lease, 1.5·Lease) so replicas
			// rarely campaign simultaneously.
			wait = r.cfg.Lease + time.Duration(rand.Int63n(int64(r.cfg.Lease/2)+1))
		}
		select {
		case <-r.lifeCtx.Done():
			return
		case <-r.cfg.After(wait):
		}
		r.mu.Lock()
		switch r.role {
		case RoleLeader:
			r.mu.Unlock()
			r.heartbeat()
		default:
			silent := r.cfg.Now().Sub(r.lastHeard) >= r.cfg.Lease
			r.mu.Unlock()
			if silent {
				r.campaign()
			}
		}
	}
}

// campaign runs one election round: bump the term, grant the lease to
// ourselves, and ask every peer for theirs.
func (r *Replica) campaign() {
	r.mu.Lock()
	if r.role == RoleLeader {
		r.mu.Unlock()
		return
	}
	now := r.cfg.Now()
	// Honour our own outstanding grant: campaigning against a candidate
	// we just voted for would hand out a second lease inside the first
	// one's window.
	if r.grantTo != "" && r.grantTo != r.cfg.Self && now.Before(r.grantUntil) {
		r.mu.Unlock()
		return
	}
	r.role = RoleCandidate
	r.term++
	term := r.term
	last := r.lastIndex
	lastTerm := r.lastTerm
	r.votedTerm, r.votedFor = term, r.cfg.Self
	r.grantTerm, r.grantTo, r.grantUntil = term, r.cfg.Self, now.Add(r.cfg.Lease)
	r.leader = ""
	r.mu.Unlock()
	r.logf("campaigning at term %d (last entry %d.%d)", term, lastTerm, last)

	req := proto.LeaseReq{Term: term, Candidate: r.cfg.Self, LastIndex: last, LastTerm: lastTerm}
	votes := r.pollPeers(term, func(ctx context.Context, cl *wire.Client) bool {
		var resp proto.LeaseResp
		if err := cl.Call(ctx, proto.MMemberLease, req, &resp); err != nil {
			return false
		}
		if resp.Term > term {
			r.observeTerm(resp.Term)
			return false
		}
		return resp.Granted
	})
	if votes+1 >= r.majority() { // +1: our own grant
		r.becomeLeader(term)
	} else {
		r.mu.Lock()
		if r.role == RoleCandidate && r.term == term {
			r.role = RoleFollower
		}
		r.mu.Unlock()
	}
}

// pollPeers runs one parallel round of fn against every peer with a
// half-lease deadline and returns how many returned true.
func (r *Replica) pollPeers(term uint64, fn func(ctx context.Context, cl *wire.Client) bool) int {
	r.mu.Lock()
	clients := make([]*wire.Client, 0, len(r.peers))
	for _, cl := range r.peers {
		clients = append(clients, cl)
	}
	r.mu.Unlock()
	ctx, cancel := context.WithTimeout(r.lifeCtx, r.cfg.Lease/2)
	defer cancel()
	var wg sync.WaitGroup
	results := make(chan bool, len(clients))
	for _, cl := range clients {
		wg.Add(1)
		go func(cl *wire.Client) {
			defer wg.Done()
			results <- fn(ctx, cl)
		}(cl)
	}
	wg.Wait()
	close(results)
	n := 0
	for ok := range results {
		if ok {
			n++
		}
	}
	_ = term
	return n
}

// observeTerm adopts a higher term seen in any response, stepping down
// if we were leading.
func (r *Replica) observeTerm(term uint64) {
	r.mu.Lock()
	var coord *Coordinator
	if term > r.term {
		r.term = term
		r.leader = ""
		if r.role == RoleLeader {
			coord = r.stepDownLocked("saw term %d", term)
		}
		r.role = RoleFollower
	}
	r.mu.Unlock()
	if coord != nil {
		coord.Close()
	}
}

// stepDownLocked demotes a leader. It returns the retired coordinator
// for the caller to Close outside r.mu (Close takes the coordinator's
// own locks and closes node clients, which can block on in-flight
// calls).
func (r *Replica) stepDownLocked(format string, args ...any) *Coordinator {
	coord := r.coord
	r.coord = nil
	r.role = RoleFollower
	r.logf("stepping down: "+format, args...)
	return coord
}

// becomeLeader installs the elected role: rebuild a live coordinator
// from the newest log entry, fence the epoch past everything the old
// leader published, commit a takeover barrier entry, and re-drive any
// reconfiguration whose intent committed without its completion.
//
// The rebuild base is the log TAIL, not the commit watermark: an entry
// the old leader majority-acked may sit above every survivor's commit
// (the watermark travels one heartbeat behind), and the election rule —
// voters refuse candidates whose last entry (term, index) is behind
// their own — puts that entry on whoever wins. Building from anything
// older would lose a decision the old leader already confirmed to its
// caller.
func (r *Replica) becomeLeader(term uint64) {
	r.mu.Lock()
	if r.term != term || r.role != RoleCandidate {
		r.mu.Unlock()
		return
	}
	base, hasBase := r.committed, r.hasState
	if len(r.log) > 0 {
		base, hasBase = r.log[len(r.log)-1].State, true
	}
	// Multi-process replica sets open the shared WAL only while leading
	// (the lease that keeps leaders exclusive keeps writers exclusive);
	// the fresh scan also picks up everything the previous leader wrote.
	coordCfg := r.cfg.Coordinator
	var wal *ingest.WAL
	if r.cfg.OpenWAL != nil && coordCfg.WAL == nil {
		var err error
		if wal, err = r.cfg.OpenWAL(); err != nil {
			r.role = RoleFollower
			r.mu.Unlock()
			r.logf("takeover aborted: ingest WAL: %v", err)
			return
		}
		coordCfg.WAL = wal
	}
	var (
		coord *Coordinator
		err   error
	)
	if hasBase {
		coord, err = NewFromState(coordCfg, base)
	} else {
		coord, err = New(coordCfg)
	}
	if err != nil {
		if wal != nil {
			wal.Close()
		}
		r.role = RoleFollower
		r.mu.Unlock()
		r.logf("takeover aborted: %v", err)
		return
	}
	coord.ownsWAL = wal != nil
	coord.SetEpochFloor(base.Epoch + 1)
	r.role = RoleLeader
	r.leader = r.cfg.Self
	r.coord = coord
	r.ackIndex = map[string]uint64{}
	r.leaseUntil = r.cfg.Now().Add(r.cfg.Lease)
	pendingP := base.PendingP
	r.mu.Unlock()
	r.logf("elected leader at term %d", term)

	st := coord.ExportState()
	st.PendingP = pendingP // keep the intent durable across takeovers
	if err := r.propose(proto.EntryTakeover, st); err != nil {
		r.logf("takeover barrier failed: %v", err)
		return
	}
	// Resume the ingest drain from the replicated watermark: the old
	// leader's drained-but-unreplicated tail (at most one heartbeat of
	// lag) is re-delivered, and node-side dedup absorbs it.
	if coord.IngestEnabled() {
		if err := coord.StartIngest(r.cfg.Ingest); err != nil {
			r.logf("ingest drain resume failed: %v", err)
		} else {
			r.logf("ingest drain resumed from watermark %d", coord.IngestDrained())
		}
	}
	if pendingP != 0 {
		// Finish the half-done ChangeP on a fresh goroutine: propose and
		// the data pushes both block, and the caller is the election
		// loop. Pushes are idempotent, so re-driving a transition the
		// old leader half-completed is safe.
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			r.logf("re-driving ChangeP(%d) inherited from term < %d", pendingP, term)
			if err := r.ChangeP(r.lifeCtx, pendingP); err != nil {
				r.logf("inherited ChangeP(%d) failed: %v", pendingP, err)
			}
		}()
	}
}

// maybeReplicateIngest commits the ingest drained watermark when it has
// moved past the committed snapshot. Runs on the election loop's
// goroutine (never the drain goroutine — see ReplicaConfig.Ingest), so
// the watermark replicates at most one heartbeat behind delivery; the
// lag re-delivers on failover and node-side dedup absorbs it.
func (r *Replica) maybeReplicateIngest() {
	c, err := r.leaderCoord()
	if err != nil {
		return
	}
	r.mu.Lock()
	committed := r.committed.IngestDrained
	r.mu.Unlock()
	if c.IngestDrained() > committed {
		if err := r.proposeState(); err != nil {
			r.logf("ingest watermark replication failed: %v", err)
		}
	}
}

// heartbeat runs one replication round: push the log tail (possibly
// empty) to every peer. A majority of acknowledgments extends the
// leader lease; a full lease without one steps the leader down.
func (r *Replica) heartbeat() {
	r.maybeReplicateIngest()
	r.mu.Lock()
	if r.role != RoleLeader {
		r.mu.Unlock()
		return
	}
	term := r.term
	start := r.cfg.Now()
	r.mu.Unlock()
	acks := r.replicateRound(term)
	r.mu.Lock()
	var coord *Coordinator
	if r.role == RoleLeader && r.term == term {
		if acks+1 >= r.majority() {
			r.leaseUntil = start.Add(r.cfg.Lease)
		} else if !r.cfg.Now().Before(r.leaseUntil) {
			coord = r.stepDownLocked("lease expired without majority contact")
		}
	}
	r.mu.Unlock()
	if coord != nil {
		coord.Close()
	}
}

// replicateRound pushes each peer everything past its acknowledged
// index and returns how many peers acknowledged the leader's current
// last entry (or are fully caught up).
func (r *Replica) replicateRound(term uint64) int {
	r.mu.Lock()
	if r.role != RoleLeader || r.term != term {
		r.mu.Unlock()
		return 0
	}
	target := r.lastIndex
	commit := r.commit
	type job struct {
		cl      *wire.Client
		peer    string
		entries []proto.LogEntry
	}
	jobs := make([]job, 0, len(r.peers))
	for p, cl := range r.peers {
		jobs = append(jobs, job{cl: cl, peer: p, entries: r.entriesFromLocked(r.ackIndex[p] + 1)})
	}
	r.mu.Unlock()

	ctx, cancel := context.WithTimeout(r.lifeCtx, r.cfg.Lease/2)
	defer cancel()
	var wg sync.WaitGroup
	acks := make(chan string, len(jobs))
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			req := proto.ReplicateReq{Term: term, Leader: r.cfg.Self, Commit: commit, Entries: j.entries}
			var resp proto.ReplicateResp
			if err := j.cl.Call(ctx, proto.MMemberReplicate, req, &resp); err != nil {
				return
			}
			if resp.Term > term {
				r.observeTerm(resp.Term)
				return
			}
			if resp.OK {
				r.mu.Lock()
				if resp.LastIndex > r.ackIndex[j.peer] {
					r.ackIndex[j.peer] = resp.LastIndex
				}
				ok := resp.LastIndex >= target
				r.mu.Unlock()
				if ok {
					acks <- j.peer
				}
			}
		}(j)
	}
	wg.Wait()
	close(acks)
	n := 0
	for range acks {
		n++
	}
	return n
}

// entriesFromLocked returns the log tail from index `from` (clamped to
// the window — a peer behind the window is reset from the oldest entry
// we still have, which carries a full snapshot).
func (r *Replica) entriesFromLocked(from uint64) []proto.LogEntry {
	if len(r.log) == 0 {
		return nil
	}
	first := r.log[0].Index
	if from < first {
		from = first
	}
	if from > r.lastIndex {
		return nil
	}
	tail := r.log[from-first:]
	out := make([]proto.LogEntry, len(tail))
	copy(out, tail)
	return out
}

// propose appends one decision to the log and replicates it, returning
// nil only after a majority has acknowledged it (the entry is then
// committed). Proposals are serialised; a propose that cannot reach a
// majority steps the leader down and errors.
func (r *Replica) propose(kind uint8, st proto.ControlState) error {
	r.proposeMu.Lock()
	defer r.proposeMu.Unlock()
	r.mu.Lock()
	if r.role != RoleLeader {
		leader := r.leader
		r.mu.Unlock()
		return &NotLeaderError{Leader: leader}
	}
	term := r.term
	idx := r.lastIndex + 1
	entry := proto.LogEntry{Index: idx, Term: term, Kind: kind, State: st}
	r.log = append(r.log, entry)
	r.lastIndex = idx
	r.lastTerm = term
	r.trimLogLocked()
	start := r.cfg.Now()
	r.mu.Unlock()

	acks := r.replicateRound(term)
	r.mu.Lock()
	if r.role != RoleLeader || r.term != term {
		leader := r.leader
		r.mu.Unlock()
		return &NotLeaderError{Leader: leader}
	}
	if acks+1 < r.majority() {
		coord := r.stepDownLocked("entry %d reached %d/%d acks", idx, acks+1, r.majority())
		r.mu.Unlock()
		if coord != nil {
			coord.Close()
		}
		return fmt.Errorf("membership: lost leadership replicating entry %d (%d/%d acks)", idx, acks+1, r.majority())
	}
	if idx > r.commit {
		r.commit = idx
		r.committed = entry.State
		r.hasState = true
	}
	r.leaseUntil = start.Add(r.cfg.Lease)
	r.mu.Unlock()
	return nil
}

func (r *Replica) trimLogLocked() {
	if len(r.log) > logWindow {
		drop := len(r.log) - logWindow
		r.log = append(r.log[:0], r.log[drop:]...)
	}
}

// HandleReplicate is the follower half of member.replicate: accept the
// leader's entries and commit watermark, renew its lease, reject stale
// terms.
func (r *Replica) HandleReplicate(req proto.ReplicateReq) proto.ReplicateResp {
	r.mu.Lock()
	if req.Term < r.term {
		resp := proto.ReplicateResp{Term: r.term, OK: false, LastIndex: r.lastIndex}
		r.mu.Unlock()
		return resp
	}
	var coord *Coordinator
	if req.Term > r.term {
		r.term = req.Term
		if r.role == RoleLeader {
			coord = r.stepDownLocked("replicate from newer leader %s at term %d", req.Leader, req.Term)
		}
		r.role = RoleFollower
	} else if r.role == RoleLeader {
		// Same term, different self-declared leader: impossible under
		// majority leases; refuse rather than split-brain.
		resp := proto.ReplicateResp{Term: r.term, OK: false, LastIndex: r.lastIndex}
		r.mu.Unlock()
		return resp
	} else {
		r.role = RoleFollower
	}
	// A committed slot is immutable: refuse any push that would rewrite
	// one with a different term BEFORE mutating anything. With the
	// election up-to-date rule no correct leader can send such a push,
	// so reaching this is split-brain or corruption — and truncating
	// would silently lose a committed decision.
	for _, e := range req.Entries {
		if e.Index <= r.commit && len(r.log) > 0 && e.Index >= r.log[0].Index &&
			r.log[e.Index-r.log[0].Index].Term != e.Term {
			resp := proto.ReplicateResp{Term: r.term, OK: false, LastIndex: r.lastIndex}
			r.mu.Unlock()
			if coord != nil {
				coord.Close()
			}
			return resp
		}
	}
	now := r.cfg.Now()
	r.leader = req.Leader
	r.lastHeard = now
	// Accepted replication traffic IS the lease renewal — and pins the
	// leader as this term's vote, so once the lease lapses no OTHER
	// candidate can be granted the same term.
	if r.votedTerm < req.Term {
		r.votedTerm, r.votedFor = req.Term, req.Leader
	}
	r.grantTerm, r.grantTo, r.grantUntil = req.Term, req.Leader, now.Add(r.cfg.Lease)

	for _, e := range req.Entries {
		switch {
		case e.Index <= r.commit:
			// Already committed (and, per the scan above, identical):
			// never truncate at or below the commit watermark.
		case e.Index <= r.lastIndex:
			// Overwrite: drop our conflicting UNCOMMITTED suffix and
			// append the leader's entry.
			if len(r.log) > 0 && e.Index >= r.log[0].Index {
				keep := e.Index - r.log[0].Index
				r.log = r.log[:keep]
			} else {
				r.log = r.log[:0]
			}
			r.log = append(r.log, e)
			r.lastIndex = e.Index
		case e.Index == r.lastIndex+1:
			r.log = append(r.log, e)
			r.lastIndex = e.Index
		default:
			// Gap: we fell behind the leader's window. Every entry is a
			// full snapshot, so reset the window from this entry.
			r.log = append(r.log[:0], e)
			r.lastIndex = e.Index
		}
	}
	if len(r.log) > 0 {
		r.lastTerm = r.log[len(r.log)-1].Term
	}
	r.trimLogLocked()
	if req.Commit > r.commit {
		c := req.Commit
		if c > r.lastIndex {
			c = r.lastIndex
		}
		if len(r.log) > 0 && c >= r.log[0].Index {
			r.commit = c
			r.committed = r.log[c-r.log[0].Index].State
			r.hasState = true
		}
	}
	resp := proto.ReplicateResp{Term: r.term, OK: true, LastIndex: r.lastIndex}
	r.mu.Unlock()
	if coord != nil {
		coord.Close()
	}
	return resp
}

// HandleLease is the voter half of member.lease: grant the leadership
// lease when the term is current, no unexpired grant stands for someone
// else, and the candidate's log covers our commit.
func (r *Replica) HandleLease(req proto.LeaseReq) proto.LeaseResp {
	r.mu.Lock()
	resp := proto.LeaseResp{LastIndex: r.lastIndex}
	if req.Term < r.term {
		resp.Term = r.term
		resp.Leader = r.leader
		r.mu.Unlock()
		return resp
	}
	var coord *Coordinator
	if req.Term > r.term {
		r.term = req.Term
		r.leader = ""
		if r.role == RoleLeader {
			coord = r.stepDownLocked("lease request at term %d", req.Term)
		}
		r.role = RoleFollower
	}
	resp.Term = r.term
	now := r.cfg.Now()
	switch {
	case r.votedTerm == req.Term && r.votedFor != "" && r.votedFor != req.Candidate:
		// Already voted at this term for someone else. A vote is
		// forever, unlike the lease: re-granting an old term after its
		// lease expired would let two leader generations share a term,
		// and the frontends' (Term, Epoch) fence assumes a term names
		// exactly one leader. (Re-granting the SAME candidate is an
		// idempotent retry and falls through.)
		resp.Granted = false
		resp.Leader = r.leader
	case r.grantTo != "" && r.grantTo != req.Candidate && now.Before(r.grantUntil):
		// An unexpired lease stands (possibly renewed by replicate
		// traffic from the live leader). Granting now could make two
		// leases overlap, so refuse even though the term is newer.
		resp.Granted = false
		resp.Leader = r.leader
	case req.LastTerm < r.lastTerm || (req.LastTerm == r.lastTerm && req.LastIndex < r.lastIndex):
		// Raft's up-to-date rule over the candidate's LAST entry, term
		// first, index to break ties. Term matters: a partitioned
		// ex-leader can sit on an uncommitted tail whose index matches
		// ours while our entry at that index is a committed decision
		// from a newer leader — electing it would truncate the
		// committed entry on every follower. And the LAST index — not
		// just our commit — matters because the watermark travels one
		// heartbeat behind majority acks: our tail may hold an entry the
		// dead leader already confirmed to its caller.
		resp.Granted = false
	default:
		resp.Granted = true
		r.votedTerm, r.votedFor = req.Term, req.Candidate
		r.grantTerm, r.grantTo, r.grantUntil = req.Term, req.Candidate, now.Add(r.cfg.Lease)
	}
	r.mu.Unlock()
	if coord != nil {
		coord.Close()
	}
	return resp
}

// --- accessors ---

// Self returns this replica's address.
func (r *Replica) Self() string { return r.cfg.Self }

// IsLeader reports whether this replica currently holds the lease.
func (r *Replica) IsLeader() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.role == RoleLeader
}

// Leader returns the last known leader address ("" when unknown).
func (r *Replica) Leader() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.leader
}

// Term returns the replica's current election term.
func (r *Replica) Term() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.term
}

// CommittedState returns the latest majority-committed snapshot and
// whether one exists yet.
func (r *Replica) CommittedState() (proto.ControlState, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.committed, r.hasState
}

// LastIndex returns the replica's last log index.
func (r *Replica) LastIndex() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastIndex
}

// leaderCoord returns the live coordinator when this replica leads,
// else a NotLeaderError carrying the redirect hint.
func (r *Replica) leaderCoord() (*Coordinator, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.role != RoleLeader || r.coord == nil {
		return nil, &NotLeaderError{Leader: r.leader}
	}
	return r.coord, nil
}

// proposeState replicates the leader coordinator's current state as an
// ordinary committed entry.
func (r *Replica) proposeState() error {
	c, err := r.leaderCoord()
	if err != nil {
		return err
	}
	return r.propose(proto.EntryState, c.ExportState())
}

// proposeIfAdvanced replicates only when the coordinator's epoch moved
// past the committed snapshot — the cheap path for high-rate inputs
// (health reports) that only occasionally flip a quarantine verdict.
func (r *Replica) proposeIfAdvanced() error {
	c, err := r.leaderCoord()
	if err != nil {
		return err
	}
	r.mu.Lock()
	committedEpoch := r.committed.Epoch
	r.mu.Unlock()
	if c.Epoch() == committedEpoch {
		return nil
	}
	return r.propose(proto.EntryState, c.ExportState())
}

// --- leader-guarded control-plane operations ---
//
// Each mutation executes on the live coordinator first (which performs
// any data movement synchronously) and then commits the resulting state
// to the replicated log; the call fails if majority acknowledgment
// cannot be reached, at which point this replica has stepped down and
// the caller should retry against the new leader.

// View snapshots the cluster for frontends, stamped with the leader's
// term so deposed leaders' views are rejectable. Non-leaders refuse
// with a redirect hint — frontends fail over rather than read stale
// views.
func (r *Replica) View() (proto.View, error) {
	r.mu.Lock()
	if r.role != RoleLeader || r.coord == nil {
		err := &NotLeaderError{Leader: r.leader}
		r.mu.Unlock()
		return proto.View{}, err
	}
	coord := r.coord
	term := r.term
	r.mu.Unlock()
	v := coord.View()
	v.Term = term
	return v, nil
}

// Join registers a node through the replicated control plane.
func (r *Replica) Join(ctx context.Context, addr string, speedHint float64) (proto.JoinResp, error) {
	c, err := r.leaderCoord()
	if err != nil {
		return proto.JoinResp{}, err
	}
	resp, err := c.Join(ctx, addr, speedHint)
	if err != nil {
		return proto.JoinResp{}, err
	}
	return resp, r.proposeState()
}

// JoinRack registers a node with a rack label (§4.9.2 placement).
func (r *Replica) JoinRack(ctx context.Context, addr string, speedHint float64, rack string) (proto.JoinResp, error) {
	c, err := r.leaderCoord()
	if err != nil {
		return proto.JoinResp{}, err
	}
	resp, err := c.JoinRack(ctx, addr, speedHint, rack)
	if err != nil {
		return proto.JoinResp{}, err
	}
	return resp, r.proposeState()
}

// Leave removes a node gracefully.
func (r *Replica) Leave(ctx context.Context, id ring.NodeID) error {
	c, err := r.leaderCoord()
	if err != nil {
		return err
	}
	if err := c.Leave(ctx, id); err != nil {
		return err
	}
	return r.proposeState()
}

// Decommission removes a dead node (autoscale decisions included).
func (r *Replica) Decommission(ctx context.Context, id ring.NodeID) error {
	c, err := r.leaderCoord()
	if err != nil {
		return err
	}
	if err := c.Decommission(ctx, id); err != nil {
		return err
	}
	return r.proposeState()
}

// ChangeP drives the §4.5 reconfiguration through the log: the intent
// (PendingP) commits BEFORE any data moves, so a leader crash mid-way
// leaves a durable instruction for its successor; the closing state
// entry commits after the coordinator publishes the new level.
func (r *Replica) ChangeP(ctx context.Context, newP int) error {
	c, err := r.leaderCoord()
	if err != nil {
		return err
	}
	if newP == c.P() {
		// Already there (e.g. a re-driven intent the old leader actually
		// finished); just clear the pending marker.
		return r.proposeState()
	}
	intent := c.ExportState()
	intent.PendingP = newP
	if err := r.propose(proto.EntryIntent, intent); err != nil {
		return err
	}
	if r.cfg.OnIntentCommitted != nil {
		r.cfg.OnIntentCommitted(newP)
	}
	if err := c.ChangeP(ctx, newP); err != nil {
		return err
	}
	return r.proposeState()
}

// SetRingEnabled powers a ring on or off (§4.9.1).
func (r *Replica) SetRingEnabled(ctx context.Context, k int, enabled bool) error {
	c, err := r.leaderCoord()
	if err != nil {
		return err
	}
	if err := c.SetRingEnabled(ctx, k, enabled); err != nil {
		return err
	}
	return r.proposeState()
}

// LoadCorpus installs the corpus and pushes stored sets (leader-only;
// the backend store itself is shared across replicas). The closing
// proposeState is the term fence: if this replica was deposed while
// loading, the propose fails and the caller retries against the real
// leader instead of trusting a corpus only a dead leadership saw.
func (r *Replica) LoadCorpus(ctx context.Context, recs []pps.Encoded) error {
	c, err := r.leaderCoord()
	if err != nil {
		return err
	}
	if err := c.LoadCorpus(ctx, recs); err != nil {
		return err
	}
	return r.proposeState()
}

// AddObject stores one new object and pushes it to its replica set,
// then fences the mutation with the current term: a deposed leader's
// accepted object errors out (the backend insert itself is idempotent
// on the shared store, so the retry against the new leader converges).
func (r *Replica) AddObject(ctx context.Context, rec pps.Encoded) (int, error) {
	c, err := r.leaderCoord()
	if err != nil {
		return 0, err
	}
	n, err := c.AddObject(ctx, rec)
	if err != nil {
		return n, err
	}
	return n, r.proposeState()
}

// IngestAppend durably accepts records into the leader's ingest WAL and
// fences the acceptance with the current term before acknowledging: a
// deposed leader's accepted batch errors out, the producer retries on
// the new leader, and record-ID dedup absorbs the duplicate append.
func (r *Replica) IngestAppend(ctx context.Context, recs []pps.Encoded) (proto.IngestResp, error) {
	c, err := r.leaderCoord()
	if err != nil {
		return proto.IngestResp{}, err
	}
	seq, err := c.IngestAppend(ctx, recs)
	if err != nil {
		return proto.IngestResp{}, err
	}
	if err := r.proposeState(); err != nil {
		return proto.IngestResp{}, err
	}
	return proto.IngestResp{Seq: seq, Drained: c.IngestDrained()}, nil
}

// IngestDrained reads the leader's live delivery watermark (read-only;
// no log entry). Errors on a non-leader.
func (r *Replica) IngestDrained() (uint64, error) {
	c, err := r.leaderCoord()
	if err != nil {
		return 0, err
	}
	return c.IngestDrained(), nil
}

// ReportHealth folds a frontend health report into the aggregator and
// replicates any quarantine flip it caused.
func (r *Replica) ReportHealth(rep proto.HealthReport) (proto.HealthResp, error) {
	c, err := r.leaderCoord()
	if err != nil {
		return proto.HealthResp{}, err
	}
	resp := c.ReportHealth(rep)
	if err := r.proposeIfAdvanced(); err != nil {
		return proto.HealthResp{}, err
	}
	return resp, nil
}

// ReportSpeeds folds speed observations (soft state, not replicated).
func (r *Replica) ReportSpeeds(speeds map[ring.NodeID]float64) error {
	c, err := r.leaderCoord()
	if err != nil {
		return err
	}
	c.ReportSpeeds(speeds)
	return nil
}

// HandleFailure records a hard failure report and replicates any
// quarantine flip.
func (r *Replica) HandleFailure(id ring.NodeID) error {
	c, err := r.leaderCoord()
	if err != nil {
		return err
	}
	c.HandleFailure(id)
	return r.proposeIfAdvanced()
}

// --- controlPlane (autoscaler) ---

// FleetPressure snapshots capacity telemetry; zero on non-leaders
// (followers receive no health reports).
func (r *Replica) FleetPressure() FleetPressure {
	c, err := r.leaderCoord()
	if err != nil {
		return FleetPressure{}
	}
	return c.FleetPressure()
}

// P returns the partitioning level: live on the leader, the committed
// snapshot's on followers.
func (r *Replica) P() int {
	if c, err := r.leaderCoord(); err == nil {
		return c.P()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hasState && r.committed.P > 0 {
		return r.committed.P
	}
	return r.cfg.Coordinator.P
}

// ringPowerState mirrors Coordinator.ringPowerState from the live or
// committed state.
func (r *Replica) ringPowerState() (disabled, enabled []int) {
	if c, err := r.leaderCoord(); err == nil {
		return c.ringPowerState()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	off := map[int]bool{}
	for _, k := range r.committed.Disabled {
		off[k] = true
	}
	pop := map[int]int{}
	for _, n := range r.committed.Nodes {
		pop[n.Ring]++
	}
	for k := 0; k < r.committed.Rings; k++ {
		if pop[k] == 0 {
			continue
		}
		if off[k] {
			disabled = append(disabled, k)
		} else {
			enabled = append(enabled, k)
		}
	}
	return disabled, enabled
}

// schedulableNodes counts nodes on enabled rings.
func (r *Replica) schedulableNodes() int {
	if c, err := r.leaderCoord(); err == nil {
		return c.schedulableNodes()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	off := map[int]bool{}
	for _, k := range r.committed.Disabled {
		off[k] = true
	}
	n := 0
	for _, ns := range r.committed.Nodes {
		if !off[ns.Ring] {
			n++
		}
	}
	return n
}

// NewAutoscaler binds the elasticity controller to the replicated
// control plane: decisions execute through the leader-guarded levers
// (and therefore commit to the log), and the controller holds its fire
// entirely on non-leader replicas.
func (r *Replica) NewAutoscaler(cfg AutoscaleConfig) *Autoscaler {
	return newAutoscaler(r, cfg)
}

// RegisterHandlers exposes the replica on a wire dispatcher: the
// replication/lease RPCs plus the same membership surface a standalone
// coordinator serves, leader-guarded so callers fail over.
func (r *Replica) RegisterHandlers(d *wire.Dispatcher) {
	d.Register(proto.MMemberReplicate, func(_ context.Context, _ string, body wire.Body) (interface{}, error) {
		var req proto.ReplicateReq
		if err := body.Decode(&req); err != nil {
			return nil, err
		}
		return r.HandleReplicate(req), nil
	})
	d.Register(proto.MMemberLease, func(_ context.Context, _ string, body wire.Body) (interface{}, error) {
		var req proto.LeaseReq
		if err := body.Decode(&req); err != nil {
			return nil, err
		}
		return r.HandleLease(req), nil
	})
	d.Register(proto.MMemberView, func(_ context.Context, _ string, _ wire.Body) (interface{}, error) {
		return r.View()
	})
	d.Register(proto.MMemberJoin, func(ctx context.Context, _ string, body wire.Body) (interface{}, error) {
		var req proto.JoinReq
		if err := body.Decode(&req); err != nil {
			return nil, err
		}
		return r.Join(ctx, req.Addr, req.SpeedHint)
	})
	d.Register(proto.MMemberLeave, func(ctx context.Context, _ string, body wire.Body) (interface{}, error) {
		var req proto.LeaveReq
		if err := body.Decode(&req); err != nil {
			return nil, err
		}
		return struct{}{}, r.Leave(ctx, ring.NodeID(req.ID))
	})
	d.Register(proto.MMemberSetP, func(ctx context.Context, _ string, body wire.Body) (interface{}, error) {
		var req proto.SetPReq
		if err := body.Decode(&req); err != nil {
			return nil, err
		}
		return struct{}{}, r.ChangeP(ctx, req.P)
	})
	d.Register(proto.MMemberReport, func(_ context.Context, _ string, body wire.Body) (interface{}, error) {
		var req proto.ReportReq
		if err := body.Decode(&req); err != nil {
			return nil, err
		}
		speeds := map[ring.NodeID]float64{}
		for id, s := range req.Speeds {
			speeds[ring.NodeID(id)] = s
		}
		if err := r.ReportSpeeds(speeds); err != nil {
			return nil, err
		}
		for _, id := range req.Failed {
			if err := r.HandleFailure(ring.NodeID(id)); err != nil {
				return nil, err
			}
		}
		return struct{}{}, nil
	})
	d.Register(proto.MMemberHealth, func(_ context.Context, _ string, body wire.Body) (interface{}, error) {
		var req proto.HealthReport
		if err := body.Decode(&req); err != nil {
			return nil, err
		}
		return r.ReportHealth(req)
	})
	d.Register(proto.MMemberIngest, func(ctx context.Context, _ string, body wire.Body) (interface{}, error) {
		var req proto.IngestReq
		if err := body.Decode(&req); err != nil {
			return nil, err
		}
		return r.IngestAppend(ctx, req.Records)
	})
}
