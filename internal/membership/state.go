// Control-state snapshot and restore: the bridge between the live
// Coordinator and the replicated decision log. Every log entry carries
// a full ControlState (replicate.go in internal/proto), so a replica
// can always reconstruct a working coordinator from its single latest
// committed entry — ExportState and NewFromState are exact inverses
// over the replicable state.
//
// Soft state deliberately excluded from the snapshot: failure-evidence
// scores (only the quarantine *verdicts* travel; a restored node starts
// at exactly the quarantine threshold, so recovery evidence must drain
// it just like on the old leader), speed EWMAs in flight, per-frontend
// sequence tracking, and the transfer counters. All of it regenerates
// from the frontends' next health reports.
package membership

import (
	"fmt"
	"sort"
	"time"

	"roar/internal/proto"
	"roar/internal/ring"
	"roar/internal/wire"
)

// ExportState snapshots the full replicable control state: topology,
// partitioning level, ring power, node records, quarantine verdicts.
func (c *Coordinator) ExportState() proto.ControlState {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := proto.ControlState{
		Epoch:         c.epoch,
		P:             c.p,
		NextID:        int(c.nextID),
		Rings:         len(c.rings),
		IngestDrained: c.ingestDrained,
	}
	for k := range c.rings {
		if c.disabled[k] {
			st.Disabled = append(st.Disabled, k)
		}
	}
	sort.Ints(st.Disabled)
	// Lock order: c.mu then health.mu, as established by viewLocked.
	c.health.mu.Lock()
	quar := make(map[ring.NodeID]time.Time, len(c.health.quarantined))
	for id, at := range c.health.quarantined {
		quar[id] = at
	}
	c.health.mu.Unlock()
	for k, r := range c.rings {
		for _, nr := range r.Nodes() {
			ns := proto.NodeState{
				ID:    int(nr.ID),
				Ring:  k,
				Start: float64(nr.Start),
				Addr:  c.addrs[nr.ID],
				Speed: c.speeds[nr.ID],
				Rack:  c.racks[nr.ID],
			}
			if at, ok := quar[nr.ID]; ok {
				ns.Quarantined = true
				ns.QuarantinedAtUnixNanos = at.UnixNano()
			}
			st.Nodes = append(st.Nodes, ns)
		}
	}
	return st
}

// NewFromState builds a live coordinator from a replicated snapshot —
// the takeover path of a freshly elected leader. cfg supplies the
// local, non-replicated configuration (tuning, health thresholds, the
// shared Backend); the snapshot supplies everything replicable.
func NewFromState(cfg Config, st proto.ControlState) (*Coordinator, error) {
	if cfg.P <= 0 {
		cfg.P = st.P
	}
	c, err := New(cfg)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.rings) < st.Rings {
		c.rings = append(c.rings, ring.New())
	}
	if st.P > 0 {
		c.p = st.P
	}
	c.epoch = st.Epoch
	c.nextID = ring.NodeID(st.NextID)
	c.ingestDrained = st.IngestDrained
	for _, k := range st.Disabled {
		if k >= 0 && k < len(c.rings) {
			c.disabled[k] = true
		}
	}
	c.health.mu.Lock()
	defer c.health.mu.Unlock()
	for _, n := range st.Nodes {
		id := ring.NodeID(n.ID)
		if n.Ring < 0 || n.Ring >= len(c.rings) {
			return nil, fmt.Errorf("membership: snapshot node %d names ring %d of %d", n.ID, n.Ring, len(c.rings))
		}
		if err := c.rings[n.Ring].Insert(id, ring.Norm(n.Start)); err != nil {
			return nil, fmt.Errorf("membership: restoring node %d: %w", n.ID, err)
		}
		c.ringOf[id] = n.Ring
		c.addrs[id] = n.Addr
		if n.Speed > 0 {
			c.speeds[id] = n.Speed
		}
		if n.Rack != "" {
			c.racks[id] = n.Rack
		}
		c.clients[id] = wire.NewClient(n.Addr)
		if n.Quarantined {
			c.health.quarantined[id] = time.Unix(0, n.QuarantinedAtUnixNanos)
			// Seed the evidence score at the threshold: recovery evidence
			// must drain it exactly as it would have on the old leader.
			c.health.scores[id] = c.health.cfg.QuarantineThreshold
		}
	}
	return c, nil
}

// SetEpochFloor raises the view epoch to at least e (no-op when already
// past it). A new leader calls it with the committed epoch + 1 so its
// first published view supersedes everything the old leader shipped,
// even before any real state change.
func (c *Coordinator) SetEpochFloor(e int) {
	c.mu.Lock()
	if c.epoch < e {
		c.epoch = e
	}
	c.mu.Unlock()
}
