// Package membership implements the centralised membership server of
// §4.9: it owns the ring topology (node ranges, one or more rings),
// inserts new servers at hotspots, redistributes ranges around departed
// or failed nodes, drives the §4.5 partitioning-level transitions, runs
// the range load-balancing process, and can power whole rings on and off
// to track diurnal load (§4.9.1).
//
// The coordinator doubles as the backend file store of §4.1 (the NFS
// stand-in): it holds the full corpus and pushes each node exactly the
// records its stored set requires.
package membership

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"roar/internal/ingest"
	"roar/internal/pps"
	"roar/internal/proto"
	"roar/internal/ring"
	"roar/internal/store"
	"roar/internal/wire"
)

// Config tunes the coordinator.
type Config struct {
	Rings int // number of rings (default 1)
	P     int // initial partitioning level (required)
	// BalanceThreshold is the load-difference fraction below which
	// neighbours stop balancing (§4.9: 10%).
	BalanceThreshold float64
	// PutChunk bounds records per push RPC. Default 2000.
	PutChunk int
	// Tuning, when set, is distributed to frontends inside every view
	// so the fleet converges on one execution-pipeline configuration.
	Tuning *proto.Tuning
	// Backend, when set, is used as the corpus store instead of a fresh
	// empty one. Replicated coordinators point every replica at the
	// same store — the paper's shared NFS backend (§4.1) — so a newly
	// elected leader can complete data-moving reconfigurations without
	// re-ingesting the corpus.
	Backend *store.Store
	// Health tunes the failure/overload control loop (health.go).
	// Zero values use the documented defaults.
	Health HealthConfig
	// WAL, when set, enables the durable ingest pipeline (ingest.go):
	// IngestAppend accepts writes into it and StartIngest drains them
	// to the owning nodes asynchronously. Replicated coordinators point
	// every replica at the same WAL (like Backend) so a newly elected
	// leader resumes the drain from the replicated watermark.
	WAL *ingest.WAL
}

// Coordinator is the membership server.
type Coordinator struct {
	cfg Config

	mu       sync.Mutex
	rings    []*ring.Ring
	ringOf   map[ring.NodeID]int
	addrs    map[ring.NodeID]string
	speeds   map[ring.NodeID]float64 // capacity hints / reported speeds
	racks    map[ring.NodeID]string  // rack labels (§4.9.2)
	clients  map[ring.NodeID]*wire.Client
	disabled map[int]bool // powered-down rings
	p        int
	epoch    int
	nextID   ring.NodeID

	backend *store.Store // full corpus
	health  *healthState // failure-evidence aggregation (health.go)

	// Durable ingest pipeline (ingest.go): wal buffers accepted writes,
	// consumer drains them, ingestSeq/ingestDrained are the accepted and
	// delivered watermarks. putLegacy latches nodes that rejected the
	// epoch-fenced PutReq extension (mixed-version downgrade, per node).
	wal           *ingest.WAL
	ownsWAL       bool // opened for this coordinator alone; Close closes it
	consumer      *ingest.Consumer
	ingestSeq     uint64
	ingestDrained uint64
	putLegacy     map[ring.NodeID]bool

	// Transfer accounting for the reconfiguration experiments.
	objectsPushed int64
}

// New builds a coordinator.
func New(cfg Config) (*Coordinator, error) {
	if cfg.P <= 0 {
		return nil, fmt.Errorf("membership: initial p must be positive")
	}
	if cfg.Rings <= 0 {
		cfg.Rings = 1
	}
	if cfg.BalanceThreshold <= 0 {
		cfg.BalanceThreshold = 0.10
	}
	if cfg.PutChunk <= 0 {
		cfg.PutChunk = 2000
	}
	backend := cfg.Backend
	if backend == nil {
		backend = store.New()
	}
	c := &Coordinator{
		cfg:       cfg,
		ringOf:    map[ring.NodeID]int{},
		addrs:     map[ring.NodeID]string{},
		speeds:    map[ring.NodeID]float64{},
		racks:     map[ring.NodeID]string{},
		clients:   map[ring.NodeID]*wire.Client{},
		disabled:  map[int]bool{},
		p:         cfg.P,
		backend:   backend,
		health:    newHealthState(cfg.Health),
		wal:       cfg.WAL,
		putLegacy: map[ring.NodeID]bool{},
	}
	for k := 0; k < cfg.Rings; k++ {
		c.rings = append(c.rings, ring.New())
	}
	return c, nil
}

// Close stops the ingest drain and shuts node clients. The consumer is
// stopped before taking mu: its drain goroutine routes through mu, so
// stopping it under the lock would deadlock.
func (c *Coordinator) Close() {
	c.StopIngest()
	if c.ownsWAL && c.wal != nil {
		c.wal.Close()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cl := range c.clients {
		cl.Close()
	}
}

// P returns the current safe partitioning level.
func (c *Coordinator) P() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.p
}

// ObjectsPushed returns the cumulative records transferred to nodes —
// the reconfiguration/update traffic counter.
func (c *Coordinator) ObjectsPushed() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.objectsPushed
}

// View snapshots the cluster for frontends. Disabled rings are hidden.
func (c *Coordinator) View() proto.View {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.viewLocked()
}

func (c *Coordinator) viewLocked() proto.View {
	// The ingest watermarks ride every view so frontends can fence their
	// result caches against deliveries that never bump the epoch.
	v := proto.View{
		Epoch: c.epoch, P: c.p, Tuning: c.cfg.Tuning,
		Ingested: c.ingestSeq, Drained: c.ingestDrained,
	}
	c.health.mu.Lock()
	quarantined := make(map[ring.NodeID]bool, len(c.health.quarantined))
	for id := range c.health.quarantined {
		quarantined[id] = true
	}
	c.health.mu.Unlock()
	for k, r := range c.rings {
		if c.disabled[k] {
			continue
		}
		for _, nr := range r.Nodes() {
			v.Nodes = append(v.Nodes, proto.NodeInfo{
				ID: int(nr.ID), Ring: k, Start: float64(nr.Start), Addr: c.addrs[nr.ID],
				// Quarantined nodes stay in the view — they keep their
				// range and data, frontends just must not schedule them.
				Quarantined: quarantined[nr.ID],
			})
		}
	}
	return v
}

// LoadCorpus installs the full object set on the backend and pushes
// every node its stored range. Call after the nodes have joined.
func (c *Coordinator) LoadCorpus(ctx context.Context, recs []pps.Encoded) error {
	c.mu.Lock()
	c.backend.Insert(recs...)
	ids := c.allNodesLocked()
	c.mu.Unlock()
	for _, id := range ids {
		if err := c.pushStored(ctx, id); err != nil {
			return err
		}
	}
	return nil
}

// AddObject stores one new object and pushes it to its current replica
// set — the update path whose cost grows with r (Fig 7.4). It returns
// the number of replicas the object actually reached: nil clients and
// failed pushes do not count, and the push counter advances only for
// deliveries that succeeded. On error the successes made before (and
// after — the remaining targets are still attempted) are all included,
// so the caller knows the true replication factor achieved.
func (c *Coordinator) AddObject(ctx context.Context, rec pps.Encoded) (replicas int, err error) {
	c.mu.Lock()
	c.backend.Insert(rec)
	pt := store.PointOf(rec.ID)
	repl := ring.ReplicationArc(pt, c.p)
	epoch := c.epoch
	var targets []ring.NodeID
	for k, r := range c.rings {
		if c.disabled[k] {
			continue
		}
		targets = append(targets, r.Holders(repl)...)
	}
	clients := make([]*wire.Client, 0, len(targets))
	for _, id := range targets {
		clients = append(clients, c.clients[id])
	}
	c.mu.Unlock()
	var firstErr error
	for i, cl := range clients {
		if cl == nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("membership: no client for node %d", targets[i])
			}
			continue
		}
		if perr := c.putRecords(ctx, cl, targets[i], epoch, []pps.Encoded{rec}); perr != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("membership: pushing object %d: %w", rec.ID, perr)
			}
			continue
		}
		replicas++
	}
	c.mu.Lock()
	c.objectsPushed += int64(replicas)
	c.mu.Unlock()
	return replicas, firstErr
}

func (c *Coordinator) allNodesLocked() []ring.NodeID {
	var out []ring.NodeID
	for _, r := range c.rings {
		out = append(out, r.IDs()...)
	}
	return out
}

// JoinRack registers a node with a rack label: when possible it is
// placed adjacent to an existing node of the same rack, so replication
// pushes travel mostly intra-rack (§4.9.2's cross-sectional bandwidth
// optimisation). Falls back to hotspot placement when the rack is new.
func (c *Coordinator) JoinRack(ctx context.Context, addr string, speedHint float64, rack string) (proto.JoinResp, error) {
	if rack == "" {
		return c.Join(ctx, addr, speedHint)
	}
	c.mu.Lock()
	var anchor ring.NodeID = ring.InvalidNode
	var anchorRing int
	for id, rk := range c.racks {
		if rk == rack {
			if k, ok := c.ringOf[id]; ok {
				anchor, anchorRing = id, k
				break
			}
		}
	}
	if anchor == ring.InvalidNode {
		c.mu.Unlock()
		resp, err := c.Join(ctx, addr, speedHint)
		if err == nil {
			c.mu.Lock()
			c.racks[ring.NodeID(resp.ID)] = rack
			c.mu.Unlock()
		}
		return resp, err
	}
	// Split the same-rack anchor's range: the new node lands next to it.
	r := c.rings[anchorRing]
	a, err := r.Range(anchor)
	if err != nil {
		c.mu.Unlock()
		return proto.JoinResp{}, err
	}
	id := c.nextID
	c.nextID++
	start := a.Start.Add(a.Length / 2)
	if err := r.Insert(id, start); err != nil {
		c.mu.Unlock()
		return proto.JoinResp{}, fmt.Errorf("membership: rack join: %w", err)
	}
	c.ringOf[id] = anchorRing
	c.addrs[id] = addr
	c.speeds[id] = speedHint
	c.racks[id] = rack
	c.clients[id] = wire.NewClient(addr)
	c.epoch++
	c.mu.Unlock()
	if err := c.pushStored(ctx, id); err != nil {
		return proto.JoinResp{}, err
	}
	if err := c.sendRetain(ctx, anchor); err != nil {
		return proto.JoinResp{}, err
	}
	return proto.JoinResp{ID: int(id), Ring: anchorRing, Start: float64(start)}, nil
}

// RackOf returns a node's rack label ("" when unlabelled).
func (c *Coordinator) RackOf(id ring.NodeID) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.racks[id]
}

// Join registers a node: it is placed on the ring with the least
// capacity, splitting the range of the currently "hottest" node (the
// one with the largest range per unit of speed, §4.9's proxy for load),
// then loaded with its stored set.
func (c *Coordinator) Join(ctx context.Context, addr string, speedHint float64) (proto.JoinResp, error) {
	if speedHint <= 0 {
		speedHint = 1
	}
	c.mu.Lock()
	id := c.nextID
	c.nextID++
	// Ring with least total capacity (§4.9: equal capacity per ring).
	bestRing, bestCap := 0, -1.0
	for k, r := range c.rings {
		var cap float64
		for _, nid := range r.IDs() {
			cap += c.speeds[nid]
		}
		if bestCap < 0 || cap < bestCap {
			bestRing, bestCap = k, cap
		}
		_ = r
	}
	r := c.rings[bestRing]
	var start ring.Point
	if r.Len() == 0 {
		start = 0
	} else {
		// Hottest node: largest range/speed ratio.
		hot, hotScore := ring.InvalidNode, -1.0
		for _, nid := range r.IDs() {
			a, err := r.Range(nid)
			if err != nil {
				continue
			}
			sp := c.speeds[nid]
			if sp <= 0 {
				sp = 1
			}
			if score := a.Length / sp; score > hotScore {
				hot, hotScore = nid, score
			}
		}
		a, err := r.Range(hot)
		if err != nil {
			c.mu.Unlock()
			return proto.JoinResp{}, fmt.Errorf("membership: hotspot lookup: %w", err)
		}
		start = a.Start.Add(a.Length / 2) // split the hot range in half
	}
	if err := r.Insert(id, start); err != nil {
		c.mu.Unlock()
		return proto.JoinResp{}, fmt.Errorf("membership: inserting node: %w", err)
	}
	c.ringOf[id] = bestRing
	c.addrs[id] = addr
	c.speeds[id] = speedHint
	c.clients[id] = wire.NewClient(addr)
	c.epoch++
	c.mu.Unlock()

	// Load the new node, then trim the split neighbour (it keeps data
	// for its shrunken stored set only).
	if err := c.pushStored(ctx, id); err != nil {
		return proto.JoinResp{}, err
	}
	c.mu.Lock()
	pred, perr := r.Predecessor(id)
	c.mu.Unlock()
	if perr == nil && pred != id {
		if err := c.sendRetain(ctx, pred); err != nil {
			return proto.JoinResp{}, err
		}
	}
	return proto.JoinResp{ID: int(id), Ring: bestRing, Start: float64(start)}, nil
}

// Leave removes a node gracefully (§4.4 "Removing Nodes"): its range is
// absorbed by the predecessor, which is loaded with the data it lacks
// before the topology change becomes visible.
func (c *Coordinator) Leave(ctx context.Context, id ring.NodeID) error {
	c.health.forget(id)
	c.mu.Lock()
	k, ok := c.ringOf[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("membership: node %d unknown", id)
	}
	r := c.rings[k]
	pred, err := r.Predecessor(id)
	if err != nil {
		c.mu.Unlock()
		return err
	}
	if err := r.Remove(id); err != nil {
		c.mu.Unlock()
		return err
	}
	delete(c.ringOf, id)
	delete(c.addrs, id)
	delete(c.speeds, id)
	if cl := c.clients[id]; cl != nil {
		cl.Close()
	}
	delete(c.clients, id)
	c.epoch++
	c.mu.Unlock()
	if pred != id && r.Len() > 0 {
		return c.pushStored(ctx, pred)
	}
	return nil
}

// Decommission is Leave for a dead node: identical bookkeeping, but the
// replacement data necessarily comes from the backend. It is the
// long-term path of §4.9, taken when a node is known to be permanently
// gone — transient failure evidence goes through HandleFailure and the
// quarantine loop instead (health.go).
func (c *Coordinator) Decommission(ctx context.Context, id ring.NodeID) error {
	return c.Leave(ctx, id)
}

// ChangeP performs the §4.5 transition to a new partitioning level.
// Increasing p (dropping replicas) switches the safe level immediately
// and lets nodes trim in their own time. Decreasing p (adding replicas)
// pushes the missing arc to every node, waits for all confirmations,
// and only then publishes the new level.
func (c *Coordinator) ChangeP(ctx context.Context, newP int) error {
	c.mu.Lock()
	oldP := c.p
	if newP <= 0 {
		c.mu.Unlock()
		return fmt.Errorf("membership: p must be positive")
	}
	if newP == oldP {
		c.mu.Unlock()
		return nil
	}
	ids := c.allNodesLocked()
	c.mu.Unlock()

	if newP > oldP {
		// Safe immediately: queries with larger pq always cover.
		c.mu.Lock()
		c.p = newP
		c.epoch++
		c.mu.Unlock()
		for _, id := range ids {
			if err := c.sendRetain(ctx, id); err != nil {
				return err
			}
		}
		return nil
	}
	// newP < oldP: push each node the replica arc it lacks:
	// (start-1/newP, start-1/oldP].
	grow := 1/float64(newP) - 1/float64(oldP)
	for _, id := range ids {
		c.mu.Lock()
		arc, _, err := c.nodeRangeLocked(id)
		cl := c.clients[id]
		epoch := c.epoch
		c.mu.Unlock()
		if err != nil {
			return err
		}
		lo := arc.Start.Add(-1 / float64(newP))
		hi := arc.Start.Add(-1 / float64(oldP))
		_ = grow
		recs := c.backend.InArc(lo, hi)
		if err := c.pushRecords(ctx, cl, id, epoch, recs); err != nil {
			return err
		}
	}
	// All confirmed (pushes above are synchronous): publish.
	c.mu.Lock()
	c.p = newP
	c.epoch++
	c.mu.Unlock()
	return nil
}

// BalanceStep runs one round of the §4.3/§4.9 range load balancing:
// every node whose successor is more than the threshold more loaded
// expands into it (and vice versa). loads maps node id to any
// monotone load metric (busy fraction, range/speed, ...). moveFrac is
// the fraction of the heavier node's range transferred per step (the
// "slow background rate"); 0 means 10%.
func (c *Coordinator) BalanceStep(ctx context.Context, loads map[ring.NodeID]float64, moveFrac float64) (moves int, err error) {
	if moveFrac <= 0 {
		moveFrac = 0.10
	}
	type move struct {
		grow, shrink ring.NodeID
		newStart     ring.Point
	}
	var moves_ []move
	c.mu.Lock()
	for k, r := range c.rings {
		if c.disabled[k] || r.Len() < 2 {
			continue
		}
		for _, id := range r.IDs() {
			succ, err := r.Successor(id)
			if err != nil || succ == id {
				continue
			}
			li, ls := loads[id], loads[succ]
			if li == 0 && ls == 0 {
				continue
			}
			// Expand the lighter node into the heavier successor
			// (§4.3: grow into a more loaded neighbour).
			if ls > li*(1+c.cfg.BalanceThreshold) {
				sa, err := r.Range(succ)
				if err != nil {
					continue
				}
				shift := sa.Length * moveFrac
				ns := sa.Start.Add(shift)
				if err := r.SetStart(succ, ns); err == nil {
					moves_ = append(moves_, move{grow: id, shrink: succ, newStart: ns})
				}
			}
		}
	}
	if len(moves_) > 0 {
		c.epoch++
	}
	c.mu.Unlock()
	for _, m := range moves_ {
		if err := c.pushStored(ctx, m.grow); err != nil {
			return len(moves_), err
		}
		if err := c.sendRetain(ctx, m.shrink); err != nil {
			return len(moves_), err
		}
	}
	return len(moves_), nil
}

// SetRingEnabled powers a ring on or off (§4.9.1 diurnal adaptation).
// Nodes keep their ranges while disabled, so re-enabling is cheap; the
// caller must ensure the remaining rings still hold all data (each ring
// holds a full copy, so any single enabled ring suffices).
func (c *Coordinator) SetRingEnabled(ctx context.Context, k int, enabled bool) error {
	c.mu.Lock()
	if k < 0 || k >= len(c.rings) {
		c.mu.Unlock()
		return fmt.Errorf("membership: no ring %d", k)
	}
	if !enabled {
		on := 0
		for i := range c.rings {
			if !c.disabled[i] && c.rings[i].Len() > 0 {
				on++
			}
		}
		if on <= 1 && !c.disabled[k] {
			c.mu.Unlock()
			return fmt.Errorf("membership: cannot disable the last ring")
		}
	}
	c.disabled[k] = !enabled
	c.epoch++
	ids := append([]ring.NodeID(nil), c.rings[k].IDs()...)
	c.mu.Unlock()
	if enabled {
		// Refresh returning nodes: they kept their ranges (§4.9's range
		// history) and only need the delta since shutdown; pushes are
		// idempotent so we simply re-push the stored set.
		for _, id := range ids {
			if err := c.pushStored(ctx, id); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReportSpeeds folds frontend speed observations into placement
// decisions (§4.9: the membership server downloads statistics from the
// front-ends).
func (c *Coordinator) ReportSpeeds(speeds map[ring.NodeID]float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, s := range speeds {
		if _, ok := c.ringOf[id]; ok && s > 0 {
			c.speeds[id] = s
		}
	}
}

func (c *Coordinator) nodeRangeLocked(id ring.NodeID) (ring.Arc, int, error) {
	k, ok := c.ringOf[id]
	if !ok {
		return ring.Arc{}, -1, fmt.Errorf("membership: node %d unknown", id)
	}
	a, err := c.rings[k].Range(id)
	return a, k, err
}

// pushStored sends a node every backend record in its stored set.
func (c *Coordinator) pushStored(ctx context.Context, id ring.NodeID) error {
	c.mu.Lock()
	arc, _, err := c.nodeRangeLocked(id)
	cl := c.clients[id]
	p := c.p
	epoch := c.epoch
	c.mu.Unlock()
	if err != nil {
		return err
	}
	repl := 1 / float64(p)
	var recs []pps.Encoded
	if arc.Length+repl >= 1 {
		recs = c.backend.InArc(0.5, 0.5-1e-15) // effectively everything
	} else {
		recs = c.backend.InArc(arc.Start.Add(-repl), arc.End())
	}
	return c.pushRecords(ctx, cl, id, epoch, recs)
}

func (c *Coordinator) pushRecords(ctx context.Context, cl *wire.Client, id ring.NodeID, epoch int, recs []pps.Encoded) error {
	if cl == nil {
		return fmt.Errorf("membership: no client for node %d", id)
	}
	chunk := c.cfg.PutChunk
	for off := 0; off < len(recs); off += chunk {
		end := off + chunk
		if end > len(recs) {
			end = len(recs)
		}
		if err := c.putRecords(ctx, cl, id, epoch, recs[off:end]); err != nil {
			return fmt.Errorf("membership: pushing to node %d: %w", id, err)
		}
	}
	c.mu.Lock()
	c.objectsPushed += int64(len(recs))
	c.mu.Unlock()
	return nil
}

// putLegacySignal reports whether a put failure is a pre-extension
// node's rejection of the epoch fence. Only an error the remote HANDLER
// reported classifies (same evidence rule as frontend.downgradeSignal):
// the typed code is authoritative, the bare-string fallback accepts the
// exact spelling of nodes that predate error codes.
func putLegacySignal(err error) bool {
	var re *wire.RemoteError
	if !errors.As(err, &re) {
		return false
	}
	switch re.Code {
	case wire.CodeTrailingBytes:
		return true
	case "":
		return strings.Contains(re.Msg, "trailing bytes after PutReq")
	}
	return false
}

// putRecords sends one epoch-fenced MNodePut. A node that rejects the
// fence extension ("trailing bytes") is latched as legacy and re-sent
// the unfenced base encoding — per node, so one old node in a rolling
// upgrade does not strip the fence for the rest of the fleet.
func (c *Coordinator) putRecords(ctx context.Context, cl *wire.Client, id ring.NodeID, epoch int, recs []pps.Encoded) error {
	c.mu.Lock()
	legacy := c.putLegacy[id]
	c.mu.Unlock()
	req := proto.PutReq{Records: recs, Epoch: epoch}
	if legacy {
		req.Epoch = 0
	}
	err := cl.Call(ctx, proto.MNodePut, req, nil)
	if err == nil || legacy || !putLegacySignal(err) {
		return err
	}
	c.mu.Lock()
	c.putLegacy[id] = true
	c.mu.Unlock()
	req.Epoch = 0
	return cl.Call(ctx, proto.MNodePut, req, nil)
}

// sendRetain tells a node its current range and p so it trims excess
// replicas. It carries the publishing epoch so the node's fence
// advances with the placement (JSON body; old nodes ignore the field).
func (c *Coordinator) sendRetain(ctx context.Context, id ring.NodeID) error {
	c.mu.Lock()
	arc, _, err := c.nodeRangeLocked(id)
	cl := c.clients[id]
	p := c.p
	epoch := c.epoch
	c.mu.Unlock()
	if err != nil {
		return err
	}
	if cl == nil {
		return fmt.Errorf("membership: no client for node %d", id)
	}
	req := proto.RetainReq{Start: float64(arc.Start), Length: arc.Length, P: p, Epoch: epoch}
	if err := cl.Call(ctx, proto.MNodeRetain, req, nil); err != nil {
		return fmt.Errorf("membership: retain on node %d: %w", id, err)
	}
	return nil
}
