// Autonomic elasticity controller (§4.5, §4.9.1, §6.3 as a live
// admission gate): the closed loop that turns the coordinator's
// reconfiguration *mechanisms* — ChangeP, SetRingEnabled, Decommission —
// into *policy*. Frontends already push the telemetry (shed counts per
// priority, admission-queue waits, hedge-budget denials, per-node
// latency digests, queue depths) inside their periodic HealthReports;
// the controller folds those into one scalar fleet pressure and, with
// hysteresis and cooldown windows, decides to:
//
//   - power rings up and down for diurnal load (§4.9.1): a disabled
//     ring's nodes kept their ranges and data, so re-enabling is a
//     delta push, and enabling one roughly doubles serving capacity;
//   - step the partitioning level p down (more replication, fewer
//     sub-queries per query, less fixed overhead — Badue et al.'s
//     capacity-planning direction under sustained load) when the §6.3
//     reconfiguration-cost model says the data movement amortizes, and
//     back up toward its baseline when pressure clears (free: nodes
//     trim replicas in their own time, §4.5);
//   - auto-Decommission nodes stuck in quarantine beyond a deadline —
//     the explicit removal path the health loop deliberately does not
//     take on its own.
//
// Every decision is recorded (and optionally logged); dry-run mode
// records without acting, so an operator can watch what the controller
// *would* do before handing it the keys.
package membership

import (
	"context"
	"fmt"
	"sync"
	"time"

	"roar/internal/ring"
	"roar/internal/sim"
)

// AutoscaleAction names one controller decision type.
type AutoscaleAction string

const (
	// ActionRingUp / ActionRingDown power a ring on or off (§4.9.1).
	ActionRingUp   AutoscaleAction = "ring-up"
	ActionRingDown AutoscaleAction = "ring-down"
	// ActionPDown lowers p (grow replication arcs — data moves), and
	// ActionPUp restores it toward the baseline (free trim).
	ActionPDown AutoscaleAction = "p-down"
	ActionPUp   AutoscaleAction = "p-up"
	// ActionDecommission removes a node quarantined past the deadline.
	ActionDecommission AutoscaleAction = "decommission"
	// ActionHold records a considered-but-refused reconfiguration (cost
	// gate, no lever available) so refusals are observable.
	ActionHold AutoscaleAction = "hold"
)

// AutoscaleDecision is one recorded controller verdict.
type AutoscaleDecision struct {
	At       time.Time
	Action   AutoscaleAction
	Pressure float64
	// Ring is the affected ring (ring actions), Node the affected node
	// id (decommission), FromP/ToP the p transition (p actions).
	Ring       int
	Node       int
	FromP, ToP int
	Reason     string
	DryRun     bool
	Err        string // execution failure, if any
}

func (d AutoscaleDecision) String() string {
	s := fmt.Sprintf("%s (pressure %.2f): %s", d.Action, d.Pressure, d.Reason)
	if d.DryRun {
		s = "DRY-RUN " + s
	}
	if d.Err != "" {
		s += " [error: " + d.Err + "]"
	}
	return s
}

// AutoscaleConfig tunes the elasticity controller. Zero values take the
// documented defaults.
type AutoscaleConfig struct {
	// DryRun records and logs decisions without executing them.
	DryRun bool
	// Interval is the background evaluation cadence for Start; Step may
	// also be driven manually (tests, harnesses). Default 5s.
	Interval time.Duration

	// Pressure normalization: each telemetry stream contributes
	// observed/reference to the scalar fleet pressure, so a stream at
	// its reference level alone pushes pressure to 1.0.
	ShedRef        float64       // sheds (both classes) per tick; default 20
	HedgeDeniedRef float64       // hedge-budget denials per tick; default 50
	DepthRef       float64       // mean reported queue depth; default 8
	QueueWaitRef   time.Duration // admission-wait p99; default 100ms
	NodeLatRef     time.Duration // per-node latency p99; default 500ms

	// HighPressure / LowPressure bound the dead band: pressure at or
	// above High for SustainTicks consecutive ticks scales up, at or
	// below Low for SustainTicks scales down, and anything between
	// resets both streaks (hysteresis — flapping across one boundary
	// never accumulates a streak). Defaults 1.0 / 0.25.
	HighPressure float64
	LowPressure  float64
	// SustainTicks is the consecutive-tick streak required before
	// acting. Default 3.
	SustainTicks int
	// Cooldown is the minimum time between reconfigurations, so one
	// pressure episode produces one measured response, not a volley.
	// Default 1 minute.
	Cooldown time.Duration

	// MinP bounds emergency p-down steps. Default 1.
	MinP int
	// BaselineP is the level p-up restores toward when pressure clears;
	// 0 means the coordinator's p when the controller was built.
	BaselineP int
	// CostGateFraction is the §6.3 admission gate on p-down: the move is
	// refused when the ROAR reconfiguration-cost model says more than
	// this many extra replica copies per stored object must be pushed
	// (1.0 = one full corpus copy). Default 1.0.
	CostGateFraction float64

	// QuarantineDeadline auto-Decommissions a node quarantined longer
	// than this. 0 disables auto-decommission.
	QuarantineDeadline time.Duration

	// Now injects the controller clock (tests). Nil means time.Now.
	Now func() time.Time
	// Logf, when set, receives one line per recorded decision.
	Logf func(format string, args ...any)
}

func (ac AutoscaleConfig) withDefaults() AutoscaleConfig {
	if ac.Interval <= 0 {
		ac.Interval = 5 * time.Second
	}
	if ac.ShedRef <= 0 {
		ac.ShedRef = 20
	}
	if ac.HedgeDeniedRef <= 0 {
		ac.HedgeDeniedRef = 50
	}
	if ac.DepthRef <= 0 {
		ac.DepthRef = 8
	}
	if ac.QueueWaitRef <= 0 {
		ac.QueueWaitRef = 100 * time.Millisecond
	}
	if ac.NodeLatRef <= 0 {
		ac.NodeLatRef = 500 * time.Millisecond
	}
	if ac.HighPressure <= 0 {
		ac.HighPressure = 1.0
	}
	if ac.LowPressure <= 0 {
		ac.LowPressure = 0.25
	}
	if ac.SustainTicks <= 0 {
		ac.SustainTicks = 3
	}
	if ac.Cooldown <= 0 {
		ac.Cooldown = time.Minute
	}
	if ac.MinP <= 0 {
		ac.MinP = 1
	}
	if ac.CostGateFraction <= 0 {
		ac.CostGateFraction = 1.0
	}
	if ac.Now == nil {
		ac.Now = time.Now //lint:allow wallclock — clock-injection default
	}
	return ac
}

// maxDecisions bounds the retained decision log.
const maxDecisions = 256

// controlPlane is the lever-and-telemetry surface the controller needs.
// A standalone Coordinator satisfies it directly; a replicated Replica
// satisfies it with leader-guarded methods, so autoscale decisions made
// on the leader commit to the replicated decision log like any other
// reconfiguration.
type controlPlane interface {
	FleetPressure() FleetPressure
	P() int
	ringPowerState() (disabled, enabled []int)
	schedulableNodes() int
	ChangeP(ctx context.Context, newP int) error
	SetRingEnabled(ctx context.Context, k int, enabled bool) error
	Decommission(ctx context.Context, id ring.NodeID) error
}

// leaderAware is implemented by replicated control planes; a controller
// bound to one holds its fire on non-leader replicas, so every replica
// can run an autoscaler without three controllers fighting.
type leaderAware interface {
	IsLeader() bool
}

// Autoscaler is the elasticity controller. Build with
// Coordinator.NewAutoscaler or Replica.NewAutoscaler; drive with Start
// (background loop) or Step (one evaluation).
type Autoscaler struct {
	c   controlPlane
	cfg AutoscaleConfig

	mu         sync.Mutex
	prev       FleetPressure // counter snapshot the next tick diffs against
	hiStreak   int
	loStreak   int
	lastAction time.Time
	decisions  []AutoscaleDecision

	stopOnce sync.Once
	stop     chan struct{}
	started  bool
}

// NewAutoscaler builds a controller bound to the coordinator. The
// telemetry counters are snapshotted now, so pressure accumulated
// before the controller existed is not charged to its first tick.
func (c *Coordinator) NewAutoscaler(cfg AutoscaleConfig) *Autoscaler {
	return newAutoscaler(c, cfg)
}

func newAutoscaler(c controlPlane, cfg AutoscaleConfig) *Autoscaler {
	a := &Autoscaler{
		c:    c,
		cfg:  cfg.withDefaults(),
		prev: c.FleetPressure(),
		stop: make(chan struct{}),
	}
	if a.cfg.BaselineP <= 0 {
		a.cfg.BaselineP = c.P()
	}
	return a
}

// Start runs the evaluation loop on the configured interval until the
// context ends or Stop is called. Each tick's reconfiguration RPCs are
// scoped to ctx, so cancelling it aborts in-flight retain/drop traffic
// as well as the loop.
func (a *Autoscaler) Start(ctx context.Context) {
	a.mu.Lock()
	if a.started {
		a.mu.Unlock()
		return
	}
	a.started = true
	a.mu.Unlock()
	go func() {
		t := time.NewTicker(a.cfg.Interval) //lint:allow wallclock — the loop cadence is real time; Step's decisions use the injected cfg.Now
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-a.stop:
				return
			case <-t.C:
				a.Step(ctx)
			}
		}
	}()
}

// Stop ends the background loop (idempotent; Step remains usable).
func (a *Autoscaler) Stop() { a.stopOnce.Do(func() { close(a.stop) }) }

// Decisions returns the recorded decision log, oldest first.
func (a *Autoscaler) Decisions() []AutoscaleDecision {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]AutoscaleDecision(nil), a.decisions...)
}

func (a *Autoscaler) record(d AutoscaleDecision) {
	a.decisions = append(a.decisions, d)
	if len(a.decisions) > maxDecisions {
		a.decisions = a.decisions[len(a.decisions)-maxDecisions:]
	}
	if a.cfg.Logf != nil {
		a.cfg.Logf("autoscale: %s", d)
	}
}

// Pressure computes the current scalar fleet pressure from a telemetry
// snapshot and the per-tick counter deltas. Exposed for observability;
// Step uses the same formula.
func (a *Autoscaler) pressure(fp FleetPressure, prev FleetPressure) float64 {
	dShed := float64(fp.ShedLow - prev.ShedLow + fp.ShedNormal - prev.ShedNormal)
	dDenied := float64(fp.HedgeDenied - prev.HedgeDenied)
	p := dShed/a.cfg.ShedRef +
		dDenied/a.cfg.HedgeDeniedRef +
		fp.MeanQueueDepth/a.cfg.DepthRef +
		float64(fp.QueueWaitP99)/float64(a.cfg.QueueWaitRef) +
		float64(fp.NodeLatP99)/float64(a.cfg.NodeLatRef)
	return p
}

// ringPowerState snapshots ring indices by power state, counting only
// rings that actually hold nodes (an empty ring is not capacity).
func (c *Coordinator) ringPowerState() (disabled, enabled []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, r := range c.rings {
		if r.Len() == 0 {
			continue
		}
		if c.disabled[k] {
			disabled = append(disabled, k)
		} else {
			enabled = append(enabled, k)
		}
	}
	return disabled, enabled
}

// schedulableNodes counts nodes on enabled rings — the n of the live
// cost model.
func (c *Coordinator) schedulableNodes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for k, r := range c.rings {
		if !c.disabled[k] {
			n += r.Len()
		}
	}
	return n
}

// Step runs one control evaluation: refresh telemetry, update the
// hysteresis streaks, and execute (or dry-run) at most one capacity
// action plus any overdue quarantine decommissions. It returns the
// decisions recorded this tick.
func (a *Autoscaler) Step(ctx context.Context) []AutoscaleDecision {
	// On a replicated control plane only the lease holder acts; follower
	// controllers stay silent rather than recording decisions they have
	// no authority (or telemetry) to make.
	if la, ok := a.c.(leaderAware); ok && !la.IsLeader() {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.cfg.Now()
	fp := a.c.FleetPressure()
	press := a.pressure(fp, a.prev)
	a.prev = fp
	var out []AutoscaleDecision
	emit := func(d AutoscaleDecision) {
		d.At, d.Pressure, d.DryRun = now, press, a.cfg.DryRun
		a.record(d)
		out = append(out, d)
	}

	// Quarantine-deadline decommissions run regardless of pressure and
	// cooldown: a node the health loop gave up on is not a capacity
	// decision, it is garbage collection of the topology.
	if a.cfg.QuarantineDeadline > 0 {
		for _, qi := range fp.Quarantined {
			held := now.Sub(qi.Since)
			if held < a.cfg.QuarantineDeadline {
				continue
			}
			d := AutoscaleDecision{
				Action: ActionDecommission, Node: int(qi.ID),
				Reason: fmt.Sprintf("node %d quarantined %v ≥ deadline %v", qi.ID, held.Round(time.Millisecond), a.cfg.QuarantineDeadline),
			}
			if !a.cfg.DryRun {
				if err := a.c.Decommission(ctx, qi.ID); err != nil {
					d.Err = err.Error()
				}
			}
			emit(d)
		}
	}

	// Hysteresis: only an unbroken streak on one side of the dead band
	// accumulates; touching the band resets both streaks.
	switch {
	case press >= a.cfg.HighPressure:
		a.hiStreak++
		a.loStreak = 0
	case press <= a.cfg.LowPressure:
		a.loStreak++
		a.hiStreak = 0
	default:
		a.hiStreak, a.loStreak = 0, 0
	}
	inCooldown := !a.lastAction.IsZero() && now.Sub(a.lastAction) < a.cfg.Cooldown

	// apply handles one lever verdict. Only a SUCCESSFUL action (or its
	// dry-run equivalent) consumes the cooldown and resets the streaks:
	// a lever that errored added no capacity, so the controller retries
	// on the next tick instead of sitting out a cooldown it never spent.
	// Refusals (cost gate, no lever) are recorded once per sustained
	// episode — the streak keeps growing past SustainTicks, so emitting
	// only at the threshold crossing keeps the decision log and the
	// operator's log free of tick-rate repeats.
	apply := func(d AutoscaleDecision, acted bool, streak int) {
		switch {
		case acted && d.Err == "":
			a.lastAction = now
			a.hiStreak, a.loStreak = 0, 0
			emit(d)
		case acted:
			emit(d) // executed and failed: visible, but no cooldown spent
		case d.Action != "" && streak == a.cfg.SustainTicks:
			emit(d) // refusal, logged at the episode's first eligible tick
		}
	}
	switch {
	case a.hiStreak >= a.cfg.SustainTicks && !inCooldown:
		d, acted := a.scaleUp(ctx)
		apply(d, acted, a.hiStreak)
	case a.loStreak >= a.cfg.SustainTicks && !inCooldown:
		d, acted := a.scaleDown(ctx)
		apply(d, acted, a.loStreak)
	}
	return out
}

// scaleUp picks the cheapest capacity lever: power up a ring that holds
// nodes, else step p down under the §6.3 cost gate. acted reports
// whether a reconfiguration ran (or would have, in dry-run); a decision
// with acted=false and a non-empty Action is a recorded refusal.
func (a *Autoscaler) scaleUp(ctx context.Context) (AutoscaleDecision, bool) {
	disabled, enabled := a.c.ringPowerState()
	if len(disabled) > 0 {
		k := disabled[0]
		d := AutoscaleDecision{
			Action: ActionRingUp, Ring: k,
			Reason: fmt.Sprintf("sustained high pressure; powering ring %d up (%d rings were serving)", k, len(enabled)),
		}
		if !a.cfg.DryRun {
			if err := a.c.SetRingEnabled(ctx, k, true); err != nil {
				d.Err = err.Error()
			}
		}
		return d, true
	}
	p := a.c.P()
	if p-1 < a.cfg.MinP {
		return AutoscaleDecision{
			Action: ActionHold, FromP: p, ToP: p,
			Reason: fmt.Sprintf("high pressure but no lever: all rings serving, p already at floor %d", a.cfg.MinP),
		}, false
	}
	n := a.c.schedulableNodes()
	frac, _, err := sim.ReconfigurationCost(n, p, p-1)
	if err != nil {
		return AutoscaleDecision{
			Action: ActionHold, FromP: p, ToP: p - 1,
			Reason: fmt.Sprintf("cost model rejected p %d→%d with n=%d: %v", p, p-1, n, err),
		}, false
	}
	if frac > a.cfg.CostGateFraction {
		return AutoscaleDecision{
			Action: ActionHold, FromP: p, ToP: p - 1,
			Reason: fmt.Sprintf("cost gate: p %d→%d moves %.2f corpus copies > budget %.2f", p, p-1, frac, a.cfg.CostGateFraction),
		}, false
	}
	d := AutoscaleDecision{
		Action: ActionPDown, FromP: p, ToP: p - 1,
		Reason: fmt.Sprintf("sustained high pressure; p %d→%d cuts per-query fan-out (move cost %.2f ≤ %.2f)", p, p-1, frac, a.cfg.CostGateFraction),
	}
	if !a.cfg.DryRun {
		if err := a.c.ChangeP(ctx, p-1); err != nil {
			d.Err = err.Error()
		}
	}
	return d, true
}

// scaleDown undoes emergency capacity in reverse preference: restore p
// toward its baseline first (free — nodes trim replicas), then power a
// ring down for diurnal savings (never the last one; SetRingEnabled
// enforces that independently).
func (a *Autoscaler) scaleDown(ctx context.Context) (AutoscaleDecision, bool) {
	p := a.c.P()
	if p < a.cfg.BaselineP {
		d := AutoscaleDecision{
			Action: ActionPUp, FromP: p, ToP: p + 1,
			Reason: fmt.Sprintf("pressure cleared; restoring p %d→%d toward baseline %d (replica trim is free)", p, p+1, a.cfg.BaselineP),
		}
		if !a.cfg.DryRun {
			if err := a.c.ChangeP(ctx, p+1); err != nil {
				d.Err = err.Error()
			}
		}
		return d, true
	}
	_, enabled := a.c.ringPowerState()
	if len(enabled) > 1 {
		k := enabled[len(enabled)-1]
		d := AutoscaleDecision{
			Action: ActionRingDown, Ring: k,
			Reason: fmt.Sprintf("sustained low pressure; powering ring %d down (%d rings serving)", k, len(enabled)),
		}
		if !a.cfg.DryRun {
			if err := a.c.SetRingEnabled(ctx, k, false); err != nil {
				d.Err = err.Error()
			}
		}
		return d, true
	}
	return AutoscaleDecision{}, false // nothing to give back: stay quiet
}
