package membership

import (
	"context"
	"testing"

	"roar/internal/node"
	"roar/internal/wire"
)

// TestAddObjectCountsOnlySuccesses pins the write-path accounting fix:
// AddObject must return the number of replicas the object actually
// reached and advance the push counter by exactly that — a dead replica
// is neither counted nor allowed to mask the successes after it.
func TestAddObjectCountsOnlySuccesses(t *testing.T) {
	// P=1: the replication arc is the whole ring, so every node is a
	// replica of every object and the expected counts are exact.
	c, err := New(Config{P: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	enc := slimEncoder()
	var srvs []*wire.Server
	for i := 0; i < 3; i++ {
		nd, err := node.New(node.Config{Params: enc.ServerParams()})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := nd.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		srvs = append(srvs, srv)
		if _, err := c.Join(context.Background(), srv.Addr(), 1); err != nil {
			t.Fatal(err)
		}
	}
	recs := corpus(t, enc, 3)

	// Healthy: all three replicas take the object.
	n, err := c.AddObject(context.Background(), recs[0])
	if err != nil {
		t.Fatalf("healthy AddObject: %v", err)
	}
	if n != 3 {
		t.Fatalf("healthy AddObject reached %d replicas, want 3", n)
	}
	pushed := c.ObjectsPushed()
	if pushed != 3 {
		t.Fatalf("ObjectsPushed = %d after one healthy add, want 3", pushed)
	}

	// Kill one replica's server. The add must report the failure AND
	// the true success count — and keep attempting the replicas after
	// the dead one rather than bailing.
	if err := srvs[0].Close(); err != nil {
		t.Fatal(err)
	}
	n, err = c.AddObject(context.Background(), recs[1])
	if err == nil {
		t.Fatal("AddObject with a dead replica returned nil error")
	}
	if n != 2 {
		t.Fatalf("AddObject with one dead replica reached %d, want 2", n)
	}
	if got := c.ObjectsPushed() - pushed; got != 2 {
		t.Fatalf("push counter advanced by %d with one dead replica, want 2 (successes only)", got)
	}
}
