package membership

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"roar/internal/proto"
	"roar/internal/ring"
)

// fakeClock is the injectable time source shared by the health
// aggregator (quarantine entry stamps) and the controller (cooldowns,
// deadlines) so tests advance time deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// asEnv is an autoscale test environment: a coordinator over real (but
// empty) nodes, a fake clock, and a synthetic-telemetry pump.
type asEnv struct {
	t   *testing.T
	c   *Coordinator
	clk *fakeClock
	ids []ring.NodeID
	seq uint64
}

func newASEnv(t *testing.T, nodes, rings, p int) *asEnv {
	t.Helper()
	clk := newFakeClock()
	c, err := New(Config{P: p, Rings: rings, Health: HealthConfig{Now: clk.Now}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	enc := slimEncoder()
	_, addrs := startNodes(t, enc, nodes)
	env := &asEnv{t: t, c: c, clk: clk}
	for i := 0; i < nodes; i++ {
		jr, err := c.Join(context.Background(), addrs[i], 1)
		if err != nil {
			t.Fatal(err)
		}
		env.ids = append(env.ids, ring.NodeID(jr.ID))
	}
	return env
}

// report pushes one synthetic fleet-wide health report: every node at
// the given queue depth, plus optional shed and suspicion counts.
func (e *asEnv) report(depth, shed int, suspicions map[ring.NodeID]int) {
	e.t.Helper()
	e.seq++
	rep := proto.HealthReport{FE: "fe-test", Seq: e.seq, Shed: shed}
	for _, id := range e.ids {
		nh := proto.NodeHealth{ID: int(id), QueueDepth: depth}
		if suspicions != nil {
			nh.Suspicions = suspicions[id]
		}
		rep.Nodes = append(rep.Nodes, nh)
	}
	e.c.ReportHealth(rep)
}

func actionsOf(ds []AutoscaleDecision) []AutoscaleAction {
	var out []AutoscaleAction
	for _, d := range ds {
		out = append(out, d.Action)
	}
	return out
}

// TestAutoscaleHysteresis: pressure must hold above the high-water mark
// for SustainTicks CONSECUTIVE ticks before anything moves; a single
// tick back inside the dead band resets the streak, so flapping across
// the threshold boundary never accumulates toward an action.
func TestAutoscaleHysteresis(t *testing.T) {
	env := newASEnv(t, 4, 2, 2)
	if err := env.c.SetRingEnabled(context.Background(), 1, false); err != nil {
		t.Fatal(err)
	}
	a := env.c.NewAutoscaler(AutoscaleConfig{
		DepthRef: 8, SustainTicks: 3, Now: env.clk.Now,
	})
	ctx := context.Background()
	step := func() []AutoscaleDecision {
		env.clk.Advance(time.Second)
		return a.Step(ctx)
	}

	// Two high ticks, one mid-band tick, two high ticks: the mid-band
	// tick must have reset the streak, so still no action.
	for i, depth := range []int{16, 16, 4, 16, 16} {
		env.report(depth, 0, nil)
		if ds := step(); len(ds) != 0 {
			t.Fatalf("tick %d (depth %d): premature action %v", i, depth, actionsOf(ds))
		}
	}
	// Third consecutive high tick: now the controller moves, and the
	// cheap lever (the powered-down ring) is chosen.
	env.report(16, 0, nil)
	ds := step()
	if len(ds) != 1 || ds[0].Action != ActionRingUp {
		t.Fatalf("sustained pressure: got %v, want [ring-up]", actionsOf(ds))
	}
	if ds[0].Ring != 1 {
		t.Fatalf("powered up ring %d, want 1", ds[0].Ring)
	}
	// The ring really is serving again.
	v := env.c.View()
	rings := map[int]bool{}
	for _, ni := range v.Nodes {
		rings[ni.Ring] = true
	}
	if !rings[1] {
		t.Fatal("ring 1 still hidden from the view after ring-up")
	}
}

// TestAutoscaleCooldown: after one action the controller must hold its
// fire for the cooldown window even under continued pressure, then act
// again once the window and a fresh sustain streak have both passed.
func TestAutoscaleCooldown(t *testing.T) {
	env := newASEnv(t, 4, 2, 4)
	if err := env.c.SetRingEnabled(context.Background(), 1, false); err != nil {
		t.Fatal(err)
	}
	a := env.c.NewAutoscaler(AutoscaleConfig{
		DepthRef: 8, SustainTicks: 1, Cooldown: time.Minute, Now: env.clk.Now,
	})
	ctx := context.Background()
	env.report(20, 0, nil)
	if ds := a.Step(ctx); len(ds) != 1 || ds[0].Action != ActionRingUp {
		t.Fatalf("first action: %v, want ring-up", actionsOf(ds))
	}
	// Pressure stays high, clock creeps inside the cooldown: no action.
	for i := 0; i < 5; i++ {
		env.clk.Advance(5 * time.Second)
		env.report(20, 0, nil)
		if ds := a.Step(ctx); len(ds) != 0 {
			t.Fatalf("action %v inside cooldown at tick %d", actionsOf(ds), i)
		}
	}
	// Past the cooldown the next lever fires (no disabled ring remains,
	// so it is the cost-gated p step).
	env.clk.Advance(time.Minute)
	env.report(20, 0, nil)
	ds := a.Step(ctx)
	if len(ds) != 1 || ds[0].Action != ActionPDown {
		t.Fatalf("post-cooldown action: %v, want p-down", actionsOf(ds))
	}
	if got := env.c.P(); got != 3 {
		t.Fatalf("p = %d after p-down from 4, want 3", got)
	}
}

// TestAutoscaleCostGateRefusal: with pressure sustained but the §6.3
// model pricing the p step above the configured budget, the controller
// must record a hold and leave the topology alone.
func TestAutoscaleCostGateRefusal(t *testing.T) {
	env := newASEnv(t, 4, 1, 2) // p 2→1 doubles r: 2.0 corpus copies
	a := env.c.NewAutoscaler(AutoscaleConfig{
		DepthRef: 8, SustainTicks: 1, CostGateFraction: 1.0, Now: env.clk.Now,
	})
	ctx := context.Background()
	epoch := env.c.Epoch()
	env.report(20, 0, nil)
	ds := a.Step(ctx)
	if len(ds) != 1 || ds[0].Action != ActionHold {
		t.Fatalf("got %v, want [hold]", actionsOf(ds))
	}
	if !strings.Contains(ds[0].Reason, "cost gate") {
		t.Fatalf("hold reason %q does not name the cost gate", ds[0].Reason)
	}
	if got := env.c.P(); got != 2 {
		t.Fatalf("cost-gated hold still changed p to %d", got)
	}
	if env.c.Epoch() != epoch {
		t.Fatal("cost-gated hold published a view")
	}
	// The refusal is recorded once per sustained episode, not re-logged
	// every tick the pressure stays high.
	for i := 0; i < 3; i++ {
		env.clk.Advance(time.Second)
		env.report(20, 0, nil)
		if ds := a.Step(ctx); len(ds) != 0 {
			t.Fatalf("hold re-emitted on sustained tick %d: %v", i, actionsOf(ds))
		}
	}
	if got := len(a.Decisions()); got != 1 {
		t.Fatalf("decision log has %d entries after a sustained refused episode, want 1", got)
	}

	// Raising the budget clears the gate: the same pressure now buys
	// the step.
	a2 := env.c.NewAutoscaler(AutoscaleConfig{
		DepthRef: 8, SustainTicks: 1, CostGateFraction: 2.5, Now: env.clk.Now,
	})
	env.report(20, 0, nil)
	ds = a2.Step(ctx)
	if len(ds) != 1 || ds[0].Action != ActionPDown {
		t.Fatalf("generous gate: got %v, want [p-down]", actionsOf(ds))
	}
	if got := env.c.P(); got != 1 {
		t.Fatalf("p = %d, want 1", got)
	}
}

// TestAutoscaleScaleDownRestoresThenPowersOff: when pressure clears,
// the controller first restores p toward its baseline (free), then
// powers a ring down — and never touches the last serving ring.
func TestAutoscaleScaleDownRestoresThenPowersOff(t *testing.T) {
	env := newASEnv(t, 4, 2, 3)
	a := env.c.NewAutoscaler(AutoscaleConfig{
		DepthRef: 8, SustainTicks: 1, Cooldown: time.Millisecond,
		CostGateFraction: 10, Now: env.clk.Now,
	})
	ctx := context.Background()
	// Drive one emergency p-down (both rings already serve).
	env.report(20, 0, nil)
	if ds := a.Step(ctx); len(ds) != 1 || ds[0].Action != ActionPDown {
		t.Fatalf("setup p-down: %v", actionsOf(ds))
	}
	if env.c.P() != 2 {
		t.Fatalf("p = %d, want 2", env.c.P())
	}
	// Load vanishes: first give back the replication (p 2→3)...
	env.report(0, 0, nil)
	env.clk.Advance(time.Second)
	if ds := a.Step(ctx); len(ds) != 1 || ds[0].Action != ActionPUp {
		t.Fatalf("first scale-down: %v, want p-up", actionsOf(ds))
	}
	if env.c.P() != 3 {
		t.Fatalf("p = %d after restore, want baseline 3", env.c.P())
	}
	// ...then power a ring down...
	env.clk.Advance(time.Second)
	if ds := a.Step(ctx); len(ds) != 1 || ds[0].Action != ActionRingDown {
		t.Fatalf("second scale-down: %v, want ring-down", actionsOf(ds))
	}
	// ...and then hold: the last ring must keep serving.
	env.clk.Advance(time.Second)
	if ds := a.Step(ctx); len(ds) != 0 {
		t.Fatalf("scale-down past the last ring: %v", actionsOf(ds))
	}
	if len(env.c.View().Nodes) == 0 {
		t.Fatal("controller powered off the whole cluster")
	}
}

// TestAutoscaleQuarantineDeadline: a node quarantined past the deadline
// is auto-decommissioned — removed from the topology, its range
// redistributed — while a freshly quarantined node is left alone.
func TestAutoscaleQuarantineDeadline(t *testing.T) {
	env := newASEnv(t, 4, 1, 2)
	a := env.c.NewAutoscaler(AutoscaleConfig{
		DepthRef: 1000, SustainTicks: 100, // capacity loop effectively off
		QuarantineDeadline: time.Minute, Now: env.clk.Now,
	})
	ctx := context.Background()
	victim := env.ids[1]
	env.report(0, 0, map[ring.NodeID]int{victim: 4})
	if got := env.c.Quarantined(); len(got) != 1 || got[0] != int(victim) {
		t.Fatalf("quarantined = %v, want [%d]", got, victim)
	}
	// Before the deadline: nothing happens.
	env.clk.Advance(30 * time.Second)
	if ds := a.Step(ctx); len(ds) != 0 {
		t.Fatalf("decommission before deadline: %v", actionsOf(ds))
	}
	// Past it: the node is removed outright.
	env.clk.Advance(45 * time.Second)
	ds := a.Step(ctx)
	if len(ds) != 1 || ds[0].Action != ActionDecommission || ds[0].Node != int(victim) {
		t.Fatalf("got %v (%+v), want decommission of node %d", actionsOf(ds), ds, victim)
	}
	if ds[0].Err != "" {
		t.Fatalf("decommission failed: %s", ds[0].Err)
	}
	for _, ni := range env.c.View().Nodes {
		if ni.ID == int(victim) {
			t.Fatal("decommissioned node still in the view")
		}
	}
	if got := env.c.Quarantined(); len(got) != 0 {
		t.Fatalf("quarantine set not cleaned: %v", got)
	}
}

// TestAutoscaleDryRun: with DryRun set the controller must emit the
// same decisions it would execute — marked dry-run — while mutating
// nothing: no p change, no ring power change, no decommission, no view
// epoch movement.
func TestAutoscaleDryRun(t *testing.T) {
	env := newASEnv(t, 4, 2, 2)
	if err := env.c.SetRingEnabled(context.Background(), 1, false); err != nil {
		t.Fatal(err)
	}
	epoch := env.c.Epoch()
	a := env.c.NewAutoscaler(AutoscaleConfig{
		DryRun: true, DepthRef: 8, SustainTicks: 1,
		QuarantineDeadline: time.Minute, Now: env.clk.Now,
	})
	ctx := context.Background()
	victim := env.ids[0]
	env.report(20, 0, map[ring.NodeID]int{victim: 4})
	epochAfterQuarantine := env.c.Epoch()
	env.clk.Advance(2 * time.Minute)
	ds := a.Step(ctx)
	if len(ds) != 2 {
		t.Fatalf("got %v, want [decommission ring-up]", actionsOf(ds))
	}
	if ds[0].Action != ActionDecommission || ds[1].Action != ActionRingUp {
		t.Fatalf("got %v, want [decommission ring-up]", actionsOf(ds))
	}
	for _, d := range ds {
		if !d.DryRun {
			t.Fatalf("decision %s not marked dry-run", d.Action)
		}
	}
	// Nothing moved.
	if env.c.P() != 2 {
		t.Fatalf("dry run changed p to %d", env.c.P())
	}
	if got := env.c.Quarantined(); len(got) != 1 {
		t.Fatalf("dry run decommissioned the node: %v", got)
	}
	found := false
	for _, ni := range env.c.View().Nodes {
		if ni.ID == int(victim) {
			found = true
		}
		if ni.Ring == 1 {
			t.Fatal("dry run powered ring 1 up")
		}
	}
	if !found {
		t.Fatal("dry run removed the quarantined node from the view")
	}
	if got := env.c.Epoch(); got != epochAfterQuarantine {
		t.Fatalf("dry run moved the epoch %d → %d", epoch, got)
	}
	if len(a.Decisions()) != 2 {
		t.Fatalf("decision log has %d entries, want 2", len(a.Decisions()))
	}
}
