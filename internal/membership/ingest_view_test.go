package membership

import (
	"context"
	"testing"
	"time"

	"roar/internal/ingest"
)

// TestViewCarriesIngestWatermarks: every view reports the coordinator's
// WAL watermarks so frontends can fence their result caches against
// deliveries that happen without an epoch bump (docs/ECONOMICS.md).
func TestViewCarriesIngestWatermarks(t *testing.T) {
	wal, err := ingest.Open(t.TempDir(), ingest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{P: 1, WAL: wal})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	defer wal.Close()
	enc := slimEncoder()
	_, addrs := startNodes(t, enc, 1)
	if _, err := c.Join(context.Background(), addrs[0], 1); err != nil {
		t.Fatal(err)
	}
	if err := c.StartIngest(IngestConfig{}); err != nil {
		t.Fatal(err)
	}

	if v := c.View(); v.Ingested != 0 || v.Drained != 0 {
		t.Fatalf("fresh view watermarks = %d/%d, want 0/0", v.Ingested, v.Drained)
	}
	recs := corpus(t, enc, 3)
	seq, err := c.IngestAppend(context.Background(), recs)
	if err != nil {
		t.Fatal(err)
	}
	if v := c.View(); v.Ingested != seq {
		t.Errorf("view Ingested = %d, want %d", v.Ingested, seq)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.WaitIngestDrained(ctx, seq); err != nil {
		t.Fatal(err)
	}
	if v := c.View(); v.Drained != seq || v.Ingested != seq {
		t.Errorf("post-drain view watermarks = %d/%d, want %d/%d", v.Ingested, v.Drained, seq, seq)
	}
}
