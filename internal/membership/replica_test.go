package membership

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"roar/internal/proto"
	"roar/internal/store"
	"roar/internal/wire"
)

// startReplicas binds n listeners first (every replica must know the
// full peer list, including itself, before any is constructed), then
// serves each replica's handlers on its listener. All replicas share
// one backend store — the paper's shared-NFS stand-in (§4.1) — so a
// new leader can finish data-moving reconfigurations.
func startReplicas(t *testing.T, n int, coordCfg Config) []*Replica {
	t.Helper()
	backend := store.New()
	lns := make([]net.Listener, n)
	peers := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		peers[i] = ln.Addr().String()
	}
	reps := make([]*Replica, n)
	for i := range reps {
		cfg := coordCfg
		cfg.Backend = backend
		rep, err := NewReplica(ReplicaConfig{
			Self:        peers[i],
			Peers:       peers,
			Lease:       150 * time.Millisecond,
			Heartbeat:   40 * time.Millisecond,
			Coordinator: cfg,
			Logf:        t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		d := wire.NewDispatcher()
		rep.RegisterHandlers(d)
		srv := wire.ServeListener(lns[i], d.Handle, wire.ServerConfig{})
		t.Cleanup(func() { rep.Stop(); srv.Close() })
		reps[i] = rep
	}
	for _, rep := range reps {
		rep.Start()
	}
	return reps
}

// waitLeader polls until exactly one replica leads, and returns it.
func waitLeader(t *testing.T, reps []*Replica) *Replica {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var leaders []*Replica
		for _, r := range reps {
			if r.IsLeader() {
				leaders = append(leaders, r)
			}
		}
		if len(leaders) == 1 {
			return leaders[0]
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("no single leader elected within deadline")
	return nil
}

func TestReplicaElectsSingleLeader(t *testing.T) {
	reps := startReplicas(t, 3, Config{P: 2})
	leader := waitLeader(t, reps)
	if leader.Term() == 0 {
		t.Error("elected leader should hold a non-zero term")
	}
	// Followers learn the leader address from replication traffic and
	// hand it out as a redirect hint.
	deadline := time.Now().Add(5 * time.Second)
	for _, r := range reps {
		if r == leader {
			continue
		}
		for r.Leader() != leader.Self() {
			if time.Now().After(deadline) {
				t.Fatalf("follower %s never learned leader %s (has %q)", r.Self(), leader.Self(), r.Leader())
			}
			time.Sleep(10 * time.Millisecond)
		}
		if _, err := r.View(); err == nil {
			t.Error("follower View should refuse")
		} else if !strings.Contains(err.Error(), "leader="+leader.Self()) {
			t.Errorf("follower error should carry the redirect hint, got %v", err)
		}
	}
}

func TestReplicaReplicatesJoins(t *testing.T) {
	enc := slimEncoder()
	_, addrs := startNodes(t, enc, 2)
	reps := startReplicas(t, 3, Config{P: 2})
	leader := waitLeader(t, reps)
	ctx := context.Background()
	for _, a := range addrs {
		if _, err := leader.Join(ctx, a, 1); err != nil {
			t.Fatal(err)
		}
	}
	// Join returns only after the resulting state committed on a
	// majority; within a heartbeat every live follower has applied it.
	deadline := time.Now().Add(5 * time.Second)
	for _, r := range reps {
		for {
			st, ok := r.CommittedState()
			if ok && len(st.Nodes) == 2 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica %s never saw 2 nodes committed (state %+v ok=%v)", r.Self(), st, ok)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	// Mutations on a follower are refused with the redirect hint.
	for _, r := range reps {
		if r == leader {
			continue
		}
		_, err := r.Join(ctx, addrs[0], 1)
		var nle *NotLeaderError
		if !errors.As(err, &nle) {
			t.Fatalf("follower Join returned %v, want NotLeaderError", err)
		}
	}
	v, err := leader.View()
	if err != nil {
		t.Fatal(err)
	}
	if v.Term != leader.Term() {
		t.Errorf("view term %d should match leader term %d", v.Term, leader.Term())
	}
}

func TestReplicaFailoverPreservesStateAndFencesEpoch(t *testing.T) {
	enc := slimEncoder()
	_, addrs := startNodes(t, enc, 2)
	reps := startReplicas(t, 3, Config{P: 2})
	leader := waitLeader(t, reps)
	ctx := context.Background()
	for _, a := range addrs {
		if _, err := leader.Join(ctx, a, 1); err != nil {
			t.Fatal(err)
		}
	}
	oldView, err := leader.View()
	if err != nil {
		t.Fatal(err)
	}
	oldTerm := leader.Term()

	leader.Stop()
	var rest []*Replica
	for _, r := range reps {
		if r != leader {
			rest = append(rest, r)
		}
	}
	next := waitLeader(t, rest)
	if next.Term() <= oldTerm {
		t.Errorf("new leader term %d should exceed old term %d", next.Term(), oldTerm)
	}
	v, err := next.View()
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Nodes) != 2 {
		t.Fatalf("new leader lost the topology: view has %d nodes", len(v.Nodes))
	}
	// The epoch floor guarantees the new leader's first view supersedes
	// every view the old leader could have published.
	if v.Term <= oldView.Term || v.Epoch <= oldView.Epoch {
		t.Errorf("new view (term %d epoch %d) must supersede old (term %d epoch %d)",
			v.Term, v.Epoch, oldView.Term, oldView.Epoch)
	}
}

func TestReplicaStaleTermRejected(t *testing.T) {
	reps := startReplicas(t, 3, Config{P: 2})
	leader := waitLeader(t, reps)
	var follower *Replica
	for _, r := range reps {
		if r != leader {
			follower = r
			break
		}
	}
	// A deposed leader pushing at a stale term is refused outright.
	resp := follower.HandleReplicate(proto.ReplicateReq{Term: 0, Leader: "ghost:1"})
	if resp.OK {
		t.Error("stale-term replicate must be rejected")
	}
	if resp.Term < leader.Term() {
		t.Errorf("rejection should carry the current term, got %d", resp.Term)
	}
	// A lease request cannot be granted while the live leader's grant
	// stands, even at a higher term — that is the lease-safety rule.
	lr := follower.HandleLease(proto.LeaseReq{Term: follower.Term() + 1, Candidate: "ghost:1", LastIndex: 1 << 30})
	if lr.Granted {
		t.Error("lease granted inside the live leader's grant window")
	}
}

func TestReplicaGapResetsFollowerWindow(t *testing.T) {
	r, err := NewReplica(ReplicaConfig{Self: "x:1", Peers: []string{"x:1", "x:2", "x:3"}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	mk := func(idx uint64, epoch int) proto.LogEntry {
		return proto.LogEntry{Index: idx, Term: 3, Kind: proto.EntryState, State: proto.ControlState{Epoch: epoch, P: 2, Rings: 1}}
	}
	resp := r.HandleReplicate(proto.ReplicateReq{Term: 3, Leader: "x:2", Commit: 1, Entries: []proto.LogEntry{mk(1, 1)}})
	if !resp.OK || resp.LastIndex != 1 {
		t.Fatalf("append rejected: %+v", resp)
	}
	// The leader's window moved on; entry 7 arrives with a gap. The
	// follower resets its window from the snapshot instead of refusing.
	resp = r.HandleReplicate(proto.ReplicateReq{Term: 3, Leader: "x:2", Commit: 7, Entries: []proto.LogEntry{mk(7, 9)}})
	if !resp.OK || resp.LastIndex != 7 {
		t.Fatalf("gap jump rejected: %+v", resp)
	}
	st, ok := r.CommittedState()
	if !ok || st.Epoch != 9 {
		t.Fatalf("committed state not applied across the gap: %+v ok=%v", st, ok)
	}
	// And an elected successor must cover the commit: candidates behind
	// it are refused.
	lr := r.HandleLease(proto.LeaseReq{Term: 99, Candidate: "x:3", LastIndex: 3})
	if lr.Granted {
		t.Error("candidate with an incomplete log must be refused")
	}
}

// clockedReplica builds an un-started replica driven by a manual clock,
// plus the advance function. Tests drive HandleReplicate/HandleLease
// directly; nothing races on the clock because no loops run.
func clockedReplica(t *testing.T) (*Replica, func(d time.Duration)) {
	t.Helper()
	now := time.Unix(1_700_000_000, 0)
	r, err := NewReplica(ReplicaConfig{
		Self:  "x:1",
		Peers: []string{"x:1", "x:2", "x:3"},
		Now:   func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Stop)
	return r, func(d time.Duration) { now = now.Add(d) }
}

func stateEntry(idx, term uint64, epoch int) proto.LogEntry {
	return proto.LogEntry{Index: idx, Term: term, Kind: proto.EntryState,
		State: proto.ControlState{Epoch: epoch, P: 2, Rings: 1}}
}

// TestReplicaLeaseUpToDateRule: votes compare the candidate's LAST
// entry as (term, index), term first — a longer log of older-term
// entries must not beat a shorter log containing a newer committed
// decision. This is the reviewer's partitioned-ex-leader scenario: its
// stale tail can match or exceed our index while our entry at that
// index is a committed decision from a newer leader.
func TestReplicaLeaseUpToDateRule(t *testing.T) {
	r, advance := clockedReplica(t)
	resp := r.HandleReplicate(proto.ReplicateReq{Term: 2, Leader: "x:2", Commit: 2,
		Entries: []proto.LogEntry{stateEntry(1, 2, 1), stateEntry(2, 2, 2)}})
	if !resp.OK {
		t.Fatalf("seed append rejected: %+v", resp)
	}
	advance(3 * time.Second) // let x:2's lease grant expire — isolate the log rule

	if lr := r.HandleLease(proto.LeaseReq{Term: 99, Candidate: "x:3", LastIndex: 5, LastTerm: 1}); lr.Granted {
		t.Error("older last term granted despite a higher last index")
	}
	if lr := r.HandleLease(proto.LeaseReq{Term: 100, Candidate: "x:3", LastIndex: 1, LastTerm: 2}); lr.Granted {
		t.Error("equal last term but shorter log granted")
	}
	if lr := r.HandleLease(proto.LeaseReq{Term: 101, Candidate: "x:3", LastIndex: 2, LastTerm: 2}); !lr.Granted {
		t.Errorf("up-to-date candidate refused: %+v", lr)
	}
}

// TestReplicaVoteOutlivesLease: the lease grant expires by the clock,
// but the vote it carried does not — a term names at most one
// candidate forever, so two leader generations can never share a term
// and the frontends' (Term, Epoch) fence stays sound.
func TestReplicaVoteOutlivesLease(t *testing.T) {
	r, advance := clockedReplica(t)
	if lr := r.HandleLease(proto.LeaseReq{Term: 5, Candidate: "x:2"}); !lr.Granted {
		t.Fatalf("first candidate refused: %+v", lr)
	}
	advance(3 * time.Second) // grant expired; the vote must still stand
	if lr := r.HandleLease(proto.LeaseReq{Term: 5, Candidate: "x:3"}); lr.Granted {
		t.Error("expired lease re-granted term 5 to a second candidate")
	}
	if lr := r.HandleLease(proto.LeaseReq{Term: 5, Candidate: "x:2"}); !lr.Granted {
		t.Error("idempotent retry by the voted candidate refused")
	}
	advance(3 * time.Second) // the retry renewed x:2's lease; let it lapse
	if lr := r.HandleLease(proto.LeaseReq{Term: 6, Candidate: "x:3"}); !lr.Granted {
		t.Error("fresh term refused after the old vote")
	}
}

// TestReplicaRefusesCommittedRewrite: entries at or below the commit
// watermark are immutable. A push that would rewrite one with a
// different term (split-brain or corruption) is refused outright;
// overwriting the UNCOMMITTED tail remains legal — that is how a new
// leader re-replicates over a dead leader's unacknowledged entries.
func TestReplicaRefusesCommittedRewrite(t *testing.T) {
	r, _ := clockedReplica(t)
	resp := r.HandleReplicate(proto.ReplicateReq{Term: 2, Leader: "x:2", Commit: 2,
		Entries: []proto.LogEntry{stateEntry(1, 2, 1), stateEntry(2, 2, 2)}})
	if !resp.OK {
		t.Fatalf("seed append rejected: %+v", resp)
	}
	// A "leader" at a newer term tries to rewrite committed index 2.
	resp = r.HandleReplicate(proto.ReplicateReq{Term: 3, Leader: "x:3", Commit: 1,
		Entries: []proto.LogEntry{stateEntry(2, 3, 99)}})
	if resp.OK {
		t.Fatal("rewrite of a committed slot accepted")
	}
	if st, ok := r.CommittedState(); !ok || st.Epoch != 2 {
		t.Fatalf("committed state damaged by refused rewrite: %+v ok=%v", st, ok)
	}
	// Idempotent re-send of the committed entry is fine.
	if resp = r.HandleReplicate(proto.ReplicateReq{Term: 3, Leader: "x:3", Commit: 2,
		Entries: []proto.LogEntry{stateEntry(2, 2, 2)}}); !resp.OK {
		t.Fatalf("identical re-send of a committed entry refused: %+v", resp)
	}
	// Grow an uncommitted tail, then let a newer leader overwrite it.
	if resp = r.HandleReplicate(proto.ReplicateReq{Term: 3, Leader: "x:3", Commit: 2,
		Entries: []proto.LogEntry{stateEntry(3, 3, 3)}}); !resp.OK {
		t.Fatalf("uncommitted append refused: %+v", resp)
	}
	resp = r.HandleReplicate(proto.ReplicateReq{Term: 4, Leader: "x:2", Commit: 3,
		Entries: []proto.LogEntry{stateEntry(3, 4, 7)}})
	if !resp.OK || resp.LastIndex != 3 {
		t.Fatalf("legitimate overwrite of the uncommitted tail refused: %+v", resp)
	}
	if st, ok := r.CommittedState(); !ok || st.Epoch != 7 {
		t.Fatalf("overwritten tail not committed: %+v ok=%v", st, ok)
	}
}

func TestReplicaRedrivesInheritedChangeP(t *testing.T) {
	enc := slimEncoder()
	_, addrs := startNodes(t, enc, 2)
	reps := startReplicas(t, 3, Config{P: 4})
	leader := waitLeader(t, reps)
	ctx := context.Background()
	for _, a := range addrs {
		if _, err := leader.Join(ctx, a, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := leader.LoadCorpus(ctx, corpus(t, enc, 40)); err != nil {
		t.Fatal(err)
	}
	// Commit the ChangeP intent exactly as the leader would, then kill
	// the leader before it executes — the worst-case crash point.
	c, err := leader.leaderCoord()
	if err != nil {
		t.Fatal(err)
	}
	intent := c.ExportState()
	intent.PendingP = 2
	if err := leader.propose(proto.EntryIntent, intent); err != nil {
		t.Fatal(err)
	}
	leader.Stop()

	var rest []*Replica
	for _, r := range reps {
		if r != leader {
			rest = append(rest, r)
		}
	}
	next := waitLeader(t, rest)
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, err := next.View()
		if err == nil && v.P == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("inherited ChangeP never completed: view %+v err %v", v, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The completion entry clears the pending marker.
	st, ok := next.CommittedState()
	if !ok || st.PendingP != 0 {
		t.Errorf("pending marker should clear after re-drive: %+v", st)
	}
}
