// Membership-side health aggregation: the coordinator folds the
// periodic per-frontend HealthReports (suspicion events, probe
// outcomes, queue depths) into one failure-evidence score per node,
// quarantines nodes whose score crosses a threshold by publishing views
// with the node demoted from scheduling — NOT dropped from storage, so
// recovery is a view flip rather than a data transfer — and
// un-quarantines them when recovery evidence (successful probes)
// drains the score back down.
//
// This closes the loop §5 assumes: the seed treated a frontend Failed
// report as a one-shot hint that immediately redistributed the node's
// range (expensive, irreversible, and triggered by a single frontend's
// timeout). Now HandleFailure is just one evidence input to the
// aggregator; the actual topology change — Decommission — is reserved
// for nodes that are genuinely gone.
package membership

import (
	"sort"
	"sync"
	"time"

	"roar/internal/proto"
	"roar/internal/ring"
)

// HealthConfig tunes the failure/overload control loop.
type HealthConfig struct {
	// QuarantineThreshold is the evidence score at which a node is
	// demoted from scheduling. Each suspicion event reported by a
	// frontend adds 1, each failed recovery probe 0.5; successful
	// probes and real sub-query completions subtract. Default 3 — e.g.
	// three frontends suspecting in one interval, or one frontend
	// suspecting across three.
	QuarantineThreshold float64
	// RecoverThreshold is the score at or below which a quarantined
	// node is re-admitted to scheduling. Default 0: recovery evidence
	// must fully drain the accumulated suspicion (hysteresis against
	// flapping).
	RecoverThreshold float64
	// FailWeight is the score added by a hard failure report — the
	// legacy ReportReq.Failed path and HandleFailure. Default 1.
	FailWeight float64
	// ScoreCap bounds the score so a long outage cannot make recovery
	// arbitrarily slow. Default 2 × QuarantineThreshold.
	ScoreCap float64
	// MaxQuarantineFraction refuses to quarantine beyond this fraction
	// of the cluster (correlated slowness means overload, not failure —
	// quarantining everyone would turn congestion into an outage).
	// Default 0.5.
	MaxQuarantineFraction float64
	// Now injects the clock used to stamp quarantine entry times (the
	// autoscaler's quarantine-deadline decommission measures against
	// these). Tests override; nil means time.Now.
	Now func() time.Time
}

func (hc HealthConfig) withDefaults() HealthConfig {
	if hc.QuarantineThreshold <= 0 {
		hc.QuarantineThreshold = 3
	}
	if hc.RecoverThreshold < 0 {
		hc.RecoverThreshold = 0
	}
	if hc.FailWeight <= 0 {
		hc.FailWeight = 1
	}
	if hc.ScoreCap <= 0 {
		hc.ScoreCap = 2 * hc.QuarantineThreshold
	}
	if hc.MaxQuarantineFraction <= 0 {
		hc.MaxQuarantineFraction = 0.5
	}
	if hc.Now == nil {
		hc.Now = time.Now //lint:allow wallclock — clock-injection default
	}
	return hc
}

// healthState is the aggregator's bookkeeping, separate from the
// topology mutex so report floods never contend with view pushes.
type healthState struct {
	mu          sync.Mutex
	cfg         HealthConfig
	scores      map[ring.NodeID]float64
	quarantined map[ring.NodeID]time.Time // node -> quarantine entry time
	feSeq       map[string]uint64         // per-frontend last report seq
	shedTotal   int64                     // cumulative PriorityLow sheds fleet-wide

	// Autoscale telemetry (the extension fields of HealthReport):
	// cumulative counters the controller differentiates per tick, plus
	// latest-value gauges.
	shedNormalTotal  int64                 // queue-timeout rejections fleet-wide
	hedgeDeniedTotal int64                 // hedge-budget denials fleet-wide
	queueWaitP99     map[string]int64      // per-frontend admission-wait p99 gauge (ns)
	queueWaitAt      map[string]time.Time  // when each frontend's gauge last refreshed
	depths           map[ring.NodeID]int   // last reported queue depth per node
	latP99           map[ring.NodeID]int64 // last reported latency p99 per node (ns)

	// Per-tenant economics (the second extension block): fleet-wide
	// cumulative admissions, sheds, and cache traffic keyed by tenant id.
	// Frontends ship deltas; the aggregate answers "who is being shed".
	tenants map[string]proto.TenantLoad
}

// maxTenantTotals bounds the aggregate tenant map; past it, new tenant
// ids fold into the same overflow bucket frontends use, so totals still
// conserve while a tenant-id flood cannot exhaust coordinator memory.
const (
	maxTenantTotals      = 4096
	tenantTotalsOverflow = "~other"
)

// feGaugeStaleness expires a frontend's queue-wait gauge when it stops
// reporting (crashed or decommissioned FE): a last-writer-wins gauge
// with no owner would hold its final value forever and bias pressure.
const feGaugeStaleness = time.Minute

func newHealthState(cfg HealthConfig) *healthState {
	return &healthState{
		cfg:          cfg.withDefaults(),
		scores:       map[ring.NodeID]float64{},
		quarantined:  map[ring.NodeID]time.Time{},
		feSeq:        map[string]uint64{},
		queueWaitP99: map[string]int64{},
		queueWaitAt:  map[string]time.Time{},
		depths:       map[ring.NodeID]int{},
		latP99:       map[ring.NodeID]int64{},
		tenants:      map[string]proto.TenantLoad{},
	}
}

// adjustLocked applies an evidence delta and returns true when the
// node's quarantine status flipped. total is the schedulable-cluster
// size, for the max-fraction guard.
func (h *healthState) adjustLocked(id ring.NodeID, delta float64, total int) (flipped bool) {
	s := h.scores[id] + delta
	if s < 0 {
		s = 0
	}
	if s > h.cfg.ScoreCap {
		s = h.cfg.ScoreCap
	}
	h.scores[id] = s
	_, inQ := h.quarantined[id]
	switch {
	case !inQ && s >= h.cfg.QuarantineThreshold:
		if float64(len(h.quarantined)+1) > h.cfg.MaxQuarantineFraction*float64(total) {
			return false // refuse: too much of the cluster already demoted
		}
		h.quarantined[id] = h.cfg.Now()
		return true
	case inQ && s <= h.cfg.RecoverThreshold:
		delete(h.quarantined, id)
		return true
	}
	return false
}

func (h *healthState) forget(id ring.NodeID) {
	h.mu.Lock()
	delete(h.scores, id)
	delete(h.quarantined, id)
	delete(h.depths, id)
	delete(h.latP99, id)
	h.mu.Unlock()
}

func (h *healthState) quarantinedSorted() []int {
	out := make([]int, 0, len(h.quarantined))
	for id := range h.quarantined {
		out = append(out, int(id))
	}
	sort.Ints(out)
	return out
}

// ReportHealth folds one frontend's observation deltas into the
// per-node evidence scores, applies any quarantine transitions (each
// bumps the view epoch), and answers with the current verdict so the
// frontend can re-pull the view immediately when it is stale.
func (c *Coordinator) ReportHealth(rep proto.HealthReport) proto.HealthResp {
	c.mu.Lock()
	members := make(map[ring.NodeID]bool, len(c.ringOf))
	for id := range c.ringOf {
		members[id] = true
	}
	c.mu.Unlock()

	h := c.health
	h.mu.Lock()
	if rep.FE != "" && rep.Seq != 0 {
		// Only an exact sequence repeat is a duplicate (an at-most-once
		// sender can re-deliver just its last report). A LOWER sequence
		// means the frontend restarted and its counter began again at 1
		// — its evidence must keep flowing, not be silenced until the
		// new counter outruns the old incarnation's.
		if last, ok := h.feSeq[rep.FE]; ok && rep.Seq == last {
			resp := proto.HealthResp{Quarantined: h.quarantinedSorted()}
			h.mu.Unlock()
			resp.Epoch = c.Epoch()
			return resp
		}
		h.feSeq[rep.FE] = rep.Seq
	}
	h.shedTotal += int64(rep.Shed)
	h.shedNormalTotal += int64(rep.ShedNormal)
	h.hedgeDeniedTotal += int64(rep.HedgesDenied)
	for _, tl := range rep.Tenants {
		name := tl.Tenant
		if _, known := h.tenants[name]; !known && len(h.tenants) >= maxTenantTotals {
			name = tenantTotalsOverflow
		}
		cur := h.tenants[name]
		cur.Tenant = name
		cur.Admitted += tl.Admitted
		cur.Shed += tl.Shed
		cur.CacheHits += tl.CacheHits
		cur.CacheMisses += tl.CacheMisses
		h.tenants[name] = cur
	}
	if rep.FE != "" {
		h.queueWaitP99[rep.FE] = rep.QueueP99Nanos
		h.queueWaitAt[rep.FE] = h.cfg.Now()
	}
	var flips int
	speeds := map[ring.NodeID]float64{}
	for _, nh := range rep.Nodes {
		id := ring.NodeID(nh.ID)
		if !members[id] {
			continue
		}
		if nh.Speed > 0 {
			speeds[id] = nh.Speed
		}
		h.depths[id] = nh.QueueDepth
		if nh.LatP99Nanos > 0 {
			h.latP99[id] = nh.LatP99Nanos
		}
		bad := float64(nh.Suspicions) + 0.5*float64(nh.ProbeFails)
		good := 0.5 * float64(nh.ProbeOKs)
		if nh.Contacts > 0 {
			// Real completions are the strongest health signal, but cap
			// their weight: a high-traffic interval must not let one
			// node bank unbounded goodwill against future evidence.
			cw := float64(nh.Contacts)
			if cw > 4 {
				cw = 4
			}
			good += cw
		}
		if delta := bad - good; delta != 0 || h.scores[id] != 0 {
			if h.adjustLocked(id, delta, len(members)) {
				flips++
			}
		}
	}
	resp := proto.HealthResp{Quarantined: h.quarantinedSorted()}
	h.mu.Unlock()

	if len(speeds) > 0 {
		c.ReportSpeeds(speeds)
	}
	if flips > 0 {
		c.mu.Lock()
		c.epoch++
		c.mu.Unlock()
	}
	resp.Epoch = c.Epoch()
	return resp
}

// HandleFailure records a hard failure report for a node — the legacy
// one-shot "this node is dead" hint from a frontend. It is now one
// evidence input to the health loop (worth FailWeight) rather than an
// immediate range redistribution; repeated reports quarantine the node,
// and Decommission remains the explicit path for nodes that are
// permanently gone.
func (c *Coordinator) HandleFailure(id ring.NodeID) {
	c.mu.Lock()
	_, ok := c.ringOf[id]
	total := len(c.ringOf)
	c.mu.Unlock()
	if !ok {
		return
	}
	h := c.health
	h.mu.Lock()
	flipped := h.adjustLocked(id, h.cfg.FailWeight, total)
	h.mu.Unlock()
	if flipped {
		c.mu.Lock()
		c.epoch++
		c.mu.Unlock()
	}
}

// Quarantined returns the node ids currently demoted from scheduling,
// sorted ascending.
func (c *Coordinator) Quarantined() []int {
	c.health.mu.Lock()
	defer c.health.mu.Unlock()
	return c.health.quarantinedSorted()
}

// HealthScore exposes a node's current evidence score (tests,
// operational introspection).
func (c *Coordinator) HealthScore(id ring.NodeID) float64 {
	c.health.mu.Lock()
	defer c.health.mu.Unlock()
	return c.health.scores[id]
}

// ShedTotal reports the cumulative admissions shed across the fleet, as
// accumulated from health reports.
func (c *Coordinator) ShedTotal() int64 {
	c.health.mu.Lock()
	defer c.health.mu.Unlock()
	return c.health.shedTotal
}

// TenantTotals snapshots the fleet-wide per-tenant economics aggregated
// from health reports, sorted by total load descending then tenant id —
// the operator's answer to "who is consuming the fleet and who is being
// shed".
func (c *Coordinator) TenantTotals() []proto.TenantLoad {
	c.health.mu.Lock()
	out := make([]proto.TenantLoad, 0, len(c.health.tenants))
	for _, tl := range c.health.tenants {
		out = append(out, tl)
	}
	c.health.mu.Unlock()
	sort.Slice(out, func(a, b int) bool {
		la := out[a].Admitted + out[a].Shed + out[a].CacheHits + out[a].CacheMisses
		lb := out[b].Admitted + out[b].Shed + out[b].CacheHits + out[b].CacheMisses
		if la != lb {
			return la > lb
		}
		return out[a].Tenant < out[b].Tenant
	})
	return out
}

// QuarantineInfo names one quarantined node and when it entered
// quarantine.
type QuarantineInfo struct {
	ID    ring.NodeID
	Since time.Time
}

// FleetPressure is the aggregator's capacity-planning snapshot: the
// cumulative overload counters the elasticity controller differentiates
// per tick, plus the latest load gauges. Counters only ever grow (until
// coordinator restart); gauges are last-writer-wins per frontend/node.
type FleetPressure struct {
	ShedLow     int64 // cumulative PriorityLow sheds (ErrShed)
	ShedNormal  int64 // cumulative queue-timeout rejections (ErrOverloaded)
	HedgeDenied int64 // cumulative hedge-budget denials

	MeanQueueDepth float64       // mean last-reported depth across schedulable members
	QueueWaitP99   time.Duration // max admission-wait p99 across frontends
	NodeLatP99     time.Duration // max per-node sub-query latency p99 digest

	Quarantined []QuarantineInfo // sorted by node id
}

// FleetPressure snapshots the capacity-planning telemetry. The load
// gauges (depth, latency) count only schedulable nodes — on an enabled
// ring and not quarantined — because the others receive no traffic, so
// their last-written gauge values are frozen history: a quarantined
// node's final latency digest or a dark ring's idle depths would bias
// pressure indefinitely. Per-frontend gauges expire when the frontend
// stops reporting.
func (c *Coordinator) FleetPressure() FleetPressure {
	c.mu.Lock()
	schedulable := make(map[ring.NodeID]bool, len(c.ringOf))
	for id, k := range c.ringOf {
		if !c.disabled[k] {
			schedulable[id] = true
		}
	}
	c.mu.Unlock()

	h := c.health
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.cfg.Now()
	fp := FleetPressure{
		ShedLow:     h.shedTotal,
		ShedNormal:  h.shedNormalTotal,
		HedgeDenied: h.hedgeDeniedTotal,
	}
	var depthSum, depthN int
	for id, d := range h.depths {
		if !schedulable[id] {
			continue
		}
		if _, q := h.quarantined[id]; q {
			continue
		}
		depthSum += d
		depthN++
	}
	if depthN > 0 {
		fp.MeanQueueDepth = float64(depthSum) / float64(depthN)
	}
	for fe, ns := range h.queueWaitP99 {
		if now.Sub(h.queueWaitAt[fe]) > feGaugeStaleness {
			continue
		}
		if d := time.Duration(ns); d > fp.QueueWaitP99 {
			fp.QueueWaitP99 = d
		}
	}
	for id, ns := range h.latP99 {
		if !schedulable[id] {
			continue
		}
		if _, q := h.quarantined[id]; q {
			continue
		}
		if d := time.Duration(ns); d > fp.NodeLatP99 {
			fp.NodeLatP99 = d
		}
	}
	for id, since := range h.quarantined {
		fp.Quarantined = append(fp.Quarantined, QuarantineInfo{ID: id, Since: since})
	}
	sort.Slice(fp.Quarantined, func(a, b int) bool { return fp.Quarantined[a].ID < fp.Quarantined[b].ID })
	return fp
}

// Epoch returns the current view epoch.
func (c *Coordinator) Epoch() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}
