// Membership-side health aggregation: the coordinator folds the
// periodic per-frontend HealthReports (suspicion events, probe
// outcomes, queue depths) into one failure-evidence score per node,
// quarantines nodes whose score crosses a threshold by publishing views
// with the node demoted from scheduling — NOT dropped from storage, so
// recovery is a view flip rather than a data transfer — and
// un-quarantines them when recovery evidence (successful probes)
// drains the score back down.
//
// This closes the loop §5 assumes: the seed treated a frontend Failed
// report as a one-shot hint that immediately redistributed the node's
// range (expensive, irreversible, and triggered by a single frontend's
// timeout). Now HandleFailure is just one evidence input to the
// aggregator; the actual topology change — Decommission — is reserved
// for nodes that are genuinely gone.
package membership

import (
	"sort"
	"sync"

	"roar/internal/proto"
	"roar/internal/ring"
)

// HealthConfig tunes the failure/overload control loop.
type HealthConfig struct {
	// QuarantineThreshold is the evidence score at which a node is
	// demoted from scheduling. Each suspicion event reported by a
	// frontend adds 1, each failed recovery probe 0.5; successful
	// probes and real sub-query completions subtract. Default 3 — e.g.
	// three frontends suspecting in one interval, or one frontend
	// suspecting across three.
	QuarantineThreshold float64
	// RecoverThreshold is the score at or below which a quarantined
	// node is re-admitted to scheduling. Default 0: recovery evidence
	// must fully drain the accumulated suspicion (hysteresis against
	// flapping).
	RecoverThreshold float64
	// FailWeight is the score added by a hard failure report — the
	// legacy ReportReq.Failed path and HandleFailure. Default 1.
	FailWeight float64
	// ScoreCap bounds the score so a long outage cannot make recovery
	// arbitrarily slow. Default 2 × QuarantineThreshold.
	ScoreCap float64
	// MaxQuarantineFraction refuses to quarantine beyond this fraction
	// of the cluster (correlated slowness means overload, not failure —
	// quarantining everyone would turn congestion into an outage).
	// Default 0.5.
	MaxQuarantineFraction float64
}

func (hc HealthConfig) withDefaults() HealthConfig {
	if hc.QuarantineThreshold <= 0 {
		hc.QuarantineThreshold = 3
	}
	if hc.RecoverThreshold < 0 {
		hc.RecoverThreshold = 0
	}
	if hc.FailWeight <= 0 {
		hc.FailWeight = 1
	}
	if hc.ScoreCap <= 0 {
		hc.ScoreCap = 2 * hc.QuarantineThreshold
	}
	if hc.MaxQuarantineFraction <= 0 {
		hc.MaxQuarantineFraction = 0.5
	}
	return hc
}

// healthState is the aggregator's bookkeeping, separate from the
// topology mutex so report floods never contend with view pushes.
type healthState struct {
	mu          sync.Mutex
	cfg         HealthConfig
	scores      map[ring.NodeID]float64
	quarantined map[ring.NodeID]bool
	feSeq       map[string]uint64 // per-frontend last report seq
	shedTotal   int64             // cumulative shed admissions fleet-wide
}

func newHealthState(cfg HealthConfig) *healthState {
	return &healthState{
		cfg:         cfg.withDefaults(),
		scores:      map[ring.NodeID]float64{},
		quarantined: map[ring.NodeID]bool{},
		feSeq:       map[string]uint64{},
	}
}

// adjustLocked applies an evidence delta and returns true when the
// node's quarantine status flipped. total is the schedulable-cluster
// size, for the max-fraction guard.
func (h *healthState) adjustLocked(id ring.NodeID, delta float64, total int) (flipped bool) {
	s := h.scores[id] + delta
	if s < 0 {
		s = 0
	}
	if s > h.cfg.ScoreCap {
		s = h.cfg.ScoreCap
	}
	h.scores[id] = s
	switch {
	case !h.quarantined[id] && s >= h.cfg.QuarantineThreshold:
		if float64(len(h.quarantined)+1) > h.cfg.MaxQuarantineFraction*float64(total) {
			return false // refuse: too much of the cluster already demoted
		}
		h.quarantined[id] = true
		return true
	case h.quarantined[id] && s <= h.cfg.RecoverThreshold:
		delete(h.quarantined, id)
		return true
	}
	return false
}

func (h *healthState) forget(id ring.NodeID) {
	h.mu.Lock()
	delete(h.scores, id)
	delete(h.quarantined, id)
	h.mu.Unlock()
}

func (h *healthState) quarantinedSorted() []int {
	out := make([]int, 0, len(h.quarantined))
	for id := range h.quarantined {
		out = append(out, int(id))
	}
	sort.Ints(out)
	return out
}

// ReportHealth folds one frontend's observation deltas into the
// per-node evidence scores, applies any quarantine transitions (each
// bumps the view epoch), and answers with the current verdict so the
// frontend can re-pull the view immediately when it is stale.
func (c *Coordinator) ReportHealth(rep proto.HealthReport) proto.HealthResp {
	c.mu.Lock()
	members := make(map[ring.NodeID]bool, len(c.ringOf))
	for id := range c.ringOf {
		members[id] = true
	}
	c.mu.Unlock()

	h := c.health
	h.mu.Lock()
	if rep.FE != "" && rep.Seq != 0 {
		// Only an exact sequence repeat is a duplicate (an at-most-once
		// sender can re-deliver just its last report). A LOWER sequence
		// means the frontend restarted and its counter began again at 1
		// — its evidence must keep flowing, not be silenced until the
		// new counter outruns the old incarnation's.
		if last, ok := h.feSeq[rep.FE]; ok && rep.Seq == last {
			resp := proto.HealthResp{Quarantined: h.quarantinedSorted()}
			h.mu.Unlock()
			resp.Epoch = c.Epoch()
			return resp
		}
		h.feSeq[rep.FE] = rep.Seq
	}
	h.shedTotal += int64(rep.Shed)
	var flips int
	speeds := map[ring.NodeID]float64{}
	for _, nh := range rep.Nodes {
		id := ring.NodeID(nh.ID)
		if !members[id] {
			continue
		}
		if nh.Speed > 0 {
			speeds[id] = nh.Speed
		}
		bad := float64(nh.Suspicions) + 0.5*float64(nh.ProbeFails)
		good := 0.5 * float64(nh.ProbeOKs)
		if nh.Contacts > 0 {
			// Real completions are the strongest health signal, but cap
			// their weight: a high-traffic interval must not let one
			// node bank unbounded goodwill against future evidence.
			cw := float64(nh.Contacts)
			if cw > 4 {
				cw = 4
			}
			good += cw
		}
		if delta := bad - good; delta != 0 || h.scores[id] != 0 {
			if h.adjustLocked(id, delta, len(members)) {
				flips++
			}
		}
	}
	resp := proto.HealthResp{Quarantined: h.quarantinedSorted()}
	h.mu.Unlock()

	if len(speeds) > 0 {
		c.ReportSpeeds(speeds)
	}
	if flips > 0 {
		c.mu.Lock()
		c.epoch++
		c.mu.Unlock()
	}
	resp.Epoch = c.Epoch()
	return resp
}

// HandleFailure records a hard failure report for a node — the legacy
// one-shot "this node is dead" hint from a frontend. It is now one
// evidence input to the health loop (worth FailWeight) rather than an
// immediate range redistribution; repeated reports quarantine the node,
// and Decommission remains the explicit path for nodes that are
// permanently gone.
func (c *Coordinator) HandleFailure(id ring.NodeID) {
	c.mu.Lock()
	_, ok := c.ringOf[id]
	total := len(c.ringOf)
	c.mu.Unlock()
	if !ok {
		return
	}
	h := c.health
	h.mu.Lock()
	flipped := h.adjustLocked(id, h.cfg.FailWeight, total)
	h.mu.Unlock()
	if flipped {
		c.mu.Lock()
		c.epoch++
		c.mu.Unlock()
	}
}

// Quarantined returns the node ids currently demoted from scheduling,
// sorted ascending.
func (c *Coordinator) Quarantined() []int {
	c.health.mu.Lock()
	defer c.health.mu.Unlock()
	return c.health.quarantinedSorted()
}

// HealthScore exposes a node's current evidence score (tests,
// operational introspection).
func (c *Coordinator) HealthScore(id ring.NodeID) float64 {
	c.health.mu.Lock()
	defer c.health.mu.Unlock()
	return c.health.scores[id]
}

// ShedTotal reports the cumulative admissions shed across the fleet, as
// accumulated from health reports.
func (c *Coordinator) ShedTotal() int64 {
	c.health.mu.Lock()
	defer c.health.mu.Unlock()
	return c.health.shedTotal
}

// Epoch returns the current view epoch.
func (c *Coordinator) Epoch() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}
